# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; `make verify` is the tier-1 gate a change must keep green.

GO ?= go

.PHONY: verify build test race oracle cluster-parity incremental-parity drift bench bench-check bench-smoke tick-jitter load-smoke fuzz lint fmt vet clean

## verify: tier-1 gate — build everything, vet, gofmt check, full tests.
verify: build vet fmt-check test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: concurrency-sensitive packages under the race detector
## (shortened experiment profile, same as the CI race job).
race:
	$(GO) test -race -short ./internal/experiment/... ./internal/sim/... ./internal/serve/... ./internal/cluster/... ./internal/oracle/... ./cmd/arserved/...

## cluster-parity: the sharding correctness gate — the oracle replay
## differential proving 1-, 2-, and 8-shard clusters emit identical
## decision streams, plus the reshard-restore and migration-race
## contracts, all under the race detector (same as the CI
## cluster-parity job).
cluster-parity:
	$(GO) test -race -count=1 -run 'TestClusterParity|TestClusterCheckpointReshard|TestMigrationRace|TestAsyncCheckpointByteEquivalence|TestAsyncCheckpointCrashRestore' ./internal/cluster/

## incremental-parity: the per-slot decision-cost correctness gate — the
## oracle differentials proving the dirty-component incremental cache and
## the LP-free local-ratio fast path emit decision streams identical to
## the full stable re-solve, plus the dirty-set edge-case suite, all
## under the race detector (same as the CI incremental-parity job).
incremental-parity:
	$(GO) test -race -count=1 -run 'TestDiffIncrementalFull|TestDiffLocalRatioLP|TestIncCache' ./internal/oracle/ ./internal/core/

## drift: the adaptivity correctness gate — seeded regret-bound
## assertions proving the drift-aware policies beat stationary UCB1 on
## every drifting scenario (and stay within tolerance on the i.i.d.
## control), the metamorphic invariance suites (arm relabeling, scenario
## time shift), the drift-policy checkpoint/restore cycle, and the
## cluster mobility edge-case parity differentials, all with pinned
## seeds under the race detector (same as the CI drift-parity job).
drift:
	$(GO) test -race -count=1 -run \
		'TestDriftAware|TestDriftTraceStructure|TestDriftPoliciesRecoverFromShift|TestMetamorphic|TestTimeShiftMetamorphic|TestCheckpointResumeDriftPolicies|TestClusterHandoverAcrossPartition|TestClusterOutageWithInflightStreams|TestClusterCandidateShrinksEmpty' \
		./internal/experiment/ ./internal/bandit/ ./internal/scenario/ ./internal/serve/ ./internal/cluster/

## oracle: differential oracle suite plus the mutation smoke check,
## mirroring the CI oracle job — the oraclemutant build must FAIL the
## suite, proving the oracle still catches seeded capacity bugs.
oracle:
	MEC_ORACLE=1 $(GO) test -count=1 ./internal/oracle/...
	$(GO) build -tags oraclemutant ./...
	@if $(GO) test -count=1 -tags oraclemutant \
		-run 'TestHeuRespectsCapacityAndLatency|TestDynamicRRInvariantsOnline' \
		./internal/oracle/ >/dev/null 2>&1; then \
		echo "seeded capacity mutant passed the oracle suite" >&2; exit 1; fi
	@echo "oracle: mutant caught"

## bench: the hot-path benchmarks, timed (LP warm-start contrast
## included), converted to BENCH_PR5.json by cmd/benchjson. The gated
## serve-slot benchmarks run at a pinned iteration count so their
## allocs/op is exactly reproducible — that JSON is the baseline
## `make bench-check` compares future runs against.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkAppro|BenchmarkDynamicRRRun|BenchmarkLPColdVsWarm|BenchmarkLPPTSlot' -benchmem . | tee bench-raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkServeSlot' -benchtime 1000x -benchmem . | tee -a bench-raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkServeIngest' -benchtime 200x -benchmem . | tee -a bench-raw.txt
	$(GO) run ./cmd/benchjson -in bench-raw.txt -out BENCH_PR5.json
	$(GO) test -run '^$$' -bench 'BenchmarkClusterServeSlot' -benchtime 200x -benchmem . | tee bench-cluster-raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkClusterTickJitter' -benchtime 200x . | tee -a bench-cluster-raw.txt
	$(GO) run ./cmd/benchjson -in bench-cluster-raw.txt -out BENCH_PR10.json
	$(GO) test -run '^$$' -bench 'BenchmarkIncrementalServeSlot|BenchmarkLocalRatio' -benchtime 1000x -benchmem . | tee bench-incremental-raw.txt
	$(GO) run ./cmd/benchjson -in bench-incremental-raw.txt -out BENCH_PR8.json

## bench-check: re-run the gated serve-slot benchmarks at the baseline's
## pinned iteration count and fail on a >10% ns/op regression or any
## allocs/op increase versus the committed BENCH_PR5.json. ns/op is only
## meaningful against a baseline recorded on the same machine; allocs/op
## is deterministic everywhere. CI runs the same gate A/B against the
## merge base on one runner (bench-regression job). The incremental
## gate protects only the fast modes: mode=full and mode=lp are the
## deliberately slow contrast baselines, and the full re-solve's LP
## jitter would trip the 10% gate on noise alone.
bench-check:
	$(GO) test -run '^$$' -bench 'BenchmarkServeSlot' -benchtime 1000x -benchmem . \
		| $(GO) run ./cmd/benchjson -tee -out bench-new.json
	$(GO) test -run '^$$' -bench 'BenchmarkServeIngest' -benchtime 200x -benchmem . \
		| $(GO) run ./cmd/benchjson -tee -out bench-ingest.json
	$(GO) test -run '^$$' -bench 'BenchmarkClusterServeSlot' -benchtime 200x -benchmem . \
		| $(GO) run ./cmd/benchjson -tee -out bench-cluster-new.json
	$(GO) run ./cmd/benchjson -compare -old BENCH_PR5.json -new bench-new.json -gate '^BenchmarkServeSlot'
	$(GO) run ./cmd/benchjson -compare -old BENCH_PR5.json -new bench-ingest.json \
		-gate '^BenchmarkServeIngest' -allocs-gate '^$$'
	$(GO) run ./cmd/benchjson -compare -old BENCH_PR10.json -new bench-cluster-new.json \
		-gate '^BenchmarkClusterServeSlot' -allocs-gate '^$$'
	$(GO) test -run '^$$' -bench 'BenchmarkIncrementalServeSlot|BenchmarkLocalRatio' -benchtime 1000x -benchmem . \
		| $(GO) run ./cmd/benchjson -tee -out bench-incremental-new.json
	$(GO) run ./cmd/benchjson -compare -old BENCH_PR8.json -new bench-incremental-new.json \
		-gate '^Benchmark(IncrementalServeSlot|LocalRatio)/mode=(incremental|local-ratio|fastpath)' \
		-allocs-gate '^$$'

## bench-smoke: compile-and-run-once pass over the benchmark harness,
## mirroring the CI bench-smoke job. No regression gate here: at
## -benchtime 1x neither timings nor allocation counts are comparable
## to the amortized baseline (bench-check is the gate).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkAppro|BenchmarkDynamicRRRun|BenchmarkLPColdVsWarm|BenchmarkServeSlot|BenchmarkServeIngest|BenchmarkClusterServeSlot|BenchmarkClusterTickJitter|BenchmarkIncrementalServeSlot|BenchmarkLocalRatio|BenchmarkDriftAdaptivity' -benchtime 1x -benchmem . \
		| $(GO) run ./cmd/benchjson -tee -out bench-smoke.json

## tick-jitter: the stop-the-world smoke gate — with async checkpoints
## firing every 4 slots on a loaded 2-shard cluster, the max tick pause
## must stay within 5x the median (10ms absolute floor), under the race
## detector (same as the CI tick-jitter job). A failure here means a
## checkpoint write landed back on the cluster clock.
tick-jitter:
	$(GO) test -race -count=1 -run 'TestTickPauseBoundWhileCheckpointing' ./internal/cluster/

## load-smoke: build arserved and drive the batched intake at 100k req/s
## offered for 2s on a tiny topology, failing on admit-rate collapse,
## queue growth past the configured bounds, or a batch-submit p99 over
## 50ms (the CI load-smoke job runs the same command with CI-safe
## thresholds and archives load-smoke.json).
load-smoke:
	$(GO) build -o arserved-load ./cmd/arserved
	./arserved-load -loadgen -stations 4 -offered 100000 -load-duration 2s \
		-load-batch 500 -tick 50ms -max-pending 512 -stage 512 \
		-load-out load-smoke.json -load-min-offered-frac 0.9 \
		-load-max-p99-ms 50 -load-min-admitted 1000

## fuzz: seed-corpus regression then a short fuzzing budget.
fuzz:
	$(GO) test -run 'FuzzParse' ./internal/lp/
	$(GO) test -run 'FuzzOracleLP|FuzzDirtySet' ./internal/oracle/
	$(GO) test -run 'FuzzBatchDecode' ./internal/serve/
	$(GO) test -run 'FuzzScenarioDecode|FuzzScenarioV1Decode' ./internal/scenario/
	$(GO) test -fuzz 'FuzzParse' -fuzztime 30s ./internal/lp/
	$(GO) test -fuzz 'FuzzOracleLP' -fuzztime 30s ./internal/oracle/
	$(GO) test -fuzz 'FuzzDirtySet' -fuzztime 30s ./internal/oracle/
	$(GO) test -fuzz 'FuzzBatchDecode' -fuzztime 30s ./internal/serve/
	$(GO) test -fuzz 'FuzzScenarioDecode$$' -fuzztime 30s ./internal/scenario/

## lint: staticcheck (correctness checks only, see staticcheck.conf) and
## govulncheck, both at pinned versions via the module proxy — nothing is
## added to go.mod. Needs network access; CI runs the same pins.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

clean:
	rm -f mecoffload.test bench-smoke.txt bench-smoke.json bench-new.json \
		bench-ingest.json bench-raw.txt bench-cluster-raw.txt \
		bench-cluster-new.json bench-incremental-raw.txt \
		bench-incremental-new.json arserved-load load-smoke.json
