# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; `make verify` is the tier-1 gate a change must keep green.

GO ?= go

.PHONY: verify build test race oracle bench bench-smoke fuzz fmt vet clean

## verify: tier-1 gate — build everything, vet, gofmt check, full tests.
verify: build vet fmt-check test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: concurrency-sensitive packages under the race detector
## (shortened experiment profile, same as the CI race job).
race:
	$(GO) test -race -short ./internal/experiment/... ./internal/sim/... ./internal/serve/... ./internal/oracle/... ./cmd/arserved/...

## oracle: differential oracle suite plus the mutation smoke check,
## mirroring the CI oracle job — the oraclemutant build must FAIL the
## suite, proving the oracle still catches seeded capacity bugs.
oracle:
	MEC_ORACLE=1 $(GO) test -count=1 ./internal/oracle/...
	$(GO) build -tags oraclemutant ./...
	@if $(GO) test -count=1 -tags oraclemutant \
		-run 'TestHeuRespectsCapacityAndLatency|TestDynamicRRInvariantsOnline' \
		./internal/oracle/ >/dev/null 2>&1; then \
		echo "seeded capacity mutant passed the oracle suite" >&2; exit 1; fi
	@echo "oracle: mutant caught"

## bench: the hot-path benchmarks, timed (LP warm-start contrast included).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkAppro|BenchmarkDynamicRRRun|BenchmarkLPColdVsWarm|BenchmarkLPPTSlot|BenchmarkServeSlot' -benchmem .

## bench-smoke: compile-and-run-once pass over the gating benchmarks,
## mirroring the CI bench-smoke job.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkAppro|BenchmarkDynamicRRRun|BenchmarkLPColdVsWarm' -benchtime 1x -benchmem .

## fuzz: seed-corpus regression then a short fuzzing budget.
fuzz:
	$(GO) test -run 'FuzzParse' ./internal/lp/
	$(GO) test -run 'FuzzOracleLP' ./internal/oracle/
	$(GO) test -fuzz 'FuzzParse' -fuzztime 30s ./internal/lp/
	$(GO) test -fuzz 'FuzzOracleLP' -fuzztime 30s ./internal/oracle/

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

clean:
	rm -f mecoffload.test bench-smoke.txt
