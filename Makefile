# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; `make verify` is the tier-1 gate a change must keep green.

GO ?= go

.PHONY: verify build test race bench bench-smoke fuzz fmt vet clean

## verify: tier-1 gate — build everything, vet, gofmt check, full tests.
verify: build vet fmt-check test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: concurrency-sensitive packages under the race detector
## (shortened experiment profile, same as the CI race job).
race:
	$(GO) test -race -short ./internal/experiment/... ./internal/sim/... ./internal/serve/... ./cmd/arserved/...

## bench: the hot-path benchmarks, timed (LP warm-start contrast included).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkAppro|BenchmarkDynamicRRRun|BenchmarkLPColdVsWarm|BenchmarkLPPTSlot|BenchmarkServeSlot' -benchmem .

## bench-smoke: compile-and-run-once pass over the gating benchmarks,
## mirroring the CI bench-smoke job.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkAppro|BenchmarkDynamicRRRun|BenchmarkLPColdVsWarm' -benchtime 1x -benchmem .

## fuzz: seed-corpus regression then a short fuzzing budget.
fuzz:
	$(GO) test -run 'FuzzParse' ./internal/lp/
	$(GO) test -fuzz 'FuzzParse' -fuzztime 30s ./internal/lp/

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

clean:
	rm -f mecoffload.test bench-smoke.txt
