// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see the experiment index in DESIGN.md). Each BenchmarkFig*
// regenerates its figure once (cached across the reward/latency/runtime
// variants) and reports the series at the most-loaded x-point as custom
// metrics, so `go test -bench=. -benchmem` prints the rows the paper
// plots. The Benchmark<Algorithm>* entries at the bottom measure raw
// algorithm performance.
package mecoffload

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"mecoffload/internal/core"
	"mecoffload/internal/experiment"
	"mecoffload/internal/lp"
	"mecoffload/internal/mec"
	"mecoffload/internal/sim"
	"mecoffload/internal/workload"
)

// benchOpts keeps figure regeneration affordable inside benchmarks while
// still auditing every run.
func benchOpts() experiment.Options {
	return experiment.Options{Repetitions: 2, Seed: 7}
}

// tableCache lazily computes each figure once per `go test -bench` run.
type tableCache struct {
	once sync.Once
	tbl  *experiment.Table
	err  error
}

func (c *tableCache) get(b *testing.B, run func(experiment.Options) (*experiment.Table, error)) *experiment.Table {
	b.Helper()
	c.once.Do(func() { c.tbl, c.err = run(benchOpts()) })
	if c.err != nil {
		b.Fatal(c.err)
	}
	return c.tbl
}

var (
	fig3Cache, fig4Cache, fig5Cache, fig6Cache                 tableCache
	ablRoundCache, ablKappaCache, ablPolicyCache, ablSlotCache tableCache
	ablDiscCache, exactGapCache, ablRewardCache                tableCache
	regretOnce                                                 sync.Once
	regretResult                                               *experiment.RegretResult
	regretErr                                                  error
	learningOnce                                               sync.Once
	learningResult                                             *experiment.LearningCurve
	learningErr                                                error
	driftOnce                                                  sync.Once
	driftResult                                                *experiment.DriftResult
	driftErr                                                   error
)

// reportSeries emits the metric of every algorithm at the most-loaded
// x-point of the table.
func reportSeries(b *testing.B, tbl *experiment.Table, metric experiment.Metric) {
	b.Helper()
	row := tbl.Rows[len(tbl.Rows)-1]
	for _, algo := range tbl.Algorithms {
		cell := row.Cells[algo]
		if cell == nil {
			continue
		}
		var v float64
		switch metric {
		case experiment.MetricReward:
			v = cell.Reward.Mean()
		case experiment.MetricLatency:
			v = cell.LatencyMS.Mean()
		case experiment.MetricRuntime:
			v = cell.RuntimeMS.Mean()
		case experiment.MetricServed:
			v = cell.Served.Mean()
		}
		b.ReportMetric(v, algo+"_"+string(metric))
	}
}

func benchFigure(b *testing.B, cache *tableCache, run func(experiment.Options) (*experiment.Table, error), metric experiment.Metric) {
	b.Helper()
	tbl := cache.get(b, run)
	for i := 0; i < b.N; i++ {
		reportSeries(b, tbl, metric)
	}
}

// E1-E3: Fig. 3 (offline sweep over |R|).
func BenchmarkFig3Reward(b *testing.B) {
	benchFigure(b, &fig3Cache, experiment.Fig3, experiment.MetricReward)
}
func BenchmarkFig3Latency(b *testing.B) {
	benchFigure(b, &fig3Cache, experiment.Fig3, experiment.MetricLatency)
}
func BenchmarkFig3Runtime(b *testing.B) {
	benchFigure(b, &fig3Cache, experiment.Fig3, experiment.MetricRuntime)
}

// E4-E5: Fig. 4 (online sweep over |R|).
func BenchmarkFig4Reward(b *testing.B) {
	benchFigure(b, &fig4Cache, experiment.Fig4, experiment.MetricReward)
}
func BenchmarkFig4Latency(b *testing.B) {
	benchFigure(b, &fig4Cache, experiment.Fig4, experiment.MetricLatency)
}

// E6-E7: Fig. 5 (sweep over |BS|).
func BenchmarkFig5Reward(b *testing.B) {
	benchFigure(b, &fig5Cache, experiment.Fig5, experiment.MetricReward)
}
func BenchmarkFig5Latency(b *testing.B) {
	benchFigure(b, &fig5Cache, experiment.Fig5, experiment.MetricLatency)
}

// E8-E9: Fig. 6 (sweep over max data rate).
func BenchmarkFig6Reward(b *testing.B) {
	benchFigure(b, &fig6Cache, experiment.Fig6, experiment.MetricReward)
}
func BenchmarkFig6Latency(b *testing.B) {
	benchFigure(b, &fig6Cache, experiment.Fig6, experiment.MetricLatency)
}

// E10: Theorem 3 regret validation.
func BenchmarkRegret(b *testing.B) {
	regretOnce.Do(func() { regretResult, regretErr = experiment.Regret(benchOpts()) })
	if regretErr != nil {
		b.Fatal(regretErr)
	}
	last := len(regretResult.Checkpoints) - 1
	for i := 0; i < b.N; i++ {
		b.ReportMetric(regretResult.Regret[last].Mean(), "regret_T300")
		b.ReportMetric(regretResult.Bound[last], "bound_T300")
	}
}

// A1-A4: ablations.
func BenchmarkAblationRounding(b *testing.B) {
	benchFigure(b, &ablRoundCache, experiment.AblationRounding, experiment.MetricReward)
}
func BenchmarkAblationKappa(b *testing.B) {
	benchFigure(b, &ablKappaCache, experiment.AblationKappa, experiment.MetricReward)
}
func BenchmarkAblationPolicy(b *testing.B) {
	benchFigure(b, &ablPolicyCache, experiment.AblationPolicy, experiment.MetricReward)
}
func BenchmarkAblationSlotSize(b *testing.B) {
	benchFigure(b, &ablSlotCache, experiment.AblationSlotSize, experiment.MetricReward)
}
func BenchmarkAblationDiscretization(b *testing.B) {
	benchFigure(b, &ablDiscCache, experiment.AblationDiscretization, experiment.MetricReward)
}

func BenchmarkAblationRewardModel(b *testing.B) {
	benchFigure(b, &ablRewardCache, experiment.AblationRewardModel, experiment.MetricReward)
}

// E11: exact-vs-approximation gap on small instances.
func BenchmarkExactGap(b *testing.B) {
	benchFigure(b, &exactGapCache, experiment.ExactGap, experiment.MetricReward)
}

// E12: learning curve of the threshold bandit.
func BenchmarkLearningCurve(b *testing.B) {
	learningOnce.Do(func() { learningResult, learningErr = experiment.Learning(benchOpts()) })
	if learningErr != nil {
		b.Fatal(learningErr)
	}
	last := len(learningResult.WindowStart) - 1
	for i := 0; i < b.N; i++ {
		b.ReportMetric(learningResult.Learner[last].Mean(), "learner_lastWindow")
		b.ReportMetric(learningResult.Fixed[last].Mean(), "fixed_lastWindow")
	}
}

// E13: non-stationary scenario pack. The reported metrics are the
// final-checkpoint cumulative regret (vs the best fixed threshold in
// hindsight) of stationary UCB1 and the drift-aware policies on every
// builtin scenario, so the benchjson artifact pins adaptivity: a change
// that makes sw-ucb/d-ucb/restart:se regress toward ucb1 on the drifting
// scenarios shows up as a metric jump in the bench-smoke artifact diff.
func BenchmarkDriftAdaptivity(b *testing.B) {
	driftOnce.Do(func() { driftResult, driftErr = experiment.Drift(benchOpts()) })
	if driftErr != nil {
		b.Fatal(driftErr)
	}
	for i := 0; i < b.N; i++ {
		for _, sc := range driftResult.Scenarios {
			for _, p := range sc.Policies {
				last := len(sc.Checkpoints) - 1
				b.ReportMetric(sc.Regret[p][last].Mean(), sc.Name+"_"+p+"_regret")
			}
		}
	}
}

// --- Raw algorithm performance benchmarks -------------------------------

func benchFixture(b *testing.B, stations, requests int) (*mec.Network, []*mec.Request) {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	net, err := mec.RandomNetwork(stations, 3000, 3600, rng)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := workload.Generate(workload.Config{
		NumRequests: requests, NumStations: stations, GeometricRates: true,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	return net, reqs
}

// BenchmarkAppro measures one full Appro run at the paper's largest scale
// (LP build + simplex + rounding passes), the dominant cost in Fig. 3(c).
func BenchmarkAppro(b *testing.B) {
	net, reqs := benchFixture(b, 20, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.Reset(reqs)
		if _, err := core.Appro(net, reqs, rand.New(rand.NewSource(int64(i))), core.ApproOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeu measures one full Heu run at the paper's largest scale.
func BenchmarkHeu(b *testing.B) {
	net, reqs := benchFixture(b, 20, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.Reset(reqs)
		if _, err := core.Heu(net, reqs, rand.New(rand.NewSource(int64(i))), core.HeuOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicRRRun measures one full online simulation (120 slots,
// 300 requests) under DynamicRR, including all per-slot LP-PT solves.
func BenchmarkDynamicRRRun(b *testing.B) {
	rng := rand.New(rand.NewSource(98))
	net, err := mec.RandomNetwork(20, 3000, 3600, rng)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := workload.Generate(workload.Config{
		NumRequests: 300, NumStations: 20, GeometricRates: true, ArrivalHorizon: 100,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.Reset(reqs)
		sched, err := sim.NewDynamicRR(sim.DynamicRROptions{})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := sim.NewEngine(net, reqs, rand.New(rand.NewSource(int64(i))), sim.Config{Horizon: 120})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(sched); err != nil {
			b.Fatal(err)
		}
	}
}

// buildBenchLPPT constructs the per-slot LP-PT relaxation (constraints
// (9)-(12) truncated by (23)) over the given active set and residual
// occupancy, mirroring the internal model builder: variables y[j,i,l] with
// reward-mass objectives, one assign row per request, one capacity row per
// (station, slot index).
func buildBenchLPPT(net *mec.Network, reqs []*mec.Request, active []int, used []float64) *lp.Problem {
	slotMHz := net.SlotMHz()
	rt := float64(len(active))
	prob := lp.NewProblem(lp.Maximize)
	type svar struct {
		v    lp.Var
		i, l int
	}
	byReq := make(map[int][]svar, len(active))
	for _, j := range active {
		r := reqs[j]
		for i := 0; i < net.NumStations(); i++ {
			if !r.DelayFeasible(net, i, 0, mec.DefaultSlotLengthMS) {
				continue
			}
			capI := net.Capacity(i) - used[i]
			L := int(capI / slotMHz)
			for l := 1; l <= L; l++ {
				er := r.Dist.RewardMassBelow((capI - float64(l)*slotMHz) / net.CUnit())
				if er <= 0 {
					continue
				}
				v := prob.AddVariable(fmt.Sprintf("y[%d,%d,%d]", j, i, l), er)
				byReq[j] = append(byReq[j], svar{v: v, i: i, l: l})
			}
		}
	}
	for _, j := range active {
		vs := byReq[j]
		if len(vs) == 0 {
			continue
		}
		terms := make([]lp.Term, len(vs))
		for k, sv := range vs {
			terms[k] = lp.Term{Var: sv.v, Coef: 1}
		}
		if _, err := prob.AddConstraint(fmt.Sprintf("assign[%d]", j), lp.LE, 1, terms...); err != nil {
			panic(err)
		}
	}
	for i := 0; i < net.NumStations(); i++ {
		capI := net.Capacity(i) - used[i]
		L := int(capI / slotMHz)
		share := net.Capacity(i) / rt / net.CUnit() // LP-PT's C(bs_i)/|R_t|
		for l := 1; l <= L; l++ {
			slotCap := float64(l) * slotMHz / net.CUnit()
			var terms []lp.Term
			for _, j := range active {
				for _, sv := range byReq[j] {
					if sv.i != i || sv.l > l {
						continue
					}
					coef := reqs[j].Dist.ExpectedTruncatedRate(math.Min(slotCap, share))
					if coef > 0 {
						terms = append(terms, lp.Term{Var: sv.v, Coef: coef})
					}
				}
			}
			if len(terms) == 0 {
				continue
			}
			if _, err := prob.AddConstraint(fmt.Sprintf("cap[%d,%d]", i, l), lp.LE, 2*slotCap, terms...); err != nil {
				panic(err)
			}
		}
	}
	return prob
}

// benchSlotSequence pre-builds a drifting sequence of per-slot LP-PT
// instances at the default scenario: the active set churns and occupancy
// accumulates from slot to slot, exactly the warm-start workload of
// sim.DynamicRR.
func benchSlotSequence(b *testing.B, stations, requests, slots int) []*lp.Problem {
	b.Helper()
	net, reqs := benchFixture(b, stations, requests)
	rng := rand.New(rand.NewSource(41))
	used := make([]float64, net.NumStations())
	pending := make([]bool, len(reqs))
	for j := range pending {
		pending[j] = rng.Float64() < 0.5
	}
	probs := make([]*lp.Problem, slots)
	for s := range probs {
		// Slot-to-slot churn as the online engine produces it: a fraction
		// of the pending pool is admitted or expires, new arrivals join.
		for j := range pending {
			if pending[j] {
				if rng.Float64() < 0.15 {
					pending[j] = false
				}
			} else if rng.Float64() < 0.15 {
				pending[j] = true
			}
		}
		var active []int
		for j, p := range pending {
			if p {
				active = append(active, j)
			}
		}
		if len(active) == 0 {
			active = []int{rng.Intn(len(reqs))}
		}
		probs[s] = buildBenchLPPT(net, reqs, active, used)
		for i := range used {
			used[i] += rng.Float64() * 0.05 * (net.Capacity(i) - used[i])
		}
	}
	return probs
}

// BenchmarkLPColdVsWarm contrasts solving each slot of an LP-PT sequence
// from scratch against warm-starting from the previous slot's optimal
// basis (the production configuration). Slot 0 has no predecessor and is
// solved identically (cold) by both configurations, so it is primed in
// setup and both arms time the same slots 1..n — the steady-state cost a
// DynamicRR run pays per slot. The warm path must reach the same
// objectives — to 1e-9, checked every iteration — in a fraction of the
// time.
func BenchmarkLPColdVsWarm(b *testing.B) {
	const slots = 8
	probs := benchSlotSequence(b, 20, 200, slots)
	coldObj := make([]float64, slots)
	var basis0 *lp.Basis
	for s, p := range probs {
		sol, err := p.Solve()
		if err != nil || sol.Status != lp.StatusOptimal {
			b.Fatalf("slot %d: %v status %v", s, err, sol.Status)
		}
		coldObj[s] = sol.Objective
		if s == 0 {
			basis0 = sol.Basis
		}
	}
	solveSeq := func(b *testing.B, warmStart bool) {
		b.Helper()
		pivots := 0
		for i := 0; i < b.N; i++ {
			warm := basis0
			for s := 1; s < slots; s++ {
				var opts lp.SolveOptions
				if warmStart {
					opts.WarmStart = warm
				}
				sol, err := probs[s].SolveWithOptions(opts)
				if err != nil || sol.Status != lp.StatusOptimal {
					b.Fatalf("slot %d: %v status %v", s, err, sol.Status)
				}
				if d := math.Abs(sol.Objective - coldObj[s]); d > 1e-9*(1+math.Abs(coldObj[s])) {
					b.Fatalf("slot %d: objective drift %g", s, d)
				}
				warm = sol.Basis
				pivots += sol.Iterations
			}
		}
		b.ReportMetric(float64(pivots)/float64(b.N*(slots-1)), "pivots/solve")
	}
	b.Run("cold", func(b *testing.B) { solveSeq(b, false) })
	b.Run("warm", func(b *testing.B) { solveSeq(b, true) })
}

// BenchmarkLPPTSlot measures one warmed per-slot LP-PT solve in isolation:
// the steady-state marginal cost of a DynamicRR slot's LP once the basis
// from the previous slot is in hand.
func BenchmarkLPPTSlot(b *testing.B) {
	probs := benchSlotSequence(b, 20, 200, 2)
	seed, err := probs[0].Solve()
	if err != nil || seed.Status != lp.StatusOptimal {
		b.Fatalf("seed solve: %v status %v", err, seed.Status)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := probs[1].SolveWithOptions(lp.SolveOptions{WarmStart: seed.Basis})
		if err != nil || sol.Status != lp.StatusOptimal {
			b.Fatalf("%v status %v", err, sol.Status)
		}
	}
}

// BenchmarkOnlineBaselines measures the per-run cost of the three online
// baselines together (they are orders of magnitude cheaper than
// DynamicRR, matching the paper's running-time discussion).
func BenchmarkOnlineBaselines(b *testing.B) {
	rng := rand.New(rand.NewSource(97))
	net, err := mec.RandomNetwork(20, 3000, 3600, rng)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := workload.Generate(workload.Config{
		NumRequests: 300, NumStations: 20, GeometricRates: true, ArrivalHorizon: 100,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	scheds := []sim.Scheduler{&sim.OnlineOCORP{}, &sim.OnlineGreedy{}, &sim.OnlineHeuKKT{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sched := range scheds {
			workload.Reset(reqs)
			eng, err := sim.NewEngine(net, reqs, rand.New(rand.NewSource(int64(i))), sim.Config{Horizon: 120})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Run(sched); err != nil {
				b.Fatal(err)
			}
		}
	}
}
