package mecoffload

import (
	"bytes"
	"math/rand"
	"testing"
)

func testScenario(t *testing.T, cfg ScenarioConfig, seed int64) *Scenario {
	t.Helper()
	scn, err := NewScenario(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	return scn
}

func TestScenarioDefaults(t *testing.T) {
	scn := testScenario(t, ScenarioConfig{}, 1)
	if scn.Net.NumStations() != 20 {
		t.Fatalf("stations = %d, want 20", scn.Net.NumStations())
	}
	if len(scn.Offline) != 150 || len(scn.Online) != 150 {
		t.Fatalf("workload sizes %d/%d, want 150", len(scn.Offline), len(scn.Online))
	}
	for _, r := range scn.Offline {
		if r.ArrivalSlot != 0 {
			t.Fatal("offline arrivals must be at slot 0")
		}
	}
	prev := 0
	for i, r := range scn.Online {
		if r.ArrivalSlot < prev {
			t.Fatal("online arrivals must be non-decreasing")
		}
		prev = r.ArrivalSlot
		if r.ID != i {
			t.Fatalf("online request %d has ID %d", i, r.ID)
		}
	}
}

func TestRunOfflineAllAlgorithms(t *testing.T) {
	scn := testScenario(t, ScenarioConfig{Stations: 6, Requests: 40}, 2)
	for _, algo := range OfflineAlgorithms() {
		if algo == Exact {
			continue // branch and bound at 40x6 is exercised separately
		}
		res, err := scn.RunOffline(algo, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Served == 0 {
			t.Fatalf("%s served nothing", algo)
		}
	}
	if _, err := scn.RunOffline("bogus", rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
	if _, err := scn.RunOffline(DynamicRR, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("DynamicRR is online-only")
	}
}

func TestRunOfflineExactSmall(t *testing.T) {
	scn := testScenario(t, ScenarioConfig{Stations: 3, Requests: 10}, 4)
	res, err := scn.RunOffline(Exact, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpectedLPBound <= 0 {
		t.Fatal("Exact should report a positive ILP objective")
	}
}

func TestRunOnlineAllAlgorithms(t *testing.T) {
	scn := testScenario(t, ScenarioConfig{Stations: 8, Requests: 80, ArrivalHorizon: 40}, 6)
	for _, algo := range OnlineAlgorithms() {
		res, err := scn.RunOnline(algo, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Served == 0 {
			t.Fatalf("%s served nothing", algo)
		}
	}
	if _, err := scn.RunOnline(Appro, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("Appro is offline-only")
	}
}

func TestScenarioReplayable(t *testing.T) {
	scn := testScenario(t, ScenarioConfig{Stations: 5, Requests: 30}, 8)
	a, err := scn.RunOffline(Heu, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := scn.RunOffline(Heu, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalReward != b.TotalReward || a.Served != b.Served {
		t.Fatalf("same seed differed: %v/%d vs %v/%d", a.TotalReward, a.Served, b.TotalReward, b.Served)
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	scn := testScenario(t, ScenarioConfig{Stations: 5, Requests: 25, ArrivalHorizon: 30}, 10)
	var buf bytes.Buffer
	if err := scn.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScenarioJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Net.NumStations() != 5 || len(back.Online) != 25 || len(back.Offline) != 25 {
		t.Fatalf("restored scenario sizes wrong: %d stations, %d/%d requests",
			back.Net.NumStations(), len(back.Online), len(back.Offline))
	}
	for i, r := range back.Online {
		if r.ArrivalSlot != scn.Online[i].ArrivalSlot {
			t.Fatalf("arrival %d changed", i)
		}
	}
	for _, r := range back.Offline {
		if r.ArrivalSlot != 0 {
			t.Fatal("offline arrivals must reset to 0")
		}
	}
	// The restored scenario runs the same algorithm to the same outcome.
	a, err := scn.RunOnline(HeuKKT, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	back.Horizon = scn.Horizon
	b, err := back.RunOnline(HeuKKT, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalReward != b.TotalReward {
		t.Fatalf("restored scenario diverged: %v vs %v", a.TotalReward, b.TotalReward)
	}
}
