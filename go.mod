module mecoffload

go 1.22
