package mecoffload

import (
	"fmt"
	"math/rand"
	"testing"

	"mecoffload/internal/core"
	"mecoffload/internal/dist"
	"mecoffload/internal/graph"
	"mecoffload/internal/mec"
	"mecoffload/internal/serve"
	"mecoffload/internal/sim"
	"mecoffload/internal/topology"
)

// benchPeriodicSpecs builds the steady-wave arrival burst for the
// incremental benchmark: one two-outcome request per island (rates 60
// and 80 MB/s, rewards varying by island only), accessing the island's
// 3000 MHz head station. Each island is its own LP component; with a
// one-slot hold and denominator-1 rounding the trace reaches a fixed
// point where every slot re-presents bit-identical component signatures
// — the high-clean-fraction regime the dirty-component cache is built
// for. The rate-80 outcome fits only the head station's spare capacity,
// so the head strictly dominates every other placement and the
// local-ratio certificate holds too.
func benchPeriodicSpecs(islands, per int) []serve.RequestSpec {
	specs := make([]serve.RequestSpec, islands)
	for i := range specs {
		specs[i] = serve.RequestSpec{
			AccessStation: i * per,
			DeadlineMS:    200,
			DurationSlots: 1,
			Outcomes: []serve.OutcomeSpec{
				{RateMBs: 60, Prob: 0.5, Reward: float64(100 + 13*i)},
				{RateMBs: 80, Prob: 0.5, Reward: float64(150 + 13*i)},
			},
		}
	}
	return specs
}

// BenchmarkIncrementalServeSlot measures one daemon scheduling slot on a
// high-clean-fraction periodic trace under the three per-slot decision
// engines: the full re-solve baseline (mode=full, StableLP), the
// dirty-component incremental cache (mode=incremental), and the LP-free
// local-ratio fast path (mode=local-ratio). The trace repeats the same
// wave every slot, so the incremental engine replays cached decisions on
// every component and the local-ratio engine certifies every component —
// the ns/op ratio against mode=full is the headline speedup recorded in
// BENCH_PR8.json. oracle.DiffIncrementalFull and oracle.DiffLocalRatioLP
// prove all three modes emit identical decisions; this benchmark only
// prices them.
func BenchmarkIncrementalServeSlot(b *testing.B) {
	const islands = 16
	modes := []struct {
		name string
		opts sim.DynamicRROptions
	}{
		{"full", sim.DynamicRROptions{RoundingDenominator: 1, StableLP: true}},
		{"incremental", sim.DynamicRROptions{RoundingDenominator: 1, Incremental: true}},
		{"local-ratio", sim.DynamicRROptions{RoundingDenominator: 1, LocalRatio: true}},
	}
	for _, mode := range modes {
		b.Run(fmt.Sprintf("mode=%s", mode.name), func(b *testing.B) {
			// Disconnected 4-station islands: every island is one LP
			// component with heterogeneous capacities, so the full
			// re-solve prices a real multi-station LP per component while
			// the head station stays the strictly unique best placement.
			net := benchHeteroIslands(b, islands, benchIslandCaps)
			eng, err := serve.New(serve.Config{
				Net:       net,
				Rng:       rand.New(rand.NewSource(23)),
				DynamicRR: mode.opts,
			})
			if err != nil {
				b.Fatal(err)
			}
			eng.Start()
			defer func() { _ = eng.Stop() }()

			specs := benchPeriodicSpecs(islands, len(benchIslandCaps))
			// Reach the periodic fixed point before the clock starts.
			for w := 0; w < 4; w++ {
				if _, err := eng.SubmitBatch(specs); err != nil {
					b.Fatal(err)
				}
				if err := eng.Flush(); err != nil {
					b.Fatal(err)
				}
				if err := eng.Tick(); err != nil {
					b.Fatal(err)
				}
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Intake happens off the clock: the benchmark prices the
				// scheduling slot, not ingest.
				b.StopTimer()
				if _, err := eng.SubmitBatch(specs); err != nil {
					b.Fatal(err)
				}
				if err := eng.Flush(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := eng.Tick(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := eng.IncStats()
			switch {
			case mode.opts.Incremental && st.CleanHits == 0:
				b.Fatal("incremental mode produced no clean hits: the trace is not periodic")
			case mode.opts.LocalRatio && st.FastPath == 0:
				b.Fatal("local-ratio mode certified no component")
			}
			if b.N > 1 {
				if mode.opts.Incremental {
					b.ReportMetric(float64(st.CleanHits)/float64(st.CleanHits+st.DirtySolves), "clean-frac")
				}
				if mode.opts.LocalRatio {
					b.ReportMetric(float64(st.FastPath)/float64(st.FastPath+st.FastFallback), "certified-frac")
				}
			}
		})
	}
}

// benchIslandCaps are the per-island station capacities of the
// incremental benchmark's network. The head station's spare slot-1
// capacity, (3000-1000)/20 = 100 MB/s, fits both the rate-60 and the
// rate-80 outcome; every tail station fits only rate 60, and no station
// pays anything at slot 2 ((cap-2000)/20 < 60 everywhere). A two-outcome
// request therefore has a strictly unique best placement at the head —
// the local-ratio certificate holds — while the component LP still
// carries all four stations' variables for the full re-solve to price.
var benchIslandCaps = []float64{3000, 2500, 2400, 2300}

// benchHeteroIslands builds `islands` disconnected chains of len(caps)
// stations each; intra-island edges have weight 1, so every island
// station is delay-feasible and the whole island is one LP component.
func benchHeteroIslands(b *testing.B, islands int, caps []float64) *mec.Network {
	b.Helper()
	per := len(caps)
	n := islands * per
	g := graph.New(n)
	nodes := make([]topology.Node, n)
	stations := make([]mec.BaseStation, n)
	for i := 0; i < n; i++ {
		nodes[i] = topology.Node{X: float64(i) * 0.1}
		stations[i] = mec.BaseStation{CapacityMHz: caps[i%per], SpeedFactor: 1}
		if i%per != 0 {
			if _, err := g.AddEdge(i-1, i, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	net, err := mec.NewNetwork(mec.NetworkConfig{
		Stations: stations,
		Topo:     &topology.Topology{Graph: g, Nodes: nodes},
	})
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// BenchmarkLocalRatio prices the pure per-batch decision cost — no
// daemon, no settlement, just ScheduleBatch — on the same all-certified
// instance: 16 single-station components, one rate-60 request each.
// mode=lp builds and solves each component's LP (StableLP,
// warm-started); mode=incremental replays the dirty-component cache
// (every component clean after the warm run); mode=fastpath certifies
// and emits the schedule combinatorially without touching the LP. The
// deltas are the microsecond cost of admission per decision engine.
func BenchmarkLocalRatio(b *testing.B) {
	const stations = 16
	// Single-station islands at 3000 MHz: (3000-1000)/20 = 100 >= 60 pays
	// slot 1 in full, (3000-2000)/20 = 50 < 60 pays slot 2 nothing, so a
	// rate-60 request's best placement is strictly unique on every island.
	net := benchHeteroIslands(b, stations, []float64{3000})
	reqs := make([]*mec.Request, stations)
	active := make([]int, stations)
	for i := range reqs {
		d, err := dist.NewRateReward([]dist.Outcome{
			{Rate: 60, Prob: 1, Reward: float64(100 + 17*i)},
		})
		if err != nil {
			b.Fatal(err)
		}
		reqs[i] = &mec.Request{
			ID:            i,
			AccessStation: i,
			Tasks:         []mec.Task{{Name: "render", OutputKb: 100, WorkMS: 30}},
			DeadlineMS:    200,
			DurationSlots: 4,
			Dist:          d,
		}
		active[i] = i
	}
	modes := []struct {
		name string
		opts core.BatchOptions
	}{
		{"lp", core.BatchOptions{StableLP: true}},
		{"incremental", core.BatchOptions{}},
		{"fastpath", core.BatchOptions{LocalRatio: true}},
	}
	for _, mode := range modes {
		b.Run(fmt.Sprintf("mode=%s", mode.name), func(b *testing.B) {
			warm := core.NewWarmCache()
			var inc *core.IncCache
			switch mode.name {
			case "incremental":
				inc = core.NewIncCache()
			case "fastpath":
				inc = core.NewIncCounters()
			}
			used := make([]float64, stations)
			res := &core.Result{Decisions: make([]core.Decision, stations)}
			rng := rand.New(rand.NewSource(31))
			run := func() {
				for i := range used {
					used[i] = 0
				}
				for i := range res.Decisions {
					res.Decisions[i] = core.Decision{RequestID: i, Station: -1}
				}
				opts := mode.opts
				opts.Active = active
				opts.Used = used
				opts.RoundingDenominator = 1
				opts.Passes = 1
				opts.Warm = warm
				opts.Inc = inc
				if _, err := core.ScheduleBatch(net, reqs, res, rng, opts); err != nil {
					b.Fatal(err)
				}
			}
			run() // warm the LP basis / decision cache, prove certification
			if mode.opts.LocalRatio {
				if st := inc.Stats(); st.FastFallback != 0 || st.FastPath == 0 {
					b.Fatalf("instance is not all-certified: %+v", st)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
			b.StopTimer()
			if mode.name == "incremental" {
				if st := inc.Stats(); st.CleanHits == 0 {
					b.Fatalf("steady state never went clean: %+v", st)
				} else if b.N > 1 {
					b.ReportMetric(float64(st.CleanHits)/float64(st.CleanHits+st.DirtySolves), "clean-frac")
				}
			}
		})
	}
}
