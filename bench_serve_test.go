package mecoffload

import (
	"math/rand"
	"testing"

	"mecoffload/internal/mec"
	"mecoffload/internal/oracle"
	"mecoffload/internal/serve"
	"mecoffload/internal/sim"
)

// BenchmarkServeSlot measures one daemon scheduling slot under steady
// load: each iteration submits a small arrival burst and ticks the
// admission engine once, exercising intake, DynamicRR with the
// warm-started LP-PT, settlement, and the shard fan-out — the loop a
// production arserved runs every tick interval.
func BenchmarkServeSlot(b *testing.B) {
	benchServeSlot(b, nil)
}

// BenchmarkServeSlotOracle is the same loop with the oracle's per-slot
// invariant checker installed (what MEC_ORACLE=1 turns on in production);
// its delta against BenchmarkServeSlot is the cost of runtime checking.
func BenchmarkServeSlotOracle(b *testing.B) {
	benchServeSlot(b, oracle.EngineChecker())
}

// BenchmarkServeSlotSteady measures the quiescent slot path: no
// arrivals, no in-flight streams, just the per-tick engine loop a
// drained daemon spins on. This path is allocation-free — the engine
// reuses its slot scratch and skips shard publishing on idle slots —
// and the benchjson gate fails the build if allocs/op ever leaves 0
// (TestRunSlotIdleNoAllocs pins the same contract in-process).
func BenchmarkServeSlotSteady(b *testing.B) {
	net, err := mec.RandomNetwork(20, 3000, 3600, rand.New(rand.NewSource(17)))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := serve.New(serve.Config{Net: net, Rng: rand.New(rand.NewSource(18))})
	if err != nil {
		b.Fatal(err)
	}
	eng.Start()
	defer func() { _ = eng.Stop() }()
	// One warmup tick so lazily-grown engine buffers reach steady size.
	if err := eng.Tick(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchServeSlot(b *testing.B, check sim.StepChecker) {
	net, err := mec.RandomNetwork(20, 3000, 3600, rand.New(rand.NewSource(17)))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := serve.New(serve.Config{Net: net, Rng: rand.New(rand.NewSource(18)), StepChecker: check})
	if err != nil {
		b.Fatal(err)
	}
	eng.Start()
	defer func() { _ = eng.Stop() }()

	// Warm the LP basis cache so iterations measure the steady state.
	for i := 0; i < 4; i++ {
		if _, _, err := eng.Submit(serve.RequestSpec{AccessStation: i % 20, DurationSlots: 4}); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.Tick(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 4; k++ {
			if _, _, err := eng.Submit(serve.RequestSpec{AccessStation: (4*i + k) % 20, DurationSlots: 4}); err != nil {
				b.Fatal(err)
			}
		}
		if err := eng.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	hits, misses := eng.WarmStats()
	if total := hits + misses; total > 0 {
		b.ReportMetric(float64(hits)/float64(total), "warm-hit-ratio")
	}
}

// BenchmarkServeIngest measures the batched intake pipeline end to end:
// each iteration submits one batch through SubmitBatch (pricing, ring
// transit, registry fan-out), flushes it into the planner, and ticks —
// the per-batch cost a bulk replay or the NDJSON endpoint pays. Gated
// by the benchjson regression check alongside the slot benchmarks.
func BenchmarkServeIngest(b *testing.B) {
	net, err := mec.RandomNetwork(20, 3000, 3600, rand.New(rand.NewSource(17)))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := serve.New(serve.Config{Net: net, Rng: rand.New(rand.NewSource(18))})
	if err != nil {
		b.Fatal(err)
	}
	eng.Start()
	defer func() { _ = eng.Stop() }()

	const batch = 64
	specs := make([]serve.RequestSpec, batch)
	for i := range specs {
		specs[i] = serve.RequestSpec{
			AccessStation: i % 20,
			DurationSlots: 4,
			Outcomes: []serve.OutcomeSpec{
				{RateMBs: 40, Prob: 1, Reward: float64(300 + (i*7)%400)},
			},
		}
	}
	// Warm the pipeline and the LP basis cache.
	if _, err := eng.SubmitBatch(specs); err != nil {
		b.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := eng.Tick(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SubmitBatch(specs); err != nil {
			b.Fatal(err)
		}
		if err := eng.Flush(); err != nil {
			b.Fatal(err)
		}
		if err := eng.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(batch, "reqs/batch")
}
