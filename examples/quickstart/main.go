// Quickstart: generate a paper-default MEC scenario, run every offline
// algorithm on the same workload, and print the comparison the paper's
// Fig. 3 plots at one x-point.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"mecoffload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(42))

	// 20 base stations on a GT-ITM-style topology, 200 AR requests with
	// uncertain (rate, reward) distributions — the paper's defaults.
	scn, err := mecoffload.NewScenario(mecoffload.ScenarioConfig{
		Stations: 20,
		Requests: 200,
	}, rng)
	if err != nil {
		return err
	}

	fmt.Printf("network: %d stations, %.0f MHz total capacity\n",
		scn.Net.NumStations(), scn.Net.TotalCapacity())
	fmt.Printf("workload: %d requests, expected demand %.0f MHz\n\n",
		len(scn.Offline), expectedDemand(scn))

	fmt.Printf("%-8s  %10s  %8s  %10s  %10s\n",
		"algo", "reward($)", "served", "latency", "runtime")
	for _, algo := range []mecoffload.Algorithm{
		mecoffload.Appro, mecoffload.Heu,
		mecoffload.OCORP, mecoffload.Greedy, mecoffload.HeuKKT,
	} {
		res, err := scn.RunOffline(algo, rand.New(rand.NewSource(7)))
		if err != nil {
			return fmt.Errorf("%s: %w", algo, err)
		}
		fmt.Printf("%-8s  %10.0f  %5d/%d  %8.1fms  %10s\n",
			res.Algorithm, res.TotalReward, res.Served, len(res.Decisions),
			res.AvgLatencyMS(), res.Runtime.Round(1000000))
	}
	return nil
}

func expectedDemand(scn *mecoffload.Scenario) float64 {
	total := 0.0
	for _, r := range scn.Offline {
		total += scn.Net.RateToMHz(r.ExpectedRate())
	}
	return total
}
