// Bandit threshold learning in isolation: strips DynamicRR's admission
// threshold problem down to a bare Lipschitz bandit so the successive
// elimination mechanics (Algorithm 3 steps 1-9) are visible — which arms
// get eliminated when, and how the regret of each policy compares on the
// same reward landscape.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"mecoffload/internal/bandit"
)

const (
	kappa    = 12
	rounds   = 3000
	minTh    = 200.0
	maxTh    = 1200.0
	noiseStd = 120.0
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "banditthreshold: %v\n", err)
		os.Exit(1)
	}
}

// rewardLandscape is a synthetic slot-reward curve over the threshold: too
// low a threshold over-admits (evictions), too high starves the system.
// The optimum sits near 550 MHz.
func rewardLandscape(th float64) float64 {
	return 900 - 0.004*(th-550)*(th-550)
}

func run() error {
	rng := rand.New(rand.NewSource(99))

	type entry struct {
		name string
		mk   func() (bandit.Policy, error)
	}
	entries := []entry{
		{"SuccessiveElim", func() (bandit.Policy, error) { return bandit.NewSuccessiveElimination(kappa) }},
		{"UCB1", func() (bandit.Policy, error) { return bandit.NewUCB1(kappa) }},
		{"EpsilonGreedy", func() (bandit.Policy, error) {
			return bandit.NewEpsilonGreedy(kappa, 0.1, rand.New(rand.NewSource(3)))
		}},
	}

	// Best achievable mean reward on the discretized grid.
	bestMean := math.Inf(-1)
	for arm := 0; arm < kappa; arm++ {
		th := minTh + float64(arm)*(maxTh-minTh)/float64(kappa-1)
		if m := rewardLandscape(th); m > bestMean {
			bestMean = m
		}
	}

	for _, e := range entries {
		pol, err := e.mk()
		if err != nil {
			return err
		}
		lip, err := bandit.NewLipschitz(pol, minTh, maxTh)
		if err != nil {
			return err
		}
		total := 0.0
		for t := 0; t < rounds; t++ {
			arm, th := lip.SelectValue()
			reward := rewardLandscape(th) + rng.NormFloat64()*noiseStd
			lip.Update(arm, reward)
			total += rewardLandscape(th) // regret against the true mean
		}
		regret := bestMean*rounds - total
		fmt.Printf("%-15s regret=%8.0f  (bound shape %.0f)\n",
			e.name, regret, lip.RegretBound(rounds, etaOf()))

		if se, ok := pol.(*bandit.SuccessiveElimination); ok {
			fmt.Printf("                active arms after %d rounds:", rounds)
			for arm := 0; arm < kappa; arm++ {
				if se.Active(arm) {
					fmt.Printf(" %.0fMHz", lip.Value(arm))
				}
			}
			fmt.Printf("  (best arm: %.0fMHz)\n", lip.Value(se.BestArm()))
		}
	}
	return nil
}

// etaOf is the Lipschitz constant of the landscape over [minTh, maxTh]:
// max |d reward / d th| = 0.008 * max|th - 550|.
func etaOf() float64 {
	return 0.008 * math.Max(550-minTh, maxTh-550)
}
