// Capacity planning: how many base stations does a provider need for a
// target AR workload? This example sweeps the deployment size (the paper's
// Fig. 5 axis) and reports reward, acceptance ratio, and latency for the
// provider's algorithm of choice (Heu) against the strongest baseline
// (HeuKKT), answering the question the paper's Section VI-C studies.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"mecoffload"
)

const targetRequests = 200

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "capacityplanning: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("capacity planning for %d concurrent AR requests\n\n", targetRequests)
	fmt.Printf("%8s  %22s  %22s\n", "", "Heu", "HeuKKT")
	fmt.Printf("%8s  %10s %11s  %10s %11s\n",
		"stations", "reward($)", "accepted", "reward($)", "accepted")

	for _, stations := range []int{10, 15, 20, 25, 30, 40, 50} {
		rng := rand.New(rand.NewSource(int64(1000 + stations)))
		scn, err := mecoffload.NewScenario(mecoffload.ScenarioConfig{
			Stations: stations,
			Requests: targetRequests,
		}, rng)
		if err != nil {
			return err
		}
		heu, err := scn.RunOffline(mecoffload.Heu, rand.New(rand.NewSource(1)))
		if err != nil {
			return err
		}
		kkt, err := scn.RunOffline(mecoffload.HeuKKT, rand.New(rand.NewSource(1)))
		if err != nil {
			return err
		}
		fmt.Printf("%8d  %10.0f %10.0f%%  %10.0f %10.0f%%\n",
			stations,
			heu.TotalReward, 100*heu.AcceptanceRatio(),
			kkt.TotalReward, 100*kkt.AcceptanceRatio())
	}

	fmt.Println("\nreward rises and saturates with deployment size (paper Fig. 5a);")
	fmt.Println("the smallest deployment where acceptance plateaus is the budget answer.")
	return nil
}
