// AR streaming: drive the online simulator with a bursty AR workload
// whose (rate, reward) distributions come from a synthetic Braud-style
// frame trace (64Kb JPEG frames at 90-120 fps), and watch DynamicRR's
// threshold learner work against the online baselines.
//
// This is the workload the paper's introduction motivates: web AR
// applications streaming camera frames into a render/track/world-model/
// recognize pipeline with a 200 ms end-to-end budget.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"mecoffload"
	"mecoffload/internal/mec"
	"mecoffload/internal/sim"
	"mecoffload/internal/workload"
)

const (
	stations = 20
	users    = 400
	horizon  = 150
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "arstreaming: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(2026))
	net, err := mec.RandomNetwork(stations, 3000, 3600, rng)
	if err != nil {
		return err
	}
	reqs, err := traceWorkload(rng)
	if err != nil {
		return err
	}
	fmt.Printf("AR streaming scenario: %d users over %d slots (%.1f s), %d stations\n\n",
		users, horizon, float64(horizon)*mec.DefaultSlotLengthMS/1000, stations)

	type entry struct {
		name string
		mk   func() (sim.Scheduler, error)
	}
	for _, e := range []entry{
		{"DynamicRR", func() (sim.Scheduler, error) { return sim.NewDynamicRR(sim.DynamicRROptions{}) }},
		{"OCORP", func() (sim.Scheduler, error) { return &sim.OnlineOCORP{}, nil }},
		{"Greedy", func() (sim.Scheduler, error) { return &sim.OnlineGreedy{}, nil }},
		{"HeuKKT", func() (sim.Scheduler, error) { return &sim.OnlineHeuKKT{}, nil }},
	} {
		workload.Reset(reqs)
		sched, err := e.mk()
		if err != nil {
			return err
		}
		eng, err := sim.NewEngine(net, reqs, rand.New(rand.NewSource(5)), sim.Config{Horizon: horizon + 20})
		if err != nil {
			return err
		}
		res, err := eng.Run(sched)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		if err := sim.AuditTimeline(net, reqs, res, horizon+20); err != nil {
			return fmt.Errorf("%s audit: %w", e.name, err)
		}
		fmt.Printf("%-10s reward=$%-8.0f served=%3d/%d  avg latency=%5.1f ms\n",
			res.Algorithm, res.TotalReward, res.Served, len(reqs), res.AvgLatencyMS())

		if d, ok := sched.(*sim.DynamicRR); ok {
			printThresholds(d)
		}
	}
	return nil
}

// traceWorkload builds requests whose rate distributions are the empirical
// histograms of per-user synthetic capture traces, arriving in bursts
// (users joining a shared AR session in waves).
func traceWorkload(rng *rand.Rand) ([]*mecoffload.Request, error) {
	reqs := make([]*mecoffload.Request, 0, users)
	stages := workload.CanonicalPipeline()
	id := 0
	for wave := 0; wave < 5; wave++ {
		waveStart := wave * horizon / 5
		for u := 0; u < users/5; u++ {
			trace, err := workload.GenerateTrace(30, rng)
			if err != nil {
				return nil, err
			}
			d, err := trace.EmpiricalDistribution(5, 30, 50, 12, 15, rng)
			if err != nil {
				return nil, err
			}
			tasks := make([]mec.Task, len(stages))
			for k, st := range stages {
				tasks[k] = mec.Task{Name: st.Name, OutputKb: st.OutputKb, WorkMS: st.BaseWorkMS}
			}
			reqs = append(reqs, &mec.Request{
				ID:            id,
				ArrivalSlot:   waveStart + rng.Intn(5), // burst within the wave front
				AccessStation: rng.Intn(stations),
				Tasks:         tasks,
				DeadlineMS:    mec.DefaultDeadlineMS,
				DurationSlots: 20 + rng.Intn(40),
				Dist:          d,
			})
			id++
		}
	}
	// Arrival order must be non-decreasing for the engine.
	for i := 1; i < len(reqs); i++ {
		for j := i; j > 0 && reqs[j].ArrivalSlot < reqs[j-1].ArrivalSlot; j-- {
			reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
		}
	}
	for i, r := range reqs {
		r.ID = i
	}
	return reqs, nil
}

func printThresholds(d *sim.DynamicRR) {
	lip := d.Bandit()
	if lip == nil {
		return
	}
	pol := lip.Policy()
	fmt.Printf("           learned thresholds (plays per arm):")
	for arm := 0; arm < pol.NumArms(); arm++ {
		fmt.Printf(" %.0fMHz:%d", lip.Value(arm), pol.Plays(arm))
	}
	fmt.Println()
}
