// Frame pipeline: the microscopic view behind the offloading model. The
// coarse algorithms treat each AR request as a pipeline with per-task
// aggregate delays; this example simulates the same pipeline frame by
// frame (90-120 fps capture, tandem stage queues) to show where the
// 200 ms per-frame budget goes, what capture rate a placement can
// sustain, and how a backhaul hop inserted by task distribution (what
// algorithm Heu does under congestion) shifts the latency distribution.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"mecoffload/internal/stream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "framepipeline: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))

	consolidated := []stream.Stage{
		{Name: "render", ServiceMS: 8, JitterFrac: 0.15},
		{Name: "track", ServiceMS: 3, JitterFrac: 0.15},
		{Name: "world-model", ServiceMS: 2.5, JitterFrac: 0.15},
		{Name: "recognize", ServiceMS: 5, JitterFrac: 0.15},
	}
	// Heu migrated the recognize stage to a neighbouring station: one
	// extra backhaul hop for the intermediate matrices.
	distributed := append([]stream.Stage(nil), consolidated...)
	distributed[3].TransitMS = 6

	fmt.Printf("max sustainable capture rate (consolidated): %.0f fps\n\n",
		stream.MaxSustainableFPS(consolidated))

	fmt.Printf("%-14s %5s  %8s %8s %8s %8s  %6s\n",
		"placement", "fps", "mean", "p95", "p99", "max", "late")
	for _, tc := range []struct {
		name   string
		stages []stream.Stage
		fps    float64
	}{
		{"consolidated", consolidated, 90},
		{"consolidated", consolidated, 120},
		{"distributed", distributed, 90},
		{"distributed", distributed, 120},
	} {
		stats, err := stream.Simulate(stream.Config{
			Stages: tc.stages, FPS: tc.fps, Frames: 2000, BudgetMS: 200,
		}, rng)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %5.0f  %7.2fms %7.2fms %7.2fms %7.2fms  %5.1f%%\n",
			tc.name, tc.fps, stats.MeanMS, stats.P95MS, stats.P99MS, stats.MaxMS,
			100*stats.LateFrac)
	}

	// Effective per-task delays at the operating point — the quantities
	// the coarse model (mec.Task.WorkMS) aggregates.
	eff, err := stream.EffectiveWorkMS(consolidated, 105, 2000, rng)
	if err != nil {
		return err
	}
	fmt.Println("\neffective per-task delays at 105 fps (feeds mec.Task.WorkMS):")
	for i, st := range consolidated {
		fmt.Printf("  %-12s %.2f ms\n", st.Name, eff[i])
	}
	return nil
}
