// Package rnd derives labeled deterministic random streams from one base
// seed. Every cmd/ binary takes a single -seed flag but needs several
// independent streams (topology, workload, demand realization); deriving
// each from (seed, label) replaces the fragile seed+1 arithmetic that
// silently correlates streams when an intermediate consumer is added or
// removed, and keeps every binary off the global math/rand state.
package rnd

import (
	"hash/fnv"
	"math/rand"
)

// Derive returns the sub-seed for a labeled stream: the FNV-1a hash of
// the label folded into the base seed. Distinct labels yield decorrelated
// sub-seeds; the same (seed, label) pair always yields the same stream.
func Derive(seed int64, label string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return seed ^ int64(h.Sum64())
}

// New returns a rand.Rand for the labeled stream.
func New(seed int64, label string) *rand.Rand {
	return rand.New(rand.NewSource(Derive(seed, label)))
}
