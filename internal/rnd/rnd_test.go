package rnd

import "testing"

func TestDeriveDeterministic(t *testing.T) {
	if Derive(42, "workload") != Derive(42, "workload") {
		t.Fatal("Derive is not deterministic")
	}
	if New(42, "workload").Int63() != New(42, "workload").Int63() {
		t.Fatal("New streams diverge for identical (seed, label)")
	}
}

func TestDeriveSeparatesStreams(t *testing.T) {
	if Derive(42, "workload") == Derive(42, "engine") {
		t.Fatal("distinct labels collide")
	}
	if Derive(42, "workload") == Derive(43, "workload") {
		t.Fatal("distinct seeds collide")
	}
	// The old seed+1 idiom made stream k of seed s equal stream k-1 of
	// seed s+1; derived streams must not alias that way.
	if Derive(42, "engine") == Derive(43, "workload") {
		t.Fatal("derived streams alias across seeds")
	}
}
