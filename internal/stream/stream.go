// Package stream simulates one AR processing pipeline at frame
// granularity: camera frames arrive at a capture rate (90-120 fps in the
// paper's trace) and flow through the pipeline stages (render, track,
// world-model, recognize) as a tandem queueing network. The offloading
// algorithms work with per-task aggregate delays (mec.Task.WorkMS); this
// package is the microscopic model those aggregates abstract — it
// validates that a pipeline placement meets the paper's per-frame 200 ms
// budget ("the delay that affects the user's experiences ... depends on
// how quickly each augmentation is added into each video frame", Section
// III-D) and calibrates effective per-task delays under load.
package stream

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Errors returned by the simulator.
var (
	ErrNoStages  = errors.New("stream: pipeline needs at least one stage")
	ErrBadParams = errors.New("stream: invalid parameters")
)

// Stage is one pipeline stage of the frame-level model.
type Stage struct {
	// Name identifies the stage.
	Name string
	// ServiceMS is the mean per-frame service time.
	ServiceMS float64
	// JitterFrac scales symmetric uniform service-time jitter (0 = fixed,
	// 0.2 = +/-20%).
	JitterFrac float64
	// TransitMS is the network delay of moving a frame's data from the
	// previous stage to this one (0 when co-located on one station).
	TransitMS float64
}

// Config parameterizes one simulation run.
type Config struct {
	// Stages is the pipeline, in execution order.
	Stages []Stage
	// FPS is the capture rate in frames per second.
	FPS float64
	// Frames is how many frames to simulate.
	Frames int
	// BudgetMS marks frames whose end-to-end latency exceeds it as late
	// (0 disables the budget accounting).
	BudgetMS float64
}

func (c *Config) validate() error {
	if len(c.Stages) == 0 {
		return ErrNoStages
	}
	for _, st := range c.Stages {
		if st.ServiceMS < 0 || st.JitterFrac < 0 || st.JitterFrac > 1 || st.TransitMS < 0 {
			return fmt.Errorf("%w: stage %+v", ErrBadParams, st)
		}
	}
	if c.FPS <= 0 || c.Frames <= 0 || c.BudgetMS < 0 {
		return fmt.Errorf("%w: fps=%v frames=%d budget=%v", ErrBadParams, c.FPS, c.Frames, c.BudgetMS)
	}
	return nil
}

// Stats summarizes a simulated frame stream.
type Stats struct {
	// Frames is the number of frames simulated.
	Frames int
	// MeanMS, P50MS, P95MS, P99MS, MaxMS summarize per-frame end-to-end
	// latency.
	MeanMS, P50MS, P95MS, P99MS, MaxMS float64
	// LateFrac is the fraction of frames over the budget (0 when no
	// budget was set).
	LateFrac float64
	// ThroughputFPS is the achieved output rate over the simulated span.
	ThroughputFPS float64
	// Saturated reports whether some stage cannot keep up with the input
	// rate (its utilization is >= 1), so queues grow without bound.
	Saturated bool
	// StageUtilization is the per-stage busy fraction.
	StageUtilization []float64
}

// Simulate runs the tandem-queue pipeline and returns latency statistics.
// Frames are generated at exact 1/FPS intervals; each stage serves frames
// FIFO, one at a time.
func Simulate(cfg Config, rng *rand.Rand) (*Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	interval := 1000 / cfg.FPS // ms between captures
	k := len(cfg.Stages)
	freeAt := make([]float64, k)
	busy := make([]float64, k)
	latencies := make([]float64, cfg.Frames)
	late := 0
	var lastDone float64

	for f := 0; f < cfg.Frames; f++ {
		tGen := float64(f) * interval
		t := tGen
		for s, st := range cfg.Stages {
			t += st.TransitMS
			if t < freeAt[s] {
				t = freeAt[s] // wait for the stage to drain
			}
			service := st.ServiceMS
			if st.JitterFrac > 0 {
				service *= 1 + st.JitterFrac*(2*rng.Float64()-1)
			}
			t += service
			freeAt[s] = t
			busy[s] += service
		}
		latencies[f] = t - tGen
		if cfg.BudgetMS > 0 && latencies[f] > cfg.BudgetMS {
			late++
		}
		lastDone = t
	}

	stats := &Stats{
		Frames:           cfg.Frames,
		StageUtilization: make([]float64, k),
	}
	span := lastDone
	if span <= 0 {
		span = interval * float64(cfg.Frames)
	}
	for s := range busy {
		stats.StageUtilization[s] = busy[s] / span
		// A stage whose mean service exceeds the frame interval cannot
		// keep up regardless of jitter.
		if cfg.Stages[s].ServiceMS >= interval {
			stats.Saturated = true
		}
	}
	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, l := range sorted {
		sum += l
	}
	stats.MeanMS = sum / float64(len(sorted))
	stats.P50MS = quantile(sorted, 0.50)
	stats.P95MS = quantile(sorted, 0.95)
	stats.P99MS = quantile(sorted, 0.99)
	stats.MaxMS = sorted[len(sorted)-1]
	if cfg.BudgetMS > 0 {
		stats.LateFrac = float64(late) / float64(cfg.Frames)
	}
	stats.ThroughputFPS = float64(cfg.Frames) / (span / 1000)
	return stats, nil
}

// quantile reads the q-quantile from an ascending slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// MaxSustainableFPS returns the highest capture rate the pipeline can
// sustain without unbounded queueing: the reciprocal of its slowest
// stage's mean service time.
func MaxSustainableFPS(stages []Stage) float64 {
	worst := 0.0
	for _, st := range stages {
		if st.ServiceMS > worst {
			worst = st.ServiceMS
		}
	}
	if worst == 0 {
		return math.Inf(1)
	}
	return 1000 / worst
}

// EffectiveWorkMS measures the effective per-stage delay (service plus
// queueing) at a given capture rate, the quantity the coarse
// mec.Task.WorkMS aggregates. It simulates the pipeline and apportions the
// measured mean latency over stages proportionally to their busy time.
func EffectiveWorkMS(stages []Stage, fps float64, frames int, rng *rand.Rand) ([]float64, error) {
	stats, err := Simulate(Config{Stages: stages, FPS: fps, Frames: frames}, rng)
	if err != nil {
		return nil, err
	}
	totalBusy := 0.0
	for _, u := range stats.StageUtilization {
		totalBusy += u
	}
	out := make([]float64, len(stages))
	for s := range stages {
		share := 1.0 / float64(len(stages))
		if totalBusy > 0 {
			share = stats.StageUtilization[s] / totalBusy
		}
		out[s] = stats.MeanMS * share
	}
	return out, nil
}
