package stream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func stages(services ...float64) []Stage {
	out := make([]Stage, len(services))
	for i, s := range services {
		out[i] = Stage{Name: "s", ServiceMS: s}
	}
	return out
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []Config{
		{},
		{Stages: stages(1), FPS: 0, Frames: 10},
		{Stages: stages(1), FPS: 30, Frames: 0},
		{Stages: []Stage{{ServiceMS: -1}}, FPS: 30, Frames: 10},
		{Stages: []Stage{{ServiceMS: 1, JitterFrac: 2}}, FPS: 30, Frames: 10},
		{Stages: stages(1), FPS: 30, Frames: 10, BudgetMS: -1},
	}
	for i, cfg := range cases {
		if _, err := Simulate(cfg, rng); err == nil {
			t.Errorf("case %d (%+v): want error", i, cfg)
		}
	}
}

func TestDeterministicUnderloaded(t *testing.T) {
	// 3 stages of 2 ms at 100 fps (10 ms interval): no queueing, latency
	// is exactly the sum of services for every frame.
	rng := rand.New(rand.NewSource(2))
	stats, err := Simulate(Config{Stages: stages(2, 2, 2), FPS: 100, Frames: 500}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.MeanMS-6) > 1e-9 || math.Abs(stats.MaxMS-6) > 1e-9 {
		t.Fatalf("latency mean=%v max=%v, want exactly 6", stats.MeanMS, stats.MaxMS)
	}
	if stats.Saturated {
		t.Fatal("underloaded pipeline flagged saturated")
	}
	// Utilization of each stage = 2 ms per 10 ms interval = ~0.2.
	for s, u := range stats.StageUtilization {
		if u < 0.15 || u > 0.25 {
			t.Fatalf("stage %d utilization %v, want ~0.2", s, u)
		}
	}
}

func TestTransitAddsLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base, err := Simulate(Config{Stages: stages(2, 2), FPS: 50, Frames: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	withTransit, err := Simulate(Config{
		Stages: []Stage{
			{ServiceMS: 2},
			{ServiceMS: 2, TransitMS: 5},
		},
		FPS: 50, Frames: 100,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if diff := withTransit.MeanMS - base.MeanMS; math.Abs(diff-5) > 1e-9 {
		t.Fatalf("transit added %v ms, want 5", diff)
	}
}

func TestSaturationDetected(t *testing.T) {
	// A 15 ms stage cannot keep up with 100 fps (10 ms interval): queues
	// grow linearly and the run is flagged saturated.
	rng := rand.New(rand.NewSource(4))
	stats, err := Simulate(Config{Stages: stages(15), FPS: 100, Frames: 400}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Saturated {
		t.Fatal("saturated pipeline not flagged")
	}
	if stats.MaxMS < 10*stats.P50MS/2 && stats.MaxMS < 100 {
		t.Fatalf("expected growing queueing delay, max=%v p50=%v", stats.MaxMS, stats.P50MS)
	}
	if stats.ThroughputFPS >= 100 {
		t.Fatalf("throughput %v must fall below the capture rate", stats.ThroughputFPS)
	}
}

func TestBudgetAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	stats, err := Simulate(Config{Stages: stages(15), FPS: 100, Frames: 300, BudgetMS: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LateFrac <= 0.5 {
		t.Fatalf("late fraction %v, want most frames late under saturation", stats.LateFrac)
	}
	ok, err := Simulate(Config{Stages: stages(2), FPS: 50, Frames: 300, BudgetMS: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ok.LateFrac != 0 {
		t.Fatalf("late fraction %v on an easy pipeline", ok.LateFrac)
	}
}

func TestQuantileOrdering(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := []Stage{
			{ServiceMS: 1 + rng.Float64()*6, JitterFrac: rng.Float64() * 0.5},
			{ServiceMS: 1 + rng.Float64()*6, JitterFrac: rng.Float64() * 0.5},
		}
		stats, err := Simulate(Config{Stages: st, FPS: 60, Frames: 200}, rng)
		if err != nil {
			return false
		}
		return stats.P50MS <= stats.P95MS+1e-12 &&
			stats.P95MS <= stats.P99MS+1e-12 &&
			stats.P99MS <= stats.MaxMS+1e-12 &&
			stats.MeanMS > 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMaxSustainableFPS(t *testing.T) {
	if got := MaxSustainableFPS(stages(2, 8, 4)); math.Abs(got-125) > 1e-9 {
		t.Fatalf("max fps %v, want 125 (slowest stage 8 ms)", got)
	}
	if got := MaxSustainableFPS(stages(0, 0)); !math.IsInf(got, 1) {
		t.Fatalf("zero-service pipeline should sustain any rate, got %v", got)
	}
}

func TestEffectiveWorkMS(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	st := stages(6, 2) // stage 0 dominates
	eff, err := EffectiveWorkMS(st, 60, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff) != 2 {
		t.Fatalf("got %d stage estimates", len(eff))
	}
	if eff[0] <= eff[1] {
		t.Fatalf("dominant stage should carry the larger share: %v", eff)
	}
	total := eff[0] + eff[1]
	if math.Abs(total-8) > 1 { // underloaded: latency ~= 8 ms
		t.Fatalf("effective total %v, want ~8", total)
	}
}

// TestPaperPipelineMeetsBudget: the canonical 4-stage pipeline with the
// repository's nominal work figures sustains 90-120 fps within the 200 ms
// per-frame budget when each stage runs on its own accelerator — the
// operating point the paper's workload assumes.
func TestPaperPipelineMeetsBudget(t *testing.T) {
	st := []Stage{
		{Name: "render", ServiceMS: 8, JitterFrac: 0.1},
		{Name: "track", ServiceMS: 3, JitterFrac: 0.1},
		{Name: "world-model", ServiceMS: 2.5, JitterFrac: 0.1},
		{Name: "recognize", ServiceMS: 5, JitterFrac: 0.1},
	}
	for _, fps := range []float64{90, 120} {
		stats, err := Simulate(Config{Stages: st, FPS: fps, Frames: 1000, BudgetMS: 200}, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if stats.Saturated || stats.LateFrac > 0 {
			t.Fatalf("fps=%v: saturated=%v late=%v p99=%v", fps, stats.Saturated, stats.LateFrac, stats.P99MS)
		}
	}
}
