package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestNewRateRewardEdges is the table-driven edge-case sweep of the
// constructor: degenerate supports, zero-probability outcomes, duplicate
// rates, and every validation failure mode.
func TestNewRateRewardEdges(t *testing.T) {
	cases := []struct {
		name    string
		in      []Outcome
		wantErr error
		wantLen int
	}{
		{name: "empty", in: nil, wantErr: ErrEmpty},
		{name: "all zero probability", in: []Outcome{
			{Rate: 30, Prob: 0, Reward: 100},
			{Rate: 50, Prob: 0, Reward: 200},
		}, wantErr: ErrEmpty},
		{name: "zero-prob outcomes dropped", in: []Outcome{
			{Rate: 30, Prob: 0, Reward: 100},
			{Rate: 40, Prob: 1, Reward: 150},
			{Rate: 50, Prob: 0, Reward: 200},
		}, wantLen: 1},
		{name: "single outcome", in: []Outcome{
			{Rate: 40, Prob: 1, Reward: 150},
		}, wantLen: 1},
		{name: "duplicate rates merged", in: []Outcome{
			{Rate: 40, Prob: 0.25, Reward: 100},
			{Rate: 40, Prob: 0.75, Reward: 200},
		}, wantLen: 1},
		{name: "mass below one", in: []Outcome{
			{Rate: 30, Prob: 0.5, Reward: 100},
		}, wantErr: ErrBadProb},
		{name: "mass above one", in: []Outcome{
			{Rate: 30, Prob: 0.7, Reward: 100},
			{Rate: 50, Prob: 0.7, Reward: 100},
		}, wantErr: ErrBadProb},
		{name: "negative probability", in: []Outcome{
			{Rate: 30, Prob: -0.5, Reward: 100},
			{Rate: 50, Prob: 1.5, Reward: 100},
		}, wantErr: ErrBadProb},
		{name: "NaN probability", in: []Outcome{
			{Rate: 30, Prob: math.NaN(), Reward: 100},
		}, wantErr: ErrBadProb},
		{name: "negative rate", in: []Outcome{
			{Rate: -1, Prob: 1, Reward: 100},
		}, wantErr: ErrBadValue},
		{name: "negative reward", in: []Outcome{
			{Rate: 30, Prob: 1, Reward: -5},
		}, wantErr: ErrBadValue},
		{name: "infinite rate", in: []Outcome{
			{Rate: math.Inf(1), Prob: 1, Reward: 100},
		}, wantErr: ErrBadValue},
		{name: "NaN reward", in: []Outcome{
			{Rate: 30, Prob: 1, Reward: math.NaN()},
		}, wantErr: ErrBadValue},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := NewRateReward(tc.in)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("error %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if d.Len() != tc.wantLen {
				t.Fatalf("support size %d, want %d", d.Len(), tc.wantLen)
			}
		})
	}
}

// TestSingleOutcomeDistribution: a one-point distribution is fully
// deterministic — min, max, and expectation coincide, and sampling always
// returns the sole outcome.
func TestSingleOutcomeDistribution(t *testing.T) {
	d, err := NewRateReward([]Outcome{{Rate: 40, Prob: 1, Reward: 150}})
	if err != nil {
		t.Fatal(err)
	}
	if d.MinRate() != 40 || d.MaxRate() != 40 || d.ExpectedRate() != 40 {
		t.Fatalf("min/max/expected = %v/%v/%v, want 40 each", d.MinRate(), d.MaxRate(), d.ExpectedRate())
	}
	if d.ExpectedReward() != 150 {
		t.Fatalf("expected reward %v, want 150", d.ExpectedReward())
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if o := d.Sample(rng); o.Rate != 40 || o.Reward != 150 {
			t.Fatalf("sample %d: %+v, want the single outcome", i, o)
		}
	}
}

// TestDuplicateRateMergeWeights: merging duplicate rates must add
// probabilities and probability-weight the rewards.
func TestDuplicateRateMergeWeights(t *testing.T) {
	d, err := NewRateReward([]Outcome{
		{Rate: 40, Prob: 0.25, Reward: 100},
		{Rate: 40, Prob: 0.75, Reward: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	o := d.Outcomes()[0]
	if o.Prob != 1 {
		t.Fatalf("merged prob %v, want 1", o.Prob)
	}
	want := 0.25*100 + 0.75*200
	if math.Abs(o.Reward-want) > 1e-12 {
		t.Fatalf("merged reward %v, want %v", o.Reward, want)
	}
}

// TestExpectedTruncatedRateEdges pins the truncation used by LP
// constraint (10) at each piece of its piecewise form.
func TestExpectedTruncatedRateEdges(t *testing.T) {
	d, err := NewRateReward([]Outcome{
		{Rate: 30, Prob: 0.5, Reward: 1},
		{Rate: 50, Prob: 0.5, Reward: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		cap, want float64
	}{
		{cap: 0, want: 0},                 // non-positive cap truncates everything
		{cap: -10, want: 0},               //
		{cap: 10, want: 10},               // below the whole support: cap itself
		{cap: 30, want: 30},               // at the min rate
		{cap: 40, want: 0.5*30 + 0.5*40},  // between outcomes
		{cap: 50, want: 0.5*30 + 0.5*50},  // at the max: full expectation
		{cap: 100, want: 0.5*30 + 0.5*50}, // above: full expectation
	}
	for _, tc := range cases {
		if got := d.ExpectedTruncatedRate(tc.cap); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("ExpectedTruncatedRate(%v) = %v, want %v", tc.cap, got, tc.want)
		}
	}
	if got, want := d.ExpectedTruncatedRate(1e18), d.ExpectedRate(); got != want {
		t.Errorf("huge cap: %v, want ExpectedRate %v", got, want)
	}
}

// TestRewardMassAndCDFEdges: boundary behavior of the Eq. (8) reward mass
// and the rate CDF at, below, and above support points.
func TestRewardMassAndCDFEdges(t *testing.T) {
	d, err := NewRateReward([]Outcome{
		{Rate: 30, Prob: 0.25, Reward: 80},
		{Rate: 50, Prob: 0.75, Reward: 160},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.RewardMassBelow(29.999); got != 0 {
		t.Errorf("RewardMassBelow(29.999) = %v, want 0", got)
	}
	if got, want := d.RewardMassBelow(30), 0.25*80.0; got != want {
		t.Errorf("RewardMassBelow(30) = %v, want %v (inclusive boundary)", got, want)
	}
	if got, want := d.RewardMassBelow(50), d.ExpectedReward(); got != want {
		t.Errorf("RewardMassBelow(50) = %v, want full mass %v", got, want)
	}
	if got := d.ProbRateAtMost(0); got != 0 {
		t.Errorf("ProbRateAtMost(0) = %v, want 0", got)
	}
	if got := d.ProbRateAtMost(30); got != 0.25 {
		t.Errorf("ProbRateAtMost(30) = %v, want 0.25", got)
	}
	if got := d.ProbRateAtMost(1000); got != 1 {
		t.Errorf("ProbRateAtMost(1000) = %v, want 1", got)
	}
	if _, err := d.RewardFor(40); !errors.Is(err, ErrUnsupported) {
		t.Errorf("RewardFor(40) error %v, want ErrUnsupported", err)
	}
	if r, err := d.RewardFor(50); err != nil || r != 160 {
		t.Errorf("RewardFor(50) = %v, %v, want 160, nil", r, err)
	}
}

// TestSampleMassConservation: inverse-transform sampling must never
// return a zero-probability rate and must hit every support point with
// roughly its assigned mass.
func TestSampleMassConservation(t *testing.T) {
	d, err := NewRateReward([]Outcome{
		{Rate: 30, Prob: 0.2, Reward: 1},
		{Rate: 35, Prob: 0, Reward: 1},
		{Rate: 40, Prob: 0.8, Reward: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	const n = 20000
	counts := map[float64]int{}
	for i := 0; i < n; i++ {
		counts[d.Sample(rng).Rate]++
	}
	if counts[35] != 0 {
		t.Fatalf("sampled the zero-probability rate %d times", counts[35])
	}
	if f := float64(counts[30]) / n; math.Abs(f-0.2) > 0.02 {
		t.Fatalf("rate 30 frequency %v, want about 0.2", f)
	}
}
