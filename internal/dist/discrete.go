// Package dist implements the finite probability distributions the paper
// attaches to every AR request: a distribution over a finite set DR of
// possible data rates, where each rate rho carries probability pi_{j,rho}
// and a demand-independent reward RD_{j,rho} (Section III-C).
//
// The offloading LPs consume expectations and truncated expectations
// E[min(rho, c)] of these distributions; the simulator samples realized
// rates from them.
package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Tolerance for probability-mass validation.
const probEps = 1e-9

// Errors returned by distribution constructors.
var (
	ErrEmpty       = errors.New("dist: empty distribution")
	ErrBadProb     = errors.New("dist: probabilities must be non-negative and sum to 1")
	ErrBadValue    = errors.New("dist: values must be finite and non-negative")
	ErrUnsupported = errors.New("dist: value not in support")
)

// Outcome is one point of a (data rate, reward) distribution.
type Outcome struct {
	// Rate is the data rate rho in MB/s.
	Rate float64
	// Prob is pi_{j,rho}, the probability of this rate.
	Prob float64
	// Reward is RD_{j,rho}, the provider reward in dollars if the request
	// realizes this rate and is fully served.
	Reward float64
}

// RateReward is the per-request distribution over (rate, reward) pairs.
// Outcomes are kept sorted by increasing rate. The zero value is invalid;
// use NewRateReward.
type RateReward struct {
	outcomes []Outcome
	// cum[i] is the cumulative probability through outcome i, used for
	// inverse-transform sampling.
	cum []float64
}

// NewRateReward validates and constructs a distribution. The outcomes are
// copied, sorted by rate, and duplicate rates are merged (probabilities
// added, rewards probability-weighted).
func NewRateReward(outcomes []Outcome) (*RateReward, error) {
	if len(outcomes) == 0 {
		return nil, ErrEmpty
	}
	os := make([]Outcome, len(outcomes))
	copy(os, outcomes)
	sort.Slice(os, func(i, j int) bool { return os[i].Rate < os[j].Rate })

	merged := os[:0]
	for _, o := range os {
		if o.Prob < 0 || math.IsNaN(o.Prob) || math.IsInf(o.Prob, 0) {
			return nil, fmt.Errorf("%w: prob %v", ErrBadProb, o.Prob)
		}
		if o.Rate < 0 || math.IsNaN(o.Rate) || math.IsInf(o.Rate, 0) ||
			o.Reward < 0 || math.IsNaN(o.Reward) || math.IsInf(o.Reward, 0) {
			return nil, fmt.Errorf("%w: rate %v reward %v", ErrBadValue, o.Rate, o.Reward)
		}
		if o.Prob == 0 {
			continue
		}
		if n := len(merged); n > 0 && merged[n-1].Rate == o.Rate {
			p := merged[n-1].Prob + o.Prob
			merged[n-1].Reward = (merged[n-1].Reward*merged[n-1].Prob + o.Reward*o.Prob) / p
			merged[n-1].Prob = p
			continue
		}
		merged = append(merged, o)
	}
	if len(merged) == 0 {
		return nil, ErrEmpty
	}
	total := 0.0
	for _, o := range merged {
		total += o.Prob
	}
	if math.Abs(total-1) > probEps {
		return nil, fmt.Errorf("%w: total mass %v", ErrBadProb, total)
	}
	d := &RateReward{
		outcomes: append([]Outcome(nil), merged...),
		cum:      make([]float64, len(merged)),
	}
	c := 0.0
	for i, o := range d.outcomes {
		c += o.Prob
		d.cum[i] = c
	}
	d.cum[len(d.cum)-1] = 1 // guard against float drift
	return d, nil
}

// Outcomes returns a copy of the support, sorted by increasing rate.
func (d *RateReward) Outcomes() []Outcome {
	out := make([]Outcome, len(d.outcomes))
	copy(out, d.outcomes)
	return out
}

// Len returns the support size |DR| of the distribution.
func (d *RateReward) Len() int { return len(d.outcomes) }

// OutcomeAt returns outcome i of the sorted support without copying the
// whole slice. The incremental scheduler's per-component signatures read
// every outcome each slot, so this accessor keeps that path allocation-free
// (Outcomes() copies).
func (d *RateReward) OutcomeAt(i int) Outcome { return d.outcomes[i] }

// MinRate returns the smallest rate in the support.
func (d *RateReward) MinRate() float64 { return d.outcomes[0].Rate }

// MaxRate returns the largest rate in the support.
func (d *RateReward) MaxRate() float64 { return d.outcomes[len(d.outcomes)-1].Rate }

// ExpectedRate returns E[rho].
func (d *RateReward) ExpectedRate() float64 {
	e := 0.0
	for _, o := range d.outcomes {
		e += o.Prob * o.Rate
	}
	return e
}

// ExpectedReward returns E[RD] = sum_rho pi_rho * RD_rho, the
// demand-independent expected reward of serving the request.
func (d *RateReward) ExpectedReward() float64 {
	e := 0.0
	for _, o := range d.outcomes {
		e += o.Prob * o.Reward
	}
	return e
}

// ExpectedTruncatedRate returns E[min(rho, cap)], the truncated expectation
// used in LP constraint (10) and in Lemma 2's occupancy bound.
func (d *RateReward) ExpectedTruncatedRate(cap float64) float64 {
	if cap <= 0 {
		return 0
	}
	e := 0.0
	for _, o := range d.outcomes {
		e += o.Prob * math.Min(o.Rate, cap)
	}
	return e
}

// RewardMassBelow returns sum over {rho : rho <= maxRate} of pi_rho*RD_rho.
// This is ER_{jil} of Eq. (8): the expected reward collectable when only
// rates up to maxRate fit in the remaining resource of a base station.
func (d *RateReward) RewardMassBelow(maxRate float64) float64 {
	e := 0.0
	for _, o := range d.outcomes {
		if o.Rate <= maxRate {
			e += o.Prob * o.Reward
		}
	}
	return e
}

// ProbRateAtMost returns P[rho <= maxRate].
func (d *RateReward) ProbRateAtMost(maxRate float64) float64 {
	p := 0.0
	for _, o := range d.outcomes {
		if o.Rate <= maxRate {
			p += o.Prob
		}
	}
	return p
}

// RewardFor returns the reward attached to an exact rate in the support.
func (d *RateReward) RewardFor(rate float64) (float64, error) {
	for _, o := range d.outcomes {
		if o.Rate == rate {
			return o.Reward, nil
		}
	}
	return 0, fmt.Errorf("%w: rate %v", ErrUnsupported, rate)
}

// Sample draws one (rate, reward) outcome by inverse-transform sampling.
func (d *RateReward) Sample(rng *rand.Rand) Outcome {
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cum, u)
	if i >= len(d.outcomes) {
		i = len(d.outcomes) - 1
	}
	return d.outcomes[i]
}

// UniformRateReward builds the paper's default workload distribution: k
// rates evenly spread over [minRate, maxRate], uniform probabilities, and
// rewards drawn as unitReward * rate where unitReward is sampled uniformly
// from [minUnitReward, maxUnitReward] per outcome. (Section VI-A: rates in
// [30, 50] MB/s, unit rewards in [12, 15] dollars.) The draw of unit
// rewards per outcome makes reward demand-independent: a larger rate can
// carry a smaller total reward.
func UniformRateReward(k int, minRate, maxRate, minUnitReward, maxUnitReward float64, rng *rand.Rand) (*RateReward, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrEmpty, k)
	}
	if minRate < 0 || maxRate < minRate || minUnitReward < 0 || maxUnitReward < minUnitReward {
		return nil, fmt.Errorf("%w: rates [%v, %v], unit rewards [%v, %v]",
			ErrBadValue, minRate, maxRate, minUnitReward, maxUnitReward)
	}
	outcomes := make([]Outcome, k)
	for i := range outcomes {
		var rate float64
		if k == 1 {
			rate = minRate
		} else {
			rate = minRate + float64(i)*(maxRate-minRate)/float64(k-1)
		}
		unit := minUnitReward + rng.Float64()*(maxUnitReward-minUnitReward)
		outcomes[i] = Outcome{Rate: rate, Prob: 1 / float64(k), Reward: unit * rate}
	}
	return NewRateReward(outcomes)
}

// IndependentRateReward builds a distribution whose rewards are drawn
// independently of the data rate: each outcome's reward is uniform in
// [minReward, maxReward] regardless of its rate. This is the paper's
// stated model ("the rewards and data rates of requests are independent",
// Section I challenge 2); the unit-price model of UniformRateReward is
// Section VI-A's pricing instantiation. probs selects the rate mass:
// uniform when decay <= 0 or >= 1, geometric otherwise.
func IndependentRateReward(k int, minRate, maxRate, minReward, maxReward, decay float64, rng *rand.Rand) (*RateReward, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrEmpty, k)
	}
	if minRate < 0 || maxRate < minRate || minReward < 0 || maxReward < minReward {
		return nil, fmt.Errorf("%w: rates [%v, %v], rewards [%v, %v]",
			ErrBadValue, minRate, maxRate, minReward, maxReward)
	}
	outcomes := make([]Outcome, k)
	mass := 0.0
	w := 1.0
	geometric := decay > 0 && decay < 1
	for i := range outcomes {
		var rate float64
		if k == 1 {
			rate = minRate
		} else {
			rate = minRate + float64(i)*(maxRate-minRate)/float64(k-1)
		}
		reward := minReward + rng.Float64()*(maxReward-minReward)
		outcomes[i] = Outcome{Rate: rate, Prob: w, Reward: reward}
		mass += w
		if geometric {
			w *= decay
		}
	}
	for i := range outcomes {
		outcomes[i].Prob /= mass
	}
	return NewRateReward(outcomes)
}

// GeometricRateReward builds a distribution where large rates are
// geometrically rarer, matching the paper's observation ("the probability
// of requests with large data rates is usually small"). decay in (0, 1)
// controls how quickly mass falls off with rate.
func GeometricRateReward(k int, minRate, maxRate, minUnitReward, maxUnitReward, decay float64, rng *rand.Rand) (*RateReward, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrEmpty, k)
	}
	if decay <= 0 || decay >= 1 {
		return nil, fmt.Errorf("%w: decay %v", ErrBadValue, decay)
	}
	outcomes := make([]Outcome, k)
	mass := 0.0
	w := 1.0
	for i := range outcomes {
		var rate float64
		if k == 1 {
			rate = minRate
		} else {
			rate = minRate + float64(i)*(maxRate-minRate)/float64(k-1)
		}
		unit := minUnitReward + rng.Float64()*(maxUnitReward-minUnitReward)
		outcomes[i] = Outcome{Rate: rate, Prob: w, Reward: unit * rate}
		mass += w
		w *= decay
	}
	for i := range outcomes {
		outcomes[i].Prob /= mass
	}
	return NewRateReward(outcomes)
}
