package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustDist(t *testing.T, outcomes []Outcome) *RateReward {
	t.Helper()
	d, err := NewRateReward(outcomes)
	if err != nil {
		t.Fatalf("NewRateReward: %v", err)
	}
	return d
}

func TestNewRateRewardValidation(t *testing.T) {
	cases := []struct {
		name     string
		outcomes []Outcome
	}{
		{"empty", nil},
		{"mass below one", []Outcome{{Rate: 10, Prob: 0.5, Reward: 1}}},
		{"mass above one", []Outcome{{Rate: 10, Prob: 0.7, Reward: 1}, {Rate: 20, Prob: 0.6, Reward: 1}}},
		{"negative prob", []Outcome{{Rate: 10, Prob: -0.2, Reward: 1}, {Rate: 20, Prob: 1.2, Reward: 1}}},
		{"negative rate", []Outcome{{Rate: -10, Prob: 1, Reward: 1}}},
		{"negative reward", []Outcome{{Rate: 10, Prob: 1, Reward: -1}}},
		{"nan prob", []Outcome{{Rate: 10, Prob: math.NaN(), Reward: 1}}},
		{"inf rate", []Outcome{{Rate: math.Inf(1), Prob: 1, Reward: 1}}},
		{"all zero prob", []Outcome{{Rate: 10, Prob: 0, Reward: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewRateReward(tc.outcomes); err == nil {
				t.Fatalf("want error for %v", tc.outcomes)
			}
		})
	}
}

func TestMergeDuplicateRates(t *testing.T) {
	d := mustDist(t, []Outcome{
		{Rate: 10, Prob: 0.25, Reward: 100},
		{Rate: 10, Prob: 0.25, Reward: 300},
		{Rate: 20, Prob: 0.5, Reward: 50},
	})
	if d.Len() != 2 {
		t.Fatalf("support size %d, want 2 after merge", d.Len())
	}
	// Probability-weighted reward of the merged outcome: (100+300)/2.
	rw, err := d.RewardFor(10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rw-200) > 1e-9 {
		t.Fatalf("merged reward %v, want 200", rw)
	}
}

func TestExpectations(t *testing.T) {
	d := mustDist(t, []Outcome{
		{Rate: 10, Prob: 0.5, Reward: 100},
		{Rate: 30, Prob: 0.5, Reward: 60},
	})
	if got := d.ExpectedRate(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("E[rate] = %v, want 20", got)
	}
	if got := d.ExpectedReward(); math.Abs(got-80) > 1e-9 {
		t.Fatalf("E[reward] = %v, want 80", got)
	}
	if got := d.MinRate(); got != 10 {
		t.Fatalf("min rate %v", got)
	}
	if got := d.MaxRate(); got != 30 {
		t.Fatalf("max rate %v", got)
	}
}

func TestTruncatedExpectation(t *testing.T) {
	d := mustDist(t, []Outcome{
		{Rate: 10, Prob: 0.5, Reward: 1},
		{Rate: 30, Prob: 0.5, Reward: 1},
	})
	cases := []struct{ cap, want float64 }{
		{0, 0},
		{-5, 0},
		{5, 5},
		{10, 10},
		{20, 15},
		{30, 20},
		{100, 20},
	}
	for _, tc := range cases {
		if got := d.ExpectedTruncatedRate(tc.cap); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("E[min(rate, %v)] = %v, want %v", tc.cap, got, tc.want)
		}
	}
}

func TestRewardMassBelow(t *testing.T) {
	d := mustDist(t, []Outcome{
		{Rate: 10, Prob: 0.25, Reward: 100},
		{Rate: 20, Prob: 0.25, Reward: 200},
		{Rate: 30, Prob: 0.5, Reward: 300},
	})
	cases := []struct{ maxRate, want float64 }{
		{5, 0},
		{10, 25},
		{25, 75},
		{30, 225},
	}
	for _, tc := range cases {
		if got := d.RewardMassBelow(tc.maxRate); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("RewardMassBelow(%v) = %v, want %v", tc.maxRate, got, tc.want)
		}
	}
	if got := d.ProbRateAtMost(20); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("P[rate<=20] = %v, want 0.5", got)
	}
}

func TestRewardForUnsupported(t *testing.T) {
	d := mustDist(t, []Outcome{{Rate: 10, Prob: 1, Reward: 5}})
	if _, err := d.RewardFor(11); err == nil {
		t.Fatal("want error for unsupported rate")
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	d := mustDist(t, []Outcome{
		{Rate: 10, Prob: 0.2, Reward: 1},
		{Rate: 20, Prob: 0.8, Reward: 2},
	})
	rng := rand.New(rand.NewSource(9))
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if d.Sample(rng).Rate == 20 {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.8) > 0.02 {
		t.Fatalf("sampled P[rate=20] = %v, want ~0.8", frac)
	}
}

// Property: truncated expectation is monotone in the cap and bounded by
// both the cap and the full expectation.
func TestTruncatedExpectationProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := UniformRateReward(1+rng.Intn(8), 5+rng.Float64()*10, 30+rng.Float64()*30, 1, 3, rng)
		if err != nil {
			return false
		}
		prev := 0.0
		for cap := 0.0; cap <= 70; cap += 3.5 {
			e := d.ExpectedTruncatedRate(cap)
			if e < prev-1e-12 || e > cap+1e-12 || e > d.ExpectedRate()+1e-12 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRateReward(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d, err := UniformRateReward(5, 30, 50, 12, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 5 {
		t.Fatalf("support %d, want 5", d.Len())
	}
	if d.MinRate() != 30 || d.MaxRate() != 50 {
		t.Fatalf("rate range [%v, %v], want [30, 50]", d.MinRate(), d.MaxRate())
	}
	for _, o := range d.Outcomes() {
		if math.Abs(o.Prob-0.2) > 1e-9 {
			t.Fatalf("uniform prob %v, want 0.2", o.Prob)
		}
		unit := o.Reward / o.Rate
		if unit < 12-1e-9 || unit > 15+1e-9 {
			t.Fatalf("unit reward %v outside [12, 15]", unit)
		}
	}
	if _, err := UniformRateReward(0, 1, 2, 1, 2, rng); err == nil {
		t.Error("want error for empty support")
	}
	if _, err := UniformRateReward(3, 5, 2, 1, 2, rng); err == nil {
		t.Error("want error for inverted rate range")
	}
}

func TestGeometricRateReward(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d, err := GeometricRateReward(5, 30, 50, 12, 15, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	outs := d.Outcomes()
	total := 0.0
	for i := 1; i < len(outs); i++ {
		if outs[i].Prob >= outs[i-1].Prob {
			t.Fatalf("geometric mass must decay: %v then %v", outs[i-1].Prob, outs[i].Prob)
		}
	}
	for _, o := range outs {
		total += o.Prob
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("mass %v, want 1", total)
	}
	if _, err := GeometricRateReward(5, 30, 50, 12, 15, 1.5, rng); err == nil {
		t.Error("want error for decay >= 1")
	}
}

func TestOutcomesCopy(t *testing.T) {
	d := mustDist(t, []Outcome{{Rate: 10, Prob: 1, Reward: 5}})
	outs := d.Outcomes()
	outs[0].Reward = 999
	if got, _ := d.RewardFor(10); got != 5 {
		t.Fatal("Outcomes must return a copy")
	}
}
