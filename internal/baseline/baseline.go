// Package baseline implements the three comparison algorithms of the
// paper's evaluation (Section VI-A), reconstructed from their descriptions
// there and in the cited works:
//
//   - OCORP (Liu et al. [20]): per round, sort unfinished jobs by arrival
//     time and remaining to-be-processed data, then assign each to an edge
//     server by best fit on expected demand.
//   - Greedy (Yang et al. [32]): sort tasks in decreasing order of their
//     execution times and assign each task to the edge server that
//     minimizes its completion time (latency-greedy, reward-blind).
//   - HeuKKT (Ma et al. [21]): first drop the capacity constraints to
//     split the workload between edge and remote cloud, then schedule the
//     edge share optimally under Karush-Kuhn-Tucker conditions
//     (water-filling over station capacities).
//
// All three schedule on expected data rates — they are "coarse-grained"
// about demand uncertainty, which is exactly the behaviour the paper's
// evaluation contrasts against the slot-indexed algorithms. None of them
// observes realized data rates, so none evicts overflowing requests;
// rewards are settled by core.Evaluate under the shared overload
// semantics.
package baseline

import (
	"math/rand"
	"sort"
	"time"

	"mecoffload/internal/core"
	"mecoffload/internal/mec"
)

// Options tunes the offline baselines.
type Options struct {
	// SlotLengthMS converts waiting slots into milliseconds (default
	// mec.DefaultSlotLengthMS).
	SlotLengthMS float64
}

func (o *Options) fill() {
	if o.SlotLengthMS == 0 {
		o.SlotLengthMS = mec.DefaultSlotLengthMS
	}
}

// admitConsolidated places a request on station i. The baselines are
// demand-uncertainty-oblivious: they never observe realized rates and
// never evict, so rewards are settled entirely by core.Evaluate.
func admitConsolidated(n *mec.Network, r *mec.Request, i int, res *core.Result, slotLenMS float64) {
	d := &res.Decisions[r.ID]
	d.Admitted = true
	d.Station = i
	d.Slot = 1
	d.TaskStations = make([]int, len(r.Tasks))
	for k := range d.TaskStations {
		d.TaskStations[k] = i
	}
	d.LatencyMS = float64(d.WaitSlots)*slotLenMS + r.ServiceDelayMS(n, i)
}

// mustStation fetches a station by a known-valid index.
func mustStation(n *mec.Network, i int) mec.BaseStation {
	st, err := n.Station(i)
	if err != nil {
		// Unreachable: callers iterate valid station indices.
		panic(err)
	}
	return st
}

// newResult allocates an all-rejected result for the workload.
func newResult(name string, reqs []*mec.Request) *core.Result {
	res := &core.Result{Algorithm: name, Decisions: make([]core.Decision, len(reqs))}
	for j := range res.Decisions {
		res.Decisions[j] = core.Decision{RequestID: j, Station: -1}
	}
	return res
}

// OCORP is the offline variant of the online-convex-optimization resource
// packing baseline: jobs ordered by (arrival time, expected remaining
// data), each placed by best fit — the delay-feasible station whose
// residual expected capacity is smallest but still sufficient for the
// job's expected demand.
func OCORP(n *mec.Network, reqs []*mec.Request, rng *rand.Rand, opts Options) (*core.Result, error) {
	if n == nil {
		return nil, core.ErrNilNetwork
	}
	if len(reqs) == 0 {
		return nil, core.ErrNoRequests
	}
	opts.fill()
	start := time.Now()
	res := newResult("OCORP", reqs)

	order := make([]int, len(reqs))
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := reqs[order[a]], reqs[order[b]]
		if ra.ArrivalSlot != rb.ArrivalSlot {
			return ra.ArrivalSlot < rb.ArrivalSlot
		}
		da, db := ra.ExpectedRate(), rb.ExpectedRate()
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})

	expected := make([]float64, n.NumStations())
	for _, j := range order {
		r := reqs[j]
		eDemand := n.RateToMHz(r.ExpectedRate())
		// Best fit in the latency dimension: among stations whose
		// expected residual capacity still holds the job, greedily take
		// the lowest-latency one ("OCORP and Greedy greedily select
		// locations that achieve the lowest latencies", Section VI-B).
		// Packing is against expected rates with zero headroom.
		best, bestLat := -1, 0.0
		for i := 0; i < n.NumStations(); i++ {
			lat := r.ServiceDelayMS(n, i)
			if lat > r.DeadlineMS {
				continue
			}
			if n.Capacity(i)-expected[i] < eDemand {
				continue
			}
			if best == -1 || lat < bestLat {
				best, bestLat = i, lat
			}
		}
		if best == -1 {
			continue
		}
		expected[best] += eDemand
		admitConsolidated(n, r, best, res, opts.SlotLengthMS)
	}
	core.Evaluate(n, reqs, res, rng)
	res.Runtime = time.Since(start)
	return res, nil
}

// Greedy is the latency-greedy baseline: requests ordered by decreasing
// total execution time; each request's tasks are assigned one-by-one to
// the station that minimizes the task's completion time given the
// expected load already placed there, subject to the request's deadline.
func Greedy(n *mec.Network, reqs []*mec.Request, rng *rand.Rand, opts Options) (*core.Result, error) {
	if n == nil {
		return nil, core.ErrNilNetwork
	}
	if len(reqs) == 0 {
		return nil, core.ErrNoRequests
	}
	opts.fill()
	start := time.Now()
	res := newResult("Greedy", reqs)

	order := make([]int, len(reqs))
	for j := range order {
		order[j] = j
	}
	totalWork := func(r *mec.Request) float64 {
		w := 0.0
		for _, t := range r.Tasks {
			w += t.WorkMS
		}
		return w
	}
	sort.Slice(order, func(a, b int) bool {
		wa, wb := totalWork(reqs[order[a]]), totalWork(reqs[order[b]])
		if wa != wb {
			return wa > wb // decreasing execution time
		}
		return order[a] < order[b]
	})

	// queueMS[i] accumulates the execution time already scheduled on
	// station i: the cited heuristic minimizes completion time, which is
	// the station's current backlog plus the request's own service delay.
	queueMS := make([]float64, n.NumStations())
	for _, j := range order {
		r := reqs[j]
		// The station minimizing completion time; requests whose best
		// completion time misses the deadline are rejected, so queues
		// stay short and the greedy achieves low latency — at the cost of
		// admitting far fewer requests (the paper's "trade-off the reward
		// for latency").
		best, bestDone := -1, 0.0
		for i := 0; i < n.NumStations(); i++ {
			done := queueMS[i] + r.ServiceDelayMS(n, i)
			if done > r.DeadlineMS {
				continue
			}
			if best == -1 || done < bestDone {
				best, bestDone = i, done
			}
		}
		if best == -1 {
			continue
		}
		queueMS[best] += r.ProcDelayMS(mustStation(n, best))
		admitConsolidated(n, r, best, res, opts.SlotLengthMS)
	}
	core.Evaluate(n, reqs, res, rng)
	res.Runtime = time.Since(start)
	return res, nil
}

// HeuKKT first solves the uncapacitated relaxation: every request would
// ideally run on its latency-optimal station. Stations whose ideal load
// exceeds capacity offload the excess — lowest expected reward first — to
// the remote cloud, which earns the MEC provider no edge reward. The
// retained edge share is then scheduled by KKT-style water-filling:
// overloaded stations shed their marginal requests to the least-loaded
// feasible stations until every capacity constraint holds.
func HeuKKT(n *mec.Network, reqs []*mec.Request, rng *rand.Rand, opts Options) (*core.Result, error) {
	if n == nil {
		return nil, core.ErrNilNetwork
	}
	if len(reqs) == 0 {
		return nil, core.ErrNoRequests
	}
	opts.fill()
	start := time.Now()
	res := newResult("HeuKKT", reqs)

	// The KKT conditions of the underlying convex latency-minimization
	// program put the optimum strictly inside the capacity region (the
	// queueing-delay term's gradient diverges at full load), so
	// water-filling fills each station only to this interior water level.
	// The safety margin is what makes HeuKKT the most robust baseline.
	const waterLevel = 0.90

	// Phase 1: uncapacitated assignment to the latency-optimal station.
	ideal := make([][]int, n.NumStations())
	for j, r := range reqs {
		best, bestLat := -1, 0.0
		for i := 0; i < n.NumStations(); i++ {
			lat := r.ServiceDelayMS(n, i)
			if lat > r.DeadlineMS {
				continue
			}
			if best == -1 || lat < bestLat {
				best, bestLat = i, lat
			}
		}
		if best >= 0 {
			ideal[best] = append(ideal[best], j)
		}
	}

	// Phase 2: the uncapacitated solution overloads attractive stations;
	// KKT water-filling retains the highest reward-density requests on
	// each station up to a fraction of its capacity (stationarity ranks
	// requests by marginal value; the retention headroom is the
	// complementary-slackness multiplier of the capacity constraint) and
	// rebalances a limited share to under-loaded stations. Whatever still
	// exceeds edge capacity is offloaded to the remote cloud, which earns
	// the MEC provider no edge reward.
	expected := make([]float64, n.NumStations())
	assign := make([]int, len(reqs))
	for j := range assign {
		assign[j] = -1
	}
	var overflow []int
	for i := 0; i < n.NumStations(); i++ {
		// Order local candidates by decreasing reward density, i.e. the
		// marginal value KKT stationarity ranks them by.
		cand := append([]int(nil), ideal[i]...)
		sort.Slice(cand, func(a, b int) bool {
			ra, rb := reqs[cand[a]], reqs[cand[b]]
			da := ra.ExpectedReward() / (n.RateToMHz(ra.ExpectedRate()) + 1)
			db := rb.ExpectedReward() / (n.RateToMHz(rb.ExpectedRate()) + 1)
			if da != db {
				return da > db
			}
			return cand[a] < cand[b]
		})
		for _, j := range cand {
			eDemand := n.RateToMHz(reqs[j].ExpectedRate())
			if expected[i]+eDemand <= waterLevel*n.Capacity(i) {
				assign[j] = i
				expected[i] += eDemand
			} else {
				overflow = append(overflow, j)
			}
		}
	}
	// Water-filling of the overflow: pour each shed request into the
	// least-loaded station that still fits it and meets its deadline;
	// requests that fit nowhere go to the cloud (assign stays -1).
	sort.Slice(overflow, func(a, b int) bool {
		ra, rb := reqs[overflow[a]], reqs[overflow[b]]
		da := ra.ExpectedReward() / (n.RateToMHz(ra.ExpectedRate()) + 1)
		db := rb.ExpectedReward() / (n.RateToMHz(rb.ExpectedRate()) + 1)
		if da != db {
			return da > db
		}
		return overflow[a] < overflow[b]
	})
	for _, j := range overflow {
		r := reqs[j]
		eDemand := n.RateToMHz(r.ExpectedRate())
		alt, altLoad := -1, 0.0
		for i := 0; i < n.NumStations(); i++ {
			if r.ServiceDelayMS(n, i) > r.DeadlineMS {
				continue
			}
			if expected[i]+eDemand > waterLevel*n.Capacity(i) {
				continue
			}
			load := expected[i] / n.Capacity(i)
			if alt == -1 || load < altLoad {
				alt, altLoad = i, load
			}
		}
		if alt >= 0 {
			assign[j] = alt
			expected[alt] += eDemand
		}
	}

	for j, r := range reqs {
		if assign[j] < 0 {
			continue
		}
		admitConsolidated(n, r, assign[j], res, opts.SlotLengthMS)
	}
	core.Evaluate(n, reqs, res, rng)
	res.Runtime = time.Since(start)
	return res, nil
}
