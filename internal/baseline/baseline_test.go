package baseline

import (
	"math/rand"
	"testing"

	"mecoffload/internal/core"
	"mecoffload/internal/mec"
	"mecoffload/internal/workload"
)

func fixture(t *testing.T, stations, requests int, seed int64) (*mec.Network, []*mec.Request) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := mec.RandomNetwork(stations, 3000, 3600, rng)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(workload.Config{
		NumRequests: requests, NumStations: stations, GeometricRates: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return net, reqs
}

type runner func(*mec.Network, []*mec.Request, *rand.Rand, Options) (*core.Result, error)

func runners() map[string]runner {
	return map[string]runner{
		"OCORP":  OCORP,
		"Greedy": Greedy,
		"HeuKKT": HeuKKT,
	}
}

func TestBaselinesFeasible(t *testing.T) {
	net, reqs := fixture(t, 10, 80, 1)
	for name, run := range runners() {
		t.Run(name, func(t *testing.T) {
			workload.Reset(reqs)
			res, err := run(net, reqs, rand.New(rand.NewSource(2)), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := core.Audit(net, reqs, res); err != nil {
				t.Fatalf("audit: %v", err)
			}
			if res.Served == 0 {
				t.Fatal("baseline served nothing on an uncongested instance")
			}
			if res.Algorithm != name {
				t.Fatalf("algorithm label %q, want %q", res.Algorithm, name)
			}
		})
	}
}

func TestBaselinesRejectBadInput(t *testing.T) {
	net, reqs := fixture(t, 3, 5, 3)
	rng := rand.New(rand.NewSource(4))
	for name, run := range runners() {
		if _, err := run(nil, reqs, rng, Options{}); err == nil {
			t.Errorf("%s: want error for nil network", name)
		}
		if _, err := run(net, nil, rng, Options{}); err == nil {
			t.Errorf("%s: want error for empty workload", name)
		}
	}
}

func TestBaselinesNeverEvict(t *testing.T) {
	net, reqs := fixture(t, 5, 120, 5)
	for name, run := range runners() {
		workload.Reset(reqs)
		res, err := run(net, reqs, rand.New(rand.NewSource(6)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.Decisions {
			if d.Evicted {
				t.Fatalf("%s evicted request %d: baselines are uncertainty-oblivious", name, d.RequestID)
			}
		}
	}
}

// TestOverloadCostsObliviousBaselines: under heavy load with uncertain
// demands, the oblivious baselines must lose some admitted requests to
// overload (served < admitted) — the mechanism behind the paper's reward
// gap.
func TestOverloadCostsObliviousBaselines(t *testing.T) {
	net, reqs := fixture(t, 10, 200, 7)
	sawLoss := false
	for _, run := range []runner{OCORP, HeuKKT} {
		workload.Reset(reqs)
		res, err := run(net, reqs, rand.New(rand.NewSource(8)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Served < res.Admitted {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Fatal("expected at least one baseline to lose admitted requests to overload")
	}
}

func TestGreedyPrefersLowLatencyStations(t *testing.T) {
	net, reqs := fixture(t, 10, 60, 9)
	workload.Reset(reqs)
	res, err := Greedy(net, reqs, rand.New(rand.NewSource(10)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every admitted request's station must be deadline-feasible and its
	// recorded latency the true service delay.
	for _, d := range res.Decisions {
		if !d.Admitted {
			continue
		}
		r := reqs[d.RequestID]
		want := r.ServiceDelayMS(net, d.Station)
		if d.LatencyMS != want {
			t.Fatalf("request %d latency %v, want %v", d.RequestID, d.LatencyMS, want)
		}
	}
}

func TestHeuKKTRespectsWaterLevel(t *testing.T) {
	net, reqs := fixture(t, 6, 150, 11)
	workload.Reset(reqs)
	res, err := HeuKKT(net, reqs, rand.New(rand.NewSource(12)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Expected (planned) load per station must respect 0.9 * capacity.
	expected := make([]float64, net.NumStations())
	for _, d := range res.Decisions {
		if !d.Admitted {
			continue
		}
		expected[d.Station] += net.RateToMHz(reqs[d.RequestID].ExpectedRate())
	}
	for i, e := range expected {
		if e > 0.9*net.Capacity(i)+1e-6 {
			t.Fatalf("station %d planned at %.0f MHz, above the 0.9 water level of %.0f",
				i, e, net.Capacity(i))
		}
	}
}

// TestShapeFig3 reproduces the paper's Fig. 3 ordering at one congested
// point: Heu >= Appro > {HeuKKT, OCORP} > Greedy on reward, with the
// latency-greedy baselines at or below the LP algorithms on latency.
func TestShapeFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("LP-heavy shape test")
	}
	net, reqs := fixture(t, 20, 300, 13)
	rewards := map[string]float64{}
	run := func(name string, f func() (*core.Result, error)) *core.Result {
		workload.Reset(reqs)
		res, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := core.Audit(net, reqs, res); err != nil {
			t.Fatalf("%s audit: %v", name, err)
		}
		rewards[name] = res.TotalReward
		return res
	}
	run("OCORP", func() (*core.Result, error) { return OCORP(net, reqs, rand.New(rand.NewSource(9)), Options{}) })
	run("Greedy", func() (*core.Result, error) { return Greedy(net, reqs, rand.New(rand.NewSource(9)), Options{}) })
	run("HeuKKT", func() (*core.Result, error) { return HeuKKT(net, reqs, rand.New(rand.NewSource(9)), Options{}) })
	run("Appro", func() (*core.Result, error) {
		return core.Appro(net, reqs, rand.New(rand.NewSource(9)), core.ApproOptions{})
	})
	run("Heu", func() (*core.Result, error) {
		return core.Heu(net, reqs, rand.New(rand.NewSource(9)), core.HeuOptions{})
	})

	if rewards["Heu"] < rewards["Appro"]*0.97 {
		t.Errorf("Heu (%v) should not trail Appro (%v)", rewards["Heu"], rewards["Appro"])
	}
	for _, base := range []string{"OCORP", "Greedy", "HeuKKT"} {
		if rewards["Appro"] <= rewards[base] {
			t.Errorf("Appro (%v) should beat %s (%v)", rewards["Appro"], base, rewards[base])
		}
	}
	if rewards["Greedy"] >= rewards["OCORP"] {
		t.Errorf("Greedy (%v) should be the weakest baseline (OCORP %v)", rewards["Greedy"], rewards["OCORP"])
	}
}
