package bandit

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a policy over k arms from a CLI spec, the grammar behind
// the -bandit flag in arsim, mecsim, and arserved:
//
//	se                  successive elimination (the paper's Algorithm 3)
//	ucb1                stationary UCB1
//	sw-ucb[:window]     sliding-window UCB (default window DefaultWindow)
//	d-ucb[:gamma]       discounted UCB (default DefaultDiscount)
//	exp3s[:gamma[,alpha]]  seeded Exp3.S (defaults DefaultExp3Gamma/Alpha)
//	restart:<inner>     Page–Hinkley restart wrapper over any inner spec
//	                    except exp3s-on-external-rng (all of the above work)
//
// Every policy Parse returns is snapshottable, so any spec works with
// arserved checkpoints and cluster shards. seed feeds only exp3s; the
// other policies are deterministic.
func Parse(spec string, k int, seed int64) (Policy, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("bandit: empty policy spec")
	}
	name, arg := spec, ""
	if i := strings.Index(spec, ":"); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	switch name {
	case "se":
		if arg != "" {
			return nil, fmt.Errorf("bandit: spec %q: se takes no parameter", spec)
		}
		return NewSuccessiveElimination(k)
	case "ucb1":
		if arg != "" {
			return nil, fmt.Errorf("bandit: spec %q: ucb1 takes no parameter", spec)
		}
		return NewUCB1(k)
	case "sw-ucb":
		window := 0
		if arg != "" {
			w, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("bandit: spec %q: bad window: %v", spec, err)
			}
			window = w
		}
		return NewSlidingWindowUCB(k, window)
	case "d-ucb":
		gamma := 0.0
		if arg != "" {
			g, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return nil, fmt.Errorf("bandit: spec %q: bad gamma: %v", spec, err)
			}
			gamma = g
		}
		return NewDiscountedUCB(k, gamma)
	case "exp3s":
		gamma, alpha := 0.0, -1.0
		if arg != "" {
			parts := strings.SplitN(arg, ",", 2)
			g, err := strconv.ParseFloat(parts[0], 64)
			if err != nil {
				return nil, fmt.Errorf("bandit: spec %q: bad gamma: %v", spec, err)
			}
			gamma = g
			if len(parts) == 2 {
				a, err := strconv.ParseFloat(parts[1], 64)
				if err != nil {
					return nil, fmt.Errorf("bandit: spec %q: bad alpha: %v", spec, err)
				}
				alpha = a
			}
		}
		return NewExp3Seeded(k, gamma, alpha, seed)
	case "restart":
		if arg == "" {
			return nil, fmt.Errorf("bandit: spec %q: restart needs an inner spec, e.g. restart:se", spec)
		}
		pol, err := Parse(arg, k, seed)
		if err != nil {
			return nil, err
		}
		inner, ok := pol.(Resettable)
		if !ok {
			return nil, fmt.Errorf("bandit: spec %q: inner policy %T is not resettable", spec, pol)
		}
		return NewRestart(inner, nil)
	default:
		return nil, fmt.Errorf("bandit: unknown policy spec %q (want se|ucb1|sw-ucb|d-ucb|exp3s|restart:<inner>)", spec)
	}
}
