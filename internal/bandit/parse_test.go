package bandit

import (
	"testing"
)

func TestParseAccepts(t *testing.T) {
	cases := map[string]interface{}{
		"se":                 (*SuccessiveElimination)(nil),
		"ucb1":               (*UCB1)(nil),
		"sw-ucb":             (*SlidingWindowUCB)(nil),
		"sw-ucb:64":          (*SlidingWindowUCB)(nil),
		"d-ucb":              (*DiscountedUCB)(nil),
		"d-ucb:0.9":          (*DiscountedUCB)(nil),
		"exp3s":              (*Exp3)(nil),
		"exp3s:0.2":          (*Exp3)(nil),
		"exp3s:0.2,0.01":     (*Exp3)(nil),
		"restart:se":         (*Restart)(nil),
		"restart:sw-ucb:32":  (*Restart)(nil),
		"restart:d-ucb:0.95": (*Restart)(nil),
		"restart:exp3s:0.1":  (*Restart)(nil),
		"  ucb1  ":           (*UCB1)(nil),
	}
	for spec, want := range cases {
		p, err := Parse(spec, 8, 7)
		if err != nil {
			t.Errorf("Parse(%q) failed: %v", spec, err)
			continue
		}
		if p.NumArms() != 8 {
			t.Errorf("Parse(%q): NumArms = %d", spec, p.NumArms())
		}
		got, expect := typeName(p), typeName(want)
		if got != expect {
			t.Errorf("Parse(%q) = %s, want %s", spec, got, expect)
		}
		// Everything Parse returns must be checkpointable.
		sn, ok := p.(Snapshotter)
		if !ok {
			t.Errorf("Parse(%q): %s does not implement Snapshotter", spec, got)
			continue
		}
		if sn.Snapshot() == nil {
			t.Errorf("Parse(%q): nil snapshot", spec)
		}
	}
	// Parameters must actually reach the policy.
	p, err := Parse("sw-ucb:64", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w := p.(*SlidingWindowUCB).Window(); w != 64 {
		t.Errorf("sw-ucb:64 window = %d", w)
	}
	q, err := Parse("d-ucb:0.9", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g := q.(*DiscountedUCB).Gamma(); g != 0.9 {
		t.Errorf("d-ucb:0.9 gamma = %v", g)
	}
	r, err := Parse("exp3s:0.2,0.01", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := r.(*Exp3); e.Gamma() != 0.2 || e.Alpha() != 0.01 {
		t.Errorf("exp3s:0.2,0.01 got gamma=%v alpha=%v", e.Gamma(), e.Alpha())
	}
	// Bare exp3s uses the documented defaults, not a silent constant.
	s, err := Parse("exp3s", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := s.(*Exp3); e.Gamma() != DefaultExp3Gamma || e.Alpha() != DefaultExp3Alpha {
		t.Errorf("exp3s defaults: gamma=%v alpha=%v", e.Gamma(), e.Alpha())
	}
}

func typeName(v interface{}) string {
	switch v.(type) {
	case *SuccessiveElimination:
		return "se"
	case *UCB1:
		return "ucb1"
	case *SlidingWindowUCB:
		return "sw-ucb"
	case *DiscountedUCB:
		return "d-ucb"
	case *Exp3:
		return "exp3"
	case *Restart:
		return "restart"
	default:
		return "unknown"
	}
}

func TestParseRejects(t *testing.T) {
	specs := []string{
		"",
		"   ",
		"mystery",
		"se:3",
		"ucb1:0.5",
		"sw-ucb:abc",
		"sw-ucb:-4",
		"d-ucb:nope",
		"d-ucb:1.5",
		"d-ucb:-0.1",
		"exp3s:bad",
		"exp3s:2",
		"exp3s:0.1,2",
		"exp3s:0.1,bad",
		"restart:",
		"restart",
		"restart:mystery",
		"restart:restart:se", // nested restart: inner parse yields Restart, which is fine — but restart of restart of bad inner isn't
	}
	for _, spec := range specs {
		if spec == "restart:restart:se" {
			// Nested restart is actually well-formed; ensure it parses
			// rather than silently doing something odd.
			if _, err := Parse(spec, 4, 1); err != nil {
				t.Errorf("Parse(%q) should nest: %v", spec, err)
			}
			continue
		}
		if _, err := Parse(spec, 4, 1); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}
	if _, err := Parse("se", 0, 1); err == nil {
		t.Error("Parse accepted zero arms")
	}
}
