package bandit

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// drive plays a policy for n rounds against a fixed arm->reward profile
// with multiplicative noise from rng, returning the arms played.
func drive(p Policy, means []float64, n int, rng *rand.Rand) []int {
	played := make([]int, 0, n)
	for i := 0; i < n; i++ {
		arm := p.Select()
		played = append(played, arm)
		p.Update(arm, means[arm]*(0.9+0.2*rng.Float64()))
	}
	return played
}

func TestSuccessiveEliminationSnapshotRoundTrip(t *testing.T) {
	means := []float64{1, 3, 9, 4, 2, 8, 7, 1}
	se, err := NewSuccessiveElimination(len(means))
	if err != nil {
		t.Fatal(err)
	}
	drive(se, means, 200, rand.New(rand.NewSource(1)))

	snap := se.Snapshot()
	// Through JSON, the way the daemon checkpoint persists it.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back PolicySnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	restored, err := RestorePolicy(&back)
	if err != nil {
		t.Fatal(err)
	}
	re := restored.(*SuccessiveElimination)

	// Identical statistics...
	if re.NumActive() != se.NumActive() {
		t.Fatalf("active: got %d want %d", re.NumActive(), se.NumActive())
	}
	for a := 0; a < len(means); a++ {
		if re.Plays(a) != se.Plays(a) || re.Mean(a) != se.Mean(a) || re.Active(a) != se.Active(a) {
			t.Fatalf("arm %d: got (%d, %v, %v) want (%d, %v, %v)",
				a, re.Plays(a), re.Mean(a), re.Active(a), se.Plays(a), se.Mean(a), se.Active(a))
		}
	}
	if re.BestArm() != se.BestArm() {
		t.Fatalf("best arm: got %d want %d", re.BestArm(), se.BestArm())
	}

	// ...and identical future behavior: the continuation of the original
	// and the restored copy play the same arms under the same rewards.
	rngA, rngB := rand.New(rand.NewSource(2)), rand.New(rand.NewSource(2))
	seqA := drive(se, means, 100, rngA)
	seqB := drive(re, means, 100, rngB)
	if !reflect.DeepEqual(seqA, seqB) {
		t.Fatalf("diverged after restore:\noriginal %v\nrestored %v", seqA, seqB)
	}
}

func TestUCB1SnapshotRoundTrip(t *testing.T) {
	means := []float64{2, 5, 3}
	u, err := NewUCB1(len(means))
	if err != nil {
		t.Fatal(err)
	}
	drive(u, means, 60, rand.New(rand.NewSource(3)))
	restored, err := RestorePolicy(u.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	rngA, rngB := rand.New(rand.NewSource(4)), rand.New(rand.NewSource(4))
	if a, b := drive(u, means, 50, rngA), drive(restored, means, 50, rngB); !reflect.DeepEqual(a, b) {
		t.Fatalf("diverged after restore:\noriginal %v\nrestored %v", a, b)
	}
}

func TestLipschitzSnapshotRoundTrip(t *testing.T) {
	se, err := NewSuccessiveElimination(8)
	if err != nil {
		t.Fatal(err)
	}
	lip, err := NewLipschitz(se, 200, 1200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		arm, v := lip.SelectValue()
		lip.Update(arm, 1000-v/2)
	}
	snap, err := lip.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	back, err := RestoreLipschitz(snap)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kappa() != lip.Kappa() || back.Epsilon() != lip.Epsilon() {
		t.Fatalf("grid mismatch: (%d, %v) vs (%d, %v)", back.Kappa(), back.Epsilon(), lip.Kappa(), lip.Epsilon())
	}
	for i := 0; i < 20; i++ {
		armA, vA := lip.SelectValue()
		armB, vB := back.SelectValue()
		if armA != armB || vA != vB {
			t.Fatalf("round %d: (%d, %v) vs (%d, %v)", i, armA, vA, armB, vB)
		}
		lip.Update(armA, vA)
		back.Update(armB, vB)
	}
}

func TestSnapshotUnsupportedPolicy(t *testing.T) {
	eg, err := NewEpsilonGreedy(4, 0.1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	lip, err := NewLipschitz(eg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lip.Snapshot(); err == nil {
		t.Fatal("expected ErrUnsupportedSnapshot for EpsilonGreedy inner policy")
	}
	if _, err := RestorePolicy(&PolicySnapshot{Kind: "mystery", Arms: []ArmSnapshot{{}}}); err == nil {
		t.Fatal("expected error for unknown snapshot kind")
	}
	if _, err := RestorePolicy(&PolicySnapshot{Kind: KindSuccessiveElimination, Arms: []ArmSnapshot{{Plays: 1}}}); err == nil {
		t.Fatal("expected error for snapshot with no active arms")
	}
}
