package bandit

import (
	"math"
	"testing"
)

// driftEnv is a deterministic two-phase environment: arm bestA is optimal
// before the change point, bestB after. A tiny per-step wobble keeps
// rewards distinct without randomness.
type driftEnv struct {
	k, change, bestA, bestB int
}

func (d driftEnv) reward(arm, step int) float64 {
	best := d.bestA
	if step >= d.change {
		best = d.bestB
	}
	r := 1.0
	if arm == best {
		r = 5.0
	}
	return r + 0.05*math.Sin(float64(step*7+arm))
}

// tailFrac plays p for horizon steps in env and returns the fraction of
// the final quarter's plays that hit the post-change optimum.
func tailFrac(p Policy, d driftEnv, horizon int) float64 {
	hits, tail := 0, 0
	for i := 0; i < horizon; i++ {
		arm := p.Select()
		p.Update(arm, d.reward(arm, i))
		if i >= horizon*3/4 {
			tail++
			if arm == d.bestB {
				hits++
			}
		}
	}
	return float64(hits) / float64(tail)
}

// TestDriftPoliciesRecoverFromShift: after a mid-stream optimum change,
// each drift-aware policy must re-converge on the new best arm, while the
// paper's successive elimination — having eliminated it — cannot.
func TestDriftPoliciesRecoverFromShift(t *testing.T) {
	const horizon = 2000
	env := driftEnv{k: 4, change: horizon / 2, bestA: 0, bestB: 3}

	sw, err := NewSlidingWindowUCB(env.k, 100)
	if err != nil {
		t.Fatal(err)
	}
	du, err := NewDiscountedUCB(env.k, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewSuccessiveElimination(env.k)
	if err != nil {
		t.Fatal(err)
	}
	rse, err := NewRestart(se, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]Policy{"sw-ucb": sw, "d-ucb": du, "restart:se": rse} {
		if frac := tailFrac(p, env, horizon); frac < 0.7 {
			t.Errorf("%s played the new optimum only %.0f%% of the tail, want >= 70%%", name, frac*100)
		}
	}
	if rse.Restarts() == 0 {
		t.Error("restart wrapper never fired on a 5x mean shift")
	}

	frozen, err := NewSuccessiveElimination(env.k)
	if err != nil {
		t.Fatal(err)
	}
	if frac := tailFrac(frozen, env, horizon); frac > 0.3 {
		t.Errorf("stationary SE recovered (%.0f%% tail) — drift env too easy to discriminate", frac*100)
	}
}

// TestSlidingWindowForgets: evidence older than the window must stop
// binding — windowed counts sum to at most the window length.
func TestSlidingWindowForgets(t *testing.T) {
	sw, err := NewSlidingWindowUCB(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		sw.Update(0, 1)
	}
	for i := 0; i < 10; i++ {
		sw.Update(1, 2)
	}
	if got := sw.WindowPlays(0); got != 0 {
		t.Fatalf("arm 0 still has %d windowed plays after full eviction", got)
	}
	if got := sw.WindowPlays(1); got != 10 {
		t.Fatalf("arm 1 windowed plays = %d, want 10", got)
	}
	if sw.Plays(0) != 50 {
		t.Fatalf("lifetime plays lost: %d", sw.Plays(0))
	}
	if m := sw.WindowMean(1); m != 2 {
		t.Fatalf("windowed mean = %v, want 2", m)
	}
}

// TestDiscountedUCBFades: discounted counts decay geometrically, so an
// arm unplayed for long regains an (eventually infinite) radius and gets
// re-explored.
func TestDiscountedUCBFades(t *testing.T) {
	du, err := NewDiscountedUCB(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	du.Update(0, 4)
	n0 := du.d[0].dPlays
	for i := 0; i < 40; i++ {
		du.Update(1, 1)
	}
	if du.d[0].dPlays >= n0*0.001 {
		t.Fatalf("arm 0 discounted count %v barely decayed from %v", du.d[0].dPlays, n0)
	}
	lcb, ucb := du.Bounds(0)
	if !math.IsInf(ucb, 1) || !math.IsInf(lcb, -1) {
		t.Fatalf("fully drained arm should report infinite bounds, got (%v, %v)", lcb, ucb)
	}
	if du.Select() != 0 {
		t.Fatal("drained arm must be re-explored")
	}
}

// TestPageHinkleyDetectsShift: a clean mean shift alarms shortly after
// the change point; a stationary stream never alarms.
func TestPageHinkleyDetectsShift(t *testing.T) {
	ph, err := NewPageHinkley(0.005, 1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	fired := -1
	for i := 0; i < 400; i++ {
		x := 0.2
		if i >= 200 {
			x = 0.8
		}
		x += 0.02 * math.Sin(float64(i))
		if ph.Observe(x) {
			fired = i
			break
		}
	}
	if fired < 200 || fired > 260 {
		t.Fatalf("detector fired at %d, want shortly after the shift at 200", fired)
	}

	ph.Reset()
	for i := 0; i < 2000; i++ {
		if ph.Observe(0.5 + 0.02*math.Sin(float64(i))) {
			t.Fatalf("false alarm at %d on a stationary stream", i)
		}
	}
}

// TestResetRestoresFreshDecisions: Reset must return deterministic
// policies to fresh-equivalent behavior.
func TestResetRestoresFreshDecisions(t *testing.T) {
	builders := map[string]func() Resettable{
		"se": func() Resettable {
			p, err := NewSuccessiveElimination(4)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"ucb1": func() Resettable {
			p, err := NewUCB1(4)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"sw-ucb": func() Resettable {
			p, err := NewSlidingWindowUCB(4, 16)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
		"d-ucb": func() Resettable {
			p, err := NewDiscountedUCB(4, 0.9)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
	for name, build := range builders {
		used, fresh := build(), build()
		for i := 0; i < 100; i++ {
			arm := used.Select()
			used.Update(arm, float64(arm)+0.1*float64(i%7))
		}
		used.Reset()
		for i := 0; i < 60; i++ {
			a, b := used.Select(), fresh.Select()
			if a != b {
				t.Fatalf("%s step %d: reset policy played %d, fresh played %d", name, i, a, b)
			}
			r := float64(a) + 0.2*float64(i%5)
			used.Update(a, r)
			fresh.Update(b, r)
		}
	}
}

// TestExp3ResetKeepsStream: Reset wipes Exp3's weights and statistics but
// must not rewind the owned random stream (the snapshot draw counter
// depends on it only ever advancing).
func TestExp3ResetKeepsStream(t *testing.T) {
	e, err := NewExp3Seeded(3, 0.1, 0.01, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		arm := e.Select()
		e.Update(arm, float64(arm))
	}
	draws := e.draws
	e.Reset()
	if e.draws != draws {
		t.Fatalf("Reset rewound the draw counter: %d -> %d", draws, e.draws)
	}
	for i, w := range e.weights {
		if w != 1 || e.plays[i] != 0 || e.sums[i] != 0 {
			t.Fatalf("arm %d not wiped: w=%v plays=%d sum=%v", i, w, e.plays[i], e.sums[i])
		}
	}
	// The wiped policy must still round-trip through a snapshot.
	q, err := RestorePolicy(e.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		a, b := e.Select(), q.Select()
		if a != b {
			t.Fatalf("post-reset round-trip diverged at %d: %d vs %d", i, a, b)
		}
		e.Update(a, 1)
		q.Update(b, 1)
	}
}

// TestDriftConstructorValidation: table-driven rejection cases for the
// new constructors.
func TestDriftConstructorValidation(t *testing.T) {
	if _, err := NewSlidingWindowUCB(0, 8); err == nil {
		t.Error("sw-ucb accepted zero arms")
	}
	if _, err := NewSlidingWindowUCB(3, -1); err == nil {
		t.Error("sw-ucb accepted negative window")
	}
	for _, gamma := range []float64{-0.5, 1, 1.5, math.NaN()} {
		if _, err := NewDiscountedUCB(3, gamma); err == nil {
			t.Errorf("d-ucb accepted gamma=%v", gamma)
		}
	}
	if _, err := NewDiscountedUCB(0, 0.9); err == nil {
		t.Error("d-ucb accepted zero arms")
	}
	for _, c := range []struct {
		delta, lambda float64
		warmup        int
	}{
		{-0.1, 1, 5},
		{0.01, -1, 5},
		{0.01, 1, -2},
		{math.NaN(), 1, 5},
		{0.01, math.NaN(), 5},
	} {
		if _, err := NewPageHinkley(c.delta, c.lambda, c.warmup); err == nil {
			t.Errorf("page-hinkley accepted delta=%v lambda=%v warmup=%d", c.delta, c.lambda, c.warmup)
		}
	}
	if _, err := NewRestart(nil, nil); err == nil {
		t.Error("restart accepted nil inner policy")
	}
}
