package bandit

import (
	"fmt"
	"math"
	"math/rand"
)

// Exp3 is the adversarial-bandit policy (exponential weights with
// explicit exploration), in its fixed-share variant Exp3.S. DynamicRR's
// slot rewards are not i.i.d. — the pending mix, residual capacity, and
// departures drift over time — so the stochastic guarantees behind
// successive elimination do not strictly apply; Exp3's adversarial regret
// bound O(sqrt(k T log k)) does, and the fixed-share mixing step lets the
// policy track a shifting optimum instead of committing forever to early
// winners. Offered as an alternative arm-selection policy and ablation
// point.
type Exp3 struct {
	weights []float64
	// gamma is the exploration fraction in (0, 1].
	gamma float64
	// alpha is the fixed-share mixing fraction (Exp3.S); each update
	// redistributes alpha of the total weight uniformly, bounding how
	// far any arm can fall behind.
	alpha float64
	rng   *rand.Rand
	// seed/draws make a seeded instance snapshottable: the rng is owned
	// (rebuilt from seed on restore) and draws counts Float64 consumptions
	// so the stream position can be replayed. seeded is false when the rng
	// came from the caller, in which case snapshots are unsupported (like
	// EpsilonGreedy).
	seed   int64
	draws  int
	seeded bool
	// Observed reward range for scale-free loss normalization.
	minObs, maxObs float64
	seen           bool
	plays          []int
	sums           []float64
	lastProb       float64
	lastArm        int
}

var _ Resettable = (*Exp3)(nil)

// Default Exp3.S parameters. DefaultExp3Alpha was previously hardcoded
// inside NewExp3; it is surfaced here so callers (and the experiment
// config) can see and override the mixing rate.
const (
	DefaultExp3Gamma = 0.1
	DefaultExp3Alpha = 0.002
)

// NewExp3 creates the policy over k arms with exploration fraction gamma
// (zero selects DefaultExp3Gamma) and the DefaultExp3Alpha fixed-share
// rate. Use NewExp3S to choose the mixing rate explicitly.
func NewExp3(k int, gamma float64, rng *rand.Rand) (*Exp3, error) {
	return NewExp3S(k, gamma, DefaultExp3Alpha, rng)
}

// NewExp3Seeded creates a self-seeded Exp3.S that owns its random stream,
// making it snapshottable: the snapshot records the seed and the number
// of draws consumed, and restore replays the stream to the same position.
// Alpha < 0 selects DefaultExp3Alpha (pass 0 for classic Exp3).
func NewExp3Seeded(k int, gamma, alpha float64, seed int64) (*Exp3, error) {
	if alpha < 0 {
		alpha = DefaultExp3Alpha
	}
	e, err := NewExp3S(k, gamma, alpha, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	e.seed, e.seeded = seed, true
	return e, nil
}

// NewExp3S creates the fixed-share variant with explicit mixing rate
// alpha in [0, 1) (0 recovers classic Exp3).
func NewExp3S(k int, gamma, alpha float64, rng *rand.Rand) (*Exp3, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrNoArms, k)
	}
	if gamma == 0 {
		gamma = DefaultExp3Gamma
	}
	if gamma < 0 || gamma > 1 || math.IsNaN(gamma) {
		return nil, fmt.Errorf("bandit: gamma %v out of (0, 1]", gamma)
	}
	if alpha < 0 || alpha >= 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("bandit: alpha %v out of [0, 1)", alpha)
	}
	e := &Exp3{
		weights: make([]float64, k),
		gamma:   gamma,
		alpha:   alpha,
		rng:     rng,
		plays:   make([]int, k),
		sums:    make([]float64, k),
		lastArm: -1,
	}
	for i := range e.weights {
		e.weights[i] = 1
	}
	return e, nil
}

// NumArms implements Policy.
func (e *Exp3) NumArms() int { return len(e.weights) }

// Plays implements Policy.
func (e *Exp3) Plays(arm int) int { return e.plays[arm] }

// Mean implements Policy.
func (e *Exp3) Mean(arm int) float64 {
	if e.plays[arm] == 0 {
		return 0
	}
	return e.sums[arm] / float64(e.plays[arm])
}

// probs returns the current sampling distribution.
func (e *Exp3) probs() []float64 {
	k := float64(len(e.weights))
	total := 0.0
	for _, w := range e.weights {
		total += w
	}
	out := make([]float64, len(e.weights))
	for i, w := range e.weights {
		out[i] = (1-e.gamma)*w/total + e.gamma/k
	}
	return out
}

// Gamma returns the exploration fraction.
func (e *Exp3) Gamma() float64 { return e.gamma }

// Alpha returns the fixed-share mixing rate.
func (e *Exp3) Alpha() float64 { return e.alpha }

// Select implements Policy: sample an arm from the exponential-weights
// mixture. Exactly one Float64 is consumed per call — the invariant the
// snapshot draw counter relies on.
func (e *Exp3) Select() int {
	p := e.probs()
	e.draws++
	u := e.rng.Float64()
	acc := 0.0
	for i, pi := range p {
		acc += pi
		if u < acc {
			e.lastArm, e.lastProb = i, pi
			return i
		}
	}
	last := len(p) - 1
	e.lastArm, e.lastProb = last, p[last]
	return last
}

// Update implements Policy: importance-weighted exponential update. The
// reward is normalized to [0, 1] by the running observed range so the
// learning rate stays meaningful on dollar-scale rewards.
func (e *Exp3) Update(arm int, reward float64) {
	e.plays[arm]++
	e.sums[arm] += reward
	if !e.seen {
		e.minObs, e.maxObs, e.seen = reward, reward, true
	} else {
		e.minObs = math.Min(e.minObs, reward)
		e.maxObs = math.Max(e.maxObs, reward)
	}
	span := e.maxObs - e.minObs
	norm := 0.5
	if span > 0 {
		norm = (reward - e.minObs) / span
	}
	prob := e.lastProb
	if arm != e.lastArm || prob <= 0 {
		// Update for an arm Exp3 did not sample itself (external play):
		// use the current mixture probability.
		prob = e.probs()[arm]
	}
	k := float64(len(e.weights))
	est := norm / prob
	e.weights[arm] *= math.Exp(e.gamma * est / k)
	// Fixed-share step (Exp3.S): mix a fraction of the total weight back
	// uniformly so no arm's weight decays irrecoverably.
	if e.alpha > 0 {
		total := 0.0
		for _, w := range e.weights {
			total += w
		}
		share := e.alpha * total / k
		for i := range e.weights {
			e.weights[i] = (1-e.alpha)*e.weights[i] + share
		}
	}
	// Renormalize weights occasionally to avoid overflow.
	if e.weights[arm] > 1e12 {
		for i := range e.weights {
			e.weights[i] /= 1e12
		}
	}
	e.lastArm, e.lastProb = -1, 0
}

// Reset implements Resettable: wipe the learning state back to uniform
// weights. The random stream is NOT rewound — it keeps advancing, so a
// restarted run stays reproducible and snapshot draw counting stays
// valid.
func (e *Exp3) Reset() {
	for i := range e.weights {
		e.weights[i] = 1
		e.plays[i] = 0
		e.sums[i] = 0
	}
	e.minObs, e.maxObs, e.seen = 0, 0, false
	e.lastArm, e.lastProb = -1, 0
}
