package bandit

import (
	"math"
	"math/rand"
	"testing"
)

func TestExp3Validation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewExp3(0, 0.1, rng); err == nil {
		t.Error("want error for zero arms")
	}
	if _, err := NewExp3(3, -0.5, rng); err == nil {
		t.Error("want error for negative gamma")
	}
	if _, err := NewExp3(3, 1.5, rng); err == nil {
		t.Error("want error for gamma > 1")
	}
	if _, err := NewExp3(3, math.NaN(), rng); err == nil {
		t.Error("want error for NaN gamma")
	}
	e, err := NewExp3(4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumArms() != 4 {
		t.Fatalf("NumArms = %d", e.NumArms())
	}
}

// TestExp3SRejectionTable: table-driven rejection cases for the explicit
// gamma/alpha constructors — the fix for NewExp3's silently hardcoded
// mixing rate includes validating both parameters loudly.
func TestExp3SRejectionTable(t *testing.T) {
	cases := []struct {
		name         string
		k            int
		gamma, alpha float64
	}{
		{"zero arms", 0, 0.1, 0.01},
		{"negative arms", -3, 0.1, 0.01},
		{"negative gamma", 3, -0.5, 0.01},
		{"gamma above one", 3, 1.5, 0.01},
		{"NaN gamma", 3, math.NaN(), 0.01},
		{"negative alpha", 3, 0.1, -0.01},
		{"alpha at one", 3, 0.1, 1},
		{"alpha above one", 3, 0.1, 1.5},
		{"NaN alpha", 3, 0.1, math.NaN()},
	}
	rng := rand.New(rand.NewSource(1))
	for _, c := range cases {
		if _, err := NewExp3S(c.k, c.gamma, c.alpha, rng); err == nil {
			t.Errorf("%s: NewExp3S(%d, %v, %v) accepted", c.name, c.k, c.gamma, c.alpha)
		}
		// The seeded constructor maps alpha<0 to the default, so only
		// genuinely invalid alphas must reject there.
		alpha := c.alpha
		if alpha < 0 && !math.IsNaN(alpha) {
			continue
		}
		if _, err := NewExp3Seeded(c.k, c.gamma, alpha, 1); err == nil {
			t.Errorf("%s: NewExp3Seeded(%d, %v, %v) accepted", c.name, c.k, c.gamma, alpha)
		}
	}
	// Boundary acceptances: gamma=1 (pure exploration) and alpha=0
	// (classic Exp3) are legal.
	if _, err := NewExp3S(3, 1, 0, rng); err != nil {
		t.Errorf("NewExp3S(3, 1, 0) rejected: %v", err)
	}
	// NewExp3 still defaults the mixing rate, now via the named constant.
	e, err := NewExp3(3, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if e.Alpha() != DefaultExp3Alpha {
		t.Errorf("NewExp3 alpha = %v, want DefaultExp3Alpha", e.Alpha())
	}
}

func TestExp3FindsBestArmStochastic(t *testing.T) {
	e, err := NewExp3(5, 0.1, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	frac := playRounds(t, e, []float64{1, 2, 10, 3, 4}, 0.5, 6000, 3)
	if frac < 0.6 { // Exp3 keeps exploring by design
		t.Fatalf("Exp3 best-arm tail fraction %.2f, want >= 0.6", frac)
	}
}

// TestExp3TracksShiftingOptimum: the reason Exp3 exists here — when the
// best arm changes mid-stream, exponential weights adapt, while frozen
// eliminations cannot.
func TestExp3TracksShiftingOptimum(t *testing.T) {
	e, err := NewExp3(3, 0.15, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	meansA := []float64{10, 2, 2}
	meansB := []float64{2, 2, 10}
	const half = 4000
	hitsSecondHalf := 0
	for r := 0; r < 2*half; r++ {
		means := meansA
		if r >= half {
			means = meansB
		}
		arm := e.Select()
		e.Update(arm, means[arm]+rng.NormFloat64()*0.5)
		if r >= half+half/2 && arm == 2 {
			hitsSecondHalf++
		}
	}
	frac := float64(hitsSecondHalf) / float64(half/2)
	if frac < 0.5 {
		t.Fatalf("Exp3 played the new optimum only %.0f%% after the shift", frac*100)
	}
}

func TestExp3MeansAndPlays(t *testing.T) {
	e, err := NewExp3(2, 0.2, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	e.Select()
	e.Update(0, 4)
	e.Update(0, 8)
	if e.Plays(0) != 2 || e.Mean(0) != 6 {
		t.Fatalf("plays=%d mean=%v", e.Plays(0), e.Mean(0))
	}
	if e.Mean(1) != 0 {
		t.Fatalf("unplayed arm mean %v", e.Mean(1))
	}
}

func TestExp3WeightsStayFinite(t *testing.T) {
	e, err := NewExp3(2, 1, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 50000; r++ {
		arm := e.Select()
		e.Update(arm, 1000) // constant huge reward stresses the weights
	}
	for i, w := range e.weights {
		if math.IsInf(w, 0) || math.IsNaN(w) {
			t.Fatalf("weight %d = %v", i, w)
		}
	}
}
