package bandit

import (
	"math"
	"math/rand"
	"testing"
)

func TestExp3Validation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewExp3(0, 0.1, rng); err == nil {
		t.Error("want error for zero arms")
	}
	if _, err := NewExp3(3, -0.5, rng); err == nil {
		t.Error("want error for negative gamma")
	}
	if _, err := NewExp3(3, 1.5, rng); err == nil {
		t.Error("want error for gamma > 1")
	}
	if _, err := NewExp3(3, math.NaN(), rng); err == nil {
		t.Error("want error for NaN gamma")
	}
	e, err := NewExp3(4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumArms() != 4 {
		t.Fatalf("NumArms = %d", e.NumArms())
	}
}

func TestExp3FindsBestArmStochastic(t *testing.T) {
	e, err := NewExp3(5, 0.1, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	frac := playRounds(t, e, []float64{1, 2, 10, 3, 4}, 0.5, 6000, 3)
	if frac < 0.6 { // Exp3 keeps exploring by design
		t.Fatalf("Exp3 best-arm tail fraction %.2f, want >= 0.6", frac)
	}
}

// TestExp3TracksShiftingOptimum: the reason Exp3 exists here — when the
// best arm changes mid-stream, exponential weights adapt, while frozen
// eliminations cannot.
func TestExp3TracksShiftingOptimum(t *testing.T) {
	e, err := NewExp3(3, 0.15, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	meansA := []float64{10, 2, 2}
	meansB := []float64{2, 2, 10}
	const half = 4000
	hitsSecondHalf := 0
	for r := 0; r < 2*half; r++ {
		means := meansA
		if r >= half {
			means = meansB
		}
		arm := e.Select()
		e.Update(arm, means[arm]+rng.NormFloat64()*0.5)
		if r >= half+half/2 && arm == 2 {
			hitsSecondHalf++
		}
	}
	frac := float64(hitsSecondHalf) / float64(half/2)
	if frac < 0.5 {
		t.Fatalf("Exp3 played the new optimum only %.0f%% after the shift", frac*100)
	}
}

func TestExp3MeansAndPlays(t *testing.T) {
	e, err := NewExp3(2, 0.2, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	e.Select()
	e.Update(0, 4)
	e.Update(0, 8)
	if e.Plays(0) != 2 || e.Mean(0) != 6 {
		t.Fatalf("plays=%d mean=%v", e.Plays(0), e.Mean(0))
	}
	if e.Mean(1) != 0 {
		t.Fatalf("unplayed arm mean %v", e.Mean(1))
	}
}

func TestExp3WeightsStayFinite(t *testing.T) {
	e, err := NewExp3(2, 1, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 50000; r++ {
		arm := e.Select()
		e.Update(arm, 1000) // constant huge reward stresses the weights
	}
	for i, w := range e.weights {
		if math.IsInf(w, 0) || math.IsNaN(w) {
			t.Fatalf("weight %d = %v", i, w)
		}
	}
}
