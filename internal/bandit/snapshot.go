package bandit

import (
	"errors"
	"fmt"
)

// Snapshot kinds. Only policies whose state is fully captured by per-arm
// statistics plus a few scalars are snapshottable; EpsilonGreedy is not
// (its exploration stream lives in an external *rand.Rand), and neither
// is an Exp3 built on a caller-supplied rng — use NewExp3Seeded, whose
// owned stream is recorded as (seed, draws) and replayed on restore.
const (
	KindSuccessiveElimination = "successive-elimination"
	KindUCB1                  = "ucb1"
	KindFixed                 = "fixed"
	KindSlidingWindowUCB      = "sw-ucb"
	KindDiscountedUCB         = "d-ucb"
	KindExp3S                 = "exp3s"
	KindRestart               = "restart"
)

// ErrUnsupportedSnapshot reports a policy that cannot round-trip through
// a snapshot.
var ErrUnsupportedSnapshot = errors.New("bandit: policy does not support snapshots")

// ArmSnapshot is one arm's persisted statistics. WPlays/WSum carry
// DiscountedUCB's gamma-discounted (fractional) count and sum alongside
// the lifetime integers.
type ArmSnapshot struct {
	Plays  int     `json:"plays"`
	Sum    float64 `json:"sum"`
	Active bool    `json:"active,omitempty"`
	WPlays float64 `json:"wPlays,omitempty"`
	WSum   float64 `json:"wSum,omitempty"`
}

// WindowEntry is one remembered play in SlidingWindowUCB's window,
// persisted oldest-first.
type WindowEntry struct {
	Arm    int     `json:"arm"`
	Reward float64 `json:"reward"`
}

// DetectorSnapshot persists a Page–Hinkley detector: configuration plus
// the running statistics of the current segment.
type DetectorSnapshot struct {
	Delta  float64 `json:"delta"`
	Lambda float64 `json:"lambda"`
	Warmup int     `json:"warmup"`
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	MUp    float64 `json:"mUp"`
	MinUp  float64 `json:"minUp"`
	MDn    float64 `json:"mDn"`
	MinDn  float64 `json:"minDn"`
}

// PolicySnapshot is the serializable state of a finite-arm policy: arm
// means and pull counts, the eliminated set, the round counter, the
// round-robin cursor, and the observed reward range that scales the
// confidence radii. Restoring it yields a policy whose future decisions
// are identical to the original's.
type PolicySnapshot struct {
	Kind   string        `json:"kind"`
	T      int           `json:"t"`
	Next   int           `json:"next,omitempty"`
	Arm    int           `json:"arm,omitempty"` // Fixed's pinned arm
	MinObs float64       `json:"minObs,omitempty"`
	MaxObs float64       `json:"maxObs,omitempty"`
	Seen   bool          `json:"seen,omitempty"`
	Arms   []ArmSnapshot `json:"arms"`

	// SlidingWindowUCB: ring contents oldest-first plus capacity.
	Window    []WindowEntry `json:"window,omitempty"`
	WindowCap int           `json:"windowCap,omitempty"`
	// DiscountedUCB: discount factor and discounted total count. Gamma
	// doubles as Exp3's exploration fraction.
	Gamma float64 `json:"gamma,omitempty"`
	NTot  float64 `json:"nTot,omitempty"`
	// Exp3.S: mixing rate, weights, the owned rng's seed and consumed
	// draw count, and the pending importance weight from an un-updated
	// Select.
	Alpha    float64   `json:"alpha,omitempty"`
	Weights  []float64 `json:"weights,omitempty"`
	Seed     int64     `json:"seed,omitempty"`
	Draws    int       `json:"draws,omitempty"`
	LastArm  int       `json:"lastArm,omitempty"`
	LastProb float64   `json:"lastProb,omitempty"`
	// Restart: the supervised policy, the per-arm detectors, and the
	// restart count.
	Inner     *PolicySnapshot    `json:"inner,omitempty"`
	Detectors []DetectorSnapshot `json:"detectors,omitempty"`
	Restarts  int                `json:"restarts,omitempty"`
}

// LipschitzSnapshot persists a Lipschitz wrapper: the continuous interval
// plus the inner policy's state.
type LipschitzSnapshot struct {
	Min    float64         `json:"min"`
	Max    float64         `json:"max"`
	Policy *PolicySnapshot `json:"policy"`
}

// Clone deep-copies the snapshot: the returned value shares no slices
// (Arms, Window, Weights, Detectors) or nested snapshots with the
// receiver, so two restored policies can never alias arm statistics.
// Much cheaper than the JSON round-trip it replaces in the cluster's
// restore composition.
func (s *PolicySnapshot) Clone() *PolicySnapshot {
	if s == nil {
		return nil
	}
	out := *s
	if s.Arms != nil {
		out.Arms = make([]ArmSnapshot, len(s.Arms))
		copy(out.Arms, s.Arms)
	}
	if s.Window != nil {
		out.Window = make([]WindowEntry, len(s.Window))
		copy(out.Window, s.Window)
	}
	if s.Weights != nil {
		out.Weights = make([]float64, len(s.Weights))
		copy(out.Weights, s.Weights)
	}
	if s.Detectors != nil {
		out.Detectors = make([]DetectorSnapshot, len(s.Detectors))
		copy(out.Detectors, s.Detectors)
	}
	out.Inner = s.Inner.Clone()
	return &out
}

// Clone deep-copies the wrapper and its inner policy snapshot.
func (s *LipschitzSnapshot) Clone() *LipschitzSnapshot {
	if s == nil {
		return nil
	}
	out := *s
	out.Policy = s.Policy.Clone()
	return &out
}

// Snapshot captures the policy's state.
func (se *SuccessiveElimination) Snapshot() *PolicySnapshot {
	s := &PolicySnapshot{
		Kind:   KindSuccessiveElimination,
		T:      se.t,
		Next:   se.next,
		MinObs: se.minObs,
		MaxObs: se.maxObs,
		Seen:   se.seen,
		Arms:   make([]ArmSnapshot, len(se.arms)),
	}
	for i := range se.arms {
		s.Arms[i] = ArmSnapshot{Plays: se.arms[i].plays, Sum: se.arms[i].sum, Active: se.active[i]}
	}
	return s
}

// Snapshot captures the policy's state.
func (u *UCB1) Snapshot() *PolicySnapshot {
	s := &PolicySnapshot{
		Kind:   KindUCB1,
		T:      u.t,
		MinObs: u.minObs,
		MaxObs: u.maxObs,
		Seen:   u.seen,
		Arms:   make([]ArmSnapshot, len(u.arms)),
	}
	for i := range u.arms {
		s.Arms[i] = ArmSnapshot{Plays: u.arms[i].plays, Sum: u.arms[i].sum}
	}
	return s
}

// Snapshot captures the policy's state.
func (f *Fixed) Snapshot() *PolicySnapshot {
	return &PolicySnapshot{
		Kind: KindFixed,
		Arm:  f.arm,
		Arms: make([]ArmSnapshot, f.k),
	}
}

// Snapshot captures the policy's state, including the exact window
// contents so the restored ring evicts in the same order.
func (s *SlidingWindowUCB) Snapshot() *PolicySnapshot {
	snap := &PolicySnapshot{
		Kind:      KindSlidingWindowUCB,
		T:         s.t,
		MinObs:    s.minObs,
		MaxObs:    s.maxObs,
		Seen:      s.seen,
		Arms:      make([]ArmSnapshot, len(s.arms)),
		WindowCap: s.window,
		Window:    make([]WindowEntry, 0, s.size),
	}
	for i := range s.arms {
		snap.Arms[i] = ArmSnapshot{Plays: s.arms[i].plays, Sum: s.arms[i].sum}
	}
	for i := 0; i < s.size; i++ {
		e := s.win[(s.head+i)%len(s.win)]
		snap.Window = append(snap.Window, WindowEntry{Arm: e.arm, Reward: e.reward})
	}
	return snap
}

// Snapshot captures the policy's state.
func (u *DiscountedUCB) Snapshot() *PolicySnapshot {
	snap := &PolicySnapshot{
		Kind:   KindDiscountedUCB,
		T:      u.t,
		MinObs: u.minObs,
		MaxObs: u.maxObs,
		Seen:   u.seen,
		Gamma:  u.gamma,
		NTot:   u.nTot,
		Arms:   make([]ArmSnapshot, len(u.arms)),
	}
	for i := range u.arms {
		snap.Arms[i] = ArmSnapshot{
			Plays:  u.arms[i].plays,
			Sum:    u.arms[i].sum,
			WPlays: u.d[i].dPlays,
			WSum:   u.d[i].dSum,
		}
	}
	return snap
}

// Snapshot captures the policy's state. It returns nil for an Exp3 built
// on a caller-supplied rng (NewExp3/NewExp3S): only the seeded variant
// can replay its random stream on restore.
func (e *Exp3) Snapshot() *PolicySnapshot {
	if !e.seeded {
		return nil
	}
	snap := &PolicySnapshot{
		Kind:     KindExp3S,
		MinObs:   e.minObs,
		MaxObs:   e.maxObs,
		Seen:     e.seen,
		Gamma:    e.gamma,
		Alpha:    e.alpha,
		Seed:     e.seed,
		Draws:    e.draws,
		LastArm:  e.lastArm,
		LastProb: e.lastProb,
		Weights:  append([]float64(nil), e.weights...),
		Arms:     make([]ArmSnapshot, len(e.weights)),
	}
	for i := range e.weights {
		snap.Arms[i] = ArmSnapshot{Plays: e.plays[i], Sum: e.sums[i]}
	}
	return snap
}

// Snapshot captures the wrapper, its detector, and the inner policy. It
// returns nil when the inner policy cannot be persisted.
func (r *Restart) Snapshot() *PolicySnapshot {
	sn, ok := r.inner.(Snapshotter)
	if !ok {
		return nil
	}
	inner := sn.Snapshot()
	if inner == nil {
		return nil
	}
	dets := make([]DetectorSnapshot, len(r.phs))
	for i, ph := range r.phs {
		dets[i] = DetectorSnapshot{
			Delta:  ph.Delta,
			Lambda: ph.Lambda,
			Warmup: ph.Warmup,
			N:      ph.n,
			Mean:   ph.mean,
			MUp:    ph.mUp,
			MinUp:  ph.minUp,
			MDn:    ph.mDn,
			MinDn:  ph.minDn,
		}
	}
	return &PolicySnapshot{
		Kind:      KindRestart,
		MinObs:    r.minObs,
		MaxObs:    r.maxObs,
		Seen:      r.seen,
		Restarts:  r.restarts,
		Inner:     inner,
		Detectors: dets,
	}
}

// Snapshotter is implemented by policies that can persist their state. A
// nil return means this particular instance cannot be persisted (e.g. an
// Exp3 on a caller-supplied rng).
type Snapshotter interface {
	Snapshot() *PolicySnapshot
}

// RestorePolicy rebuilds a policy from its snapshot.
func RestorePolicy(s *PolicySnapshot) (Policy, error) {
	if s == nil {
		return nil, fmt.Errorf("%w: nil snapshot", ErrUnsupportedSnapshot)
	}
	if len(s.Arms) == 0 && s.Kind != KindRestart {
		return nil, ErrNoArms
	}
	switch s.Kind {
	case KindSuccessiveElimination:
		se, err := NewSuccessiveElimination(len(s.Arms))
		if err != nil {
			return nil, err
		}
		se.t = s.T
		se.next = s.Next
		se.minObs, se.maxObs, se.seen = s.MinObs, s.MaxObs, s.Seen
		se.nActive = 0
		for i, a := range s.Arms {
			se.arms[i] = armStats{plays: a.Plays, sum: a.Sum}
			se.active[i] = a.Active
			if a.Active {
				se.nActive++
			}
		}
		if se.nActive == 0 {
			return nil, fmt.Errorf("%w: no active arms", ErrUnsupportedSnapshot)
		}
		return se, nil
	case KindUCB1:
		u, err := NewUCB1(len(s.Arms))
		if err != nil {
			return nil, err
		}
		u.t = s.T
		u.minObs, u.maxObs, u.seen = s.MinObs, s.MaxObs, s.Seen
		for i, a := range s.Arms {
			u.arms[i] = armStats{plays: a.Plays, sum: a.Sum}
		}
		return u, nil
	case KindFixed:
		return NewFixed(len(s.Arms), s.Arm)
	case KindSlidingWindowUCB:
		sw, err := NewSlidingWindowUCB(len(s.Arms), s.WindowCap)
		if err != nil {
			return nil, err
		}
		if len(s.Window) > sw.window {
			return nil, fmt.Errorf("%w: window has %d entries, cap %d", ErrUnsupportedSnapshot, len(s.Window), sw.window)
		}
		sw.t = s.T
		sw.minObs, sw.maxObs, sw.seen = s.MinObs, s.MaxObs, s.Seen
		for i, a := range s.Arms {
			sw.arms[i] = armStats{plays: a.Plays, sum: a.Sum}
		}
		for _, e := range s.Window {
			if e.Arm < 0 || e.Arm >= len(s.Arms) {
				return nil, fmt.Errorf("%w: window arm %d out of range", ErrUnsupportedSnapshot, e.Arm)
			}
			sw.win = append(sw.win, winEntry{arm: e.Arm, reward: e.Reward})
			sw.wPlays[e.Arm]++
			sw.wSums[e.Arm] += e.Reward
			sw.size++
		}
		// The restored ring starts compacted: head 0, oldest entry first.
		// Eviction order only depends on entry order, so the continuation
		// is decision-identical.
		return sw, nil
	case KindDiscountedUCB:
		du, err := NewDiscountedUCB(len(s.Arms), s.Gamma)
		if err != nil {
			return nil, err
		}
		du.t = s.T
		du.nTot = s.NTot
		du.minObs, du.maxObs, du.seen = s.MinObs, s.MaxObs, s.Seen
		for i, a := range s.Arms {
			du.arms[i] = armStats{plays: a.Plays, sum: a.Sum}
			du.d[i] = dArm{dPlays: a.WPlays, dSum: a.WSum}
		}
		return du, nil
	case KindExp3S:
		if len(s.Weights) != len(s.Arms) {
			return nil, fmt.Errorf("%w: %d weights for %d arms", ErrUnsupportedSnapshot, len(s.Weights), len(s.Arms))
		}
		e, err := NewExp3Seeded(len(s.Arms), s.Gamma, s.Alpha, s.Seed)
		if err != nil {
			return nil, err
		}
		// Replay the owned stream to the recorded position: Select consumes
		// exactly one Float64 per call, so discarding Draws of them lands
		// the rng where the original left off.
		for i := 0; i < s.Draws; i++ {
			e.rng.Float64()
		}
		e.draws = s.Draws
		copy(e.weights, s.Weights)
		e.minObs, e.maxObs, e.seen = s.MinObs, s.MaxObs, s.Seen
		e.lastArm, e.lastProb = s.LastArm, s.LastProb
		for i, a := range s.Arms {
			e.plays[i] = a.Plays
			e.sums[i] = a.Sum
		}
		return e, nil
	case KindRestart:
		if s.Inner == nil || len(s.Detectors) == 0 {
			return nil, fmt.Errorf("%w: restart snapshot missing inner or detectors", ErrUnsupportedSnapshot)
		}
		pol, err := RestorePolicy(s.Inner)
		if err != nil {
			return nil, err
		}
		inner, ok := pol.(Resettable)
		if !ok {
			return nil, fmt.Errorf("%w: restart inner %T is not resettable", ErrUnsupportedSnapshot, pol)
		}
		if len(s.Detectors) != inner.NumArms() {
			return nil, fmt.Errorf("%w: %d detectors for %d arms", ErrUnsupportedSnapshot, len(s.Detectors), inner.NumArms())
		}
		r, err := NewRestart(inner, nil)
		if err != nil {
			return nil, err
		}
		for i, d := range s.Detectors {
			ph, err := NewPageHinkley(d.Delta, d.Lambda, d.Warmup)
			if err != nil {
				return nil, err
			}
			ph.n, ph.mean = d.N, d.Mean
			ph.mUp, ph.minUp, ph.mDn, ph.minDn = d.MUp, d.MinUp, d.MDn, d.MinDn
			r.phs[i] = ph
		}
		r.minObs, r.maxObs, r.seen = s.MinObs, s.MaxObs, s.Seen
		r.restarts = s.Restarts
		return r, nil
	default:
		return nil, fmt.Errorf("%w: kind %q", ErrUnsupportedSnapshot, s.Kind)
	}
}

// Snapshot captures the wrapper and its inner policy. It fails with
// ErrUnsupportedSnapshot when the inner policy cannot be persisted.
func (l *Lipschitz) Snapshot() (*LipschitzSnapshot, error) {
	sn, ok := l.policy.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("%w: %T", ErrUnsupportedSnapshot, l.policy)
	}
	ps := sn.Snapshot()
	if ps == nil {
		return nil, fmt.Errorf("%w: %T instance", ErrUnsupportedSnapshot, l.policy)
	}
	return &LipschitzSnapshot{Min: l.min, Max: l.max, Policy: ps}, nil
}

// RestoreLipschitz rebuilds a Lipschitz learner from its snapshot.
func RestoreLipschitz(s *LipschitzSnapshot) (*Lipschitz, error) {
	if s == nil {
		return nil, fmt.Errorf("%w: nil snapshot", ErrUnsupportedSnapshot)
	}
	pol, err := RestorePolicy(s.Policy)
	if err != nil {
		return nil, err
	}
	return NewLipschitz(pol, s.Min, s.Max)
}
