package bandit

import (
	"errors"
	"fmt"
)

// Snapshot kinds. Only policies whose state is fully captured by per-arm
// statistics plus a few scalars are snapshottable; EpsilonGreedy is not
// (its exploration stream lives in an external *rand.Rand).
const (
	KindSuccessiveElimination = "successive-elimination"
	KindUCB1                  = "ucb1"
	KindFixed                 = "fixed"
)

// ErrUnsupportedSnapshot reports a policy that cannot round-trip through
// a snapshot.
var ErrUnsupportedSnapshot = errors.New("bandit: policy does not support snapshots")

// ArmSnapshot is one arm's persisted statistics.
type ArmSnapshot struct {
	Plays  int     `json:"plays"`
	Sum    float64 `json:"sum"`
	Active bool    `json:"active,omitempty"`
}

// PolicySnapshot is the serializable state of a finite-arm policy: arm
// means and pull counts, the eliminated set, the round counter, the
// round-robin cursor, and the observed reward range that scales the
// confidence radii. Restoring it yields a policy whose future decisions
// are identical to the original's.
type PolicySnapshot struct {
	Kind   string        `json:"kind"`
	T      int           `json:"t"`
	Next   int           `json:"next,omitempty"`
	Arm    int           `json:"arm,omitempty"` // Fixed's pinned arm
	MinObs float64       `json:"minObs,omitempty"`
	MaxObs float64       `json:"maxObs,omitempty"`
	Seen   bool          `json:"seen,omitempty"`
	Arms   []ArmSnapshot `json:"arms"`
}

// LipschitzSnapshot persists a Lipschitz wrapper: the continuous interval
// plus the inner policy's state.
type LipschitzSnapshot struct {
	Min    float64         `json:"min"`
	Max    float64         `json:"max"`
	Policy *PolicySnapshot `json:"policy"`
}

// Snapshot captures the policy's state.
func (se *SuccessiveElimination) Snapshot() *PolicySnapshot {
	s := &PolicySnapshot{
		Kind:   KindSuccessiveElimination,
		T:      se.t,
		Next:   se.next,
		MinObs: se.minObs,
		MaxObs: se.maxObs,
		Seen:   se.seen,
		Arms:   make([]ArmSnapshot, len(se.arms)),
	}
	for i := range se.arms {
		s.Arms[i] = ArmSnapshot{Plays: se.arms[i].plays, Sum: se.arms[i].sum, Active: se.active[i]}
	}
	return s
}

// Snapshot captures the policy's state.
func (u *UCB1) Snapshot() *PolicySnapshot {
	s := &PolicySnapshot{
		Kind:   KindUCB1,
		T:      u.t,
		MinObs: u.minObs,
		MaxObs: u.maxObs,
		Seen:   u.seen,
		Arms:   make([]ArmSnapshot, len(u.arms)),
	}
	for i := range u.arms {
		s.Arms[i] = ArmSnapshot{Plays: u.arms[i].plays, Sum: u.arms[i].sum}
	}
	return s
}

// Snapshot captures the policy's state.
func (f *Fixed) Snapshot() *PolicySnapshot {
	return &PolicySnapshot{
		Kind: KindFixed,
		Arm:  f.arm,
		Arms: make([]ArmSnapshot, f.k),
	}
}

// Snapshotter is implemented by policies that can persist their state.
type Snapshotter interface {
	Snapshot() *PolicySnapshot
}

// RestorePolicy rebuilds a policy from its snapshot.
func RestorePolicy(s *PolicySnapshot) (Policy, error) {
	if s == nil {
		return nil, fmt.Errorf("%w: nil snapshot", ErrUnsupportedSnapshot)
	}
	if len(s.Arms) == 0 {
		return nil, ErrNoArms
	}
	switch s.Kind {
	case KindSuccessiveElimination:
		se, err := NewSuccessiveElimination(len(s.Arms))
		if err != nil {
			return nil, err
		}
		se.t = s.T
		se.next = s.Next
		se.minObs, se.maxObs, se.seen = s.MinObs, s.MaxObs, s.Seen
		se.nActive = 0
		for i, a := range s.Arms {
			se.arms[i] = armStats{plays: a.Plays, sum: a.Sum}
			se.active[i] = a.Active
			if a.Active {
				se.nActive++
			}
		}
		if se.nActive == 0 {
			return nil, fmt.Errorf("%w: no active arms", ErrUnsupportedSnapshot)
		}
		return se, nil
	case KindUCB1:
		u, err := NewUCB1(len(s.Arms))
		if err != nil {
			return nil, err
		}
		u.t = s.T
		u.minObs, u.maxObs, u.seen = s.MinObs, s.MaxObs, s.Seen
		for i, a := range s.Arms {
			u.arms[i] = armStats{plays: a.Plays, sum: a.Sum}
		}
		return u, nil
	case KindFixed:
		return NewFixed(len(s.Arms), s.Arm)
	default:
		return nil, fmt.Errorf("%w: kind %q", ErrUnsupportedSnapshot, s.Kind)
	}
}

// Snapshot captures the wrapper and its inner policy. It fails with
// ErrUnsupportedSnapshot when the inner policy cannot be persisted.
func (l *Lipschitz) Snapshot() (*LipschitzSnapshot, error) {
	sn, ok := l.policy.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("%w: %T", ErrUnsupportedSnapshot, l.policy)
	}
	return &LipschitzSnapshot{Min: l.min, Max: l.max, Policy: sn.Snapshot()}, nil
}

// RestoreLipschitz rebuilds a Lipschitz learner from its snapshot.
func RestoreLipschitz(s *LipschitzSnapshot) (*Lipschitz, error) {
	if s == nil {
		return nil, fmt.Errorf("%w: nil snapshot", ErrUnsupportedSnapshot)
	}
	pol, err := RestorePolicy(s.Policy)
	if err != nil {
		return nil, err
	}
	return NewLipschitz(pol, s.Min, s.Max)
}
