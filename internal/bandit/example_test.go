package bandit_test

import (
	"fmt"
	"math/rand"

	"mecoffload/internal/bandit"
)

// ExampleLipschitz shows the threshold-learning loop DynamicRR runs each
// time slot: discretize a continuous interval, pick an arm, observe the
// slot reward, feed it back.
func ExampleLipschitz() {
	se, err := bandit.NewSuccessiveElimination(8)
	if err != nil {
		panic(err)
	}
	lip, err := bandit.NewLipschitz(se, 200, 1200)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(1))
	landscape := func(th float64) float64 { return 900 - 0.004*(th-600)*(th-600) }
	for t := 0; t < 2000; t++ {
		arm, th := lip.SelectValue()
		lip.Update(arm, landscape(th)+rng.NormFloat64()*20)
	}
	best := se.BestArm()
	fmt.Printf("kappa=%d eps=%g best=%gMHz\n", lip.Kappa(), lip.Epsilon(), lip.Value(best))
	// Output: kappa=8 eps=142.85714285714286 best=628.5714285714286MHz
}

// ExampleZooming runs the adaptive-discretization variant on the same
// landscape; the arm set refines itself instead of using a fixed grid.
func ExampleZooming() {
	z, err := bandit.NewZooming(200, 1200, 0)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(2))
	landscape := func(th float64) float64 { return 900 - 0.004*(th-600)*(th-600) }
	for t := 0; t < 2000; t++ {
		arm, th := z.SelectValue()
		z.Update(arm, landscape(th)+rng.NormFloat64()*20)
	}
	fmt.Printf("close=%v\n", z.BestValue() > 400 && z.BestValue() < 800)
	// Output: close=true
}
