package bandit

import (
	"math"
	"math/rand"
	"testing"
)

func TestZoomingValidation(t *testing.T) {
	if _, err := NewZooming(10, 5, 0); err == nil {
		t.Error("want error for inverted interval")
	}
	if _, err := NewZooming(math.NaN(), 5, 0); err == nil {
		t.Error("want error for NaN bound")
	}
	if _, err := NewZooming(0, 1, 1); err == nil {
		t.Error("want error for degenerate probe grid")
	}
}

func TestZoomingStartsAtMidpoint(t *testing.T) {
	z, err := NewZooming(100, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if z.NumArms() != 1 || z.ArmValue(0) != 200 {
		t.Fatalf("initial arm set: %d arms, first at %v", z.NumArms(), z.ArmValue(0))
	}
	arm, v := z.SelectValue()
	if v != z.ArmValue(arm) {
		t.Fatal("SelectValue inconsistent with ArmValue")
	}
}

// TestZoomingConvergesToOptimum plays a smooth unimodal landscape and
// checks the learner concentrates near its maximum.
func TestZoomingConvergesToOptimum(t *testing.T) {
	z, err := NewZooming(0, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	landscape := func(x float64) float64 { return 100 - 0.001*(x-700)*(x-700) }
	for round := 0; round < 5000; round++ {
		arm, x := z.SelectValue()
		z.Update(arm, landscape(x)+rng.NormFloat64()*5)
	}
	if got := z.BestValue(); math.Abs(got-700) > 150 {
		t.Fatalf("best value %v, want near 700", got)
	}
	if z.NumArms() < 2 {
		t.Fatal("zooming never activated additional arms")
	}
}

// TestZoomingRefinesNearOptimum: the arm density around the optimum must
// exceed the density far from it.
func TestZoomingRefinesNearOptimum(t *testing.T) {
	z, err := NewZooming(0, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	landscape := func(x float64) float64 { return 100 - 0.0008*(x-250)*(x-250) }
	for round := 0; round < 8000; round++ {
		arm, x := z.SelectValue()
		z.Update(arm, landscape(x)+rng.NormFloat64()*3)
	}
	near, far := 0, 0
	for i := 0; i < z.NumArms(); i++ {
		if math.Abs(z.ArmValue(i)-250) <= 200 {
			near++
		} else {
			far++
		}
	}
	if near <= far/2 {
		t.Fatalf("arms near optimum %d vs far %d: no refinement", near, far)
	}
}

func TestZoomingDegenerateInterval(t *testing.T) {
	z, err := NewZooming(500, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		arm, v := z.SelectValue()
		if v != 500 {
			t.Fatalf("degenerate interval selected %v", v)
		}
		z.Update(arm, 1)
	}
	if z.NumArms() != 1 {
		t.Fatalf("degenerate interval grew %d arms", z.NumArms())
	}
}
