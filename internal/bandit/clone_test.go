package bandit

import (
	"math/rand"
	"reflect"
	"testing"
)

// richSnapshot builds a snapshot exercising every Clone-copied field: a
// Restart supervisor (detectors + recursive Inner) over an Exp3.S
// (weights, rng seed/draws), wrapped in a Lipschitz interval. The inner
// window/arm slices come from real driven policies, not literals, so the
// test tracks the snapshot schema.
func richSnapshot(t *testing.T) *LipschitzSnapshot {
	t.Helper()
	inner, err := NewExp3Seeded(6, 0.1, 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := NewPageHinkley(0.05, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRestart(inner, ph)
	if err != nil {
		t.Fatal(err)
	}
	drive(rs, []float64{1, 5, 2, 8, 3, 4}, 80, rand.New(rand.NewSource(9)))
	lip, err := NewLipschitz(rs, 200, 1200)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := lip.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestLipschitzSnapshotClone proves Clone is a faithful deep copy: equal
// to the original, restorable to an identical policy, and sharing no
// mutable slices with it — the property composeRestore relies on so two
// shards seeded from one manifest never alias arm statistics.
func TestLipschitzSnapshotClone(t *testing.T) {
	snap := richSnapshot(t)
	clone := snap.Clone()
	if !reflect.DeepEqual(snap, clone) {
		t.Fatalf("clone differs from original:\n%+v\nvs\n%+v", snap, clone)
	}
	if _, err := RestoreLipschitz(clone); err != nil {
		t.Fatalf("restoring clone: %v", err)
	}

	// Mutate every slice and nested snapshot in the clone; the original
	// must not move.
	p := clone.Policy
	if p.Kind != KindRestart || p.Inner == nil || len(p.Detectors) == 0 {
		t.Fatalf("test setup: expected a restart snapshot with detectors, got %q", p.Kind)
	}
	if len(p.Inner.Weights) == 0 || len(p.Inner.Arms) == 0 {
		t.Fatalf("test setup: expected exp3 inner with weights/arms")
	}
	p.Detectors[0].N += 1000
	p.Inner.Weights[0] *= 7
	p.Inner.Arms[0].Sum += 99
	p.Inner.T += 5
	clone.Min = -1
	if reflect.DeepEqual(snap, clone) {
		t.Fatal("mutating the clone should diverge it from the original")
	}
	fresh := richSnapshot(t)
	if !reflect.DeepEqual(snap, fresh) {
		t.Fatal("mutating the clone leaked into the original's shared state")
	}
}

// TestPolicySnapshotCloneNil pins the nil-receiver contract both Clone
// methods rely on for absent inner policies.
func TestPolicySnapshotCloneNil(t *testing.T) {
	var p *PolicySnapshot
	if p.Clone() != nil {
		t.Fatal("nil PolicySnapshot should clone to nil")
	}
	var l *LipschitzSnapshot
	if l.Clone() != nil {
		t.Fatal("nil LipschitzSnapshot should clone to nil")
	}
}

// TestSlidingWindowSnapshotClone covers the window-ring slice, which the
// restart/exp3 composite above doesn't exercise.
func TestSlidingWindowSnapshotClone(t *testing.T) {
	sw, err := NewSlidingWindowUCB(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	drive(sw, []float64{1, 4, 2, 3}, 40, rand.New(rand.NewSource(11)))
	snap := sw.Snapshot()
	clone := snap.Clone()
	if !reflect.DeepEqual(snap, clone) {
		t.Fatal("clone differs from original")
	}
	if len(clone.Window) == 0 {
		t.Fatal("test setup: expected a populated window")
	}
	clone.Window[0].Reward += 100
	if snap.Window[0].Reward == clone.Window[0].Reward {
		t.Fatal("window ring aliased between clone and original")
	}
}
