// Package bandit implements the multi-armed-bandit policies behind the
// paper's DynamicRR algorithm (Section V): a successive-elimination policy
// with UCB/LCB confidence bounds over a finite arm set, plus UCB1 and
// epsilon-greedy used for ablations, and a Lipschitz wrapper that maps a
// continuous threshold interval [min, max] onto kappa discretized arms
// (fixed discretization, Eq. (21) and Theorem 3).
//
// All policies share the Policy interface: Select returns the arm to play
// this round; Update feeds back the observed reward. Rewards may live on
// any scale; confidence radii use the running observed range so callers do
// not need to normalize.
package bandit

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrNoArms is returned by constructors given an empty arm set.
var ErrNoArms = errors.New("bandit: need at least one arm")

// Policy is a finite-arm bandit algorithm. Implementations are not safe
// for concurrent use.
type Policy interface {
	// NumArms returns the size of the arm set.
	NumArms() int
	// Select returns the index of the arm to play this round.
	Select() int
	// Update records the reward observed after playing arm.
	Update(arm int, reward float64)
	// Mean returns the empirical mean reward of arm (0 if unplayed).
	Mean(arm int) float64
	// Plays returns how many times arm has been played.
	Plays(arm int) int
}

// armStats tracks per-arm play counts and reward sums.
type armStats struct {
	plays int
	sum   float64
}

func (a *armStats) mean() float64 {
	if a.plays == 0 {
		return 0
	}
	return a.sum / float64(a.plays)
}

// SuccessiveElimination is the paper's arm-selection procedure: all arms
// start active; in each round the active arms are played round-robin, and
// an arm a is deactivated as soon as UCB_t(a) < LCB_t(a') for some active
// arm a'. The confidence radius is r_t(a) = scale * sqrt(2 log(t) / n_a).
type SuccessiveElimination struct {
	arms    []armStats
	active  []bool
	nActive int
	t       int
	next    int // round-robin cursor over active arms
	minObs  float64
	maxObs  float64
	seen    bool
}

var _ Policy = (*SuccessiveElimination)(nil)

// NewSuccessiveElimination creates the policy over k arms.
func NewSuccessiveElimination(k int) (*SuccessiveElimination, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrNoArms, k)
	}
	se := &SuccessiveElimination{
		arms:    make([]armStats, k),
		active:  make([]bool, k),
		nActive: k,
	}
	for i := range se.active {
		se.active[i] = true
	}
	return se, nil
}

// NumArms implements Policy.
func (se *SuccessiveElimination) NumArms() int { return len(se.arms) }

// Plays implements Policy.
func (se *SuccessiveElimination) Plays(arm int) int { return se.arms[arm].plays }

// Mean implements Policy.
func (se *SuccessiveElimination) Mean(arm int) float64 { return se.arms[arm].mean() }

// Active reports whether arm is still in play.
func (se *SuccessiveElimination) Active(arm int) bool { return se.active[arm] }

// NumActive returns the number of arms not yet eliminated.
func (se *SuccessiveElimination) NumActive() int { return se.nActive }

// Select returns the next active arm in round-robin order, guaranteeing
// that active arms are explored evenly ("try all active arms in possibly
// multiple rounds", Algorithm 3 step 5).
func (se *SuccessiveElimination) Select() int {
	for i := 0; i < len(se.arms); i++ {
		arm := (se.next + i) % len(se.arms)
		if se.active[arm] {
			se.next = (arm + 1) % len(se.arms)
			return arm
		}
	}
	return 0 // unreachable: at least one arm stays active
}

// BestArm returns the active arm with the highest empirical mean
// (Algorithm 3 step 9 picks this arm's value as the threshold).
func (se *SuccessiveElimination) BestArm() int {
	best, bestMean := -1, math.Inf(-1)
	for i := range se.arms {
		if !se.active[i] {
			continue
		}
		if m := se.arms[i].mean(); m > bestMean {
			best, bestMean = i, m
		}
	}
	return best
}

// Bounds returns arm's lower and upper confidence bounds, mean ± r_t(a).
// An unplayed arm reports (-Inf, +Inf). Invariant (checked by the oracle):
// lcb ≤ mean ≤ ucb always.
func (se *SuccessiveElimination) Bounds(arm int) (lcb, ucb float64) {
	r := se.radius(arm)
	m := se.arms[arm].mean()
	return m - r, m + r
}

// Update implements Policy and performs the elimination sweep.
func (se *SuccessiveElimination) Update(arm int, reward float64) {
	se.t++
	a := &se.arms[arm]
	a.plays++
	a.sum += reward
	if !se.seen {
		se.minObs, se.maxObs, se.seen = reward, reward, true
	} else {
		se.minObs = math.Min(se.minObs, reward)
		se.maxObs = math.Max(se.maxObs, reward)
	}
	se.eliminate()
}

// radius is the confidence radius r_t(a), scaled to the observed reward
// range so the policy is scale-free.
func (se *SuccessiveElimination) radius(arm int) float64 {
	n := se.arms[arm].plays
	if n == 0 {
		return math.Inf(1)
	}
	scale := se.maxObs - se.minObs
	if scale <= 0 {
		scale = 1
	}
	return scale * math.Sqrt(2*math.Log(float64(se.t)+1)/float64(n))
}

// eliminate deactivates every arm whose UCB falls below some active arm's
// LCB. It never deactivates the final remaining arm.
func (se *SuccessiveElimination) eliminate() {
	if se.nActive <= 1 {
		return
	}
	// Highest LCB among active arms.
	bestLCB := math.Inf(-1)
	for i := range se.arms {
		if !se.active[i] || se.arms[i].plays == 0 {
			continue
		}
		if lcb := se.arms[i].mean() - se.radius(i); lcb > bestLCB {
			bestLCB = lcb
		}
	}
	for i := range se.arms {
		if !se.active[i] || se.nActive <= 1 {
			continue
		}
		if se.arms[i].plays == 0 {
			continue
		}
		ucb := se.arms[i].mean() + se.radius(i)
		if ucb < bestLCB {
			se.active[i] = false
			se.nActive--
		}
	}
}

// Reset implements Resettable: reactivate every arm and wipe all
// statistics, as if freshly constructed.
func (se *SuccessiveElimination) Reset() {
	for i := range se.arms {
		se.arms[i] = armStats{}
		se.active[i] = true
	}
	se.nActive = len(se.arms)
	se.t, se.next = 0, 0
	se.minObs, se.maxObs, se.seen = 0, 0, false
}

// UCB1 is the classic optimism-in-face-of-uncertainty policy, provided as
// an ablation baseline for the arm-selection step of DynamicRR.
type UCB1 struct {
	arms   []armStats
	t      int
	minObs float64
	maxObs float64
	seen   bool
}

var _ Policy = (*UCB1)(nil)

// NewUCB1 creates a UCB1 policy over k arms.
func NewUCB1(k int) (*UCB1, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrNoArms, k)
	}
	return &UCB1{arms: make([]armStats, k)}, nil
}

// NumArms implements Policy.
func (u *UCB1) NumArms() int { return len(u.arms) }

// Plays implements Policy.
func (u *UCB1) Plays(arm int) int { return u.arms[arm].plays }

// Mean implements Policy.
func (u *UCB1) Mean(arm int) float64 { return u.arms[arm].mean() }

// Select implements Policy.
func (u *UCB1) Select() int {
	// Play each arm once first.
	for i := range u.arms {
		if u.arms[i].plays == 0 {
			return i
		}
	}
	scale := u.maxObs - u.minObs
	if scale <= 0 {
		scale = 1
	}
	best, bestV := 0, math.Inf(-1)
	for i := range u.arms {
		v := u.arms[i].mean() + scale*math.Sqrt(2*math.Log(float64(u.t)+1)/float64(u.arms[i].plays))
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Update implements Policy.
func (u *UCB1) Update(arm int, reward float64) {
	u.t++
	u.arms[arm].plays++
	u.arms[arm].sum += reward
	if !u.seen {
		u.minObs, u.maxObs, u.seen = reward, reward, true
	} else {
		u.minObs = math.Min(u.minObs, reward)
		u.maxObs = math.Max(u.maxObs, reward)
	}
}

// Reset implements Resettable.
func (u *UCB1) Reset() {
	for i := range u.arms {
		u.arms[i] = armStats{}
	}
	u.t = 0
	u.minObs, u.maxObs, u.seen = 0, 0, false
}

// EpsilonGreedy explores uniformly with probability eps and exploits the
// empirical best arm otherwise. Ablation baseline.
type EpsilonGreedy struct {
	arms []armStats
	eps  float64
	rng  *rand.Rand
}

var _ Policy = (*EpsilonGreedy)(nil)

// NewEpsilonGreedy creates the policy; eps must be in [0, 1].
func NewEpsilonGreedy(k int, eps float64, rng *rand.Rand) (*EpsilonGreedy, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrNoArms, k)
	}
	if eps < 0 || eps > 1 || math.IsNaN(eps) {
		return nil, fmt.Errorf("bandit: eps %v out of [0, 1]", eps)
	}
	return &EpsilonGreedy{arms: make([]armStats, k), eps: eps, rng: rng}, nil
}

// NumArms implements Policy.
func (e *EpsilonGreedy) NumArms() int { return len(e.arms) }

// Plays implements Policy.
func (e *EpsilonGreedy) Plays(arm int) int { return e.arms[arm].plays }

// Mean implements Policy.
func (e *EpsilonGreedy) Mean(arm int) float64 { return e.arms[arm].mean() }

// Select implements Policy.
func (e *EpsilonGreedy) Select() int {
	for i := range e.arms {
		if e.arms[i].plays == 0 {
			return i
		}
	}
	if e.rng.Float64() < e.eps {
		return e.rng.Intn(len(e.arms))
	}
	best, bestV := 0, math.Inf(-1)
	for i := range e.arms {
		if m := e.arms[i].mean(); m > bestV {
			best, bestV = i, m
		}
	}
	return best
}

// Update implements Policy.
func (e *EpsilonGreedy) Update(arm int, reward float64) {
	e.arms[arm].plays++
	e.arms[arm].sum += reward
}

// Fixed always plays one arm; it is the "no learning" ablation.
type Fixed struct {
	k   int
	arm int
}

var _ Policy = (*Fixed)(nil)

// NewFixed creates a policy over k arms that always plays arm.
func NewFixed(k, arm int) (*Fixed, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrNoArms, k)
	}
	if arm < 0 || arm >= k {
		return nil, fmt.Errorf("bandit: arm %d out of [0, %d)", arm, k)
	}
	return &Fixed{k: k, arm: arm}, nil
}

// NumArms implements Policy.
func (f *Fixed) NumArms() int { return f.k }

// Select implements Policy.
func (f *Fixed) Select() int { return f.arm }

// Update implements Policy.
func (f *Fixed) Update(int, float64) {}

// Mean implements Policy.
func (f *Fixed) Mean(int) float64 { return 0 }

// Plays implements Policy.
func (f *Fixed) Plays(int) int { return 0 }
