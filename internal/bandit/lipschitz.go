package bandit

import (
	"fmt"
	"math"
)

// Lipschitz adapts a finite-arm Policy to a continuous action interval
// [Min, Max] by fixed discretization into kappa arms with spacing
// epsilon = (Max - Min) / (kappa - 1), exactly as DynamicRR discretizes
// the threshold range Z = [C^th_min, C^th_max] (Algorithm 3 step 1).
//
// Under the Lipschitz condition |ER(a) - ER(b)| <= eta*|a - b| (Eq. 21),
// the discretization error is at most eta*epsilon, giving Theorem 3's
// regret bound O(sqrt(kappa*T*log T) + T*eta*epsilon) when the inner
// policy is successive elimination.
type Lipschitz struct {
	policy   Policy
	min, max float64
	kappa    int
}

// NewLipschitz wraps policy (which must have kappa arms) over [min, max].
func NewLipschitz(policy Policy, min, max float64) (*Lipschitz, error) {
	if policy.NumArms() < 1 {
		return nil, ErrNoArms
	}
	if math.IsNaN(min) || math.IsNaN(max) || max < min {
		return nil, fmt.Errorf("bandit: invalid interval [%v, %v]", min, max)
	}
	return &Lipschitz{policy: policy, min: min, max: max, kappa: policy.NumArms()}, nil
}

// Kappa returns the number of discretized arms.
func (l *Lipschitz) Kappa() int { return l.kappa }

// Epsilon returns the arm spacing (C^th_max - C^th_min)/(kappa - 1); zero
// for a single arm.
func (l *Lipschitz) Epsilon() float64 {
	if l.kappa <= 1 {
		return 0
	}
	return (l.max - l.min) / float64(l.kappa-1)
}

// Value maps an arm index to its continuous action value.
func (l *Lipschitz) Value(arm int) float64 {
	if l.kappa == 1 {
		return l.min
	}
	return l.min + float64(arm)*l.Epsilon()
}

// SelectValue chooses an arm via the inner policy and returns both its
// index and continuous value.
func (l *Lipschitz) SelectValue() (arm int, value float64) {
	arm = l.policy.Select()
	return arm, l.Value(arm)
}

// Update forwards the observed reward of arm to the inner policy.
func (l *Lipschitz) Update(arm int, reward float64) { l.policy.Update(arm, reward) }

// Policy exposes the wrapped finite-arm policy.
func (l *Lipschitz) Policy() Policy { return l.policy }

// RegretBound evaluates Theorem 3's bound sqrt(kappa*T*log T) + T*eta*eps
// for a horizon T and Lipschitz constant eta; useful for validating the
// measured regret in the experiments.
func (l *Lipschitz) RegretBound(T int, eta float64) float64 {
	if T <= 0 {
		return 0
	}
	t := float64(T)
	return math.Sqrt(float64(l.kappa)*t*math.Log(t+1)) + t*eta*l.Epsilon()
}
