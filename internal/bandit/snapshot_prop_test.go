package bandit

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// snapshotCases enumerates every snapshottable policy configuration. Each
// builder returns a fresh policy; the property below drives it, snapshots
// mid-run through JSON (the daemon checkpoint path), and requires the
// restored copy's continuation to be decision-identical to the
// uninterrupted original.
func snapshotCases(t *testing.T, k int, seed int64) map[string]func() Policy {
	t.Helper()
	must := func(p Policy, err error) Policy {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	return map[string]func() Policy{
		"se":    func() Policy { return must(NewSuccessiveElimination(k)) },
		"ucb1":  func() Policy { return must(NewUCB1(k)) },
		"fixed": func() Policy { return must(NewFixed(k, 1)) },
		"sw-ucb": func() Policy {
			return must(NewSlidingWindowUCB(k, 32))
		},
		"d-ucb": func() Policy {
			return must(NewDiscountedUCB(k, 0.95))
		},
		"exp3s": func() Policy {
			return must(NewExp3Seeded(k, 0.1, 0.01, seed))
		},
		"restart:se": func() Policy {
			se, err := NewSuccessiveElimination(k)
			if err != nil {
				t.Fatal(err)
			}
			return must(NewRestart(se, nil))
		},
		"restart:sw-ucb": func() Policy {
			sw, err := NewSlidingWindowUCB(k, 16)
			if err != nil {
				t.Fatal(err)
			}
			// A twitchy detector so restarts actually fire inside the test
			// horizon and their state is exercised by the round-trip.
			ph, err := NewPageHinkley(0.001, 0.3, 5)
			if err != nil {
				t.Fatal(err)
			}
			return must(NewRestart(sw, ph))
		},
		"restart:exp3s": func() Policy {
			e, err := NewExp3Seeded(k, 0.2, 0, seed+1)
			if err != nil {
				t.Fatal(err)
			}
			return must(NewRestart(e, nil))
		},
	}
}

// propReward is a deterministic drifting reward: distinct per arm, with a
// mean shift mid-stream so windowed/discount/restart state is non-trivial
// when the snapshot is taken.
func propReward(arm, step, k int) float64 {
	base := float64(arm + 1)
	if step >= 60 {
		base = float64(k - arm)
	}
	return base + 0.01*math.Sin(float64(step))
}

// TestSnapshotRoundTripProperty: for every snapshottable policy, over
// several cut points, save -> JSON -> load -> continue must match the
// uninterrupted run decision-for-decision.
func TestSnapshotRoundTripProperty(t *testing.T) {
	const k = 5
	for name, build := range snapshotCases(t, k, 42) {
		for _, cut := range []int{0, 1, 17, 80, 140} {
			t.Run(fmt.Sprintf("%s/cut=%d", name, cut), func(t *testing.T) {
				p := build()
				for i := 0; i < cut; i++ {
					arm := p.Select()
					p.Update(arm, propReward(arm, i, k))
				}
				sn, ok := p.(Snapshotter)
				if !ok {
					t.Fatalf("%T does not implement Snapshotter", p)
				}
				snap := sn.Snapshot()
				if snap == nil {
					t.Fatalf("%T returned a nil snapshot", p)
				}
				raw, err := json.Marshal(snap)
				if err != nil {
					t.Fatal(err)
				}
				var back PolicySnapshot
				if err := json.Unmarshal(raw, &back); err != nil {
					t.Fatal(err)
				}
				q, err := RestorePolicy(&back)
				if err != nil {
					t.Fatal(err)
				}
				for i := cut; i < cut+120; i++ {
					a, b := p.Select(), q.Select()
					if a != b {
						t.Fatalf("step %d: original played %d, restored played %d", i, a, b)
					}
					r := propReward(a, i, k)
					p.Update(a, r)
					q.Update(b, r)
					if p.Plays(a) != q.Plays(a) || p.Mean(a) != q.Mean(a) {
						t.Fatalf("step %d arm %d: stats diverged (%d, %v) vs (%d, %v)",
							i, a, p.Plays(a), p.Mean(a), q.Plays(a), q.Mean(a))
					}
				}
			})
		}
	}
}

// TestSnapshotRestoreRejectsCorrupt: table of malformed snapshots every
// restore path must reject rather than mis-restore.
func TestSnapshotRestoreRejectsCorrupt(t *testing.T) {
	arms := []ArmSnapshot{{Plays: 1, Sum: 2}, {Plays: 1, Sum: 3}}
	cases := map[string]*PolicySnapshot{
		"sw-ucb window overflows cap": {
			Kind: KindSlidingWindowUCB, WindowCap: 1, Arms: arms,
			Window: []WindowEntry{{Arm: 0, Reward: 1}, {Arm: 1, Reward: 2}},
		},
		"sw-ucb window arm out of range": {
			Kind: KindSlidingWindowUCB, WindowCap: 8, Arms: arms,
			Window: []WindowEntry{{Arm: 7, Reward: 1}},
		},
		"sw-ucb negative window arm": {
			Kind: KindSlidingWindowUCB, WindowCap: 8, Arms: arms,
			Window: []WindowEntry{{Arm: -1, Reward: 1}},
		},
		"d-ucb gamma out of range": {
			Kind: KindDiscountedUCB, Gamma: 1.5, Arms: arms,
		},
		"exp3s weight count mismatch": {
			Kind: KindExp3S, Gamma: 0.1, Weights: []float64{1}, Arms: arms,
		},
		"exp3s bad gamma": {
			Kind: KindExp3S, Gamma: -2, Weights: []float64{1, 1}, Arms: arms,
		},
		"restart missing inner": {
			Kind: KindRestart, Detectors: []DetectorSnapshot{{Delta: 0.01, Lambda: 1, Warmup: 5}},
		},
		"restart missing detectors": {
			Kind: KindRestart, Inner: &PolicySnapshot{Kind: KindUCB1, Arms: arms},
		},
		"restart detector count mismatch": {
			Kind:      KindRestart,
			Inner:     &PolicySnapshot{Kind: KindUCB1, Arms: arms},
			Detectors: []DetectorSnapshot{{Delta: 0.01, Lambda: 1, Warmup: 5}},
		},
		"restart unresettable inner": {
			Kind:  KindRestart,
			Inner: &PolicySnapshot{Kind: KindFixed, Arms: arms},
			Detectors: []DetectorSnapshot{
				{Delta: 0.01, Lambda: 1, Warmup: 5}, {Delta: 0.01, Lambda: 1, Warmup: 5},
			},
		},
		"restart bad detector": {
			Kind:  KindRestart,
			Inner: &PolicySnapshot{Kind: KindUCB1, Arms: arms},
			Detectors: []DetectorSnapshot{
				{Delta: -1, Lambda: -1, Warmup: 0}, {Delta: -1, Lambda: -1, Warmup: 0},
			},
		},
	}
	for name, snap := range cases {
		if _, err := RestorePolicy(snap); err == nil {
			t.Errorf("%s: restore accepted a corrupt snapshot", name)
		}
	}
}

// TestExternalRngExp3NotSnapshottable: Exp3 on a caller-supplied rng
// cannot persist its stream position; the snapshot path must refuse, not
// silently produce a diverging copy.
func TestExternalRngExp3NotSnapshottable(t *testing.T) {
	e, err := NewExp3(3, 0.1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if snap := e.Snapshot(); snap != nil {
		t.Fatal("externally-seeded Exp3 produced a snapshot")
	}
	lip, err := NewLipschitz(e, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lip.Snapshot(); err == nil {
		t.Fatal("Lipschitz over externally-seeded Exp3 must not snapshot")
	}
}
