// Drift-aware bandit policies for non-stationary reward processes. The
// paper's model draws per-slot rewards i.i.d., but real AR traffic drifts
// (diurnal load, flash crowds, mobility, outages — see Rahman et al.,
// arXiv:2006.12032), and a stationary learner that has committed to an arm
// keeps playing it long after the optimum moved. Three standard remedies,
// all implementing the Policy + snapshot interfaces so they drop into
// DynamicRR, arserved checkpoints, and the cluster unchanged:
//
//   - SlidingWindowUCB (Garivier & Moulines): UCB over the last W plays
//     only, forgetting everything older;
//   - DiscountedUCB: exponentially discounted counts and sums, a smooth
//     version of the same forgetting;
//   - Restart: any resettable inner policy supervised by a Page–Hinkley
//     change-point detector on the reward stream; a detected mean shift
//     wipes the inner policy's state and restarts learning.
package bandit

import (
	"fmt"
	"math"
)

// Defaults for the drift-aware policies. Window and discount are paired:
// an effective horizon of W plays corresponds to gamma ~ 1 - 1/W.
const (
	// DefaultWindow is SlidingWindowUCB's history length in plays.
	DefaultWindow = 128
	// DefaultDiscount is DiscountedUCB's per-play discount factor.
	DefaultDiscount = 0.99
	// DefaultPHDelta is the Page–Hinkley per-step drift allowance in
	// normalized [0, 1] reward units.
	DefaultPHDelta = 0.005
	// DefaultPHLambda is the Page–Hinkley alarm threshold in cumulative
	// normalized units.
	DefaultPHLambda = 2.0
	// DefaultPHWarmup is the minimum number of observations after a
	// (re)start before the detector may alarm again.
	DefaultPHWarmup = 20
)

// Resettable is a Policy whose learning state can be wiped in place,
// returning it to the freshly-constructed state (modulo any internal
// random stream, which keeps advancing so restarted runs stay
// reproducible). The Restart wrapper requires it.
type Resettable interface {
	Policy
	Reset()
}

// ---------------------------------------------------------------------------
// SlidingWindowUCB

// winEntry is one remembered play.
type winEntry struct {
	arm    int
	reward float64
}

// SlidingWindowUCB is UCB1 computed over only the last Window plays: the
// per-arm counts and sums that enter the index are those of the plays
// still inside the window, so evidence older than W plays stops binding
// and the policy re-explores arms whose windowed count has drained.
type SlidingWindowUCB struct {
	window int
	// win is a ring of the last plays; head indexes the oldest entry.
	win  []winEntry
	head int
	size int
	// wPlays and wSums are the per-arm statistics over the window.
	wPlays []int
	wSums  []float64
	// arms tracks lifetime statistics for Mean/Plays reporting.
	arms []armStats
	t    int
	// Observed reward range for scale-free confidence radii.
	minObs, maxObs float64
	seen           bool
}

var _ Resettable = (*SlidingWindowUCB)(nil)

// NewSlidingWindowUCB creates the policy over k arms with the given
// window length in plays (zero selects DefaultWindow).
func NewSlidingWindowUCB(k, window int) (*SlidingWindowUCB, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrNoArms, k)
	}
	if window == 0 {
		window = DefaultWindow
	}
	if window < 1 {
		return nil, fmt.Errorf("bandit: window %d must be at least 1", window)
	}
	return &SlidingWindowUCB{
		window: window,
		win:    make([]winEntry, 0, window),
		wPlays: make([]int, k),
		wSums:  make([]float64, k),
		arms:   make([]armStats, k),
	}, nil
}

// NumArms implements Policy.
func (s *SlidingWindowUCB) NumArms() int { return len(s.arms) }

// Plays implements Policy (lifetime plays, not windowed).
func (s *SlidingWindowUCB) Plays(arm int) int { return s.arms[arm].plays }

// Mean implements Policy (lifetime mean; WindowMean gives the drift view).
func (s *SlidingWindowUCB) Mean(arm int) float64 { return s.arms[arm].mean() }

// Window returns the configured window length.
func (s *SlidingWindowUCB) Window() int { return s.window }

// WindowPlays returns how many of the last Window plays hit arm.
func (s *SlidingWindowUCB) WindowPlays(arm int) int { return s.wPlays[arm] }

// WindowMean returns arm's empirical mean over the window (0 if absent).
func (s *SlidingWindowUCB) WindowMean(arm int) float64 {
	if s.wPlays[arm] == 0 {
		return 0
	}
	return s.wSums[arm] / float64(s.wPlays[arm])
}

// Bounds returns arm's windowed lower and upper confidence bounds,
// mean ± radius; an arm absent from the window reports (-Inf, +Inf).
func (s *SlidingWindowUCB) Bounds(arm int) (lcb, ucb float64) {
	r := s.radius(arm)
	m := s.WindowMean(arm)
	return m - r, m + r
}

func (s *SlidingWindowUCB) radius(arm int) float64 {
	n := s.wPlays[arm]
	if n == 0 {
		return math.Inf(1)
	}
	scale := s.maxObs - s.minObs
	if scale <= 0 {
		scale = 1
	}
	inWin := s.size
	return scale * math.Sqrt(2*math.Log(float64(inWin)+1)/float64(n))
}

// Select implements Policy: the arm maximizing windowed mean + radius,
// lowest index first among arms absent from the window.
func (s *SlidingWindowUCB) Select() int {
	best, bestV := 0, math.Inf(-1)
	for i := range s.arms {
		v := s.WindowMean(i) + s.radius(i)
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Update implements Policy: push the play into the window, evicting the
// oldest once the window is full.
func (s *SlidingWindowUCB) Update(arm int, reward float64) {
	s.t++
	s.arms[arm].plays++
	s.arms[arm].sum += reward
	if !s.seen {
		s.minObs, s.maxObs, s.seen = reward, reward, true
	} else {
		s.minObs = math.Min(s.minObs, reward)
		s.maxObs = math.Max(s.maxObs, reward)
	}
	if s.size == s.window {
		old := s.win[s.head]
		s.wPlays[old.arm]--
		s.wSums[old.arm] -= old.reward
		s.win[s.head] = winEntry{arm: arm, reward: reward}
		s.head = (s.head + 1) % s.window
	} else {
		s.win = append(s.win, winEntry{arm: arm, reward: reward})
		s.size++
	}
	s.wPlays[arm]++
	s.wSums[arm] += reward
}

// Reset implements Resettable.
func (s *SlidingWindowUCB) Reset() {
	s.win = s.win[:0]
	s.head, s.size, s.t = 0, 0, 0
	for i := range s.arms {
		s.arms[i] = armStats{}
		s.wPlays[i] = 0
		s.wSums[i] = 0
	}
	s.minObs, s.maxObs, s.seen = 0, 0, false
}

// ---------------------------------------------------------------------------
// DiscountedUCB

// dArm is one arm's discounted statistics.
type dArm struct {
	// dPlays and dSum are the gamma-discounted count and reward sum.
	dPlays float64
	dSum   float64
}

// DiscountedUCB keeps exponentially discounted counts and reward sums:
// every update multiplies all arms' statistics by gamma before crediting
// the played arm, so evidence fades with a half-life of about
// ln 2 / (1 - gamma) plays — the smooth counterpart of the sliding
// window.
type DiscountedUCB struct {
	gamma float64
	d     []dArm
	nTot  float64 // discounted total count, sum over arms
	arms  []armStats
	t     int
	// Observed reward range for scale-free confidence radii.
	minObs, maxObs float64
	seen           bool
}

var _ Resettable = (*DiscountedUCB)(nil)

// NewDiscountedUCB creates the policy over k arms with discount factor
// gamma in (0, 1); zero selects DefaultDiscount.
func NewDiscountedUCB(k int, gamma float64) (*DiscountedUCB, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrNoArms, k)
	}
	if gamma == 0 {
		gamma = DefaultDiscount
	}
	if gamma <= 0 || gamma >= 1 || math.IsNaN(gamma) {
		return nil, fmt.Errorf("bandit: discount %v out of (0, 1)", gamma)
	}
	return &DiscountedUCB{gamma: gamma, d: make([]dArm, k), arms: make([]armStats, k)}, nil
}

// NumArms implements Policy.
func (u *DiscountedUCB) NumArms() int { return len(u.arms) }

// Plays implements Policy (lifetime plays).
func (u *DiscountedUCB) Plays(arm int) int { return u.arms[arm].plays }

// Mean implements Policy (lifetime mean; DiscountedMean gives the drift
// view).
func (u *DiscountedUCB) Mean(arm int) float64 { return u.arms[arm].mean() }

// Gamma returns the discount factor.
func (u *DiscountedUCB) Gamma() float64 { return u.gamma }

// DiscountedMean returns arm's discounted empirical mean (0 when its
// discounted count has fully drained).
func (u *DiscountedUCB) DiscountedMean(arm int) float64 {
	if u.d[arm].dPlays <= ducbTiny {
		return 0
	}
	return u.d[arm].dSum / u.d[arm].dPlays
}

// ducbTiny is the discounted count below which an arm counts as unplayed:
// its radius becomes infinite and the policy must re-explore it.
const ducbTiny = 1e-9

// Bounds returns arm's discounted confidence bounds, mean ± radius.
func (u *DiscountedUCB) Bounds(arm int) (lcb, ucb float64) {
	r := u.radius(arm)
	m := u.DiscountedMean(arm)
	return m - r, m + r
}

func (u *DiscountedUCB) radius(arm int) float64 {
	n := u.d[arm].dPlays
	if n <= ducbTiny {
		return math.Inf(1)
	}
	scale := u.maxObs - u.minObs
	if scale <= 0 {
		scale = 1
	}
	return scale * math.Sqrt(2*math.Log(u.nTot+1)/n)
}

// Select implements Policy: the arm maximizing discounted mean + radius,
// lowest index first among drained arms.
func (u *DiscountedUCB) Select() int {
	best, bestV := 0, math.Inf(-1)
	for i := range u.arms {
		v := u.DiscountedMean(i) + u.radius(i)
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Update implements Policy: discount every arm, then credit the play.
func (u *DiscountedUCB) Update(arm int, reward float64) {
	u.t++
	u.arms[arm].plays++
	u.arms[arm].sum += reward
	if !u.seen {
		u.minObs, u.maxObs, u.seen = reward, reward, true
	} else {
		u.minObs = math.Min(u.minObs, reward)
		u.maxObs = math.Max(u.maxObs, reward)
	}
	for i := range u.d {
		u.d[i].dPlays *= u.gamma
		u.d[i].dSum *= u.gamma
	}
	u.nTot = u.nTot*u.gamma + 1
	u.d[arm].dPlays++
	u.d[arm].dSum += reward
}

// Reset implements Resettable.
func (u *DiscountedUCB) Reset() {
	for i := range u.arms {
		u.arms[i] = armStats{}
		u.d[i] = dArm{}
	}
	u.nTot, u.t = 0, 0
	u.minObs, u.maxObs, u.seen = 0, 0, false
}

// ---------------------------------------------------------------------------
// Page–Hinkley change-point detector

// PageHinkley is a two-sided Page–Hinkley test over a stream of
// observations: it accumulates the deviation of each observation from the
// running mean (minus a per-step allowance Delta) in both directions and
// alarms when either cumulative deviation exceeds its historical minimum
// by more than Lambda — the classic sequential test for a mean shift.
// Observations are expected in normalized [0, 1] units; the Restart
// wrapper normalizes by its running observed range before feeding it.
type PageHinkley struct {
	// Delta is the per-step drift allowance; shifts smaller than Delta per
	// step never alarm.
	Delta float64
	// Lambda is the alarm threshold on the cumulative statistic.
	Lambda float64
	// Warmup is the minimum number of observations before an alarm.
	Warmup int

	n    int
	mean float64
	// mUp/minUp detect an upward mean shift; mDn/minDn a downward one.
	mUp, minUp float64
	mDn, minDn float64
}

// NewPageHinkley builds a detector; zero parameters select the defaults.
func NewPageHinkley(delta, lambda float64, warmup int) (*PageHinkley, error) {
	if delta == 0 {
		delta = DefaultPHDelta
	}
	if lambda == 0 {
		lambda = DefaultPHLambda
	}
	if warmup == 0 {
		warmup = DefaultPHWarmup
	}
	if delta < 0 || math.IsNaN(delta) || lambda <= 0 || math.IsNaN(lambda) || warmup < 1 {
		return nil, fmt.Errorf("bandit: page-hinkley delta=%v lambda=%v warmup=%d invalid", delta, lambda, warmup)
	}
	return &PageHinkley{Delta: delta, Lambda: lambda, Warmup: warmup}, nil
}

// Observe feeds one observation and reports whether a change point was
// detected. The caller decides what to do on detection (and typically
// calls Reset).
func (p *PageHinkley) Observe(x float64) bool {
	p.n++
	// Running mean BEFORE this observation enters it, per the classic
	// formulation x_t - x̄_{t-1}; for the first observation the deviation
	// is zero either way.
	prevMean := p.mean
	p.mean += (x - p.mean) / float64(p.n)
	dev := x - prevMean
	p.mUp += dev - p.Delta
	if p.mUp < p.minUp {
		p.minUp = p.mUp
	}
	p.mDn += -dev - p.Delta
	if p.mDn < p.minDn {
		p.minDn = p.mDn
	}
	if p.n < p.Warmup {
		return false
	}
	return p.mUp-p.minUp > p.Lambda || p.mDn-p.minDn > p.Lambda
}

// Reset clears the detector for a fresh segment.
func (p *PageHinkley) Reset() {
	p.n, p.mean = 0, 0
	p.mUp, p.minUp, p.mDn, p.minDn = 0, 0, 0, 0
}

// ---------------------------------------------------------------------------
// Restart wrapper

// Restart supervises any Resettable policy with per-arm Page–Hinkley
// detectors over the observed rewards: when an arm's own reward stream
// shifts, the inner policy's learning state is wiped in place and
// learning restarts from scratch — restart-on-change over the paper's
// successive elimination, which otherwise can never recover an
// eliminated arm.
//
// The detectors are per arm, not over the pooled stream, because the
// pooled stream's distribution also shifts whenever the POLICY changes
// arms (e.g. the moment successive elimination commits to its winner);
// monitoring each arm's conditionally-stationary stream separately — as
// in monitored-UCB-style algorithms — alarms only on genuine
// environment drift.
type Restart struct {
	inner Resettable
	phs   []*PageHinkley // one detector per arm
	// Observed reward range for normalizing detector input; survives
	// restarts so the scale estimate keeps improving.
	minObs, maxObs float64
	seen           bool
	restarts       int
}

var _ Policy = (*Restart)(nil)

// NewRestart wraps inner with one detector per arm; proto supplies the
// shared Delta/Lambda/Warmup configuration (nil selects defaults).
func NewRestart(inner Resettable, proto *PageHinkley) (*Restart, error) {
	if inner == nil {
		return nil, fmt.Errorf("bandit: restart needs an inner policy")
	}
	delta, lambda, warmup := 0.0, 0.0, 0
	if proto != nil {
		delta, lambda, warmup = proto.Delta, proto.Lambda, proto.Warmup
	}
	phs := make([]*PageHinkley, inner.NumArms())
	for i := range phs {
		ph, err := NewPageHinkley(delta, lambda, warmup)
		if err != nil {
			return nil, err
		}
		phs[i] = ph
	}
	return &Restart{inner: inner, phs: phs}, nil
}

// NumArms implements Policy.
func (r *Restart) NumArms() int { return r.inner.NumArms() }

// Plays implements Policy (plays since the last restart).
func (r *Restart) Plays(arm int) int { return r.inner.Plays(arm) }

// Mean implements Policy (mean since the last restart).
func (r *Restart) Mean(arm int) float64 { return r.inner.Mean(arm) }

// Select implements Policy.
func (r *Restart) Select() int { return r.inner.Select() }

// Inner exposes the supervised policy.
func (r *Restart) Inner() Policy { return r.inner }

// Detector exposes arm's change-point detector.
func (r *Restart) Detector(arm int) *PageHinkley { return r.phs[arm] }

// Restarts returns how many change points have fired.
func (r *Restart) Restarts() int { return r.restarts }

// Update implements Policy: forward the reward, then feed the played
// arm's detector the normalized observation and restart the inner policy
// on a change.
func (r *Restart) Update(arm int, reward float64) {
	r.inner.Update(arm, reward)
	if !r.seen {
		r.minObs, r.maxObs, r.seen = reward, reward, true
	} else {
		r.minObs = math.Min(r.minObs, reward)
		r.maxObs = math.Max(r.maxObs, reward)
	}
	span := r.maxObs - r.minObs
	norm := 0.5
	if span > 0 {
		norm = (reward - r.minObs) / span
	}
	if r.phs[arm].Observe(norm) {
		r.inner.Reset()
		for _, ph := range r.phs {
			ph.Reset()
		}
		r.restarts++
	}
}

// Reset implements Resettable: wipe the inner policy, the detectors, and
// the restart counter (the observed range survives, as across restarts).
func (r *Restart) Reset() {
	r.inner.Reset()
	for _, ph := range r.phs {
		ph.Reset()
	}
	r.restarts = 0
}
