package bandit

import (
	"fmt"
	"math"
)

// Zooming implements the zooming algorithm for Lipschitz bandits on an
// interval (Slivkins, "Introduction to Multi-Armed Bandits", ch. 4 — the
// reference the paper's Theorem 3 builds on). Instead of the fixed
// epsilon-grid of Algorithm 3 step 1, it activates arms adaptively: a new
// arm is activated at any point of the interval not covered by the
// confidence ball of an active arm, so the discretization refines itself
// around the optimum. This removes the T*eta*epsilon discretization term
// of Theorem 3 at the cost of an instance-dependent constant, and serves
// as the "adaptive vs fixed discretization" ablation (A5 in DESIGN.md).
type Zooming struct {
	min, max float64
	// probe is the resolution at which coverage is checked; arms can sit
	// anywhere on the probe grid, which is much finer than kappa grids.
	probe int
	arms  []zoomArm
	t     int
	// Observed reward range for scale-free confidence radii.
	minObs, maxObs float64
	seen           bool
}

type zoomArm struct {
	x     float64
	plays int
	sum   float64
}

// NewZooming creates a zooming bandit on [min, max]. probe is the coverage
// grid resolution (zero selects 256 points).
func NewZooming(min, max float64, probe int) (*Zooming, error) {
	if math.IsNaN(min) || math.IsNaN(max) || max < min {
		return nil, fmt.Errorf("bandit: invalid interval [%v, %v]", min, max)
	}
	if probe == 0 {
		probe = 256
	}
	if probe < 2 {
		return nil, fmt.Errorf("bandit: probe grid %d too small", probe)
	}
	z := &Zooming{min: min, max: max, probe: probe}
	// Start with a single arm at the midpoint; the coverage rule will
	// activate more as its confidence ball shrinks.
	z.arms = append(z.arms, zoomArm{x: (min + max) / 2})
	return z, nil
}

// NumArms returns the number of currently active arms.
func (z *Zooming) NumArms() int { return len(z.arms) }

// ArmValue returns the position of arm i on the interval.
func (z *Zooming) ArmValue(i int) float64 { return z.arms[i].x }

// scale returns the observed reward range (>= 1 to avoid degeneracy).
func (z *Zooming) scale() float64 {
	s := z.maxObs - z.minObs
	if s <= 0 {
		return 1
	}
	return s
}

// radius is the confidence radius of arm i, in reward units.
func (z *Zooming) radius(i int) float64 {
	n := z.arms[i].plays
	if n == 0 {
		return math.Inf(1)
	}
	return z.scale() * math.Sqrt(2*math.Log(float64(z.t)+2)/float64(n))
}

// coverRadius converts arm i's confidence radius from reward units into
// interval units via the (unknown) Lipschitz constant, approximated by the
// reward scale over the interval length — the standard scale-free proxy.
func (z *Zooming) coverRadius(i int) float64 {
	if z.max == z.min {
		return math.Inf(1)
	}
	eta := z.scale() / (z.max - z.min)
	return z.radius(i) / eta
}

// activate adds an arm at any uncovered probe point (the zooming rule).
func (z *Zooming) activate() {
	if z.max == z.min {
		return
	}
	step := (z.max - z.min) / float64(z.probe-1)
	for p := 0; p < z.probe; p++ {
		x := z.min + float64(p)*step
		covered := false
		for i := range z.arms {
			if math.Abs(x-z.arms[i].x) <= z.coverRadius(i) {
				covered = true
				break
			}
		}
		if !covered {
			z.arms = append(z.arms, zoomArm{x: x})
			return // one activation per round keeps the arm set lean
		}
	}
}

// SelectValue picks the active arm with the highest optimism index
// mean + 2*radius and returns its index and position.
func (z *Zooming) SelectValue() (int, float64) {
	z.activate()
	best, bestIdx := -1, math.Inf(-1)
	for i := range z.arms {
		var idx float64
		if z.arms[i].plays == 0 {
			idx = math.Inf(1)
		} else {
			idx = z.arms[i].sum/float64(z.arms[i].plays) + 2*z.radius(i)
		}
		if idx > bestIdx {
			best, bestIdx = i, idx
		}
	}
	return best, z.arms[best].x
}

// Update records the reward observed after playing arm i.
func (z *Zooming) Update(i int, reward float64) {
	z.t++
	z.arms[i].plays++
	z.arms[i].sum += reward
	if !z.seen {
		z.minObs, z.maxObs, z.seen = reward, reward, true
	} else {
		z.minObs = math.Min(z.minObs, reward)
		z.maxObs = math.Max(z.maxObs, reward)
	}
}

// BestValue returns the position of the arm with the highest empirical
// mean (ties to the earliest-activated arm).
func (z *Zooming) BestValue() float64 {
	best, bestMean := 0, math.Inf(-1)
	for i := range z.arms {
		if z.arms[i].plays == 0 {
			continue
		}
		if m := z.arms[i].sum / float64(z.arms[i].plays); m > bestMean {
			best, bestMean = i, m
		}
	}
	return z.arms[best].x
}
