package bandit

import (
	"math"
	"math/rand"
	"testing"
)

// playRounds drives a policy against stationary Gaussian arms and returns
// how often the best arm was played in the final quarter of the run.
func playRounds(t *testing.T, pol Policy, means []float64, std float64, rounds int, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	best := 0
	for i, m := range means {
		if m > means[best] {
			best = i
		}
	}
	bestPlays, tail := 0, 0
	for r := 0; r < rounds; r++ {
		arm := pol.Select()
		reward := means[arm] + rng.NormFloat64()*std
		pol.Update(arm, reward)
		if r >= rounds*3/4 {
			tail++
			if arm == best {
				bestPlays++
			}
		}
	}
	return float64(bestPlays) / float64(tail)
}

func TestSuccessiveEliminationFindsBestArm(t *testing.T) {
	se, err := NewSuccessiveElimination(5)
	if err != nil {
		t.Fatal(err)
	}
	means := []float64{1, 2, 10, 3, 4}
	frac := playRounds(t, se, means, 0.5, 4000, 1)
	if frac < 0.9 {
		t.Fatalf("best arm played %.0f%% of tail rounds, want >= 90%%", frac*100)
	}
	if se.BestArm() != 2 {
		t.Fatalf("BestArm = %d, want 2", se.BestArm())
	}
	if se.NumActive() >= 5 {
		t.Fatalf("no arm eliminated after 4000 clearly-separated rounds (active=%d)", se.NumActive())
	}
}

func TestSuccessiveEliminationNeverKillsLastArm(t *testing.T) {
	se, err := NewSuccessiveElimination(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for r := 0; r < 10000; r++ {
		arm := se.Select()
		se.Update(arm, float64(arm)*100+rng.Float64())
	}
	if se.NumActive() < 1 {
		t.Fatal("all arms eliminated")
	}
	if !se.Active(se.BestArm()) {
		t.Fatal("best arm is not active")
	}
}

func TestSuccessiveEliminationRoundRobinOverActive(t *testing.T) {
	se, err := NewSuccessiveElimination(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		arm := se.Select()
		seen[arm] = true
		se.Update(arm, 1)
	}
	if len(seen) != 4 {
		t.Fatalf("first 4 selections hit %d distinct arms, want 4", len(seen))
	}
}

func TestUCB1FindsBestArm(t *testing.T) {
	u, err := NewUCB1(5)
	if err != nil {
		t.Fatal(err)
	}
	frac := playRounds(t, u, []float64{1, 2, 10, 3, 4}, 0.5, 4000, 3)
	if frac < 0.9 {
		t.Fatalf("UCB1 best-arm tail fraction %.2f, want >= 0.9", frac)
	}
}

func TestEpsilonGreedyFindsBestArm(t *testing.T) {
	e, err := NewEpsilonGreedy(5, 0.1, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	frac := playRounds(t, e, []float64{1, 2, 10, 3, 4}, 0.5, 4000, 5)
	if frac < 0.8 { // eps=0.1 explores forever; tail fraction ~0.92
		t.Fatalf("eps-greedy best-arm tail fraction %.2f, want >= 0.8", frac)
	}
}

func TestFixedPolicy(t *testing.T) {
	f, err := NewFixed(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if f.Select() != 2 {
			t.Fatal("Fixed must always play its arm")
		}
		f.Update(2, 1)
	}
	if f.NumArms() != 4 {
		t.Fatalf("NumArms = %d", f.NumArms())
	}
	if _, err := NewFixed(3, 5); err == nil {
		t.Error("want error for arm out of range")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewSuccessiveElimination(0); err == nil {
		t.Error("SE: want error for 0 arms")
	}
	if _, err := NewUCB1(-1); err == nil {
		t.Error("UCB1: want error for negative arms")
	}
	if _, err := NewEpsilonGreedy(3, 1.5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("eps-greedy: want error for eps > 1")
	}
	if _, err := NewEpsilonGreedy(3, math.NaN(), rand.New(rand.NewSource(1))); err == nil {
		t.Error("eps-greedy: want error for NaN eps")
	}
}

func TestMeansAndPlays(t *testing.T) {
	se, err := NewSuccessiveElimination(2)
	if err != nil {
		t.Fatal(err)
	}
	se.Update(0, 10)
	se.Update(0, 20)
	se.Update(1, 5)
	if se.Plays(0) != 2 || se.Plays(1) != 1 {
		t.Fatalf("plays = %d, %d", se.Plays(0), se.Plays(1))
	}
	if se.Mean(0) != 15 || se.Mean(1) != 5 {
		t.Fatalf("means = %v, %v", se.Mean(0), se.Mean(1))
	}
}

func TestLipschitzMapping(t *testing.T) {
	se, err := NewSuccessiveElimination(5)
	if err != nil {
		t.Fatal(err)
	}
	lip, err := NewLipschitz(se, 100, 500)
	if err != nil {
		t.Fatal(err)
	}
	if lip.Kappa() != 5 {
		t.Fatalf("kappa = %d", lip.Kappa())
	}
	if lip.Epsilon() != 100 {
		t.Fatalf("epsilon = %v, want 100", lip.Epsilon())
	}
	wants := []float64{100, 200, 300, 400, 500}
	for arm, want := range wants {
		if got := lip.Value(arm); got != want {
			t.Fatalf("Value(%d) = %v, want %v", arm, got, want)
		}
	}
	arm, v := lip.SelectValue()
	if v != lip.Value(arm) {
		t.Fatalf("SelectValue mismatch: arm %d value %v", arm, v)
	}
}

func TestLipschitzSingleArm(t *testing.T) {
	f, err := NewFixed(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	lip, err := NewLipschitz(f, 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	if lip.Epsilon() != 0 || lip.Value(0) != 300 {
		t.Fatalf("single-arm lipschitz: eps=%v value=%v", lip.Epsilon(), lip.Value(0))
	}
}

func TestLipschitzValidation(t *testing.T) {
	se, _ := NewSuccessiveElimination(3)
	if _, err := NewLipschitz(se, 10, 5); err == nil {
		t.Error("want error for inverted interval")
	}
	if _, err := NewLipschitz(se, math.NaN(), 5); err == nil {
		t.Error("want error for NaN bound")
	}
}

func TestRegretBoundShape(t *testing.T) {
	se, _ := NewSuccessiveElimination(8)
	lip, err := NewLipschitz(se, 0, 700)
	if err != nil {
		t.Fatal(err)
	}
	if lip.RegretBound(0, 1) != 0 {
		t.Fatal("bound at T=0 must be 0")
	}
	b1, b2 := lip.RegretBound(100, 1), lip.RegretBound(400, 1)
	if b2 <= b1 {
		t.Fatal("bound must grow with T")
	}
	// Sub-quadratic growth in T for the sqrt term plus linear term.
	if b2 >= 4*b1*2 {
		t.Fatalf("bound grew faster than linear+sqrt: %v -> %v", b1, b2)
	}
}

// TestSuccessiveEliminationRegretSublinear measures the empirical regret
// slope: regret over [0, T] must grow sub-linearly once arms separate.
func TestSuccessiveEliminationRegretSublinear(t *testing.T) {
	means := []float64{5, 7, 9, 6}
	run := func(rounds int) float64 {
		se, err := NewSuccessiveElimination(len(means))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(77))
		regret := 0.0
		for r := 0; r < rounds; r++ {
			arm := se.Select()
			se.Update(arm, means[arm]+rng.NormFloat64())
			regret += means[2] - means[arm]
		}
		return regret
	}
	r1, r2 := run(2000), run(8000)
	if r2 > 2.5*r1 {
		t.Fatalf("regret grew ~linearly: %v at 2000 vs %v at 8000 rounds", r1, r2)
	}
}
