package bandit

import (
	"testing"

	"mecoffload/internal/rnd"
)

// Metamorphic invariance: relabeling the arms must not change what the
// policy does, only what it calls it. For the deterministic argmax
// policies (UCB1, SW-UCB, D-UCB, Restart over them) the property is
// exact per step once each arm has been primed once in a label-agnostic
// order: if run B sees arm sigma(a) whenever run A would see arm a, then
// B's t-th decision is sigma(A's t-th decision). Exp3 is excluded — its
// CDF-inversion sampling walks the label order, so a permutation changes
// which arm a given uniform draw lands on.
//
// Rewards come from a pinned rnd stream shared step-by-step between the
// two runs (common random numbers), keyed by the underlying arm so the
// permuted run observes exactly the permuted reward function.

// metaReward returns the deterministic reward of underlying arm u at
// step i: distinct per arm, drifting mid-stream, with shared per-step
// noise from the derived seed (amp 0 disables the noise).
func metaReward(u, i int, amp float64, noise []float64) float64 {
	base := float64(u + 1)
	if i >= 150 {
		base = float64(7 - u)
	}
	return base + amp*noise[i]
}

func metaNoise(steps int) []float64 {
	rng := rnd.New(11, "metamorphic")
	out := make([]float64, steps)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

// prime plays every underlying arm exactly once, in underlying order, so
// both runs leave the forced-exploration phase with identical per-arm
// statistics regardless of label order.
func prime(p Policy, perm []int, amp float64, noise []float64) {
	for u := 0; u < p.NumArms(); u++ {
		p.Update(perm[u], metaReward(u, 0, amp, noise))
	}
}

func TestMetamorphicArmRelabeling(t *testing.T) {
	const k, steps = 5, 300
	perm := []int{3, 0, 4, 1, 2} // label of underlying arm u in run B
	identity := []int{0, 1, 2, 3, 4}
	inv := make([]int, k)
	for u, l := range perm {
		inv[l] = u
	}
	noise := metaNoise(steps + 1)

	builders := map[string]struct {
		build func() Policy
		// amp is the shared per-step noise amplitude. The restart case
		// runs noiseless: after a change point fires, the two runs
		// re-explore at offset steps and would bank different noise into
		// otherwise-identical arm means, perturbing near-ties forever.
		amp float64
	}{
		"ucb1": {amp: 0.1, build: func() Policy {
			p, err := NewUCB1(k)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
		"sw-ucb": {amp: 0.1, build: func() Policy {
			// Window of 64 < steps exercises eviction; priming in
			// underlying order keeps eviction order aligned across runs.
			p, err := NewSlidingWindowUCB(k, 64)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
		"d-ucb": {amp: 0.1, build: func() Policy {
			p, err := NewDiscountedUCB(k, 0.98)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
		"restart:ucb1": {amp: 0, build: func() Policy {
			u, err := NewUCB1(k)
			if err != nil {
				t.Fatal(err)
			}
			p, err := NewRestart(u, nil)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
	}
	for name, tc := range builders {
		t.Run(name, func(t *testing.T) {
			amp := tc.amp
			a, b := tc.build(), tc.build()
			prime(a, identity, amp, noise)
			prime(b, perm, amp, noise)
			// A fired change point wipes the inner policy, whose forced
			// re-exploration then walks LABEL order — so decisions may
			// legitimately diverge for up to ~k steps after a restart
			// before the argmax re-aligns on underlying values.
			ra, isRestart := a.(*Restart)
			rb, _ := b.(*Restart)
			grace, lastRestarts := 0, 0
			for i := 1; i <= steps; i++ {
				armA := a.Select()
				armB := b.Select()
				if isRestart {
					n := ra.Restarts()
					if m := rb.Restarts(); m > n {
						n = m
					}
					if n != lastRestarts {
						lastRestarts, grace = n, 2*k
					}
				}
				if grace > 0 {
					grace--
				} else if want := perm[armA]; armB != want {
					t.Fatalf("step %d: run A played %d, so run B must play %d, got %d",
						i, armA, want, armB)
				}
				a.Update(armA, metaReward(armA, i, amp, noise))
				b.Update(armB, metaReward(inv[armB], i, amp, noise))
			}
			if isRestart {
				if ra.Restarts() == 0 || rb.Restarts() == 0 {
					t.Fatalf("restart never fired (A=%d, B=%d) — the drift went undetected", ra.Restarts(), rb.Restarts())
				}
			}
		})
	}
}

// TestMetamorphicSERelabeling: successive elimination's round-robin
// cursor walks label order, so per-step equality does not hold — but the
// learning OUTCOME must commute with the permutation: the surviving arm
// set and the best arm map through sigma, and per-arm play counts match
// on underlying arms.
func TestMetamorphicSERelabeling(t *testing.T) {
	const k, steps = 5, 400
	perm := []int{3, 0, 4, 1, 2}
	noise := metaNoise(steps + 1)

	run := func(labelOf []int) *SuccessiveElimination {
		se, err := NewSuccessiveElimination(k)
		if err != nil {
			t.Fatal(err)
		}
		inv := make([]int, k)
		for u, l := range labelOf {
			inv[l] = u
		}
		for i := 1; i <= steps; i++ {
			label := se.Select()
			se.Update(label, metaReward(inv[label], i, 0.1, noise))
		}
		return se
	}
	a := run([]int{0, 1, 2, 3, 4})
	b := run(perm)
	if a.NumActive() != b.NumActive() {
		t.Fatalf("surviving arm counts differ: %d vs %d", a.NumActive(), b.NumActive())
	}
	for u := 0; u < k; u++ {
		if a.Active(u) != b.Active(perm[u]) {
			t.Errorf("underlying arm %d: active %v in A but label %d active %v in B",
				u, a.Active(u), perm[u], b.Active(perm[u]))
		}
		if a.Plays(u) != b.Plays(perm[u]) {
			t.Errorf("underlying arm %d: %d plays in A, %d in B",
				u, a.Plays(u), b.Plays(perm[u]))
		}
	}
	if perm[a.BestArm()] != b.BestArm() {
		t.Errorf("best arm %d in A should map to %d, B says %d",
			a.BestArm(), perm[a.BestArm()], b.BestArm())
	}
}
