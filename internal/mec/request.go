package mec

import (
	"errors"
	"fmt"
	"math/rand"

	"mecoffload/internal/dist"
)

// Errors returned by request constructors.
var (
	ErrNoTasks      = errors.New("mec: request needs at least one task")
	ErrNoDist       = errors.New("mec: request needs a rate-reward distribution")
	ErrNotRealized  = errors.New("mec: request rate not yet realized")
	ErrBadTask      = errors.New("mec: invalid task")
	ErrBadRequest   = errors.New("mec: invalid request")
	ErrBadWorkloads = errors.New("mec: invalid workload parameters")
)

// Task is one stage M_{j,k} of an AR processing pipeline (pose estimation,
// mapping, world-model update, rendering, ...). Each task consumes the
// output matrix of its predecessor.
type Task struct {
	// Name identifies the pipeline stage, e.g. "render".
	Name string
	// OutputKb is the size of the task's output matrix per frame in
	// kilobits (paper Section VI-A: render 100Kb, track 64Kb, ...).
	OutputKb float64
	// WorkMS is the nominal delay d^pro of processing rho_unit data on a
	// SpeedFactor-1.0 station; the actual per-station delay is
	// WorkMS * station.SpeedFactor.
	WorkMS float64
}

// Request is one AR offloading request r_j. Its realized data rate is
// hidden until Realize is called — algorithms must schedule before they
// can observe it (Section III-B).
type Request struct {
	// ID indexes the request within its workload.
	ID int
	// ArrivalSlot is a_j, the slot the request enters the system.
	ArrivalSlot int
	// AccessStation is the base station closest to the request's user —
	// the ingress of its video stream.
	AccessStation int
	// Tasks is the AR processing pipeline M_{j,1..K_j}.
	Tasks []Task
	// DeadlineMS is the latency requirement D̂_j.
	DeadlineMS float64
	// DurationSlots is how many time slots the request's stream occupies
	// its service instance once scheduled; the instance is destroyed at
	// departure (Section III-B). Values below 1 are treated as 1. Offline
	// algorithms ignore it.
	DurationSlots int
	// Dist is the (rate, reward) distribution of the request.
	Dist *dist.RateReward

	realized bool
	outcome  dist.Outcome
}

// Validate reports whether the request is well-formed.
func (r *Request) Validate() error {
	if len(r.Tasks) == 0 {
		return fmt.Errorf("%w (request %d)", ErrNoTasks, r.ID)
	}
	for _, t := range r.Tasks {
		if t.OutputKb < 0 || t.WorkMS < 0 {
			return fmt.Errorf("%w: %+v (request %d)", ErrBadTask, t, r.ID)
		}
	}
	if r.Dist == nil {
		return fmt.Errorf("%w (request %d)", ErrNoDist, r.ID)
	}
	if r.DeadlineMS <= 0 {
		return fmt.Errorf("%w: deadline %v (request %d)", ErrBadRequest, r.DeadlineMS, r.ID)
	}
	return nil
}

// HoldSlots returns the stream duration in slots, at least 1.
func (r *Request) HoldSlots() int {
	if r.DurationSlots < 1 {
		return 1
	}
	return r.DurationSlots
}

// ExpectedRate returns E[rho_j].
func (r *Request) ExpectedRate() float64 { return r.Dist.ExpectedRate() }

// ExpectedReward returns the demand-independent expected reward E[RD_j].
func (r *Request) ExpectedReward() float64 { return r.Dist.ExpectedReward() }

// Realize samples the actual (rate, reward) outcome exactly once;
// subsequent calls return the same outcome. This models the data rate
// "instantiating and revealing" after scheduling (Section IV-A).
func (r *Request) Realize(rng *rand.Rand) dist.Outcome {
	if !r.realized {
		r.outcome = r.Dist.Sample(rng)
		r.realized = true
	}
	return r.outcome
}

// Realized reports whether the rate has been revealed, returning the
// outcome when it has.
func (r *Request) Realized() (dist.Outcome, bool) {
	return r.outcome, r.realized
}

// MustRealized returns the revealed outcome or an error when the request
// has not been scheduled yet.
func (r *Request) MustRealized() (dist.Outcome, error) {
	if !r.realized {
		return dist.Outcome{}, fmt.Errorf("%w (request %d)", ErrNotRealized, r.ID)
	}
	return r.outcome, nil
}

// ResetRealization clears the sampled outcome so the same workload can be
// replayed by another algorithm with a fresh (but seed-reproducible) draw.
func (r *Request) ResetRealization() {
	r.realized = false
	r.outcome = dist.Outcome{}
}

// ForceOutcome fixes the realized outcome; tests use it to make rate
// revelation deterministic.
func (r *Request) ForceOutcome(o dist.Outcome) {
	r.outcome = o
	r.realized = true
}

// ProcDelayMS returns Eq. (2)'s processing term sum_k d^pro_{jki}: the
// total pipeline processing delay of the request on station st.
func (r *Request) ProcDelayMS(st BaseStation) float64 {
	total := 0.0
	for _, t := range r.Tasks {
		total += t.WorkMS * st.SpeedFactor
	}
	return total
}

// TaskProcDelayMS returns d^pro for a single task index on station st.
func (r *Request) TaskProcDelayMS(k int, st BaseStation) (float64, error) {
	if k < 0 || k >= len(r.Tasks) {
		return 0, fmt.Errorf("%w: task %d of %d (request %d)", ErrBadTask, k, len(r.Tasks), r.ID)
	}
	return r.Tasks[k].WorkMS * st.SpeedFactor, nil
}

// ServiceDelayMS returns the scheduling-independent latency of serving the
// request entirely on station i of network n: round-trip transmission from
// the access station plus full pipeline processing. Adding the waiting
// term (b_j - a_j) * slot length yields D_j of Eq. (2).
func (r *Request) ServiceDelayMS(n *Network, i int) float64 {
	return n.RoundTripDelayMS(r.AccessStation, i) + r.ProcDelayMS(n.stations[i])
}

// DelayFeasible reports whether serving the request on station i can meet
// its deadline with a waiting time of waitSlots scheduling slots.
func (r *Request) DelayFeasible(n *Network, i int, waitSlots int, slotLengthMS float64) bool {
	d := float64(waitSlots)*slotLengthMS + r.ServiceDelayMS(n, i)
	return d <= r.DeadlineMS
}

// CloneShallow returns a copy of the request with realization state
// cleared. Task and distribution data are shared (both are immutable by
// convention).
func (r *Request) CloneShallow() *Request {
	c := *r
	c.realized = false
	c.outcome = dist.Outcome{}
	return &c
}
