// Package mec models the paper's system (Section III): an MEC network
// G = (BS, E) of 5G base stations interconnected by backhaul paths, AR
// requests composed of task pipelines with uncertain data rates, and the
// delay model of Eq. (2).
//
// Units used throughout the repository:
//   - computing capacity: MHz
//   - data rate: MB/s
//   - delay: milliseconds
//   - reward: dollars
//   - time: discrete slots of SlotLengthMS each
package mec

import (
	"errors"
	"fmt"
	"math/rand"

	"mecoffload/internal/graph"
	"mecoffload/internal/topology"
)

// Paper defaults (Section VI-A).
const (
	// DefaultCUnit is the computing resource consumed per unit data rate:
	// 20 MHz per MB/s.
	DefaultCUnit = 20.0
	// DefaultSlotMHz is the capacity of one resource slot: 1000 MHz.
	DefaultSlotMHz = 1000.0
	// DefaultSlotLengthMS is the length of a scheduling time slot: 50 ms.
	DefaultSlotLengthMS = 50.0
	// DefaultDeadlineMS is the maximum response delay of an AR request.
	DefaultDeadlineMS = 200.0
)

// Errors returned by network constructors and accessors.
var (
	ErrNoStations  = errors.New("mec: network needs at least one base station")
	ErrBadCapacity = errors.New("mec: invalid station capacity")
	ErrBadStation  = errors.New("mec: station index out of range")
)

// BaseStation is one 5G base station with co-located edge computing.
type BaseStation struct {
	// ID is the station's vertex index in the backhaul graph.
	ID int
	// CapacityMHz is the total computing capacity C(bs_i).
	CapacityMHz float64
	// SpeedFactor scales task processing delays on this station;
	// 1.0 is nominal, smaller is faster. Models heterogeneous
	// accelerators ("the delays of processing rho_unit in different base
	// stations varies", Section III-D).
	SpeedFactor float64
}

// Network is an MEC network: base stations plus backhaul shortest-path
// structure. Build one per experiment and share it across algorithm runs.
// The topology and nominal capacities are immutable and all methods are
// safe for concurrent reads; the one mutable knob is the per-station
// capacity scale (SetCapacityScale), which models outages and degraded
// operation. Scale changes must happen between scheduling slots — i.e.
// not concurrently with readers — which is how the simulation engine
// applies them.
type Network struct {
	stations []BaseStation
	topo     *topology.Topology
	ap       *graph.AllPairs
	// slotMHz is C_l, the capacity of one resource slot.
	slotMHz float64
	// cUnit is C_unit, MHz consumed per MB/s of data rate.
	cUnit float64
	// capScale multiplies each station's nominal capacity; nil means all
	// ones. Lazily allocated by SetCapacityScale so the common stationary
	// case costs one nil check per Capacity read.
	capScale []float64
}

// NetworkConfig parameterizes NewNetwork.
type NetworkConfig struct {
	// Stations describes each base station. CapacityMHz must be positive;
	// a zero SpeedFactor defaults to 1.
	Stations []BaseStation
	// Topo is the backhaul topology; its graph must have exactly
	// len(Stations) vertices.
	Topo *topology.Topology
	// SlotMHz is the resource-slot size C_l (default 1000 MHz).
	SlotMHz float64
	// CUnit is the MHz consumed per MB/s (default 20).
	CUnit float64
}

// NewNetwork validates the configuration and precomputes all-pairs
// shortest backhaul paths.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if len(cfg.Stations) == 0 {
		return nil, ErrNoStations
	}
	if cfg.Topo == nil || cfg.Topo.Graph.N() != len(cfg.Stations) {
		return nil, fmt.Errorf("mec: topology size mismatch: %d stations", len(cfg.Stations))
	}
	if cfg.SlotMHz == 0 {
		cfg.SlotMHz = DefaultSlotMHz
	}
	if cfg.CUnit == 0 {
		cfg.CUnit = DefaultCUnit
	}
	if cfg.SlotMHz < 0 || cfg.CUnit <= 0 {
		return nil, fmt.Errorf("%w: slot=%v cUnit=%v", ErrBadCapacity, cfg.SlotMHz, cfg.CUnit)
	}
	stations := make([]BaseStation, len(cfg.Stations))
	copy(stations, cfg.Stations)
	for i := range stations {
		stations[i].ID = i
		if stations[i].CapacityMHz <= 0 {
			return nil, fmt.Errorf("%w: station %d capacity %v", ErrBadCapacity, i, stations[i].CapacityMHz)
		}
		if stations[i].SpeedFactor == 0 {
			stations[i].SpeedFactor = 1
		}
		if stations[i].SpeedFactor < 0 {
			return nil, fmt.Errorf("%w: station %d speed factor %v", ErrBadCapacity, i, stations[i].SpeedFactor)
		}
	}
	return &Network{
		stations: stations,
		topo:     cfg.Topo,
		ap:       cfg.Topo.Graph.AllPairsShortestPaths(),
		slotMHz:  cfg.SlotMHz,
		cUnit:    cfg.CUnit,
	}, nil
}

// NumStations returns |BS|.
func (n *Network) NumStations() int { return len(n.stations) }

// Station returns the i-th base station.
func (n *Network) Station(i int) (BaseStation, error) {
	if i < 0 || i >= len(n.stations) {
		return BaseStation{}, fmt.Errorf("%w: %d", ErrBadStation, i)
	}
	return n.stations[i], nil
}

// Stations returns a copy of all base stations.
func (n *Network) Stations() []BaseStation {
	out := make([]BaseStation, len(n.stations))
	copy(out, n.stations)
	return out
}

// Capacity returns the effective capacity C(bs_i) in MHz: the nominal
// capacity times the station's current capacity scale. Every scheduler,
// LP row, and audit reads capacity through this accessor, so an outage
// applied via SetCapacityScale is visible to all of them at once.
func (n *Network) Capacity(i int) float64 {
	c := n.stations[i].CapacityMHz
	if n.capScale != nil {
		c *= n.capScale[i]
	}
	return c
}

// CapacityScale returns station i's current capacity multiplier (1 when
// never set).
func (n *Network) CapacityScale(i int) float64 {
	if n.capScale == nil {
		return 1
	}
	return n.capScale[i]
}

// SetCapacityScale sets station i's capacity multiplier in [0, 1]: 0 is a
// full outage, 1 restores nominal capacity. It must not be called
// concurrently with capacity readers; the simulation engine applies
// outage transitions between slots.
func (n *Network) SetCapacityScale(i int, scale float64) error {
	if i < 0 || i >= len(n.stations) {
		return fmt.Errorf("%w: %d", ErrBadStation, i)
	}
	if scale < 0 || scale > 1 || scale != scale {
		return fmt.Errorf("%w: station %d capacity scale %v out of [0, 1]", ErrBadCapacity, i, scale)
	}
	if n.capScale == nil {
		if scale == 1 {
			return nil
		}
		n.capScale = make([]float64, len(n.stations))
		for j := range n.capScale {
			n.capScale[j] = 1
		}
	}
	n.capScale[i] = scale
	return nil
}

// ResetCapacityScales restores every station to nominal capacity.
func (n *Network) ResetCapacityScales() { n.capScale = nil }

// SlotMHz returns the resource-slot size C_l.
func (n *Network) SlotMHz() float64 { return n.slotMHz }

// CUnit returns the MHz consumed per MB/s of data rate.
func (n *Network) CUnit() float64 { return n.cUnit }

// NumSlots returns L = floor(C(bs_i)/C_l) for station i, using the
// effective (outage-scaled) capacity.
func (n *Network) NumSlots(i int) int {
	return int(n.Capacity(i) / n.slotMHz)
}

// SlotRate converts l resource slots of station capacity into the maximum
// data rate they can process: l*C_l/C_unit MB/s.
func (n *Network) SlotRate(l int) float64 {
	return float64(l) * n.slotMHz / n.cUnit
}

// RateToMHz converts a data rate into its computing demand rho*C_unit.
func (n *Network) RateToMHz(rate float64) float64 { return rate * n.cUnit }

// OneWayDelayMS returns the shortest-path one-way transmission delay of
// rho_unit data between stations u and v (0 when u == v, +Inf when
// disconnected).
func (n *Network) OneWayDelayMS(u, v int) float64 {
	if u == v {
		return 0
	}
	return n.ap.Dist(u, v)
}

// RoundTripDelayMS is Eq. (2)'s transmission term: 2 * sum of per-link
// delays along the shortest path p_ji.
func (n *Network) RoundTripDelayMS(u, v int) float64 {
	return 2 * n.OneWayDelayMS(u, v)
}

// PathBetween returns the station sequence of the shortest backhaul path.
func (n *Network) PathBetween(u, v int) []int { return n.ap.Path(u, v) }

// NearestStation returns the station closest (in backhaul delay) to "from"
// among candidates, excluding "from" itself. Used by algorithm Heu to
// migrate a task "to the closest base station" (Algorithm 2 step 13).
func (n *Network) NearestStation(from int, candidates []int) (int, float64) {
	return n.ap.Nearest(from, candidates)
}

// NeighborsByDistance returns all other stations sorted by ascending
// backhaul delay from the given station.
func (n *Network) NeighborsByDistance(from int) []int {
	out := make([]int, 0, len(n.stations)-1)
	for i := range n.stations {
		if i != from {
			out = append(out, i)
		}
	}
	// Insertion sort by distance: station counts are small (10-50).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && n.ap.Dist(from, out[j]) < n.ap.Dist(from, out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Edges returns the backhaul links with their per-unit delays (ms).
func (n *Network) Edges() []graph.Edge { return n.topo.Graph.Edges() }

// NodePositions returns the stations' generated coordinates on the unit
// square (cosmetic; used for plotting and serialization).
func (n *Network) NodePositions() []topology.Node {
	out := make([]topology.Node, len(n.topo.Nodes))
	copy(out, n.topo.Nodes)
	return out
}

// TotalCapacity returns the sum of effective station capacities in MHz.
func (n *Network) TotalCapacity() float64 {
	total := 0.0
	for i := range n.stations {
		total += n.Capacity(i)
	}
	return total
}

// RandomNetwork builds a paper-default network: numStations base stations
// on a Waxman topology, capacities uniform in [minCapMHz, maxCapMHz], and
// speed factors uniform in [0.8, 1.2].
func RandomNetwork(numStations int, minCapMHz, maxCapMHz float64, rng *rand.Rand) (*Network, error) {
	topo, err := topology.Waxman(topology.Config{N: numStations}, rng)
	if err != nil {
		return nil, err
	}
	stations := make([]BaseStation, numStations)
	for i := range stations {
		stations[i] = BaseStation{
			CapacityMHz: minCapMHz + rng.Float64()*(maxCapMHz-minCapMHz),
			SpeedFactor: 0.8 + rng.Float64()*0.4,
		}
	}
	return NewNetwork(NetworkConfig{Stations: stations, Topo: topo})
}
