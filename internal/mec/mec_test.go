package mec

import (
	"math"
	"math/rand"
	"testing"

	"mecoffload/internal/dist"
	"mecoffload/internal/topology"
)

func testTopo(t *testing.T, n int, seed int64) *topology.Topology {
	t.Helper()
	topo, err := topology.Waxman(topology.Config{N: n}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("Waxman: %v", err)
	}
	return topo
}

func testNet(t *testing.T, n int, seed int64) *Network {
	t.Helper()
	net, err := RandomNetwork(n, 3000, 3600, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("RandomNetwork: %v", err)
	}
	return net
}

func TestNewNetworkValidation(t *testing.T) {
	topo := testTopo(t, 2, 1)
	cases := []struct {
		name string
		cfg  NetworkConfig
	}{
		{"no stations", NetworkConfig{Topo: topo}},
		{"size mismatch", NetworkConfig{Stations: make([]BaseStation, 3), Topo: topo}},
		{"nil topo", NetworkConfig{Stations: []BaseStation{{CapacityMHz: 1}, {CapacityMHz: 1}}}},
		{"zero capacity", NetworkConfig{Stations: []BaseStation{{CapacityMHz: 0}, {CapacityMHz: 1}}, Topo: topo}},
		{"negative speed", NetworkConfig{
			Stations: []BaseStation{{CapacityMHz: 1, SpeedFactor: -1}, {CapacityMHz: 1}}, Topo: topo}},
		{"negative cunit", NetworkConfig{
			Stations: []BaseStation{{CapacityMHz: 1}, {CapacityMHz: 1}}, Topo: topo, CUnit: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewNetwork(tc.cfg); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestNetworkDefaults(t *testing.T) {
	topo := testTopo(t, 2, 2)
	net, err := NewNetwork(NetworkConfig{
		Stations: []BaseStation{{CapacityMHz: 3200}, {CapacityMHz: 1500}},
		Topo:     topo,
	})
	if err != nil {
		t.Fatal(err)
	}
	if net.SlotMHz() != DefaultSlotMHz || net.CUnit() != DefaultCUnit {
		t.Fatalf("defaults not applied: slot=%v cunit=%v", net.SlotMHz(), net.CUnit())
	}
	if net.NumSlots(0) != 3 || net.NumSlots(1) != 1 {
		t.Fatalf("slots = %d, %d; want 3, 1", net.NumSlots(0), net.NumSlots(1))
	}
	if got := net.SlotRate(2); got != 2*DefaultSlotMHz/DefaultCUnit {
		t.Fatalf("SlotRate(2) = %v", got)
	}
	if got := net.RateToMHz(40); got != 800 {
		t.Fatalf("RateToMHz(40) = %v, want 800", got)
	}
	st, err := net.Station(0)
	if err != nil || st.SpeedFactor != 1 {
		t.Fatalf("station 0: %+v, %v (speed factor should default to 1)", st, err)
	}
	if _, err := net.Station(9); err == nil {
		t.Fatal("want error for station out of range")
	}
	if got := net.TotalCapacity(); got != 4700 {
		t.Fatalf("total capacity %v", got)
	}
}

func TestDelaysSymmetricAndTriangle(t *testing.T) {
	net := testNet(t, 12, 3)
	for u := 0; u < 12; u++ {
		if net.OneWayDelayMS(u, u) != 0 {
			t.Fatalf("self delay nonzero at %d", u)
		}
		for v := 0; v < 12; v++ {
			duv, dvu := net.OneWayDelayMS(u, v), net.OneWayDelayMS(v, u)
			if math.Abs(duv-dvu) > 1e-9 {
				t.Fatalf("asymmetric delay (%d, %d): %v vs %v", u, v, duv, dvu)
			}
			if net.RoundTripDelayMS(u, v) != 2*duv {
				t.Fatal("round trip must be twice one way")
			}
			for w := 0; w < 12; w++ {
				if duv > net.OneWayDelayMS(u, w)+net.OneWayDelayMS(w, v)+1e-9 {
					t.Fatalf("triangle inequality violated (%d, %d, %d)", u, w, v)
				}
			}
		}
	}
}

func TestNeighborsByDistance(t *testing.T) {
	net := testNet(t, 8, 4)
	for from := 0; from < 8; from++ {
		ns := net.NeighborsByDistance(from)
		if len(ns) != 7 {
			t.Fatalf("neighbors of %d: %d entries", from, len(ns))
		}
		for i := 1; i < len(ns); i++ {
			if net.OneWayDelayMS(from, ns[i]) < net.OneWayDelayMS(from, ns[i-1])-1e-12 {
				t.Fatalf("neighbors of %d not sorted by distance", from)
			}
		}
	}
	nearest, d := net.NearestStation(0, []int{1, 2, 3})
	if nearest < 1 || nearest > 3 || d <= 0 {
		t.Fatalf("nearest = %d at %v", nearest, d)
	}
}

func mkRequest(t *testing.T, id int) *Request {
	t.Helper()
	d, err := dist.NewRateReward([]dist.Outcome{
		{Rate: 30, Prob: 0.5, Reward: 400},
		{Rate: 50, Prob: 0.5, Reward: 600},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Request{
		ID:            id,
		AccessStation: 0,
		Tasks: []Task{
			{Name: "render", OutputKb: 100, WorkMS: 30},
			{Name: "track", OutputKb: 64, WorkMS: 12},
		},
		DeadlineMS: 200,
		Dist:       d,
	}
}

func TestRequestValidate(t *testing.T) {
	r := mkRequest(t, 0)
	if err := r.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	bad := *r
	bad.Tasks = nil
	if err := bad.Validate(); err == nil {
		t.Error("want error for no tasks")
	}
	bad = *r
	bad.Tasks = []Task{{WorkMS: -1}}
	if err := bad.Validate(); err == nil {
		t.Error("want error for negative work")
	}
	bad = *r
	bad.Dist = nil
	if err := bad.Validate(); err == nil {
		t.Error("want error for nil distribution")
	}
	bad = *r
	bad.DeadlineMS = 0
	if err := bad.Validate(); err == nil {
		t.Error("want error for zero deadline")
	}
}

func TestRealizeOnce(t *testing.T) {
	r := mkRequest(t, 1)
	if _, ok := r.Realized(); ok {
		t.Fatal("fresh request should not be realized")
	}
	if _, err := r.MustRealized(); err == nil {
		t.Fatal("MustRealized should fail before Realize")
	}
	rng := rand.New(rand.NewSource(5))
	first := r.Realize(rng)
	for i := 0; i < 10; i++ {
		if got := r.Realize(rng); got != first {
			t.Fatal("Realize must be idempotent")
		}
	}
	out, err := r.MustRealized()
	if err != nil || out != first {
		t.Fatalf("MustRealized = %v, %v", out, err)
	}
	r.ResetRealization()
	if _, ok := r.Realized(); ok {
		t.Fatal("ResetRealization did not clear state")
	}
	forced := first
	forced.Reward = 123
	r.ForceOutcome(forced)
	if got, _ := r.Realized(); got.Reward != 123 {
		t.Fatal("ForceOutcome not applied")
	}
}

func TestRequestDelays(t *testing.T) {
	net := testNet(t, 5, 6)
	r := mkRequest(t, 2)
	st, err := net.Station(1)
	if err != nil {
		t.Fatal(err)
	}
	wantProc := (30 + 12) * st.SpeedFactor
	if got := r.ProcDelayMS(st); math.Abs(got-wantProc) > 1e-9 {
		t.Fatalf("proc delay %v, want %v", got, wantProc)
	}
	d0, err := r.TaskProcDelayMS(0, st)
	if err != nil || math.Abs(d0-30*st.SpeedFactor) > 1e-9 {
		t.Fatalf("task 0 proc %v, %v", d0, err)
	}
	if _, err := r.TaskProcDelayMS(5, st); err == nil {
		t.Fatal("want error for task index out of range")
	}
	want := net.RoundTripDelayMS(0, 1) + wantProc
	if got := r.ServiceDelayMS(net, 1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("service delay %v, want %v", got, want)
	}
	// Delay feasibility: an enormous wait breaks any deadline.
	if r.DelayFeasible(net, 1, 1000, DefaultSlotLengthMS) {
		t.Fatal("1000-slot wait should be infeasible")
	}
}

func TestHoldSlots(t *testing.T) {
	r := mkRequest(t, 3)
	if r.HoldSlots() != 1 {
		t.Fatalf("default hold %d, want 1", r.HoldSlots())
	}
	r.DurationSlots = 40
	if r.HoldSlots() != 40 {
		t.Fatalf("hold %d, want 40", r.HoldSlots())
	}
	r.DurationSlots = -2
	if r.HoldSlots() != 1 {
		t.Fatalf("negative duration should clamp to 1")
	}
}

func TestCloneShallow(t *testing.T) {
	r := mkRequest(t, 4)
	r.Realize(rand.New(rand.NewSource(7)))
	c := r.CloneShallow()
	if _, ok := c.Realized(); ok {
		t.Fatal("clone must clear realization")
	}
	if c.ID != r.ID || len(c.Tasks) != len(r.Tasks) {
		t.Fatal("clone lost fields")
	}
}

func TestRandomNetworkProperties(t *testing.T) {
	net := testNet(t, 20, 8)
	if net.NumStations() != 20 {
		t.Fatalf("stations = %d", net.NumStations())
	}
	for _, st := range net.Stations() {
		if st.CapacityMHz < 3000 || st.CapacityMHz > 3600 {
			t.Fatalf("capacity %v outside [3000, 3600]", st.CapacityMHz)
		}
		if st.SpeedFactor < 0.8 || st.SpeedFactor > 1.2 {
			t.Fatalf("speed factor %v outside [0.8, 1.2]", st.SpeedFactor)
		}
	}
	// Stations() must be a copy.
	sts := net.Stations()
	sts[0].CapacityMHz = 1
	if net.Capacity(0) == 1 {
		t.Fatal("Stations leaked internal state")
	}
}
