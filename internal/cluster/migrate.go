package cluster

import (
	"errors"

	"mecoffload/internal/mec"
	"mecoffload/internal/serve"
)

// Migration phases. A migration is proposed by the sweep, priced by the
// free-capacity advantage of its target shard, and either committed
// through the two-phase handoff or aborted (below-hysteresis price, the
// request settled first, the deadline budget ran out, or the target
// refused).
const (
	PhaseProposed  = "proposed"
	PhasePriced    = "priced"
	PhaseCommitted = "committed"
	PhaseAborted   = "aborted"
)

// Migration is one journal entry of the cross-shard handoff protocol.
type Migration struct {
	Global uint64  `json:"global"`
	From   int     `json:"from"`
	To     int     `json:"to"`
	Price  float64 `json:"price"` // free-capacity-fraction advantage at proposal time
	Phase  string  `json:"phase"`
	Reason string  `json:"reason,omitempty"`
	Slot   int     `json:"slot"`
}

const journalCap = 256

// Migrations returns a copy of the bounded migration journal, oldest
// first.
func (c *Cluster) Migrations() []Migration {
	c.migMu.Lock()
	defer c.migMu.Unlock()
	return append([]Migration(nil), c.journal...)
}

func (c *Cluster) journalAppend(m Migration) {
	c.migMu.Lock()
	c.journal = append(c.journal, m)
	if over := len(c.journal) - journalCap; over > 0 {
		c.journal = append(c.journal[:0], c.journal[over:]...)
	}
	c.migMu.Unlock()
}

// MigratedCounts returns the per-shard committed handoff counters.
func (c *Cluster) MigratedCounts() (in, out []uint64) {
	in = make([]uint64, len(c.nodes))
	out = make([]uint64, len(c.nodes))
	for k, nd := range c.nodes {
		in[k] = nd.migratedIn.Load()
		out[k] = nd.migratedOut.Load()
	}
	return in, out
}

// shrinkDeadline returns the deadline budget a request has left after
// waiting `waited` slots at its current shard. A migrated request
// re-enters the target's intake with this shrunk deadline, so the
// handoff never grants extra time; non-positive means the request is no
// longer worth moving.
func shrinkDeadline(spec serve.RequestSpec, waited int, slotMS float64) float64 {
	d := spec.DeadlineMS
	if d == 0 {
		d = mec.DefaultDeadlineMS
	}
	return d - float64(waited)*slotMS
}

// sweepLocked runs one migration round under the cluster clock lock:
// every still-pending spanning request is proposed against the shard
// with the most spare capacity among its candidate owners — using the
// free-capacity fractions the shard workers computed inside this slot's
// tick epoch (shardNode.computeFreeFrac), so the sweep itself touches no
// engine gauges — priced by the free-fraction advantage, and committed
// through the two-phase handoff — phase one extracts the request from its source shard's
// planner (aborting benignly if it settled or started running first),
// phase two submits it to the target with a deadline shrunk by the time
// already waited. A refused phase two compensates by re-submitting to
// the source, so a request is never lost mid-handoff. Commits per sweep
// are capped by MigrationBurst.
func (c *Cluster) sweepLocked() {
	work := c.router.spanningRequests()
	if len(work) == 0 {
		return
	}
	committed := 0
	for _, sc := range work {
		if committed >= c.cfg.MigrationBurst {
			break
		}
		src := c.nodes[sc.shard]
		if !src.eng.Alive() {
			continue
		}
		// Propose: best alive target shard owning at least one candidate.
		target, best := -1, 0.0
		for _, st := range sc.cands {
			k := c.owner[st]
			if k == sc.shard || !c.nodes[k].eng.Alive() {
				continue
			}
			if adv := c.nodes[k].freeFrac - c.nodes[sc.shard].freeFrac; target < 0 || adv > best {
				target, best = k, adv
			}
		}
		if target < 0 {
			continue
		}
		m := Migration{Global: sc.global, From: sc.shard, To: target, Price: best, Slot: c.slot}
		if best < c.cfg.MigrationHysteresis {
			// Not worth the handoff; stay put. Only journal real proposals.
			continue
		}
		m.Phase = PhasePriced

		// The deadline budget check needs the arrival slot, which Status
		// knows without disturbing the planner.
		rec, ok, err := src.eng.Status(sc.ext)
		if err != nil || !ok || rec.State != serve.StatePending {
			m.Phase, m.Reason = PhaseAborted, "settled"
			c.journalAppend(m)
			continue
		}
		// Phase one: extract from the source planner.
		spec, arrival, err := src.eng.Extract(sc.ext)
		if err != nil {
			m.Phase = PhaseAborted
			if errors.Is(err, serve.ErrNotPending) {
				m.Reason = "settled" // decided between Status and Extract
			} else {
				m.Reason = err.Error()
			}
			c.journalAppend(m)
			continue
		}
		waited := c.slot - arrival
		if waited < 0 {
			waited = 0
		}
		// Globalize the source-local spec before re-homing it.
		spec.AccessStation = src.stations[spec.AccessStation]
		spec.DeadlineMS = shrinkDeadline(spec, waited, c.cfg.SlotLengthMS)
		if spec.DeadlineMS <= 0 {
			// Out of budget: hand it back to the source rather than grant
			// the move free time. It will expire where it waited.
			spec.DeadlineMS = c.cfg.SlotLengthMS / 2
			if ext, _, rerr := src.eng.Submit(c.localSpec(sc.shard, spec, sc.cands)); rerr == nil {
				c.router.rebind(sc.global, sc.shard, ext, true)
			}
			m.Phase, m.Reason = PhaseAborted, "deadline exhausted"
			c.journalAppend(m)
			continue
		}
		// Phase two: commit at the target.
		ext, _, err := c.nodes[target].eng.Submit(c.localSpec(target, spec, sc.cands))
		if err != nil {
			// Compensate: the request goes back to its source shard.
			m.Phase, m.Reason = PhaseAborted, "target refused: "+err.Error()
			if rext, _, rerr := src.eng.Submit(c.localSpec(sc.shard, spec, sc.cands)); rerr == nil {
				c.router.rebind(sc.global, sc.shard, rext, true)
			} else {
				c.cfg.Logf("cluster: migration %d lost compensation (source: %v, target: %v)",
					sc.global, rerr, err)
				m.Reason += "; compensation failed: " + rerr.Error()
			}
			c.journalAppend(m)
			continue
		}
		c.router.rebind(sc.global, target, ext, true)
		src.migratedOut.Add(1)
		c.nodes[target].migratedIn.Add(1)
		m.Phase = PhaseCommitted
		c.journalAppend(m)
		committed++
	}
}
