// Package cluster runs N scheduler shards — each a serve.Engine owning
// one station partition — behind a thin router that maps every incoming
// request's candidate-station set to the owning shard. The partition
// follows connected components of the backhaul graph (the same
// components the LP decomposition splits along), shards tick in
// lockstep under one cluster clock with globally aggregated bandit
// feedback, pending requests migrate across partition edges through a
// two-phase handoff, and per-shard checkpoints compose into one
// recoverable cluster manifest. The correctness contract is decision
// parity: on a trace whose candidate components respect the partition,
// a 1-shard and an N-shard cluster make identical schedules
// (oracle.DiffCluster).
package cluster

import (
	"fmt"
	"sort"

	"mecoffload/internal/graph"
	"mecoffload/internal/mec"
	"mecoffload/internal/topology"
)

// Partition assigns every station to exactly one of n shards and
// returns the per-shard station sets (ascending station order inside
// each part, every part non-empty). Connected components of the
// backhaul graph are kept whole whenever there are at least n of them:
// components are visited in ascending min-station order and each goes
// to the currently least-loaded shard by total capacity (ties to the
// lowest shard index), so the layout is deterministic and roughly
// capacity-balanced. With fewer components than shards, stations split
// into contiguous index chunks instead — correctness never depends on
// the partition (the router re-homes spanning requests), only parity
// quality does.
func Partition(net *mec.Network, n int) ([][]int, error) {
	if net == nil {
		return nil, fmt.Errorf("cluster: nil network")
	}
	nS := net.NumStations()
	if n < 1 {
		n = 1
	}
	if n > nS {
		n = nS
	}
	comps := components(net)
	if len(comps) < n {
		// Contiguous index chunks of near-equal size.
		parts := make([][]int, n)
		for k := 0; k < n; k++ {
			lo, hi := k*nS/n, (k+1)*nS/n
			for i := lo; i < hi; i++ {
				parts[k] = append(parts[k], i)
			}
		}
		return parts, nil
	}
	parts := make([][]int, n)
	load := make([]float64, n)
	for _, comp := range comps {
		best := 0
		for k := 1; k < n; k++ {
			if load[k] < load[best] {
				best = k
			}
		}
		parts[best] = append(parts[best], comp...)
		for _, i := range comp {
			load[best] += net.Capacity(i)
		}
	}
	for k := range parts {
		sort.Ints(parts[k])
	}
	return parts, nil
}

// components returns the connected components of the backhaul graph,
// each in ascending station order, ordered by their minimum station.
func components(net *mec.Network) [][]int {
	nS := net.NumStations()
	parent := make([]int, nS)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for _, e := range net.Edges() {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			if ru > rv {
				ru, rv = rv, ru
			}
			parent[rv] = ru
		}
	}
	byRoot := map[int][]int{}
	for i := 0; i < nS; i++ {
		r := find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// subNetwork builds the induced sub-network over one partition's
// stations: the stations keep their capacities and speed factors, every
// backhaul edge with both endpoints inside the partition carries over,
// and indices re-map to dense local ids. Each station's capacity is
// owned by exactly one shard's engine — the cluster never double-counts
// a MHz.
func subNetwork(net *mec.Network, stations []int) (*mec.Network, error) {
	if len(stations) == 0 {
		return nil, fmt.Errorf("cluster: empty partition")
	}
	localOf := make(map[int]int, len(stations))
	subStations := make([]mec.BaseStation, len(stations))
	positions := net.NodePositions()
	nodes := make([]topology.Node, len(stations))
	for l, g := range stations {
		localOf[g] = l
		st, err := net.Station(g)
		if err != nil {
			return nil, err
		}
		st.ID = l
		subStations[l] = st
		if g < len(positions) {
			nodes[l] = positions[g]
		}
	}
	sg := graph.New(len(stations))
	for _, e := range net.Edges() {
		lu, okU := localOf[e.U]
		lv, okV := localOf[e.V]
		if okU && okV {
			if _, err := sg.AddEdge(lu, lv, e.Weight); err != nil {
				return nil, err
			}
		}
	}
	return mec.NewNetwork(mec.NetworkConfig{
		Stations: subStations,
		Topo:     &topology.Topology{Graph: sg, Nodes: nodes},
		SlotMHz:  net.SlotMHz(),
		CUnit:    net.CUnit(),
	})
}
