package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"mecoffload/internal/oracle"
	"mecoffload/internal/serve"
)

// ReplayStats summarizes one NDJSON replay through a cluster.
type ReplayStats struct {
	Slots    int
	Accepted int
	BadLines int
}

// ReplayNDJSON replays an NDJSON request trace through the cluster's
// batched intake: every group of non-blank lines becomes one routed
// SubmitBatch, every blank line a slot boundary (consecutive blanks
// replay idle slots) — the exact wire format of POST /v1/requests:batch
// and of the single-engine replay mode, so the same trace file drives
// both. After the trace, intake drains and the cluster keeps ticking
// until every shard has settled its pending requests and released its
// streams. lineErr (optional) receives one callback per malformed line.
func ReplayNDJSON(c *Cluster, src io.Reader, lineErr func(line int, msg string)) (ReplayStats, error) {
	var (
		st       ReplayStats
		group    strings.Builder
		baseLine = 1
		lineNo   = 0
	)
	flushGroup := func() error {
		defer func() {
			group.Reset()
			baseLine = lineNo + 1
		}()
		if group.Len() > 0 {
			lines, lineErrs, err := serve.DecodeBatch(strings.NewReader(group.String()), 0, 0)
			if err != nil {
				return fmt.Errorf("cluster replay: slot %d: %w", st.Slots, err)
			}
			specs := make([]serve.RequestSpec, 0, len(lines))
			for _, ln := range lines {
				if verr := c.ValidateSpec(ln.Spec); verr != nil {
					lineErrs = append(lineErrs, serve.LineError{Line: ln.Line, Error: verr.Error()})
					continue
				}
				specs = append(specs, ln.Spec)
			}
			for _, le := range lineErrs {
				if lineErr != nil {
					lineErr(baseLine+le.Line-1, le.Error)
				}
				st.BadLines++
			}
			res, err := c.SubmitBatch(specs)
			if err != nil {
				return fmt.Errorf("cluster replay: slot %d: %w", st.Slots, err)
			}
			st.Accepted += len(res.IDs)
			if err := c.Flush(); err != nil {
				return err
			}
		}
		st.Slots++
		return c.Tick()
	}

	br := bufio.NewReaderSize(src, 1<<20)
	for {
		line, rerr := br.ReadString('\n')
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			return st, rerr
		}
		if len(line) > 0 {
			lineNo++
		}
		switch {
		case strings.TrimSpace(line) != "":
			group.WriteString(line)
			if !strings.HasSuffix(line, "\n") {
				group.WriteByte('\n')
			}
		case len(line) > 0:
			if err := flushGroup(); err != nil {
				return st, err
			}
		}
		if errors.Is(rerr, io.EOF) {
			break
		}
	}
	if group.Len() > 0 {
		if err := flushGroup(); err != nil {
			return st, err
		}
	}

	if err := c.Drain(); err != nil {
		return st, err
	}
	for c.Alive() {
		if err := c.Tick(); err != nil {
			if errors.Is(err, serve.ErrStopped) {
				break
			}
			return st, err
		}
	}
	return st, nil
}

// ReplayDump replays a trace through a freshly built cluster and
// returns the decision trace in global-id space: one SlotAdmissions per
// admitting slot, ids being submission ordinals — directly comparable
// across shard counts, which is exactly the closure oracle.DiffCluster
// consumes. The passed config's SlotObserver is overridden.
func ReplayDump(cfg Config, trace string) (*oracle.ReplayDump, error) {
	dump := &oracle.ReplayDump{}
	cfg.SlotObserver = func(slot int, admitted []uint64, reward float64) {
		if len(admitted) == 0 && reward == 0 {
			return
		}
		ids := make([]int, len(admitted))
		for i, g := range admitted {
			ids[i] = int(g)
		}
		dump.Slots = append(dump.Slots, oracle.SlotAdmissions{Slot: slot, Admitted: ids, Reward: reward})
		dump.TotalReward += reward
	}
	cfg.TickInterval = 0
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	c.Start()
	st, err := ReplayNDJSON(c, strings.NewReader(trace), nil)
	if err != nil {
		c.Stop()
		return nil, err
	}
	if err := c.Stop(); err != nil {
		return nil, err
	}
	<-c.Done()
	dump.Submitted = st.Accepted
	return dump, nil
}
