package cluster_test

// Router edge cases: requests whose candidate set vanishes after
// partitioning, the all-candidates-on-one-shard fast path, and the
// migration sweep racing concurrent submissions and capacity changes
// (exercised under -race in CI's race job).

import (
	"errors"
	"sync"
	"testing"

	"mecoffload/internal/cluster"
	"mecoffload/internal/graph"
	"mecoffload/internal/mec"
	"mecoffload/internal/serve"
	"mecoffload/internal/topology"
)

// bridgedNetwork is islandNetwork plus one backhaul edge between
// consecutive islands, collapsing everything into a single component:
// candidate sets span the per-island partition, which is what the
// spanning home-shard rule and the migration sweep exist for.
func bridgedNetwork(t testing.TB, islands, per int) *mec.Network {
	t.Helper()
	n := islands * per
	g := graph.New(n)
	nodes := make([]topology.Node, n)
	stations := make([]mec.BaseStation, n)
	for i := 0; i < n; i++ {
		nodes[i] = topology.Node{X: float64(i%per) * 0.01, Y: float64(i/per) * 0.01}
		stations[i] = mec.BaseStation{CapacityMHz: 3200, SpeedFactor: 1}
	}
	for isl := 0; isl < islands; isl++ {
		base := isl * per
		for k := 1; k < per; k++ {
			if _, err := g.AddEdge(base+k-1, base+k, 1); err != nil {
				t.Fatal(err)
			}
		}
		if isl > 0 {
			if _, err := g.AddEdge(isl*per-1, isl*per, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	net, err := mec.NewNetwork(mec.NetworkConfig{
		Stations: stations,
		Topo:     &topology.Topology{Graph: g, Nodes: nodes},
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestRouterNoCandidate: a spec whose demand cannot fit any station has
// an empty candidate set; the router must still home it — at the access
// station's owner — where it expires exactly as it would in a single
// engine, rather than erroring or landing on shard 0 by accident.
func TestRouterNoCandidate(t *testing.T) {
	net := islandNetwork(t, 2, 2)
	c, err := cluster.New(parityConfig(net, 2))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer func() { _ = c.Stop() }()

	// 1e6 MB/s needs 2e7 MHz of slot capacity: infeasible everywhere.
	id, _, err := c.Submit(serve.RequestSpec{
		AccessStation: 2, // island 1 -> shard 1
		DurationSlots: 1,
		Outcomes:      []serve.OutcomeSpec{{RateMBs: 1e6, Prob: 1, Reward: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.RouterStats().NoCandidate; got != 1 {
		t.Fatalf("NoCandidate = %d, want 1", got)
	}
	rec, ok, err := c.Status(id)
	if err != nil || !ok {
		t.Fatalf("status: ok=%v err=%v", ok, err)
	}
	if rec.State != serve.StatePending {
		t.Fatalf("state %q, want pending", rec.State)
	}
	// Default deadline is 4 slots; the request must expire, not linger.
	for i := 0; i < 8; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	rec, ok, err = c.Status(id)
	if err != nil || !ok {
		t.Fatalf("post-tick status: ok=%v err=%v", ok, err)
	}
	if rec.State != serve.StateExpired {
		t.Fatalf("state %q, want expired", rec.State)
	}
}

// TestRouterFastPath: island-confined candidates take the single-owner
// fast path and resolve on the owning shard with the global id intact.
func TestRouterFastPath(t *testing.T) {
	net := islandNetwork(t, 4, 2)
	c, err := cluster.New(parityConfig(net, 4))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer func() { _ = c.Stop() }()

	for isl := 0; isl < 4; isl++ {
		id, _, err := c.Submit(serve.RequestSpec{
			AccessStation: isl*2 + 1,
			DurationSlots: 1,
			Outcomes:      []serve.OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: 100}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(isl); id != want {
			t.Fatalf("global id %d, want dense ordinal %d", id, want)
		}
		rec, ok, err := c.Status(id)
		if err != nil || !ok {
			t.Fatalf("island %d: status ok=%v err=%v", isl, ok, err)
		}
		if rec.ID != id {
			t.Fatalf("island %d: record id %d, want %d", isl, rec.ID, id)
		}
	}
	rs := c.RouterStats()
	if rs.FastPath != 4 || rs.Spanning != 0 || rs.NoCandidate != 0 {
		t.Fatalf("stats = %+v, want 4 fast-path routes", rs)
	}
}

// TestRouterSpanningHome pins the deterministic home-shard rule: when
// candidates span partitions, home is the owner of the smallest
// candidate station regardless of the access station.
func TestRouterSpanningHome(t *testing.T) {
	net := bridgedNetwork(t, 2, 2)
	c, err := cluster.New(parityConfig(net, 2))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer func() { _ = c.Stop() }()

	// Access station 3 lives on shard 1, but the bridged topology makes
	// station 0 a candidate too, so the request homes on shard 0.
	id, _, err := c.Submit(serve.RequestSpec{
		AccessStation: 3,
		DurationSlots: 1,
		Outcomes:      []serve.OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := c.RouterStats()
	if rs.Spanning != 1 {
		t.Fatalf("stats = %+v, want 1 spanning route", rs)
	}
	if _, ok, err := c.Status(id); err != nil || !ok {
		t.Fatalf("status: ok=%v err=%v", ok, err)
	}
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	// Shard 0 (stations 0,1) must have scheduled it: its submitted
	// counter moved, shard 1's did not.
	if err := tickUntilSettled(c, id, 8); err != nil {
		t.Fatal(err)
	}
}

func tickUntilSettled(c *cluster.Cluster, id uint64, max int) error {
	for i := 0; i < max; i++ {
		rec, ok, err := c.Status(id)
		if err != nil {
			return err
		}
		if ok && rec.State != serve.StatePending {
			return nil
		}
		if err := c.Tick(); err != nil {
			return err
		}
	}
	rec, _, _ := c.Status(id)
	return errors.New("request " + rec.State + " never settled")
}

// TestMigrationRace floods a bridged 2-shard cluster from concurrent
// submitters while the clock ticks and the migration sweep runs every
// slot: proposals race admission-driven capacity changes and status
// polls. The invariant is that no accepted request is ever lost — every
// global id resolves to a terminal record after the drain. Run under
// -race in CI.
func TestMigrationRace(t *testing.T) {
	net := bridgedNetwork(t, 2, 4)
	cfg := parityConfig(net, 2)
	cfg.MigrationEvery = 1
	cfg.MigrationBurst = 8
	cfg.MigrationHysteresis = 0.01
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()

	var (
		mu  sync.Mutex
		ids []uint64
		wg  sync.WaitGroup
	)
	stopPoll := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				id, _, err := c.Submit(serve.RequestSpec{
					AccessStation: (w*3 + i) % net.NumStations(),
					DurationSlots: 1,
					DeadlineMS:    2000,
					Outcomes:      []serve.OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: float64(100 + i)}},
				})
				if err != nil {
					continue // saturation is legal; loss is not
				}
				mu.Lock()
				ids = append(ids, id)
				mu.Unlock()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if err := c.Tick(); err != nil {
				return
			}
		}
	}()
	// Status poller races lookups against the sweep's rebinds.
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			mu.Lock()
			snap := append([]uint64(nil), ids...)
			mu.Unlock()
			for _, id := range snap {
				if _, _, err := c.Status(id); err != nil {
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stopPoll)
	<-pollDone

	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	for c.Alive() {
		if err := c.Tick(); err != nil {
			if errors.Is(err, serve.ErrStopped) {
				break
			}
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		rec, ok, err := c.Status(id)
		if err != nil && !errors.Is(err, serve.ErrStopped) {
			t.Fatalf("request %d: %v", id, err)
		}
		if err != nil {
			break // engines already stopped; registry gone with them
		}
		if !ok {
			t.Fatalf("request %d lost", id)
		}
		switch rec.State {
		case serve.StatePending, serve.StateMigrated:
			t.Fatalf("request %d stuck in state %q after drain", id, rec.State)
		}
	}
	_ = c.Stop()
	<-c.Done()
}
