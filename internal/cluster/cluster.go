package cluster

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"mecoffload/internal/ckpt"
	"mecoffload/internal/mec"
	"mecoffload/internal/rnd"
	"mecoffload/internal/serve"
	"mecoffload/internal/sim"
)

// Config parameterizes New.
type Config struct {
	// Net is the full MEC topology (required). Each shard serves the
	// induced sub-network of its station partition.
	Net *mec.Network
	// Shards is the number of scheduler shards (default 1, at most one
	// per station).
	Shards int
	// SchedulerName, DynamicRR, SlotLengthMS, and StepChecker pass
	// through to every shard's serve.Config.
	SchedulerName string
	DynamicRR     sim.DynamicRROptions
	SlotLengthMS  float64
	StepChecker   sim.StepChecker
	// Drift, when non-nil, is the scripted non-stationarity program in
	// GLOBAL station ids. Outages and same-shard handovers run inside
	// the owning shard's planner; handovers crossing a partition edge
	// are applied by the cluster clock through the migration handoff, so
	// the decision stream stays identical to a single engine running the
	// same script (the cluster parity contract extends to drift).
	Drift *sim.Drift
	// TickInterval drives the cluster clock: shards always run with
	// manual ticks, and the cluster advances them in lockstep so slot
	// rewards aggregate globally. Zero means manual Tick (tests, replay).
	TickInterval time.Duration
	// Seed derives every per-shard randomness stream (engine rng and
	// Retry-After jitter) through internal/rnd labels.
	Seed int64
	// CheckpointPath, when set, names the cluster manifest; per-shard
	// snapshots are written beside it. New restores from an existing
	// manifest — with any shard count — and the cluster rewrites it
	// every CheckpointEvery slots (default 50) and at Stop.
	CheckpointPath  string
	CheckpointEvery int
	// AsyncCheckpoint takes checkpoint I/O off the cluster clock: under
	// the clock lock the periodic checkpoint only extracts copy-on-write
	// shard snapshots (one epoch barrier), and JSON encoding, temp
	// files, fsync, and the generation-stamped manifest rename run on a
	// single-flight writer goroutine. A snapshot generation still queued
	// when the next one extracts is dropped (latest wins; counted on
	// /metrics). The written bytes are identical to a synchronous
	// checkpoint at the same slot boundary, and Stop's final manifest is
	// always written synchronously.
	AsyncCheckpoint bool
	// MigrationEvery is the slot period of the cross-shard migration
	// sweep (default 4; negative disables migration). MigrationBurst
	// bounds commits per sweep (default 4) and MigrationHysteresis is
	// the minimum free-capacity-fraction advantage a target shard must
	// offer (default 0.10).
	MigrationEvery      int
	MigrationBurst      int
	MigrationHysteresis float64
	// Per-shard engine bounds, passed through to serve.Config.
	RingCapacity       int
	StageCapacity      int
	MaxPending         int
	BatchQueue         int
	MaxRecordsPerShard int
	// MaxRouted bounds the router's request table (default 1<<20;
	// oldest entries evict first, like the shard registries).
	MaxRouted int
	// Logf receives operational log lines.
	Logf func(format string, args ...any)
	// SlotObserver, when set, receives each cluster slot's admitted
	// global ids (ascending) and the globally aggregated reward, after
	// every shard ticked. Replay harnesses use it to build decision
	// dumps for oracle.DiffCluster. The admitted slice is scratch
	// reused on the next slot — copy it if it outlives the call.
	SlotObserver func(slot int, admitted []uint64, reward float64)
}

// shardSlotReport is one shard's decision report for one slot.
type shardSlotReport struct {
	slot     int
	admitted []uint64 // shard-local external ids
	reward   float64
}

// epochOp selects what one epoch barrier asks of every shard worker.
type epochOp int

const (
	// epTick runs one slot — fused with the previous slot's deferred
	// feedback when hasFB — and, when wantFree, refreshes the shard's
	// free-capacity fraction for the migration sweep.
	epTick epochOp = iota
	// epSettle delivers pending deferred feedback without advancing the
	// clock; checkpoints and Stop use it so captured bandit state
	// matches what a synchronous schedule would have written.
	epSettle
	// epSnapshot flushes batched-ingest residue and extracts the shard's
	// copy-on-write checkpoint snapshot into nd.snap.
	epSnapshot
)

// epochMsg is one barrier broadcast to the persistent shard workers. It
// is sent by value (no allocation) and carries the reusable WaitGroup
// the coordinator waits on.
type epochMsg struct {
	op       epochOp
	fbSlot   int
	fbReward float64
	hasFB    bool
	wantFree bool
	wg       *sync.WaitGroup
}

// shardNode is one scheduler shard: an engine over an induced
// sub-network plus the station index maps.
type shardNode struct {
	idx      int
	eng      *serve.Engine
	subnet   *mec.Network
	stations []int       // local station -> global station
	localOf  map[int]int // global station -> local station

	migratedIn  atomic.Uint64
	migratedOut atomic.Uint64

	// Epoch-worker plumbing. The persistent worker goroutine (started by
	// New, terminated by Stop closing epochC) blocks on epochC and
	// writes its results into the fields below; the coordinator reads
	// them only after the epoch's WaitGroup settles, so the barrier is
	// the only synchronization they need.
	epochC   chan epochMsg
	err      error
	freeFrac float64
	snap     *serve.Checkpoint
	snapErr  error

	mu      sync.Mutex
	reports []shardSlotReport
	// spare is the report buffer the previous takeReports handed out,
	// recycled once its consumer is done: takeReports swaps the two, so
	// the steady-state tick appends into an already-sized array instead
	// of growing a fresh slice every slot.
	spare []shardSlotReport
}

// epochWorker is the persistent per-shard goroutine: it replaces the
// per-tick `go func` spawn, so a slot costs one channel send and one
// WaitGroup decrement per shard instead of a goroutine creation.
func (nd *shardNode) epochWorker() {
	for msg := range nd.epochC {
		switch msg.op {
		case epTick:
			switch {
			case !nd.eng.Alive():
				nd.err = serve.ErrStopped
			case msg.hasFB:
				nd.err = nd.eng.TickWithFeedback(msg.fbSlot, msg.fbReward)
			default:
				nd.err = nd.eng.Tick()
			}
			if msg.wantFree {
				nd.freeFrac = nd.computeFreeFrac()
			}
		case epSettle:
			nd.err = nil
			if msg.hasFB && nd.eng.Alive() {
				if err := nd.eng.DeliverFeedback(msg.fbSlot, msg.fbReward); err != nil && !errors.Is(err, serve.ErrStopped) {
					nd.err = err
				}
			}
		case epSnapshot:
			nd.snap, nd.snapErr = nil, nil
			if nd.eng.Alive() {
				if err := nd.eng.Flush(); err != nil && !errors.Is(err, serve.ErrStopped) {
					nd.snapErr = err
				} else if snap, err := nd.eng.Snapshot(); err == nil {
					nd.snap = snap
				} else if !errors.Is(err, serve.ErrStopped) {
					nd.snapErr = err
				}
			}
		}
		msg.wg.Done()
	}
}

// computeFreeFrac returns the shard's spare-capacity fraction: occupancy
// from the engine's station gauges against the sub-network's EFFECTIVE
// capacities, so a shard mid-outage stops attracting migrations instead
// of advertising its dark stations' nominal MHz. A dead shard, or one
// with no effective capacity, counts as fully loaded. It runs on the
// epoch worker during sweep slots, off the coordinator's critical path.
func (nd *shardNode) computeFreeFrac() float64 {
	if !nd.eng.Alive() {
		return 0
	}
	var used, cap float64
	for _, g := range nd.eng.Gauges() {
		used += g.UsedMHz
		cap += nd.subnet.Capacity(g.Station)
	}
	if cap <= 0 {
		return 0
	}
	return (cap - used) / cap
}

func (nd *shardNode) observe(slot int, admitted []uint64, reward float64) {
	nd.mu.Lock()
	nd.reports = append(nd.reports, shardSlotReport{slot: slot, admitted: admitted, reward: reward})
	nd.mu.Unlock()
}

// takeReports returns the accumulated slot reports and re-arms the node
// with the previously returned buffer (double-buffering). The returned
// slice is only valid until the next takeReports call — the tick loop
// consumes it immediately.
func (nd *shardNode) takeReports() []shardSlotReport {
	nd.mu.Lock()
	r := nd.reports
	nd.reports = nd.spare[:0]
	nd.spare = r
	nd.mu.Unlock()
	return r
}

// Cluster is N scheduler shards behind one router and one clock.
type Cluster struct {
	cfg    Config
	net    *mec.Network
	parts  [][]int
	owner  []int // global station -> shard
	nodes  []*shardNode
	router *router

	// mu serializes the cluster clock: Tick, the migration sweep, and
	// checkpoint extraction. Submit/Status take only the router's lock.
	mu          sync.Mutex
	slot        int
	manifestGen uint64
	// clockStopped marks the clock dead (mu-guarded): Stop sets it
	// before closing the worker epoch channels, so a Tick that was
	// blocked on mu across Stop returns ErrStopped instead of sending on
	// a closed channel.
	clockStopped bool
	// epochWG is the reusable barrier the epoch broadcast waits on; the
	// clock lock serializes epochs, so Add never races Wait.
	epochWG sync.WaitGroup
	// Deferred fused feedback (mu-guarded): slot fbSlot's aggregated
	// reward, delivered inside the NEXT tick's epoch message so
	// tick+feedback cost one barrier. The learner still sees feedback(t)
	// before Step(t+1) — the decision stream is unchanged.
	fbSlot   int
	fbReward float64
	fbValid  bool
	// crossHandovers are the drift handovers whose endpoints live in
	// different shards, sorted by slot; crossCur is the forward-only
	// cursor the clock advances (mu-guarded).
	crossHandovers []sim.Handover
	crossCur       int
	// tickAdmitted is tickLocked's reusable global reward-aggregation id
	// list (mu-guarded), grown once and recycled every slot.
	tickAdmitted []uint64
	// submitScratch pools SubmitBatch's routing scratch (route table,
	// per-shard spec slices, zip cursors) across concurrent batches.
	submitScratch sync.Pool

	// ckw serializes every checkpoint's disk half (non-nil when
	// CheckpointPath is set; both sync and async writes route through it
	// so an older in-flight write can never clobber a newer manifest).
	// diskPrev is the previous generation's shard files, touched only by
	// writer-goroutine jobs — the writer's serial execution is its lock.
	ckw      *ckpt.Writer
	diskPrev []string

	done         chan struct{}
	tickerStop   chan struct{}
	startOnce    sync.Once
	stopOnce     sync.Once
	lastTickNano atomic.Int64
	drainFlag    atomic.Bool
	checkpoints  atomic.Uint64

	migMu   sync.Mutex
	journal []Migration
}

// New builds a cluster: the station partition, one engine per shard,
// and the router. When cfg.CheckpointPath names an existing manifest,
// the cluster restores from it — the manifest's state re-partitions
// onto the configured shard count, which may differ from the count that
// wrote it.
func New(cfg Config) (*Cluster, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("cluster: nil network")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if n := cfg.Net.NumStations(); cfg.Shards > n {
		cfg.Shards = n
	}
	if cfg.SlotLengthMS == 0 {
		cfg.SlotLengthMS = mec.DefaultSlotLengthMS
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 50
	}
	if cfg.MigrationEvery == 0 {
		cfg.MigrationEvery = 4
	}
	if cfg.MigrationBurst <= 0 {
		cfg.MigrationBurst = 4
	}
	if cfg.MigrationHysteresis == 0 {
		cfg.MigrationHysteresis = 0.10
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	parts, err := Partition(cfg.Net, cfg.Shards)
	if err != nil {
		return nil, err
	}
	owner := make([]int, cfg.Net.NumStations())
	for k, part := range parts {
		for _, i := range part {
			owner[i] = k
		}
	}

	c := &Cluster{
		cfg:        cfg,
		net:        cfg.Net,
		parts:      parts,
		owner:      owner,
		done:       make(chan struct{}),
		tickerStop: make(chan struct{}),
	}
	c.router = newRouter(cfg.Net, owner, cfg.SlotLengthMS, cfg.Shards, cfg.MaxRouted)

	// Restore from an existing manifest, shard-count-agnostic.
	var restores []*serve.Checkpoint
	if cfg.CheckpointPath != "" {
		man, snaps, err := loadManifest(cfg.CheckpointPath)
		if err != nil && !errors.Is(err, ErrNoManifest) {
			return nil, err
		}
		if man != nil {
			restores, err = c.composeRestore(man, snaps)
			if err != nil {
				return nil, fmt.Errorf("cluster: restoring manifest: %w", err)
			}
			c.slot = man.Slot
			c.manifestGen = man.Generation
		}
	}

	for k, part := range parts {
		subnet, err := subNetwork(cfg.Net, part)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d sub-network: %w", k, err)
		}
		nd := &shardNode{idx: k, subnet: subnet, stations: part, localOf: make(map[int]int, len(part))}
		for l, g := range part {
			nd.localOf[g] = l
		}
		c.nodes = append(c.nodes, nd)
	}

	// Split the drift script across the shards (global ids validate
	// against the full topology; each shard re-validates its local
	// slice at engine construction).
	var shardDrift []*sim.Drift
	if cfg.Drift != nil {
		if err := cfg.Drift.Validate(cfg.Net.NumStations()); err != nil {
			return nil, fmt.Errorf("cluster: drift script: %w", err)
		}
		shardDrift, c.crossHandovers = splitDrift(cfg.Drift, owner, c.nodes)
	}

	for k, nd := range c.nodes {
		scfg := serve.Config{
			Net:                nd.subnet,
			SchedulerName:      cfg.SchedulerName,
			DynamicRR:          cfg.DynamicRR,
			TickInterval:       0, // the cluster owns the clock
			SlotLengthMS:       cfg.SlotLengthMS,
			Rng:                rnd.New(cfg.Seed, fmt.Sprintf("cluster-shard-%d", k)),
			RetrySeed:          rnd.Derive(cfg.Seed, fmt.Sprintf("cluster-retry-%d", k)),
			DeferFeedback:      true,
			DecisionObserver:   nd.observe,
			StepChecker:        cfg.StepChecker,
			RingCapacity:       cfg.RingCapacity,
			StageCapacity:      cfg.StageCapacity,
			MaxPending:         cfg.MaxPending,
			BatchQueue:         cfg.BatchQueue,
			MaxRecordsPerShard: cfg.MaxRecordsPerShard,
			Logf: func(format string, args ...any) {
				cfg.Logf("[shard %d] "+format, append([]any{k}, args...)...)
			},
		}
		if restores != nil {
			scfg.Restore = restores[k]
		}
		if shardDrift != nil {
			scfg.Drift = shardDrift[k]
		}
		eng, err := serve.New(scfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d engine: %w", k, err)
		}
		nd.eng = eng
	}
	// Persistent epoch workers and the checkpoint writer start last so
	// no error path above leaks a goroutine. Stop closes both.
	for _, nd := range c.nodes {
		nd.epochC = make(chan epochMsg, 1)
		go nd.epochWorker()
	}
	if cfg.CheckpointPath != "" {
		c.ckw = ckpt.NewWriter(cfg.Logf)
	}
	return c, nil
}

// epoch broadcasts one barrier to every shard worker and waits for all
// of them: the per-slot synchronization cost is N buffered channel sends
// plus one WaitGroup wait, with no goroutine creation. Callers hold c.mu
// (which serializes epochs) and must have checked clockStopped.
func (c *Cluster) epoch(msg epochMsg) {
	c.epochWG.Add(len(c.nodes))
	msg.wg = &c.epochWG
	for _, nd := range c.nodes {
		nd.epochC <- msg
	}
	c.epochWG.Wait()
}

// Start launches every shard engine, the done watcher, and — with a
// tick interval — the cluster clock.
func (c *Cluster) Start() {
	c.startOnce.Do(func() {
		for _, nd := range c.nodes {
			nd.eng.Start()
		}
		go func() {
			for _, nd := range c.nodes {
				<-nd.eng.Done()
			}
			close(c.done)
		}()
		if c.cfg.TickInterval > 0 {
			go c.runTicker()
		}
	})
}

func (c *Cluster) runTicker() {
	ticker := time.NewTicker(c.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := c.Tick(); err != nil {
				if errors.Is(err, serve.ErrStopped) {
					return
				}
				c.cfg.Logf("cluster: tick error: %v", err)
			}
		case <-c.tickerStop:
			return
		case <-c.done:
			return
		}
	}
}

// Tick advances every shard by one slot in lockstep, aggregates the
// slot's realized reward across shards, and delivers that global signal
// to every shard's threshold learner — the same reward stream a
// single-engine bandit would see, which is what keeps learners
// identical across shard counts. Returns serve.ErrStopped once every
// shard has exited.
func (c *Cluster) Tick() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tickLocked()
}

func (c *Cluster) tickLocked() error {
	if c.clockStopped {
		return serve.ErrStopped
	}
	// Cross-partition handovers fire before the shards tick, so a
	// request handed over at slot t is schedulable at its new station in
	// slot t — the same slot a single engine's drift script re-points it.
	if c.crossCur < len(c.crossHandovers) {
		c.applyCrossHandoversLocked()
	}
	// One barrier runs the slot on every shard worker, fused with the
	// previous slot's deferred feedback and — on sweep slots — the
	// free-capacity refresh the migration pricing needs.
	wantFree := c.cfg.MigrationEvery > 0 && (c.slot+1)%c.cfg.MigrationEvery == 0
	c.epoch(epochMsg{op: epTick, fbSlot: c.fbSlot, fbReward: c.fbReward, hasFB: c.fbValid, wantFree: wantFree})
	c.fbValid = false
	alive := 0
	for _, nd := range c.nodes {
		switch {
		case nd.err == nil:
			alive++
		case !errors.Is(nd.err, serve.ErrStopped):
			return nd.err
		}
	}

	t := c.slot
	total := 0.0
	admitted := c.tickAdmitted[:0]
	for _, nd := range c.nodes {
		for _, r := range nd.takeReports() {
			total += r.reward
			admitted = c.router.appendGlobals(admitted, nd.idx, r.admitted)
		}
	}
	c.tickAdmitted = admitted
	// Defer the globally aggregated reward to the next epoch: the
	// learners see feedback(t) before Step(t+1), exactly as the serial
	// DeliverFeedback loop delivered it, at no extra barrier.
	c.fbSlot, c.fbReward, c.fbValid = t, total, true
	c.slot++
	c.lastTickNano.Store(time.Now().UnixNano())

	if c.cfg.SlotObserver != nil {
		slices.Sort(admitted)
		c.cfg.SlotObserver(t, admitted, total)
	}
	if wantFree {
		c.sweepLocked()
	}
	if c.cfg.CheckpointPath != "" && c.slot%c.cfg.CheckpointEvery == 0 {
		if err := c.checkpointLocked(!c.cfg.AsyncCheckpoint); err != nil {
			c.cfg.Logf("cluster: checkpoint failed: %v", err)
		}
	}
	if alive == 0 {
		return serve.ErrStopped
	}
	return nil
}

// settleFeedbackLocked delivers any pending deferred feedback now, via
// an epSettle barrier. Checkpoints call it first so the captured bandit
// state is post-feedback — byte-identical to what the pre-fusion serial
// schedule wrote — and a restored cluster starts with no feedback owed.
func (c *Cluster) settleFeedbackLocked() error {
	if !c.fbValid {
		return nil
	}
	c.epoch(epochMsg{op: epSettle, fbSlot: c.fbSlot, fbReward: c.fbReward, hasFB: true})
	c.fbValid = false
	for _, nd := range c.nodes {
		if nd.err != nil {
			return nd.err
		}
	}
	return nil
}

// localSpec remaps a spec's access station into a shard's local index.
// When the shard does not own the access station (a spanning request
// homed elsewhere), the nearest owned candidate station stands in —
// deterministic, and the documented approximation of the home-shard
// rule.
func (c *Cluster) localSpec(shard int, spec serve.RequestSpec, spanCands []int) serve.RequestSpec {
	nd := c.nodes[shard]
	if l, ok := nd.localOf[spec.AccessStation]; ok {
		spec.AccessStation = l
		return spec
	}
	var owned []int
	for _, st := range spanCands {
		if c.owner[st] == shard {
			owned = append(owned, st)
		}
	}
	if len(owned) == 0 {
		owned = nd.stations
	}
	nearest, _ := c.net.NearestStation(spec.AccessStation, owned)
	if l, ok := nd.localOf[nearest]; ok {
		spec.AccessStation = l
	} else {
		spec.AccessStation = 0
	}
	return spec
}

// Submit routes one request to its owning shard and returns its global
// id and the shard's current slot.
func (c *Cluster) Submit(spec serve.RequestSpec) (uint64, int, error) {
	shard, spanCands, err := c.router.route(spec)
	if err != nil {
		return 0, 0, err
	}
	ext, slot, err := c.nodes[shard].eng.Submit(c.localSpec(shard, spec, spanCands))
	if err != nil {
		return 0, 0, err
	}
	return c.router.bind(shard, ext, spanCands), slot, nil
}

// routedSpec is one SubmitBatch spec's routing decision.
type routedSpec struct {
	shard     int
	spanCands []int
}

// batchScratch is SubmitBatch's pooled routing scratch. The engines copy
// every spec they keep before replying, so the per-shard slices are free
// for reuse as soon as the call returns.
type batchScratch struct {
	routes   []routedSpec
	perShard [][]serve.RequestSpec
	results  []serve.BatchResult
	shardErr []error
	next     []int
}

// reset sizes the scratch for one batch over `shards` shards.
func (sc *batchScratch) reset(specs, shards int) {
	if cap(sc.routes) < specs {
		sc.routes = make([]routedSpec, specs)
	}
	sc.routes = sc.routes[:specs]
	if cap(sc.perShard) < shards {
		sc.perShard = make([][]serve.RequestSpec, shards)
		sc.results = make([]serve.BatchResult, shards)
		sc.shardErr = make([]error, shards)
		sc.next = make([]int, shards)
	}
	sc.perShard = sc.perShard[:shards]
	sc.results = sc.results[:shards]
	sc.shardErr = sc.shardErr[:shards]
	sc.next = sc.next[:shards]
	for k := 0; k < shards; k++ {
		sc.perShard[k] = sc.perShard[k][:0]
		sc.results[k] = serve.BatchResult{}
		sc.shardErr[k] = nil
		sc.next[k] = 0
	}
}

// SubmitBatch routes a batch across shards and submits each shard's
// slice through its engine's batched-ingest path. Global ids come back
// in submission order. Shards that refuse (saturation, drain) fail
// their requests; the call errors only when every spec failed.
func (c *Cluster) SubmitBatch(specs []serve.RequestSpec) (serve.BatchResult, error) {
	if len(specs) == 0 {
		return serve.BatchResult{}, nil
	}
	sc, _ := c.submitScratch.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	defer c.submitScratch.Put(sc)
	sc.reset(len(specs), len(c.nodes))
	routes, perShard := sc.routes, sc.perShard
	for i, spec := range specs {
		shard, spanCands, err := c.router.route(spec)
		if err != nil {
			return serve.BatchResult{}, err
		}
		routes[i] = routedSpec{shard: shard, spanCands: spanCands}
		perShard[shard] = append(perShard[shard], c.localSpec(shard, spec, spanCands))
	}
	results := sc.results
	shardErr := sc.shardErr
	for k, slice := range perShard {
		if len(slice) == 0 {
			continue
		}
		results[k], shardErr[k] = c.nodes[k].eng.SubmitBatch(slice)
	}
	// Zip shard results back into submission order, allocating global
	// ids in that order so they stay dense submission ordinals.
	next := sc.next
	var out serve.BatchResult
	failed := 0
	var firstErr error
	for i := range specs {
		k := routes[i].shard
		if shardErr[k] != nil {
			failed++
			if firstErr == nil {
				firstErr = shardErr[k]
			}
			continue
		}
		ext := results[k].IDs[next[k]]
		next[k]++
		out.IDs = append(out.IDs, c.router.bind(k, ext, routes[i].spanCands))
	}
	for k, res := range results {
		if shardErr[k] == nil {
			out.Shed += res.Shed
		}
	}
	if failed == len(specs) {
		return serve.BatchResult{}, firstErr
	}
	return out, nil
}

// Flush blocks until every accepted batch has reached the shard
// planners; replay harnesses call it before ticking.
func (c *Cluster) Flush() error {
	for _, nd := range c.nodes {
		if err := nd.eng.Flush(); err != nil && !errors.Is(err, serve.ErrStopped) {
			return err
		}
	}
	return nil
}

// Status resolves a global id to its current record; migrated requests
// resolve at their new owner. The returned record carries the global
// id.
func (c *Cluster) Status(id uint64) (serve.RequestRecord, bool, error) {
	shard, ext, ok := c.router.lookup(id)
	if !ok {
		return serve.RequestRecord{}, false, nil
	}
	rec, ok, err := c.nodes[shard].eng.Status(ext)
	if err != nil || !ok {
		return serve.RequestRecord{}, ok, err
	}
	rec.ID = id
	return rec, true, nil
}

// ValidateSpec checks a spec against the full topology exactly as the
// owning shard's intake would.
func (c *Cluster) ValidateSpec(spec serve.RequestSpec) error {
	_, err := serve.MaterializeSpec(c.net, spec)
	return err
}

// Drain closes intake on every shard; the cluster keeps ticking (via
// its internal clock or the caller's) until every shard has decided its
// pending requests and released its streams.
func (c *Cluster) Drain() error {
	c.drainFlag.Store(true)
	for _, nd := range c.nodes {
		if err := nd.eng.Drain(); err != nil && !errors.Is(err, serve.ErrStopped) {
			return err
		}
	}
	return nil
}

// Stop writes a final manifest — synchronously, even with
// AsyncCheckpoint, so the newest generation is on disk when Stop
// returns — then retires the epoch workers and the checkpoint writer
// and halts every shard.
func (c *Cluster) Stop() error {
	var err error
	c.stopOnce.Do(func() {
		close(c.tickerStop)
		c.mu.Lock()
		if c.cfg.CheckpointPath != "" {
			if cerr := c.checkpointLocked(true); cerr != nil {
				c.cfg.Logf("cluster: final manifest failed: %v", cerr)
				err = cerr
			}
		}
		// Mark the clock dead BEFORE closing the worker channels: a Tick
		// blocked on c.mu across this critical section sees clockStopped
		// instead of sending on a closed channel.
		c.clockStopped = true
		for _, nd := range c.nodes {
			close(nd.epochC)
		}
		c.mu.Unlock()
		if c.ckw != nil {
			c.ckw.Close()
		}
		for _, nd := range c.nodes {
			if serr := nd.eng.Stop(); serr != nil && !errors.Is(serr, serve.ErrStopped) && err == nil {
				err = serr
			}
		}
	})
	return err
}

// WaitCheckpoints blocks until every asynchronously submitted manifest
// generation has reached disk. A no-op without a checkpoint path.
func (c *Cluster) WaitCheckpoints() {
	if c.ckw != nil {
		c.ckw.Wait()
	}
}

// CheckpointsDropped reports how many extracted snapshot generations
// were superseded by a newer one before reaching disk.
func (c *Cluster) CheckpointsDropped() uint64 {
	if c.ckw == nil {
		return 0
	}
	return c.ckw.Dropped()
}

// Done is closed when every shard engine has exited.
func (c *Cluster) Done() <-chan struct{} { return c.done }

// Alive reports whether any shard engine still runs.
func (c *Cluster) Alive() bool {
	for _, nd := range c.nodes {
		if nd.eng.Alive() {
			return true
		}
	}
	return false
}

// Draining reports whether cluster intake is closed.
func (c *Cluster) Draining() bool { return c.drainFlag.Load() || !c.Alive() }

// Ready reports scheduling liveness: every shard alive, intake open,
// and — under the internal clock — a cluster tick within the last three
// intervals.
func (c *Cluster) Ready() bool {
	if c.Draining() {
		return false
	}
	for _, nd := range c.nodes {
		if !nd.eng.Alive() {
			return false
		}
	}
	if c.cfg.TickInterval <= 0 {
		return true
	}
	last := c.lastTickNano.Load()
	if last == 0 {
		return false
	}
	return time.Since(time.Unix(0, last)) < 3*c.cfg.TickInterval
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.nodes) }

// Slot returns the cluster clock's next slot.
func (c *Cluster) Slot() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slot
}

// Partition returns the per-shard global station sets.
func (c *Cluster) PartitionTable() [][]int {
	out := make([][]int, len(c.parts))
	for k, p := range c.parts {
		out[k] = append([]int(nil), p...)
	}
	return out
}

// RouterStats returns the routing counters.
func (c *Cluster) RouterStats() RouterStats { return c.router.stats() }
