package cluster_test

// Mobility and non-stationarity edge cases at the cluster layer, each
// pinned by the same contract as TestClusterParity: sharding must be
// invisible in the decision stream even while the network drifts. The
// drift script runs inside shard planners (outages, same-shard
// handovers) or through the cluster clock's forced handoff (handovers
// crossing a partition edge), and every run here also carries the
// oracle's step checker, so conservation is verified on the exact slots
// where streams are evicted and queues re-pointed.

import (
	"fmt"
	"strings"
	"testing"

	"mecoffload/internal/cluster"
	"mecoffload/internal/graph"
	"mecoffload/internal/mec"
	"mecoffload/internal/oracle"
	"mecoffload/internal/serve"
	"mecoffload/internal/sim"
	"mecoffload/internal/topology"
)

// capIslands builds len(caps) disconnected two-station islands where
// island i's stations both have capacity caps[i] MHz — islandNetwork
// with per-island capacities, for traces that need one island to be the
// only feasible home of a high-rate request.
func capIslands(t testing.TB, caps []float64) *mec.Network {
	t.Helper()
	const per = 2
	n := len(caps) * per
	g := graph.New(n)
	nodes := make([]topology.Node, n)
	stations := make([]mec.BaseStation, n)
	for i := 0; i < n; i++ {
		nodes[i] = topology.Node{X: float64(i%per) * 0.01, Y: float64(i/per) * 0.1}
		stations[i] = mec.BaseStation{CapacityMHz: caps[i/per], SpeedFactor: 1}
	}
	for isl := range caps {
		if _, err := g.AddEdge(isl*per, isl*per+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	net, err := mec.NewNetwork(mec.NetworkConfig{
		Stations: stations,
		Topo:     &topology.Topology{Graph: g, Nodes: nodes},
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// driftParityConfig is parityConfig plus a drift script and the
// oracle's per-slot conservation checks.
func driftParityConfig(net *mec.Network, shards int, d *sim.Drift) cluster.Config {
	cfg := parityConfig(net, shards)
	cfg.Drift = d
	cfg.StepChecker = oracle.EngineChecker()
	return cfg
}

// backgroundLine emits one routine admit-immediately request: a 40 MB/s
// single-outcome stream any 3200 MHz station serves, with an integer
// reward so cross-shard sums stay exact.
func backgroundLine(b *strings.Builder, station, slot int) {
	fmt.Fprintf(b, `{"accessStation":%d,"durationSlots":2,"outcomes":[{"rateMBs":40,"prob":1,"reward":%d}]}`+"\n",
		station, 100+(slot*37)%400)
}

// TestClusterHandoverAcrossPartition: a request whose only feasible
// stations sit in ANOTHER island is parked with an empty candidate set
// until a scripted handover moves it across the shard partition edge,
// after which it must be admitted — identically at 1, 2, and 8 shards,
// where the 1-shard run re-points it inside one planner and the
// multi-shard runs hand it off between engines.
func TestClusterHandoverAcrossPartition(t *testing.T) {
	// A station is a candidate for a single-outcome request only when
	// rate <= (cap-1000)/20, and the LP can additionally split a stream
	// across an island's stations. Island 2's 1200 MHz stations support
	// 10 MB/s each and 2400 MHz jointly — a 150 MB/s (3000 MHz) request
	// is infeasible there by any split, while one 6400 MHz station of
	// island 5 (supports 270) serves it alone.
	caps := []float64{3200, 3200, 1200, 3200, 3200, 6400, 3200, 3200}
	net := capIslands(t, caps)
	const from, to = 4, 10 // island 2 -> island 5
	drift := &sim.Drift{Handovers: []sim.Handover{{Slot: 3, From: from, To: to}}}

	// The partition edge must actually separate the endpoints, or the
	// multi-shard runs would take the same-shard path as 1 shard.
	for _, shards := range []int{2, 8} {
		parts, err := cluster.Partition(net, shards)
		if err != nil {
			t.Fatal(err)
		}
		owner := make(map[int]int)
		for k, p := range parts {
			for _, st := range p {
				owner[st] = k
			}
		}
		if owner[from] == owner[to] {
			t.Fatalf("at %d shards stations %d and %d share shard %d; the handover does not cross a partition edge",
				shards, from, to, owner[from])
		}
	}

	var b strings.Builder
	// Slot 0: the stranded 150 MB/s request (first submission => the
	// minimal global id) plus routine traffic.
	fmt.Fprintf(&b, `{"accessStation":%d,"deadlineMS":2000,"durationSlots":2,"outcomes":[{"rateMBs":150,"prob":1,"reward":777}]}`+"\n", from)
	backgroundLine(&b, 0, 0)
	b.WriteString("\n")
	// Routine traffic avoids island 2: its 1200 MHz stations cannot even
	// serve the 40 MB/s background stream, and stranded background
	// requests would ride the handover too.
	bgIslands := []int{0, 1, 3, 4, 5, 6, 7}
	for slot := 1; slot <= 15; slot++ {
		backgroundLine(&b, 2*bgIslands[slot%len(bgIslands)], slot)
		b.WriteString("\n")
	}
	for i := 0; i < 8; i++ {
		b.WriteString("\n")
	}
	trace := b.String()

	err := oracle.DiffCluster(func(shards int) (*oracle.ReplayDump, error) {
		return cluster.ReplayDump(driftParityConfig(net, shards, drift), trace)
	}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}

	// Non-vacuity: the stranded request really is admitted, and only
	// after the handover slot.
	dump, err := cluster.ReplayDump(driftParityConfig(net, 8, drift), trace)
	if err != nil {
		t.Fatal(err)
	}
	minID, minSlot := -1, -1
	for _, sa := range dump.Slots {
		for _, id := range sa.Admitted {
			if minID < 0 || id < minID {
				minID, minSlot = id, sa.Slot
			}
		}
	}
	if minID != 0 {
		t.Fatalf("first-submitted request (global id 0) never admitted; min admitted id %d", minID)
	}
	if minSlot < 3 {
		t.Fatalf("stranded request admitted at slot %d, before the slot-3 handover", minSlot)
	}
}

// TestClusterOutageWithInflightStreams: a scripted outage kills a
// station that is mid-way through serving a 10-slot stream. The stream
// must be evicted (reward already credited stays credited), arrivals at
// the dark station must wait out the window, and admissions must resume
// when capacity is restored — identically across shard counts.
func TestClusterOutageWithInflightStreams(t *testing.T) {
	const islands, per = 8, 1
	net := islandNetwork(t, islands, per)
	drift := &sim.Drift{Outages: []sim.Outage{{Station: 3, Start: 4, End: 9, Scale: 0}}}

	var b strings.Builder
	// Slot 0: the long stream on the station that will go dark.
	fmt.Fprintf(&b, `{"accessStation":3,"durationSlots":10,"outcomes":[{"rateMBs":40,"prob":1,"reward":500}]}`+"\n")
	backgroundLine(&b, 0, 0)
	b.WriteString("\n")
	for slot := 1; slot <= 14; slot++ {
		if slot == 5 {
			// Mid-outage arrival at the dark station: a generous deadline
			// lets it wait for the restore instead of expiring.
			fmt.Fprintf(&b, `{"accessStation":3,"deadlineMS":10000,"durationSlots":2,"outcomes":[{"rateMBs":40,"prob":1,"reward":333}]}`+"\n")
		}
		backgroundLine(&b, (slot*3)%islands, slot)
		b.WriteString("\n")
	}
	for i := 0; i < 12; i++ {
		b.WriteString("\n")
	}
	trace := b.String()

	err := oracle.DiffCluster(func(shards int) (*oracle.ReplayDump, error) {
		return cluster.ReplayDump(driftParityConfig(net, shards, drift), trace)
	}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}

	// Non-vacuity, through the serve layer: the stream's record must
	// land in StateEvicted when the outage begins, not linger serving.
	c, err := cluster.New(driftParityConfig(net, 2, drift))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer func() { _ = c.Stop() }()
	id, _, err := c.Submit(serve.RequestSpec{
		AccessStation: 3,
		DurationSlots: 10,
		Outcomes:      []serve.OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: 500}},
	})
	if err != nil {
		t.Fatal(err)
	}
	states := []string{}
	for slot := 0; slot < 6; slot++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		rec, ok, err := c.Status(id)
		if err != nil || !ok {
			t.Fatalf("status after slot %d: ok=%v err=%v", slot, ok, err)
		}
		states = append(states, rec.State)
	}
	if states[0] != serve.StateServing {
		t.Fatalf("stream not serving after slot 0: %v", states)
	}
	if got := states[len(states)-1]; got != serve.StateEvicted {
		t.Fatalf("stream not evicted by the outage: want %q, got %q (%v)",
			serve.StateEvicted, got, states)
	}
}

// TestClusterCandidateShrinksEmpty: two ways a request's candidate set
// reaches empty — born empty (no station supports its rate: the router
// must still home it deterministically and it must expire, not vanish)
// and shrunk empty mid-stream (feasible at submission, but saturated
// stations hold it pending until its deadline drains below every
// station's reach). Both decision streams must be shard-count
// invariant.
func TestClusterCandidateShrinksEmpty(t *testing.T) {
	const islands, per = 8, 2
	net := islandNetwork(t, islands, per)

	var b strings.Builder
	// Slot 0: saturate island 1 (stations 2, 3) with two 140 MB/s
	// 12-slot streams — 5600 of the island's joint 6400 MHz, leaving 800
	// MHz of spare the LP can still split.
	fmt.Fprintf(&b, `{"accessStation":2,"durationSlots":12,"outcomes":[{"rateMBs":140,"prob":1,"reward":600}]}`+"\n")
	fmt.Fprintf(&b, `{"accessStation":3,"durationSlots":12,"outcomes":[{"rateMBs":140,"prob":1,"reward":600}]}`+"\n")
	// Born-empty: 400 MB/s (8000 MHz) exceeds even a whole island's
	// joint capacity; expires without ever having a candidate.
	fmt.Fprintf(&b, `{"accessStation":0,"deadlineMS":300,"durationSlots":2,"outcomes":[{"rateMBs":400,"prob":1,"reward":900}]}`+"\n")
	b.WriteString("\n")
	// Slot 1: the shrink case — 80 MB/s (1600 MHz) fits an unloaded
	// island-1 station but not the saturated island's 800 MHz of spare,
	// and its 350 ms deadline drains before the saturating streams
	// release at slot 12.
	fmt.Fprintf(&b, `{"accessStation":2,"deadlineMS":350,"durationSlots":2,"outcomes":[{"rateMBs":80,"prob":1,"reward":444}]}`+"\n")
	b.WriteString("\n")
	for slot := 2; slot <= 14; slot++ {
		backgroundLine(&b, 2*(2+slot%6), slot) // islands 2..7
		b.WriteString("\n")
	}
	for i := 0; i < 12; i++ {
		b.WriteString("\n")
	}
	trace := b.String()

	err := oracle.DiffCluster(func(shards int) (*oracle.ReplayDump, error) {
		return cluster.ReplayDump(driftParityConfig(net, shards, nil), trace)
	}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}

	// Non-vacuity at 2 shards: the born-empty request takes the
	// router's no-candidate path, and both doomed requests expire.
	c, err := cluster.New(driftParityConfig(net, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer func() { _ = c.Stop() }()
	sat1, _, err := c.Submit(serve.RequestSpec{
		AccessStation: 2, DurationSlots: 12,
		Outcomes: []serve.OutcomeSpec{{RateMBs: 140, Prob: 1, Reward: 600}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sat2, _, err := c.Submit(serve.RequestSpec{
		AccessStation: 3, DurationSlots: 12,
		Outcomes: []serve.OutcomeSpec{{RateMBs: 140, Prob: 1, Reward: 600}},
	})
	if err != nil {
		t.Fatal(err)
	}
	born, _, err := c.Submit(serve.RequestSpec{
		AccessStation: 0, DeadlineMS: 300, DurationSlots: 2,
		Outcomes: []serve.OutcomeSpec{{RateMBs: 400, Prob: 1, Reward: 900}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.RouterStats().NoCandidate; got == 0 {
		t.Fatal("born-empty request did not take the router's no-candidate path")
	}
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	shrunk, _, err := c.Submit(serve.RequestSpec{
		AccessStation: 2, DeadlineMS: 350, DurationSlots: 2,
		Outcomes: []serve.OutcomeSpec{{RateMBs: 80, Prob: 1, Reward: 444}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for slot := 1; slot < 10; slot++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []struct {
		id    uint64
		state string
		what  string
	}{
		{sat1, serve.StateServing, "saturating stream 1"},
		{sat2, serve.StateServing, "saturating stream 2"},
		{born, serve.StateExpired, "born-empty request"},
		{shrunk, serve.StateExpired, "shrunk-empty request"},
	} {
		rec, ok, err := c.Status(want.id)
		if err != nil || !ok {
			t.Fatalf("%s: status ok=%v err=%v", want.what, ok, err)
		}
		if rec.State != want.state {
			t.Fatalf("%s: state %q, want %q", want.what, rec.State, want.state)
		}
	}
}
