package cluster

import (
	"sort"

	"mecoffload/internal/sim"
)

// splitDrift partitions a global-id drift script across the shards.
// Outages and same-shard handovers translate to shard-local station ids
// and run inside that shard's planner, exactly as they would in a single
// engine. Handovers whose From and To stations live in different shards
// cannot be expressed by any one planner — those return separately,
// sorted by slot, for the cluster clock to apply through the migration
// handoff (applyCrossHandoversLocked).
func splitDrift(d *sim.Drift, owner []int, nodes []*shardNode) (perShard []*sim.Drift, cross []sim.Handover) {
	perShard = make([]*sim.Drift, len(nodes))
	shardDrift := func(k int) *sim.Drift {
		if perShard[k] == nil {
			perShard[k] = &sim.Drift{}
		}
		return perShard[k]
	}
	for _, o := range d.Outages {
		k := owner[o.Station]
		lo := o
		lo.Station = nodes[k].localOf[o.Station]
		sd := shardDrift(k)
		sd.Outages = append(sd.Outages, lo)
	}
	for _, h := range d.Handovers {
		from, to := owner[h.From], owner[h.To]
		if from != to {
			cross = append(cross, h)
			continue
		}
		lh := h
		lh.From = nodes[from].localOf[h.From]
		lh.To = nodes[from].localOf[h.To]
		sd := shardDrift(from)
		sd.Handovers = append(sd.Handovers, lh)
	}
	sort.SliceStable(cross, func(i, j int) bool { return cross[i].Slot < cross[j].Slot })
	return perShard, cross
}

// applyCrossHandoversLocked fires every cross-partition handover due at
// the current slot, before the shards tick: each pending request at the
// From station is extracted from its owning shard and re-submitted at
// the To station's shard with its deadline shrunk by the time already
// waited — the same two-phase handoff migration uses, so the request
// keeps its global id and no budget is gained or lost by the move. A
// single engine re-points such requests in place with their arrival
// clock intact; shrinking the deadline by the elapsed wait leaves the
// re-homed request the identical remaining budget, which is what keeps
// decision dumps parity-comparable across shard counts
// (TestClusterHandoverAcrossPartition pins this).
func (c *Cluster) applyCrossHandoversLocked() {
	for c.crossCur < len(c.crossHandovers) && c.crossHandovers[c.crossCur].Slot <= c.slot {
		h := c.crossHandovers[c.crossCur]
		c.crossCur++
		if h.Slot < c.slot {
			continue // stale: the cluster restored past this slot
		}
		src := c.nodes[c.owner[h.From]]
		dst := c.nodes[c.owner[h.To]]
		if !src.eng.Alive() || !dst.eng.Alive() {
			continue
		}
		fromLocal, ok := src.localOf[h.From]
		if !ok {
			continue
		}
		// Ring residue must be visible: a request batch-submitted just
		// before this tick hands over in a single engine (its loop drains
		// the ring before the slot's drift transitions fire).
		if err := src.eng.Flush(); err != nil {
			c.cfg.Logf("cluster: handover %d->%d flush: %v", h.From, h.To, err)
		}
		snap, err := src.eng.Snapshot()
		if err != nil {
			c.cfg.Logf("cluster: handover %d->%d snapshot: %v", h.From, h.To, err)
			continue
		}
		// Snapshot order is not deterministic; extraction order must be
		// (it fixes the target shard's submission order).
		var exts []uint64
		for _, cr := range snap.Requests {
			if !cr.Running && cr.Spec.AccessStation == fromLocal {
				exts = append(exts, cr.ExternalID)
			}
		}
		sort.Slice(exts, func(i, j int) bool { return exts[i] < exts[j] })
		for _, ext := range exts {
			spec, arrival, err := src.eng.Extract(ext)
			if err != nil {
				continue // settled between Snapshot and Extract
			}
			waited := c.slot - arrival
			if waited < 0 {
				waited = 0
			}
			g, hasG := c.router.globalOf(src.idx, ext)
			spec.AccessStation = h.To
			spec.DeadlineMS = shrinkDeadline(spec, waited, c.cfg.SlotLengthMS)
			if spec.DeadlineMS <= 0 {
				// Out of budget: expire where it waited, as it would have
				// in a single engine.
				spec.AccessStation = h.From
				spec.DeadlineMS = c.cfg.SlotLengthMS / 2
				if rext, _, rerr := src.eng.Submit(c.localSpec(src.idx, spec, nil)); rerr == nil && hasG {
					c.router.rebind(g, src.idx, rext, false)
				}
				continue
			}
			next, _, err := dst.eng.Submit(c.localSpec(dst.idx, spec, nil))
			if err != nil {
				// Compensate: back to the source under its old station so
				// the request is never lost mid-handover.
				spec.AccessStation = h.From
				if rext, _, rerr := src.eng.Submit(c.localSpec(src.idx, spec, nil)); rerr == nil && hasG {
					c.router.rebind(g, src.idx, rext, false)
				} else if rerr != nil {
					c.cfg.Logf("cluster: handover %d->%d lost request %d (target: %v, source: %v)",
						h.From, h.To, ext, err, rerr)
				}
				continue
			}
			if hasG {
				c.router.rebind(g, dst.idx, next, false)
			}
			src.migratedOut.Add(1)
			dst.migratedIn.Add(1)
		}
	}
}
