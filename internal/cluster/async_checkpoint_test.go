package cluster_test

// The async-checkpoint contract: taking the disk half of a checkpoint
// off the cluster clock must be invisible in the bytes (async and sync
// runs of the same schedule write identical generations), survivable
// (a crash between snapshot extraction and the manifest rename restores
// the previous generation intact), and actually off the clock (a tick
// that coincides with a checkpoint must not stall behind the write).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"mecoffload/internal/cluster"
	"mecoffload/internal/oracle"
	"mecoffload/internal/serve"
)

// runCheckpointSchedule drives one deterministic schedule — one
// single-outcome request per island per slot, manual ticks — against a
// checkpointing cluster and returns after Stop. With async set it waits
// out the writer after every tick so no generation is dropped and the
// generation numbering matches the synchronous run exactly.
func runCheckpointSchedule(t *testing.T, manifest string, async bool) {
	t.Helper()
	const islands, per, slots = 4, 2, 16
	net := islandNetwork(t, islands, per)
	cfg := parityConfig(net, 2)
	cfg.CheckpointPath = manifest
	cfg.CheckpointEvery = 4
	cfg.AsyncCheckpoint = async
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for s := 0; s < slots; s++ {
		for isl := 0; isl < islands; isl++ {
			if _, _, err := c.Submit(serve.RequestSpec{
				AccessStation: isl * per,
				DurationSlots: 2,
				Outcomes:      []serve.OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: float64(100 + (s*37+isl)%400)}},
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		if async {
			c.WaitCheckpoints()
		}
	}
	if d := c.CheckpointsDropped(); d != 0 {
		t.Fatalf("dropped %d generations despite waiting out every write", d)
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	<-c.Done()
}

// TestAsyncCheckpointByteEquivalence is the tentpole's correctness
// oracle: the same deterministic schedule, checkpointed once through the
// background writer and once synchronously, must leave byte-for-byte
// identical checkpoint directories — same manifest, same generation
// numbering, same shard snapshot bytes. Run under -race in CI's
// cluster-parity job.
func TestAsyncCheckpointByteEquivalence(t *testing.T) {
	dirAsync, dirSync := t.TempDir(), t.TempDir()
	runCheckpointSchedule(t, filepath.Join(dirAsync, "cluster.json"), true)
	runCheckpointSchedule(t, filepath.Join(dirSync, "cluster.json"), false)
	if err := oracle.DiffCheckpointDirs(dirAsync, dirSync); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncCheckpointCrashRestore simulates the worst crash window the
// async split opens: snapshots for generation G+1 were extracted and
// some shard files even reached disk, but the process died before the
// manifest rename. Restore must come back from generation G with every
// request's ownership intact, ignore the orphaned G+1 files and stray
// temp files, and keep scheduling.
func TestAsyncCheckpointCrashRestore(t *testing.T) {
	const islands, per = 4, 2
	net := islandNetwork(t, islands, per)
	dir := t.TempDir()
	manifest := filepath.Join(dir, "cluster.json")

	cfg := parityConfig(net, 2)
	cfg.CheckpointPath = manifest
	cfg.CheckpointEvery = 2
	cfg.AsyncCheckpoint = true
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	// A mix of running streams (submitted, then ticked into service) and
	// still-pending requests, so the restore has both to prove.
	var ids []uint64
	for isl := 0; isl < islands; isl++ {
		id, _, err := c.Submit(serve.RequestSpec{
			AccessStation: isl * per,
			DurationSlots: 6,
			Outcomes:      []serve.OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: 500}},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 2; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	for isl := 0; isl < islands; isl++ {
		id, _, err := c.Submit(serve.RequestSpec{
			AccessStation: isl * per,
			DurationSlots: 2,
			Outcomes:      []serve.OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: 300}},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	states := map[uint64]string{}
	for _, id := range ids {
		rec, ok, err := c.Status(id)
		if err != nil || !ok {
			t.Fatalf("pre-stop status %d: ok=%v err=%v", id, ok, err)
		}
		states[id] = string(rec.State)
	}
	if err := c.Stop(); err != nil { // final synchronous manifest: generation G
		t.Fatal(err)
	}
	<-c.Done()

	var man cluster.Manifest
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	gen := man.Generation

	// Forge the crash residue of an unfinished generation G+1: every
	// shard snapshot written, manifest rename never reached, plus a
	// stray manifest temp file.
	for _, sh := range man.Shards {
		src, err := os.ReadFile(filepath.Join(dir, sh.File))
		if err != nil {
			t.Fatal(err)
		}
		forged := fmt.Sprintf("cluster.json.shard%d.gen%d", sh.Index, gen+1)
		if err := os.WriteFile(filepath.Join(dir, forged), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "cluster.json.tmp123"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	rcfg := parityConfig(net, 4) // reshard on the way back for good measure
	rcfg.CheckpointPath = manifest
	rcfg.AsyncCheckpoint = true
	rc, err := cluster.New(rcfg)
	if err != nil {
		t.Fatalf("restore after simulated crash: %v", err)
	}
	rc.Start()
	for _, id := range ids {
		rec, ok, err := rc.Status(id)
		if err != nil || !ok {
			t.Fatalf("restored status %d: ok=%v err=%v", id, ok, err)
		}
		if string(rec.State) != states[id] {
			t.Fatalf("request %d restored in state %q, want %q (previous generation)", id, rec.State, states[id])
		}
		if rec.ID != id {
			t.Fatalf("request %d restored with id %d: stream ownership broken", id, rec.ID)
		}
	}
	// The restored cluster must still schedule its way to quiescence.
	for i := 0; i < 16; i++ {
		if err := rc.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		rec, ok, err := rc.Status(id)
		if err != nil || !ok {
			t.Fatalf("post-tick status %d: ok=%v err=%v", id, ok, err)
		}
		if rec.State == serve.StatePending {
			t.Fatalf("request %d still pending after 16 restored slots", id)
		}
	}
	if err := rc.Stop(); err != nil {
		t.Fatal(err)
	}
	<-rc.Done()
}

// TestTickPauseBoundWhileCheckpointing is the stop-the-world guard the
// tentpole exists for: with async checkpoints firing every 4 slots on a
// loaded cluster, no tick may stall far beyond the median — the old
// synchronous path froze every shard for the full encode+fsync+rename.
// The 10ms absolute floor keeps the 5× ratio from tripping on scheduler
// noise when the median lands in the tens of microseconds (this test
// runs under -race in CI, which inflates everything but the ratio).
func TestTickPauseBoundWhileCheckpointing(t *testing.T) {
	const islands, per, slots = 4, 2, 64
	net := islandNetwork(t, islands, per)
	dir := t.TempDir()
	cfg := parityConfig(net, 2)
	cfg.CheckpointPath = filepath.Join(dir, "cluster.json")
	cfg.CheckpointEvery = 4
	cfg.AsyncCheckpoint = true
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer func() { _ = c.Stop() }()

	lat := make([]time.Duration, 0, slots)
	for s := 0; s < slots; s++ {
		for isl := 0; isl < islands; isl++ {
			if _, _, err := c.Submit(serve.RequestSpec{
				AccessStation: isl * per,
				DurationSlots: 2,
				Outcomes:      []serve.OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: 400}},
			}); err != nil {
				t.Fatal(err)
			}
		}
		start := time.Now()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	median, max := lat[len(lat)/2], lat[len(lat)-1]
	bound := 5 * median
	if floor := 10 * time.Millisecond; bound < floor {
		bound = floor
	}
	if max > bound {
		t.Fatalf("max tick pause %v exceeds bound %v (median %v): checkpointing is back on the clock path", max, bound, median)
	}
}
