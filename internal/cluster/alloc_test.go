package cluster

import (
	"testing"

	"mecoffload/internal/graph"
	"mecoffload/internal/mec"
	"mecoffload/internal/serve"
	"mecoffload/internal/topology"
)

// allocTestNetwork builds two disconnected 2-station islands — a
// partition-aligned topology whose candidate sets never span shards, so
// routing always takes the fast path.
func allocTestNetwork(t *testing.T) *mec.Network {
	t.Helper()
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {2, 3}} {
		if _, err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	nodes := make([]topology.Node, 4)
	for i := range nodes {
		nodes[i] = topology.Node{X: float64(i%2) * 0.01, Y: float64(i/2) * 0.1}
	}
	net, err := mec.NewNetwork(mec.NetworkConfig{
		Stations: []mec.BaseStation{
			{CapacityMHz: 3200, SpeedFactor: 1},
			{CapacityMHz: 3200, SpeedFactor: 1},
			{CapacityMHz: 3200, SpeedFactor: 1},
			{CapacityMHz: 3200, SpeedFactor: 1},
		},
		Topo: &topology.Topology{Graph: g, Nodes: nodes},
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestRouteFastPathAllocFree pins the router's ingest floor: routing a
// spec whose candidates stay island-confined — the overwhelmingly common
// case — performs zero allocations once the candidate scratch pool is
// warm. (AllocsPerRun may race a GC clearing the sync.Pool; the assert
// tolerates the occasional refill but not a per-call allocation.)
func TestRouteFastPathAllocFree(t *testing.T) {
	net := allocTestNetwork(t)
	rt := newRouter(net, []int{0, 0, 1, 1}, mec.DefaultSlotLengthMS, 2, 0)
	spec := serve.RequestSpec{
		AccessStation: 2,
		DurationSlots: 6,
		Outcomes:      []serve.OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: 300}},
	}
	allocs := testing.AllocsPerRun(500, func() {
		shard, span, err := rt.route(spec)
		if err != nil || shard != 1 || span != nil {
			t.Fatalf("route = (%d, %v, %v), want (1, nil, nil)", shard, span, err)
		}
	})
	if allocs > 0.05 {
		t.Fatalf("route fast path allocates %v per run, want ~0", allocs)
	}
}

// TestTakeReportsDoubleBuffer pins the reward-aggregation floor: the
// observe/takeReports cycle of a shard node reuses the same two report
// buffers in steady state, so the lockstep tick's fan-in allocates
// nothing once both buffers have grown to the slot's report count.
func TestTakeReportsDoubleBuffer(t *testing.T) {
	nd := &shardNode{}
	ext := []uint64{1, 2, 3}
	// Warm both halves of the double buffer.
	for i := 0; i < 2; i++ {
		nd.observe(i, ext, 10)
		nd.takeReports()
	}
	allocs := testing.AllocsPerRun(500, func() {
		nd.observe(7, ext, 10)
		r := nd.takeReports()
		if len(r) != 1 || r[0].reward != 10 {
			t.Fatalf("reports = %+v", r)
		}
	})
	if allocs != 0 {
		t.Fatalf("observe/takeReports cycle allocates %v per run, want 0", allocs)
	}
	// The handed-out slice must survive until the next takeReports even
	// while new reports accumulate.
	nd.observe(8, ext, 1)
	r := nd.takeReports()
	nd.observe(9, ext, 2)
	if len(r) != 1 || r[0].slot != 8 {
		t.Fatalf("stale buffer overwritten: %+v", r)
	}
}

// TestIdleTickEpochAllocFree pins the epoch machine's floor: one cluster
// tick — the epoch broadcast to the persistent shard workers, the fused
// feedback delivery, the report fan-in, and the SlotObserver callback —
// allocates NOTHING on an idle slot, across all goroutines. The old
// per-tick `go func` spawn plus the `sort.Slice` closure made this
// impossible; a regression here means something put per-slot garbage
// back on the clock path. (AllocsPerRun may race a GC clearing the
// engines' reply-channel pools; the assert tolerates the occasional
// refill but not a per-tick allocation.)
func TestIdleTickEpochAllocFree(t *testing.T) {
	net := allocTestNetwork(t)
	c, err := New(Config{
		Net:            net,
		Shards:         2,
		Seed:           5,
		MigrationEvery: -1,
		SlotObserver: func(slot int, admitted []uint64, reward float64) {
			if len(admitted) != 0 || reward != 0 {
				t.Errorf("idle slot %d reported admitted=%v reward=%v", slot, admitted, reward)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer func() { _ = c.Stop() }()
	// Warm every reusable buffer: reply-channel pools, the epoch
	// WaitGroup, report double-buffers, the admitted scratch.
	for i := 0; i < 8; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.05 {
		t.Fatalf("idle cluster tick allocates %v per run, want 0", allocs)
	}
}

// TestSubmitBatchScratchReuse pins the batched-ingest floor indirectly:
// the pooled batchScratch must produce identical results across reuse,
// including shards skipped on the second batch (stale results must not
// leak into the Shed aggregate).
func TestSubmitBatchScratchReuse(t *testing.T) {
	net := allocTestNetwork(t)
	c, err := New(Config{
		Net:            net,
		Shards:         2,
		Seed:           5,
		MigrationEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer func() { _ = c.Stop() }()

	mk := func(station int) serve.RequestSpec {
		return serve.RequestSpec{
			AccessStation: station,
			DurationSlots: 2,
			Outcomes:      []serve.OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: 100}},
		}
	}
	// First batch touches both shards and sizes the scratch.
	res, err := c.SubmitBatch([]serve.RequestSpec{mk(0), mk(2), mk(1), mk(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 4 || res.Shed != 0 {
		t.Fatalf("batch 1: %+v", res)
	}
	// Second batch touches only shard 0: shard 1's stale scratch entries
	// must not contribute ids or sheds.
	res, err = c.SubmitBatch([]serve.RequestSpec{mk(0), mk(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 2 || res.Shed != 0 {
		t.Fatalf("batch 2: %+v", res)
	}
	// Global ids stay dense submission ordinals across scratch reuse.
	for i, id := range res.IDs {
		if id != uint64(4+i) {
			t.Fatalf("batch 2 ids = %v, want [4 5]", res.IDs)
		}
	}
}
