package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"mecoffload/internal/serve"
)

// Handler builds the cluster's HTTP API. The surface mirrors the
// single-engine serve.Handler — same endpoints, same status codes, same
// 503 overload contract (the jittered Retry-After comes from shard 0's
// seeded stream) — so clients cannot tell one engine from N shards,
// except on /metrics, which exposes every gauge per shard under an
// explicit shard label:
//
//	POST /v1/requests        submit one RequestSpec, 202 + {id, slot, state}
//	POST /v1/requests:batch  NDJSON bulk submit, routed across shards
//	GET  /v1/requests/{id}   status by global id, wherever the request lives now
//	GET  /metrics            per-shard labeled Prometheus exposition
//	GET  /healthz            200 while any shard is alive
//	GET  /readyz             200 while every shard ticks and accepts intake
func Handler(c *Cluster) http.Handler {
	mux := http.NewServeMux()
	front := c.nodes[0].eng // overload contract + jitter stream

	type submitResponse struct {
		ID    uint64 `json:"id"`
		Slot  int    `json:"slot"`
		State string `json:"state"`
	}
	type errorResponse struct {
		Error string `json:"error"`
	}
	type batchResponse struct {
		Accepted int               `json:"accepted"`
		Shed     int               `json:"shed"`
		IDs      []uint64          `json:"ids,omitempty"`
		Errors   []serve.LineError `json:"errors,omitempty"`
	}

	mux.HandleFunc("POST /v1/requests", func(w http.ResponseWriter, r *http.Request) {
		var spec serve.RequestSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
			return
		}
		id, slot, err := c.Submit(spec)
		switch {
		case err == nil:
			writeJSON(w, http.StatusAccepted, submitResponse{ID: id, Slot: slot, State: serve.StatePending})
		case errors.Is(err, serve.ErrDraining), errors.Is(err, serve.ErrStopped):
			front.WriteUnavailable(w, err)
		case errors.Is(err, serve.ErrBadSpec):
			writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		}
	})

	mux.HandleFunc("POST /v1/requests:batch", func(w http.ResponseWriter, r *http.Request) {
		body := http.MaxBytesReader(w, r.Body, 32<<20)
		lines, lineErrs, err := serve.DecodeBatch(body, 0, 0)
		if err != nil {
			status := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.Is(err, serve.ErrBatchTooLarge) || errors.As(err, &tooBig) {
				status = http.StatusRequestEntityTooLarge
			}
			writeJSON(w, status, errorResponse{Error: "bad batch: " + err.Error()})
			return
		}
		specs := make([]serve.RequestSpec, 0, len(lines))
		for _, ln := range lines {
			if verr := c.ValidateSpec(ln.Spec); verr != nil {
				lineErrs = append(lineErrs, serve.LineError{Line: ln.Line, Error: verr.Error()})
				continue
			}
			specs = append(specs, ln.Spec)
		}
		if len(specs) == 0 && len(lineErrs) == 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch"})
			return
		}
		res, err := c.SubmitBatch(specs)
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, batchResponse{
				Accepted: len(res.IDs),
				Shed:     res.Shed,
				IDs:      res.IDs,
				Errors:   lineErrs,
			})
		case errors.Is(err, serve.ErrSaturated), errors.Is(err, serve.ErrDraining), errors.Is(err, serve.ErrStopped):
			front.WriteUnavailable(w, err)
		default:
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		}
	})

	mux.HandleFunc("GET /v1/requests/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request id"})
			return
		}
		rec, ok, err := c.Status(id)
		if err != nil {
			front.WriteUnavailable(w, err)
			return
		}
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown request"})
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = c.WriteProm(w)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if c.Alive() {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ok\n"))
			return
		}
		http.Error(w, "cluster stopped", http.StatusServiceUnavailable)
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if c.Ready() {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ready\n"))
			return
		}
		http.Error(w, "not ready", http.StatusServiceUnavailable)
	})

	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteProm renders the cluster's Prometheus exposition: every family
// carries a shard label so operators see per-shard slot latency, queue
// depth, and migration flow, plus cluster-level routing counters.
func (c *Cluster) WriteProm(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP arserved_cluster_shards Configured scheduler shards.\n")
	p("# TYPE arserved_cluster_shards gauge\n")
	p("arserved_cluster_shards %d\n", len(c.nodes))

	p("# HELP arserved_cluster_slot The cluster clock's next scheduling slot.\n")
	p("# TYPE arserved_cluster_slot gauge\n")
	p("arserved_cluster_slot %d\n", c.Slot())

	rs := c.RouterStats()
	p("# HELP arserved_cluster_routed_total Requests routed, by path.\n")
	p("# TYPE arserved_cluster_routed_total counter\n")
	p("arserved_cluster_routed_total{path=\"fast\"} %d\n", rs.FastPath)
	p("arserved_cluster_routed_total{path=\"spanning\"} %d\n", rs.Spanning)
	p("arserved_cluster_routed_total{path=\"no_candidate\"} %d\n", rs.NoCandidate)

	p("# HELP arserved_cluster_checkpoints_total Cluster manifests written.\n")
	p("# TYPE arserved_cluster_checkpoints_total counter\n")
	p("arserved_cluster_checkpoints_total %d\n", c.checkpoints.Load())

	p("# HELP arserved_cluster_checkpoints_dropped_total Async snapshot generations superseded before reaching disk.\n")
	p("# TYPE arserved_cluster_checkpoints_dropped_total counter\n")
	p("arserved_cluster_checkpoints_dropped_total %d\n", c.CheckpointsDropped())

	p("# HELP arserved_cluster_requests_total Per-shard requests by terminal result.\n")
	p("# TYPE arserved_cluster_requests_total counter\n")
	for k, nd := range c.nodes {
		m := nd.eng.Metrics()
		p("arserved_cluster_requests_total{shard=\"%d\",result=\"submitted\"} %d\n", k, m.Submitted.Load())
		p("arserved_cluster_requests_total{shard=\"%d\",result=\"admitted\"} %d\n", k, m.Admitted.Load())
		p("arserved_cluster_requests_total{shard=\"%d\",result=\"served\"} %d\n", k, m.Served.Load())
		p("arserved_cluster_requests_total{shard=\"%d\",result=\"evicted\"} %d\n", k, m.Evicted.Load())
		p("arserved_cluster_requests_total{shard=\"%d\",result=\"expired\"} %d\n", k, m.Expired.Load())
		p("arserved_cluster_requests_total{shard=\"%d\",result=\"shed\"} %d\n", k, m.Shed.Load())
	}

	p("# HELP arserved_cluster_reward_dollars_total Per-shard realized reward.\n")
	p("# TYPE arserved_cluster_reward_dollars_total counter\n")
	for k, nd := range c.nodes {
		p("arserved_cluster_reward_dollars_total{shard=\"%d\"} %g\n", k, nd.eng.Metrics().Reward.Load())
	}

	p("# HELP arserved_cluster_pending_requests Per-shard admission-queue depth.\n")
	p("# TYPE arserved_cluster_pending_requests gauge\n")
	for k, nd := range c.nodes {
		p("arserved_cluster_pending_requests{shard=\"%d\"} %d\n", k, nd.eng.Metrics().PendingDepth.Load())
	}

	p("# HELP arserved_cluster_intake_depth Per-shard ingest ring plus overflow-stage depth.\n")
	p("# TYPE arserved_cluster_intake_depth gauge\n")
	for k, nd := range c.nodes {
		m := nd.eng.Metrics()
		p("arserved_cluster_intake_depth{shard=\"%d\"} %d\n", k, m.IntakeDepth.Load()+nd.eng.StagedDepth())
	}

	p("# HELP arserved_cluster_active_streams Per-shard streams occupying service instances.\n")
	p("# TYPE arserved_cluster_active_streams gauge\n")
	for k, nd := range c.nodes {
		p("arserved_cluster_active_streams{shard=\"%d\"} %d\n", k, nd.eng.Metrics().ActiveStreams.Load())
	}

	p("# HELP arserved_cluster_migrations_total Committed cross-shard handoffs per shard and direction.\n")
	p("# TYPE arserved_cluster_migrations_total counter\n")
	in, out := c.MigratedCounts()
	for k := range c.nodes {
		p("arserved_cluster_migrations_total{shard=\"%d\",direction=\"in\"} %d\n", k, in[k])
		p("arserved_cluster_migrations_total{shard=\"%d\",direction=\"out\"} %d\n", k, out[k])
	}

	p("# HELP arserved_cluster_slot_duration_ms Per-shard scheduling latency of one slot.\n")
	p("# TYPE arserved_cluster_slot_duration_ms histogram\n")
	for k, nd := range c.nodes {
		h := nd.eng.Metrics().SlotDurationSnapshot()
		for i, b := range h.Bounds {
			p("arserved_cluster_slot_duration_ms_bucket{shard=\"%d\",le=\"%g\"} %d\n", k, b, h.Counts[i])
		}
		p("arserved_cluster_slot_duration_ms_bucket{shard=\"%d\",le=\"+Inf\"} %d\n", k, h.Count)
		p("arserved_cluster_slot_duration_ms_sum{shard=\"%d\"} %g\n", k, h.Sum)
		p("arserved_cluster_slot_duration_ms_count{shard=\"%d\"} %d\n", k, h.Count)
	}

	p("# HELP arserved_cluster_intake_latency_ms Per-shard batched-ingest handoff latency.\n")
	p("# TYPE arserved_cluster_intake_latency_ms histogram\n")
	for k, nd := range c.nodes {
		h := nd.eng.Metrics().IntakeLatencySnapshot()
		for i, b := range h.Bounds {
			p("arserved_cluster_intake_latency_ms_bucket{shard=\"%d\",le=\"%g\"} %d\n", k, b, h.Counts[i])
		}
		p("arserved_cluster_intake_latency_ms_bucket{shard=\"%d\",le=\"+Inf\"} %d\n", k, h.Count)
		p("arserved_cluster_intake_latency_ms_sum{shard=\"%d\"} %g\n", k, h.Sum)
		p("arserved_cluster_intake_latency_ms_count{shard=\"%d\"} %d\n", k, h.Count)
	}

	p("# HELP arserved_cluster_station_used_mhz Realized MHz per global station, from its owning shard.\n")
	p("# TYPE arserved_cluster_station_used_mhz gauge\n")
	for k, nd := range c.nodes {
		for _, g := range nd.eng.Gauges() {
			p("arserved_cluster_station_used_mhz{shard=\"%d\",station=\"%d\"} %g\n", k, nd.stations[g.Station], g.UsedMHz)
		}
	}
	return err
}
