package cluster

import (
	"fmt"
	"sync"

	"mecoffload/internal/mec"
	"mecoffload/internal/serve"
)

// location is one routed request's current position in the cluster.
type location struct {
	shard int
	ext   uint64
	// cands are the request's global candidate stations, kept only when
	// they span more than one shard — the migration sweep's worklist.
	cands []int
}

// router owns the global id space and the request→shard map. Routing is
// pure (partition + candidate rule); the table exists so status lookups
// and migrations can find a request after the fact.
type router struct {
	net    *mec.Network
	owner  []int // global station -> shard
	slotMS float64

	mu         sync.RWMutex
	nextGlobal uint64
	table      map[uint64]*location
	ext2global []map[uint64]uint64 // per shard: shard ext -> global id
	order      []uint64            // bind order, for bounded eviction
	maxRouted  int

	// Routing counters (mu-guarded; read via RouterStats).
	fastPath    uint64
	spanning    uint64
	noCandidate uint64

	// candBufs pools candidate-list scratch across concurrent route
	// calls: the list is computed, inspected, and (unless it spans
	// shards, the rare case that copies) discarded, so the fast path
	// never touches the allocator.
	candBufs sync.Pool
}

func newRouter(net *mec.Network, owner []int, slotMS float64, shards, maxRouted int) *router {
	if maxRouted <= 0 {
		maxRouted = 1 << 20
	}
	rt := &router{
		net:        net,
		owner:      owner,
		slotMS:     slotMS,
		table:      make(map[uint64]*location),
		ext2global: make([]map[uint64]uint64, shards),
		maxRouted:  maxRouted,
	}
	for k := range rt.ext2global {
		rt.ext2global[k] = make(map[uint64]uint64)
	}
	return rt
}

// route decides the owning shard for a spec: the shard owning every
// candidate station (fast path), the shard owning the smallest
// candidate station when candidates span partitions (the deterministic
// home-shard rule), or the access station's owner when partitioning
// leaves no candidate at all (the request will expire there, exactly as
// it would in a single engine). The returned candidate list is in
// global station ids, nil unless it spans shards.
func (rt *router) route(spec serve.RequestSpec) (shard int, spanCands []int, err error) {
	net := rt.net
	if spec.AccessStation < 0 || spec.AccessStation >= net.NumStations() {
		return 0, nil, fmt.Errorf("%w: access station %d out of [0, %d)",
			serve.ErrBadSpec, spec.AccessStation, net.NumStations())
	}
	bufp, _ := rt.candBufs.Get().(*[]int)
	if bufp == nil {
		bufp = new([]int)
	}
	cands, err := serve.SpecCandidates(net, spec, (*bufp)[:0])
	*bufp = cands[:0:cap(cands)]
	defer rt.candBufs.Put(bufp)
	if err != nil {
		return 0, nil, err
	}
	if len(cands) == 0 {
		rt.mu.Lock()
		rt.noCandidate++
		rt.mu.Unlock()
		return rt.owner[spec.AccessStation], nil, nil
	}
	home := rt.owner[cands[0]]
	multi := false
	for _, i := range cands[1:] {
		if rt.owner[i] != home {
			multi = true
			break
		}
	}
	rt.mu.Lock()
	if multi {
		rt.spanning++
	} else {
		rt.fastPath++
	}
	rt.mu.Unlock()
	if !multi {
		return home, nil, nil
	}
	// Spanning candidates are retained in the routing table; copy them
	// out of the pooled scratch.
	return home, append([]int(nil), cands...), nil
}

// bind allocates the next global id for a freshly accepted request and
// records its location. Global ids are dense submission ordinals, which
// makes cluster decision dumps directly comparable across shard counts.
func (rt *router) bind(shard int, ext uint64, spanCands []int) uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	g := rt.nextGlobal
	rt.nextGlobal++
	rt.insertLocked(g, shard, ext, spanCands)
	return g
}

// bindAt re-registers a known global id during a manifest restore.
func (rt *router) bindAt(g uint64, shard int, ext uint64, spanCands []int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if g >= rt.nextGlobal {
		rt.nextGlobal = g + 1
	}
	rt.insertLocked(g, shard, ext, spanCands)
}

func (rt *router) insertLocked(g uint64, shard int, ext uint64, spanCands []int) {
	rt.table[g] = &location{shard: shard, ext: ext, cands: spanCands}
	rt.ext2global[shard][ext] = g
	rt.order = append(rt.order, g)
	for len(rt.table) > rt.maxRouted && len(rt.order) > 0 {
		old := rt.order[0]
		rt.order = rt.order[1:]
		if loc, ok := rt.table[old]; ok {
			delete(rt.ext2global[loc.shard], loc.ext)
			delete(rt.table, old)
		}
	}
}

// rebind moves a migrated request to its new shard and local id.
func (rt *router) rebind(g uint64, shard int, ext uint64, keepSpanning bool) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	loc, ok := rt.table[g]
	if !ok {
		return false
	}
	delete(rt.ext2global[loc.shard], loc.ext)
	loc.shard, loc.ext = shard, ext
	if !keepSpanning {
		loc.cands = nil
	}
	rt.ext2global[shard][ext] = g
	return true
}

// lookup resolves a global id to its current shard and local id.
func (rt *router) lookup(g uint64) (shard int, ext uint64, ok bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	loc, ok := rt.table[g]
	if !ok {
		return 0, 0, false
	}
	return loc.shard, loc.ext, true
}

// globalOf resolves a shard-local id back to its global id.
func (rt *router) globalOf(shard int, ext uint64) (uint64, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	g, ok := rt.ext2global[shard][ext]
	return g, ok
}

// appendGlobals resolves a batch of one shard's local ids under a single
// read-lock acquisition, appending the hits to dst. The tick loop's
// reward aggregation uses it instead of a per-id globalOf round-trip.
func (rt *router) appendGlobals(dst []uint64, shard int, exts []uint64) []uint64 {
	rt.mu.RLock()
	m := rt.ext2global[shard]
	for _, ext := range exts {
		if g, ok := m[ext]; ok {
			dst = append(dst, g)
		}
	}
	rt.mu.RUnlock()
	return dst
}

// spanCandidate is one migration-sweep worklist entry.
type spanCandidate struct {
	global uint64
	shard  int
	ext    uint64
	cands  []int
}

// spanningRequests snapshots every routed request whose candidate set
// spans shards, in ascending global-id order.
func (rt *router) spanningRequests() []spanCandidate {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	var out []spanCandidate
	for g, loc := range rt.table {
		if len(loc.cands) > 0 {
			out = append(out, spanCandidate{global: g, shard: loc.shard, ext: loc.ext, cands: loc.cands})
		}
	}
	sortSpan(out)
	return out
}

func sortSpan(s []spanCandidate) {
	for j := 1; j < len(s); j++ {
		for k := j; k > 0 && s[k].global < s[k-1].global; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}

// RouterStats is the routing counter snapshot exposed on /metrics.
type RouterStats struct {
	FastPath    uint64
	Spanning    uint64
	NoCandidate uint64
	Routed      uint64
}

func (rt *router) stats() RouterStats {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return RouterStats{
		FastPath:    rt.fastPath,
		Spanning:    rt.spanning,
		NoCandidate: rt.noCandidate,
		Routed:      rt.nextGlobal,
	}
}
