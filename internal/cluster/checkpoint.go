package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mecoffload/internal/bandit"
	"mecoffload/internal/serve"
	"mecoffload/internal/sim"
)

// ManifestVersion is the cluster manifest format version.
const ManifestVersion = 1

// ErrNoManifest reports a missing manifest file (a fresh start).
var ErrNoManifest = errors.New("cluster: no manifest")

// manifestIDPair records one live request's identity: its shard-local
// external id, its cluster-global id, and — for spanning requests — its
// global candidate stations.
type manifestIDPair struct {
	Ext      uint64 `json:"ext"`
	Global   uint64 `json:"global"`
	Spanning []int  `json:"spanning,omitempty"`
}

// manifestShard describes one shard's snapshot: which global stations
// it owned, the snapshot file (relative to the manifest), and the id
// table translating its local ids back to cluster ids.
type manifestShard struct {
	Index    int              `json:"index"`
	Stations []int            `json:"stations"`
	File     string           `json:"file"`
	IDs      []manifestIDPair `json:"ids,omitempty"`
}

// Manifest composes per-shard serve checkpoints into one recoverable
// cluster state. The manifest is written atomically AFTER every shard
// file, so a crash mid-checkpoint leaves the previous generation fully
// intact; restore is shard-count-agnostic because all state is recorded
// in global station and request ids.
type Manifest struct {
	Version      int             `json:"version"`
	Generation   uint64          `json:"generation"`
	Slot         int             `json:"slot"`
	Scheduler    string          `json:"scheduler"`
	NextGlobalID uint64          `json:"nextGlobalId"`
	Shards       []manifestShard `json:"shards"`
}

// bindings snapshots one shard's live id table for the manifest.
func (rt *router) bindings(shard int) []manifestIDPair {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]manifestIDPair, 0, len(rt.ext2global[shard]))
	for ext, g := range rt.ext2global[shard] {
		pair := manifestIDPair{Ext: ext, Global: g}
		if loc, ok := rt.table[g]; ok {
			pair.Spanning = loc.cands
		}
		out = append(out, pair)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Global < out[b].Global })
	return out
}

func (rt *router) setNextGlobal(n uint64) {
	rt.mu.Lock()
	if n > rt.nextGlobal {
		rt.nextGlobal = n
	}
	rt.mu.Unlock()
}

// shardFile names one shard's snapshot for one manifest generation.
func shardFile(base string, shard int, gen uint64) string {
	return fmt.Sprintf("%s.shard%d.gen%d", base, shard, gen)
}

// checkpointLocked takes a full cluster checkpoint, split into a cheap
// extraction under the clock lock and a disk job on the single-flight
// writer. Extraction is one epSnapshot epoch — every shard flushes its
// batched-ingest residue and hands back a copy-on-write snapshot — plus
// the manifest skeleton; JSON encoding, temp files, fsync, the
// generation-stamped shard renames, the manifest rename, and the
// previous generation's sweep all run inside the writer job. With
// syncWrite (Stop's final manifest, and every checkpoint when
// AsyncCheckpoint is off) the call blocks until the generation is
// durable; otherwise it returns right after extraction and the write
// proceeds in the background, latest generation winning if the clock
// laps the disk. The manifest is still written atomically AFTER every
// shard file, so a crash mid-write leaves the previous generation fully
// intact. Dead (fully drained) shards contribute an empty snapshot so
// restore still sees every partition.
func (c *Cluster) checkpointLocked(syncWrite bool) error {
	if c.clockStopped {
		return serve.ErrStopped
	}
	// Settle pending fused feedback first so the captured bandit state
	// is post-feedback — byte-identical to the pre-fusion schedule's.
	if err := c.settleFeedbackLocked(); err != nil {
		return err
	}
	c.epoch(epochMsg{op: epSnapshot})
	base := c.cfg.CheckpointPath
	gen := c.manifestGen + 1
	man := &Manifest{
		Version:    ManifestVersion,
		Generation: gen,
		Slot:       c.slot,
		Scheduler:  c.nodes[0].eng.SchedulerName(),
	}
	snaps := make([]*serve.Checkpoint, len(c.nodes))
	files := make([]string, len(c.nodes))
	for k, nd := range c.nodes {
		if nd.snapErr != nil {
			return fmt.Errorf("cluster: snapshotting shard %d: %w", k, nd.snapErr)
		}
		ck := nd.snap
		nd.snap = nil
		if ck == nil {
			ck = &serve.Checkpoint{
				Version:   serve.CheckpointVersion,
				Slot:      c.slot,
				Scheduler: man.Scheduler,
			}
		}
		snaps[k] = ck
		files[k] = shardFile(base, k, gen)
		man.Shards = append(man.Shards, manifestShard{
			Index:    k,
			Stations: append([]int(nil), nd.stations...),
			File:     filepath.Base(files[k]),
			IDs:      c.router.bindings(k),
		})
	}
	man.NextGlobalID = c.router.stats().Routed
	// The generation number is consumed at extraction: if this write is
	// later superseded or fails, the numbering simply skips — restore
	// only ever follows the manifest, never guesses file names.
	c.manifestGen = gen
	job := func() error {
		for k, ck := range snaps {
			if err := serve.WriteCheckpoint(files[k], ck); err != nil {
				return fmt.Errorf("cluster: writing shard %d snapshot: %w", k, err)
			}
		}
		if err := writeManifest(base, man); err != nil {
			return err
		}
		for _, old := range c.diskPrev {
			os.Remove(old) // best-effort sweep of the superseded generation
		}
		c.diskPrev = files
		c.checkpoints.Add(1)
		return nil
	}
	if syncWrite {
		return c.ckw.SubmitWait(job)
	}
	return c.ckw.Submit(job)
}

// writeManifest persists the manifest atomically: temp file in the same
// directory, fsync, rename.
func writeManifest(path string, man *Manifest) error {
	data, err := json.MarshalIndent(man, "", " ")
	if err != nil {
		return fmt.Errorf("cluster: encoding manifest: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("cluster: manifest temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: writing manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: syncing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cluster: closing manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cluster: publishing manifest: %w", err)
	}
	return nil
}

// loadManifest reads a manifest and every shard snapshot it names.
func loadManifest(path string) (*Manifest, []*serve.Checkpoint, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, ErrNoManifest
	}
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: reading manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, nil, fmt.Errorf("cluster: decoding manifest %s: %w", path, err)
	}
	if man.Version != ManifestVersion {
		return nil, nil, fmt.Errorf("cluster: manifest %s has version %d, want %d", path, man.Version, ManifestVersion)
	}
	dir := filepath.Dir(path)
	snaps := make([]*serve.Checkpoint, len(man.Shards))
	for i, sh := range man.Shards {
		ck, err := serve.LoadCheckpoint(filepath.Join(dir, sh.File))
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: shard %d snapshot: %w", sh.Index, err)
		}
		snaps[i] = ck
	}
	return &man, snaps, nil
}

// globalRequest is one live request lifted into global id space during
// restore composition.
type globalRequest struct {
	global   uint64
	arrival  int
	spec     serve.RequestSpec // AccessStation in global ids
	spanning []int
	running  *sim.RunningSnapshot // stations in global ids; nil if pending
}

// composeRestore merges the manifest's per-shard snapshots into one
// global request set and re-partitions it onto the CURRENT shard
// layout, which may differ from the one that wrote the manifest.
// Pending requests re-route through the normal candidate rule; running
// streams must land on a shard owning every station they hold shares on
// — a stream split by the new partition is a loud error, not a silent
// drop. The learner state is cloned into every new shard (each shard's
// bandit continues from the global reward history) and lifetime totals
// accumulate onto shard 0 so cluster-wide counters survive resharding.
func (c *Cluster) composeRestore(man *Manifest, snaps []*serve.Checkpoint) ([]*serve.Checkpoint, error) {
	var merged []globalRequest
	var banditSnap *bandit.LipschitzSnapshot
	var totals serve.Totals
	for si, sh := range man.Shards {
		ck := snaps[si]
		addTotals(&totals, ck.Totals)
		if banditSnap == nil && ck.Bandit != nil {
			banditSnap = ck.Bandit
		}
		ext2pair := make(map[uint64]manifestIDPair, len(sh.IDs))
		for _, p := range sh.IDs {
			ext2pair[p.Ext] = p
		}
		runOf := make(map[uint64]sim.RunningSnapshot, len(ck.Running))
		for _, rs := range ck.Running {
			runOf[uint64(rs.Request)] = rs
		}
		for _, cr := range ck.Requests {
			pair, ok := ext2pair[cr.ExternalID]
			if !ok {
				return nil, fmt.Errorf("shard %d request ext=%d missing from manifest id table", sh.Index, cr.ExternalID)
			}
			if cr.Spec.AccessStation < 0 || cr.Spec.AccessStation >= len(sh.Stations) {
				return nil, fmt.Errorf("shard %d request ext=%d access station %d outside its partition", sh.Index, cr.ExternalID, cr.Spec.AccessStation)
			}
			gr := globalRequest{
				global:   pair.Global,
				arrival:  cr.ArrivalSlot,
				spec:     cr.Spec,
				spanning: pair.Spanning,
			}
			gr.spec.AccessStation = sh.Stations[cr.Spec.AccessStation]
			if cr.Running {
				rs, ok := runOf[cr.ExternalID]
				if !ok {
					return nil, fmt.Errorf("shard %d request ext=%d marked running but has no stream snapshot", sh.Index, cr.ExternalID)
				}
				grs, err := globalizeStream(rs, sh.Stations)
				if err != nil {
					return nil, fmt.Errorf("shard %d request ext=%d: %w", sh.Index, cr.ExternalID, err)
				}
				gr.running = grs
			}
			merged = append(merged, gr)
		}
	}
	sort.Slice(merged, func(a, b int) bool { return merged[a].global < merged[b].global })

	out := make([]*serve.Checkpoint, len(c.parts))
	for k := range out {
		out[k] = &serve.Checkpoint{
			Version:   serve.CheckpointVersion,
			Slot:      man.Slot,
			Scheduler: man.Scheduler,
		}
	}
	nextExt := make([]uint64, len(c.parts))
	for _, gr := range merged {
		var shard int
		if gr.running != nil {
			s, err := c.streamOwner(gr.running)
			if err != nil {
				return nil, fmt.Errorf("running stream for global id %d: %w", gr.global, err)
			}
			shard = s
		} else {
			s, spanCands, err := c.router.route(gr.spec)
			if err != nil {
				return nil, fmt.Errorf("re-routing global id %d: %w", gr.global, err)
			}
			shard, gr.spanning = s, spanCands
		}
		ext := nextExt[shard]
		nextExt[shard]++
		spec := gr.spec
		spec.AccessStation = c.localIndex(shard, spec.AccessStation, gr.spanning)
		cr := serve.CheckpointRequest{
			ExternalID:  ext,
			ArrivalSlot: gr.arrival,
			Spec:        spec,
		}
		if gr.running != nil {
			cr.Running = true
			ls, err := localizeStream(gr.running, shard, c.owner, c.parts)
			if err != nil {
				return nil, fmt.Errorf("running stream for global id %d: %w", gr.global, err)
			}
			ls.Request = int(ext)
			out[shard].Running = append(out[shard].Running, *ls)
		}
		out[shard].Requests = append(out[shard].Requests, cr)
		c.router.bindAt(gr.global, shard, ext, gr.spanning)
	}
	for k := range out {
		out[k].NextExternalID = nextExt[k]
		out[k].Bandit = banditSnap.Clone()
	}
	addTotals(&out[0].Totals, totals)
	c.router.setNextGlobal(man.NextGlobalID)
	return out, nil
}

// localIndex maps a global station onto a shard-local one, applying the
// same nearest-owned-candidate stand-in rule as live submission.
func (c *Cluster) localIndex(shard, globalStation int, spanCands []int) int {
	part := c.parts[shard]
	for l, g := range part {
		if g == globalStation {
			return l
		}
	}
	var owned []int
	for _, st := range spanCands {
		if c.owner[st] == shard {
			owned = append(owned, st)
		}
	}
	if len(owned) == 0 {
		owned = part
	}
	nearest, _ := c.net.NearestStation(globalStation, owned)
	for l, g := range part {
		if g == nearest {
			return l
		}
	}
	return 0
}

// streamOwner finds the unique new shard owning every station a running
// stream touches.
func (c *Cluster) streamOwner(rs *sim.RunningSnapshot) (int, error) {
	shard := -1
	check := func(st int) error {
		if st < 0 || st >= len(c.owner) {
			return fmt.Errorf("station %d out of range", st)
		}
		if shard < 0 {
			shard = c.owner[st]
		} else if c.owner[st] != shard {
			return fmt.Errorf("stream spans shards %d and %d (stations %v / procStation %d); "+
				"restore with a partition that keeps its stations together", shard, c.owner[st], keysOf(rs.Shares), rs.ProcStation)
		}
		return nil
	}
	for st := range rs.Shares {
		if err := check(st); err != nil {
			return 0, err
		}
	}
	for st := range rs.ExpShares {
		if err := check(st); err != nil {
			return 0, err
		}
	}
	if err := check(rs.ProcStation); err != nil {
		return 0, err
	}
	if shard < 0 {
		return 0, fmt.Errorf("stream holds no stations")
	}
	return shard, nil
}

// globalizeStream lifts a shard-local running snapshot into global
// station ids.
func globalizeStream(rs sim.RunningSnapshot, stations []int) (*sim.RunningSnapshot, error) {
	mapSt := func(l int) (int, error) {
		if l < 0 || l >= len(stations) {
			return 0, fmt.Errorf("stream station %d outside its partition", l)
		}
		return stations[l], nil
	}
	out := rs
	out.Shares = make(map[int]float64, len(rs.Shares))
	for l, v := range rs.Shares {
		g, err := mapSt(l)
		if err != nil {
			return nil, err
		}
		out.Shares[g] = v
	}
	if rs.ExpShares != nil {
		out.ExpShares = make(map[int]float64, len(rs.ExpShares))
		for l, v := range rs.ExpShares {
			g, err := mapSt(l)
			if err != nil {
				return nil, err
			}
			out.ExpShares[g] = v
		}
	}
	g, err := mapSt(rs.ProcStation)
	if err != nil {
		return nil, err
	}
	out.ProcStation = g
	return &out, nil
}

// localizeStream maps a global-station stream onto one new shard's
// local ids; streamOwner already proved every station lands there.
func localizeStream(rs *sim.RunningSnapshot, shard int, owner []int, parts [][]int) (*sim.RunningSnapshot, error) {
	localOf := make(map[int]int, len(parts[shard]))
	for l, g := range parts[shard] {
		localOf[g] = l
	}
	mapSt := func(g int) (int, error) {
		l, ok := localOf[g]
		if !ok {
			return 0, fmt.Errorf("station %d not owned by shard %d", g, shard)
		}
		return l, nil
	}
	out := *rs
	out.Shares = make(map[int]float64, len(rs.Shares))
	for g, v := range rs.Shares {
		l, err := mapSt(g)
		if err != nil {
			return nil, err
		}
		out.Shares[l] = v
	}
	if rs.ExpShares != nil {
		out.ExpShares = make(map[int]float64, len(rs.ExpShares))
		for g, v := range rs.ExpShares {
			l, err := mapSt(g)
			if err != nil {
				return nil, err
			}
			out.ExpShares[l] = v
		}
	}
	l, err := mapSt(rs.ProcStation)
	if err != nil {
		return nil, err
	}
	out.ProcStation = l
	return &out, nil
}

func addTotals(dst *serve.Totals, src serve.Totals) {
	dst.Submitted += src.Submitted
	dst.Rejected += src.Rejected
	dst.Admitted += src.Admitted
	dst.Served += src.Served
	dst.Evicted += src.Evicted
	dst.Expired += src.Expired
	dst.Departed += src.Departed
	dst.Ticks += src.Ticks
	dst.Reward += src.Reward
	dst.Batches += src.Batches
	dst.BatchReqs += src.BatchReqs
	dst.Shed += src.Shed
	dst.Saturated += src.Saturated
}

func keysOf(m map[int]float64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
