package cluster_test

// The cluster correctness contract: sharding must be invisible in the
// decision stream. These tests replay island traces — topologies whose
// backhaul components match the partition, so every request's candidate
// set lives inside one shard — through 1-, 2-, and 8-shard clusters and
// require decision-for-decision parity (oracle.DiffCluster), plus the
// composable-checkpoint contract: a manifest written at N shards must
// restore at M shards without losing a request.
//
// Parity traces are built so scheduling is rng-independent: explicit
// single-outcome specs (realization has one support point) and
// RoundingDenominator 1 with one request per slot (the per-component LP
// has an integral vertex, so the rounding draw cannot change the
// landing). That leaves the couplings the cluster must actually
// preserve — pending sets, free capacity, threshold-bandit feedback —
// as the only parity surface.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mecoffload/internal/cluster"
	"mecoffload/internal/graph"
	"mecoffload/internal/mec"
	"mecoffload/internal/oracle"
	"mecoffload/internal/serve"
	"mecoffload/internal/sim"
	"mecoffload/internal/topology"
)

// islandNetwork builds `islands` disconnected backhaul components of
// `per` stations each (a chain inside every island), 3200 MHz per
// station. Disconnected components have infinite backhaul delay between
// them, so every request's candidate set stays inside its island — the
// partition-respecting topology the parity contract is stated for.
func islandNetwork(t testing.TB, islands, per int) *mec.Network {
	t.Helper()
	n := islands * per
	g := graph.New(n)
	nodes := make([]topology.Node, n)
	stations := make([]mec.BaseStation, n)
	for i := 0; i < n; i++ {
		nodes[i] = topology.Node{X: float64(i%per) * 0.01, Y: float64(i/per) * 0.1}
		stations[i] = mec.BaseStation{CapacityMHz: 3200, SpeedFactor: 1}
	}
	for isl := 0; isl < islands; isl++ {
		base := isl * per
		for k := 1; k < per; k++ {
			if _, err := g.AddEdge(base+k-1, base+k, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	net, err := mec.NewNetwork(mec.NetworkConfig{
		Stations: stations,
		Topo:     &topology.Topology{Graph: g, Nodes: nodes},
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// islandTrace emits an NDJSON trace activating one island per slot in
// rotation: slot t submits one explicit single-outcome request at
// island (t mod islands) with an integer reward, then `tail` idle slots
// drain the last streams. Integer rewards make cross-shard float sums
// exact; DurationSlots 2 with rotation period `islands` leaves every
// island idle when its turn comes back.
func islandTrace(islands, per, slots int) string {
	var b strings.Builder
	for t := 0; t < slots; t++ {
		isl := t % islands
		reward := 100 + (t*37)%400
		fmt.Fprintf(&b, `{"accessStation":%d,"durationSlots":2,"outcomes":[{"rateMBs":40,"prob":1,"reward":%d}]}`+"\n",
			isl*per, reward)
		b.WriteString("\n")
	}
	for i := 0; i < 8; i++ {
		b.WriteString("\n")
	}
	return b.String()
}

func parityConfig(net *mec.Network, shards int) cluster.Config {
	return cluster.Config{
		Net:           net,
		Shards:        shards,
		SchedulerName: "dynamicrr",
		DynamicRR:     sim.DynamicRROptions{RoundingDenominator: 1},
		Seed:          7,
	}
}

// TestClusterParity is the tentpole proof: 1-shard vs N-shard clusters
// replay the same island trace decision-for-decision identically, for
// N = 2 and N = 8 (one island per shard). Run under -race in CI's
// cluster-parity job.
func TestClusterParity(t *testing.T) {
	const islands, per = 8, 2
	net := islandNetwork(t, islands, per)
	trace := islandTrace(islands, per, 64)
	err := oracle.DiffCluster(func(shards int) (*oracle.ReplayDump, error) {
		return cluster.ReplayDump(parityConfig(net, shards), trace)
	}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
}

// TestPartitionComponents pins the partition rule: whole components,
// ascending min-station order, greedy capacity balance; contiguous
// chunks only when shards outnumber components.
func TestPartitionComponents(t *testing.T) {
	net := islandNetwork(t, 4, 3)
	parts, err := cluster.Partition(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("got %d parts, want 2", len(parts))
	}
	// Equal capacities: greedy assignment alternates islands 0,1,2,3
	// over the two shards.
	want := [][]int{{0, 1, 2, 6, 7, 8}, {3, 4, 5, 9, 10, 11}}
	for k := range want {
		if fmt.Sprint(parts[k]) != fmt.Sprint(want[k]) {
			t.Fatalf("part %d = %v, want %v", k, parts[k], want[k])
		}
	}
	// No island may be split when components >= shards.
	for _, parts := range [][][]int{parts} {
		for _, p := range parts {
			for _, st := range p {
				island := st / 3
				base := island * 3
				found := 0
				for _, q := range p {
					if q >= base && q < base+3 {
						found++
					}
				}
				if found != 3 {
					t.Fatalf("island %d split across shards: part %v", island, p)
				}
			}
		}
	}
	// More shards than components: contiguous chunks, every part
	// non-empty.
	parts, err = cluster.Partition(net, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 5 {
		t.Fatalf("got %d parts, want 5", len(parts))
	}
	seen := 0
	for _, p := range parts {
		if len(p) == 0 {
			t.Fatalf("empty part in %v", parts)
		}
		seen += len(p)
	}
	if seen != 12 {
		t.Fatalf("parts cover %d stations, want 12", seen)
	}
}

// TestClusterCheckpointReshard proves the manifest is shard-count
// agnostic: a 2-shard cluster checkpoints mid-trace with live pending
// requests, then 1- and 4-shard clusters restore from the same manifest
// without losing a single live request.
func TestClusterCheckpointReshard(t *testing.T) {
	const islands, per = 4, 2
	net := islandNetwork(t, islands, per)
	dir := t.TempDir()
	manifest := filepath.Join(dir, "cluster.json")

	cfg := parityConfig(net, 2)
	cfg.CheckpointPath = manifest
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()

	// Submit one request per island but never tick: every request is
	// still pending when the manifest is written.
	var ids []uint64
	for isl := 0; isl < islands; isl++ {
		id, _, err := c.Submit(serve.RequestSpec{
			AccessStation: isl * per,
			DurationSlots: 2,
			Outcomes:      []serve.OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: 500}},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := c.Stop(); err != nil { // writes the final manifest
		t.Fatal(err)
	}
	<-c.Done()
	if _, err := os.Stat(manifest); err != nil {
		t.Fatalf("manifest not written: %v", err)
	}

	for _, shards := range []int{1, 4} {
		// Each restore gets its own copy of the original manifest (and
		// shard snapshots): restored clusters write their OWN manifest on
		// Stop, which must not clobber the source of the next restore.
		rdir := t.TempDir()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(rdir, ent.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		rcfg := parityConfig(net, shards)
		rcfg.CheckpointPath = filepath.Join(rdir, filepath.Base(manifest))
		rc, err := cluster.New(rcfg)
		if err != nil {
			t.Fatalf("restore at %d shards: %v", shards, err)
		}
		rc.Start()
		for _, id := range ids {
			rec, ok, err := rc.Status(id)
			if err != nil {
				t.Fatalf("restore at %d shards: status %d: %v", shards, id, err)
			}
			if !ok {
				t.Fatalf("restore at %d shards: request %d lost", shards, id)
			}
			if rec.State != serve.StatePending {
				t.Fatalf("restore at %d shards: request %d in state %q, want pending", shards, id, rec.State)
			}
			if rec.ID != id {
				t.Fatalf("restore at %d shards: record id %d, want %d", shards, rec.ID, id)
			}
		}
		// The restored cluster must still schedule: tick until the
		// restored requests settle.
		for i := 0; i < 12; i++ {
			if err := rc.Tick(); err != nil {
				t.Fatalf("restore at %d shards: tick: %v", shards, err)
			}
		}
		settled := 0
		for _, id := range ids {
			rec, ok, err := rc.Status(id)
			if err != nil || !ok {
				t.Fatalf("restore at %d shards: post-tick status %d: ok=%v err=%v", shards, id, ok, err)
			}
			if rec.State != serve.StatePending {
				settled++
			}
		}
		if settled != len(ids) {
			t.Fatalf("restore at %d shards: only %d/%d restored requests settled", shards, settled, len(ids))
		}
		if err := rc.Stop(); err != nil {
			t.Fatalf("restore at %d shards: stop: %v", shards, err)
		}
		<-rc.Done()
	}
}

// TestClusterHandlerMetrics drives the HTTP surface end to end and
// checks the per-shard labeled exposition.
func TestClusterHandlerMetrics(t *testing.T) {
	net := islandNetwork(t, 4, 2)
	c, err := cluster.New(parityConfig(net, 4))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer func() { _ = c.Stop() }()

	if _, _, err := c.Submit(serve.RequestSpec{
		AccessStation: 0,
		Outcomes:      []serve.OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: 400}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := c.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		`arserved_cluster_shards 4`,
		`arserved_cluster_requests_total{shard="0",result="submitted"} 1`,
		`arserved_cluster_requests_total{shard="3",result="submitted"} 0`,
		`arserved_cluster_slot_duration_ms_count{shard="2"}`,
		`arserved_cluster_migrations_total{shard="1",direction="in"} 0`,
		`arserved_cluster_routed_total{path="fast"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("exposition missing %q:\n%s", want, got)
		}
	}
}
