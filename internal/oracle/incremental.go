package oracle

import (
	"errors"
	"fmt"
	"reflect"

	"mecoffload/internal/core"
	"mecoffload/internal/mec"
	"mecoffload/internal/rnd"
	"mecoffload/internal/sim"
	"mecoffload/internal/workload"
)

// ErrNoCleanHits reports that an incremental diff passed decision parity
// but the trace never produced a clean component, so the cache went
// unexercised. The fuzz harness tolerates it (arbitrary inputs need not
// repeat a component); the curated tests treat it as a failure.
var ErrNoCleanHits = errors.New("oracle: incremental run had no clean hits")

// incRun executes one DynamicRR simulation with the given solve-mode
// options and returns the result, the per-slot reward vector, and the
// scheduler (for its incremental counters).
func incRun(n *mec.Network, reqs []*mec.Request, seed int64, cfg sim.Config, dopts sim.DynamicRROptions) (*core.Result, []float64, *sim.DynamicRR, error) {
	sched, err := sim.NewDynamicRR(dopts)
	if err != nil {
		return nil, nil, nil, err
	}
	eng, err := sim.NewEngine(n, workload.Clone(reqs), rnd.New(seed, "engine"), cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	eng.SetStepChecker(EngineChecker())
	res, err := eng.Run(sched)
	if err != nil {
		return nil, nil, nil, err
	}
	return res, eng.SlotRewards(), sched, nil
}

// diffRuns compares two runs decision for decision.
func diffRuns(aName, bName string, a, b *core.Result, aRew, bRew []float64) error {
	if a.TotalReward != b.TotalReward {
		return fmt.Errorf("oracle: %s total reward %v, %s %v", aName, a.TotalReward, bName, b.TotalReward)
	}
	if !reflect.DeepEqual(aRew, bRew) {
		return fmt.Errorf("oracle: slot reward vectors diverge between %s and %s", aName, bName)
	}
	for j := range a.Decisions {
		if !reflect.DeepEqual(a.Decisions[j], b.Decisions[j]) {
			return fmt.Errorf("oracle: decision %d diverges between %s and %s: %+v vs %+v",
				j, aName, bName, a.Decisions[j], b.Decisions[j])
		}
	}
	return nil
}

// DiffIncrementalFull is the incremental scheduler's correctness oracle:
// it runs DynamicRR over the same workload twice — once re-solving every
// component every slot (the StableLP baseline), once with the
// dirty-component cache reusing clean components' decisions — and
// requires the two runs to agree decision for decision: identical
// admission tables, identical per-slot reward vectors, identical totals.
// The engine's invariant checker stays installed in both runs. It also
// demands the incremental run actually exercised the cache (CleanHits >
// 0): a trace where every component is always dirty proves nothing.
//
// dopts carries the scheduler configuration both runs share (workers,
// rounding denominator, bandit shape); its Incremental/LocalRatio/
// StableLP fields are overridden per run.
func DiffIncrementalFull(n *mec.Network, reqs []*mec.Request, seed int64, cfg sim.Config, dopts sim.DynamicRROptions) error {
	fullOpts := dopts
	fullOpts.Incremental, fullOpts.LocalRatio, fullOpts.StableLP = false, false, true
	full, fullRew, _, err := incRun(n, reqs, seed, cfg, fullOpts)
	if err != nil {
		return fmt.Errorf("oracle: full re-solve run: %w", err)
	}
	incOpts := dopts
	incOpts.Incremental, incOpts.LocalRatio, incOpts.StableLP = true, false, false
	inc, incRew, sched, err := incRun(n, reqs, seed, cfg, incOpts)
	if err != nil {
		return fmt.Errorf("oracle: incremental run: %w", err)
	}
	if err := diffRuns("full", "incremental", full, inc, fullRew, incRew); err != nil {
		return err
	}
	if st := sched.IncStats(); st.CleanHits == 0 {
		return fmt.Errorf("%w (%d dirty solves): the trace does not exercise the cache", ErrNoCleanHits, st.DirtySolves)
	}
	return nil
}

// DiffLocalRatioLP is the fast path's correctness oracle: it runs
// DynamicRR over the same workload twice — once through the warm-started
// LP-PT on every component (StableLP baseline), once with the local-ratio
// certification admitting components combinatorially — and requires
// decision-for-decision agreement.
//
// The trace must be *all-certified*: every component the fast-path run
// examines must pass certification (FastFallback == 0, FastPath > 0), and
// the function errors otherwise. The restriction is load-bearing, not
// cosmetic: a certified component provably has a unique LP optimum, so
// parity there is unconditional, but a certified solve stores no basis
// into the warm cache — after the first fallback the two runs' warm
// caches can differ, and a later degenerate LP may legitimately return
// different optimal vertices. Parity of certified decisions is exactly
// the contract the fast path claims ("only fire when it provably matches
// LP-PT"), and this oracle pins it end to end.
//
// Both runs use RoundingDenominator 1 so admission is deterministic;
// fractional rounding would leave residual passes whose halved slot grid
// rarely certifies.
func DiffLocalRatioLP(n *mec.Network, reqs []*mec.Request, seed int64, cfg sim.Config) error {
	base := sim.DynamicRROptions{RoundingDenominator: 1, StableLP: true}
	lp, lpRew, _, err := incRun(n, reqs, seed, cfg, base)
	if err != nil {
		return fmt.Errorf("oracle: LP-PT run: %w", err)
	}
	fast := base
	fast.LocalRatio = true
	lr, lrRew, sched, err := incRun(n, reqs, seed, cfg, fast)
	if err != nil {
		return fmt.Errorf("oracle: local-ratio run: %w", err)
	}
	st := sched.IncStats()
	if st.FastFallback != 0 {
		return fmt.Errorf("oracle: trace is not all-certified: %d components fell back to the LP (fastPath=%d)", st.FastFallback, st.FastPath)
	}
	if st.FastPath == 0 {
		return fmt.Errorf("oracle: local-ratio run certified no component: the trace does not exercise the fast path")
	}
	return diffRuns("lp-pt", "local-ratio", lp, lr, lpRew, lrRew)
}
