package oracle

import (
	"sort"

	"mecoffload/internal/core"
	"mecoffload/internal/mec"
	"mecoffload/internal/sim"
)

// NaiveAdmissionSet re-derives DynamicRR's step-10/11 candidate set
// independently of the scheduler: pending requests sorted by increasing
// expected data rate (ties on id), truncated to n_max = floor(free/C^th)
// so the average free-capacity share per admitted request stays at least
// C^th. The scheduler's admitted set must be a subset. A non-positive
// threshold disables the rule (every pending request is a candidate).
func NaiveAdmissionSet(reqs []*mec.Request, pending []int, freeMHz, cth float64) map[int]bool {
	allowed := make(map[int]bool, len(pending))
	if cth <= 0 {
		for _, j := range pending {
			allowed[j] = true
		}
		return allowed
	}
	nMax := int(freeMHz / cth)
	if nMax <= 0 {
		return allowed
	}
	sorted := append([]int(nil), pending...)
	sort.Slice(sorted, func(a, b int) bool {
		ra, rb := reqs[sorted[a]].ExpectedRate(), reqs[sorted[b]].ExpectedRate()
		if ra != rb {
			return ra < rb
		}
		return sorted[a] < sorted[b]
	})
	if nMax < len(sorted) {
		sorted = sorted[:nMax]
	}
	for _, j := range sorted {
		allowed[j] = true
	}
	return allowed
}

// NaiveScheduler is the trusted single-slot reference scheduler: first
// come first served, each request consolidated on its access station iff
// the station's expected load keeps room for the request's expected
// demand and the deadline is still reachable. No migration, no
// distribution, no learning — a dozen lines whose correctness is obvious
// by inspection, used to validate the engine's settlement and ledger
// plumbing independently of the production schedulers.
type NaiveScheduler struct{}

var _ sim.Scheduler = NaiveScheduler{}

// Name implements sim.Scheduler.
func (NaiveScheduler) Name() string { return "Naive" }

// UncertaintyAware implements sim.Scheduler: the naive reference plans on
// expected demand and lets the engine settle realized rates.
func (NaiveScheduler) UncertaintyAware() bool { return false }

// Schedule implements sim.Scheduler.
func (NaiveScheduler) Schedule(eng *sim.Engine, res *core.Result, t int, pending []int) ([]int, error) {
	n := eng.Net()
	load := eng.ExpectedUsed()
	var admitted []int
	for _, j := range pending {
		r := eng.Requests()[j]
		i := r.AccessStation
		wait := t - r.ArrivalSlot
		if !r.DelayFeasible(n, i, wait, eng.SlotLengthMS()) {
			continue
		}
		demand := n.RateToMHz(r.ExpectedRate())
		if load[i]+demand > n.Capacity(i)+capacityTol {
			continue
		}
		load[i] += demand
		d := &res.Decisions[j]
		d.Admitted = true
		d.Station = i
		d.Slot = t
		d.WaitSlots = wait
		d.TaskStations = make([]int, len(r.Tasks))
		for k := range d.TaskStations {
			d.TaskStations[k] = i
		}
		d.LatencyMS = float64(wait)*eng.SlotLengthMS() + r.ServiceDelayMS(n, i)
		admitted = append(admitted, j)
	}
	return admitted, nil
}
