// Package oracle is the correctness backstop for the optimized solver and
// scheduler paths: slow trusted reference implementations (a dense
// textbook simplex, brute-force exact assignment, a naive single-slot
// scheduler), differential runners comparing the production algorithms
// against them, and a runtime invariant checker asserting the per-slot
// conservation laws of the time-slotted model. The invariant checker
// hooks into sim.Engine.Step via EngineChecker (the serving daemon
// enables it with MEC_ORACLE=1); the differential runners back the
// package's test suite, which CI runs both as-is and under the
// oraclemutant build tag (where it must fail — see internal/core's
// fitsWithin).
package oracle

import (
	"fmt"

	"mecoffload/internal/bandit"
	"mecoffload/internal/core"
	"mecoffload/internal/mec"
	"mecoffload/internal/sim"
)

// capacityTol mirrors core's capacity slack: station loads are sums of
// float shares, so comparisons allow this absolute tolerance in MHz.
const capacityTol = 1e-6

// ledgerTol bounds the drift allowed between the engine's incremental
// occupancy ledger and the sum of running-stream shares recomputed from
// scratch. Release clamps tiny float negatives to zero, so the ledger
// drifts by at most a few ULPs per departure.
const ledgerTol = 1e-3

// State is a snapshot of everything the invariant checker inspects. Only
// Net and UsedMHz are mandatory; nil slices skip the related checks.
type State struct {
	// Net is the network whose capacities bound the occupancy ledgers.
	Net *mec.Network
	// UsedMHz is the realized per-station occupancy ledger.
	UsedMHz []float64
	// ExpectedMHz is the expected per-station load of running requests.
	ExpectedMHz []float64
	// Decisions is the result's per-request decision table.
	Decisions []core.Decision
	// Running lists the in-service streams with their ledger shares.
	Running []sim.RunningSnapshot
	// Bandit, when set, is DynamicRR's successive-elimination policy.
	Bandit *bandit.SuccessiveElimination
}

// Check asserts the per-slot conservation laws of Section V's model:
//
//   - every station's realized occupancy lies in [0, C(bs_i)] (up to
//     float tolerance), and the expected ledger is non-negative;
//   - the occupancy ledger equals the sum of the running streams' shares
//     (capacity is neither leaked nor double-counted);
//   - no request runs twice, and every running request's decision says
//     admitted, served, and not evicted;
//   - the bandit's confidence bounds are ordered (LCB ≤ mean ≤ UCB) and
//     at least one arm is still active.
//
// A non-nil error identifies the first violated law.
func Check(s State) error {
	if s.Net == nil {
		return fmt.Errorf("oracle: nil network")
	}
	n := s.Net.NumStations()
	if len(s.UsedMHz) != n {
		return fmt.Errorf("oracle: occupancy ledger has %d stations, network has %d", len(s.UsedMHz), n)
	}
	for i, u := range s.UsedMHz {
		if u < -capacityTol {
			return fmt.Errorf("oracle: station %d occupancy negative (%.6f MHz)", i, u)
		}
		if cap := s.Net.Capacity(i); u > cap+capacityTol {
			return fmt.Errorf("oracle: station %d occupancy %.3f MHz exceeds capacity %.3f MHz", i, u, cap)
		}
	}
	for i, u := range s.ExpectedMHz {
		if u < -capacityTol {
			return fmt.Errorf("oracle: station %d expected load negative (%.6f MHz)", i, u)
		}
	}
	if s.Running != nil {
		seen := make(map[int]bool, len(s.Running))
		fromShares := make([]float64, n)
		for _, ru := range s.Running {
			if seen[ru.Request] {
				return fmt.Errorf("oracle: request %d running twice", ru.Request)
			}
			seen[ru.Request] = true
			for st, mhz := range ru.Shares {
				if st < 0 || st >= n {
					return fmt.Errorf("oracle: request %d holds share on station %d (out of range)", ru.Request, st)
				}
				if mhz < 0 {
					return fmt.Errorf("oracle: request %d holds negative share %.6f MHz on station %d", ru.Request, mhz, st)
				}
				fromShares[st] += mhz
			}
			if s.Decisions != nil {
				if ru.Request < 0 || ru.Request >= len(s.Decisions) {
					return fmt.Errorf("oracle: running request %d outside decision table (%d entries)", ru.Request, len(s.Decisions))
				}
				d := s.Decisions[ru.Request]
				if !d.Admitted || !d.Served || d.Evicted {
					return fmt.Errorf("oracle: running request %d has decision admitted=%v served=%v evicted=%v",
						ru.Request, d.Admitted, d.Served, d.Evicted)
				}
			}
		}
		for i := range fromShares {
			if diff := s.UsedMHz[i] - fromShares[i]; diff > ledgerTol || diff < -ledgerTol {
				return fmt.Errorf("oracle: station %d ledger %.6f MHz but running shares sum to %.6f MHz",
					i, s.UsedMHz[i], fromShares[i])
			}
		}
	}
	if s.Bandit != nil {
		if s.Bandit.NumActive() < 1 {
			return fmt.Errorf("oracle: bandit eliminated every arm")
		}
		best := s.Bandit.BestArm()
		if best < 0 || !s.Bandit.Active(best) {
			return fmt.Errorf("oracle: bandit best arm %d is not active", best)
		}
		for a := 0; a < s.Bandit.NumArms(); a++ {
			lcb, ucb := s.Bandit.Bounds(a)
			m := s.Bandit.Mean(a)
			if !(lcb <= m && m <= ucb) {
				return fmt.Errorf("oracle: bandit arm %d bounds unordered: lcb=%v mean=%v ucb=%v", a, lcb, m, ucb)
			}
		}
	}
	return nil
}

// EngineChecker returns a sim.StepChecker that runs Check against the
// engine after every slot and additionally enforces two scheduler-level
// laws: an uncertainty-aware scheduler's admissions always settle (each
// admitted request ends the slot served or explicitly evicted — aware
// schedulers realize rates during admission, so settlement can never
// surprise them), and DynamicRR's admitted set stays within the C^th
// round-robin share rule re-derived independently by NaiveAdmissionSet.
func EngineChecker() sim.StepChecker {
	return func(e *sim.Engine, res *core.Result, rep sim.SlotReport, info sim.StepInfo) error {
		st := State{
			Net:         e.Net(),
			UsedMHz:     e.Used(),
			ExpectedMHz: e.ExpectedUsed(),
			Running:     e.SnapshotRunning(),
		}
		if res != nil {
			st.Decisions = res.Decisions
		}
		drr, isDRR := info.Sched.(*sim.DynamicRR)
		if isDRR {
			if lip := drr.Bandit(); lip != nil {
				if se, ok := lip.Policy().(*bandit.SuccessiveElimination); ok {
					st.Bandit = se
				}
			}
		}
		if err := Check(st); err != nil {
			return fmt.Errorf("slot %d: %w", rep.Slot, err)
		}
		if err := checkDriftTransitions(e, res, rep); err != nil {
			return err
		}
		if info.Sched != nil && info.Sched.UncertaintyAware() && res != nil {
			for _, j := range rep.Admitted {
				d := res.Decisions[j]
				if !d.Served && !d.Evicted {
					return fmt.Errorf("slot %d: oracle: request %d admitted by aware scheduler %s but neither served nor evicted (capacity discipline broken)",
						rep.Slot, j, info.Sched.Name())
				}
			}
		}
		if isDRR && len(info.Pending) > 0 {
			if cth, ok := drr.LastThreshold(); ok {
				allowed := NaiveAdmissionSet(e.Requests(), info.Pending, info.FreeBeforeMHz, cth)
				for _, j := range rep.Admitted {
					if !allowed[j] {
						return fmt.Errorf("slot %d: oracle: request %d admitted outside the C^th=%.1f MHz share rule", rep.Slot, j, cth)
					}
				}
			}
		}
		return nil
	}
}

// checkDriftTransitions enforces the conservation laws of drift slots:
// an outage-evicted stream is really gone (it no longer runs, holds no
// shares — the ledger law in Check covers the latter — and keeps its
// admission-time served reward), and a handed-over request was pending at
// transition time with a valid destination station (it may well have been
// admitted later in the same slot — handovers fire before scheduling).
// Both lists are empty on stationary runs, making this a no-op.
func checkDriftTransitions(e *sim.Engine, res *core.Result, rep sim.SlotReport) error {
	if len(rep.OutageEvicted) == 0 && len(rep.HandedOver) == 0 {
		return nil
	}
	running := make(map[int]bool)
	for _, ru := range e.SnapshotRunning() {
		running[ru.Request] = true
	}
	for _, j := range rep.OutageEvicted {
		if running[j] {
			return fmt.Errorf("slot %d: oracle: request %d evicted by outage but still running", rep.Slot, j)
		}
		if res != nil && j >= 0 && j < len(res.Decisions) {
			d := res.Decisions[j]
			if !d.Admitted || !d.Served {
				return fmt.Errorf("slot %d: oracle: outage-evicted request %d was never a served stream (admitted=%v served=%v)",
					rep.Slot, j, d.Admitted, d.Served)
			}
		}
	}
	n := e.Net().NumStations()
	for _, j := range rep.HandedOver {
		if j < 0 || j >= len(e.Requests()) {
			return fmt.Errorf("slot %d: oracle: handed-over request %d outside workload", rep.Slot, j)
		}
		if st := e.Requests()[j].AccessStation; st < 0 || st >= n {
			return fmt.Errorf("slot %d: oracle: request %d handed over to station %d (out of range)", rep.Slot, j, st)
		}
	}
	return nil
}

// CheckAdmittedLoad verifies the capacity discipline of an offline
// result: the realized demand shares of every admitted, non-evicted
// request, accumulated per station exactly as core.Evaluate does, must
// not exceed any station's capacity. The production algorithms guard
// every ledger commit with the occupancy test, so this holds by
// construction — unless the test is broken (the oraclemutant build).
func CheckAdmittedLoad(n *mec.Network, reqs []*mec.Request, res *core.Result) error {
	if n == nil || res == nil {
		return fmt.Errorf("oracle: nil network or result")
	}
	load := make([]float64, n.NumStations())
	for j := range res.Decisions {
		d := &res.Decisions[j]
		if !d.Admitted || d.Evicted {
			continue
		}
		r := reqs[j]
		out, err := r.MustRealized()
		if err != nil {
			return fmt.Errorf("oracle: admitted request %d: %w", j, err)
		}
		demand := n.RateToMHz(out.Rate)
		totalWork := 0.0
		for _, task := range r.Tasks {
			totalWork += task.WorkMS
		}
		for k, st := range d.TaskStations {
			frac := 1.0 / float64(len(r.Tasks))
			if totalWork > 0 {
				frac = r.Tasks[k].WorkMS / totalWork
			}
			load[st] += demand * frac
		}
	}
	for i, u := range load {
		if cap := n.Capacity(i); u > cap+capacityTol {
			return fmt.Errorf("oracle: %s admitted %.3f MHz on station %d, capacity %.3f MHz",
				res.Algorithm, u, i, cap)
		}
	}
	return nil
}
