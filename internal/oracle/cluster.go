package oracle

// The cluster differential: a 1-shard and an N-shard cluster replaying
// the same trace must make decision-for-decision identical schedules.
// The sharded cluster partitions stations along connected components of
// the candidate graph, runs one serve.Engine per partition, and feeds
// every shard's bandit the globally aggregated slot reward — so on a
// trace whose candidate components respect the partition, sharding must
// be invisible in the decision stream. DiffCluster is closure-based
// because serve (and thus the cluster layer) imports oracle; the caller
// provides a function that builds a cluster with the given shard count,
// replays the trace, and returns the decision dump in global-id space.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// DiffCluster replays the caller's trace at one shard and at each given
// shard count, and fails on the first decision divergence: a different
// admission set in any slot, a different slot reward, or a different
// accepted-request total. Within one slot the admission order across
// shards is a merge artifact, so both dumps are normalized to ascending
// id order before comparison; rewards are compared exactly (parity
// traces use integer rewards, making float sums order-independent). A
// trivial reference run — nothing submitted or nothing admitted — is an
// error too: a vacuous parity proof proves nothing.
func DiffCluster(run func(shards int) (*ReplayDump, error), shardCounts ...int) error {
	if run == nil {
		return fmt.Errorf("oracle: DiffCluster needs a run function")
	}
	if len(shardCounts) == 0 {
		return fmt.Errorf("oracle: DiffCluster needs at least one shard count")
	}
	ref, err := run(1)
	if err != nil {
		return fmt.Errorf("oracle: cluster shards=1 reference run: %w", err)
	}
	if ref == nil {
		return fmt.Errorf("oracle: cluster shards=1 reference run returned no dump")
	}
	if ref.Submitted == 0 || len(ref.Slots) == 0 {
		return fmt.Errorf("oracle: cluster parity trace is trivial (submitted=%d, admitting slots=%d)",
			ref.Submitted, len(ref.Slots))
	}
	refN := normalizeDump(ref)
	for _, n := range shardCounts {
		if n < 1 {
			return fmt.Errorf("oracle: bad shard count %d", n)
		}
		got, err := run(n)
		if err != nil {
			return fmt.Errorf("oracle: cluster shards=%d run: %w", n, err)
		}
		if got == nil {
			return fmt.Errorf("oracle: cluster shards=%d run returned no dump", n)
		}
		if d := refN.Diff(normalizeDump(got)); d != "" {
			return fmt.Errorf("oracle: cluster shards=1 vs shards=%d diverge: %s", n, d)
		}
	}
	return nil
}

// DiffCheckpointDirs byte-compares two checkpoint directories: the same
// file names on both sides, every file's bytes identical. It is the
// async-checkpoint equivalence oracle — a cluster checkpointing through
// the background writer must leave a directory byte-for-byte equal to a
// synchronous run of the same schedule (manifests record file names
// relative to themselves, so the differing directory paths never leak
// into the bytes). Both directories must be non-empty: a vacuous
// equivalence proves nothing.
func DiffCheckpointDirs(dirA, dirB string) error {
	list := func(dir string) ([]string, error) {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var names []string
		for _, ent := range ents {
			if ent.IsDir() {
				return nil, fmt.Errorf("oracle: unexpected subdirectory %s in checkpoint dir %s", ent.Name(), dir)
			}
			names = append(names, ent.Name())
		}
		sort.Strings(names)
		return names, nil
	}
	namesA, err := list(dirA)
	if err != nil {
		return fmt.Errorf("oracle: reading %s: %w", dirA, err)
	}
	namesB, err := list(dirB)
	if err != nil {
		return fmt.Errorf("oracle: reading %s: %w", dirB, err)
	}
	if len(namesA) == 0 {
		return fmt.Errorf("oracle: checkpoint dir %s is empty (vacuous equivalence)", dirA)
	}
	if fmt.Sprint(namesA) != fmt.Sprint(namesB) {
		return fmt.Errorf("oracle: checkpoint file sets diverge:\n%s: %v\n%s: %v", dirA, namesA, dirB, namesB)
	}
	for _, name := range namesA {
		a, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			return fmt.Errorf("oracle: reading %s: %w", filepath.Join(dirA, name), err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			return fmt.Errorf("oracle: reading %s: %w", filepath.Join(dirB, name), err)
		}
		if !bytes.Equal(a, b) {
			return fmt.Errorf("oracle: checkpoint file %s differs between %s (%d bytes) and %s (%d bytes)",
				name, dirA, len(a), dirB, len(b))
		}
	}
	return nil
}

// normalizeDump clones a dump with each slot's admissions sorted
// ascending, removing the cross-shard merge order as a comparison
// dimension.
func normalizeDump(d *ReplayDump) *ReplayDump {
	out := &ReplayDump{Submitted: d.Submitted, TotalReward: d.TotalReward}
	out.Slots = make([]SlotAdmissions, len(d.Slots))
	for i, s := range d.Slots {
		adm := append([]int(nil), s.Admitted...)
		for j := 1; j < len(adm); j++ {
			for k := j; k > 0 && adm[k] < adm[k-1]; k-- {
				adm[k], adm[k-1] = adm[k-1], adm[k]
			}
		}
		out.Slots[i] = SlotAdmissions{Slot: s.Slot, Admitted: adm, Reward: s.Reward}
	}
	return out
}
