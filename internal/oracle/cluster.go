package oracle

// The cluster differential: a 1-shard and an N-shard cluster replaying
// the same trace must make decision-for-decision identical schedules.
// The sharded cluster partitions stations along connected components of
// the candidate graph, runs one serve.Engine per partition, and feeds
// every shard's bandit the globally aggregated slot reward — so on a
// trace whose candidate components respect the partition, sharding must
// be invisible in the decision stream. DiffCluster is closure-based
// because serve (and thus the cluster layer) imports oracle; the caller
// provides a function that builds a cluster with the given shard count,
// replays the trace, and returns the decision dump in global-id space.

import "fmt"

// DiffCluster replays the caller's trace at one shard and at each given
// shard count, and fails on the first decision divergence: a different
// admission set in any slot, a different slot reward, or a different
// accepted-request total. Within one slot the admission order across
// shards is a merge artifact, so both dumps are normalized to ascending
// id order before comparison; rewards are compared exactly (parity
// traces use integer rewards, making float sums order-independent). A
// trivial reference run — nothing submitted or nothing admitted — is an
// error too: a vacuous parity proof proves nothing.
func DiffCluster(run func(shards int) (*ReplayDump, error), shardCounts ...int) error {
	if run == nil {
		return fmt.Errorf("oracle: DiffCluster needs a run function")
	}
	if len(shardCounts) == 0 {
		return fmt.Errorf("oracle: DiffCluster needs at least one shard count")
	}
	ref, err := run(1)
	if err != nil {
		return fmt.Errorf("oracle: cluster shards=1 reference run: %w", err)
	}
	if ref == nil {
		return fmt.Errorf("oracle: cluster shards=1 reference run returned no dump")
	}
	if ref.Submitted == 0 || len(ref.Slots) == 0 {
		return fmt.Errorf("oracle: cluster parity trace is trivial (submitted=%d, admitting slots=%d)",
			ref.Submitted, len(ref.Slots))
	}
	refN := normalizeDump(ref)
	for _, n := range shardCounts {
		if n < 1 {
			return fmt.Errorf("oracle: bad shard count %d", n)
		}
		got, err := run(n)
		if err != nil {
			return fmt.Errorf("oracle: cluster shards=%d run: %w", n, err)
		}
		if got == nil {
			return fmt.Errorf("oracle: cluster shards=%d run returned no dump", n)
		}
		if d := refN.Diff(normalizeDump(got)); d != "" {
			return fmt.Errorf("oracle: cluster shards=1 vs shards=%d diverge: %s", n, d)
		}
	}
	return nil
}

// normalizeDump clones a dump with each slot's admissions sorted
// ascending, removing the cross-shard merge order as a comparison
// dimension.
func normalizeDump(d *ReplayDump) *ReplayDump {
	out := &ReplayDump{Submitted: d.Submitted, TotalReward: d.TotalReward}
	out.Slots = make([]SlotAdmissions, len(d.Slots))
	for i, s := range d.Slots {
		adm := append([]int(nil), s.Admitted...)
		for j := 1; j < len(adm); j++ {
			for k := j; k > 0 && adm[k] < adm[k-1]; k-- {
				adm[k], adm[k-1] = adm[k-1], adm[k]
			}
		}
		out.Slots[i] = SlotAdmissions{Slot: s.Slot, Admitted: adm, Reward: s.Reward}
	}
	return out
}
