package oracle

import (
	"fmt"
	"reflect"

	"mecoffload/internal/core"
	"mecoffload/internal/dist"
	"mecoffload/internal/mec"
	"mecoffload/internal/rnd"
	"mecoffload/internal/sim"
	"mecoffload/internal/workload"
)

// SlotAdmissions records one slot's admission decisions in a replay.
type SlotAdmissions struct {
	Slot     int     `json:"slot"`
	Admitted []int   `json:"admitted"`
	Reward   float64 `json:"reward"`
}

// ReplayDump is the decision trace of a frame-trace replay: every slot
// that admitted at least one request, in order, plus run totals. Request
// ids are submission ordinals (0 for the first submitted request), which
// both the golden replay and the daemons use as internal ids, so dumps
// from different harnesses are directly comparable.
type ReplayDump struct {
	Submitted   int              `json:"submitted"`
	Slots       []SlotAdmissions `json:"slots"`
	TotalReward float64          `json:"totalReward"`
}

// Equal reports whether two dumps describe bit-for-bit identical runs.
func (d *ReplayDump) Equal(o *ReplayDump) bool {
	return d.Submitted == o.Submitted && d.TotalReward == o.TotalReward &&
		reflect.DeepEqual(d.Slots, o.Slots)
}

// Diff returns a description of the first divergence between two dumps,
// or "" when they are equal.
func (d *ReplayDump) Diff(o *ReplayDump) string {
	if d.Submitted != o.Submitted {
		return fmt.Sprintf("submitted %d vs %d", d.Submitted, o.Submitted)
	}
	for i := 0; i < len(d.Slots) && i < len(o.Slots); i++ {
		a, b := d.Slots[i], o.Slots[i]
		if a.Slot != b.Slot || !reflect.DeepEqual(a.Admitted, b.Admitted) || a.Reward != b.Reward {
			return fmt.Sprintf("slot entry %d: {slot %d admitted %v reward %v} vs {slot %d admitted %v reward %v}",
				i, a.Slot, a.Admitted, a.Reward, b.Slot, b.Admitted, b.Reward)
		}
	}
	if len(d.Slots) != len(o.Slots) {
		return fmt.Sprintf("%d admitting slots vs %d", len(d.Slots), len(o.Slots))
	}
	if d.TotalReward != o.TotalReward {
		return fmt.Sprintf("total reward %v vs %v", d.TotalReward, o.TotalReward)
	}
	return ""
}

// maxReplaySlots caps the drain tail of a golden replay; a correct run
// expires or finishes every request within a few slots of the last
// arrival, so hitting the cap means the model leaked work.
const maxReplaySlots = 1 << 20

// FrameReplay is the trusted reference for the daemons' frame-trace
// replay mode: it derives the same request stream from the trace
// (rnd.New(seed, "replay") for unit rewards, round-robin access
// stations, single-outcome demand pinned to the second's scaled pipeline
// rate, paper-default deadline/hold/pipeline) and drives a bare
// sim.Engine with DynamicRR under rnd.New(seed, "serve"), mirroring
// arserved's runReplay slot for slot — including the drain tail — but
// through none of the daemon's channel, shard, or checkpoint machinery.
// cmd/arsim -replay and cmd/arserved -replay must both reproduce its
// dump exactly. The engine runs with the oracle's invariant checker
// installed.
func FrameReplay(net *mec.Network, tr *workload.FrameTrace, seed int64, slotMS float64, perThirtyFPS int) (*ReplayDump, error) {
	if net == nil || tr == nil {
		return nil, fmt.Errorf("oracle: nil network or trace")
	}
	if slotMS == 0 {
		slotMS = mec.DefaultSlotLengthMS
	}
	planner, err := sim.NewLiveEngine(net, rnd.New(seed, "serve"), slotMS)
	if err != nil {
		return nil, err
	}
	planner.SetStepChecker(EngineChecker())
	sched, err := sim.NewDynamicRR(sim.DynamicRROptions{})
	if err != nil {
		return nil, err
	}
	res := &core.Result{Algorithm: sched.Name()}

	rates := tr.ScaleToRate(workload.DefaultMinRate, workload.DefaultMaxRate)
	slotsPerSecond := int(1000/slotMS + 0.5)
	if slotsPerSecond < 1 {
		slotsPerSecond = 1
	}
	replayRng := rnd.New(seed, "replay")
	dump := &ReplayDump{}
	var pending []int
	slot := 0

	step := func() error {
		var rep sim.SlotReport
		pending, rep, err = planner.Step(sched, res, slot, pending)
		if err != nil {
			return fmt.Errorf("oracle: replay slot %d: %w", slot, err)
		}
		if len(rep.Admitted) > 0 {
			dump.Slots = append(dump.Slots, SlotAdmissions{
				Slot:     slot,
				Admitted: append([]int(nil), rep.Admitted...),
				Reward:   rep.Reward,
			})
		}
		dump.TotalReward += rep.Reward
		slot++
		return nil
	}

	for s, fps := range tr.FPS {
		n := perThirtyFPS * fps / 30
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			unit := workload.DefaultMinUnitReward +
				replayRng.Float64()*(workload.DefaultMaxUnitReward-workload.DefaultMinUnitReward)
			d, err := dist.NewRateReward([]dist.Outcome{{Rate: rates[s], Prob: 1, Reward: unit * rates[s]}})
			if err != nil {
				return nil, fmt.Errorf("oracle: replay second %d: %w", s, err)
			}
			var tasks []mec.Task
			for _, st := range workload.CanonicalPipeline() {
				tasks = append(tasks, mec.Task{Name: st.Name, OutputKb: st.OutputKb, WorkMS: st.BaseWorkMS})
			}
			id := len(planner.Requests())
			r := &mec.Request{
				ID:            id,
				ArrivalSlot:   slot,
				AccessStation: dump.Submitted % net.NumStations(),
				Tasks:         tasks,
				DeadlineMS:    200,
				DurationSlots: 20,
				Dist:          d,
			}
			if err := planner.Append(r); err != nil {
				return nil, fmt.Errorf("oracle: replay second %d: %w", s, err)
			}
			res.Decisions = append(res.Decisions, core.Decision{RequestID: id, Station: -1})
			pending = append(pending, id)
			dump.Submitted++
		}
		for k := 0; k < slotsPerSecond; k++ {
			if err := step(); err != nil {
				return nil, err
			}
		}
	}
	// Drain: keep stepping until every pending request is decided or
	// expired and every admitted stream has departed, exactly like the
	// daemons' post-trace drain loop.
	for len(pending) > 0 || planner.NumRunning() > 0 {
		if slot > maxReplaySlots {
			return nil, fmt.Errorf("oracle: replay drain did not terminate within %d slots", maxReplaySlots)
		}
		if err := step(); err != nil {
			return nil, err
		}
	}
	return dump, nil
}

// RecordReplay is the determinism checker: it runs the same workload
// through a freshly built engine and scheduler twice — cloned requests,
// identical seeds — and requires the two runs' decision tables, rewards,
// and per-slot reward vectors to match bit for bit. Any hidden
// nondeterminism in the solver or scheduler (map iteration leaking into
// decisions, uncontrolled randomness) surfaces as a diff.
func RecordReplay(n *mec.Network, reqs []*mec.Request, seed int64, cfg sim.Config, mk func() (sim.Scheduler, error)) error {
	run := func() (*core.Result, []float64, error) {
		sched, err := mk()
		if err != nil {
			return nil, nil, err
		}
		eng, err := sim.NewEngine(n, workload.Clone(reqs), rnd.New(seed, "engine"), cfg)
		if err != nil {
			return nil, nil, err
		}
		eng.SetStepChecker(EngineChecker())
		res, err := eng.Run(sched)
		if err != nil {
			return nil, nil, err
		}
		return res, eng.SlotRewards(), nil
	}
	resA, rewA, err := run()
	if err != nil {
		return err
	}
	resB, rewB, err := run()
	if err != nil {
		return err
	}
	if resA.TotalReward != resB.TotalReward {
		return fmt.Errorf("oracle: record-replay total reward %v vs %v", resA.TotalReward, resB.TotalReward)
	}
	if !reflect.DeepEqual(rewA, rewB) {
		return fmt.Errorf("oracle: record-replay slot rewards diverge")
	}
	for j := range resA.Decisions {
		if !reflect.DeepEqual(resA.Decisions[j], resB.Decisions[j]) {
			return fmt.Errorf("oracle: record-replay decision %d diverges: %+v vs %+v",
				j, resA.Decisions[j], resB.Decisions[j])
		}
	}
	return nil
}
