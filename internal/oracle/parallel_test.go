package oracle

import (
	"testing"

	"mecoffload/internal/sim"
	"mecoffload/internal/workload"
)

// TestDiffParallelSequentialOnline drives DynamicRR over a congested
// online workload with the per-slot LP solved sequentially and on a
// 4-worker pool, requiring bit-identical decisions. Under the -race CI
// job this also races the worker pool against the warm cache.
func TestDiffParallelSequentialOnline(t *testing.T) {
	n := oracleNet(t, 8, 51)
	reqs := oracleWorkload(t, workload.Config{
		NumRequests:    60,
		NumStations:    8,
		ArrivalHorizon: 30,
	}, 52)
	if err := DiffParallelSequential(n, reqs, 53, sim.Config{Horizon: 50}, 4); err != nil {
		t.Fatal(err)
	}
}

// TestDiffParallelSequentialOffline checks the offline Heu path: the
// decomposed LP's summed component objectives must equal the
// single-worker bound exactly, and every rounding decision must match.
func TestDiffParallelSequentialOffline(t *testing.T) {
	n := oracleNet(t, 8, 61)
	reqs := oracleWorkload(t, workload.Config{
		NumRequests: 80,
		NumStations: 8,
	}, 62)
	if err := DiffParallelSequentialOffline(n, reqs, 63, 4); err != nil {
		t.Fatal(err)
	}
}

// TestDiffParallelSequentialRejectsSerial pins the guard: a "parallel"
// diff against one worker would vacuously pass, so the oracle refuses it.
func TestDiffParallelSequentialRejectsSerial(t *testing.T) {
	n := oracleNet(t, 4, 71)
	reqs := oracleWorkload(t, workload.Config{NumRequests: 5, NumStations: 4}, 72)
	if err := DiffParallelSequential(n, reqs, 73, sim.Config{Horizon: 5}, 1); err == nil {
		t.Fatal("workers=1 diff should be rejected")
	}
	if err := DiffParallelSequentialOffline(n, reqs, 73, 1); err == nil {
		t.Fatal("workers=1 offline diff should be rejected")
	}
}
