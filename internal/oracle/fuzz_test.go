package oracle

import (
	"math"
	"strings"
	"testing"

	"mecoffload/internal/lp"
)

// FuzzOracleLP fuzzes the sparse-vs-dense differential: any parseable LP
// within the screened size and magnitude envelope must drive both solvers
// to the same status and objective. The magnitude cap keeps the dense
// reference's absolute feasibility epsilon meaningful; size caps keep a
// single fuzz execution fast.
func FuzzOracleLP(f *testing.F) {
	seeds := []string{
		"max: 3 x + 2 y\nc1: x + y <= 4\nc2: x + 3 y <= 6\n",
		"min: x\nlo: x >= 5\n",
		"max: 13 a + 14 b + 12 c\nassign: a + b + c <= 1\ncap: 700 a + 800 b + 650 c <= 3200\n",
		"min: -x\nc: -x >= -3\n",
		"max: x + y\neq: x = 2\nc: y <= 1\n",
		"max: x\nhi: x <= 1\nlo: x >= 2\n",
		"max: x + y\nc: x - y <= 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		pp, err := lp.Parse(strings.NewReader(src))
		if err != nil || pp.Problem == nil || pp.HasInteger {
			return
		}
		p := pp.Problem
		if p.NumVars() == 0 || p.NumVars() > 30 || p.NumConstraints() > 30 {
			return
		}
		d := p.Dense()
		for _, c := range d.Obj {
			if math.Abs(c) > 1e4 || math.IsNaN(c) {
				return
			}
		}
		for r := range d.A {
			if math.Abs(d.RHS[r]) > 1e4 || math.IsNaN(d.RHS[r]) {
				return
			}
			for _, c := range d.A[r] {
				if math.Abs(c) > 1e4 || math.IsNaN(c) {
					return
				}
			}
		}
		if err := DiffDense(p, 1e-4); err != nil {
			t.Fatal(err)
		}
	})
}
