package oracle

import (
	"fmt"
	"math"
	"math/rand"

	"mecoffload/internal/lp"
)

// DiffObjectives compares two objective values under a relative tolerance
// anchored at magnitude 1, the convention the solver tests use.
func DiffObjectives(what string, a, b, tol float64) error {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	if math.Abs(a-b) > tol*scale {
		return fmt.Errorf("oracle: %s objectives diverge: %.9g vs %.9g", what, a, b)
	}
	return nil
}

// DiffDense solves the problem with the production sparse revised simplex
// and with the reference dense tableau simplex, and requires the two to
// agree on status and (when optimal) objective. Iteration-limited runs on
// either side are inconclusive and pass vacuously.
func DiffDense(p *lp.Problem, tol float64) error {
	prod, err := p.Solve()
	if err != nil {
		return fmt.Errorf("oracle: production solve: %w", err)
	}
	ref, err := SolveDense(p.Dense(), 0)
	if err != nil {
		return fmt.Errorf("oracle: reference solve: %w", err)
	}
	if prod.Status == lp.StatusIterLimit || ref.Status == lp.StatusIterLimit {
		return nil
	}
	if prod.Status != ref.Status {
		return fmt.Errorf("oracle: status diverges: production %v, dense reference %v", prod.Status, ref.Status)
	}
	if prod.Status != lp.StatusOptimal {
		return nil
	}
	return DiffObjectives("sparse vs dense", prod.Objective, ref.Objective, tol)
}

// DiffWarmCold solves the problem cold and warm-started from a basis
// captured on a structurally similar problem, and requires the two solves
// to agree on status and (when optimal) objective. Warm starts resolve
// basis entries by name, silently dropping unresolvable ones, so any
// basis is legal input — the solves must still converge to the same
// optimum. Iteration-limited runs pass vacuously.
func DiffWarmCold(p *lp.Problem, basis *lp.Basis, tol float64) error {
	cold, err := p.Solve()
	if err != nil {
		return fmt.Errorf("oracle: cold solve: %w", err)
	}
	warm, err := p.SolveWithOptions(lp.SolveOptions{WarmStart: basis})
	if err != nil {
		return fmt.Errorf("oracle: warm solve: %w", err)
	}
	if cold.Status == lp.StatusIterLimit || warm.Status == lp.StatusIterLimit {
		return nil
	}
	if cold.Status != warm.Status {
		return fmt.Errorf("oracle: status diverges: cold %v, warm %v", cold.Status, warm.Status)
	}
	if cold.Status != lp.StatusOptimal {
		return nil
	}
	return DiffObjectives("warm vs cold", warm.Objective, cold.Objective, tol)
}

// AssignLPConfig shapes RandomAssignLP's instances after the paper's
// relaxation: assignment rows y[j,·] <= 1 and station capacity rows with
// demand-scaled coefficients. TightenCapacity drops every capacity RHS so
// far that instances are frequently infeasible once a minimum-admission
// row is added, exercising the phase-1 path of both solvers.
type AssignLPConfig struct {
	Requests, Stations int
	// MinAdmitted, when positive, adds sum_j,i y[j,i] >= MinAdmitted —
	// a GE row that can make the instance infeasible.
	MinAdmitted float64
	// TightenCapacity scales the capacity right-hand sides down.
	TightenCapacity float64
}

// RandomAssignLP generates a random LP shaped like the scheduling
// relaxation (constraints (9)-(12) without the slot index): rewards in
// the workload's unit-reward range, per-request demands in the expected
// MHz range of the canonical pipeline, station capacities like
// mec.RandomNetwork's. The same rng and config always produce the same
// problem.
func RandomAssignLP(rng *rand.Rand, cfg AssignLPConfig) *lp.Problem {
	p := lp.NewProblem(lp.Maximize)
	tighten := cfg.TightenCapacity
	if tighten <= 0 {
		tighten = 1
	}
	type yVar struct {
		v       lp.Var
		station int
		demand  float64
	}
	var vars []yVar
	all := make([]lp.Term, 0, cfg.Requests*cfg.Stations)
	for j := 0; j < cfg.Requests; j++ {
		reward := 12 + 3*rng.Float64()
		demand := 600 + 400*rng.Float64()
		var terms []lp.Term
		for i := 0; i < cfg.Stations; i++ {
			// Mirror the delay filter: not every (request, station)
			// pair gets a variable.
			if rng.Float64() < 0.25 {
				continue
			}
			v := p.AddVariable(fmt.Sprintf("y[%d,%d]", j, i), reward)
			vars = append(vars, yVar{v: v, station: i, demand: demand})
			terms = append(terms, lp.Term{Var: v, Coef: 1})
			all = append(all, lp.Term{Var: v, Coef: 1})
		}
		if len(terms) > 0 {
			if _, err := p.AddConstraint(fmt.Sprintf("assign[%d]", j), lp.LE, 1, terms...); err != nil {
				panic(err) // fresh names on a fresh problem cannot collide
			}
		}
	}
	for i := 0; i < cfg.Stations; i++ {
		var terms []lp.Term
		for _, yv := range vars {
			if yv.station == i {
				terms = append(terms, lp.Term{Var: yv.v, Coef: yv.demand})
			}
		}
		if len(terms) == 0 {
			continue
		}
		capMHz := (3000 + 600*rng.Float64()) * tighten
		if _, err := p.AddConstraint(fmt.Sprintf("cap[%d]", i), lp.LE, capMHz, terms...); err != nil {
			panic(err)
		}
	}
	if cfg.MinAdmitted > 0 && len(all) > 0 {
		if _, err := p.AddConstraint("minAdmit", lp.GE, cfg.MinAdmitted, all...); err != nil {
			panic(err)
		}
	}
	return p
}
