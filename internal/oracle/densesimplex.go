package oracle

import (
	"fmt"

	"mecoffload/internal/lp"
)

// DenseSolution is the outcome of the reference simplex.
type DenseSolution struct {
	Status    lp.Status
	Objective float64
	// X holds the structural variable values (same indexing as the
	// Dense snapshot's columns).
	X []float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// pivotEps is the magnitude below which a tableau entry is treated as
// zero during pivoting.
const pivotEps = 1e-9

// feasEps bounds the phase-1 objective of a feasible problem.
const feasEps = 1e-6

// SolveDense solves the snapshot with a textbook two-phase dense tableau
// simplex under Bland's rule. It is deliberately the opposite of the
// production solver — dense instead of sparse, Bland instead of devex,
// no warm starts, no presolve — so the two share no code paths and a bug
// in one cannot hide in the other. Bland's rule guarantees termination
// without perturbation; maxIter (<= 0 selects 50000) is a safety net
// that yields StatusIterLimit. Integer markers in the snapshot are
// ignored: this is the relaxation, matching what Problem.Solve computes.
func SolveDense(d *lp.Dense, maxIter int) (*DenseSolution, error) {
	if d == nil {
		return nil, fmt.Errorf("oracle: nil dense problem")
	}
	if maxIter <= 0 {
		maxIter = 50000
	}
	m, nv := len(d.A), len(d.Obj)
	if nv == 0 {
		return &DenseSolution{Status: lp.StatusOptimal}, nil
	}

	// Normalize every row to a non-negative right-hand side.
	type nrow struct {
		a   []float64
		op  lp.Op
		rhs float64
	}
	rows := make([]nrow, m)
	for r := 0; r < m; r++ {
		a := append([]float64(nil), d.A[r]...)
		op, rhs := d.Ops[r], d.RHS[r]
		if rhs < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			rhs = -rhs
			switch op {
			case lp.LE:
				op = lp.GE
			case lp.GE:
				op = lp.LE
			}
		}
		rows[r] = nrow{a: a, op: op, rhs: rhs}
	}

	// Column layout: structural | slack+surplus | artificial | rhs.
	nSlack, nArt := 0, 0
	for _, r := range rows {
		if r.op != lp.EQ {
			nSlack++
		}
		if r.op != lp.LE {
			nArt++
		}
	}
	total := nv + nSlack + nArt
	artStart := nv + nSlack
	tab := make([][]float64, m)
	basis := make([]int, m)
	si, ai := nv, artStart
	for r := 0; r < m; r++ {
		row := make([]float64, total+1)
		copy(row, rows[r].a)
		row[total] = rows[r].rhs
		switch rows[r].op {
		case lp.LE:
			row[si] = 1
			basis[r] = si
			si++
		case lp.GE:
			row[si] = -1
			si++
			row[ai] = 1
			basis[r] = ai
			ai++
		default: // EQ
			row[ai] = 1
			basis[r] = ai
			ai++
		}
		tab[r] = row
	}

	iters := 0
	sol := &DenseSolution{}

	if nArt > 0 {
		// Phase 1: minimize the artificial sum. The cost row starts as
		// the artificial indicator and is reduced against the (artificial)
		// starting basis.
		cost := make([]float64, total+1)
		for j := artStart; j < total; j++ {
			cost[j] = 1
		}
		for r := 0; r < m; r++ {
			if basis[r] >= artStart {
				for j := 0; j <= total; j++ {
					cost[j] -= tab[r][j]
				}
			}
		}
		status := pivotLoop(tab, basis, cost, total, artStart, maxIter, &iters)
		if status == lp.StatusIterLimit {
			sol.Status = lp.StatusIterLimit
			sol.Iterations = iters
			return sol, nil
		}
		if phase1 := -cost[total]; phase1 > feasEps {
			sol.Status = lp.StatusInfeasible
			sol.Iterations = iters
			return sol, nil
		}
		// Drive leftover artificials out of the basis where possible;
		// rows that offer no pivot are redundant and keep a basic
		// artificial frozen at zero (it can never re-enter).
		for r := 0; r < m; r++ {
			if basis[r] < artStart {
				continue
			}
			for j := 0; j < artStart; j++ {
				if tab[r][j] > pivotEps || tab[r][j] < -pivotEps {
					pivot(tab, basis, nil, total, r, j)
					break
				}
			}
		}
	}

	// Phase 2: the real objective, as a minimization.
	cost := make([]float64, total+1)
	for j := 0; j < nv; j++ {
		if d.Sense == lp.Maximize {
			cost[j] = -d.Obj[j]
		} else {
			cost[j] = d.Obj[j]
		}
	}
	for r := 0; r < m; r++ {
		if cb := cost[basis[r]]; cb != 0 {
			for j := 0; j <= total; j++ {
				cost[j] -= cb * tab[r][j]
			}
		}
	}
	status := pivotLoop(tab, basis, cost, total, artStart, maxIter, &iters)
	sol.Status = status
	sol.Iterations = iters
	if status != lp.StatusOptimal {
		return sol, nil
	}
	fmin := -cost[total]
	if d.Sense == lp.Maximize {
		sol.Objective = -fmin
	} else {
		sol.Objective = fmin
	}
	sol.X = make([]float64, nv)
	for r := 0; r < m; r++ {
		if basis[r] < nv {
			sol.X[basis[r]] = tab[r][total]
		}
	}
	return sol, nil
}

// pivotLoop runs Bland's-rule pivots until the cost row has no negative
// reduced cost (optimal), a column prices out with no positive entry
// (unbounded), or the iteration budget runs out. Artificial columns
// (index >= artStart) never enter.
func pivotLoop(tab [][]float64, basis []int, cost []float64, total, artStart, maxIter int, iters *int) lp.Status {
	m := len(tab)
	for {
		if *iters >= maxIter {
			return lp.StatusIterLimit
		}
		// Bland: entering column is the lowest index with negative
		// reduced cost.
		enter := -1
		for j := 0; j < artStart; j++ {
			if cost[j] < -pivotEps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return lp.StatusOptimal
		}
		// Ratio test; Bland ties break on the smallest basis index.
		leave := -1
		bestRatio := 0.0
		for r := 0; r < m; r++ {
			if tab[r][enter] <= pivotEps {
				continue
			}
			ratio := tab[r][total] / tab[r][enter]
			if leave < 0 || ratio < bestRatio-pivotEps ||
				(ratio < bestRatio+pivotEps && basis[r] < basis[leave]) {
				leave = r
				bestRatio = ratio
			}
		}
		if leave < 0 {
			return lp.StatusUnbounded
		}
		pivot(tab, basis, cost, total, leave, enter)
		*iters++
	}
}

// pivot makes column enter basic in row leave, updating the cost row too
// when one is supplied.
func pivot(tab [][]float64, basis []int, cost []float64, total, leave, enter int) {
	pr := tab[leave]
	pv := pr[enter]
	for j := 0; j <= total; j++ {
		pr[j] /= pv
	}
	for r := range tab {
		if r == leave {
			continue
		}
		if f := tab[r][enter]; f > pivotEps || f < -pivotEps {
			row := tab[r]
			for j := 0; j <= total; j++ {
				row[j] -= f * pr[j]
			}
		}
	}
	if cost != nil {
		if f := cost[enter]; f > pivotEps || f < -pivotEps {
			for j := 0; j <= total; j++ {
				cost[j] -= f * pr[j]
			}
		}
	}
	basis[leave] = enter
}
