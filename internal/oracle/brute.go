package oracle

import (
	"mecoffload/internal/mec"
)

// BruteForceAssign solves ILP-RM (Section IV-A) by exhaustive enumeration
// over the consolidated assignment space: each request is either rejected
// or placed on one delay-feasible station, subject to the expected-demand
// capacity constraint sum_j x_ji * E(rho_j) * C_unit <= C(bs_i), and the
// expected reward sum is maximized. It mirrors core.Exact's model exactly
// (including the waitSlots=0 delay filter) but shares none of its code —
// no LP relaxation, no branch and bound — so a bound bug in either shows
// up as an objective mismatch. Cost is (stations+1)^requests; keep
// instances tiny. The returned assignment maps request index to station,
// -1 meaning rejected.
func BruteForceAssign(n *mec.Network, reqs []*mec.Request, slotLengthMS float64) (float64, []int) {
	if slotLengthMS == 0 {
		slotLengthMS = mec.DefaultSlotLengthMS
	}
	feasible := make([][]int, len(reqs))
	for j, r := range reqs {
		for i := 0; i < n.NumStations(); i++ {
			if r.DelayFeasible(n, i, 0, slotLengthMS) {
				feasible[j] = append(feasible[j], i)
			}
		}
	}
	load := make([]float64, n.NumStations())
	assign := make([]int, len(reqs))
	best := make([]int, len(reqs))
	for j := range assign {
		assign[j] = -1
		best[j] = -1
	}
	bestObj := 0.0

	var walk func(j int, obj float64)
	walk = func(j int, obj float64) {
		if j == len(reqs) {
			if obj > bestObj {
				bestObj = obj
				copy(best, assign)
			}
			return
		}
		// Reject branch.
		walk(j+1, obj)
		r := reqs[j]
		demand := n.RateToMHz(r.ExpectedRate())
		for _, i := range feasible[j] {
			if load[i]+demand > n.Capacity(i)+capacityTol {
				continue
			}
			load[i] += demand
			assign[j] = i
			walk(j+1, obj+r.ExpectedReward())
			assign[j] = -1
			load[i] -= demand
		}
	}
	walk(0, 0)
	return bestObj, best
}
