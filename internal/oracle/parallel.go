package oracle

import (
	"fmt"
	"reflect"

	"mecoffload/internal/core"
	"mecoffload/internal/mec"
	"mecoffload/internal/rnd"
	"mecoffload/internal/sim"
	"mecoffload/internal/workload"
)

// DiffParallelSequential is the parallel pipeline's determinism oracle
// for the online path: it runs DynamicRR over the same workload twice —
// once with the per-slot LP solved on a single worker, once with the
// component solves fanned out over `workers` goroutines — and requires
// the two runs to agree decision for decision: identical admission
// tables, identical per-slot reward vectors, identical totals. The
// engine's invariant checker stays installed in both runs, so the
// parallel run also satisfies every conservation law, not merely parity
// with the sequential one.
func DiffParallelSequential(n *mec.Network, reqs []*mec.Request, seed int64, cfg sim.Config, workers int) error {
	if workers < 2 {
		return fmt.Errorf("oracle: parallel diff needs workers >= 2, got %d", workers)
	}
	run := func(w int) (*core.Result, []float64, error) {
		sched, err := sim.NewDynamicRR(sim.DynamicRROptions{Workers: w})
		if err != nil {
			return nil, nil, err
		}
		eng, err := sim.NewEngine(n, workload.Clone(reqs), rnd.New(seed, "engine"), cfg)
		if err != nil {
			return nil, nil, err
		}
		eng.SetStepChecker(EngineChecker())
		res, err := eng.Run(sched)
		if err != nil {
			return nil, nil, err
		}
		return res, eng.SlotRewards(), nil
	}
	seq, seqRew, err := run(1)
	if err != nil {
		return fmt.Errorf("oracle: sequential run: %w", err)
	}
	par, parRew, err := run(workers)
	if err != nil {
		return fmt.Errorf("oracle: parallel run (workers=%d): %w", workers, err)
	}
	if seq.TotalReward != par.TotalReward {
		return fmt.Errorf("oracle: workers=1 total reward %v, workers=%d %v", seq.TotalReward, workers, par.TotalReward)
	}
	if !reflect.DeepEqual(seqRew, parRew) {
		return fmt.Errorf("oracle: slot reward vectors diverge between workers=1 and workers=%d", workers)
	}
	for j := range seq.Decisions {
		if !reflect.DeepEqual(seq.Decisions[j], par.Decisions[j]) {
			return fmt.Errorf("oracle: decision %d diverges between workers=1 and workers=%d: %+v vs %+v",
				j, workers, seq.Decisions[j], par.Decisions[j])
		}
	}
	return nil
}

// DiffParallelSequentialOffline is the offline counterpart: one
// core.Heu run per worker count over cloned requests and identical rngs.
// Beyond decision parity it requires the fractional LP bound to match
// exactly — the per-component objectives of the decomposed solve must
// sum to the monolithic optimum, so any drift there means the
// decomposition split a constraint it should not have.
func DiffParallelSequentialOffline(n *mec.Network, reqs []*mec.Request, seed int64, workers int) error {
	if workers < 2 {
		return fmt.Errorf("oracle: parallel diff needs workers >= 2, got %d", workers)
	}
	run := func(w int) (*core.Result, error) {
		return core.Heu(n, workload.Clone(reqs), rnd.New(seed, "heu"), core.HeuOptions{
			Warm:    core.NewWarmCache(),
			Workers: w,
		})
	}
	seq, err := run(1)
	if err != nil {
		return fmt.Errorf("oracle: sequential Heu: %w", err)
	}
	par, err := run(workers)
	if err != nil {
		return fmt.Errorf("oracle: parallel Heu (workers=%d): %w", workers, err)
	}
	if seq.ExpectedLPBound != par.ExpectedLPBound {
		return fmt.Errorf("oracle: workers=1 LP bound %v, workers=%d %v", seq.ExpectedLPBound, workers, par.ExpectedLPBound)
	}
	if seq.TotalReward != par.TotalReward {
		return fmt.Errorf("oracle: workers=1 total reward %v, workers=%d %v", seq.TotalReward, workers, par.TotalReward)
	}
	for j := range seq.Decisions {
		if !reflect.DeepEqual(seq.Decisions[j], par.Decisions[j]) {
			return fmt.Errorf("oracle: decision %d diverges between workers=1 and workers=%d: %+v vs %+v",
				j, workers, seq.Decisions[j], par.Decisions[j])
		}
	}
	return nil
}
