package oracle

import (
	"math/rand"
	"sync"
	"testing"

	"mecoffload/internal/mec"
	"mecoffload/internal/sim"
	"mecoffload/internal/workload"
)

func oracleNetErr(stations int, seed int64) (*mec.Network, error) {
	return mec.RandomNetwork(stations, 3000, 3600, rand.New(rand.NewSource(seed)))
}

// TestFrameReplayDeterministic runs the golden frame-trace replay twice
// concurrently on the same trace and seed; the dumps must be bit-for-bit
// equal. Running both from goroutines also puts the whole hot path —
// engine, scheduler, bandit, checker — under the race detector in the
// -race CI job.
func TestFrameReplayDeterministic(t *testing.T) {
	tr, err := workload.GenerateTrace(5, rand.New(rand.NewSource(321)))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	dumps := make([]*ReplayDump, 2)
	errs := make([]error, 2)
	for i := range dumps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each replay needs its own network: the engine mutates
			// occupancy ledgers in place.
			n, err := oracleNetErr(4, 322)
			if err != nil {
				errs[i] = err
				return
			}
			dumps[i], errs[i] = FrameReplay(n, tr, 99, 0, 1)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
	}
	if dumps[0].Submitted == 0 {
		t.Fatal("replay submitted no requests")
	}
	if len(dumps[0].Slots) == 0 {
		t.Fatal("replay admitted nothing; the parity check is vacuous")
	}
	if !dumps[0].Equal(dumps[1]) {
		t.Fatalf("replays diverge: %s", dumps[0].Diff(dumps[1]))
	}
}

// TestReplayDumpDiff pins the divergence reporter itself.
func TestReplayDumpDiff(t *testing.T) {
	a := &ReplayDump{Submitted: 3, TotalReward: 10,
		Slots: []SlotAdmissions{{Slot: 1, Admitted: []int{0}, Reward: 10}}}
	b := &ReplayDump{Submitted: 3, TotalReward: 10,
		Slots: []SlotAdmissions{{Slot: 1, Admitted: []int{0}, Reward: 10}}}
	if !a.Equal(b) || a.Diff(b) != "" {
		t.Fatalf("identical dumps compare unequal: %q", a.Diff(b))
	}
	b.Slots[0].Admitted = []int{1}
	if a.Equal(b) || a.Diff(b) == "" {
		t.Fatal("diverging dumps compare equal")
	}
}

// TestRecordReplaySchedulers checks run-to-run determinism of the full
// online pipeline for the paper's scheduler and the naive reference.
func TestRecordReplaySchedulers(t *testing.T) {
	net := oracleNet(t, 4, 500)
	reqs := oracleWorkload(t, workload.Config{
		NumRequests:    80,
		NumStations:    4,
		GeometricRates: true,
		ArrivalHorizon: 25,
	}, 501)

	t.Run("dynamicrr", func(t *testing.T) {
		mk := func() (sim.Scheduler, error) {
			return sim.NewDynamicRR(sim.DynamicRROptions{})
		}
		if err := RecordReplay(net, reqs, 502, sim.Config{Horizon: 60}, mk); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("naive", func(t *testing.T) {
		mk := func() (sim.Scheduler, error) { return NaiveScheduler{}, nil }
		if err := RecordReplay(net, reqs, 503, sim.Config{Horizon: 60}, mk); err != nil {
			t.Fatal(err)
		}
	})
}
