package oracle

import (
	"math/rand"
	"strings"
	"testing"

	"mecoffload/internal/bandit"
	"mecoffload/internal/core"
	"mecoffload/internal/dist"
	"mecoffload/internal/lp"
	"mecoffload/internal/mec"
	"mecoffload/internal/sim"
	"mecoffload/internal/topology"
	"mecoffload/internal/workload"
)

// instances scales a differential runner's instance count down under
// -short (the race job's profile) while keeping the full profile at or
// above the 200-instance bar the oracle suite promises.
func instances(full int) int {
	if testing.Short() {
		n := full / 8
		if n < 4 {
			n = 4
		}
		return n
	}
	return full
}

func oracleNet(t testing.TB, stations int, seed int64) *mec.Network {
	t.Helper()
	n, err := mec.RandomNetwork(stations, 3000, 3600, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("RandomNetwork: %v", err)
	}
	return n
}

func oracleWorkload(t testing.TB, cfg workload.Config, seed int64) []*mec.Request {
	t.Helper()
	reqs, err := workload.Generate(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return reqs
}

// TestSolveDenseKnownLPs pins the dense reference simplex on handcrafted
// problems with known optima, an infeasible system, and an unbounded ray,
// so differential failures elsewhere can be attributed to the production
// side.
func TestSolveDenseKnownLPs(t *testing.T) {
	t.Run("optimal", func(t *testing.T) {
		p := lp.NewProblem(lp.Maximize)
		x := p.AddVariable("x", 3)
		y := p.AddVariable("y", 2)
		mustRow(t, p, "c1", lp.LE, 4, lp.Term{Var: x, Coef: 1}, lp.Term{Var: y, Coef: 1})
		mustRow(t, p, "c2", lp.LE, 6, lp.Term{Var: x, Coef: 1}, lp.Term{Var: y, Coef: 3})
		sol, err := SolveDense(p.Dense(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != lp.StatusOptimal {
			t.Fatalf("status %v, want optimal", sol.Status)
		}
		// Optimum at x=4, y=0: objective 12.
		if err := DiffObjectives("known optimum", sol.Objective, 12, 1e-9); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("infeasible", func(t *testing.T) {
		p := lp.NewProblem(lp.Minimize)
		x := p.AddVariable("x", 1)
		mustRow(t, p, "hi", lp.LE, 1, lp.Term{Var: x, Coef: 1})
		mustRow(t, p, "lo", lp.GE, 2, lp.Term{Var: x, Coef: 1})
		sol, err := SolveDense(p.Dense(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != lp.StatusInfeasible {
			t.Fatalf("status %v, want infeasible", sol.Status)
		}
	})
	t.Run("unbounded", func(t *testing.T) {
		p := lp.NewProblem(lp.Maximize)
		x := p.AddVariable("x", 1)
		y := p.AddVariable("y", 0)
		mustRow(t, p, "c", lp.GE, 1, lp.Term{Var: x, Coef: 1}, lp.Term{Var: y, Coef: 1})
		sol, err := SolveDense(p.Dense(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != lp.StatusUnbounded {
			t.Fatalf("status %v, want unbounded", sol.Status)
		}
	})
}

func mustRow(t *testing.T, p *lp.Problem, name string, op lp.Op, rhs float64, terms ...lp.Term) {
	t.Helper()
	if _, err := p.AddConstraint(name, op, rhs, terms...); err != nil {
		t.Fatalf("AddConstraint(%s): %v", name, err)
	}
}

// TestDiffDenseRandomLPs runs the sparse-revised-simplex-vs-dense-tableau
// differential on randomized assignment-shaped LPs.
func TestDiffDenseRandomLPs(t *testing.T) {
	n := instances(200)
	for k := 0; k < n; k++ {
		rng := rand.New(rand.NewSource(int64(1000 + k)))
		cfg := AssignLPConfig{Requests: 2 + rng.Intn(7), Stations: 2 + rng.Intn(4)}
		p := RandomAssignLP(rng, cfg)
		if p.NumVars() == 0 {
			continue
		}
		if err := DiffDense(p, 1e-6); err != nil {
			t.Fatalf("instance %d (%d req, %d st): %v", k, cfg.Requests, cfg.Stations, err)
		}
	}
}

// TestDiffDenseInfeasibleFamilies exercises the phase-1 path on both
// sides: tightened capacities plus a minimum-admission row make many
// instances infeasible, and the two solvers must agree on exactly which.
func TestDiffDenseInfeasibleFamilies(t *testing.T) {
	n := instances(200)
	infeasible := 0
	for k := 0; k < n; k++ {
		rng := rand.New(rand.NewSource(int64(5000 + k)))
		cfg := AssignLPConfig{
			Requests:        2 + rng.Intn(5),
			Stations:        2 + rng.Intn(3),
			MinAdmitted:     1 + 4*rng.Float64(),
			TightenCapacity: 0.02 + 0.3*rng.Float64(),
		}
		p := RandomAssignLP(rng, cfg)
		if p.NumVars() == 0 {
			continue
		}
		if err := DiffDense(p, 1e-6); err != nil {
			t.Fatalf("instance %d: %v", k, err)
		}
		if sol, err := p.Solve(); err == nil && sol.Status == lp.StatusInfeasible {
			infeasible++
		}
	}
	if infeasible == 0 {
		t.Fatalf("no infeasible instance in %d draws; the family no longer exercises phase 1", n)
	}
}

// TestWarmColdAgree is the warm-start differential: a basis captured on
// one instance seeds the solve of a capacity-perturbed sibling (same
// variables and rows, different RHS), and the warm solve must reach the
// cold solve's optimum.
func TestWarmColdAgree(t *testing.T) {
	n := instances(200)
	for k := 0; k < n; k++ {
		seed := int64(9000 + k)
		cfg := AssignLPConfig{Requests: 3 + k%5, Stations: 2 + k%4}
		base := RandomAssignLP(rand.New(rand.NewSource(seed)), cfg)
		if base.NumVars() == 0 {
			continue
		}
		sol, err := base.Solve()
		if err != nil {
			t.Fatalf("instance %d base solve: %v", k, err)
		}
		if sol.Status != lp.StatusOptimal || sol.Basis == nil {
			t.Fatalf("instance %d base status %v (basis %v), want optimal with basis", k, sol.Status, sol.Basis)
		}
		// Same rng seed, so identical structure; only capacity RHS moves.
		pert := cfg
		pert.TightenCapacity = 0.6 + 0.8*float64(k%7)/7
		sibling := RandomAssignLP(rand.New(rand.NewSource(seed)), pert)
		if err := DiffWarmCold(sibling, sol.Basis, 1e-6); err != nil {
			t.Fatalf("instance %d: %v", k, err)
		}
	}
}

// TestExactMatchesBruteForce cross-checks the branch-and-bound ILP
// objective against exhaustive enumeration on tiny instances: two
// implementations of ILP-RM with zero shared code.
func TestExactMatchesBruteForce(t *testing.T) {
	n := instances(200)
	for k := 0; k < n; k++ {
		seed := int64(20000 + k)
		stations := 2 + k%2
		net := oracleNet(t, stations, seed)
		reqs := oracleWorkload(t, workload.Config{
			NumRequests: 3 + k%4,
			NumStations: stations,
			RateSupport: 1 + k%3,
			MinTasks:    1,
			MaxTasks:    2,
		}, seed+1)
		res, err := core.Exact(net, reqs, rand.New(rand.NewSource(seed+2)),
			core.ExactOptions{RelativeGap: 1e-12})
		if err != nil {
			t.Fatalf("instance %d Exact: %v", k, err)
		}
		bruteObj, _ := BruteForceAssign(net, reqs, 0)
		if err := DiffObjectives("exact vs brute", res.ExpectedLPBound, bruteObj, 1e-6); err != nil {
			t.Fatalf("instance %d (%d req, %d st): %v", k, len(reqs), stations, err)
		}
	}
}

// TestBruteForceKnownOptimum pins the brute-force reference itself on the
// handcrafted instance core's tests solve exactly: capacity admits one
// request per station, so the optimum takes the two largest rewards.
func TestBruteForceKnownOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	topo, err := topology.Waxman(topology.Config{N: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := mec.NewNetwork(mec.NetworkConfig{
		Stations: []mec.BaseStation{
			{CapacityMHz: 1000, SpeedFactor: 1},
			{CapacityMHz: 1000, SpeedFactor: 1},
		},
		Topo: topo,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id int, reward float64) *mec.Request {
		d, err := dist.NewRateReward([]dist.Outcome{{Rate: 40, Prob: 1, Reward: reward}})
		if err != nil {
			t.Fatal(err)
		}
		return &mec.Request{
			ID:            id,
			AccessStation: 0,
			Tasks:         []mec.Task{{Name: "render", OutputKb: 100, WorkMS: 30}},
			DeadlineMS:    200,
			Dist:          d,
		}
	}
	reqs := []*mec.Request{mk(0, 100), mk(1, 300), mk(2, 200)}
	obj, assign := BruteForceAssign(net, reqs, 0)
	if obj != 500 {
		t.Fatalf("objective %v, want 500", obj)
	}
	if assign[0] != -1 || assign[1] < 0 || assign[2] < 0 {
		t.Fatalf("assignment %v, want request 0 rejected and 1, 2 placed", assign)
	}
	if assign[1] == assign[2] {
		t.Fatalf("requests 1 and 2 share station %d beyond capacity", assign[1])
	}
}

// TestApproAchievesLPFraction verifies Theorem 1's guarantee in aggregate
// over randomized instances: total realized reward must clear a generous
// fraction of 1/8 of the total LP bound.
func TestApproAchievesLPFraction(t *testing.T) {
	n := instances(200)
	sumReward, sumBound := 0.0, 0.0
	for k := 0; k < n; k++ {
		seed := int64(30000 + k)
		stations := 4 + k%3
		net := oracleNet(t, stations, seed)
		reqs := oracleWorkload(t, workload.Config{
			NumRequests:    20 + k%12,
			NumStations:    stations,
			GeometricRates: k%2 == 0,
		}, seed+1)
		res, err := core.Appro(net, reqs, rand.New(rand.NewSource(seed+2)), core.ApproOptions{})
		if err != nil {
			t.Fatalf("instance %d Appro: %v", k, err)
		}
		if err := core.Audit(net, reqs, res); err != nil {
			t.Fatalf("instance %d audit: %v", k, err)
		}
		if err := CheckAdmittedLoad(net, reqs, res); err != nil {
			t.Fatalf("instance %d: %v", k, err)
		}
		sumReward += res.TotalReward
		sumBound += res.ExpectedLPBound
	}
	if sumBound <= 0 {
		t.Fatal("no positive LP bound across the whole family")
	}
	if sumReward < sumBound/8*0.9 {
		t.Fatalf("aggregate reward %v below 1/8 guarantee of aggregate bound %v", sumReward, sumBound)
	}
}

// TestHeuRespectsCapacityAndLatency is a mutant catcher: on congested
// instances Heu's admitted, non-evicted requests must respect every
// station capacity under realized demand (CheckAdmittedLoad) and their
// recorded latency must meet the deadline. The oraclemutant build relaxes
// the occupancy test to 2x capacity and must fail here.
func TestHeuRespectsCapacityAndLatency(t *testing.T) {
	n := instances(200)
	for k := 0; k < n; k++ {
		seed := int64(40000 + k)
		stations := 3 + k%2
		net := oracleNet(t, stations, seed)
		reqs := oracleWorkload(t, workload.Config{
			NumRequests:    36 + k%10,
			NumStations:    stations,
			GeometricRates: k%3 == 0,
		}, seed+1)
		res, err := core.Heu(net, reqs, rand.New(rand.NewSource(seed+2)), core.HeuOptions{})
		if err != nil {
			t.Fatalf("instance %d Heu: %v", k, err)
		}
		if err := core.Audit(net, reqs, res); err != nil {
			t.Fatalf("instance %d audit: %v", k, err)
		}
		if err := CheckAdmittedLoad(net, reqs, res); err != nil {
			t.Fatalf("instance %d: %v", k, err)
		}
		for j, d := range res.Decisions {
			if !d.Admitted || d.Evicted {
				continue
			}
			if d.LatencyMS > reqs[j].DeadlineMS+1e-6 {
				t.Fatalf("instance %d request %d: latency %.3f ms exceeds deadline %.3f ms",
					k, j, d.LatencyMS, reqs[j].DeadlineMS)
			}
			if !d.Served {
				t.Fatalf("instance %d request %d: admitted by the aware Heu but neither served nor evicted", k, j)
			}
		}
	}
}

// TestDynamicRRInvariantsOnline is the other mutant catcher: full online
// runs of DynamicRR with the invariant checker installed. Every slot must
// satisfy occupancy, ledger-conservation, settlement, and C^th share-rule
// laws; the oraclemutant build overloads stations and must fail.
func TestDynamicRRInvariantsOnline(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 3
	}
	for k := 0; k < n; k++ {
		seed := int64(50000 + k)
		stations := 3 + k%3
		net := oracleNet(t, stations, seed)
		reqs := oracleWorkload(t, workload.Config{
			NumRequests:    60 + 10*(k%4),
			NumStations:    stations,
			GeometricRates: true,
			ArrivalHorizon: 20,
		}, seed+1)
		sched, err := sim.NewDynamicRR(sim.DynamicRROptions{})
		if err != nil {
			t.Fatal(err)
		}
		horizon := 50
		eng, err := sim.NewEngine(net, reqs, rand.New(rand.NewSource(seed+2)), sim.Config{Horizon: horizon})
		if err != nil {
			t.Fatal(err)
		}
		eng.SetStepChecker(EngineChecker())
		res, err := eng.Run(sched)
		if err != nil {
			t.Fatalf("instance %d: %v", k, err)
		}
		if err := sim.AuditTimeline(net, reqs, res, horizon); err != nil {
			t.Fatalf("instance %d timeline audit: %v", k, err)
		}
	}
}

// TestNaiveSchedulerInvariantsOnline runs the trusted reference scheduler
// under the same checker: the engine's settlement and ledger plumbing
// must uphold the conservation laws for an oblivious scheduler too.
func TestNaiveSchedulerInvariantsOnline(t *testing.T) {
	n := 8
	if testing.Short() {
		n = 2
	}
	for k := 0; k < n; k++ {
		seed := int64(60000 + k)
		stations := 3 + k%3
		net := oracleNet(t, stations, seed)
		reqs := oracleWorkload(t, workload.Config{
			NumRequests:    50,
			NumStations:    stations,
			ArrivalHorizon: 15,
		}, seed+1)
		horizon := 45
		eng, err := sim.NewEngine(net, reqs, rand.New(rand.NewSource(seed+2)), sim.Config{Horizon: horizon})
		if err != nil {
			t.Fatal(err)
		}
		eng.SetStepChecker(EngineChecker())
		res, err := eng.Run(NaiveScheduler{})
		if err != nil {
			t.Fatalf("instance %d: %v", k, err)
		}
		if err := sim.AuditTimeline(net, reqs, res, horizon); err != nil {
			t.Fatalf("instance %d timeline audit: %v", k, err)
		}
	}
}

// TestNaiveAdmissionSetRule pins the independent C^th re-derivation.
func TestNaiveAdmissionSetRule(t *testing.T) {
	mk := func(id int, rate float64) *mec.Request {
		d, err := dist.NewRateReward([]dist.Outcome{{Rate: rate, Prob: 1, Reward: rate}})
		if err != nil {
			t.Fatal(err)
		}
		return &mec.Request{ID: id, Dist: d}
	}
	reqs := []*mec.Request{mk(0, 50), mk(1, 30), mk(2, 40), mk(3, 30)}
	pending := []int{0, 1, 2, 3}

	// Threshold disabled: everything is a candidate.
	if got := NaiveAdmissionSet(reqs, pending, 1000, 0); len(got) != 4 {
		t.Fatalf("cth=0 allowed %d of 4", len(got))
	}
	// free/cth = 2: the two smallest expected rates, ties on id (1 then 3).
	got := NaiveAdmissionSet(reqs, pending, 1000, 500)
	if len(got) != 2 || !got[1] || !got[3] {
		t.Fatalf("nMax=2 allowed %v, want {1, 3}", got)
	}
	// No room for even one average share: empty.
	if got := NaiveAdmissionSet(reqs, pending, 400, 500); len(got) != 0 {
		t.Fatalf("nMax=0 allowed %v, want none", got)
	}
}

// TestCheckViolations drives the invariant checker over manufactured
// states, one broken law at a time.
func TestCheckViolations(t *testing.T) {
	net := oracleNet(t, 2, 77)
	okUsed := func() []float64 { return []float64{10, 20} }

	cases := []struct {
		name string
		st   State
		want string // substring of the error, "" for pass
	}{
		{"valid", State{Net: net, UsedMHz: okUsed()}, ""},
		{"nil network", State{UsedMHz: okUsed()}, "nil network"},
		{"ledger length", State{Net: net, UsedMHz: []float64{1}}, "stations"},
		{"negative occupancy", State{Net: net, UsedMHz: []float64{-1, 0}}, "negative"},
		{"over capacity", State{Net: net, UsedMHz: []float64{net.Capacity(0) + 1, 0}}, "exceeds capacity"},
		{"negative expected", State{Net: net, UsedMHz: okUsed(), ExpectedMHz: []float64{-2, 0}}, "expected load negative"},
		{"running twice", State{Net: net, UsedMHz: []float64{10, 0}, Running: []sim.RunningSnapshot{
			{Request: 0, Shares: map[int]float64{0: 5}},
			{Request: 0, Shares: map[int]float64{0: 5}},
		}}, "running twice"},
		{"share out of range", State{Net: net, UsedMHz: []float64{3, 0}, Running: []sim.RunningSnapshot{
			{Request: 0, Shares: map[int]float64{9: 3}},
		}}, "out of range"},
		{"ledger mismatch", State{Net: net, UsedMHz: []float64{10, 0}, Running: []sim.RunningSnapshot{
			{Request: 0, Shares: map[int]float64{0: 3}},
		}}, "shares sum"},
		{"decision mismatch", State{Net: net, UsedMHz: []float64{3, 0},
			Decisions: []core.Decision{{RequestID: 0}},
			Running: []sim.RunningSnapshot{
				{Request: 0, Shares: map[int]float64{0: 3}},
			}}, "admitted=false"},
	}
	for _, tc := range cases {
		err := Check(tc.st)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestCheckBanditBounds: a live successive-elimination policy always has
// ordered confidence bounds and an active best arm, so Check passes; the
// checker also demands at least one played arm's bounds bracket its mean.
func TestCheckBanditBounds(t *testing.T) {
	se, err := bandit.NewSuccessiveElimination(4)
	if err != nil {
		t.Fatal(err)
	}
	net := oracleNet(t, 2, 78)
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 200; i++ {
		arm := se.Select()
		reward := rng.Float64()
		if arm == 2 {
			reward += 2 // arm 2 dominates
		}
		se.Update(arm, reward)
		if err := Check(State{Net: net, UsedMHz: []float64{0, 0}, Bandit: se}); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if se.BestArm() != 2 {
		t.Fatalf("best arm %d, want the dominating arm 2", se.BestArm())
	}
}
