package oracle

import (
	"errors"
	"testing"

	"mecoffload/internal/dist"
	"mecoffload/internal/graph"
	"mecoffload/internal/mec"
	"mecoffload/internal/sim"
	"mecoffload/internal/topology"
	"mecoffload/internal/workload"
)

// TestDiffIncrementalFull drives DynamicRR over the periodic island
// trace twice — full re-solve every slot vs the dirty-component cache —
// and requires bit-identical decisions, slot rewards, and totals. The
// periodicity matters: wave w's components have exactly the signature
// wave 0 cached (same station, same residual capacity, same share cap,
// same demand distribution, and position-space entries erase the new
// request ids), so every wave after the first reuses cached decisions
// deterministically — the diff fails if none is reused. Rounding
// denominator 1 keeps admission deterministic so the waves stay aligned.
func TestDiffIncrementalFull(t *testing.T) {
	net, reqs := certifiableScenario(t, 6, 4)
	err := DiffIncrementalFull(net, reqs, 83, sim.Config{Horizon: 50},
		sim.DynamicRROptions{RoundingDenominator: 1})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDiffIncrementalFullParallel repeats the incremental diff with the
// component solves fanned out over a worker pool in both runs, so the
// cache's sequential clean-check composes with the parallel dirty
// solves. Under the -race CI job this also races the fast-path counters
// and the warm cache against the pool.
func TestDiffIncrementalFullParallel(t *testing.T) {
	net, reqs := certifiableScenario(t, 6, 4)
	err := DiffIncrementalFull(net, reqs, 93, sim.Config{Horizon: 50},
		sim.DynamicRROptions{RoundingDenominator: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDiffIncrementalGenericWorkload runs the incremental diff over a
// generated congested workload with the production rounding denominator.
// Decision parity must hold unconditionally; whether the trace happens to
// produce clean hits depends on the draw, so ErrNoCleanHits is tolerated
// (the periodic tests above pin guaranteed reuse).
func TestDiffIncrementalGenericWorkload(t *testing.T) {
	n := oracleNet(t, 8, 81)
	reqs := oracleWorkload(t, workload.Config{
		NumRequests:    80,
		NumStations:    8,
		ArrivalHorizon: 25,
	}, 82)
	err := DiffIncrementalFull(n, reqs, 83, sim.Config{Horizon: 60}, sim.DynamicRROptions{})
	if err != nil && !errors.Is(err, ErrNoCleanHits) {
		t.Fatal(err)
	}
}

// certifiableScenario builds the all-certified trace DiffLocalRatioLP
// requires: `stations` disconnected single-station islands (a request's
// access station is its only delay-feasible candidate), each with 3000
// MHz capacity, and one single-outcome request per station with rate 60
// MB/s. At the default 1000 MHz slot grid and C_unit 20, a request's ER
// at slot 1 is its full reward ((3000-1000)/20 = 100 >= 60) while slot 2
// cuts it to zero ((3000-2000)/20 = 50 < 60), so the per-request argmax
// is strictly unique; with one request per station the one-hot point is
// trivially capacity-feasible. Arrivals are staggered so a departing
// stream frees its station before the next wave, and each wave repeats
// the previous wave's station/distribution pairing exactly — the trace
// therefore also drives the incremental cache deterministically: wave
// w's component signatures are bit-identical to wave 0's.
func certifiableScenario(t *testing.T, stations, waves int) (*mec.Network, []*mec.Request) {
	t.Helper()
	g := graph.New(stations)
	nodes := make([]topology.Node, stations)
	bs := make([]mec.BaseStation, stations)
	for i := 0; i < stations; i++ {
		nodes[i] = topology.Node{X: float64(i) * 0.1, Y: 0}
		bs[i] = mec.BaseStation{CapacityMHz: 3000, SpeedFactor: 1}
	}
	net, err := mec.NewNetwork(mec.NetworkConfig{
		Stations: bs,
		Topo:     &topology.Topology{Graph: g, Nodes: nodes},
	})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []*mec.Request
	for w := 0; w < waves; w++ {
		for i := 0; i < stations; i++ {
			id := w*stations + i
			// Reward depends on the station only: wave w's request on
			// station i is distribution-identical to wave 0's, so the
			// component signature repeats across waves.
			d, err := dist.NewRateReward([]dist.Outcome{
				{Rate: 60, Prob: 1, Reward: float64(100 + 13*i%200)},
			})
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, &mec.Request{
				ID:            id,
				ArrivalSlot:   w * 8,
				AccessStation: i,
				Tasks:         []mec.Task{{Name: "render", OutputKb: 100, WorkMS: 30}},
				DeadlineMS:    200,
				DurationSlots: 5,
				Dist:          d,
			})
		}
	}
	return net, reqs
}

// TestDiffLocalRatioLP pins the fast path's LP parity on an all-certified
// trace: every component the local-ratio run examines must certify
// (FastFallback == 0) and the resulting decisions must match the
// warm-started LP-PT run bit for bit.
func TestDiffLocalRatioLP(t *testing.T) {
	net, reqs := certifiableScenario(t, 6, 3)
	if err := DiffLocalRatioLP(net, reqs, 101, sim.Config{Horizon: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDiffLocalRatioLPRejectsUncertified pins the oracle's guard: a
// contended generic workload falls back to the LP somewhere, and the diff
// must refuse to vouch for such a trace rather than compare runs whose
// warm caches may have diverged.
func TestDiffLocalRatioLPRejectsUncertified(t *testing.T) {
	n := oracleNet(t, 4, 111)
	reqs := oracleWorkload(t, workload.Config{
		NumRequests:    40,
		NumStations:    4,
		ArrivalHorizon: 10,
	}, 112)
	err := DiffLocalRatioLP(n, reqs, 113, sim.Config{Horizon: 30})
	if err == nil {
		t.Fatal("expected the uncertified trace to be rejected")
	}
}

// FuzzDirtySet fuzzes the incremental scheduler's parity contract over
// generated topologies and workloads: any (stations, requests, horizon,
// seed) draw within the envelope must produce identical decisions with
// and without the dirty-component cache. Traces that never go clean pass
// vacuously (ErrNoCleanHits is tolerated — arbitrary draws need not
// repeat a component); the curated seeds all exercise the cache.
func FuzzDirtySet(f *testing.F) {
	f.Add(int64(83), uint8(8), uint8(80), uint8(25))
	f.Add(int64(7), uint8(4), uint8(30), uint8(10))
	f.Add(int64(42), uint8(6), uint8(50), uint8(15))
	f.Add(int64(1), uint8(2), uint8(12), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, stations, requests, horizon uint8) {
		nSt := int(stations)%12 + 1
		nReq := int(requests)%100 + 1
		hor := int(horizon)%30 + 1
		n := oracleNet(t, nSt, seed)
		reqs := oracleWorkload(t, workload.Config{
			NumRequests:    nReq,
			NumStations:    nSt,
			ArrivalHorizon: hor,
		}, seed+1)
		err := DiffIncrementalFull(n, reqs, seed+2, sim.Config{Horizon: hor + 20}, sim.DynamicRROptions{})
		if err != nil && !errors.Is(err, ErrNoCleanHits) {
			t.Fatal(err)
		}
	})
}
