// Batch-intake differential: below saturation, the daemon's NDJSON
// batch path must admit decision-for-decision identically to the
// single-POST path. Both harnesses drive the same spec stream into
// identically seeded engines — one via Submit per request, one via
// SubmitBatch+Flush — and must produce bit-for-bit equal replay dumps.
//
// This lives in package oracle_test because serve imports oracle (for
// the engine's invariant checker); the external test package breaks the
// cycle.
package oracle_test

import (
	"math/rand"
	"testing"

	"mecoffload/internal/mec"
	"mecoffload/internal/oracle"
	"mecoffload/internal/serve"
	"mecoffload/internal/sim"
)

// diffSpecs derives a deterministic per-slot spec stream mixing
// default-outcome specs (which consume engine randomness at admission)
// with explicit-outcome specs (which do not) — the mix is what catches
// RNG-stream divergence between the two intake paths.
func diffSpecs(stations, slots int, rng *rand.Rand) [][]serve.RequestSpec {
	out := make([][]serve.RequestSpec, slots)
	for s := range out {
		specs := make([]serve.RequestSpec, rng.Intn(5))
		for i := range specs {
			spec := serve.RequestSpec{
				AccessStation: rng.Intn(stations),
				DurationSlots: 1 + rng.Intn(6),
			}
			if rng.Intn(2) == 0 {
				spec.Outcomes = []serve.OutcomeSpec{
					{Prob: 0.5, RateMBs: 30 + rng.Float64()*20, Reward: 100 + rng.Float64()*400},
					{Prob: 0.5, RateMBs: 30 + rng.Float64()*20, Reward: 100 + rng.Float64()*400},
				}
			}
			specs[i] = spec
		}
		out[s] = specs
	}
	return out
}

// runIntake drives one engine over the spec stream and returns its
// replay dump. submit is called once per slot with that slot's specs;
// it chooses the intake path.
func runIntake(t *testing.T, specs [][]serve.RequestSpec,
	submit func(e *serve.Engine, slot []serve.RequestSpec)) *oracle.ReplayDump {
	t.Helper()
	net, err := mec.RandomNetwork(4, 3000, 3600, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	dump := &oracle.ReplayDump{}
	e, err := serve.New(serve.Config{
		Net: net,
		Rng: rand.New(rand.NewSource(7)),
		SlotObserver: func(rep sim.SlotReport) {
			if len(rep.Admitted) > 0 {
				dump.Slots = append(dump.Slots, oracle.SlotAdmissions{
					Slot:     rep.Slot,
					Admitted: append([]int(nil), rep.Admitted...),
					Reward:   rep.Reward,
				})
			}
			dump.TotalReward += rep.Reward
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	for _, slot := range specs {
		submit(e, slot)
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	// Identical drain tail so late decisions land in the same slots.
	for i := 0; i < 10; i++ {
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	dump.Submitted = int(e.Metrics().Submitted.Load())
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	return dump
}

// TestBatchIntakeMatchesSingle is the differential itself, run at two
// batching granularities: one batch per slot, and each slot split into
// two batches. Grouping must be invisible to the scheduler.
func TestBatchIntakeMatchesSingle(t *testing.T) {
	specs := diffSpecs(4, 30, rand.New(rand.NewSource(3)))
	total := 0
	for _, s := range specs {
		total += len(s)
	}
	if total == 0 {
		t.Fatal("vacuous spec stream")
	}

	single := runIntake(t, specs, func(e *serve.Engine, slot []serve.RequestSpec) {
		for _, spec := range slot {
			if _, _, err := e.Submit(spec); err != nil {
				t.Fatalf("single submit: %v", err)
			}
		}
	})
	if single.Submitted != total || len(single.Slots) == 0 {
		t.Fatalf("vacuous single-path run: submitted %d/%d, %d admitting slots",
			single.Submitted, total, len(single.Slots))
	}

	batched := runIntake(t, specs, func(e *serve.Engine, slot []serve.RequestSpec) {
		if _, err := e.SubmitBatch(slot); err != nil {
			t.Fatalf("batch submit: %v", err)
		}
		if err := e.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	})
	if !single.Equal(batched) {
		t.Fatalf("batched intake diverges from single-POST intake: %s", single.Diff(batched))
	}

	split := runIntake(t, specs, func(e *serve.Engine, slot []serve.RequestSpec) {
		mid := len(slot) / 2
		for _, part := range [][]serve.RequestSpec{slot[:mid], slot[mid:]} {
			if _, err := e.SubmitBatch(part); err != nil {
				t.Fatalf("split batch submit: %v", err)
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	})
	if !single.Equal(split) {
		t.Fatalf("split-batch intake diverges from single-POST intake: %s", single.Diff(split))
	}
}
