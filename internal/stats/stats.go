// Package stats provides the streaming summary statistics used by the
// experiment harness to aggregate metrics across repeated simulation runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates observations with Welford's online algorithm, giving
// numerically stable mean and variance without retaining samples.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, 0 for an empty summary.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, 0 for an empty summary.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, 0 for an empty summary.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance, 0 for n < 2.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval around the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// Merge folds another summary into s (parallel Welford merge).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// String formats the summary as "mean ± ci95 (n=N)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", s.Mean(), s.CI95(), s.n)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice and
// does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}
