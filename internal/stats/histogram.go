package stats

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrBadHistogram reports invalid histogram construction parameters.
var ErrBadHistogram = errors.New("stats: invalid histogram parameters")

// Histogram is a fixed-bin histogram over [Min, Max); observations outside
// the range clamp into the edge bins.
type Histogram struct {
	min, max float64
	counts   []int
	n        int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [min, max).
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins <= 0 || max <= min || math.IsNaN(min) || math.IsNaN(max) {
		return nil, fmt.Errorf("%w: [%v, %v) with %d bins", ErrBadHistogram, min, max, bins)
	}
	return &Histogram{min: min, max: max, counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	b := int((x - h.min) / (h.max - h.min) * float64(len(h.counts)))
	if b < 0 {
		b = 0
	}
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	h.counts[b]++
	h.n++
}

// N returns the number of recorded observations.
func (h *Histogram) N() int { return h.n }

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// BinRange returns the half-open value range of bin b.
func (h *Histogram) BinRange(b int) (lo, hi float64) {
	w := (h.max - h.min) / float64(len(h.counts))
	return h.min + float64(b)*w, h.min + float64(b+1)*w
}

// String renders the histogram as ASCII bars, one line per bin.
func (h *Histogram) String() string {
	var sb strings.Builder
	maxCount := 0
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	const width = 40
	for b, c := range h.counts {
		lo, hi := h.BinRange(b)
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&sb, "%8.1f-%8.1f  %6d  %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	return sb.String()
}
