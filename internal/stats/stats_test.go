package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Fatal("zero-value summary should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// Unbiased sample variance of this classic dataset is 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 should be positive for varied data")
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatalf("single-observation summary wrong: %+v", s)
	}
}

// TestMergeMatchesSequential: merging partial summaries must equal feeding
// all observations into one summary.
func TestMergeMatchesSequential(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		cut := rng.Intn(n + 1)
		var all, a, b Summary
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()*10 + 3
			all.Add(x)
			if i < cut {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-6 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 {
		t.Fatalf("n = %d after merging empty", a.N())
	}
	var c Summary
	c.Merge(&a) // merging into empty copies
	if c.N() != 1 || c.Mean() != 1 {
		t.Fatalf("empty.Merge: %+v", c)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-10, 1}, {110, 5},
		{12.5, 1.5}, // interpolated
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("P%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v", got)
	}
	if got := Sum([]float64{1, 2, 3.5}); got != 6.5 {
		t.Fatalf("sum = %v", got)
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(3)
	if got := s.String(); got == "" {
		t.Fatal("String should not be empty")
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42, math.NaN()} {
		h.Add(x)
	}
	if h.N() != 7 { // NaN ignored
		t.Fatalf("n = %d, want 7", h.N())
	}
	counts := h.Counts()
	// bins: [0,2): {0, 1.9, -3 clamped} = 3; [2,4): {2} = 1; [4,6): {5} = 1;
	// [6,8): 0; [8,10): {9.9, 42 clamped} = 2.
	want := []int{3, 1, 1, 0, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	lo, hi := h.BinRange(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("bin 1 range [%v, %v)", lo, hi)
	}
	if s := h.String(); !strings.Contains(s, "#") {
		t.Fatal("rendering has no bars")
	}
	// Counts must be a copy.
	counts[0] = 99
	if h.Counts()[0] == 99 {
		t.Fatal("Counts leaked internal state")
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("want error for empty range")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("want error for zero bins")
	}
	if _, err := NewHistogram(math.NaN(), 1, 2); err == nil {
		t.Error("want error for NaN bound")
	}
}
