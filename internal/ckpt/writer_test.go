package ckpt

import (
	"errors"
	"sync"
	"testing"
)

// TestWriterRunsInOrder proves jobs flushed by SubmitWait execute in
// submission order: the sync barrier at the end observes every prior
// async write already applied.
func TestWriterRunsInOrder(t *testing.T) {
	w := NewWriter(nil)
	defer w.Close()

	var mu sync.Mutex
	var got []int
	record := func(n int) func() error {
		return func() error {
			mu.Lock()
			got = append(got, n)
			mu.Unlock()
			return nil
		}
	}
	if err := w.SubmitWait(record(1)); err != nil {
		t.Fatalf("SubmitWait: %v", err)
	}
	if err := w.SubmitWait(record(2)); err != nil {
		t.Fatalf("SubmitWait: %v", err)
	}
	if err := w.SubmitWait(record(3)); err != nil {
		t.Fatalf("SubmitWait: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
}

// TestWriterLatestWins proves an unstarted async job is replaced by a
// newer submission and counted as dropped, while the in-flight job is
// never abandoned.
func TestWriterLatestWins(t *testing.T) {
	w := NewWriter(nil)
	defer w.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	if err := w.Submit(func() error {
		close(started)
		<-block
		return nil
	}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started // writer is busy; next submissions queue behind it

	var mu sync.Mutex
	var ran []int
	for i := 1; i <= 3; i++ {
		i := i
		if err := w.Submit(func() error {
			mu.Lock()
			ran = append(ran, i)
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	close(block)
	w.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(ran) != 1 || ran[0] != 3 {
		t.Fatalf("ran = %v, want only the latest job [3]", ran)
	}
	if d := w.Dropped(); d != 2 {
		t.Fatalf("Dropped = %d, want 2", d)
	}
}

// TestWriterSubmitWaitFlushesAsync proves a SubmitWait behind a queued
// async job lets that job run first (it is not superseded by the sync
// one — supersession only replaces the pending slot, and the async job
// already started by then or runs before the sync one is taken).
func TestWriterSubmitWaitSupersedesPendingAsync(t *testing.T) {
	w := NewWriter(nil)
	defer w.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	if err := w.Submit(func() error {
		close(started)
		<-block
		return nil
	}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started

	var asyncRan bool
	if err := w.Submit(func() error { asyncRan = true; return nil }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	syncDone := make(chan error, 1)
	go func() {
		syncDone <- w.SubmitWait(func() error { return nil })
	}()
	// The sync job replaces the queued async one (latest wins) and the
	// drop counter records it.
	for w.Dropped() != 1 {
	}
	close(block)
	if err := <-syncDone; err != nil {
		t.Fatalf("SubmitWait: %v", err)
	}
	if asyncRan {
		t.Fatal("superseded async job ran anyway")
	}
}

// TestWriterCloseFlushesPending proves Close executes the last queued
// write before stopping.
func TestWriterCloseFlushesPending(t *testing.T) {
	w := NewWriter(nil)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := w.Submit(func() error {
		close(started)
		<-block
		return nil
	}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	var ran bool
	if err := w.Submit(func() error { ran = true; return nil }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	close(block)
	w.Close()
	if !ran {
		t.Fatal("pending job dropped by Close")
	}
	if err := w.Submit(func() error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := w.SubmitWait(func() error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitWait after Close = %v, want ErrClosed", err)
	}
	w.Close() // idempotent
}

// TestWriterSubmitWaitError proves write failures reach the waiter.
func TestWriterSubmitWaitError(t *testing.T) {
	w := NewWriter(nil)
	defer w.Close()
	boom := errors.New("disk full")
	if err := w.SubmitWait(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("SubmitWait = %v, want %v", err, boom)
	}
}

// TestWriterSupersededSyncWaiterUnblocked proves a queued sync job
// replaced by a newer one gets ErrSuperseded instead of hanging.
func TestWriterSupersededSyncWaiterUnblocked(t *testing.T) {
	w := NewWriter(nil)
	defer w.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	if err := w.Submit(func() error {
		close(started)
		<-block
		return nil
	}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started

	first := make(chan error, 1)
	go func() { first <- w.SubmitWait(func() error { return nil }) }()
	// Wait until the first sync job occupies the pending slot, then
	// replace it.
	for {
		w.mu.Lock()
		queued := w.pending != nil
		w.mu.Unlock()
		if queued {
			break
		}
	}
	second := make(chan error, 1)
	go func() { second <- w.SubmitWait(func() error { return nil }) }()
	if err := <-first; !errors.Is(err, ErrSuperseded) {
		t.Fatalf("first SubmitWait = %v, want ErrSuperseded", err)
	}
	close(block)
	if err := <-second; err != nil {
		t.Fatalf("second SubmitWait = %v", err)
	}
}
