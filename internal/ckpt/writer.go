// Package ckpt provides the single-flight background checkpoint writer
// that takes durability I/O off the scheduling clock's critical path.
//
// The contract is copy-on-write: the caller extracts a self-contained
// snapshot of its state (cheap clones — the serve and cluster checkpoint
// structs share nothing mutable with the live engine) while holding its
// own locks, then hands the writer a closure that performs the expensive
// part — JSON encoding, temp-file write, fsync, atomic rename — on the
// writer's goroutine. At most one write runs at a time and at most one
// waits: a snapshot queued behind an unstarted one replaces it
// (latest-wins), because an older generation that never reached disk is
// strictly dominated by the newer one. Dropped generations are counted,
// never silently lost ordering: every job that does run, runs in
// submission order, so a synchronous SubmitWait also flushes everything
// submitted before it.
package ckpt

import (
	"errors"
	"sync"
)

// Errors returned by Submit/SubmitWait.
var (
	// ErrClosed reports a submission after Close.
	ErrClosed = errors.New("ckpt: writer closed")
	// ErrSuperseded reports that a queued synchronous job was replaced
	// by a newer snapshot before it started writing. With the intended
	// single-producer usage (one clock goroutine submitting) it cannot
	// happen; it exists so a stray concurrent producer strands no waiter.
	ErrSuperseded = errors.New("ckpt: write superseded by a newer snapshot")
)

// job is one queued write: the closure plus, for SubmitWait, the waiter.
type job struct {
	run  func() error
	done chan error // nil for fire-and-forget Submit
}

// Writer serializes checkpoint writes onto one background goroutine with
// single-flight, latest-wins semantics.
type Writer struct {
	logf func(format string, args ...any)

	mu      sync.Mutex
	cond    *sync.Cond
	pending *job
	writing bool
	closed  bool
	dropped uint64

	loopDone chan struct{}
}

// NewWriter starts a writer. logf (optional) receives failures of
// fire-and-forget writes; synchronous failures return to the caller.
func NewWriter(logf func(format string, args ...any)) *Writer {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	w := &Writer{logf: logf, loopDone: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	go w.loop()
	return w
}

func (w *Writer) loop() {
	defer close(w.loopDone)
	w.mu.Lock()
	for {
		for w.pending == nil && !w.closed {
			w.cond.Wait()
		}
		if w.pending == nil {
			// Closed with nothing queued: Close drains before exit, so
			// reaching here means every submitted write hit disk.
			w.mu.Unlock()
			return
		}
		j := w.pending
		w.pending = nil
		w.writing = true
		w.mu.Unlock()

		err := j.run()
		if j.done != nil {
			j.done <- err
		} else if err != nil {
			w.logf("ckpt: background checkpoint write failed: %v", err)
		}

		w.mu.Lock()
		w.writing = false
		w.cond.Broadcast()
	}
}

// enqueue replaces any unstarted pending job with j (latest-wins).
func (w *Writer) enqueue(j *job) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if old := w.pending; old != nil {
		if old.done != nil {
			old.done <- ErrSuperseded
		} else {
			w.dropped++
		}
	}
	w.pending = j
	w.cond.Broadcast()
	return nil
}

// Submit queues a write and returns immediately. If an unstarted write
// is already queued, the new one replaces it and the dropped counter
// advances — the snapshot the caller just extracted is strictly newer.
func (w *Writer) Submit(run func() error) error {
	return w.enqueue(&job{run: run})
}

// SubmitWait queues a write and blocks until it completes, returning its
// error. Because jobs execute in submission order, SubmitWait also acts
// as a flush barrier: every write submitted before it has finished (or
// been superseded by this one) by the time it returns. Stop paths use it
// so the final checkpoint is durable — and not racing an older
// in-flight write's rename — before shutdown proceeds.
func (w *Writer) SubmitWait(run func() error) error {
	done := make(chan error, 1)
	if err := w.enqueue(&job{run: run, done: done}); err != nil {
		return err
	}
	return <-done
}

// Wait blocks until the writer is idle: no write queued, none in flight.
func (w *Writer) Wait() {
	w.mu.Lock()
	for w.pending != nil || w.writing {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// Dropped returns how many queued snapshots were superseded before
// reaching disk.
func (w *Writer) Dropped() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropped
}

// Close drains the queue (the last pending write still executes), stops
// the goroutine, and waits for it to exit. Idempotent; submissions after
// Close fail with ErrClosed.
func (w *Writer) Close() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.loopDone
}
