package workload

import (
	"fmt"
	"math"
	"math/rand"

	"mecoffload/internal/mec"
)

// ArrivalProcess generates request arrival slots over a horizon.
type ArrivalProcess interface {
	// Arrivals returns n non-decreasing arrival slots in [0, horizon).
	Arrivals(n, horizon int, rng *rand.Rand) ([]int, error)
}

// UniformArrivals scatters arrivals independently and uniformly — the
// default process of Generate when ArrivalHorizon is set.
type UniformArrivals struct{}

// Arrivals implements ArrivalProcess.
func (UniformArrivals) Arrivals(n, horizon int, rng *rand.Rand) ([]int, error) {
	if n < 0 || horizon <= 0 {
		return nil, fmt.Errorf("%w: n=%d horizon=%d", ErrBadConfig, n, horizon)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(horizon)
	}
	insertionSortInts(out)
	return out, nil
}

// PoissonArrivals draws inter-arrival gaps from an exponential
// distribution with the rate implied by n/horizon, then rescales into the
// horizon — a memoryless stream of AR session starts.
type PoissonArrivals struct{}

// Arrivals implements ArrivalProcess.
func (PoissonArrivals) Arrivals(n, horizon int, rng *rand.Rand) ([]int, error) {
	if n < 0 || horizon <= 0 {
		return nil, fmt.Errorf("%w: n=%d horizon=%d", ErrBadConfig, n, horizon)
	}
	if n == 0 {
		return nil, nil
	}
	// Sort of a Poisson bridge: cumulative exponential gaps normalized to
	// the horizon keep exactly n arrivals while preserving the clumping
	// statistics of a Poisson process.
	gaps := make([]float64, n)
	total := 0.0
	for i := range gaps {
		gaps[i] = rng.ExpFloat64()
		total += gaps[i]
	}
	out := make([]int, n)
	acc := 0.0
	for i, g := range gaps {
		acc += g
		slot := int(acc / total * float64(horizon))
		if slot >= horizon {
			slot = horizon - 1
		}
		out[i] = slot
	}
	return out, nil
}

// BurstArrivals packs arrivals into a number of bursts (users joining a
// shared AR session in waves), each burst spanning burstWidth slots.
type BurstArrivals struct {
	// Bursts is the number of waves (minimum 1).
	Bursts int
	// BurstWidth is the spread of each wave in slots (minimum 1).
	BurstWidth int
}

// Arrivals implements ArrivalProcess.
func (b BurstArrivals) Arrivals(n, horizon int, rng *rand.Rand) ([]int, error) {
	if n < 0 || horizon <= 0 {
		return nil, fmt.Errorf("%w: n=%d horizon=%d", ErrBadConfig, n, horizon)
	}
	bursts := b.Bursts
	if bursts < 1 {
		bursts = 1
	}
	width := b.BurstWidth
	if width < 1 {
		width = 1
	}
	out := make([]int, n)
	for i := range out {
		wave := i * bursts / int(math.Max(float64(n), 1))
		start := wave * horizon / bursts
		slot := start + rng.Intn(width)
		if slot >= horizon {
			slot = horizon - 1
		}
		out[i] = slot
	}
	insertionSortInts(out)
	return out, nil
}

// ApplyArrivals re-draws the arrival slots of an existing workload using
// the given process, preserving everything else. Request IDs are
// renumbered to match the new time order; realization state is cleared.
func ApplyArrivals(reqs []*mec.Request, proc ArrivalProcess, horizon int, rng *rand.Rand) error {
	arrivals, err := proc.Arrivals(len(reqs), horizon, rng)
	if err != nil {
		return err
	}
	for i, r := range reqs {
		r.ArrivalSlot = arrivals[i]
		r.ResetRealization()
	}
	// The processes return sorted slots, so IDs stay aligned with time.
	for i, r := range reqs {
		r.ID = i
	}
	return nil
}
