package workload

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestTraceRoundTrip saves a generated trace and loads it back: the
// reconstructed trace must be identical, down to the derived rates.
func TestTraceRoundTrip(t *testing.T) {
	tr, err := GenerateTrace(120, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
	if !reflect.DeepEqual(got.RawRatesMBs(), tr.RawRatesMBs()) {
		t.Fatal("derived raw rates diverge after round-trip")
	}
	if !reflect.DeepEqual(got.ScaleToRate(30, 50), tr.ScaleToRate(30, 50)) {
		t.Fatal("scaled rates diverge after round-trip")
	}
}

// TestReadTraceDefaultsAndValidation covers the defaulting and rejection
// paths of the loader.
func TestReadTraceDefaultsAndValidation(t *testing.T) {
	got, err := ReadTrace(strings.NewReader(`{"fps": [90, 95, 100]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameKb != TraceFrameKb {
		t.Fatalf("missing frameKb defaulted to %v, want %v", got.FrameKb, TraceFrameKb)
	}

	cases := []string{
		`{`,                               // malformed JSON
		`{"fps": []}`,                     // empty
		`{"fps": [90, 0]}`,                // non-positive fps
		`{"fps": [90], "frameKb": -64}`,   // negative frame size
		`{"fps": [90, -5], "frameKb": 1}`, // negative fps
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("trace %q accepted", c)
		}
	}

	bad := &FrameTrace{FPS: nil, FrameKb: 64}
	if err := bad.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("empty trace written without error")
	}
}
