// Package workload generates synthetic AR request workloads matching the
// paper's evaluation settings (Section VI-A) and a frame-level trace
// generator that reproduces the statistics of the real AR dataset the
// paper adopts from Braud et al. [5] (64Kb JPEG frames at 90-120 fps,
// four-stage pipelines, data rates of 30-50 MB/s).
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"mecoffload/internal/dist"
	"mecoffload/internal/mec"
)

// Paper-default workload parameters (Section VI-A).
const (
	DefaultMinRate       = 30.0 // MB/s
	DefaultMaxRate       = 50.0 // MB/s
	DefaultMinUnitReward = 12.0 // dollars per MB/s
	DefaultMaxUnitReward = 15.0 // dollars per MB/s
	DefaultMinTasks      = 4
	DefaultMaxTasks      = 4
	DefaultRateSupport   = 5 // |DR|: distinct candidate data rates
)

// ErrBadConfig reports invalid workload parameters.
var ErrBadConfig = errors.New("workload: invalid config")

// PipelineStage describes one canonical AR pipeline stage.
type PipelineStage struct {
	Name     string
	OutputKb float64
	// BaseWorkMS is the nominal processing delay of rho_unit data for
	// this stage on a speed-factor-1 station.
	BaseWorkMS float64
}

// CanonicalPipeline returns the paper's four-stage AR pipeline: render
// object (100Kb), track objects (64Kb), update world model (64Kb),
// recognize objects (64Kb). Rendering is the most computing-intensive
// stage (Section III-B).
func CanonicalPipeline() []PipelineStage {
	return []PipelineStage{
		{Name: "render", OutputKb: 100, BaseWorkMS: 30},
		{Name: "track", OutputKb: 64, BaseWorkMS: 12},
		{Name: "world-model", OutputKb: 64, BaseWorkMS: 10},
		{Name: "recognize", OutputKb: 64, BaseWorkMS: 20},
	}
}

// Config parameterizes request generation. The zero value plus NumRequests
// reproduces the paper defaults.
type Config struct {
	// NumRequests is the workload size |R|.
	NumRequests int
	// NumStations is the number of base stations users attach to.
	NumStations int
	// MinRate and MaxRate bound the data-rate support DR in MB/s. Zero
	// values select [30, 50].
	MinRate, MaxRate float64
	// RateSupport is |DR|, the number of distinct candidate rates per
	// request (zero selects 5).
	RateSupport int
	// MinUnitReward and MaxUnitReward bound the per-MB/s reward in
	// dollars. Zero values select [12, 15].
	MinUnitReward, MaxUnitReward float64
	// MinTasks and MaxTasks bound pipeline length. Zero values select
	// [3, 5].
	MinTasks, MaxTasks int
	// DeadlineMS is the latency requirement (zero selects 200 ms).
	DeadlineMS float64
	// ArrivalHorizon spreads arrivals uniformly over slots
	// [0, ArrivalHorizon); zero puts every arrival at slot 0 (the offline
	// problem).
	ArrivalHorizon int
	// MinDurationSlots and MaxDurationSlots bound how long an admitted
	// stream occupies its service instance. Zero values select [20, 60]
	// slots (1-3 s at the default 50 ms slot).
	MinDurationSlots, MaxDurationSlots int
	// GeometricRates, when true, draws rate distributions whose mass
	// decays geometrically with rate ("the probability of requests with
	// large data rates is usually small"); otherwise uniform.
	GeometricRates bool
	// RateDecay is the geometric decay factor (zero selects 0.7).
	RateDecay float64
	// IndependentRewards switches to the paper's demand-independent
	// reward model: each outcome's reward is uniform in
	// [MinUnitReward, MaxUnitReward] * E[default rate] regardless of its
	// rate, instead of unit price * rate. See dist.IndependentRateReward.
	IndependentRewards bool
}

func (c *Config) fill() error {
	if c.NumRequests <= 0 || c.NumStations <= 0 {
		return fmt.Errorf("%w: requests=%d stations=%d", ErrBadConfig, c.NumRequests, c.NumStations)
	}
	if c.MinRate == 0 && c.MaxRate == 0 {
		c.MinRate, c.MaxRate = DefaultMinRate, DefaultMaxRate
	}
	if c.RateSupport == 0 {
		c.RateSupport = DefaultRateSupport
	}
	if c.MinUnitReward == 0 && c.MaxUnitReward == 0 {
		c.MinUnitReward, c.MaxUnitReward = DefaultMinUnitReward, DefaultMaxUnitReward
	}
	if c.MinTasks == 0 && c.MaxTasks == 0 {
		c.MinTasks, c.MaxTasks = DefaultMinTasks, DefaultMaxTasks
	}
	if c.DeadlineMS == 0 {
		c.DeadlineMS = mec.DefaultDeadlineMS
	}
	if c.RateDecay == 0 {
		c.RateDecay = 0.7
	}
	if c.MinDurationSlots == 0 && c.MaxDurationSlots == 0 {
		c.MinDurationSlots, c.MaxDurationSlots = 20, 60
	}
	if c.MinRate < 0 || c.MaxRate < c.MinRate || c.RateSupport < 1 ||
		c.MinUnitReward < 0 || c.MaxUnitReward < c.MinUnitReward ||
		c.MinTasks < 1 || c.MaxTasks < c.MinTasks || c.DeadlineMS <= 0 ||
		c.ArrivalHorizon < 0 || c.RateDecay <= 0 || c.RateDecay >= 1 ||
		c.MinDurationSlots < 1 || c.MaxDurationSlots < c.MinDurationSlots {
		return fmt.Errorf("%w: %+v", ErrBadConfig, *c)
	}
	return nil
}

// Generate produces a workload of AR requests. Request IDs are 0..N-1 and
// arrival slots are non-decreasing.
func Generate(cfg Config, rng *rand.Rand) ([]*mec.Request, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	stages := CanonicalPipeline()
	reqs := make([]*mec.Request, cfg.NumRequests)
	arrivals := make([]int, cfg.NumRequests)
	for i := range arrivals {
		if cfg.ArrivalHorizon > 0 {
			arrivals[i] = rng.Intn(cfg.ArrivalHorizon)
		}
	}
	// Non-decreasing arrivals keep request IDs aligned with time order.
	insertionSortInts(arrivals)

	for j := range reqs {
		nTasks := cfg.MinTasks
		if cfg.MaxTasks > cfg.MinTasks {
			nTasks += rng.Intn(cfg.MaxTasks - cfg.MinTasks + 1)
		}
		tasks := make([]mec.Task, nTasks)
		for k := range tasks {
			// The first task of every pipeline is the render stage (the
			// dominant one); the rest cycle through the remaining stages.
			var st PipelineStage
			if k == 0 {
				st = stages[0]
			} else {
				st = stages[1+(k-1)%(len(stages)-1)]
			}
			jitter := 0.95 + rng.Float64()*0.1
			tasks[k] = mec.Task{
				Name:     st.Name,
				OutputKb: st.OutputKb,
				WorkMS:   st.BaseWorkMS * jitter,
			}
		}

		var (
			d   *dist.RateReward
			err error
		)
		switch {
		case cfg.IndependentRewards:
			// Scale the reward range so totals stay comparable with the
			// unit-price model at the mean rate.
			meanRate := (cfg.MinRate + cfg.MaxRate) / 2
			decay := 0.0
			if cfg.GeometricRates {
				decay = cfg.RateDecay
			}
			d, err = dist.IndependentRateReward(cfg.RateSupport, cfg.MinRate, cfg.MaxRate,
				cfg.MinUnitReward*meanRate, cfg.MaxUnitReward*meanRate, decay, rng)
		case cfg.GeometricRates:
			d, err = dist.GeometricRateReward(cfg.RateSupport, cfg.MinRate, cfg.MaxRate,
				cfg.MinUnitReward, cfg.MaxUnitReward, cfg.RateDecay, rng)
		default:
			d, err = dist.UniformRateReward(cfg.RateSupport, cfg.MinRate, cfg.MaxRate,
				cfg.MinUnitReward, cfg.MaxUnitReward, rng)
		}
		if err != nil {
			return nil, fmt.Errorf("workload: request %d distribution: %w", j, err)
		}

		duration := cfg.MinDurationSlots
		if cfg.MaxDurationSlots > cfg.MinDurationSlots {
			duration += rng.Intn(cfg.MaxDurationSlots - cfg.MinDurationSlots + 1)
		}
		reqs[j] = &mec.Request{
			ID:            j,
			ArrivalSlot:   arrivals[j],
			AccessStation: rng.Intn(cfg.NumStations),
			Tasks:         tasks,
			DeadlineMS:    cfg.DeadlineMS,
			DurationSlots: duration,
			Dist:          d,
		}
		if err := reqs[j].Validate(); err != nil {
			return nil, err
		}
	}
	return reqs, nil
}

// Reset clears the realization state of every request so another algorithm
// can replay the same workload.
func Reset(reqs []*mec.Request) {
	for _, r := range reqs {
		r.ResetRealization()
	}
}

// Clone deep-copies the workload's mutable state (realizations cleared);
// distributions and tasks are shared immutable data.
func Clone(reqs []*mec.Request) []*mec.Request {
	out := make([]*mec.Request, len(reqs))
	for i, r := range reqs {
		out[i] = r.CloneShallow()
	}
	return out
}

func insertionSortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
