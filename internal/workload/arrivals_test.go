package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func checkArrivalInvariants(t *testing.T, name string, proc ArrivalProcess) {
	t.Helper()
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		horizon := 1 + rng.Intn(150)
		out, err := proc.Arrivals(n, horizon, rng)
		if err != nil {
			return false
		}
		if len(out) != n {
			return false
		}
		prev := 0
		for _, a := range out {
			if a < prev || a >= horizon {
				return false
			}
			prev = a
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if _, err := proc.Arrivals(5, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatalf("%s: want error for zero horizon", name)
	}
}

func TestArrivalProcessInvariants(t *testing.T) {
	checkArrivalInvariants(t, "uniform", UniformArrivals{})
	checkArrivalInvariants(t, "poisson", PoissonArrivals{})
	checkArrivalInvariants(t, "burst", BurstArrivals{Bursts: 4, BurstWidth: 3})
	checkArrivalInvariants(t, "burst-defaults", BurstArrivals{})
}

func TestBurstArrivalsClump(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	out, err := BurstArrivals{Bursts: 4, BurstWidth: 2}.Arrivals(100, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	// All arrivals must land within the 4 waves' windows: [0,2), [25,27),
	// [50,52), [75,77).
	occupied := map[int]int{}
	for _, a := range out {
		occupied[a]++
	}
	if len(occupied) > 8 {
		t.Fatalf("burst arrivals spread over %d distinct slots, want <= 8", len(occupied))
	}
}

func TestPoissonArrivalsSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	out, err := PoissonArrivals{}.Arrivals(300, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[int]bool{}
	for _, a := range out {
		distinct[a] = true
	}
	if len(distinct) < 50 {
		t.Fatalf("poisson arrivals hit only %d distinct slots", len(distinct))
	}
}

func TestApplyArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	reqs, err := Generate(Config{NumRequests: 30, NumStations: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		r.Realize(rng)
	}
	if err := ApplyArrivals(reqs, BurstArrivals{Bursts: 3, BurstWidth: 2}, 60, rng); err != nil {
		t.Fatal(err)
	}
	prev := 0
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("IDs not renumbered: %d at %d", r.ID, i)
		}
		if r.ArrivalSlot < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = r.ArrivalSlot
		if _, ok := r.Realized(); ok {
			t.Fatal("realization state must be cleared")
		}
	}
}
