package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"mecoffload/internal/dist"
)

// Braud-style trace constants: the real AR dataset the paper adopts
// captures JPEG frames of 64Kb uploaded at 90-120 frames per second
// (Section VI-A). One frame is 64 Kb = 8 KB = 0.008 MB.
const (
	TraceFrameKb  = 64.0
	TraceMinFPS   = 90
	TraceMaxFPS   = 120
	kbPerMB       = 8000.0
	traceFrameDur = 1.0 // seconds per trace sample
)

// FrameTrace is a synthetic substitute for the paper's real AR capture
// trace: a per-second sequence of frame counts from which empirical data
// rates are derived. The paper scales the raw camera stream by the
// pipeline's intermediate matrices to rates of 30-50 MB/s; ScaleToRate
// performs the same normalization.
type FrameTrace struct {
	// FPS holds one frames-per-second sample per elapsed second.
	FPS []int
	// FrameKb is the size of each captured frame in kilobits.
	FrameKb float64
}

// GenerateTrace draws a trace of the given duration (seconds) with
// per-second fps samples uniform in [TraceMinFPS, TraceMaxFPS], modulated
// by a slow random walk that models scene-dependent capture-rate drift.
func GenerateTrace(seconds int, rng *rand.Rand) (*FrameTrace, error) {
	if seconds <= 0 {
		return nil, fmt.Errorf("%w: duration %d s", ErrBadConfig, seconds)
	}
	fps := make([]int, seconds)
	level := TraceMinFPS + rng.Intn(TraceMaxFPS-TraceMinFPS+1)
	for i := range fps {
		// Random walk with reflection at the bounds.
		level += rng.Intn(11) - 5
		if level < TraceMinFPS {
			level = 2*TraceMinFPS - level
		}
		if level > TraceMaxFPS {
			level = 2*TraceMaxFPS - level
		}
		fps[i] = level
	}
	return &FrameTrace{FPS: fps, FrameKb: TraceFrameKb}, nil
}

// traceJSON is the serialized form of a FrameTrace. The format is the
// natural JSON of the struct, so hand-written or externally captured
// traces load too.
type traceJSON struct {
	FPS     []int   `json:"fps"`
	FrameKb float64 `json:"frameKb"`
}

// Validate checks a trace is usable: non-empty, positive frame size,
// positive per-second frame counts.
func (t *FrameTrace) Validate() error {
	if len(t.FPS) == 0 {
		return fmt.Errorf("%w: empty trace", ErrBadConfig)
	}
	if t.FrameKb <= 0 {
		return fmt.Errorf("%w: frame size %v Kb", ErrBadConfig, t.FrameKb)
	}
	for i, f := range t.FPS {
		if f <= 0 {
			return fmt.Errorf("%w: fps[%d] = %d", ErrBadConfig, i, f)
		}
	}
	return nil
}

// WriteJSON serializes the trace.
func (t *FrameTrace) WriteJSON(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceJSON{FPS: t.FPS, FrameKb: t.FrameKb})
}

// ReadTrace deserializes and validates a trace written by WriteJSON (or
// captured externally in the same shape). A missing frameKb field takes
// the Braud-trace default.
func ReadTrace(r io.Reader) (*FrameTrace, error) {
	var tj traceJSON
	if err := json.NewDecoder(r).Decode(&tj); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	if tj.FrameKb == 0 {
		tj.FrameKb = TraceFrameKb
	}
	t := &FrameTrace{FPS: tj.FPS, FrameKb: tj.FrameKb}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// RawRatesMBs returns the per-second raw camera data rates in MB/s
// (fps * frame size). These are well below the pipeline rates because the
// intermediate matrices of the AR pipeline amplify the stream.
func (t *FrameTrace) RawRatesMBs() []float64 {
	out := make([]float64, len(t.FPS))
	for i, f := range t.FPS {
		out[i] = float64(f) * t.FrameKb / kbPerMB
	}
	return out
}

// ScaleToRate linearly maps the trace's raw rates onto [minRate, maxRate]
// MB/s, reproducing the paper's normalization of the Braud trace to
// pipeline rates of 30-50 MB/s. A constant trace maps to minRate.
func (t *FrameTrace) ScaleToRate(minRate, maxRate float64) []float64 {
	raw := t.RawRatesMBs()
	lo, hi := raw[0], raw[0]
	for _, r := range raw {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	out := make([]float64, len(raw))
	for i, r := range raw {
		frac := 0.0
		if hi > lo {
			frac = (r - lo) / (hi - lo)
		}
		out[i] = minRate + frac*(maxRate-minRate)
	}
	return out
}

// EmpiricalDistribution converts the trace into a request-ready (rate,
// reward) distribution: the scaled rates are bucketed into support
// distinct values with empirical frequencies, and each rate is priced with
// a unit reward drawn uniformly from [minUnitReward, maxUnitReward].
func (t *FrameTrace) EmpiricalDistribution(support int, minRate, maxRate, minUnitReward, maxUnitReward float64, rng *rand.Rand) (*dist.RateReward, error) {
	if support <= 0 {
		return nil, fmt.Errorf("%w: support %d", ErrBadConfig, support)
	}
	rates := t.ScaleToRate(minRate, maxRate)
	counts := make([]int, support)
	for _, r := range rates {
		b := 0
		if maxRate > minRate {
			b = int((r - minRate) / (maxRate - minRate) * float64(support))
		}
		if b >= support {
			b = support - 1
		}
		counts[b]++
	}
	outcomes := make([]dist.Outcome, 0, support)
	for b, c := range counts {
		if c == 0 {
			continue
		}
		var rate float64
		if support == 1 {
			rate = minRate
		} else {
			rate = minRate + (float64(b)+0.5)*(maxRate-minRate)/float64(support)
		}
		unit := minUnitReward + rng.Float64()*(maxUnitReward-minUnitReward)
		outcomes = append(outcomes, dist.Outcome{
			Rate:   rate,
			Prob:   float64(c) / float64(len(rates)),
			Reward: unit * rate,
		})
	}
	return dist.NewRateReward(outcomes)
}
