package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mecoffload/internal/mec"
)

func TestGenerateDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	reqs, err := Generate(Config{NumRequests: 50, NumStations: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 50 {
		t.Fatalf("generated %d requests", len(reqs))
	}
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if r.ArrivalSlot != 0 {
			t.Fatalf("offline workload must arrive at slot 0, got %d", r.ArrivalSlot)
		}
		if r.AccessStation < 0 || r.AccessStation >= 10 {
			t.Fatalf("access station %d out of range", r.AccessStation)
		}
		if len(r.Tasks) != DefaultMinTasks {
			t.Fatalf("pipeline length %d, want %d", len(r.Tasks), DefaultMinTasks)
		}
		if r.Tasks[0].Name != "render" {
			t.Fatalf("first task %q, want render", r.Tasks[0].Name)
		}
		if r.DeadlineMS != mec.DefaultDeadlineMS {
			t.Fatalf("deadline %v", r.DeadlineMS)
		}
		if r.Dist.MinRate() < DefaultMinRate-1e-9 || r.Dist.MaxRate() > DefaultMaxRate+1e-9 {
			t.Fatalf("rates [%v, %v] outside defaults", r.Dist.MinRate(), r.Dist.MaxRate())
		}
		if r.DurationSlots < 20 || r.DurationSlots > 60 {
			t.Fatalf("duration %d outside [20, 60]", r.DurationSlots)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("generated request invalid: %v", err)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bad := []Config{
		{},
		{NumRequests: 5},
		{NumRequests: 5, NumStations: 3, MinRate: 50, MaxRate: 30},
		{NumRequests: 5, NumStations: 3, MinTasks: 3, MaxTasks: 2},
		{NumRequests: 5, NumStations: 3, ArrivalHorizon: -1},
		{NumRequests: 5, NumStations: 3, RateDecay: 1.5},
		{NumRequests: 5, NumStations: 3, MinDurationSlots: 5, MaxDurationSlots: 2},
		{NumRequests: 5, NumStations: 3, DeadlineMS: -10},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, rng); err == nil {
			t.Errorf("config %d (%+v): want error", i, cfg)
		}
	}
}

func TestGenerateArrivalsSortedWithinHorizon(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs, err := Generate(Config{NumRequests: 40, NumStations: 5, ArrivalHorizon: 30}, rng)
		if err != nil {
			return false
		}
		prev := 0
		for _, r := range reqs {
			if r.ArrivalSlot < prev || r.ArrivalSlot >= 30 {
				return false
			}
			prev = r.ArrivalSlot
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateGeometricRates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	reqs, err := Generate(Config{NumRequests: 10, NumStations: 3, GeometricRates: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		outs := r.Dist.Outcomes()
		for i := 1; i < len(outs); i++ {
			if outs[i].Prob >= outs[i-1].Prob {
				t.Fatal("geometric workload should have decaying rate mass")
			}
		}
	}
}

func TestResetAndClone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	reqs, err := Generate(Config{NumRequests: 5, NumStations: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		r.Realize(rng)
	}
	clone := Clone(reqs)
	for i, c := range clone {
		if _, ok := c.Realized(); ok {
			t.Fatal("clone must clear realization")
		}
		if c == reqs[i] {
			t.Fatal("clone must copy request structs")
		}
	}
	// Originals still realized until Reset.
	if _, ok := reqs[0].Realized(); !ok {
		t.Fatal("original lost realization")
	}
	Reset(reqs)
	for _, r := range reqs {
		if _, ok := r.Realized(); ok {
			t.Fatal("Reset did not clear realization")
		}
	}
}

func TestCanonicalPipeline(t *testing.T) {
	stages := CanonicalPipeline()
	if len(stages) != 4 {
		t.Fatalf("canonical pipeline has %d stages, want 4", len(stages))
	}
	if stages[0].Name != "render" || stages[0].OutputKb != 100 {
		t.Fatalf("first stage %+v, want render/100Kb", stages[0])
	}
	// Rendering is the most computing-intensive task (Section III-B).
	for _, st := range stages[1:] {
		if st.BaseWorkMS >= stages[0].BaseWorkMS {
			t.Fatalf("stage %s work %v >= render %v", st.Name, st.BaseWorkMS, stages[0].BaseWorkMS)
		}
		if st.OutputKb != 64 {
			t.Fatalf("stage %s output %v, want 64", st.Name, st.OutputKb)
		}
	}
}

func TestGenerateTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr, err := GenerateTrace(120, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.FPS) != 120 {
		t.Fatalf("trace length %d", len(tr.FPS))
	}
	for _, f := range tr.FPS {
		if f < TraceMinFPS || f > TraceMaxFPS {
			t.Fatalf("fps %d outside [%d, %d]", f, TraceMinFPS, TraceMaxFPS)
		}
	}
	if _, err := GenerateTrace(0, rng); err == nil {
		t.Fatal("want error for zero duration")
	}
}

func TestTraceRawRates(t *testing.T) {
	tr := &FrameTrace{FPS: []int{100}, FrameKb: 64}
	raw := tr.RawRatesMBs()
	// 100 frames/s * 64 Kb / 8000 Kb-per-MB = 0.8 MB/s.
	if math.Abs(raw[0]-0.8) > 1e-12 {
		t.Fatalf("raw rate %v, want 0.8", raw[0])
	}
}

func TestTraceScaleToRate(t *testing.T) {
	tr := &FrameTrace{FPS: []int{90, 105, 120}, FrameKb: 64}
	scaled := tr.ScaleToRate(30, 50)
	if scaled[0] != 30 || scaled[2] != 50 {
		t.Fatalf("scaled endpoints %v", scaled)
	}
	if scaled[1] <= 30 || scaled[1] >= 50 {
		t.Fatalf("midpoint %v not interior", scaled[1])
	}
	// Constant trace maps to the minimum.
	flat := &FrameTrace{FPS: []int{100, 100}, FrameKb: 64}
	fs := flat.ScaleToRate(30, 50)
	if fs[0] != 30 || fs[1] != 30 {
		t.Fatalf("flat trace scaled to %v, want all 30", fs)
	}
}

func TestTraceEmpiricalDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr, err := GenerateTrace(300, rng)
	if err != nil {
		t.Fatal(err)
	}
	d, err := tr.EmpiricalDistribution(5, 30, 50, 12, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() < 1 || d.Len() > 5 {
		t.Fatalf("support %d", d.Len())
	}
	if d.MinRate() < 30 || d.MaxRate() > 50 {
		t.Fatalf("rates [%v, %v]", d.MinRate(), d.MaxRate())
	}
	if _, err := tr.EmpiricalDistribution(0, 30, 50, 12, 15, rng); err == nil {
		t.Fatal("want error for zero support")
	}
}
