// Package serve turns the repo's offline AR-offloading simulation into a
// long-running admission daemon: requests arrive over an HTTP JSON API,
// buffer into the current scheduling slot, and a wall-clock ticker runs a
// sim.Scheduler (the paper's DynamicRR by default) against live
// per-station capacity state, reusing the warm-started LP-PT bases across
// consecutive ticks. Mutable observability state is sharded across
// goroutine-owned shards (shard.go); bandit arm statistics and in-flight
// assignments checkpoint to disk (checkpoint.go) so a restarted daemon
// resumes learning instead of resetting its successive-elimination state.
package serve

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mecoffload/internal/bandit"
	"mecoffload/internal/ckpt"
	"mecoffload/internal/core"
	"mecoffload/internal/dist"
	"mecoffload/internal/mec"
	"mecoffload/internal/oracle"
	"mecoffload/internal/rnd"
	"mecoffload/internal/sim"
	"mecoffload/internal/workload"
)

// Errors returned by the engine's public API.
var (
	ErrStopped  = errors.New("serve: engine stopped")
	ErrDraining = errors.New("serve: engine draining, not accepting requests")
	ErrBadSpec  = errors.New("serve: invalid request spec")
	// ErrNotPending reports that Extract found no undecided request with
	// the given id: it already scheduled, departed, expired, shed, or
	// never existed. Migration treats it as a benign abort.
	ErrNotPending = errors.New("serve: request is not pending")
)

// TaskSpec is one pipeline stage of a submitted request.
type TaskSpec struct {
	Name     string  `json:"name"`
	OutputKb float64 `json:"outputKb"`
	WorkMS   float64 `json:"workMS"`
}

// OutcomeSpec is one (rate, reward) outcome of a submitted request's
// demand distribution.
type OutcomeSpec struct {
	RateMBs float64 `json:"rateMBs"`
	Prob    float64 `json:"prob"`
	Reward  float64 `json:"reward"`
}

// RequestSpec is the JSON body of POST /v1/requests. Zero-valued fields
// take the paper's workload defaults: a 200 ms deadline, a 20-slot hold,
// the canonical four-stage AR pipeline, and a five-point demand
// distribution over 30-50 MB/s.
type RequestSpec struct {
	AccessStation int           `json:"accessStation"`
	DeadlineMS    float64       `json:"deadlineMS,omitempty"`
	DurationSlots int           `json:"durationSlots,omitempty"`
	Tasks         []TaskSpec    `json:"tasks,omitempty"`
	Outcomes      []OutcomeSpec `json:"outcomes,omitempty"`
}

// Config parameterizes New.
type Config struct {
	// Net is the MEC topology to serve (required).
	Net *mec.Network
	// SchedulerName selects the per-slot scheduler: "dynamicrr"
	// (default), "local-ratio" (DynamicRR with the LP-free local-ratio
	// fast path on), "ocorp", "greedy", or "heukkt". The engine
	// constructs the scheduler itself so a checkpointed bandit state can
	// be restored into it.
	SchedulerName string
	// DynamicRR tunes the default scheduler; ignored for baselines.
	DynamicRR sim.DynamicRROptions
	// TickInterval is the wall-clock length of one scheduling slot. Zero
	// disables the internal ticker: slots advance only via Tick, the mode
	// tests and benchmarks use.
	TickInterval time.Duration
	// SlotLengthMS is the model slot length (default
	// mec.DefaultSlotLengthMS); it is independent of TickInterval so a
	// daemon can replay model time faster or slower than the wall clock.
	SlotLengthMS float64
	// Rng drives demand realization and spec defaults. Required.
	Rng *rand.Rand
	// Shards is the number of state shards (default 4, at most one per
	// station).
	Shards int
	// CheckpointPath, when set, enables checkpointing: New restores from
	// the file when it exists, and the engine rewrites it every
	// CheckpointEvery ticks (default 50) and at shutdown.
	CheckpointPath  string
	CheckpointEvery int
	// AsyncCheckpoint moves periodic checkpoint I/O off the loop
	// goroutine: the slot boundary only extracts a copy-on-write
	// snapshot, and JSON encoding, the temp-file write, fsync, and the
	// atomic rename run on a dedicated single-flight writer goroutine
	// (internal/ckpt). A snapshot queued behind an unfinished write is
	// replaced by the next one (latest wins); explicit CheckpointNow,
	// drain, and Stop checkpoints remain synchronous through the same
	// writer, so the final state is always durable and never clobbered
	// by an older in-flight write's rename.
	AsyncCheckpoint bool
	// Restore, when non-nil, seeds the engine from an in-memory
	// checkpoint instead of loading CheckpointPath. The cluster layer
	// uses it to hand each shard its slice of a composed cluster
	// manifest; CheckpointPath may still be set for subsequent periodic
	// rewrites.
	Restore *Checkpoint
	// DeferFeedback suppresses the planner's in-slot bandit feedback;
	// the caller delivers slot rewards explicitly via DeliverFeedback.
	// The cluster defers feedback so every shard's threshold learner is
	// updated with the globally aggregated slot reward, keeping learners
	// in lockstep across shard counts.
	DeferFeedback bool
	// RetrySeed seeds the engine-scoped Retry-After jitter stream
	// (internal/rnd label "retry-after"), making overload responses
	// reproducible in tests and replay. The zero seed is a valid,
	// deterministic stream of its own.
	RetrySeed int64
	// TraceWriter, when non-nil, receives one line per slot in arsim's
	// trace format, so offline and online runs are diffable.
	TraceWriter io.Writer
	// Logf, when non-nil, receives operational log lines (checkpoint
	// writes, scheduler errors).
	Logf func(format string, args ...any)
	// CompactAfter bounds the planner's decided-request backlog: once
	// more than this many settled requests accumulate, the engine rebuilds
	// its planner state from the live set (default 4096).
	CompactAfter int
	// MaxRecordsPerShard bounds the status registry (default 65536
	// records per shard; oldest terminal records evict first).
	MaxRecordsPerShard int
	// RingCapacity bounds the batched-ingest SPSC ring between the
	// intake pump and the engine loop (default 4096, rounded up to a
	// power of two).
	RingCapacity int
	// StageCapacity bounds the pump's reward-sorted overflow stage;
	// once the ring and the stage are both full, the lowest
	// expected-reward request sheds (default 4096).
	StageCapacity int
	// MaxPending bounds the loop's pending queue: the loop stops
	// draining the ring once this many requests await scheduling, which
	// is the backpressure signal that engages the shedding stage
	// (default 16384). Single-POST intake is not subject to it.
	MaxPending int
	// BatchQueue bounds the pump's inbox in batches; a full inbox fails
	// SubmitBatch with ErrSaturated (default 8).
	BatchQueue int
	// StepChecker, when set, is installed on the planner and runs the
	// oracle's invariant checks after every slot; a violation surfaces as
	// a slot error (the slot's requests stay pending and SlotErrors
	// increments). Leave nil for no checking — unless the MEC_ORACLE
	// environment variable is 1/true, which installs
	// oracle.EngineChecker by default.
	StepChecker sim.StepChecker
	// Drift, when non-nil, installs a scripted non-stationarity program
	// (station outages, mobility handovers; station ids are indices into
	// Net) on the planner. Streams running on a station when its outage
	// begins are evicted — their records move to StateEvicted, rewards
	// already credited at admission stay credited. The script is config,
	// not checkpointed state: a restored engine re-installs it and skips
	// transitions already in the past, but an outage window straddling
	// the restart is not re-applied (capacity scales live on Net, which
	// a fresh process rebuilds nominal).
	Drift *sim.Drift
	// SlotObserver, when set, receives every slot report from the loop
	// goroutine, after the slot has settled but before metrics publish.
	// It must not call back into the engine. Replay harnesses use it to
	// capture per-slot admission decisions for parity checks.
	SlotObserver func(sim.SlotReport)
	// DecisionObserver, when set, receives each slot's admitted external
	// ids (in admission order) and the slot's realized reward, called on
	// the loop goroutine after settlement. It must not call back into
	// the engine. The admitted slice is scratch the engine reuses on its
	// next slot — copy it if it must outlive the inter-tick window. The
	// cluster uses it to aggregate shard rewards into the global
	// feedback signal and to build parity dumps in external id space.
	DecisionObserver func(slot int, admitted []uint64, reward float64)
}

// liveEntry tracks one live (pending or running) request inside the loop.
type liveEntry struct {
	ext     uint64
	spec    RequestSpec
	arrival int
	running bool
}

// Engine is the admission daemon core. All mutable planner state is owned
// by the loop goroutine; other goroutines interact only through channels.
type Engine struct {
	cfg     Config
	metrics *Metrics
	sched   sim.Scheduler
	shards  []*shard

	intake   chan intakeMsg
	control  chan controlMsg
	snapC    chan snapMsg
	extractC chan extractMsg

	// ckw is the single-flight background checkpoint writer, non-nil
	// only with Config.AsyncCheckpoint and a CheckpointPath. The loop
	// goroutine owns submission; the loop's exit closes it (draining the
	// last pending write) before loopDone closes.
	ckw *ckpt.Writer

	// retryRng is the engine-scoped Retry-After jitter stream, seeded
	// from Config.RetrySeed via internal/rnd so overload behaviour
	// replays deterministically. Guarded by retryMu: HTTP handlers hit
	// it concurrently.
	retryMu  sync.Mutex
	retryRng *rand.Rand

	loopDone   chan struct{}
	shardStop  sync.Once
	shardsDone chan struct{}

	// Batched ingest path (see ingest.go). nextExt is atomic because
	// both the loop (single-POST intake) and the pump (batch intake)
	// allocate external ids from it.
	ring        *ingestRing
	batchC      chan batchMsg
	ringC       chan struct{} // pump -> loop: ring became non-empty
	spaceC      chan struct{} // loop -> pump: ring space freed
	pumpDone    chan struct{}
	nextExt     atomic.Uint64
	stagedDepth atomic.Int64

	// Pump-owned state.
	stage   stageBuffer
	pumpSeq uint64
	shedBuf []ingestEntry // per-batch shed victims, reused across batches

	// Loop-owned state.
	planner *sim.Engine
	res     *core.Result
	pending []int
	slot    int
	live    map[int]*liveEntry // internal id -> live request
	settled int                // decided requests still occupying planner slices
	drain   bool
	// admittedExtBuf is runSlot's reusable external-id scratch for the
	// DecisionObserver; valid only until the next slot by contract.
	admittedExtBuf []uint64
}

type intakeMsg struct {
	spec  RequestSpec
	reply chan intakeReply
}

type intakeReply struct {
	id   uint64
	slot int
	err  error
}

type controlKind int

const (
	ctlTick controlKind = iota
	ctlCheckpoint
	ctlDrain
	ctlStop
	ctlFlushRing
	ctlFeedback
	// ctlTickFeedback fuses a deferred-feedback delivery with the next
	// slot: the loop applies the reward, then runs the slot, all in one
	// control round-trip. The cluster's shard workers use it so
	// tick+feedback cost one epoch barrier instead of two.
	ctlTickFeedback
)

type controlMsg struct {
	kind  controlKind
	reply chan error
	// ctlFeedback / ctlTickFeedback payload (see DeliverFeedback).
	slot   int
	reward float64
}

// snapMsg asks the loop for an in-memory checkpoint of the live state.
type snapMsg struct{ reply chan snapReply }

type snapReply struct {
	ck  *Checkpoint
	err error
}

// extractMsg asks the loop to remove one pending request for cross-shard
// migration.
type extractMsg struct {
	ext   uint64
	reply chan extractReply
}

type extractReply struct {
	spec    RequestSpec
	arrival int
	err     error
}

// New builds an engine, restoring checkpointed state when
// cfg.CheckpointPath names an existing file.
func New(cfg Config) (*Engine, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("serve: nil network")
	}
	if cfg.Rng == nil {
		return nil, fmt.Errorf("serve: nil rng")
	}
	if cfg.SchedulerName == "" {
		cfg.SchedulerName = "dynamicrr"
	}
	if cfg.SlotLengthMS == 0 {
		cfg.SlotLengthMS = mec.DefaultSlotLengthMS
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if n := cfg.Net.NumStations(); cfg.Shards > n {
		cfg.Shards = n
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 50
	}
	if cfg.CompactAfter <= 0 {
		cfg.CompactAfter = 4096
	}
	if cfg.MaxRecordsPerShard <= 0 {
		cfg.MaxRecordsPerShard = 65536
	}
	if cfg.RingCapacity <= 0 {
		cfg.RingCapacity = 4096
	}
	if cfg.StageCapacity <= 0 {
		cfg.StageCapacity = 4096
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 16384
	}
	if cfg.BatchQueue <= 0 {
		cfg.BatchQueue = 8
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.StepChecker == nil && oracleEnv() {
		cfg.StepChecker = oracle.EngineChecker()
	}

	e := &Engine{
		cfg:        cfg,
		metrics:    NewMetrics(),
		intake:     make(chan intakeMsg, 1024),
		control:    make(chan controlMsg),
		snapC:      make(chan snapMsg),
		extractC:   make(chan extractMsg),
		loopDone:   make(chan struct{}),
		shardsDone: make(chan struct{}),
		ring:       newIngestRing(cfg.RingCapacity),
		batchC:     make(chan batchMsg, cfg.BatchQueue),
		ringC:      make(chan struct{}, 1),
		spaceC:     make(chan struct{}, 1),
		pumpDone:   make(chan struct{}),
		live:       map[int]*liveEntry{},
		retryRng:   rnd.New(cfg.RetrySeed, "retry-after"),
	}

	ck := cfg.Restore
	if ck == nil && cfg.CheckpointPath != "" {
		loaded, err := LoadCheckpoint(cfg.CheckpointPath)
		if err != nil && !errors.Is(err, ErrNoCheckpoint) {
			return nil, err
		}
		ck = loaded
	}

	var banditSnap *bandit.LipschitzSnapshot
	if ck != nil {
		banditSnap = ck.Bandit
	}
	sched, err := buildScheduler(cfg.SchedulerName, cfg.DynamicRR, banditSnap)
	if err != nil {
		return nil, err
	}
	e.sched = sched

	// Shards partition stations round-robin by index.
	for s := 0; s < cfg.Shards; s++ {
		caps := map[int]float64{}
		for i := 0; i < cfg.Net.NumStations(); i++ {
			if i%cfg.Shards == s {
				caps[i] = cfg.Net.Capacity(i)
			}
		}
		e.shards = append(e.shards, newShard(s, caps, cfg.MaxRecordsPerShard))
	}

	if ck != nil {
		if err := e.install(ck); err != nil {
			return nil, fmt.Errorf("serve: restoring checkpoint: %w", err)
		}
		e.seedRegistry(ck)
	} else if err := e.installEmpty(); err != nil {
		return nil, err
	}
	// Started last so no error path above leaks the writer goroutine.
	if cfg.AsyncCheckpoint && cfg.CheckpointPath != "" {
		e.ckw = ckpt.NewWriter(cfg.Logf)
	}
	return e, nil
}

// buildScheduler constructs the named scheduler, seeding DynamicRR's
// threshold learner from a checkpointed snapshot when one is given.
func buildScheduler(name string, opts sim.DynamicRROptions, snap *bandit.LipschitzSnapshot) (sim.Scheduler, error) {
	switch name {
	case "dynamicrr", "local-ratio":
		if name == "local-ratio" {
			opts.LocalRatio = true
		}
		if snap != nil {
			lip, err := bandit.RestoreLipschitz(snap)
			if err != nil {
				return nil, fmt.Errorf("serve: restoring bandit: %w", err)
			}
			opts.MinThresholdMHz, opts.MaxThresholdMHz = 0, 0
			if snap.Min > 0 {
				opts.MinThresholdMHz, opts.MaxThresholdMHz = snap.Min, snap.Max
			}
			opts.Kappa = lip.Kappa()
			opts.Policy = lip.Policy()
		}
		return sim.NewDynamicRR(opts)
	case "ocorp":
		return &sim.OnlineOCORP{}, nil
	case "greedy":
		return &sim.OnlineGreedy{}, nil
	case "heukkt":
		return &sim.OnlineHeuKKT{}, nil
	default:
		return nil, fmt.Errorf("serve: unknown scheduler %q", name)
	}
}

// oracleEnv reports whether the MEC_ORACLE environment variable asks for
// runtime invariant checking.
func oracleEnv() bool {
	switch os.Getenv("MEC_ORACLE") {
	case "1", "true", "on":
		return true
	}
	return false
}

// installEmpty sets up a fresh planner with no live requests.
func (e *Engine) installEmpty() error {
	planner, err := sim.NewLiveEngine(e.cfg.Net, e.cfg.Rng, e.cfg.SlotLengthMS)
	if err != nil {
		return err
	}
	planner.SetStepChecker(e.cfg.StepChecker)
	planner.SetFeedbackDeferred(e.cfg.DeferFeedback)
	if err := planner.SetDrift(e.cfg.Drift); err != nil {
		return err
	}
	e.planner = planner
	e.res = &core.Result{Algorithm: e.sched.Name()}
	e.pending = nil
	e.settled = 0
	return nil
}

// install rebuilds the planner from a checkpoint (or, during compaction,
// from an in-memory checkpoint of the live set): live requests re-append
// in arrival order under fresh dense internal ids, and in-flight streams
// restore their exact ledger deltas.
func (e *Engine) install(ck *Checkpoint) error {
	if err := e.installEmpty(); err != nil {
		return err
	}
	e.slot = ck.Slot
	e.nextExt.Store(ck.NextExternalID)
	e.live = map[int]*liveEntry{}
	e.metrics.restoreTotals(ck.Totals)
	e.metrics.CurrentSlot.Store(int64(ck.Slot))

	reqs := append([]CheckpointRequest(nil), ck.Requests...)
	sort.Slice(reqs, func(a, b int) bool {
		if reqs[a].ArrivalSlot != reqs[b].ArrivalSlot {
			return reqs[a].ArrivalSlot < reqs[b].ArrivalSlot
		}
		return reqs[a].ExternalID < reqs[b].ExternalID
	})
	ext2int := make(map[uint64]int, len(reqs))
	for i, cr := range reqs {
		r, err := e.buildRequest(i, cr.ArrivalSlot, cr.Spec)
		if err != nil {
			return fmt.Errorf("request %d: %w", cr.ExternalID, err)
		}
		if err := e.planner.Append(r); err != nil {
			return err
		}
		d := core.Decision{RequestID: i, Station: -1}
		if cr.Running {
			d.Admitted, d.Served = true, true
		}
		e.res.Decisions = append(e.res.Decisions, d)
		e.live[i] = &liveEntry{ext: cr.ExternalID, spec: cr.Spec, arrival: cr.ArrivalSlot, running: cr.Running}
		ext2int[cr.ExternalID] = i
		if !cr.Running {
			e.pending = append(e.pending, i)
		}
	}

	running := make([]sim.RunningSnapshot, 0, len(ck.Running))
	for _, s := range ck.Running {
		internal, ok := ext2int[uint64(s.Request)]
		if !ok {
			return fmt.Errorf("running stream references unknown request %d", s.Request)
		}
		s.Request = internal
		running = append(running, s)
	}
	if err := e.planner.RestoreRunning(running); err != nil {
		return err
	}
	e.metrics.PendingDepth.Store(int64(len(e.pending)))
	e.metrics.ActiveStreams.Store(int64(e.planner.NumRunning()))
	return nil
}

// seedRegistry repopulates the observability registries from a restored
// checkpoint, so GET /v1/requests/{id} keeps answering for every live
// request across a restart. Called only from New, before the shard
// goroutines start, so mutating shard state directly is race-free and
// cannot deadlock on a full command channel.
func (e *Engine) seedRegistry(ck *Checkpoint) {
	procOf := make(map[uint64]int, len(ck.Running))
	for _, s := range ck.Running {
		procOf[uint64(s.Request)] = s.ProcStation
	}
	reqs := append([]CheckpointRequest(nil), ck.Requests...)
	sort.Slice(reqs, func(a, b int) bool {
		if reqs[a].ArrivalSlot != reqs[b].ArrivalSlot {
			return reqs[a].ArrivalSlot < reqs[b].ArrivalSlot
		}
		return reqs[a].ExternalID < reqs[b].ExternalID
	})
	for _, cr := range reqs {
		sh := e.shards[int(cr.ExternalID)%len(e.shards)]
		sh.apply(requestEvent{id: cr.ExternalID, kind: evSubmitted, slot: cr.ArrivalSlot})
		if cr.Running {
			st, ok := procOf[cr.ExternalID]
			if !ok {
				st = -1
			}
			sh.apply(requestEvent{id: cr.ExternalID, kind: evServing, slot: ck.Slot, station: st})
		}
	}
}

// buildRequest materializes a spec into a planner request, applying the
// paper-default pipeline, deadline, hold, and demand distribution.
func (e *Engine) buildRequest(id, arrival int, spec RequestSpec) (*mec.Request, error) {
	return e.buildRequestRng(e.cfg.Rng, id, arrival, spec)
}

// buildRequestRng is buildRequest with an explicit randomness source for
// the default-outcome unit-reward draw, so ValidateSpec can check a spec
// without consuming the engine's stream.
func (e *Engine) buildRequestRng(rng *rand.Rand, id, arrival int, spec RequestSpec) (*mec.Request, error) {
	return materializeSpec(e.cfg.Net, rng, id, arrival, spec)
}

// MaterializeSpec builds the planner request a spec would become against
// an arbitrary topology, without consuming any engine randomness (the
// default-outcome unit-reward draw uses a fixed throwaway source). The
// cluster router uses it to compute a request's candidate stations over
// the full topology before the owning shard re-materializes the spec
// against its own sub-network. Safe for concurrent use.
func MaterializeSpec(net *mec.Network, spec RequestSpec) (*mec.Request, error) {
	return materializeSpec(net, rand.New(rand.NewSource(0)), 0, 0, spec)
}

// materializeSpec applies the paper-default pipeline, deadline, hold, and
// demand distribution to a spec and validates the result.
func materializeSpec(net *mec.Network, rng *rand.Rand, id, arrival int, spec RequestSpec) (*mec.Request, error) {
	if spec.AccessStation < 0 || spec.AccessStation >= net.NumStations() {
		return nil, fmt.Errorf("%w: access station %d out of [0, %d)", ErrBadSpec, spec.AccessStation, net.NumStations())
	}
	deadline := spec.DeadlineMS
	if deadline == 0 {
		deadline = 200
	}
	if deadline < 0 {
		return nil, fmt.Errorf("%w: deadline %v", ErrBadSpec, deadline)
	}
	dur := spec.DurationSlots
	if dur == 0 {
		dur = 20
	}
	if dur < 0 {
		return nil, fmt.Errorf("%w: duration %d slots", ErrBadSpec, dur)
	}
	tasks := make([]mec.Task, 0, 4)
	if len(spec.Tasks) == 0 {
		for _, st := range workload.CanonicalPipeline() {
			tasks = append(tasks, mec.Task{Name: st.Name, OutputKb: st.OutputKb, WorkMS: st.BaseWorkMS})
		}
	} else {
		for _, ts := range spec.Tasks {
			if ts.OutputKb < 0 || ts.WorkMS < 0 {
				return nil, fmt.Errorf("%w: task %+v", ErrBadSpec, ts)
			}
			tasks = append(tasks, mec.Task{Name: ts.Name, OutputKb: ts.OutputKb, WorkMS: ts.WorkMS})
		}
	}
	outcomes := spec.Outcomes
	if len(outcomes) == 0 {
		outcomes = defaultOutcomes(rng)
	}
	distOutcomes := make([]dist.Outcome, 0, len(outcomes))
	for _, o := range outcomes {
		distOutcomes = append(distOutcomes, dist.Outcome{Rate: o.RateMBs, Prob: o.Prob, Reward: o.Reward})
	}
	d, err := dist.NewRateReward(distOutcomes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	r := &mec.Request{
		ID:            id,
		ArrivalSlot:   arrival,
		AccessStation: spec.AccessStation,
		Tasks:         tasks,
		DeadlineMS:    deadline,
		DurationSlots: dur,
		Dist:          d,
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return r, nil
}

// defaultOutcomes draws the paper-default five-point demand distribution:
// rates evenly spaced over [30, 50] MB/s, uniform probabilities, and a
// unit reward uniform in [12, 15] dollars per MB/s.
func defaultOutcomes(rng *rand.Rand) []OutcomeSpec {
	const support = workload.DefaultRateSupport
	unit := workload.DefaultMinUnitReward +
		rng.Float64()*(workload.DefaultMaxUnitReward-workload.DefaultMinUnitReward)
	out := make([]OutcomeSpec, support)
	for i := 0; i < support; i++ {
		rate := workload.DefaultMinRate +
			float64(i)*(workload.DefaultMaxRate-workload.DefaultMinRate)/float64(support-1)
		out[i] = OutcomeSpec{RateMBs: rate, Prob: 1.0 / support, Reward: unit * rate}
	}
	return out
}

// Start launches the shard goroutines, the intake pump, and the engine
// loop.
func (e *Engine) Start() {
	for _, s := range e.shards {
		go s.run()
	}
	go e.pump()
	go e.loop()
}

// Metrics returns the engine's metric surface.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// SchedulerName returns the active scheduler's name.
func (e *Engine) SchedulerName() string { return e.sched.Name() }

// NumStations returns the served topology's station count.
func (e *Engine) NumStations() int { return e.cfg.Net.NumStations() }

// WarmStats returns the LP warm-start cache statistics (zero for
// schedulers without an LP path).
func (e *Engine) WarmStats() (hits, misses uint64) {
	if d, ok := e.sched.(*sim.DynamicRR); ok {
		return d.Warm().Stats()
	}
	return 0, 0
}

// IncStats returns the dirty-component tracker's counters (all zero for
// schedulers without the incremental re-solve or the fast path).
func (e *Engine) IncStats() core.IncStats {
	if d, ok := e.sched.(*sim.DynamicRR); ok {
		return d.IncStats()
	}
	return core.IncStats{}
}

// BanditSnapshot captures the DynamicRR threshold learner's state; it
// errors for baselines and for custom learners that cannot snapshot.
// Safe only while the loop is stopped or from within tests that own the
// tick cadence (the learner is loop-owned state).
func (e *Engine) BanditSnapshot() (*bandit.LipschitzSnapshot, error) {
	d, ok := e.sched.(*sim.DynamicRR)
	if !ok || d.Bandit() == nil {
		return nil, fmt.Errorf("serve: scheduler %s has no snapshottable bandit", e.sched.Name())
	}
	return d.Bandit().Snapshot()
}

// Reply channels for Submit and control calls are pooled: both run once
// per request or per tick, and each would otherwise allocate a fresh
// one-slot channel. A channel returns to its pool only after the normal
// reply is received; abandoned channels (loop exit races) are simply
// dropped for the GC, since the loop may still hold a reference.
var (
	intakeReplyPool = sync.Pool{New: func() any { return make(chan intakeReply, 1) }}
	ctlReplyPool    = sync.Pool{New: func() any { return make(chan error, 1) }}
)

// Submit queues a request for the next scheduling slot and returns its
// externally visible id.
func (e *Engine) Submit(spec RequestSpec) (uint64, int, error) {
	reply := intakeReplyPool.Get().(chan intakeReply)
	msg := intakeMsg{spec: spec, reply: reply}
	select {
	case e.intake <- msg:
	case <-e.loopDone:
		intakeReplyPool.Put(reply) // never enqueued: safe to reuse
		return 0, 0, ErrStopped
	}
	select {
	case rep := <-msg.reply:
		intakeReplyPool.Put(reply)
		return rep.id, rep.slot, rep.err
	case <-e.loopDone:
		return 0, 0, ErrStopped
	}
}

// Status looks up a request's current record. Shards outlive the engine
// loop (a drained engine still answers status queries) and stop only at
// Stop, after which lookups fail with ErrStopped.
func (e *Engine) Status(id uint64) (RequestRecord, bool, error) {
	sh := e.shards[int(id)%len(e.shards)]
	msg := statusMsg{id: id, reply: make(chan statusReply, 1)}
	select {
	case sh.cmds <- msg:
	case <-e.shardsDone:
		return RequestRecord{}, false, ErrStopped
	}
	select {
	case rep := <-msg.reply:
		return rep.rec, rep.ok, nil
	case <-e.shardsDone:
		return RequestRecord{}, false, ErrStopped
	}
}

// Gauges assembles the per-station occupancy gauges from every shard.
func (e *Engine) Gauges() []StationGauge {
	var out []StationGauge
	for _, sh := range e.shards {
		msg := gaugesMsg{reply: make(chan []StationGauge, 1)}
		select {
		case sh.cmds <- msg:
		case <-e.shardsDone:
			return out
		}
		select {
		case g := <-msg.reply:
			out = append(out, g...)
		case <-e.shardsDone:
			return out
		}
	}
	return out
}

// Tick advances the engine by one scheduling slot. It is the manual
// clock used when Config.TickInterval is zero (tests, benchmarks, replay
// harnesses); with an internal ticker it simply injects an extra slot.
func (e *Engine) Tick() error { return e.controlCall(ctlTick) }

// CheckpointNow writes a checkpoint immediately.
func (e *Engine) CheckpointNow() error { return e.controlCall(ctlCheckpoint) }

// WaitCheckpoints blocks until every asynchronously submitted checkpoint
// write has reached disk. A no-op without Config.AsyncCheckpoint.
func (e *Engine) WaitCheckpoints() {
	if e.ckw != nil {
		e.ckw.Wait()
	}
}

// CheckpointsDropped reports how many async snapshots were superseded by
// a newer one before reaching disk (always 0 without AsyncCheckpoint).
func (e *Engine) CheckpointsDropped() uint64 {
	if e.ckw == nil {
		return 0
	}
	return e.ckw.Dropped()
}

// Snapshot captures the engine's live state as an in-memory checkpoint
// without touching disk. It reflects only requests the planner has seen:
// callers who need batched-ingest residue included (the cluster
// checkpoint path) must Flush first.
func (e *Engine) Snapshot() (*Checkpoint, error) {
	msg := snapMsg{reply: make(chan snapReply, 1)}
	select {
	case e.snapC <- msg:
	case <-e.loopDone:
		return nil, ErrStopped
	}
	select {
	case rep := <-msg.reply:
		return rep.ck, rep.err
	case <-e.loopDone:
		return nil, ErrStopped
	}
}

// Extract removes a pending (undecided) request from the engine and
// returns its spec and arrival slot — the prepare half of the cluster's
// two-phase migration handoff. It fails with ErrNotPending when the
// request already scheduled, terminated, or is unknown, which makes a
// stale migration proposal a benign abort rather than a double-admit.
func (e *Engine) Extract(ext uint64) (RequestSpec, int, error) {
	msg := extractMsg{ext: ext, reply: make(chan extractReply, 1)}
	select {
	case e.extractC <- msg:
	case <-e.loopDone:
		return RequestSpec{}, 0, ErrStopped
	}
	select {
	case rep := <-msg.reply:
		return rep.spec, rep.arrival, rep.err
	case <-e.loopDone:
		return RequestSpec{}, 0, ErrStopped
	}
}

// DeliverFeedback hands the scheduler a slot's (externally aggregated)
// realized reward on the loop goroutine. Only meaningful with
// Config.DeferFeedback set; a no-op for schedulers without learning
// feedback.
func (e *Engine) DeliverFeedback(slot int, reward float64) error {
	return e.sendControl(controlMsg{kind: ctlFeedback, slot: slot, reward: reward})
}

// TickWithFeedback delivers slot fbSlot's aggregated reward and then
// runs the next slot in a single control round-trip — the fused epoch
// message the cluster's persistent shard workers send so a tick plus its
// deferred feedback cost one barrier, not a barrier and a serial loop.
func (e *Engine) TickWithFeedback(fbSlot int, reward float64) error {
	return e.sendControl(controlMsg{kind: ctlTickFeedback, slot: fbSlot, reward: reward})
}

// Drain stops intake (Submit fails with ErrDraining) and lets the engine
// run until every pending request is decided and every stream departs,
// at which point the loop checkpoints and exits.
func (e *Engine) Drain() error { return e.controlCall(ctlDrain) }

// Stop halts the loop immediately after a final checkpoint, without
// waiting for in-flight streams. Shard goroutines terminate too.
func (e *Engine) Stop() error {
	err := e.controlCall(ctlStop)
	if errors.Is(err, ErrStopped) {
		err = nil
	}
	e.stopShards()
	return err
}

// stopShards terminates the shard goroutines (idempotent: a second Stop
// must not enqueue into a channel nobody drains anymore).
func (e *Engine) stopShards() {
	e.shardStop.Do(func() {
		for _, sh := range e.shards {
			done := make(chan struct{})
			sh.cmds <- stopMsg{done: done}
			<-done
		}
		close(e.shardsDone)
	})
}

// Done is closed when the engine loop has exited (drain complete or
// stopped).
func (e *Engine) Done() <-chan struct{} { return e.loopDone }

// Draining reports whether intake is closed.
func (e *Engine) Draining() bool {
	select {
	case <-e.loopDone:
		return true
	default:
	}
	return e.metrics.drainFlag.Load()
}

// Alive reports whether the engine loop is still running.
func (e *Engine) Alive() bool {
	select {
	case <-e.loopDone:
		return false
	default:
		return true
	}
}

// Ready reports scheduling liveness: the loop is running, intake is
// open, and — when an internal ticker drives the clock — a slot executed
// within the last three tick intervals.
func (e *Engine) Ready() bool {
	if !e.Alive() || e.Draining() {
		return false
	}
	if e.cfg.TickInterval <= 0 {
		return true
	}
	last := e.metrics.LastTickNano.Load()
	if last == 0 {
		return false
	}
	return time.Since(time.Unix(0, last)) < 3*e.cfg.TickInterval
}

// controlCall sends a control message and waits for the loop's reply.
func (e *Engine) controlCall(kind controlKind) error {
	return e.sendControl(controlMsg{kind: kind})
}

// sendControl attaches a pooled reply channel to msg, sends it to the
// loop, and waits for the reply.
func (e *Engine) sendControl(msg controlMsg) error {
	reply := ctlReplyPool.Get().(chan error)
	msg.reply = reply
	select {
	case e.control <- msg:
	case <-e.loopDone:
		ctlReplyPool.Put(reply) // never enqueued: safe to reuse
		return ErrStopped
	}
	select {
	case err := <-msg.reply:
		ctlReplyPool.Put(reply)
		return err
	case <-e.loopDone:
		return ErrStopped
	}
}

// loop is the engine's single-writer core: it owns the planner, the
// pending queue, and the live-request table, and it is the only
// goroutine that advances the scheduler and its bandit.
func (e *Engine) loop() {
	defer close(e.loopDone)
	if e.ckw != nil {
		// LIFO: the writer drains its last pending checkpoint before
		// loopDone closes, so Done() implies durability.
		defer e.ckw.Close()
	}

	var tickC <-chan time.Time
	if e.cfg.TickInterval > 0 {
		ticker := time.NewTicker(e.cfg.TickInterval)
		defer ticker.Stop()
		tickC = ticker.C
	}

	for {
		select {
		case msg := <-e.intake:
			msg.reply <- e.handleIntake(msg.spec)
		case <-e.ringC:
			e.drainRing(false)
		case <-tickC:
			e.runSlot()
			if e.drainComplete() {
				return
			}
		case msg := <-e.snapC:
			ck, err := e.snapshotState()
			msg.reply <- snapReply{ck: ck, err: err}
		case msg := <-e.extractC:
			msg.reply <- e.handleExtract(msg.ext)
		case msg := <-e.control:
			switch msg.kind {
			case ctlTick:
				e.runSlot()
				msg.reply <- nil
				if e.drainComplete() {
					return
				}
			case ctlCheckpoint:
				msg.reply <- e.checkpoint()
			case ctlFlushRing:
				e.drainRing(true)
				msg.reply <- nil
			case ctlFeedback:
				if fb, ok := e.sched.(sim.FeedbackScheduler); ok {
					fb.Feedback(msg.slot, msg.reward)
				}
				msg.reply <- nil
			case ctlTickFeedback:
				if fb, ok := e.sched.(sim.FeedbackScheduler); ok {
					fb.Feedback(msg.slot, msg.reward)
				}
				e.runSlot()
				msg.reply <- nil
				if e.drainComplete() {
					return
				}
			case ctlDrain:
				// Quiesce the ingest path before raising the drain flag:
				// requests already accepted into the stage or ring become
				// pending (and thus drain to a decision) instead of being
				// rejected behind the submitter's back.
				e.quiesceIngest()
				e.drain = true
				e.metrics.drainFlag.Store(true)
				msg.reply <- nil
				if e.drainComplete() {
					return
				}
			case ctlStop:
				// Same quiesce before the final checkpoint: accepted
				// requests still staged in the ingest path persist as
				// pending instead of being dropped on SIGTERM.
				e.quiesceIngest()
				if err := e.checkpoint(); err != nil {
					e.cfg.Logf("arserved: final checkpoint failed: %v", err)
				}
				msg.reply <- nil
				return
			}
		}
	}
}

// quiesceIngest closes the batched-ingest path and hands its residue to
// the planner (loop goroutine only): the pump stops accepting batches
// and surrenders its overflow stage, the loop force-drains the ring, and
// every surrendered entry is appended as pending in submission order. A
// final checkpoint (or a drain) then sees every accepted request instead
// of dropping the stage and ring residue on the floor. Idempotent: a
// second call finds an already-stopped pump with an empty stage.
func (e *Engine) quiesceIngest() {
	e.metrics.drainFlag.Store(true)
	var staged []ingestEntry
	msg := batchMsg{collect: true, reply: batchReplyChan()}
	select {
	case e.batchC <- msg:
		select {
		case rep := <-msg.reply:
			staged = rep.staged
			putBatchReplyChan(msg.reply)
		case <-e.pumpDone:
		}
	case <-e.pumpDone:
	}
	// The residue must land even if a drain flag is already up: these
	// requests were accepted before intake closed.
	wasDrain := e.drain
	e.drain = false
	e.drainRing(true)
	sort.Slice(staged, func(a, b int) bool { return staged[a].seq < staged[b].seq })
	for _, ent := range staged {
		e.ingestOne(ent)
	}
	e.drain = wasDrain
	e.stagedDepth.Store(0)
	e.metrics.IntakeDepth.Store(int64(e.ring.Len()))
	e.metrics.PendingDepth.Store(int64(len(e.pending)))
}

// handleExtract removes one pending request from the planner for
// cross-shard migration (loop goroutine only). Only undecided requests
// are extractable: once a request scheduled, its service instance is
// pinned to this engine's stations. The registry records the request as
// migrated (a terminal state here; the target shard owns it from now
// on).
func (e *Engine) handleExtract(ext uint64) extractReply {
	internal := -1
	for j, le := range e.live {
		if le.ext == ext && !le.running {
			internal = j
			break
		}
	}
	if internal < 0 {
		return extractReply{err: ErrNotPending}
	}
	for k, j := range e.pending {
		if j == internal {
			e.pending = append(e.pending[:k], e.pending[k+1:]...)
			break
		}
	}
	le := e.live[internal]
	delete(e.live, internal)
	e.settled++
	e.metrics.PendingDepth.Store(int64(len(e.pending)))
	e.shardEvent(requestEvent{id: ext, kind: evMigrated, slot: e.slot})
	return extractReply{spec: le.spec, arrival: le.arrival}
}

// drainComplete checkpoints and reports true once a draining engine has
// no work left.
func (e *Engine) drainComplete() bool {
	if !e.drain || len(e.pending) > 0 || e.planner.NumRunning() > 0 {
		return false
	}
	if err := e.checkpoint(); err != nil {
		e.cfg.Logf("arserved: drain checkpoint failed: %v", err)
	}
	return true
}

// handleIntake admits one request into the pending queue (loop goroutine
// only).
func (e *Engine) handleIntake(spec RequestSpec) intakeReply {
	if e.drain {
		e.metrics.Rejected.Inc()
		return intakeReply{err: ErrDraining}
	}
	internal := len(e.planner.Requests())
	r, err := e.buildRequest(internal, e.slot, spec)
	if err != nil {
		e.metrics.Rejected.Inc()
		return intakeReply{err: err}
	}
	if err := e.planner.Append(r); err != nil {
		e.metrics.Rejected.Inc()
		return intakeReply{err: err}
	}
	ext := e.nextExt.Add(1) - 1
	e.res.Decisions = append(e.res.Decisions, core.Decision{RequestID: internal, Station: -1})
	e.pending = append(e.pending, internal)
	e.live[internal] = &liveEntry{ext: ext, spec: spec, arrival: e.slot, running: false}
	e.metrics.Submitted.Inc()
	e.metrics.PendingDepth.Store(int64(len(e.pending)))
	e.shardEvent(requestEvent{id: ext, kind: evSubmitted, slot: e.slot})
	return intakeReply{id: ext, slot: e.slot}
}

// shardEvent publishes one event to the owning shard (loop goroutine
// only; shards drain fast, so a blocking send is fine).
func (e *Engine) shardEvent(ev requestEvent) {
	sh := e.shards[int(ev.id)%len(e.shards)]
	sh.cmds <- slotMsg{events: []requestEvent{ev}}
}

// runSlot executes one scheduling slot end to end (loop goroutine only).
func (e *Engine) runSlot() {
	// Pull whatever the batch path delivered before this slot, up to the
	// pending bound, so a batch submitted before the tick schedules in
	// this slot exactly like single-POST arrivals would.
	e.drainRing(false)
	t := e.slot
	depth := len(e.pending)
	start := time.Now()
	pending, rep, err := e.planner.Step(e.sched, e.res, t, e.pending)
	durMS := float64(time.Since(start)) / float64(time.Millisecond)
	e.pending = pending
	if err != nil {
		// A scheduler failure leaves this slot unscheduled; the requests
		// stay pending and the next slot retries.
		e.metrics.SlotErrors.Inc()
		e.cfg.Logf("arserved: slot %d scheduler error: %v", t, err)
	}
	if e.cfg.SlotObserver != nil {
		e.cfg.SlotObserver(rep)
	}
	if e.cfg.DecisionObserver != nil {
		admittedExt := e.admittedExtBuf[:0]
		for _, j := range rep.Admitted {
			if le, ok := e.live[j]; ok {
				admittedExt = append(admittedExt, le.ext)
			}
		}
		e.admittedExtBuf = admittedExt
		e.cfg.DecisionObserver(t, admittedExt, rep.Reward)
	}

	// Fold the slot report into metrics and shard events. The per-shard
	// event slices allocate only on slots that actually produce events, so
	// an idle slot (no arrivals, departures, or admissions) runs
	// allocation-free.
	var events [][]requestEvent
	push := func(ev requestEvent) {
		if events == nil {
			events = make([][]requestEvent, len(e.shards))
		}
		s := int(ev.id) % len(e.shards)
		events[s] = append(events[s], ev)
	}
	for _, j := range rep.Departed {
		if le, ok := e.live[j]; ok {
			push(requestEvent{id: le.ext, kind: evCompleted, slot: t})
			delete(e.live, j)
			e.settled++
		}
		e.metrics.Departed.Inc()
	}
	for _, j := range rep.Expired {
		if le, ok := e.live[j]; ok {
			push(requestEvent{id: le.ext, kind: evExpired, slot: t})
			delete(e.live, j)
			e.settled++
		}
		e.metrics.Expired.Inc()
	}
	// Outage evictions destroy running streams mid-hold: the record moves
	// to evicted (rewards credited at admission stay credited, matching
	// the planner's outage semantics).
	for _, j := range rep.OutageEvicted {
		if le, ok := e.live[j]; ok {
			push(requestEvent{id: le.ext, kind: evEvicted, slot: t})
			delete(e.live, j)
			e.settled++
		}
		e.metrics.Evicted.Inc()
	}
	// rep.Served is a (small) subset of rep.Admitted; a linear membership
	// scan avoids a per-slot map allocation.
	isServed := func(j int) bool {
		for _, s := range rep.Served {
			if s == j {
				return true
			}
		}
		return false
	}
	for _, j := range rep.Admitted {
		e.metrics.Admitted.Inc()
		le, ok := e.live[j]
		if !ok {
			continue
		}
		d := e.res.Decisions[j]
		if isServed(j) {
			le.running = true
			push(requestEvent{id: le.ext, kind: evServing, slot: t, station: d.Station, reward: d.Reward, latencyMS: d.LatencyMS})
			e.metrics.Served.Inc()
		} else {
			push(requestEvent{id: le.ext, kind: evEvicted, slot: t, station: d.Station})
			delete(e.live, j)
			e.settled++
			e.metrics.Evicted.Inc()
		}
	}
	e.metrics.Reward.Add(rep.Reward)
	e.metrics.SlotDuration.Observe(durMS)
	e.metrics.Ticks.Inc()
	e.metrics.PendingDepth.Store(int64(len(e.pending)))
	e.metrics.ActiveStreams.Store(int64(e.planner.NumRunning()))
	e.metrics.LastTickNano.Store(time.Now().UnixNano())

	// Publish per-station occupancy and the request events to the shards.
	// Occupancy only moves when streams start or end, so an idle slot sends
	// nothing at all: the shards' gauges are still exact and the loop's hot
	// path stays free of channel traffic (and of the interface boxing a
	// slotMsg send implies).
	used := e.planner.Used()
	dirty := len(rep.Departed) > 0 || len(rep.Admitted) > 0
	if dirty || events != nil {
		for s, sh := range e.shards {
			var su []stationUsed
			if dirty {
				for i := s; i < len(used); i += len(e.shards) {
					su = append(su, stationUsed{station: i, usedMHz: used[i]})
				}
			}
			var evs []requestEvent
			if events != nil {
				evs = events[s]
			}
			if su == nil && evs == nil {
				continue
			}
			sh.cmds <- slotMsg{used: su, events: evs}
		}
	}

	// Per-slot trace line, format-compatible with arsim -trace.
	if e.cfg.TraceWriter != nil {
		total := e.cfg.Net.TotalCapacity()
		sumUsed := 0.0
		for _, u := range used {
			sumUsed += u
		}
		line := fmt.Sprintf("slot %4d  pending %3d  admitted %3d  utilization %5.1f%%",
			t, depth, len(rep.Admitted), 100*sumUsed/total)
		if d, ok := e.sched.(*sim.DynamicRR); ok && d.Bandit() != nil {
			if best, ok := d.Bandit().Policy().(interface{ BestArm() int }); ok {
				line += fmt.Sprintf("  threshold %4.0f MHz", d.Bandit().Value(best.BestArm()))
			}
		}
		fmt.Fprintln(e.cfg.TraceWriter, line)
	}

	e.slot++
	e.metrics.CurrentSlot.Store(int64(e.slot))

	if e.settled > e.cfg.CompactAfter {
		if err := e.compact(); err != nil {
			e.cfg.Logf("arserved: compaction failed (continuing uncompacted): %v", err)
		}
	}
	if e.cfg.CheckpointPath != "" && e.slot%e.cfg.CheckpointEvery == 0 {
		if err := e.periodicCheckpoint(); err != nil {
			e.cfg.Logf("arserved: checkpoint failed: %v", err)
		}
	}
}

// snapshotState captures the live set as a checkpoint (loop goroutine
// only). It is the shared substrate of disk checkpoints and in-memory
// compaction.
func (e *Engine) snapshotState() (*Checkpoint, error) {
	ck := &Checkpoint{
		Version:        checkpointVersion,
		Slot:           e.slot,
		NextExternalID: e.nextExt.Load(),
		Scheduler:      e.cfg.SchedulerName,
		Totals:         e.metrics.totals(),
	}
	if d, ok := e.sched.(*sim.DynamicRR); ok && d.Bandit() != nil {
		snap, err := d.Bandit().Snapshot()
		if err == nil {
			ck.Bandit = snap
		} else if !errors.Is(err, bandit.ErrUnsupportedSnapshot) {
			return nil, err
		}
	}
	for _, le := range e.live {
		ck.Requests = append(ck.Requests, CheckpointRequest{
			ExternalID:  le.ext,
			ArrivalSlot: le.arrival,
			Running:     le.running,
			Spec:        le.spec,
		})
	}
	sort.Slice(ck.Requests, func(a, b int) bool { return ck.Requests[a].ExternalID < ck.Requests[b].ExternalID })
	for _, s := range e.planner.SnapshotRunning() {
		le, ok := e.live[s.Request]
		if !ok {
			// A stream whose bookkeeping entry vanished would leak; fail
			// loudly instead of checkpointing an unrecoverable state.
			return nil, fmt.Errorf("serve: running request %d missing from live table", s.Request)
		}
		s.Request = int(le.ext)
		ck.Running = append(ck.Running, s)
	}
	return ck, nil
}

// writeJob returns the disk half of a checkpoint: encode, temp-file
// write, fsync, rename. The snapshot is copy-on-write (snapshotState
// deep-copies everything mutable), so the closure is safe to run on the
// writer goroutine while the loop keeps scheduling.
func (e *Engine) writeJob(ck *Checkpoint) func() error {
	return func() error {
		if err := WriteCheckpoint(e.cfg.CheckpointPath, ck); err != nil {
			return err
		}
		e.metrics.Checkpoints.Inc()
		return nil
	}
}

// periodicCheckpoint is runSlot's cadence checkpoint (loop goroutine
// only). With the async writer it only extracts the snapshot and hands
// the write off fire-and-forget (latest-wins if a write is still in
// flight); otherwise it writes inline.
func (e *Engine) periodicCheckpoint() error {
	if e.cfg.CheckpointPath == "" {
		return nil
	}
	ck, err := e.snapshotState()
	if err != nil {
		return err
	}
	if e.ckw != nil {
		return e.ckw.Submit(e.writeJob(ck))
	}
	return e.writeJob(ck)()
}

// checkpoint writes the current state to disk synchronously (loop
// goroutine only): CheckpointNow, drain completion, and Stop land here.
// With the async writer the write still routes through it (SubmitWait),
// which both flushes any older in-flight write and guarantees this —
// newest — snapshot performs the final rename.
func (e *Engine) checkpoint() error {
	if e.cfg.CheckpointPath == "" {
		return nil
	}
	ck, err := e.snapshotState()
	if err != nil {
		return err
	}
	if e.ckw != nil {
		return e.ckw.SubmitWait(e.writeJob(ck))
	}
	return e.writeJob(ck)()
}

// compact rebuilds the planner from the live set, dropping the settled
// backlog so a long-running daemon's memory stays bounded by its live
// request count rather than its lifetime request count.
func (e *Engine) compact() error {
	ck, err := e.snapshotState()
	if err != nil {
		return err
	}
	before := len(e.planner.Requests())
	if err := e.install(ck); err != nil {
		return err
	}
	e.cfg.Logf("arserved: compacted planner %d -> %d requests", before, len(e.planner.Requests()))
	return nil
}
