package serve_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mecoffload/internal/core"
	"mecoffload/internal/graph"
	"mecoffload/internal/mec"
	"mecoffload/internal/serve"
	"mecoffload/internal/topology"
)

// specCandNetwork builds a 4-station chain with heterogeneous capacities
// and speeds: station 2 is too small to host even one resource slot, and
// station 3 is slow enough that tight deadlines exclude it on processing
// delay alone — the network exercises every branch of the candidate rule.
func specCandNetwork(t *testing.T) *mec.Network {
	t.Helper()
	g := graph.New(4)
	for i, w := range []float64{5, 40, 5} {
		if _, err := g.AddEdge(i, i+1, w); err != nil {
			t.Fatal(err)
		}
	}
	nodes := make([]topology.Node, 4)
	for i := range nodes {
		nodes[i] = topology.Node{X: float64(i) * 0.1}
	}
	net, err := mec.NewNetwork(mec.NetworkConfig{
		Stations: []mec.BaseStation{
			{CapacityMHz: 3200, SpeedFactor: 1},
			{CapacityMHz: 2000, SpeedFactor: 0.5},
			{CapacityMHz: 800, SpeedFactor: 1}, // below the 1000 MHz slot
			{CapacityMHz: 3600, SpeedFactor: 3},
		},
		Topo: &topology.Topology{Graph: g, Nodes: nodes},
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestSpecCandidatesMatchesMaterialized pins SpecCandidates' contract: for
// every spec — defaults, custom pipelines, custom distributions, and every
// validation failure — it must agree exactly with materializing the spec
// and asking core.CandidateStations, the rule the router used before the
// allocation-free path existed.
func TestSpecCandidatesMatchesMaterialized(t *testing.T) {
	net := specCandNetwork(t)
	specs := []serve.RequestSpec{
		{AccessStation: 0}, // all defaults
		{AccessStation: 1}, // defaults from the middle
		{AccessStation: 3}, // defaults from the slow end
		{AccessStation: 0, DeadlineMS: 40},
		{AccessStation: 1, DeadlineMS: 70},
		{AccessStation: 0, DeadlineMS: 1000},
		{AccessStation: 0, Tasks: []serve.TaskSpec{{Name: "t", OutputKb: 10, WorkMS: 5}}},
		{AccessStation: 2, Tasks: []serve.TaskSpec{{Name: "t", OutputKb: 10, WorkMS: 120}}},
		{AccessStation: 0, Outcomes: []serve.OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: 300}}},
		// Only a rate too big for every station's spare capacity.
		{AccessStation: 0, Outcomes: []serve.OutcomeSpec{{RateMBs: 500, Prob: 1, Reward: 10}}},
		// The small rate carries zero reward mass; only the big one pays.
		{AccessStation: 0, Outcomes: []serve.OutcomeSpec{
			{RateMBs: 20, Prob: 0.5, Reward: 0},
			{RateMBs: 90, Prob: 0.5, Reward: 100},
		}},
		// Zero-probability outcome must not create candidacy.
		{AccessStation: 0, Outcomes: []serve.OutcomeSpec{
			{RateMBs: 20, Prob: 0, Reward: 100},
			{RateMBs: 90, Prob: 1, Reward: 100},
		}},
		// Duplicate rates (merged by the distribution).
		{AccessStation: 1, Outcomes: []serve.OutcomeSpec{
			{RateMBs: 40, Prob: 0.5, Reward: 0},
			{RateMBs: 40, Prob: 0.5, Reward: 200},
		}},
		// Validation failures — both paths must reject.
		{AccessStation: -1},
		{AccessStation: 4},
		{AccessStation: 0, DeadlineMS: -1},
		{AccessStation: 0, DurationSlots: -2},
		{AccessStation: 0, Tasks: []serve.TaskSpec{{WorkMS: -1}}},
		{AccessStation: 0, Outcomes: []serve.OutcomeSpec{{RateMBs: 40, Prob: -0.1, Reward: 1}}},
		{AccessStation: 0, Outcomes: []serve.OutcomeSpec{{RateMBs: 40, Prob: math.NaN(), Reward: 1}}},
		{AccessStation: 0, Outcomes: []serve.OutcomeSpec{{RateMBs: -4, Prob: 1, Reward: 1}}},
		{AccessStation: 0, Outcomes: []serve.OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: math.Inf(1)}}},
		{AccessStation: 0, Outcomes: []serve.OutcomeSpec{{RateMBs: 40, Prob: 0, Reward: 1}}},
	}
	// A fuzz-ish sweep of random specs on top of the curated ones.
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 200; k++ {
		spec := serve.RequestSpec{
			AccessStation: rng.Intn(4),
			DeadlineMS:    float64(rng.Intn(5)) * 60,
			DurationSlots: rng.Intn(4),
		}
		if rng.Intn(2) == 0 {
			spec.Tasks = []serve.TaskSpec{{Name: "t", OutputKb: 10, WorkMS: float64(rng.Intn(200))}}
		}
		if rng.Intn(2) == 0 {
			n := rng.Intn(3) + 1
			for o := 0; o < n; o++ {
				spec.Outcomes = append(spec.Outcomes, serve.OutcomeSpec{
					RateMBs: float64(rng.Intn(150)),
					Prob:    float64(rng.Intn(3)) / 2,
					Reward:  float64(rng.Intn(2)) * 100,
				})
			}
		}
		specs = append(specs, spec)
	}

	var buf []int
	for si, spec := range specs {
		got, gotErr := serve.SpecCandidates(net, spec, buf[:0])
		buf = got[:0:cap(got)]
		var want []int
		r, wantErr := serve.MaterializeSpec(net, spec)
		if wantErr == nil {
			want = core.CandidateStations(net, r, 0, mec.DefaultSlotLengthMS)
		}
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("spec %d (%+v): SpecCandidates err = %v, materialized err = %v", si, spec, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(append([]int(nil), got...), want) {
			t.Fatalf("spec %d (%+v): SpecCandidates = %v, materialized rule = %v", si, spec, got, want)
		}
	}
}

// TestSpecCandidatesAllocFree pins satellite-level floor: with a warm
// buffer, computing a spec's candidates allocates nothing — the property
// the cluster router's ingest fast path relies on.
func TestSpecCandidatesAllocFree(t *testing.T) {
	net := specCandNetwork(t)
	spec := serve.RequestSpec{
		AccessStation: 0,
		DurationSlots: 6,
		Outcomes:      []serve.OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: 300}},
	}
	buf := make([]int, 0, net.NumStations())
	allocs := testing.AllocsPerRun(200, func() {
		got, err := serve.SpecCandidates(net, spec, buf[:0])
		if err != nil || len(got) == 0 {
			t.Fatalf("candidates = %v, err = %v", got, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SpecCandidates allocates %v per run, want 0", allocs)
	}
}
