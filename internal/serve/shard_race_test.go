package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"mecoffload/internal/core"
	"mecoffload/internal/oracle"
	"mecoffload/internal/sim"
)

// TestConcurrentSubmitTickCheckpoint interleaves every public engine
// entry point from concurrent goroutines — submissions, manual ticks,
// forced checkpoints, status polls, and gauge scrapes — then drains. Run
// under -race in CI, this covers the shard map, the metrics counters,
// and the control-channel serialization of internal/serve/shard.go.
func TestConcurrentSubmitTickCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e := testEngine(t, Config{
		Net:            testNetwork(t, 6),
		Rng:            rand.New(rand.NewSource(7)),
		Shards:         3,
		CheckpointPath: filepath.Join(dir, "state.json"),
		StepChecker:    oracle.EngineChecker(),
	})

	const (
		submitters = 4
		perWorker  = 25
		ticks      = 40
	)
	var wg sync.WaitGroup
	ids := make(chan uint64, submitters*perWorker)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id, _, err := e.Submit(RequestSpec{
					AccessStation: (w + i) % e.cfg.Net.NumStations(),
					DurationSlots: 2 + i%3,
				})
				if err != nil {
					t.Errorf("worker %d submit %d: %v", w, i, err)
					return
				}
				ids <- id
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ticks; i++ {
			if err := e.Tick(); err != nil && !errors.Is(err, ErrStopped) {
				t.Errorf("tick %d: %v", i, err)
				return
			}
			if i%10 == 9 {
				if err := e.CheckpointNow(); err != nil && !errors.Is(err, ErrStopped) {
					t.Errorf("checkpoint at tick %d: %v", i, err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			select {
			case id := <-ids:
				if _, ok, err := e.Status(id); err != nil || !ok {
					t.Errorf("status %d: ok=%v err=%v", id, ok, err)
					return
				}
			default:
			}
			for _, g := range e.Gauges() {
				if g.UsedMHz < 0 || g.UsedMHz > g.CapacityMHz+1e-6 {
					t.Errorf("gauge for station %d out of range: %+v", g.Station, g)
					return
				}
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Drain the backlog: every submitted request must settle.
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := 0; e.Alive(); i++ {
		if i > 10000 {
			t.Fatal("drain did not settle within 10000 ticks")
		}
		if err := e.Tick(); err != nil {
			if errors.Is(err, ErrStopped) {
				break
			}
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if got := m.Submitted.Load(); got != submitters*perWorker {
		t.Fatalf("submitted %d, want %d", got, submitters*perWorker)
	}
	if m.SlotErrors.Load() != 0 {
		t.Fatalf("%d slot errors during a healthy run", m.SlotErrors.Load())
	}
	settled := m.Served.Load() + m.Evicted.Load() + m.Expired.Load() + m.Rejected.Load()
	if settled != submitters*perWorker {
		t.Fatalf("settled %d of %d submitted", settled, submitters*perWorker)
	}
}

// TestOracleEnvInstallsChecker: MEC_ORACLE=1 must install the oracle's
// invariant checker on a fresh engine; an explicit checker wins; other
// values leave the hook empty.
func TestOracleEnvInstallsChecker(t *testing.T) {
	build := func(t *testing.T, cfg Config) *Engine {
		cfg.Net = testNetwork(t, 3)
		cfg.Rng = rand.New(rand.NewSource(1))
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	t.Run("on", func(t *testing.T) {
		t.Setenv("MEC_ORACLE", "1")
		if e := build(t, Config{}); e.cfg.StepChecker == nil {
			t.Fatal("MEC_ORACLE=1 did not install the oracle checker")
		}
	})
	t.Run("off", func(t *testing.T) {
		t.Setenv("MEC_ORACLE", "0")
		if e := build(t, Config{}); e.cfg.StepChecker != nil {
			t.Fatal("MEC_ORACLE=0 installed a checker")
		}
	})
	t.Run("explicit wins", func(t *testing.T) {
		t.Setenv("MEC_ORACLE", "")
		called := false
		own := func(*sim.Engine, *core.Result, sim.SlotReport, sim.StepInfo) error {
			called = true
			return nil
		}
		e := build(t, Config{StepChecker: own})
		e.Start()
		defer func() { _ = e.Stop() }()
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
		if !called {
			t.Fatal("explicit StepChecker was not invoked")
		}
	})
}

// TestFailingCheckerCountsSlotErrors: a violated invariant must not crash
// the daemon — the slot is aborted, SlotErrors increments, and the loop
// keeps serving subsequent ticks.
func TestFailingCheckerCountsSlotErrors(t *testing.T) {
	fail := func(*sim.Engine, *core.Result, sim.SlotReport, sim.StepInfo) error {
		return fmt.Errorf("synthetic invariant violation")
	}
	e := testEngine(t, Config{StepChecker: fail})
	submitN(t, e, 3)
	for i := 0; i < 4; i++ {
		if err := e.Tick(); err != nil {
			t.Fatalf("tick %d returned %v; checker failures must stay inside the loop", i, err)
		}
	}
	m := e.Metrics()
	if got := m.SlotErrors.Load(); got != 4 {
		t.Fatalf("SlotErrors %d after 4 failing ticks, want 4", got)
	}
	if !e.Alive() && m.Ticks.Load() != 4 {
		t.Fatalf("engine stopped ticking after checker failures (ticks %d)", m.Ticks.Load())
	}
}
