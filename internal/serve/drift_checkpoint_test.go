package serve

import (
	"encoding/json"
	"math/rand"
	"path/filepath"
	"testing"

	"mecoffload/internal/sim"
)

// TestCheckpointResumeDriftPolicies runs the checkpoint/restore cycle
// with every drift-aware arm policy: an engine configured via
// PolicySpec, killed after a checkpoint, must restore the policy's full
// learning state (windows, discounted counts, detector statistics,
// restart counters) and keep learning from it — the serve-layer
// counterpart of the bandit snapshot property tests.
func TestCheckpointResumeDriftPolicies(t *testing.T) {
	specs := []string{"sw-ucb:12", "d-ucb:0.98", "exp3s", "restart:se", "restart:ucb1"}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "arserved.ckpt")
			net := testNetwork(t, 4)
			cfg := Config{
				Net:            net,
				CheckpointPath: path,
				DynamicRR:      sim.DynamicRROptions{PolicySpec: spec, PolicySeed: 7},
			}

			e1 := testEngine(t, cfg)
			for i := 0; i < 15; i++ {
				submitN(t, e1, 4)
				if err := e1.Tick(); err != nil {
					t.Fatal(err)
				}
			}
			if err := e1.CheckpointNow(); err != nil {
				t.Fatal(err)
			}
			want, err := e1.BanditSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			if want.Policy.Kind == "" {
				t.Fatal("snapshot has no policy kind")
			}

			cfg.Rng = rand.New(rand.NewSource(43))
			e2, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			e2.Start()
			t.Cleanup(func() { _ = e2.Stop() })

			got, err := e2.BanditSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, _ := json.Marshal(want)
			gotJSON, _ := json.Marshal(got)
			if string(wantJSON) != string(gotJSON) {
				t.Fatalf("%s: bandit state diverges after restart:\n  before: %s\n  after:  %s",
					spec, wantJSON, gotJSON)
			}

			// Learning continues from the restored state.
			for i := 0; i < 5; i++ {
				submitN(t, e2, 4)
				if err := e2.Tick(); err != nil {
					t.Fatal(err)
				}
			}
			after, err := e2.BanditSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			// Round counters live in different fields per kind (T for the
			// UCB family, Draws for Exp3, Inner.T for Restart — and a
			// detector-triggered restart may even reset the inner counter),
			// so "still learning" is pinned by the full state moving.
			afterJSON, _ := json.Marshal(after)
			if string(afterJSON) == string(gotJSON) {
				t.Fatalf("%s: bandit state frozen after restore: %s", spec, gotJSON)
			}
		})
	}
}
