package serve

// Shutdown quiesce contract: a request the batched-ingest path has
// ACCEPTED (returned an id for) must never be dropped by Stop — whatever
// is still sitting in the pump's overflow stage or the ring lands in the
// final checkpoint as pending, and a restore answers status for it.

import (
	"math/rand"
	"path/filepath"
	"testing"
)

// TestStopPersistsIngestResidue accepts a batch far larger than the
// ring, so most of it is still staged in the pump when Stop fires, then
// proves the final checkpoint carries every accepted id and a restored
// engine can still schedule all of them.
func TestStopPersistsIngestResidue(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "arserved.ckpt")
	net := testNetwork(t, 4)
	cfg := Config{
		Net:            net,
		Rng:            rand.New(rand.NewSource(3)),
		CheckpointPath: ck,
		RingCapacity:   4, // force the overflow stage into play
		StageCapacity:  256,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Start()

	specs := make([]RequestSpec, 48)
	for i := range specs {
		specs[i] = RequestSpec{
			AccessStation: i % net.NumStations(),
			DurationSlots: 2,
			Outcomes:      []OutcomeSpec{{RateMBs: 40, Prob: 1, Reward: float64(200 + i)}},
		}
	}
	res, err := e.SubmitBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != len(specs) {
		t.Fatalf("accepted %d of %d", len(res.IDs), len(specs))
	}
	// Stop immediately: no tick ever ran, so nothing was pulled into the
	// planner by scheduling — the ring and stage still hold the batch.
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}

	snap, err := LoadCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	persisted := make(map[uint64]bool, len(snap.Requests))
	for _, cr := range snap.Requests {
		persisted[cr.ExternalID] = true
	}
	for _, id := range res.IDs {
		if !persisted[id] {
			t.Fatalf("accepted request %d missing from final checkpoint (%d persisted)", id, len(snap.Requests))
		}
	}

	// A restored engine must answer status for every accepted id and
	// drain them all to a decision.
	r, err := New(Config{Net: net, Rng: rand.New(rand.NewSource(4)), CheckpointPath: ck})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(func() { _ = r.Stop() })
	for _, id := range res.IDs {
		rec, ok, err := r.Status(id)
		if err != nil || !ok {
			t.Fatalf("restored status %d: ok=%v err=%v", id, ok, err)
		}
		if rec.State != StatePending {
			t.Fatalf("restored request %d in state %q, want pending", id, rec.State)
		}
	}
	for i := 0; i < 16; i++ {
		if err := r.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range res.IDs {
		rec, ok, err := r.Status(id)
		if err != nil || !ok {
			t.Fatalf("post-tick status %d: ok=%v err=%v", id, ok, err)
		}
		if rec.State == StatePending {
			t.Fatalf("restored request %d never decided", id)
		}
	}
}
