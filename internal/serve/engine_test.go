package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mecoffload/internal/mec"
	"mecoffload/internal/sim"
)

func testNetwork(t *testing.T, stations int) *mec.Network {
	t.Helper()
	net, err := mec.RandomNetwork(stations, 3000, 3600, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// testEngine builds a started manual-tick engine; the cleanup stops it.
func testEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Net == nil {
		cfg.Net = testNetwork(t, 4)
	}
	if cfg.Rng == nil {
		cfg.Rng = rand.New(rand.NewSource(42))
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	t.Cleanup(func() { _ = e.Stop() })
	return e
}

// submitN submits n default-spec requests round-robin over the stations.
func submitN(t *testing.T, e *Engine, n int) []uint64 {
	t.Helper()
	ids := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		id, _, err := e.Submit(RequestSpec{
			AccessStation: i % e.cfg.Net.NumStations(),
			DurationSlots: 3,
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	return ids
}

// TestEngineLifecycle drives submit -> tick -> serve -> depart through
// the daemon core and checks the status registry tracks each transition.
func TestEngineLifecycle(t *testing.T) {
	e := testEngine(t, Config{})
	ids := submitN(t, e, 6)

	for _, id := range ids {
		rec, ok, err := e.Status(id)
		if err != nil || !ok {
			t.Fatalf("status %d: ok=%v err=%v", id, ok, err)
		}
		if rec.State != StatePending {
			t.Fatalf("request %d state %q before first tick, want pending", id, rec.State)
		}
	}

	if err := e.Tick(); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if got := m.Ticks.Load(); got != 1 {
		t.Fatalf("ticks = %d, want 1", got)
	}
	if m.Admitted.Load() == 0 {
		t.Fatal("no admissions after first tick with 6 pending requests")
	}
	serving := 0
	for _, id := range ids {
		rec, ok, _ := e.Status(id)
		if !ok {
			t.Fatalf("request %d vanished", id)
		}
		if rec.State == StateServing {
			serving++
			if rec.Station < 0 || rec.Station >= e.cfg.Net.NumStations() {
				t.Fatalf("request %d serving on station %d", id, rec.Station)
			}
		}
	}
	if serving == 0 {
		t.Fatal("no request reached serving state")
	}

	// 3-slot holds: everything departs within a handful of ticks.
	for i := 0; i < 6; i++ {
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if streams := m.ActiveStreams.Load(); streams != 0 {
		t.Fatalf("%d active streams after holds elapsed", streams)
	}
	completed := 0
	for _, id := range ids {
		rec, _, _ := e.Status(id)
		if rec.State == StateCompleted {
			completed++
			if rec.DepartSlot <= rec.DecisionSlot {
				t.Fatalf("request %d departed slot %d <= decided slot %d", id, rec.DepartSlot, rec.DecisionSlot)
			}
		}
	}
	if completed == 0 {
		t.Fatal("no request completed")
	}
	if m.Reward.Load() <= 0 {
		t.Fatal("no realized reward credited")
	}
}

// TestWarmStartHitRate is half of the PR's acceptance gate: by the second
// tick the DynamicRR LP-PT must be re-solving from the previous slot's
// basis, so the warm-start hit rate in /metrics is positive.
func TestWarmStartHitRate(t *testing.T) {
	e := testEngine(t, Config{})
	submitN(t, e, 8)
	if err := e.Tick(); err != nil {
		t.Fatal(err)
	}
	submitN(t, e, 8)
	if err := e.Tick(); err != nil {
		t.Fatal(err)
	}
	hits, misses := e.WarmStats()
	if hits == 0 {
		t.Fatalf("warm-start hits = 0 after second tick (misses = %d)", misses)
	}
	var buf bytes.Buffer
	if err := e.Metrics().WriteProm(&buf, hits, misses, e.StagedDepth(), e.Gauges(), e.IncStats()); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if !strings.Contains(body, "arserved_lp_warmstart_total{outcome=\"hit\"}") {
		t.Fatal("metrics missing warm-start hit counter")
	}
	if strings.Contains(body, "arserved_lp_warmstart_hit_ratio 0\n") {
		t.Fatal("warm-start hit ratio still zero after second tick")
	}
	// A full-re-solve engine has no dirty-component tracker: the family
	// must be absent rather than rendered as all-zero counters.
	if strings.Contains(body, "arserved_component_solves_total") {
		t.Fatal("component-solve counters rendered without an incremental tracker")
	}
}

// TestIncrementalMetrics pins the incremental scheduler's observability:
// after two identical slots the dirty-component tracker has clean hits
// and /metrics renders the per-path component-solve split.
func TestIncrementalMetrics(t *testing.T) {
	e := testEngine(t, Config{DynamicRR: sim.DynamicRROptions{Incremental: true}})
	for i := 0; i < 2; i++ {
		submitN(t, e, 8)
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	st := e.IncStats()
	if st.CleanHits+st.DirtySolves == 0 {
		t.Fatal("incremental engine tracked no component solves")
	}
	hits, misses := e.WarmStats()
	var buf bytes.Buffer
	if err := e.Metrics().WriteProm(&buf, hits, misses, e.StagedDepth(), e.Gauges(), e.IncStats()); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"arserved_component_solves_total{path=\"clean\"}",
		"arserved_component_solves_total{path=\"lp\"}",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %s:\n%s", want, body)
		}
	}
}

// TestCheckpointResume is the PR's acceptance gate: an engine killed
// after a checkpoint and rebuilt from that file resumes with identical
// bandit arm statistics, the same slot clock, and the same in-flight
// streams.
func TestCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arserved.ckpt")
	net := testNetwork(t, 4)
	cfg := Config{Net: net, CheckpointPath: path, CheckpointEvery: 1000}

	e1 := testEngine(t, cfg)
	for i := 0; i < 12; i++ {
		submitN(t, e1, 4)
		if err := e1.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	want, err := e1.BanditSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantStreams := e1.Metrics().ActiveStreams.Load()
	wantPending := e1.Metrics().PendingDepth.Load()
	wantSlot := e1.Metrics().CurrentSlot.Load()
	wantReward := e1.Metrics().Reward.Load()
	if wantStreams == 0 {
		t.Fatal("test wants in-flight streams at the kill point")
	}
	// Simulate kill -9: abandon e1 without any orderly shutdown. (Cleanup
	// still stops its goroutines at test end.)

	cfg.Rng = rand.New(rand.NewSource(43))
	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2.Start()
	t.Cleanup(func() { _ = e2.Stop() })

	got, err := e2.BanditSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !reflect.DeepEqual(wantJSON, gotJSON) {
		t.Fatalf("bandit statistics diverge after restart:\n  before: %s\n  after:  %s", wantJSON, gotJSON)
	}
	if got := e2.Metrics().ActiveStreams.Load(); got != wantStreams {
		t.Fatalf("restored %d active streams, want %d", got, wantStreams)
	}
	if got := e2.Metrics().PendingDepth.Load(); got != wantPending {
		t.Fatalf("restored %d pending, want %d", got, wantPending)
	}
	if got := e2.Metrics().CurrentSlot.Load(); got != wantSlot {
		t.Fatalf("restored slot %d, want %d", got, wantSlot)
	}
	if got := e2.Metrics().Reward.Load(); got != wantReward {
		t.Fatalf("restored cumulative reward %v, want %v", got, wantReward)
	}

	// The restored engine keeps scheduling: submitted ids continue the
	// allocator, streams drain, learning continues.
	id, _, err := e2.Submit(RequestSpec{AccessStation: 0})
	if err != nil {
		t.Fatal(err)
	}
	if id < 48 {
		t.Fatalf("restored id allocator handed out %d, want >= 48", id)
	}
	for i := 0; i < 8; i++ {
		if err := e2.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	after, err := e2.BanditSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if after.Policy.T <= got.Policy.T {
		t.Fatalf("bandit rounds did not advance after restore: %d -> %d", got.Policy.T, after.Policy.T)
	}
}

// TestDrain closes intake and lets the engine run dry: the loop exits on
// its own once nothing is pending or running, and late submissions get
// ErrDraining.
func TestDrain(t *testing.T) {
	e := testEngine(t, Config{})
	submitN(t, e, 4)
	if err := e.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Submit(RequestSpec{AccessStation: 0}); err != ErrDraining {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}
	for i := 0; i < 12 && e.Alive(); i++ {
		if err := e.Tick(); err != nil && err != ErrStopped {
			t.Fatal(err)
		}
	}
	select {
	case <-e.Done():
	default:
		t.Fatal("drained engine loop still running after work ran dry")
	}
	if _, _, err := e.Submit(RequestSpec{AccessStation: 0}); err != ErrStopped {
		t.Fatalf("submit after drain exit: %v, want ErrStopped", err)
	}
}

// TestCompaction forces planner rebuilds mid-run and checks scheduling
// continues undisturbed across them.
func TestCompaction(t *testing.T) {
	e := testEngine(t, Config{CompactAfter: 8})
	for i := 0; i < 15; i++ {
		submitN(t, e, 3)
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	// With CompactAfter=8 and 45 requests over 3-slot holds, several
	// compactions must have run; the planner holds only the live tail.
	if n := len(e.planner.Requests()); n >= 45 {
		t.Fatalf("planner still holds %d requests; compaction never ran", n)
	}
	if e.Metrics().Submitted.Load() != 45 {
		t.Fatalf("submitted counter %d, want 45", e.Metrics().Submitted.Load())
	}
	// Drain everything; ledgers must return to zero through the rebuilt
	// planner exactly as through the original.
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12 && e.Alive(); i++ {
		if err := e.Tick(); err != nil && err != ErrStopped {
			t.Fatal(err)
		}
	}
	for i, u := range e.planner.Used() {
		if u > 1e-9 {
			t.Fatalf("station %d ledger %v after drain through compactions", i, u)
		}
	}
}

// TestBadSpecs exercises intake validation.
func TestBadSpecs(t *testing.T) {
	e := testEngine(t, Config{})
	cases := []RequestSpec{
		{AccessStation: -1},
		{AccessStation: 99},
		{AccessStation: 0, DeadlineMS: -5},
		{AccessStation: 0, DurationSlots: -2},
		{AccessStation: 0, Tasks: []TaskSpec{{Name: "x", OutputKb: -1}}},
		{AccessStation: 0, Outcomes: []OutcomeSpec{{RateMBs: 30, Prob: 0.5, Reward: 10}}}, // probs don't sum to 1
	}
	for i, spec := range cases {
		if _, _, err := e.Submit(spec); err == nil {
			t.Errorf("case %d: bad spec accepted: %+v", i, spec)
		}
	}
	if e.Metrics().Rejected.Load() != uint64(len(cases)) {
		t.Fatalf("rejected counter %d, want %d", e.Metrics().Rejected.Load(), len(cases))
	}
}

// TestCheckpointFileFormat checks atomicity plumbing: no temp file
// residue, version gate enforced.
func TestCheckpointFileFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	ck := &Checkpoint{Version: checkpointVersion, Slot: 3, NextExternalID: 9, Scheduler: "dynamicrr"}
	if err := WriteCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir has %d entries, want just the checkpoint", len(entries))
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Slot != 3 || got.NextExternalID != 9 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if _, err := LoadCheckpoint(filepath.Join(dir, "absent.json")); err != ErrNoCheckpoint {
		t.Fatalf("absent checkpoint: %v, want ErrNoCheckpoint", err)
	}
	bad := &Checkpoint{Version: checkpointVersion + 1}
	if err := WriteCheckpoint(path, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("version mismatch not rejected")
	}
}

// TestBaselineSchedulers checks the -scheduler flag's engine paths: every
// baseline runs slots without bandit or warm-start support.
func TestBaselineSchedulers(t *testing.T) {
	for _, name := range []string{"ocorp", "greedy", "heukkt"} {
		t.Run(name, func(t *testing.T) {
			e := testEngine(t, Config{SchedulerName: name})
			submitN(t, e, 4)
			if err := e.Tick(); err != nil {
				t.Fatal(err)
			}
			if e.Metrics().Admitted.Load() == 0 {
				t.Fatalf("%s admitted nothing", name)
			}
			if _, err := e.BanditSnapshot(); err == nil {
				t.Fatalf("%s claims a bandit snapshot", name)
			}
		})
	}
	if _, err := New(Config{Net: testNetwork(t, 2), Rng: rand.New(rand.NewSource(1)), SchedulerName: "nope"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

// TestTraceFormat checks the daemon's per-slot log mirrors arsim's trace
// line format.
func TestTraceFormat(t *testing.T) {
	var buf bytes.Buffer
	e := testEngine(t, Config{TraceWriter: &buf})
	submitN(t, e, 3)
	if err := e.Tick(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimRight(buf.String(), "\n")
	if !strings.HasPrefix(line, "slot    0  pending   3  admitted ") {
		t.Fatalf("trace line %q does not match arsim format", line)
	}
	if !strings.Contains(line, "utilization ") || !strings.Contains(line, "threshold ") {
		t.Fatalf("trace line %q missing utilization/threshold fields", line)
	}
}
