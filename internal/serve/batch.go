package serve

// NDJSON bulk intake: POST /v1/requests:batch carries one RequestSpec
// per line (plus an optional client-chosen "id" tag for within-batch
// idempotency), and `arserved -replay file.ndjson` uses the same line
// format as a bulk replay trace, with blank lines marking slot
// boundaries. DecodeBatch is deliberately total: malformed, oversized,
// truncated, or duplicate-id lines become per-line errors, never a
// failed batch, so one bad client line cannot discard the rest of a
// bulk submission.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Batch decode limits. Callers can pass smaller limits; zero selects the
// default.
const (
	DefaultMaxBatchLines = 10000
	DefaultMaxLineBytes  = 1 << 20
)

// ErrBatchTooLarge reports that a batch exceeded the line-count limit;
// the HTTP layer maps it to 413.
var ErrBatchTooLarge = errors.New("serve: batch exceeds line limit")

// BatchLine is one decoded NDJSON line: a request spec plus the
// optional client tag.
type BatchLine struct {
	ClientID string // optional "id" field, unique within a batch when set
	Line     int    // 1-based line number in the NDJSON body
	Spec     RequestSpec
}

// LineError reports one undecodable or invalid NDJSON line.
type LineError struct {
	Line  int    `json:"line"`
	Error string `json:"error"`
}

// batchWire is the JSON shape of one NDJSON line: a RequestSpec with an
// optional "id" client tag flattened in.
type batchWire struct {
	ID string `json:"id,omitempty"`
	RequestSpec
}

// DecodeBatch reads NDJSON request lines. Blank (whitespace-only) lines
// are skipped. Lines that fail to decode, exceed maxLineBytes, or reuse
// a non-empty client id already seen in this batch come back as
// LineErrors; only exceeding maxLines (or an underlying read error)
// fails the whole batch.
func DecodeBatch(r io.Reader, maxLines, maxLineBytes int) ([]BatchLine, []LineError, error) {
	if maxLines <= 0 {
		maxLines = DefaultMaxBatchLines
	}
	if maxLineBytes <= 0 {
		maxLineBytes = DefaultMaxLineBytes
	}
	var (
		lines []BatchLine
		errs  []LineError
		seen  map[string]int // client id -> first line
	)
	br := bufio.NewReaderSize(r, 64<<10)
	lineNo, requests := 0, 0
	for {
		line, tooLong, err := readLimitedLine(br, maxLineBytes)
		if err != nil && !errors.Is(err, io.EOF) {
			return lines, errs, err
		}
		done := errors.Is(err, io.EOF)
		lineNo++
		if len(bytes.TrimSpace(line)) > 0 || tooLong {
			requests++
			if requests > maxLines {
				return lines, errs, fmt.Errorf("%w: more than %d request lines", ErrBatchTooLarge, maxLines)
			}
			switch {
			case tooLong:
				errs = append(errs, LineError{Line: lineNo, Error: fmt.Sprintf("line exceeds %d bytes", maxLineBytes)})
			default:
				var w batchWire
				dec := json.NewDecoder(bytes.NewReader(line))
				dec.DisallowUnknownFields()
				if derr := dec.Decode(&w); derr != nil {
					errs = append(errs, LineError{Line: lineNo, Error: "bad line: " + derr.Error()})
					break
				}
				// Trailing garbage after the JSON object is a malformed
				// line, not a second request.
				if dec.More() {
					errs = append(errs, LineError{Line: lineNo, Error: "trailing data after JSON object"})
					break
				}
				if w.ID != "" {
					if seen == nil {
						seen = map[string]int{}
					}
					if first, dup := seen[w.ID]; dup {
						errs = append(errs, LineError{Line: lineNo, Error: fmt.Sprintf("duplicate id %q (first used on line %d)", w.ID, first)})
						break
					}
					seen[w.ID] = lineNo
				}
				lines = append(lines, BatchLine{ClientID: w.ID, Line: lineNo, Spec: w.RequestSpec})
			}
		}
		if done {
			return lines, errs, nil
		}
	}
}

// readLimitedLine reads one newline-terminated line, consuming and
// flagging (rather than returning) lines longer than limit. The final
// line may be unterminated (a truncated upload); it is still returned,
// with io.EOF.
func readLimitedLine(br *bufio.Reader, limit int) (line []byte, tooLong bool, err error) {
	for {
		chunk, rerr := br.ReadSlice('\n')
		if !tooLong {
			line = append(line, chunk...)
			if len(line) > limit {
				tooLong = true
				line = nil
			}
		}
		switch {
		case rerr == nil:
			return line, tooLong, nil
		case errors.Is(rerr, bufio.ErrBufferFull):
			continue // keep consuming this oversized physical line
		default:
			return line, tooLong, rerr
		}
	}
}

// specPrice is the expected reward the scheduler would assign the spec:
// the probability-weighted mean reward of its demand distribution — the
// same E[reward] the paper's bandit prices every request with. Specs
// without explicit outcomes take the paper-default support (rates
// uniform on [30, 50] MB/s) at the midpoint unit reward; the price must
// be deterministic, so the random unit-reward draw that materialization
// performs later is replaced by its mean here.
func specPrice(spec RequestSpec) float64 {
	if len(spec.Outcomes) == 0 {
		return defaultSpecPrice
	}
	var mass, sum float64
	for _, o := range spec.Outcomes {
		if o.Prob > 0 {
			mass += o.Prob
			sum += o.Prob * o.Reward
		}
	}
	if mass <= 0 {
		return 0
	}
	return sum / mass
}
