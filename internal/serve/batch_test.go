package serve

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestDecodeBatchBasic(t *testing.T) {
	body := `{"id":"a","deadlineMS":100}

{"deadlineMS":200,"outcomes":[{"prob":1,"rateMBs":40,"reward":500}]}
{"id":"b"}
`
	lines, errs, err := DecodeBatch(strings.NewReader(body), 0, 0)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(errs) != 0 {
		t.Fatalf("unexpected line errors: %+v", errs)
	}
	if len(lines) != 3 {
		t.Fatalf("decoded %d lines, want 3", len(lines))
	}
	// Line numbers are physical: the blank line 2 still counts.
	wantLines := []int{1, 3, 4}
	wantIDs := []string{"a", "", "b"}
	for i, ln := range lines {
		if ln.Line != wantLines[i] || ln.ClientID != wantIDs[i] {
			t.Fatalf("line %d = {Line:%d ID:%q}, want {Line:%d ID:%q}",
				i, ln.Line, ln.ClientID, wantLines[i], wantIDs[i])
		}
	}
	if lines[0].Spec.DeadlineMS != 100 || lines[1].Spec.DeadlineMS != 200 {
		t.Fatalf("specs decoded wrong: %+v", lines)
	}
	if len(lines[1].Spec.Outcomes) != 1 || lines[1].Spec.Outcomes[0].Reward != 500 {
		t.Fatalf("outcomes decoded wrong: %+v", lines[1].Spec)
	}
}

func TestDecodeBatchPerLineErrors(t *testing.T) {
	body := strings.Join([]string{
		`{"id":"dup"}`,
		`{not json`,
		`{"id":"dup"}`,              // duplicate client id
		`{"deadlineMS":5} trailing`, // trailing garbage
		`{"unknownField":1}`,        // unknown field
		`{"id":"ok"}`,               // fine — one bad line must not sink the rest
	}, "\n")
	lines, errs, err := DecodeBatch(strings.NewReader(body), 0, 0)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(lines) != 2 {
		t.Fatalf("decoded %d good lines, want 2: %+v", len(lines), lines)
	}
	if lines[0].ClientID != "dup" || lines[1].ClientID != "ok" {
		t.Fatalf("good lines = %+v", lines)
	}
	if len(errs) != 4 {
		t.Fatalf("got %d line errors, want 4: %+v", len(errs), errs)
	}
	wantErrLines := []int{2, 3, 4, 5}
	for i, le := range errs {
		if le.Line != wantErrLines[i] {
			t.Fatalf("error %d on line %d, want %d (%s)", i, le.Line, wantErrLines[i], le.Error)
		}
	}
	if !strings.Contains(errs[1].Error, "duplicate id") {
		t.Fatalf("line 3 error = %q, want duplicate-id", errs[1].Error)
	}
	if !strings.Contains(errs[2].Error, "trailing data") {
		t.Fatalf("line 4 error = %q, want trailing-data", errs[2].Error)
	}
}

func TestDecodeBatchTruncatedFinalLine(t *testing.T) {
	// A truncated upload: the final line has no newline and is cut mid-object.
	body := "{\"id\":\"a\"}\n{\"id\":\"b\",\"deadl"
	lines, errs, err := DecodeBatch(strings.NewReader(body), 0, 0)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(lines) != 1 || lines[0].ClientID != "a" {
		t.Fatalf("good lines = %+v, want only line 1", lines)
	}
	if len(errs) != 1 || errs[0].Line != 2 {
		t.Fatalf("errors = %+v, want one error on line 2", errs)
	}
}

func TestDecodeBatchOversizedLine(t *testing.T) {
	long := `{"id":"big","pad":"` + strings.Repeat("x", 200) + `"}`
	body := long + "\n{\"id\":\"ok\"}\n"
	lines, errs, err := DecodeBatch(strings.NewReader(body), 0, 64)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(lines) != 1 || lines[0].ClientID != "ok" || lines[0].Line != 2 {
		t.Fatalf("good lines = %+v", lines)
	}
	if len(errs) != 1 || errs[0].Line != 1 || !strings.Contains(errs[0].Error, "exceeds") {
		t.Fatalf("errors = %+v, want one oversize error on line 1", errs)
	}
}

func TestDecodeBatchLineLimit(t *testing.T) {
	body := strings.Repeat("{}\n", 5)
	_, _, err := DecodeBatch(strings.NewReader(body), 4, 0)
	if !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}
	if _, _, err := DecodeBatch(strings.NewReader(body), 5, 0); err != nil {
		t.Fatalf("batch at the limit failed: %v", err)
	}
}

func TestSpecPrice(t *testing.T) {
	// Explicit outcomes: probability-weighted mean reward, renormalized.
	spec := RequestSpec{Outcomes: []OutcomeSpec{
		{Prob: 0.25, RateMBs: 30, Reward: 100},
		{Prob: 0.25, RateMBs: 50, Reward: 300},
	}}
	if got := specPrice(spec); got != 200 {
		t.Fatalf("specPrice = %g, want 200", got)
	}
	// No outcomes: the deterministic default price.
	if got := specPrice(RequestSpec{}); got != defaultSpecPrice {
		t.Fatalf("default specPrice = %g, want %g", got, defaultSpecPrice)
	}
	// Degenerate mass: worthless, sheds first.
	if got := specPrice(RequestSpec{Outcomes: []OutcomeSpec{{Prob: 0, Reward: 999}}}); got != 0 {
		t.Fatalf("zero-mass specPrice = %g, want 0", got)
	}
}

// FuzzBatchDecode drives the NDJSON decoder with arbitrary bodies. The
// decoder must be total (no panics), must never fail the batch except
// via ErrBatchTooLarge, must never accept two lines with the same
// non-empty client id, and must be deterministic.
func FuzzBatchDecode(f *testing.F) {
	f.Add([]byte("{\"id\":\"a\"}\n{\"id\":\"b\"}\n"), 100, 256)
	f.Add([]byte("{\"id\":\"a\"}\n{\"id\":\"a\"}\n"), 100, 256)                         // duplicate ids
	f.Add([]byte("{\"id\":\"a\",\"deadl"), 100, 256)                                    // truncated line
	f.Add([]byte("{\"id\":\"big\",\"x\":\""+strings.Repeat("y", 512)+"\"}\n"), 100, 64) // oversized payload
	f.Add([]byte("\n\n\n{}\n\n"), 100, 256)                                             // blank-heavy
	f.Add([]byte("{} {}\n"), 100, 256)                                                  // trailing data
	f.Add([]byte(""), 1, 1)
	f.Fuzz(func(t *testing.T, body []byte, maxLines, maxLineBytes int) {
		if maxLines > 1<<16 {
			maxLines = 1 << 16
		}
		lines, errs, err := DecodeBatch(bytes.NewReader(body), maxLines, maxLineBytes)
		if err != nil && !errors.Is(err, ErrBatchTooLarge) {
			t.Fatalf("non-limit batch failure from an in-memory reader: %v", err)
		}
		seen := map[string]bool{}
		for _, ln := range lines {
			if ln.Line < 1 {
				t.Fatalf("non-positive line number %d", ln.Line)
			}
			if ln.ClientID != "" {
				if seen[ln.ClientID] {
					t.Fatalf("duplicate client id %q accepted", ln.ClientID)
				}
				seen[ln.ClientID] = true
			}
		}
		for _, le := range errs {
			if le.Line < 1 || le.Error == "" {
				t.Fatalf("malformed LineError %+v", le)
			}
		}
		if err == nil {
			lines2, errs2, err2 := DecodeBatch(bytes.NewReader(body), maxLines, maxLineBytes)
			if err2 != nil || len(lines2) != len(lines) || len(errs2) != len(errs) {
				t.Fatalf("decode is not deterministic: (%d,%d,%v) then (%d,%d,%v)",
					len(lines), len(errs), err, len(lines2), len(errs2), err2)
			}
		}
	})
}
