package serve

// The daemon's mutable observability state — per-base-station occupancy
// gauges and the per-request status registry — is sharded across
// goroutine-owned shards. Each shard runs a single-writer loop over a
// command channel: the engine loop publishes slot updates, HTTP handlers
// publish status and gauge queries, and all mutation happens inside the
// shard goroutine, so the hot path takes no locks anywhere.
//
// Station i belongs to shard i mod N; request id belongs to shard
// id mod N. The scheduling-authoritative ledger stays inside the planner
// engine (owned exclusively by the engine loop); shards carry the copy
// that concurrent readers see, so a burst of /metrics scrapes or status
// polls never contends with a scheduling tick.

// Request lifecycle states exposed by GET /v1/requests/{id}.
const (
	// StatePending: submitted, waiting in the admission queue.
	StatePending = "pending"
	// StateServing: admitted, stream holding its service instance.
	StateServing = "serving"
	// StateCompleted: stream finished its hold and departed (terminal).
	StateCompleted = "completed"
	// StateEvicted: admitted but terminated at realization — demand
	// overflow or deadline miss; no reward (terminal).
	StateEvicted = "evicted"
	// StateExpired: never admitted; deadline became unreachable on every
	// station (terminal).
	StateExpired = "expired"
	// StateShed: accepted into the batched intake path but dropped by
	// the reward-aware overload policy (or refused at ingest) before
	// ever reaching the scheduler (terminal).
	StateShed = "shed"
	// StateMigrated: handed off to another cluster shard while pending
	// (terminal for this engine; the cluster router forwards status
	// lookups to the new owner).
	StateMigrated = "migrated"
)

// RequestRecord is one request's externally visible status.
type RequestRecord struct {
	ID            uint64  `json:"id"`
	State         string  `json:"state"`
	Station       int     `json:"station"`
	SubmittedSlot int     `json:"submittedSlot"`
	DecisionSlot  int     `json:"decisionSlot,omitempty"`
	DepartSlot    int     `json:"departSlot,omitempty"`
	Reward        float64 `json:"reward,omitempty"`
	LatencyMS     float64 `json:"latencyMS,omitempty"`
}

// terminal reports whether the record can be evicted from the registry.
func (r *RequestRecord) terminal() bool {
	switch r.State {
	case StateCompleted, StateEvicted, StateExpired, StateShed, StateMigrated:
		return true
	}
	return false
}

type eventKind int

const (
	evSubmitted eventKind = iota
	evServing
	evEvicted
	evExpired
	evCompleted
	evShed
	evMigrated
)

// requestEvent is one request-state transition published by the engine
// loop to the owning shard.
type requestEvent struct {
	id        uint64
	kind      eventKind
	slot      int
	station   int
	reward    float64
	latencyMS float64
}

// stationUsed carries one owned station's realized occupancy after a
// slot settled.
type stationUsed struct {
	station int
	usedMHz float64
}

// Shard commands. Exactly one goroutine (the shard's) consumes them.
type slotMsg struct {
	used   []stationUsed
	events []requestEvent
}

type statusMsg struct {
	id    uint64
	reply chan statusReply
}

type statusReply struct {
	rec RequestRecord
	ok  bool
}

type gaugesMsg struct{ reply chan []StationGauge }

type stopMsg struct{ done chan struct{} }

// shard owns a partition of the station gauges and the request registry.
type shard struct {
	idx  int
	cmds chan any

	// State below is owned by the shard goroutine; nothing else touches it.
	records    map[uint64]*RequestRecord
	order      []uint64 // submission order, for bounded-registry eviction
	usedMHz    map[int]float64
	capMHz     map[int]float64
	maxRecords int
}

// newShard builds a shard owning the given stations (index -> capacity).
func newShard(idx int, caps map[int]float64, maxRecords int) *shard {
	s := &shard{
		idx:        idx,
		cmds:       make(chan any, 256),
		records:    make(map[uint64]*RequestRecord),
		usedMHz:    make(map[int]float64, len(caps)),
		capMHz:     caps,
		maxRecords: maxRecords,
	}
	for st := range caps {
		s.usedMHz[st] = 0
	}
	return s
}

// run is the shard's single-writer loop.
func (s *shard) run() {
	for cmd := range s.cmds {
		switch c := cmd.(type) {
		case slotMsg:
			for _, u := range c.used {
				s.usedMHz[u.station] = u.usedMHz
			}
			for _, ev := range c.events {
				s.apply(ev)
			}
			s.evictOverflow()
		case statusMsg:
			rec, ok := s.records[c.id]
			var out statusReply
			if ok {
				out = statusReply{rec: *rec, ok: true}
			}
			c.reply <- out
		case gaugesMsg:
			gauges := make([]StationGauge, 0, len(s.capMHz))
			for st, cap := range s.capMHz {
				gauges = append(gauges, StationGauge{Station: st, UsedMHz: s.usedMHz[st], CapacityMHz: cap})
			}
			c.reply <- gauges
		case stopMsg:
			close(c.done)
			return
		}
	}
}

// apply folds one request event into the registry.
func (s *shard) apply(ev requestEvent) {
	switch ev.kind {
	case evSubmitted:
		if _, exists := s.records[ev.id]; exists {
			return
		}
		s.records[ev.id] = &RequestRecord{
			ID:            ev.id,
			State:         StatePending,
			Station:       -1,
			SubmittedSlot: ev.slot,
		}
		s.order = append(s.order, ev.id)
	case evServing:
		if rec, ok := s.records[ev.id]; ok {
			rec.State = StateServing
			rec.Station = ev.station
			rec.DecisionSlot = ev.slot
			rec.Reward = ev.reward
			rec.LatencyMS = ev.latencyMS
		}
	case evEvicted:
		if rec, ok := s.records[ev.id]; ok {
			rec.State = StateEvicted
			rec.Station = ev.station
			rec.DecisionSlot = ev.slot
		}
	case evExpired:
		if rec, ok := s.records[ev.id]; ok {
			rec.State = StateExpired
			rec.DecisionSlot = ev.slot
		}
	case evCompleted:
		if rec, ok := s.records[ev.id]; ok {
			rec.State = StateCompleted
			rec.DepartSlot = ev.slot
		}
	case evShed:
		// Only a still-pending record can shed; a scheduler decision
		// that raced ahead wins.
		if rec, ok := s.records[ev.id]; ok && rec.State == StatePending {
			rec.State = StateShed
			rec.DecisionSlot = ev.slot
		}
	case evMigrated:
		// Like a shed, migration only moves a still-pending record; the
		// extract protocol guarantees the loop never migrates a decided
		// request.
		if rec, ok := s.records[ev.id]; ok && rec.State == StatePending {
			rec.State = StateMigrated
			rec.DecisionSlot = ev.slot
		}
	}
}

// evictOverflow bounds the registry: once over capacity, the oldest
// terminal records are dropped (live records are always kept).
func (s *shard) evictOverflow() {
	if len(s.records) <= s.maxRecords {
		return
	}
	keep := s.order[:0]
	for _, id := range s.order {
		rec, ok := s.records[id]
		if !ok {
			continue
		}
		if len(s.records) > s.maxRecords && rec.terminal() {
			delete(s.records, id)
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}
