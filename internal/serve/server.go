package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// submitResponse is the body of a successful POST /v1/requests.
type submitResponse struct {
	ID    uint64 `json:"id"`
	Slot  int    `json:"slot"`
	State string `json:"state"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler builds the daemon's HTTP API around an engine:
//
//	POST /v1/requests      submit a RequestSpec, 202 + {id, slot, state}
//	GET  /v1/requests/{id} request status from the owning shard
//	GET  /metrics          Prometheus text exposition
//	GET  /healthz          200 while the engine loop is alive
//	GET  /readyz           200 while ticking and accepting intake
func Handler(e *Engine) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/requests", func(w http.ResponseWriter, r *http.Request) {
		var spec RequestSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
			return
		}
		id, slot, err := e.Submit(spec)
		switch {
		case err == nil:
			writeJSON(w, http.StatusAccepted, submitResponse{ID: id, Slot: slot, State: StatePending})
		case errors.Is(err, ErrDraining):
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		case errors.Is(err, ErrStopped):
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		case errors.Is(err, ErrBadSpec):
			writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		}
	})

	mux.HandleFunc("GET /v1/requests/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request id"})
			return
		}
		rec, ok, err := e.Status(id)
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
			return
		}
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown request"})
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		hits, misses := e.WarmStats()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = e.Metrics().WriteProm(w, hits, misses, e.Gauges())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if e.Alive() {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ok\n"))
			return
		}
		http.Error(w, "engine stopped", http.StatusServiceUnavailable)
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if e.Ready() {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ready\n"))
			return
		}
		http.Error(w, "not ready", http.StatusServiceUnavailable)
	})

	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
