package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// submitResponse is the body of a successful POST /v1/requests.
type submitResponse struct {
	ID    uint64 `json:"id"`
	Slot  int    `json:"slot"`
	State string `json:"state"`
}

// errorResponse is the structured error body of every non-2xx response.
// RetryAfterMS is set on 503s: a jittered client backoff hint mirroring
// the Retry-After header at millisecond resolution.
type errorResponse struct {
	Error        string `json:"error"`
	RetryAfterMS int    `json:"retryAfterMS,omitempty"`
}

// batchResponse is the body of POST /v1/requests:batch. IDs are the
// external ids of the accepted lines in submission order (error lines
// excluded); Shed counts requests dropped by the reward-aware overload
// policy while this batch was ingested.
type batchResponse struct {
	Accepted int         `json:"accepted"`
	Shed     int         `json:"shed"`
	IDs      []uint64    `json:"ids,omitempty"`
	Errors   []LineError `json:"errors,omitempty"`
}

// maxBatchBody bounds the NDJSON request body; batches beyond it fail
// with 413 rather than buffering without limit.
const maxBatchBody = 32 << 20

// retryAfterHint picks the jittered backoff hint for a 503: between one
// and two base intervals, uniformly, so a synchronized burst of shed
// clients does not return as a synchronized burst of retries. The
// jitter draws from the engine's labeled "retry-after" stream
// (Config.RetrySeed), so overload behaviour is reproducible in tests
// and replay.
func (e *Engine) retryAfterHint(base time.Duration) (header string, ms int) {
	e.retryMu.Lock()
	f := 1 + e.retryRng.Float64()
	e.retryMu.Unlock()
	d := time.Duration(f * float64(base))
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs), int(d / time.Millisecond)
}

// WriteUnavailable emits the 503 overload contract: Retry-After header
// plus the structured JSON body with the millisecond hint, jittered
// from the engine's seeded stream. Exported so the cluster handler
// shares one overload contract with the single-engine API.
func (e *Engine) WriteUnavailable(w http.ResponseWriter, err error) {
	header, ms := e.retryAfterHint(500 * time.Millisecond)
	w.Header().Set("Retry-After", header)
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error(), RetryAfterMS: ms})
}

// Handler builds the daemon's HTTP API around an engine:
//
//	POST /v1/requests        submit one RequestSpec, 202 + {id, slot, state}
//	POST /v1/requests:batch  NDJSON bulk submit, 200 + {accepted, shed, ids, errors}
//	GET  /v1/requests/{id}   request status from the owning shard
//	GET  /metrics            Prometheus text exposition
//	GET  /healthz            200 while the engine loop is alive
//	GET  /readyz             200 while ticking and accepting intake
//
// Overload contract: a 503 (draining, stopped, or ingest saturation)
// always carries a Retry-After header and a JSON body with a jittered
// retryAfterMS hint; under saturation the batch path sheds the lowest
// expected-reward requests first before refusing batches outright.
func Handler(e *Engine) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/requests", func(w http.ResponseWriter, r *http.Request) {
		var spec RequestSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
			return
		}
		id, slot, err := e.Submit(spec)
		switch {
		case err == nil:
			writeJSON(w, http.StatusAccepted, submitResponse{ID: id, Slot: slot, State: StatePending})
		case errors.Is(err, ErrDraining), errors.Is(err, ErrStopped):
			e.WriteUnavailable(w, err)
		case errors.Is(err, ErrBadSpec):
			writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		}
	})

	mux.HandleFunc("POST /v1/requests:batch", func(w http.ResponseWriter, r *http.Request) {
		body := http.MaxBytesReader(w, r.Body, maxBatchBody)
		lines, lineErrs, err := DecodeBatch(body, 0, 0)
		if err != nil {
			status := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.Is(err, ErrBatchTooLarge) || errors.As(err, &tooBig) {
				status = http.StatusRequestEntityTooLarge
			}
			writeJSON(w, status, errorResponse{Error: "bad batch: " + err.Error()})
			return
		}
		// Validate up front so malformed specs come back as line errors
		// instead of asynchronous sheds.
		specs := make([]RequestSpec, 0, len(lines))
		for _, ln := range lines {
			if verr := e.ValidateSpec(ln.Spec); verr != nil {
				lineErrs = append(lineErrs, LineError{Line: ln.Line, Error: verr.Error()})
				continue
			}
			specs = append(specs, ln.Spec)
		}
		if len(specs) == 0 && len(lineErrs) == 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch"})
			return
		}
		res, err := e.SubmitBatch(specs)
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, batchResponse{
				Accepted: len(res.IDs),
				Shed:     res.Shed,
				IDs:      res.IDs,
				Errors:   lineErrs,
			})
		case errors.Is(err, ErrSaturated), errors.Is(err, ErrDraining), errors.Is(err, ErrStopped):
			e.WriteUnavailable(w, err)
		default:
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		}
	})

	mux.HandleFunc("GET /v1/requests/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request id"})
			return
		}
		rec, ok, err := e.Status(id)
		if err != nil {
			e.WriteUnavailable(w, err)
			return
		}
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown request"})
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		hits, misses := e.WarmStats()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = e.Metrics().WriteProm(w, hits, misses, e.StagedDepth(), e.Gauges(), e.IncStats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if e.Alive() {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ok\n"))
			return
		}
		http.Error(w, "engine stopped", http.StatusServiceUnavailable)
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if e.Ready() {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("ready\n"))
			return
		}
		http.Error(w, "not ready", http.StatusServiceUnavailable)
	})

	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
