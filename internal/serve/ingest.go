package serve

// The intake pump: the single producer of the SPSC ingest ring. HTTP
// batch handlers (and the bulk replay/load generators) hand decoded
// spec batches to SubmitBatch, which enqueues them on a small bounded
// channel; the pump goroutine prices each request, assigns its external
// id, publishes its registry record, and pushes it through the
// stage/ring pair toward the engine loop. The overload policy is a
// strict chain of bounded queues:
//
//	pending (MaxPending, loop)  <- ring (RingCapacity, SPSC)
//	  <- stage (StageCapacity, reward-sorted, sheds lowest E[reward])
//	    <- batch channel (BatchQueue)  <- 503 + Retry-After
//
// Below saturation nothing ever sits in the stage, so batched intake
// appends in exact submission order — decision-for-decision identical
// to the single-POST path (the oracle differential enforces this).

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"mecoffload/internal/core"
	"mecoffload/internal/workload"
)

// ErrSaturated reports that the ingest path cannot accept the batch
// right now; HTTP maps it to 503 with a jittered Retry-After.
var ErrSaturated = errors.New("serve: ingest saturated, retry later")

// defaultSpecPrice is the expected reward of a default-spec request:
// the paper-default rate support's mean rate at the midpoint unit
// reward. Kept deterministic so pricing never consumes engine
// randomness.
const defaultSpecPrice = (workload.DefaultMinRate + workload.DefaultMaxRate) / 2 *
	(workload.DefaultMinUnitReward + workload.DefaultMaxUnitReward) / 2

// BatchResult summarizes one SubmitBatch call.
type BatchResult struct {
	// IDs are the external ids assigned to the batch's specs, in
	// submission order. An id is durable for status lookups even if its
	// request is later shed.
	IDs []uint64
	// Shed is the number of requests (from this batch or earlier ones)
	// shed by the reward-aware policy while this batch was ingested.
	Shed int
}

type batchMsg struct {
	specs   []RequestSpec
	barrier bool
	// collect asks the pump to stop accepting batches and surrender its
	// overflow stage — the shutdown quiesce (see Engine.quiesceIngest).
	collect bool
	reply   chan batchReply
}

type batchReply struct {
	ids  []uint64
	shed int
	// staged is the surrendered overflow stage (collect replies only).
	staged []ingestEntry
	// rejected marks a batch that arrived after the pump stopped; the
	// caller maps it to ErrDraining/ErrStopped.
	rejected bool
}

// SubmitBatch queues a pre-validated batch of specs for ingest. It
// fails fast with ErrSaturated when the pump's inbox is full (the
// overload backstop behind the shedding stage), and with ErrDraining /
// ErrStopped like Submit. Specs should have passed ValidateSpec; a spec
// the loop still rejects is counted and recorded as shed.
func (e *Engine) SubmitBatch(specs []RequestSpec) (BatchResult, error) {
	if len(specs) == 0 {
		return BatchResult{}, nil
	}
	if e.Draining() {
		if !e.Alive() {
			return BatchResult{}, ErrStopped
		}
		return BatchResult{}, ErrDraining
	}
	msg := batchMsg{specs: specs, reply: batchReplyChan()}
	select {
	case e.batchC <- msg:
	default:
		e.metrics.Saturated.Inc()
		return BatchResult{}, ErrSaturated
	}
	select {
	case rep := <-msg.reply:
		putBatchReplyChan(msg.reply)
		if rep.rejected {
			// The pump stopped between our Draining check and the send.
			if !e.Alive() {
				return BatchResult{}, ErrStopped
			}
			return BatchResult{}, ErrDraining
		}
		e.metrics.Batches.Inc()
		e.metrics.BatchRequests.Add(uint64(len(specs)))
		return BatchResult{IDs: rep.ids, Shed: rep.shed}, nil
	case <-e.loopDone:
		return BatchResult{}, ErrStopped
	}
}

// Flush blocks until every batch accepted so far has been appended to
// the planner: the pump's inbox is empty, the stage has drained, and
// the loop has consumed the ring (ignoring the MaxPending backpressure
// bound, which exists for wall-clock overload, not for replay
// harnesses). Replay and the oracle differential call it before
// ticking, so a slot schedules exactly the requests submitted before
// it.
func (e *Engine) Flush() error {
	for i := 0; ; i++ {
		if err := e.pumpBarrier(); err != nil {
			return err
		}
		if err := e.controlCall(ctlFlushRing); err != nil {
			return err
		}
		if e.ring.Len() == 0 && e.stagedDepth.Load() == 0 {
			return nil
		}
		if i > 1<<20 {
			return errors.New("serve: flush did not converge")
		}
	}
}

// pumpBarrier round-trips the pump goroutine, guaranteeing every batch
// enqueued before the call has been processed.
func (e *Engine) pumpBarrier() error {
	msg := batchMsg{barrier: true, reply: batchReplyChan()}
	select {
	case e.batchC <- msg:
	case <-e.loopDone:
		return ErrStopped
	}
	select {
	case <-msg.reply:
		putBatchReplyChan(msg.reply)
		return nil
	case <-e.loopDone:
		return ErrStopped
	}
}

// Reply channels for batch calls are pooled like the intake/control
// ones; a channel abandoned on loop exit is dropped for the GC.
var batchReplyPool = sync.Pool{New: func() any { return make(chan batchReply, 1) }}

func batchReplyChan() chan batchReply     { return batchReplyPool.Get().(chan batchReply) }
func putBatchReplyChan(c chan batchReply) { batchReplyPool.Put(c) }

// pump is the intake pump goroutine: the single producer of the ingest
// ring. It exits when the engine loop does. After a collect message
// (shutdown quiesce) it keeps answering barriers but rejects new batches
// and stops touching the stage/ring — the loop owns the residue from
// that point on.
func (e *Engine) pump() {
	defer close(e.pumpDone)
	stopped := false
	for {
		select {
		case msg := <-e.batchC:
			switch {
			case msg.barrier:
				msg.reply <- batchReply{}
			case msg.collect:
				staged := make([]ingestEntry, 0, e.stage.len())
				for e.stage.len() > 0 {
					staged = append(staged, e.stage.popLowest())
				}
				stopped = true
				msg.reply <- batchReply{staged: staged}
			case stopped:
				msg.reply <- batchReply{rejected: true}
			default:
				msg.reply <- e.pumpBatch(msg.specs)
			}
		case <-e.spaceC:
			// The loop freed ring space: move staged work in, most
			// valuable first.
			if !stopped {
				e.pumpDrainStage()
			}
		case <-e.loopDone:
			return
		}
	}
}

// pumpBatch prices, registers, and enqueues one batch (pump goroutine
// only).
func (e *Engine) pumpBatch(specs []RequestSpec) batchReply {
	now := time.Now().UnixNano()
	slot := int(e.metrics.CurrentSlot.Load())
	ids := make([]uint64, len(specs))
	perShard := make([][]requestEvent, len(e.shards))
	for i := range specs {
		ext := e.nextExt.Add(1) - 1
		ids[i] = ext
		s := int(ext) % len(e.shards)
		perShard[s] = append(perShard[s], requestEvent{id: ext, kind: evSubmitted, slot: slot})
	}
	// Register the whole batch first — one registry message per shard,
	// not per request — so a shed (or a loop-side decision) during the
	// push phase always finds its record already pending.
	for s, evs := range perShard {
		if len(evs) > 0 {
			e.shardSend(e.shards[s], slotMsg{events: evs})
		}
	}
	e.shedBuf = e.shedBuf[:0]
	for i, spec := range specs {
		e.pumpPush(ingestEntry{
			spec:    spec,
			ext:     ids[i],
			price:   specPrice(spec),
			seq:     e.pumpSeq,
			enqNano: now,
		})
		e.pumpSeq++
	}
	// Sheds publish like submissions: grouped into one registry message
	// per shard per batch, not one per victim.
	if n := len(e.shedBuf); n > 0 {
		e.metrics.Shed.Add(uint64(n))
		shedShard := make([][]requestEvent, len(e.shards))
		for _, victim := range e.shedBuf {
			s := int(victim.ext) % len(e.shards)
			shedShard[s] = append(shedShard[s], requestEvent{id: victim.ext, kind: evShed, slot: slot})
		}
		for s, evs := range shedShard {
			if len(evs) > 0 {
				e.shardSend(e.shards[s], slotMsg{events: evs})
			}
		}
	}
	return batchReply{ids: ids, shed: len(e.shedBuf)}
}

// pumpPush routes one entry through the stage/ring pair and applies the
// shedding policy, appending victims to e.shedBuf (pump goroutine
// only).
func (e *Engine) pumpPush(ent ingestEntry) {
	if e.stage.len() >= e.cfg.StageCapacity {
		e.pumpDrainStage()
		// Saturated fast path: an arrival at or below the stage's floor
		// price would be the next shed victim anyway (price ties break
		// newest-first, and this entry is the newest), so shed it O(1)
		// instead of churning the sorted stage with an insert + evict.
		if e.stage.len() >= e.cfg.StageCapacity && ent.price <= e.stage.entries[0].price {
			e.shedBuf = append(e.shedBuf, ent)
			return
		}
	}
	e.stage.insert(ent)
	e.pumpDrainStage()
	for e.stage.len() > e.cfg.StageCapacity {
		e.shedBuf = append(e.shedBuf, e.stage.popLowest())
	}
	e.stagedDepth.Store(int64(e.stage.len()))
}

// pumpDrainStage moves staged entries into the ring, most valuable
// first, and wakes the loop when it delivered anything.
func (e *Engine) pumpDrainStage() {
	pushed := 0
	for e.stage.len() > 0 {
		if !e.ring.TryPush(e.stage.entries[len(e.stage.entries)-1]) {
			break
		}
		e.stage.popHighest()
		pushed++
	}
	if pushed > 0 {
		e.stagedDepth.Store(int64(e.stage.len()))
		e.metrics.IntakeDepth.Store(int64(e.ring.Len()))
		select {
		case e.ringC <- struct{}{}:
		default:
		}
	}
}

// shardSend publishes to a shard without deadlocking against shutdown:
// once the shards have stopped the message is dropped (the registry is
// gone anyway).
func (e *Engine) shardSend(sh *shard, m slotMsg) {
	select {
	case sh.cmds <- m:
	case <-e.shardsDone:
	}
}

// drainRing consumes ring entries into the planner (loop goroutine
// only). Unless forced, it respects the MaxPending bound — the
// backpressure signal that lets the ring fill, the stage engage, and
// the shedding policy take over when the scheduler cannot keep up.
func (e *Engine) drainRing(force bool) {
	consumed := 0
	for force || len(e.pending) < e.cfg.MaxPending {
		ent, ok := e.ring.TryPop()
		if !ok {
			break
		}
		consumed++
		e.ingestOne(ent)
	}
	if consumed > 0 {
		e.metrics.IntakeDepth.Store(int64(e.ring.Len()))
		e.metrics.PendingDepth.Store(int64(len(e.pending)))
		select {
		case e.spaceC <- struct{}{}:
		default:
		}
	}
}

// ingestOne appends one batch-path request to the planner (loop
// goroutine only). Its registry record already exists (the pump
// published evSubmitted); failures surface as shed records so the id
// stays resolvable.
func (e *Engine) ingestOne(ent ingestEntry) {
	reject := func() {
		e.metrics.Rejected.Inc()
		e.shardEvent(requestEvent{id: ent.ext, kind: evShed, slot: e.slot})
	}
	if e.drain {
		reject()
		return
	}
	internal := len(e.planner.Requests())
	r, err := e.buildRequest(internal, e.slot, ent.spec)
	if err != nil {
		reject()
		return
	}
	if err := e.planner.Append(r); err != nil {
		reject()
		return
	}
	e.res.Decisions = append(e.res.Decisions, core.Decision{RequestID: internal, Station: -1})
	e.pending = append(e.pending, internal)
	e.live[internal] = &liveEntry{ext: ent.ext, spec: ent.spec, arrival: e.slot}
	e.metrics.Submitted.Inc()
	e.metrics.IntakeLatency.Observe(float64(time.Now().UnixNano()-ent.enqNano) / 1e6)
}

// StagedDepth returns the pump's overflow-stage depth (gauge-grade;
// exact only from the pump goroutine).
func (e *Engine) StagedDepth() int64 { return e.stagedDepth.Load() }

// RingDepth returns the ingest ring's current depth (gauge-grade).
func (e *Engine) RingDepth() int { return e.ring.Len() }

// RingCap returns the ingest ring's capacity (RingCapacity rounded up
// to a power of two).
func (e *Engine) RingCap() int { return e.ring.Cap() }

// StageCap returns the configured overflow-stage capacity.
func (e *Engine) StageCap() int { return e.cfg.StageCapacity }

// ValidateSpec checks a spec exactly as intake would, without admitting
// it (and without consuming engine randomness — the default-outcome
// unit-reward draw uses a throwaway source). Batch handlers validate
// lines up front so per-line errors surface in the HTTP response
// rather than as asynchronous sheds. Safe for concurrent use.
func (e *Engine) ValidateSpec(spec RequestSpec) error {
	_, err := e.buildRequestRng(rand.New(rand.NewSource(0)), 0, 0, spec)
	return err
}
