package serve

import (
	"fmt"
	"math"

	"mecoffload/internal/mec"
	"mecoffload/internal/workload"
)

// canonicalWorkMS is the total pipeline work of a default-task spec,
// precomputed so SpecCandidates never rebuilds the canonical pipeline.
var canonicalWorkMS = func() float64 {
	total := 0.0
	for _, st := range workload.CanonicalPipeline() {
		total += st.BaseWorkMS
	}
	return total
}()

// SpecCandidates computes the candidate stations of a spec — the stations
// on which the per-slot LP would create at least one placement variable
// for the materialized request at zero wait, against unloaded capacities —
// without materializing the request. It applies exactly MaterializeSpec's
// defaults and validation and exactly core.CandidateStations' feasibility
// rule (TestSpecCandidatesMatchesMaterialized pins the equivalence), but
// allocation-free: results are appended into buf (reused at [:0]). The
// cluster router calls this on every routed spec, so the ingest fast path
// stays off the allocator.
//
// The demand side of the candidate rule only needs the smallest rate that
// carries positive reward mass: ER at slot 1 is positive iff some outcome
// with prob*reward > 0 fits the station's spare capacity, and outcomes are
// screened bottom-up by rate.
func SpecCandidates(net *mec.Network, spec RequestSpec, buf []int) ([]int, error) {
	if spec.AccessStation < 0 || spec.AccessStation >= net.NumStations() {
		return nil, fmt.Errorf("%w: access station %d out of [0, %d)",
			ErrBadSpec, spec.AccessStation, net.NumStations())
	}
	deadline := spec.DeadlineMS
	if deadline == 0 {
		deadline = 200
	}
	if deadline < 0 {
		return nil, fmt.Errorf("%w: deadline %v", ErrBadSpec, deadline)
	}
	if spec.DurationSlots < 0 {
		return nil, fmt.Errorf("%w: duration %d slots", ErrBadSpec, spec.DurationSlots)
	}
	workMS := canonicalWorkMS
	if len(spec.Tasks) > 0 {
		workMS = 0
		for _, ts := range spec.Tasks {
			if ts.OutputKb < 0 || ts.WorkMS < 0 {
				return nil, fmt.Errorf("%w: task %+v", ErrBadSpec, ts)
			}
			workMS += ts.WorkMS
		}
	}
	// Default outcomes have uniform positive probabilities and positive
	// rewards at every support rate, so their smallest positive-mass rate
	// is the support minimum.
	minPosRate := workload.DefaultMinRate
	if len(spec.Outcomes) > 0 {
		minPosRate = math.Inf(1)
		totalProb := 0.0
		for _, o := range spec.Outcomes {
			if o.Prob < 0 || math.IsNaN(o.Prob) || math.IsInf(o.Prob, 0) {
				return nil, fmt.Errorf("%w: prob %v", ErrBadSpec, o.Prob)
			}
			if o.RateMBs < 0 || math.IsNaN(o.RateMBs) || math.IsInf(o.RateMBs, 0) ||
				o.Reward < 0 || math.IsNaN(o.Reward) || math.IsInf(o.Reward, 0) {
				return nil, fmt.Errorf("%w: rate %v reward %v", ErrBadSpec, o.RateMBs, o.Reward)
			}
			if o.Prob == 0 {
				continue
			}
			totalProb += o.Prob
			if o.Prob*o.Reward > 0 && o.RateMBs < minPosRate {
				minPosRate = o.RateMBs
			}
		}
		// Mirror dist.NewRateReward's normalization check (probEps).
		if math.Abs(totalProb-1) > 1e-9 {
			return nil, fmt.Errorf("%w: outcome probability mass %v", ErrBadSpec, totalProb)
		}
	}
	slotMHz := net.SlotMHz()
	cUnit := net.CUnit()
	buf = buf[:0]
	for i := 0; i < net.NumStations(); i++ {
		st, err := net.Station(i)
		if err != nil {
			return nil, err
		}
		// Effective capacity, not nominal: a station scaled down by an
		// outage must drop out of the candidate set exactly as it does in
		// core.CandidateStations' feasibility rule.
		capI := net.Capacity(i)
		if capI < slotMHz {
			continue
		}
		if net.RoundTripDelayMS(spec.AccessStation, i)+workMS*st.SpeedFactor > deadline {
			continue
		}
		if minPosRate > (capI-slotMHz)/cUnit {
			continue
		}
		buf = append(buf, i)
	}
	return buf, nil
}
