package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"mecoffload/internal/bandit"
	"mecoffload/internal/sim"
)

// checkpointVersion guards the on-disk layout; a daemon refuses to
// restore a checkpoint written by an incompatible build.
const checkpointVersion = 1

// CheckpointVersion is the current on-disk checkpoint layout version,
// exported so the cluster manifest can stamp the per-shard checkpoints
// it composes during a resharded restore.
const CheckpointVersion = checkpointVersion

// ErrNoCheckpoint reports that the checkpoint file does not exist.
var ErrNoCheckpoint = errors.New("serve: no checkpoint")

// Totals persists the cumulative counters across restarts.
type Totals struct {
	Submitted uint64  `json:"submitted"`
	Rejected  uint64  `json:"rejected"`
	Admitted  uint64  `json:"admitted"`
	Served    uint64  `json:"served"`
	Evicted   uint64  `json:"evicted"`
	Expired   uint64  `json:"expired"`
	Departed  uint64  `json:"departed"`
	Ticks     uint64  `json:"ticks"`
	Reward    float64 `json:"reward"`
	// Batched-ingest counters; absent (zero) in checkpoints written
	// before the bulk intake path existed.
	Batches   uint64 `json:"batches,omitempty"`
	BatchReqs uint64 `json:"batchRequests,omitempty"`
	Shed      uint64 `json:"shed,omitempty"`
	Saturated uint64 `json:"saturated,omitempty"`
}

// CheckpointRequest is one live (pending or in-service) request.
type CheckpointRequest struct {
	ExternalID  uint64      `json:"id"`
	ArrivalSlot int         `json:"arrivalSlot"`
	Running     bool        `json:"running,omitempty"`
	Spec        RequestSpec `json:"spec"`
}

// Checkpoint is the daemon's durable state: the slot clock, the id
// allocator, the bandit's arm statistics, every live request's spec, and
// the exact ledger deltas of the in-flight streams. Running entries key
// streams by EXTERNAL request id; install remaps them onto the dense
// internal ids the rebuilt planner assigns.
type Checkpoint struct {
	Version        int                       `json:"version"`
	Slot           int                       `json:"slot"`
	NextExternalID uint64                    `json:"nextExternalId"`
	Scheduler      string                    `json:"scheduler"`
	Bandit         *bandit.LipschitzSnapshot `json:"bandit,omitempty"`
	Requests       []CheckpointRequest       `json:"requests,omitempty"`
	Running        []sim.RunningSnapshot     `json:"running,omitempty"`
	Totals         Totals                    `json:"totals"`
}

// WriteCheckpoint atomically persists a checkpoint: write to a temp file
// in the same directory, fsync, rename. A crash mid-write leaves the
// previous checkpoint intact.
func WriteCheckpoint(path string, ck *Checkpoint) error {
	data, err := json.MarshalIndent(ck, "", " ")
	if err != nil {
		return fmt.Errorf("serve: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: committing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint; ErrNoCheckpoint when the file is
// absent.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoCheckpoint
	}
	if err != nil {
		return nil, fmt.Errorf("serve: reading checkpoint: %w", err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("serve: decoding checkpoint %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("serve: checkpoint %s has version %d, want %d", path, ck.Version, checkpointVersion)
	}
	return &ck, nil
}
