package serve

import (
	"math/rand"
	"testing"
)

// TestRunSlotIdleNoAllocs pins the daemon's steady-state hot path: an
// idle slot (no pending requests, no running streams) must execute
// without heap allocations — no event buffers, no shard messages, no
// reply channels. The test drives runSlot directly on an unstarted
// engine; idle-skip publishing means no channel sends happen, so the
// absent shard goroutines are never needed.
func TestRunSlotIdleNoAllocs(t *testing.T) {
	if oracleEnv() {
		t.Skip("MEC_ORACLE installs a per-slot checker that allocates")
	}
	e, err := New(Config{Net: testNetwork(t, 4), Rng: rand.New(rand.NewSource(42))})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() { e.runSlot() })
	if allocs != 0 {
		t.Fatalf("idle runSlot allocated %.1f times per slot, want 0", allocs)
	}
	if got := e.metrics.SlotErrors.Load(); got != 0 {
		t.Fatalf("idle slots recorded %d scheduler errors, want 0", got)
	}
}
