package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"

	"mecoffload/internal/core"
)

// slotDurationBucketsMS are the upper bounds (milliseconds) of the slot
// scheduling-latency histogram. The paper's slot is 50 ms; a healthy tick
// schedules in a fraction of that, so the buckets resolve the sub-slot
// range finely and the overload range coarsely.
var slotDurationBucketsMS = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000}

// intakeLatencyBucketsMS resolve the batched-ingest handoff (pump
// enqueue to planner append). A healthy handoff completes well inside a
// tick; the coarse tail captures overload, where entries wait in the
// ring behind the MaxPending backpressure bound.
var intakeLatencyBucketsMS = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 500}

// counter is a monotonically increasing uint64 safe for concurrent use.
type counter struct{ v atomic.Uint64 }

func (c *counter) Add(n uint64) { c.v.Add(n) }
func (c *counter) Inc()         { c.v.Add(1) }
func (c *counter) Load() uint64 { return c.v.Load() }

// floatCounter accumulates a float64 total (realized reward) with a
// compare-and-swap loop over the bit pattern.
type floatCounter struct{ bits atomic.Uint64 }

func (f *floatCounter) Add(x float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *floatCounter) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// histogram is a fixed-bucket Prometheus-style histogram. Observe is
// called only by the engine loop; Load-side readers may race benignly
// between bucket and sum reads (standard for lock-free exposition).
type histogram struct {
	bounds []float64
	counts []atomic.Uint64
	sum    floatCounter
	total  counter
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

func (h *histogram) Observe(x float64) {
	for i, b := range h.bounds {
		if x <= b {
			h.counts[i].Add(1)
		}
	}
	h.sum.Add(x)
	h.total.Inc()
}

// HistogramSnapshot is a point-in-time copy of one histogram, letting
// external expositions (the cluster's per-shard /metrics) render the
// engine's histograms under their own label sets.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.total.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// SlotDurationSnapshot copies the slot-duration histogram.
func (m *Metrics) SlotDurationSnapshot() HistogramSnapshot { return m.SlotDuration.snapshot() }

// IntakeLatencySnapshot copies the intake-latency histogram.
func (m *Metrics) IntakeLatencySnapshot() HistogramSnapshot { return m.IntakeLatency.snapshot() }

// Metrics is the daemon's metric surface. All fields are safe for
// concurrent read while the engine loop writes.
type Metrics struct {
	Submitted    counter // requests accepted into the intake queue
	Rejected     counter // requests refused at intake (draining)
	Admitted     counter // scheduler admissions (includes later evictions)
	Served       counter // admissions that survived settlement
	Evicted      counter // admissions evicted at realization or by overload
	Expired      counter // pending requests whose deadline became unreachable
	Departed     counter // streams that completed their hold and released
	Ticks        counter // scheduling slots executed
	Checkpoints  counter // checkpoints written
	SlotErrors   counter // slots whose scheduler returned an error
	Reward       floatCounter
	SlotDuration *histogram

	// Batched ingest path.
	Batches       counter    // SubmitBatch calls accepted by the pump
	BatchRequests counter    // requests carried by those batches
	Shed          counter    // requests dropped by reward-aware shedding
	Saturated     counter    // batches refused with ErrSaturated (503)
	IntakeLatency *histogram // pump enqueue -> planner append, ms

	// Gauges, written by the engine loop each tick.
	PendingDepth  atomic.Int64
	ActiveStreams atomic.Int64
	LastTickNano  atomic.Int64
	CurrentSlot   atomic.Int64
	// IntakeDepth is the ingest ring's depth; the staged-entry gauge
	// lives on the engine (stagedDepth) because the pump owns it.
	IntakeDepth atomic.Int64

	drainFlag atomic.Bool
}

// totals captures the cumulative counters for checkpointing, so a
// restarted daemon's /metrics stays cumulative across the restart.
func (m *Metrics) totals() Totals {
	return Totals{
		Submitted: m.Submitted.Load(),
		Rejected:  m.Rejected.Load(),
		Admitted:  m.Admitted.Load(),
		Served:    m.Served.Load(),
		Evicted:   m.Evicted.Load(),
		Expired:   m.Expired.Load(),
		Departed:  m.Departed.Load(),
		Ticks:     m.Ticks.Load(),
		Reward:    m.Reward.Load(),
		Batches:   m.Batches.Load(),
		BatchReqs: m.BatchRequests.Load(),
		Shed:      m.Shed.Load(),
		Saturated: m.Saturated.Load(),
	}
}

// restoreTotals seeds the cumulative counters from a checkpoint. Only
// valid on a fresh Metrics (counters are monotonic).
func (m *Metrics) restoreTotals(t Totals) {
	m.Submitted.v.Store(t.Submitted)
	m.Rejected.v.Store(t.Rejected)
	m.Admitted.v.Store(t.Admitted)
	m.Served.v.Store(t.Served)
	m.Evicted.v.Store(t.Evicted)
	m.Expired.v.Store(t.Expired)
	m.Departed.v.Store(t.Departed)
	m.Ticks.v.Store(t.Ticks)
	m.Reward.bits.Store(math.Float64bits(t.Reward))
	m.Batches.v.Store(t.Batches)
	m.BatchRequests.v.Store(t.BatchReqs)
	m.Shed.v.Store(t.Shed)
	m.Saturated.v.Store(t.Saturated)
}

// NewMetrics builds an empty metric set.
func NewMetrics() *Metrics {
	return &Metrics{
		SlotDuration:  newHistogram(slotDurationBucketsMS),
		IntakeLatency: newHistogram(intakeLatencyBucketsMS),
	}
}

// StationGauge is one station's exposed capacity state, assembled from
// the shard that owns it.
type StationGauge struct {
	Station     int
	UsedMHz     float64
	CapacityMHz float64
}

// WriteProm renders the metric set in Prometheus text exposition format
// (version 0.0.4). warmHits/warmMisses come from the scheduler's LP
// warm-start cache; staged is the pump's overflow-stage depth; stations
// come from the shards; inc carries the dirty-component tracker's
// counters (all zero unless the scheduler runs incremental or
// local-ratio mode, in which case the component-solve split shows how
// often the slot skipped the LP).
func (m *Metrics) WriteProm(w io.Writer, warmHits, warmMisses uint64, staged int64, stations []StationGauge, inc core.IncStats) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP arserved_requests_total AR offloading requests by terminal result.\n")
	p("# TYPE arserved_requests_total counter\n")
	p("arserved_requests_total{result=\"submitted\"} %d\n", m.Submitted.Load())
	p("arserved_requests_total{result=\"rejected\"} %d\n", m.Rejected.Load())
	p("arserved_requests_total{result=\"admitted\"} %d\n", m.Admitted.Load())
	p("arserved_requests_total{result=\"served\"} %d\n", m.Served.Load())
	p("arserved_requests_total{result=\"evicted\"} %d\n", m.Evicted.Load())
	p("arserved_requests_total{result=\"expired\"} %d\n", m.Expired.Load())
	p("arserved_requests_total{result=\"departed\"} %d\n", m.Departed.Load())
	p("arserved_requests_total{result=\"shed\"} %d\n", m.Shed.Load())

	p("# HELP arserved_reward_dollars_total Realized reward credited across all slots.\n")
	p("# TYPE arserved_reward_dollars_total counter\n")
	p("arserved_reward_dollars_total %g\n", m.Reward.Load())

	p("# HELP arserved_ticks_total Scheduling slots executed.\n")
	p("# TYPE arserved_ticks_total counter\n")
	p("arserved_ticks_total %d\n", m.Ticks.Load())

	p("# HELP arserved_checkpoints_total Checkpoints written to disk.\n")
	p("# TYPE arserved_checkpoints_total counter\n")
	p("arserved_checkpoints_total %d\n", m.Checkpoints.Load())

	p("# HELP arserved_slot_errors_total Slots whose scheduler returned an error.\n")
	p("# TYPE arserved_slot_errors_total counter\n")
	p("arserved_slot_errors_total %d\n", m.SlotErrors.Load())

	p("# HELP arserved_pending_requests Requests waiting in the admission queue.\n")
	p("# TYPE arserved_pending_requests gauge\n")
	p("arserved_pending_requests %d\n", m.PendingDepth.Load())

	p("# HELP arserved_batches_total Bulk intake batches accepted.\n")
	p("# TYPE arserved_batches_total counter\n")
	p("arserved_batches_total %d\n", m.Batches.Load())
	p("# HELP arserved_batch_requests_total Requests carried by accepted bulk batches.\n")
	p("# TYPE arserved_batch_requests_total counter\n")
	p("arserved_batch_requests_total %d\n", m.BatchRequests.Load())
	p("# HELP arserved_saturated_total Bulk batches refused because the ingest path was saturated.\n")
	p("# TYPE arserved_saturated_total counter\n")
	p("arserved_saturated_total %d\n", m.Saturated.Load())
	p("# HELP arserved_intake_ring_depth Entries waiting in the ingest ring.\n")
	p("# TYPE arserved_intake_ring_depth gauge\n")
	p("arserved_intake_ring_depth %d\n", m.IntakeDepth.Load())
	p("# HELP arserved_intake_staged_depth Entries waiting in the reward-sorted overflow stage.\n")
	p("# TYPE arserved_intake_staged_depth gauge\n")
	p("arserved_intake_staged_depth %d\n", staged)

	p("# HELP arserved_intake_latency_ms Batched-ingest handoff latency (pump enqueue to planner append).\n")
	p("# TYPE arserved_intake_latency_ms histogram\n")
	for i, b := range m.IntakeLatency.bounds {
		p("arserved_intake_latency_ms_bucket{le=\"%g\"} %d\n", b, m.IntakeLatency.counts[i].Load())
	}
	p("arserved_intake_latency_ms_bucket{le=\"+Inf\"} %d\n", m.IntakeLatency.total.Load())
	p("arserved_intake_latency_ms_sum %g\n", m.IntakeLatency.sum.Load())
	p("arserved_intake_latency_ms_count %d\n", m.IntakeLatency.total.Load())

	p("# HELP arserved_active_streams Streams currently occupying service instances.\n")
	p("# TYPE arserved_active_streams gauge\n")
	p("arserved_active_streams %d\n", m.ActiveStreams.Load())

	p("# HELP arserved_current_slot The engine's current scheduling slot.\n")
	p("# TYPE arserved_current_slot gauge\n")
	p("arserved_current_slot %d\n", m.CurrentSlot.Load())

	p("# HELP arserved_slot_duration_ms Scheduling latency of one slot in milliseconds.\n")
	p("# TYPE arserved_slot_duration_ms histogram\n")
	for i, b := range m.SlotDuration.bounds {
		p("arserved_slot_duration_ms_bucket{le=\"%g\"} %d\n", b, m.SlotDuration.counts[i].Load())
	}
	p("arserved_slot_duration_ms_bucket{le=\"+Inf\"} %d\n", m.SlotDuration.total.Load())
	p("arserved_slot_duration_ms_sum %g\n", m.SlotDuration.sum.Load())
	p("arserved_slot_duration_ms_count %d\n", m.SlotDuration.total.Load())

	p("# HELP arserved_lp_warmstart_total LP-PT warm-start basis lookups by outcome.\n")
	p("# TYPE arserved_lp_warmstart_total counter\n")
	p("arserved_lp_warmstart_total{outcome=\"hit\"} %d\n", warmHits)
	p("arserved_lp_warmstart_total{outcome=\"miss\"} %d\n", warmMisses)
	p("# HELP arserved_lp_warmstart_hit_ratio Fraction of LP-PT solves seeded from a previous basis.\n")
	p("# TYPE arserved_lp_warmstart_hit_ratio gauge\n")
	ratio := 0.0
	if total := warmHits + warmMisses; total > 0 {
		ratio = float64(warmHits) / float64(total)
	}
	p("arserved_lp_warmstart_hit_ratio %g\n", ratio)

	if inc != (core.IncStats{}) {
		// In local-ratio-only mode the counters-only tracker never counts
		// dirty solves, so the residual lp bucket clamps at zero there.
		lpSolves := int64(inc.DirtySolves) - int64(inc.FastPath) - int64(inc.FastFallback)
		if lpSolves < 0 {
			lpSolves = 0
		}
		p("# HELP arserved_component_solves_total Per-slot LP component decisions by path: clean replays the cached decision, local-ratio certifies and skips the LP, fallback failed certification, lp is a full component solve.\n")
		p("# TYPE arserved_component_solves_total counter\n")
		p("arserved_component_solves_total{path=\"clean\"} %d\n", inc.CleanHits)
		p("arserved_component_solves_total{path=\"local-ratio\"} %d\n", inc.FastPath)
		p("arserved_component_solves_total{path=\"fallback\"} %d\n", inc.FastFallback)
		p("arserved_component_solves_total{path=\"lp\"} %d\n", lpSolves)
	}

	if len(stations) > 0 {
		sorted := append([]StationGauge(nil), stations...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a].Station < sorted[b].Station })
		p("# HELP arserved_station_used_mhz Realized MHz committed per base station.\n")
		p("# TYPE arserved_station_used_mhz gauge\n")
		for _, s := range sorted {
			p("arserved_station_used_mhz{station=\"%d\"} %g\n", s.Station, s.UsedMHz)
		}
		p("# HELP arserved_station_capacity_mhz Configured MHz capacity per base station.\n")
		p("# TYPE arserved_station_capacity_mhz gauge\n")
		for _, s := range sorted {
			p("arserved_station_capacity_mhz{station=\"%d\"} %g\n", s.Station, s.CapacityMHz)
		}
	}
	return err
}
