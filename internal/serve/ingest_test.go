package serve

import (
	"errors"
	"testing"
	"time"
)

// pricedSpec builds a spec whose expected reward is exactly price.
func pricedSpec(station int, price float64) RequestSpec {
	return RequestSpec{
		AccessStation: station,
		DurationSlots: 3,
		Outcomes:      []OutcomeSpec{{Prob: 1, RateMBs: 40, Reward: price}},
	}
}

// TestSubmitBatchLifecycle drives a batch through intake, flush, and a
// few slots, and checks the ids stay resolvable end to end.
func TestSubmitBatchLifecycle(t *testing.T) {
	e := testEngine(t, Config{})
	specs := make([]RequestSpec, 6)
	for i := range specs {
		specs[i] = pricedSpec(i%e.cfg.Net.NumStations(), float64(100+i))
	}
	res, err := e.SubmitBatch(specs)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if len(res.IDs) != 6 || res.Shed != 0 {
		t.Fatalf("batch result = %+v, want 6 ids and no shed", res)
	}
	for i := 1; i < len(res.IDs); i++ {
		if res.IDs[i] != res.IDs[i-1]+1 {
			t.Fatalf("ids not contiguous in submission order: %v", res.IDs)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := e.metrics.Submitted.Load(); got != 6 {
		t.Fatalf("submitted = %d, want 6", got)
	}
	if e.RingDepth() != 0 || e.StagedDepth() != 0 {
		t.Fatalf("post-flush depths ring=%d staged=%d, want 0/0", e.RingDepth(), e.StagedDepth())
	}
	for _, id := range res.IDs {
		rec, ok, err := e.Status(id)
		if err != nil || !ok {
			t.Fatalf("status %d: ok=%v err=%v", id, ok, err)
		}
		if rec.State != StatePending {
			t.Fatalf("request %d state %q after flush, want pending", id, rec.State)
		}
	}
	for i := 0; i < 5; i++ {
		if err := e.Tick(); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	served := 0
	for _, id := range res.IDs {
		rec, ok, _ := e.Status(id)
		if ok && rec.State != StatePending {
			served++
		}
	}
	if served == 0 {
		t.Fatal("no batch request progressed past pending after 5 slots")
	}
	if got := e.metrics.Batches.Load(); got != 1 {
		t.Fatalf("batches counter = %d, want 1", got)
	}
	if got := e.metrics.BatchRequests.Load(); got != 6 {
		t.Fatalf("batch requests counter = %d, want 6", got)
	}
}

// TestSubmitBatchShedsLowestReward is the overload-policy test worked
// out entry by entry: ring capacity 4, stage capacity 4, and a loop that
// will not drain (MaxPending already exceeded by two single-POST
// requests). A batch of ten requests priced 1..10 must keep prices 1-4
// in the ring (FIFO, admitted first), stage 7-10, and shed exactly the
// two cheapest staged requests, 5 and 6.
func TestSubmitBatchShedsLowestReward(t *testing.T) {
	e := testEngine(t, Config{
		RingCapacity:  4,
		StageCapacity: 4,
		MaxPending:    1,
	})
	// Two single-POST requests exceed MaxPending so drainRing backs off.
	pre := submitN(t, e, 2)
	specs := make([]RequestSpec, 10)
	for i := range specs {
		specs[i] = pricedSpec(0, float64(i+1))
	}
	res, err := e.SubmitBatch(specs)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if res.Shed != 2 {
		t.Fatalf("shed = %d, want 2 (prices 5 and 6)", res.Shed)
	}
	shed := map[uint64]bool{res.IDs[4]: true, res.IDs[5]: true}
	for i, id := range res.IDs {
		rec, ok, err := e.Status(id)
		if err != nil || !ok {
			t.Fatalf("status %d: ok=%v err=%v", id, ok, err)
		}
		want := StatePending
		if shed[id] {
			want = StateShed
		}
		if rec.State != want {
			t.Fatalf("price %d (id %d) state %q, want %q", i+1, id, rec.State, want)
		}
	}
	if got := e.metrics.Shed.Load(); got != 2 {
		t.Fatalf("shed counter = %d, want 2", got)
	}
	// Flush force-drains ring and stage; the 8 survivors plus the two
	// single-POST requests are all admitted.
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := e.metrics.Submitted.Load(); got != 10 {
		t.Fatalf("submitted = %d, want 10 (2 singles + 8 surviving batch)", got)
	}
	for _, id := range pre {
		rec, ok, _ := e.Status(id)
		if !ok || rec.State != StatePending {
			t.Fatalf("single-POST request %d disturbed by batch path: %+v", id, rec)
		}
	}
}

// TestSubmitBatchEdgeCases covers the empty batch and the
// draining/stopped refusals.
func TestSubmitBatchEdgeCases(t *testing.T) {
	e := testEngine(t, Config{})
	res, err := e.SubmitBatch(nil)
	if err != nil || len(res.IDs) != 0 || res.Shed != 0 {
		t.Fatalf("empty batch = (%+v, %v), want zero result", res, err)
	}
	// A pending request keeps a draining manual-tick loop alive (an empty
	// drained engine exits immediately, which is the ErrStopped case).
	submitN(t, e, 1)
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SubmitBatch([]RequestSpec{{}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining SubmitBatch err = %v, want ErrDraining", err)
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SubmitBatch([]RequestSpec{{}}); !errors.Is(err, ErrStopped) {
		t.Fatalf("stopped SubmitBatch err = %v, want ErrStopped", err)
	}
	// The pump goroutine must exit with the loop.
	select {
	case <-e.pumpDone:
	case <-time.After(5 * time.Second):
		t.Fatal("pump goroutine did not exit on engine stop")
	}
}

// TestValidateSpecDeterminism: validation must not consume engine
// randomness, so interleaving validations cannot change admission
// decisions.
func TestValidateSpec(t *testing.T) {
	e := testEngine(t, Config{})
	if err := e.ValidateSpec(RequestSpec{}); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	bad := RequestSpec{Outcomes: []OutcomeSpec{{Prob: -1, RateMBs: 40, Reward: 1}}}
	if err := e.ValidateSpec(bad); err == nil {
		t.Fatal("negative-probability spec validated")
	}
}
