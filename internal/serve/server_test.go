package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestServer boots a manual-tick engine behind httptest.
func newTestServer(t *testing.T) (*Engine, *httptest.Server) {
	t.Helper()
	e, err := New(Config{Net: testNetwork(t, 4), Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	srv := httptest.NewServer(Handler(e))
	t.Cleanup(func() {
		srv.Close()
		_ = e.Stop()
	})
	return e, srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestHTTPSubmitAndStatus walks the JSON API end to end: submit, poll
// status through a tick, scrape metrics.
func TestHTTPSubmitAndStatus(t *testing.T) {
	e, srv := newTestServer(t)

	resp, body := postJSON(t, srv.URL+"/v1/requests", RequestSpec{AccessStation: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.State != StatePending {
		t.Fatalf("submitted state %q", sub.State)
	}

	resp, body = get(t, fmt.Sprintf("%s/v1/requests/%d", srv.URL, sub.ID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status lookup %d: %s", resp.StatusCode, body)
	}
	var rec RequestRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != sub.ID || rec.State != StatePending {
		t.Fatalf("record %+v", rec)
	}

	if err := e.Tick(); err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, fmt.Sprintf("%s/v1/requests/%d", srv.URL, sub.ID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status lookup %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != StateServing && rec.State != StateEvicted {
		t.Fatalf("post-tick state %q, want a decided state", rec.State)
	}

	resp, _ = get(t, srv.URL+"/v1/requests/999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id -> %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, srv.URL+"/v1/requests/not-a-number")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id -> %d, want 400", resp.StatusCode)
	}

	resp, body = get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"arserved_requests_total{result=\"submitted\"} 1",
		"arserved_ticks_total 1",
		"arserved_station_capacity_mhz{station=\"0\"}",
		"arserved_slot_duration_ms_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestHTTPErrorPaths covers the non-2xx API surface.
func TestHTTPErrorPaths(t *testing.T) {
	e, srv := newTestServer(t)

	resp, _ := postJSON(t, srv.URL+"/v1/requests", RequestSpec{AccessStation: 77})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad station -> %d, want 422", resp.StatusCode)
	}
	resp, err := http.Post(srv.URL+"/v1/requests", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body -> %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/requests", "application/json", strings.NewReader(`{"unknownField": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field -> %d, want 400", resp.StatusCode)
	}

	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/requests", RequestSpec{AccessStation: 0})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining -> %d, want 503", resp.StatusCode)
	}
}

// TestHealthEndpoints checks liveness and readiness gating.
func TestHealthEndpoints(t *testing.T) {
	e, srv := newTestServer(t)

	resp, _ := get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}
	resp, _ = get(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d", resp.StatusCode)
	}

	// Draining with work still in flight: alive but not ready. (A drain
	// with nothing pending or running exits the loop immediately.)
	if _, _, err := e.Submit(RequestSpec{AccessStation: 0}); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	resp, _ = get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining %d", resp.StatusCode)
	}
	resp, _ = get(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining %d, want 503", resp.StatusCode)
	}

	// Stopped: neither.
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	resp, _ = get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after stop %d, want 503", resp.StatusCode)
	}
}

// postNDJSON posts a raw NDJSON body to the batch endpoint.
func postNDJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/requests:batch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestHTTPBatchSubmit drives the NDJSON bulk endpoint: good lines admit
// in order, bad lines come back as per-line errors without sinking the
// batch, and the assigned ids resolve via the status API.
func TestHTTPBatchSubmit(t *testing.T) {
	e, srv := newTestServer(t)

	body := `{"accessStation":0,"durationSlots":3}
{"accessStation":99}
{not json
{"accessStation":1,"deadlineMS":150}
`
	resp, out := postNDJSON(t, srv.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch -> %d: %s", resp.StatusCode, out)
	}
	var br batchResponse
	if err := json.Unmarshal(out, &br); err != nil {
		t.Fatal(err)
	}
	if br.Accepted != 2 || len(br.IDs) != 2 || br.Shed != 0 {
		t.Fatalf("batch response %+v, want 2 accepted", br)
	}
	if len(br.Errors) != 2 {
		t.Fatalf("line errors %+v, want 2 (bad station line 2, bad JSON line 3)", br.Errors)
	}
	errLines := map[int]bool{br.Errors[0].Line: true, br.Errors[1].Line: true}
	if !errLines[2] || !errLines[3] {
		t.Fatalf("line errors on %+v, want lines 2 and 3", br.Errors)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, id := range br.IDs {
		resp, body := get(t, fmt.Sprintf("%s/v1/requests/%d", srv.URL, id))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d -> %d: %s", id, resp.StatusCode, body)
		}
		var rec RequestRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.State != StatePending {
			t.Fatalf("batch request %d state %q, want pending", id, rec.State)
		}
	}

	// All-garbage batch: 200 with only line errors, nothing admitted.
	resp, out = postNDJSON(t, srv.URL, "{nope\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("all-garbage batch -> %d: %s", resp.StatusCode, out)
	}
	if err := json.Unmarshal(out, &br); err != nil {
		t.Fatal(err)
	}
	if br.Accepted != 0 || len(br.Errors) != 1 {
		t.Fatalf("all-garbage response %+v", br)
	}

	// Empty body is a client error.
	resp, _ = postNDJSON(t, srv.URL, "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch -> %d, want 400", resp.StatusCode)
	}
}

// TestHTTPOverloadContract pins the 503 shape: Retry-After header, JSON
// body with a jittered retryAfterMS hint in [500, 1000).
func TestHTTPOverloadContract(t *testing.T) {
	e, srv := newTestServer(t)
	// Keep the loop alive through the drain so the refusal is ErrDraining.
	if _, _, err := e.Submit(RequestSpec{AccessStation: 0}); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, post := range []func() (*http.Response, []byte){
		func() (*http.Response, []byte) { return postJSON(t, srv.URL+"/v1/requests", RequestSpec{}) },
		func() (*http.Response, []byte) { return postNDJSON(t, srv.URL, "{}\n") },
	} {
		resp, out := post()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining submit -> %d, want 503", resp.StatusCode)
		}
		ra := resp.Header.Get("Retry-After")
		if ra == "" {
			t.Fatal("503 without Retry-After header")
		}
		var eresp errorResponse
		if err := json.Unmarshal(out, &eresp); err != nil {
			t.Fatalf("503 body not structured JSON: %q", out)
		}
		if eresp.Error == "" {
			t.Fatal("503 body missing error message")
		}
		if eresp.RetryAfterMS < 500 || eresp.RetryAfterMS >= 1000 {
			t.Fatalf("retryAfterMS = %d, want jittered in [500, 1000)", eresp.RetryAfterMS)
		}
	}
}
