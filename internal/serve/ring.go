package serve

// The high-throughput ingest path's two queue primitives.
//
// ingestRing is a bounded single-producer/single-consumer ring buffer in
// the classic Lamport style: the producer (the intake pump goroutine)
// only advances tail, the consumer (the engine loop) only advances head,
// and the atomic cursor stores establish the happens-before edges that
// make the slot handoff safe without locks. It sits between HTTP intake
// and the engine loop so a burst of batch submissions never contends
// with a scheduling tick.
//
// stageBuffer is the pump-owned overflow stage that implements the
// reward-aware shedding policy: entries that cannot enter a full ring
// wait here ordered by expected reward, drain back into the ring
// highest-expected-reward first, and — once the stage itself overflows —
// shed lowest-expected-reward first. Below saturation the stage is
// pass-through (insert immediately followed by pop), so FIFO submission
// order is preserved and batched intake decides identically to the
// single-POST path; the priority order only reorders requests the
// single-POST path would have had to refuse outright.

import (
	"sort"
	"sync/atomic"
)

// ingestEntry is one request travelling the batch intake path.
type ingestEntry struct {
	spec    RequestSpec
	ext     uint64  // externally visible id, assigned by the pump
	price   float64 // expected reward under the spec's demand distribution
	seq     uint64  // pump-local arrival ordinal, for deterministic ties
	enqNano int64   // enqueue timestamp for the intake-latency histogram
}

// ingestRing is the bounded SPSC ring. Capacity is rounded up to a power
// of two so index masking replaces modulo on the hot path.
type ingestRing struct {
	mask uint64
	buf  []ingestEntry
	head atomic.Uint64 // next index to pop; written only by the consumer
	tail atomic.Uint64 // next index to push; written only by the producer
}

func newIngestRing(capacity int) *ingestRing {
	if capacity < 2 {
		capacity = 2
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &ingestRing{mask: uint64(n - 1), buf: make([]ingestEntry, n)}
}

// Cap returns the ring's fixed capacity.
func (r *ingestRing) Cap() int { return len(r.buf) }

// Len returns the current depth. Reading both cursors is not atomic as a
// pair, so concurrent callers see a value at most one push/pop stale —
// exact for the producer and consumer themselves, gauge-grade for
// everyone else.
func (r *ingestRing) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// TryPush appends one entry; false when the ring is full. Producer
// goroutine only.
func (r *ingestRing) TryPush(e ingestEntry) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = e
	r.tail.Store(t + 1) // release: publishes the slot write to the consumer
	return true
}

// TryPop removes the oldest entry; false when the ring is empty.
// Consumer goroutine only.
func (r *ingestRing) TryPop() (ingestEntry, bool) {
	h := r.head.Load()
	if r.tail.Load() == h {
		return ingestEntry{}, false
	}
	e := r.buf[h&r.mask]
	// Clear the slot before releasing it so the ring never pins request
	// specs past their pop (the producer may not reuse this slot for a
	// long time on a quiet daemon).
	r.buf[h&r.mask] = ingestEntry{}
	r.head.Store(h + 1) // release: returns the slot to the producer
	return e, true
}

// stageBuffer holds entries waiting for ring space, sorted ascending by
// (price, then seq descending): index 0 is the cheapest entry — and,
// among equal prices, the newest — which is exactly what the shedding
// policy drops first; the last index is the most valuable — and, among
// equal prices, the oldest — which is what drains into the ring first.
// Owned entirely by the pump goroutine.
type stageBuffer struct {
	entries []ingestEntry
}

func (s *stageBuffer) len() int { return len(s.entries) }

// insert places one entry at its sorted position.
func (s *stageBuffer) insert(e ingestEntry) {
	i := sort.Search(len(s.entries), func(i int) bool {
		if s.entries[i].price != e.price {
			return s.entries[i].price > e.price
		}
		return s.entries[i].seq < e.seq // equal price: newer (larger seq) sorts lower
	})
	s.entries = append(s.entries, ingestEntry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
}

// popLowest removes and returns the cheapest (shed victim) entry.
func (s *stageBuffer) popLowest() ingestEntry {
	e := s.entries[0]
	n := copy(s.entries, s.entries[1:])
	s.entries[n] = ingestEntry{}
	s.entries = s.entries[:n]
	return e
}

// popHighest removes and returns the most valuable (next to drain) entry.
func (s *stageBuffer) popHighest() ingestEntry {
	n := len(s.entries) - 1
	e := s.entries[n]
	s.entries[n] = ingestEntry{}
	s.entries = s.entries[:n]
	return e
}
