package serve

import (
	"runtime"
	"testing"
)

// TestRingFIFO pins the single-goroutine contract: entries pop in push
// order, capacity rounds up to a power of two, and a full ring refuses
// pushes without losing anything.
func TestRingFIFO(t *testing.T) {
	r := newIngestRing(3)
	if r.Cap() != 4 {
		t.Fatalf("capacity 3 rounded to %d, want 4", r.Cap())
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(ingestEntry{ext: uint64(i)}) {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	if r.TryPush(ingestEntry{ext: 99}) {
		t.Fatal("push accepted on a full ring")
	}
	if r.Len() != 4 {
		t.Fatalf("full ring len %d, want 4", r.Len())
	}
	for i := 0; i < 4; i++ {
		e, ok := r.TryPop()
		if !ok || e.ext != uint64(i) {
			t.Fatalf("pop %d = (%v, %v), want ext %d", i, e.ext, ok, i)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop succeeded on an empty ring")
	}
}

// TestRingSPSCNoDropNoDup is the concurrency property test (run under
// -race by the CI race job): with exactly one producer and one consumer
// the ring delivers every entry exactly once, in order, below capacity.
func TestRingSPSCNoDropNoDup(t *testing.T) {
	n := 50000
	if testing.Short() {
		n = 5000
	}
	r := newIngestRing(64)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			for !r.TryPush(ingestEntry{ext: uint64(i), seq: uint64(i)}) {
				// Yield while full: on one CPU a pure spin starves the
				// consumer for whole scheduling quanta.
				runtime.Gosched()
			}
		}
		done <- nil
	}()
	for i := 0; i < n; {
		e, ok := r.TryPop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if e.ext != uint64(i) || e.seq != uint64(i) {
			t.Fatalf("pop %d saw entry %d/%d: dropped or duplicated", i, e.ext, e.seq)
		}
		i++
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("ring still holds %d entries", r.Len())
	}
}

// TestStageBufferOrder pins the reward-aware policy's ordering: sheds
// take the lowest price first (newest among ties), drains take the
// highest price first (oldest among ties).
func TestStageBufferOrder(t *testing.T) {
	var s stageBuffer
	// Prices 3, 1, 2, and two entries tied at price 2 (seq 2 older, seq 3 newer).
	s.insert(ingestEntry{ext: 0, price: 3, seq: 0})
	s.insert(ingestEntry{ext: 1, price: 1, seq: 1})
	s.insert(ingestEntry{ext: 2, price: 2, seq: 2})
	s.insert(ingestEntry{ext: 3, price: 2, seq: 3})

	if got := s.popLowest(); got.ext != 1 {
		t.Fatalf("first shed took ext %d (price %g), want the price-1 entry", got.ext, got.price)
	}
	// Tie at price 2: the newer entry (seq 3) sheds before the older.
	if got := s.popLowest(); got.ext != 3 {
		t.Fatalf("tie shed took ext %d, want the newer entry 3", got.ext)
	}
	// Drain order: highest price first.
	if got := s.popHighest(); got.ext != 0 {
		t.Fatalf("drain took ext %d, want the price-3 entry", got.ext)
	}
	if got := s.popHighest(); got.ext != 2 {
		t.Fatalf("drain took ext %d, want the remaining entry", got.ext)
	}
	if s.len() != 0 {
		t.Fatalf("stage still holds %d entries", s.len())
	}
}
