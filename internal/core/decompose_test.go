package core

import (
	"math"
	"math/rand"
	"testing"

	"mecoffload/internal/mec"
	"mecoffload/internal/workload"
)

func decomposeInstance(t *testing.T, stations, requests int, seed int64) (*mec.Network, []*mec.Request) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n, err := mec.RandomNetwork(stations, 3000, 3600, rng)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(workload.Config{NumRequests: requests, NumStations: stations}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return n, reqs
}

// TestDecomposedMatchesMonolithic is the decomposition's correctness
// anchor: the slot LP is block-diagonal across connected components of
// the candidate graph, so the sum of the per-component optima must equal
// the monolithic LP optimum (the optimal value is unique even when the
// optimal vertex is not). It also checks that every request receives the
// same number of variables either way.
func TestDecomposedMatchesMonolithic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		n, reqs := decomposeInstance(t, 10, 50, seed)

		mono, err := buildLP(n, reqs, lpOptions{})
		if err != nil {
			t.Fatal(err)
		}
		_, monoObj, err := mono.solve()
		if err != nil {
			t.Fatal(err)
		}

		sc := getSlotScratch()
		err = solveDecomposed(n, reqs, lpOptions{}, solveCfg{workers: 4}, sc, &sc.merged)
		if err != nil {
			putSlotScratch(sc)
			t.Fatal(err)
		}
		decObj := sc.merged.obj
		if len(sc.merged.vars) != len(mono.vars) {
			t.Fatalf("seed %d: decomposed has %d vars, monolithic %d", seed, len(sc.merged.vars), len(mono.vars))
		}
		putSlotScratch(sc)

		tol := 1e-7 * (1 + math.Abs(monoObj))
		if math.Abs(decObj-monoObj) > tol {
			t.Fatalf("seed %d: decomposed objective %.12f, monolithic %.12f", seed, decObj, monoObj)
		}
	}
}

// TestSplitComponentsPartition checks the structural invariants the
// deterministic merge relies on: components come back in ascending key
// order, station sets are disjoint, and every active request with at
// least one candidate appears in exactly one component.
func TestSplitComponentsPartition(t *testing.T) {
	n, reqs := decomposeInstance(t, 12, 40, 9)
	active := make([]int, len(reqs))
	for j := range active {
		active[j] = j
	}
	sc := getSlotScratch()
	defer putSlotScratch(sc)
	comps := splitComponents(n, reqs, lpOptions{
		active:       active,
		slotMHz:      n.SlotMHz(),
		slotLengthMS: mec.DefaultSlotLengthMS,
	}, sc, false)
	if len(comps) == 0 {
		t.Fatal("no components over a dense workload")
	}
	seenSt := map[int]bool{}
	seenReq := map[int]bool{}
	prevKey := -1
	for _, c := range comps {
		if c.key <= prevKey {
			t.Fatalf("component keys not ascending: %d after %d", c.key, prevKey)
		}
		prevKey = c.key
		if len(c.stations) == 0 || c.stations[0] != c.key {
			t.Fatalf("component key %d is not its smallest station %v", c.key, c.stations)
		}
		for _, i := range c.stations {
			if seenSt[i] {
				t.Fatalf("station %d in two components", i)
			}
			seenSt[i] = true
		}
		for _, j := range c.reqs {
			if seenReq[j] {
				t.Fatalf("request %d in two components", j)
			}
			seenReq[j] = true
		}
	}
}
