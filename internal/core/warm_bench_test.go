package core

import (
	"sync"
	"testing"

	"mecoffload/internal/lp"
)

// legacyWarmCache reproduces the seed's warm cache for benchmarking: one
// global mutex serializing every get and put (including the hit/miss
// counters). It is the contention baseline the sharded RWMutex +
// atomic-pointer WarmCache replaces.
type legacyWarmCache struct {
	mu    sync.Mutex
	slots map[warmKey]*lp.Basis
}

func (c *legacyWarmCache) get(pass, shard int) *lp.Basis {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slots[warmKey{pass: pass, shard: shard}]
}

func (c *legacyWarmCache) put(pass, shard int, b *lp.Basis) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.slots[warmKey{pass: pass, shard: shard}] = b
}

// warmBenchShards matches the component count of a typical per-slot
// decomposition over the paper's 20-station topology.
const warmBenchShards = 8

// BenchmarkWarmCacheSerial pins the single-goroutine cost of the
// concurrent-safe cache: the per-shard atomic pointers must not regress
// the GOMAXPROCS=1 hot path the sequential solver runs on. Compare with
// BenchmarkWarmCacheSerialLegacy — the sharded design must stay at least
// on par with the plain-mutex seed.
func BenchmarkWarmCacheSerial(b *testing.B) {
	c := NewWarmCache()
	basis := &lp.Basis{}
	for s := 0; s < warmBenchShards; s++ {
		c.put(0, s, basis)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := i % warmBenchShards
		if c.get(0, s) == nil {
			b.Fatal("miss on warmed shard")
		}
		c.put(0, s, basis)
	}
}

// BenchmarkWarmCacheSerialLegacy is the seed's global-mutex baseline
// under the identical access pattern.
func BenchmarkWarmCacheSerialLegacy(b *testing.B) {
	c := &legacyWarmCache{slots: map[warmKey]*lp.Basis{}}
	basis := &lp.Basis{}
	for s := 0; s < warmBenchShards; s++ {
		c.put(0, s, basis)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := i % warmBenchShards
		if c.get(0, s) == nil {
			b.Fatal("miss on warmed shard")
		}
		c.put(0, s, basis)
	}
}

// BenchmarkWarmCacheParallel measures the sharded cache under the solver
// worker pool's access pattern: every worker hammering its own shard.
// With per-shard atomic pointers the workers only share a read lock on
// the key map, so throughput should scale with cores instead of
// serializing on one mutex as the legacy variant does
// (BenchmarkWarmCacheParallelLegacy).
func BenchmarkWarmCacheParallel(b *testing.B) {
	c := NewWarmCache()
	basis := &lp.Basis{}
	for s := 0; s < warmBenchShards; s++ {
		c.put(0, s, basis)
	}
	var next int64
	var mu sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		shard := int(next) % warmBenchShards
		next++
		mu.Unlock()
		for pb.Next() {
			if c.get(0, shard) == nil {
				b.Fatal("miss on warmed shard")
			}
			c.put(0, shard, basis)
		}
	})
}

// BenchmarkWarmCacheParallelLegacy is the contention baseline for the
// parallel access pattern.
func BenchmarkWarmCacheParallelLegacy(b *testing.B) {
	c := &legacyWarmCache{slots: map[warmKey]*lp.Basis{}}
	basis := &lp.Basis{}
	for s := 0; s < warmBenchShards; s++ {
		c.put(0, s, basis)
	}
	var next int64
	var mu sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		shard := int(next) % warmBenchShards
		next++
		mu.Unlock()
		for pb.Next() {
			if c.get(0, shard) == nil {
				b.Fatal("miss on warmed shard")
			}
			c.put(0, shard, basis)
		}
	})
}
