package core

import (
	"math/rand"
	"reflect"
	"testing"

	"mecoffload/internal/dist"
	"mecoffload/internal/graph"
	"mecoffload/internal/mec"
	"mecoffload/internal/topology"
)

// incTestNetwork builds the two-station bridge network the dirty-set edge
// cases run on: stations 0 and 1 (3000 MHz each) joined by a single 10 ms
// backhaul link, so offloading to the remote station costs a 20 ms round
// trip. A request with a 40 ms deadline is then feasible only at its
// access station (30 ms processing alone), while a 200 ms deadline admits
// both stations — deadlines alone steer the candidate graph's shape.
func incTestNetwork(t *testing.T) *mec.Network {
	t.Helper()
	g := graph.New(2)
	if _, err := g.AddEdge(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	net, err := mec.NewNetwork(mec.NetworkConfig{
		Stations: []mec.BaseStation{
			{CapacityMHz: 3000, SpeedFactor: 1},
			{CapacityMHz: 3000, SpeedFactor: 1},
		},
		Topo: &topology.Topology{
			Graph: g,
			Nodes: []topology.Node{{X: 0, Y: 0}, {X: 0.1, Y: 0}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// incTestRequest builds a single-outcome request (rate 60 MB/s) whose
// candidate set is controlled by its deadline; see incTestNetwork.
func incTestRequest(t *testing.T, id, station int, deadlineMS, reward float64) *mec.Request {
	t.Helper()
	d, err := dist.NewRateReward([]dist.Outcome{{Rate: 60, Prob: 1, Reward: reward}})
	if err != nil {
		t.Fatal(err)
	}
	return &mec.Request{
		ID:            id,
		AccessStation: station,
		Tasks:         []mec.Task{{Name: "render", OutputKb: 100, WorkMS: 30}},
		DeadlineMS:    deadlineMS,
		Dist:          d,
	}
}

// incSlot runs one synthetic scheduling slot: a single-pass ScheduleBatch
// over the given active set against a copy of the baseline occupancy
// ledger (so the caller controls residual capacity per slot exactly), with
// a fixed per-slot rng so repeated slots draw identically. Passes: 1 keeps
// every cache entry on pass 0, making the clean/dirty counters count
// components one-for-one.
func incSlot(t *testing.T, n *mec.Network, reqs []*mec.Request, active []int, baseUsed []float64, inc *IncCache, stable bool) *Result {
	t.Helper()
	used := append([]float64(nil), baseUsed...)
	res := &Result{Algorithm: "inc-test", Decisions: make([]Decision, len(reqs))}
	_, err := ScheduleBatch(n, reqs, res, rand.New(rand.NewSource(9)), BatchOptions{
		Active:              active,
		Used:                used,
		RoundingDenominator: 1,
		Passes:              1,
		Inc:                 inc,
		StableLP:            stable,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// diffStats returns the (cleanHits, dirtySolves) delta since a snapshot.
func diffStats(now, before IncStats) (clean, dirty uint64) {
	return now.CleanHits - before.CleanHits, now.DirtySolves - before.DirtySolves
}

// requireStats asserts the clean/dirty counter movement of one slot.
func requireStats(t *testing.T, inc *IncCache, before IncStats, wantClean, wantDirty uint64, slot string) IncStats {
	t.Helper()
	now := inc.Stats()
	clean, dirty := diffStats(now, before)
	if clean != wantClean || dirty != wantDirty {
		t.Fatalf("%s: clean=%d dirty=%d, want clean=%d dirty=%d", slot, clean, dirty, wantClean, wantDirty)
	}
	return now
}

// requireParity asserts an incremental slot's decisions are identical to a
// full StableLP re-solve of the same slot (the per-slot refinement of the
// end-to-end oracle.DiffIncrementalFull contract).
func requireParity(t *testing.T, n *mec.Network, reqs []*mec.Request, active []int, baseUsed []float64, got *Result, slot string) {
	t.Helper()
	want := incSlot(t, n, reqs, active, baseUsed, nil, true)
	if !reflect.DeepEqual(got.Decisions, want.Decisions) {
		t.Fatalf("%s: incremental decisions diverge from full re-solve:\n inc: %+v\nfull: %+v",
			slot, got.Decisions, want.Decisions)
	}
}

// TestIncCacheFeedbackOnlySlotStaysClean pins the quiet-slot contract: a
// slot with no arrivals, no departures, and unchanged residual capacity
// (only bandit feedback happened elsewhere) re-presents bit-identical
// component signatures, so every component is a clean hit and the cached
// decisions are replayed exactly.
func TestIncCacheFeedbackOnlySlotStaysClean(t *testing.T) {
	n := incTestNetwork(t)
	reqs := []*mec.Request{
		incTestRequest(t, 0, 0, 40, 120), // station 0 only
		incTestRequest(t, 1, 1, 40, 180), // station 1 only
	}
	used := []float64{0, 0}
	inc := NewIncCache()

	st := inc.Stats()
	incSlot(t, n, reqs, []int{0, 1}, used, inc, false)
	st = requireStats(t, inc, st, 0, 2, "slot 1 (cold cache)")

	res := incSlot(t, n, reqs, []int{0, 1}, used, inc, false)
	requireStats(t, inc, st, 2, 0, "slot 2 (feedback-only)")
	requireParity(t, n, reqs, []int{0, 1}, used, res, "slot 2")
	for j := range reqs {
		if !res.Decisions[j].Admitted {
			t.Fatalf("request %d not admitted on the clean replay", j)
		}
	}
}

// TestIncCacheDepartureDirtiesComponent pins the departure edge case: a
// request leaving mid-stream changes its component's candidate list, so
// that component (and only that component) re-solves; an untouched
// component on another station stays clean. Once the post-departure shape
// has been cached, the stream's steady state is clean again.
func TestIncCacheDepartureDirtiesComponent(t *testing.T) {
	n := incTestNetwork(t)
	reqs := []*mec.Request{
		incTestRequest(t, 0, 0, 40, 120), // station 0, departs after slot 1
		incTestRequest(t, 1, 0, 40, 150), // station 0, stays
		incTestRequest(t, 2, 1, 40, 180), // station 1, stays
	}
	used := []float64{0, 0}
	inc := NewIncCache()

	st := inc.Stats()
	incSlot(t, n, reqs, []int{0, 1, 2}, used, inc, false)
	st = requireStats(t, inc, st, 0, 2, "slot 1 (cold cache)")

	// Request 0 departs: station 0's component shrinks (dirty), station
	// 1's is untouched (clean).
	res := incSlot(t, n, reqs, []int{1, 2}, used, inc, false)
	st = requireStats(t, inc, st, 1, 1, "slot 2 (departure)")
	requireParity(t, n, reqs, []int{1, 2}, used, res, "slot 2")

	res = incSlot(t, n, reqs, []int{1, 2}, used, inc, false)
	requireStats(t, inc, st, 2, 0, "slot 3 (post-departure steady state)")
	requireParity(t, n, reqs, []int{1, 2}, used, res, "slot 3")
}

// TestIncCacheBridgeMergesAndSplits pins the merge/split edge case: a
// bridging request whose candidates span both stations fuses the two
// single-station components into one (re-solved as a whole), and its
// departure splits them apart again. The split re-solves only the
// component whose cache slot the merged solve overwrote — the merged
// component was filed under the smallest station key (0), so station 1's
// pre-merge entry survives and replays clean immediately.
func TestIncCacheBridgeMergesAndSplits(t *testing.T) {
	n := incTestNetwork(t)
	reqs := []*mec.Request{
		incTestRequest(t, 0, 0, 40, 120),  // station 0 only
		incTestRequest(t, 1, 1, 40, 180),  // station 1 only
		incTestRequest(t, 2, 0, 200, 150), // bridge: feasible at both stations
	}
	used := []float64{0, 0}
	inc := NewIncCache()

	st := inc.Stats()
	incSlot(t, n, reqs, []int{0, 1}, used, inc, false)
	st = requireStats(t, inc, st, 0, 2, "slot 1 (two islands)")

	// The bridge arrives: one merged component, necessarily dirty.
	res := incSlot(t, n, reqs, []int{0, 1, 2}, used, inc, false)
	st = requireStats(t, inc, st, 0, 1, "slot 2 (merged by bridge)")
	requireParity(t, n, reqs, []int{0, 1, 2}, used, res, "slot 2")

	// The bridge departs: the islands reappear. Key 0 was overwritten by
	// the merged solve (dirty again); key 1 still holds slot 1's entry.
	res = incSlot(t, n, reqs, []int{0, 1}, used, inc, false)
	st = requireStats(t, inc, st, 1, 1, "slot 3 (split)")
	requireParity(t, n, reqs, []int{0, 1}, used, res, "slot 3")

	res = incSlot(t, n, reqs, []int{0, 1}, used, inc, false)
	requireStats(t, inc, st, 2, 0, "slot 4 (post-split steady state)")
	requireParity(t, n, reqs, []int{0, 1}, used, res, "slot 4")
}

// TestIncCacheCapacityChangeInvalidates pins the residual-capacity edge
// case: occupancy committed on a station between slots changes that
// station's residual-capacity signature word, invalidating its cached
// decision even though the request population is unchanged. The other
// station's component stays clean, and the new capacity level itself
// caches.
func TestIncCacheCapacityChangeInvalidates(t *testing.T) {
	n := incTestNetwork(t)
	reqs := []*mec.Request{
		incTestRequest(t, 0, 0, 40, 120), // station 0 only
		incTestRequest(t, 1, 1, 40, 180), // station 1 only
	}
	inc := NewIncCache()

	st := inc.Stats()
	incSlot(t, n, reqs, []int{0, 1}, []float64{0, 0}, inc, false)
	st = requireStats(t, inc, st, 0, 2, "slot 1 (cold cache)")

	// 500 MHz lands on station 0 (a long-running admission elsewhere):
	// its component's residual capacity changes, so the cached decision
	// must not be replayed; station 1 is untouched.
	loaded := []float64{500, 0}
	res := incSlot(t, n, reqs, []int{0, 1}, loaded, inc, false)
	st = requireStats(t, inc, st, 1, 1, "slot 2 (capacity change)")
	requireParity(t, n, reqs, []int{0, 1}, loaded, res, "slot 2")

	res = incSlot(t, n, reqs, []int{0, 1}, loaded, inc, false)
	requireStats(t, inc, st, 2, 0, "slot 3 (new level cached)")
	requireParity(t, n, reqs, []int{0, 1}, loaded, res, "slot 3")
}
