//go:build oraclemutant

package core

// fitsWithin under the oraclemutant build tag is the seeded mutation for
// the oracle CI job: the occupancy test accepts loads up to twice the
// station capacity, silently breaking the capacity discipline of
// Algorithms 1-3. The internal/oracle differential suite must catch this
// (admitted realized load exceeding C(bs_i), admitted-but-unsettled
// requests in the online engine); if it passes under this tag, the
// mutation smoke check in .github/workflows/ci.yml fails the build.
func fitsWithin(used, add, cap float64) bool {
	return used+add <= 2*cap
}
