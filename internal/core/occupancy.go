//go:build !oraclemutant

package core

// fitsWithin is the occupancy test every admission and migration commit
// goes through: a station already holding used MHz can take add more iff
// the total stays within cap. Centralized so (a) the paper's capacity
// discipline has exactly one implementation and (b) the oraclemutant
// build tag can break it deliberately — the CI mutation smoke check
// compiles with that tag and requires the internal/oracle differential
// suite to fail, proving the oracle actually guards this invariant.
func fitsWithin(used, add, cap float64) bool {
	return used+add <= cap
}
