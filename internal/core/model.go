// Package core implements the paper's primary contribution (Section IV):
// the exact ILP formulation ILP-RM, the resource-slot-indexed LP
// relaxation, the randomized-rounding approximation algorithm Appro
// (Algorithm 1, approximation ratio 1/8), and the task-migration heuristic
// Heu (Algorithm 2) for the reward maximization problem with a set of
// non-preemptive AR requests.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"mecoffload/internal/mec"
)

// Errors returned by the algorithms in this package.
var (
	ErrNoRequests = errors.New("core: no requests")
	ErrNilNetwork = errors.New("core: nil network")
	ErrLPFailed   = errors.New("core: LP relaxation did not solve to optimality")
)

// Decision records the fate of one request under an algorithm run.
type Decision struct {
	// RequestID indexes the request within the workload.
	RequestID int
	// Admitted reports whether the request was scheduled at all.
	Admitted bool
	// Evicted reports that the scheduling algorithm itself terminated the
	// request after observing that its realized demand did not fit
	// (Eq. (8): no reward when the remaining resource slots cannot hold
	// the actual data rate). Evicted requests stop consuming resources.
	// Only demand-uncertainty-aware algorithms evict; the coarse-grained
	// baselines never observe realized rates and therefore never do.
	Evicted bool
	// Served reports whether the request earned its reward: admitted, not
	// evicted, its station(s) not overloaded by realized demand, and its
	// latency requirement met. Filled by Evaluate.
	Served bool
	// Station is the primary (starting) base station, -1 when rejected.
	Station int
	// Slot is the 1-based starting resource slot, 0 when rejected.
	Slot int
	// TaskStations maps each pipeline task to the station executing it.
	// For consolidated assignments every entry equals Station; algorithm
	// Heu may migrate individual tasks (nil when rejected).
	TaskStations []int
	// Reward is the realized reward earned (0 unless Served).
	Reward float64
	// LatencyMS is the experienced latency D_j (0 unless Admitted).
	LatencyMS float64
	// WaitSlots is b_j - a_j, the scheduling wait in time slots.
	WaitSlots int
}

// Result aggregates one algorithm run over a workload.
type Result struct {
	// Algorithm names the algorithm that produced the result.
	Algorithm string
	// Decisions has one entry per request, indexed by request ID.
	Decisions []Decision
	// TotalReward is the sum of realized rewards.
	TotalReward float64
	// ExpectedLPBound, when the algorithm solved an LP relaxation, is the
	// LP optimum — an upper bound on the offline expected optimum
	// (Lemma 1).
	ExpectedLPBound float64
	// Admitted and Served count requests in each state.
	Admitted, Served int
	// Runtime is the wall-clock time of the algorithm run.
	Runtime time.Duration
}

// AvgLatencyMS returns the mean experienced latency over served requests,
// 0 when none were served.
func (r *Result) AvgLatencyMS() float64 {
	total, n := 0.0, 0
	for _, d := range r.Decisions {
		if d.Served {
			total += d.LatencyMS
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// AcceptanceRatio returns the fraction of requests served.
func (r *Result) AcceptanceRatio() float64 {
	if len(r.Decisions) == 0 {
		return 0
	}
	return float64(r.Served) / float64(len(r.Decisions))
}

// String summarizes the result for logs.
func (r *Result) String() string {
	return fmt.Sprintf("%s: reward=%.1f served=%d/%d avgLatency=%.1fms runtime=%s",
		r.Algorithm, r.TotalReward, r.Served, len(r.Decisions), r.AvgLatencyMS(), r.Runtime)
}

// demandShare returns the realized MHz demand task k of request r places
// on its station, apportioned by processing-work share.
func demandShare(n *mec.Network, r *mec.Request, k int, rate float64) float64 {
	totalWork := 0.0
	for _, t := range r.Tasks {
		totalWork += t.WorkMS
	}
	share := 1.0 / float64(len(r.Tasks))
	if totalWork > 0 {
		share = r.Tasks[k].WorkMS / totalWork
	}
	return n.RateToMHz(rate) * share
}

// Evaluate settles the rewards of a placement. Algorithms fill Admitted,
// Evicted, Station, Slot, TaskStations, WaitSlots, and LatencyMS; Evaluate
// then realizes any still-hidden data rates, computes each station's
// realized load from the non-evicted admitted requests, and marks a
// request Served — crediting its realized reward — iff
//
//   - it was admitted and not evicted,
//   - no station running one of its tasks is overloaded (a station whose
//     realized demand exceeds its capacity cannot sustain line-rate stream
//     processing, so every request on it misses its continuous-processing
//     requirement), and
//   - its experienced latency D_j is within its requirement (Eq. (1)).
//
// This is where uncertainty-obliviousness costs the baselines: they pack
// stations to 100% of capacity on expected rates and never watch the
// realized rates, so unlucky realizations overload whole stations.
func Evaluate(n *mec.Network, reqs []*mec.Request, res *Result, rng *rand.Rand) {
	load := make([]float64, n.NumStations())
	for id := range res.Decisions {
		d := &res.Decisions[id]
		d.Served = false
		d.Reward = 0
		if !d.Admitted || d.Evicted {
			continue
		}
		out := reqs[id].Realize(rng)
		for k, st := range d.TaskStations {
			load[st] += demandShare(n, reqs[id], k, out.Rate)
		}
	}
	overloaded := make([]bool, n.NumStations())
	for i := range overloaded {
		overloaded[i] = load[i] > n.Capacity(i)+capacityTol
	}
	res.TotalReward = 0
	res.Served = 0
	res.Admitted = 0
	for id := range res.Decisions {
		d := &res.Decisions[id]
		if !d.Admitted {
			continue
		}
		res.Admitted++
		if d.Evicted {
			continue
		}
		ok := d.LatencyMS <= reqs[id].DeadlineMS+1e-9
		for _, st := range d.TaskStations {
			if overloaded[st] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out, _ := reqs[id].Realized()
		d.Served = true
		d.Reward = out.Reward
		res.TotalReward += out.Reward
		res.Served++
	}
}

// capacityTol absorbs float drift in capacity comparisons (MHz).
const capacityTol = 1e-6

// Audit verifies the physical consistency of an evaluated result: station
// capacities are respected by the realized demands of served requests,
// latency requirements hold, rewards match realizations, and counters
// balance. It returns nil when feasible.
//
// Tests and the experiment harness run Audit after every algorithm; it is
// the executable form of the paper's feasibility lemmas.
func Audit(n *mec.Network, reqs []*mec.Request, res *Result) error {
	if len(res.Decisions) != len(reqs) {
		return fmt.Errorf("core: audit: %d decisions for %d requests", len(res.Decisions), len(reqs))
	}
	used := make([]float64, n.NumStations())
	totalReward := 0.0
	served, admitted := 0, 0
	for id, d := range res.Decisions {
		if d.RequestID != id {
			return fmt.Errorf("core: audit: decision %d has request ID %d", id, d.RequestID)
		}
		r := reqs[id]
		if !d.Admitted {
			if d.Served || d.Evicted || d.Reward != 0 {
				return fmt.Errorf("core: audit: rejected request %d has served=%v evicted=%v reward=%v",
					id, d.Served, d.Evicted, d.Reward)
			}
			continue
		}
		admitted++
		if d.Station < 0 || d.Station >= n.NumStations() {
			return fmt.Errorf("core: audit: request %d on invalid station %d", id, d.Station)
		}
		if len(d.TaskStations) != len(r.Tasks) {
			return fmt.Errorf("core: audit: request %d has %d task placements for %d tasks",
				id, len(d.TaskStations), len(r.Tasks))
		}
		if !d.Served {
			if d.Reward != 0 {
				return fmt.Errorf("core: audit: unserved request %d has reward %v", id, d.Reward)
			}
			continue
		}
		if d.Evicted {
			return fmt.Errorf("core: audit: request %d both served and evicted", id)
		}
		served++
		if d.LatencyMS > r.DeadlineMS+1e-6 {
			return fmt.Errorf("core: audit: served request %d latency %.2f ms exceeds deadline %.2f ms",
				id, d.LatencyMS, r.DeadlineMS)
		}
		out, err := r.MustRealized()
		if err != nil {
			return fmt.Errorf("core: audit: served request %d: %w", id, err)
		}
		if math.Abs(d.Reward-out.Reward) > 1e-9 {
			return fmt.Errorf("core: audit: request %d reward %v != realized %v", id, d.Reward, out.Reward)
		}
		totalReward += d.Reward
		for k, st := range d.TaskStations {
			if st < 0 || st >= n.NumStations() {
				return fmt.Errorf("core: audit: request %d task %d on invalid station %d", id, k, st)
			}
			used[st] += demandShare(n, r, k, out.Rate)
		}
	}
	if math.Abs(totalReward-res.TotalReward) > 1e-6*(1+math.Abs(res.TotalReward)) {
		return fmt.Errorf("core: audit: total reward %v != sum of decisions %v", res.TotalReward, totalReward)
	}
	if served != res.Served || admitted != res.Admitted {
		return fmt.Errorf("core: audit: counts served=%d/%d admitted=%d/%d",
			res.Served, served, res.Admitted, admitted)
	}
	for i, u := range used {
		if u > n.Capacity(i)+capacityTol {
			return fmt.Errorf("core: audit: station %d used %.1f MHz of %.1f by served requests", i, u, n.Capacity(i))
		}
	}
	return nil
}

// latencyOf computes D_j for a (possibly distributed) task placement:
// round-trip from the access station to the first task's station, plus
// per-task processing, plus a round-trip between consecutive stations
// whenever the pipeline migrates (intermediate matrices travel over the
// backhaul and results return to the user).
func latencyOf(n *mec.Network, r *mec.Request, taskStations []int, waitSlots int, slotLengthMS float64) float64 {
	d := float64(waitSlots) * slotLengthMS
	prev := r.AccessStation
	for k, st := range taskStations {
		d += n.RoundTripDelayMS(prev, st)
		station, err := n.Station(st)
		if err != nil {
			return math.Inf(1)
		}
		work, err := r.TaskProcDelayMS(k, station)
		if err != nil {
			return math.Inf(1)
		}
		d += work
		prev = st
	}
	return d
}

// consolidated returns a task placement with every task on one station.
func consolidated(r *mec.Request, station int) []int {
	out := make([]int, len(r.Tasks))
	for k := range out {
		out[k] = station
	}
	return out
}
