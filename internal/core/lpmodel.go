package core

import (
	"fmt"
	"math"

	"mecoffload/internal/lp"
	"mecoffload/internal/mec"
)

// slotVar identifies one y_{jil} variable of the slot-indexed relaxation.
type slotVar struct {
	req     int // global request index within the workload slice
	station int
	slot    int // 1-based starting resource slot l
	er      float64
	v       lp.Var
}

// lpModel is the built LP relaxation plus variable bookkeeping.
type lpModel struct {
	prob *lp.Problem
	vars []slotVar
	// byReq[j] lists indices into vars of request j's variables (indexed
	// by global request index; empty for inactive requests).
	byReq [][]int
}

// lpOptions tunes buildLP.
type lpOptions struct {
	// active lists the request indices to include; nil means all.
	active []int
	// capOf overrides the usable capacity of a station (residual capacity
	// in later rounding passes and in the online per-slot LPs); nil means
	// the station's full capacity.
	capOf func(station int) float64
	// slotMHz overrides the resource-slot size C_l (0 selects the
	// network default). Iterative rounding passes refine the grid on
	// residual capacities that are smaller than one default slot.
	slotMHz float64
	// shareCap, when non-nil, additionally truncates the expected
	// occupancy of constraint (10): LP-PT's min{C(bs_i)/|R_t|, rho_j,
	// l*C_l/C_unit} term (constraint (23)). The returned value is in
	// MB/s; non-positive values disable the truncation for that station.
	shareCapFor func(station int) float64
	// waitSlots is the scheduling delay already accrued (b_j - a_j) that
	// the delay-feasibility filter must account for.
	waitSlots func(req int) int
	// slotLengthMS converts waitSlots into milliseconds.
	slotLengthMS float64
	// stations restricts variable and capacity-row creation to these
	// station indices (ascending); nil means all. The per-component
	// decomposition uses it to build one block of the block-diagonal LP.
	stations []int
	// names, when non-nil, interns row/column names across slots.
	names *nameCache
	// positional names variables and assign rows by the request's
	// position within active instead of its global index. Consecutive
	// slots of a long-running daemon assign fresh global ids to every
	// arrival, so global names make structurally identical slot LPs look
	// different; positional names make them bit-identical, which is what
	// lets the incremental cache prove a component unchanged and the warm
	// cache resolve a previous basis without any misses. Station indices
	// (and cap rows) keep their global ids — stations are stable.
	positional bool
	// byReq, when non-nil, is used as the model's byReq backing instead of
	// allocating one (entries for active requests must be length-0 and
	// len(byReq) >= len(reqs)). Concurrent component builds share one
	// backing: their active sets are disjoint, so the writes never overlap.
	byReq [][]int
}

// buildLP constructs the resource-slot-indexed relaxation LP (Section
// IV-A) over the active requests:
//
//	max  sum_{j,i,l} y_jil * ER_jil
//	s.t. sum_{i,l} y_jil <= 1                                (9)
//	     sum_{j,l'<=l} y_jil' * E[min(rho_j, l*C_l/C_unit)]
//	         <= 2*l*C_l/C_unit          for each station i, slot l  (10)
//	     y_jil = 0 when serving j on i violates its deadline       (11)
//	     y_jil >= 0                                                (12)
//
// Variables are created only for delay-feasible (j, i) pairs and slots
// with positive expected reward ER_jil (Eq. (8)), which keeps the LP
// compact. The paper's constraint (10) RHS is written 2*l*C_l; the
// division by C_unit here converts it to data-rate units so both sides of
// the inequality carry the same dimension.
func buildLP(n *mec.Network, reqs []*mec.Request, opts lpOptions) (*lpModel, error) {
	if n == nil {
		return nil, ErrNilNetwork
	}
	if len(reqs) == 0 {
		return nil, ErrNoRequests
	}
	if opts.slotLengthMS == 0 {
		opts.slotLengthMS = mec.DefaultSlotLengthMS
	}
	active := opts.active
	if active == nil {
		active = make([]int, len(reqs))
		for j := range active {
			active[j] = j
		}
	}
	capOf := opts.capOf
	if capOf == nil {
		capOf = n.Capacity
	}
	slotMHz := opts.slotMHz
	if slotMHz <= 0 {
		slotMHz = n.SlotMHz()
	}
	stations := opts.stations
	if stations == nil {
		stations = make([]int, n.NumStations())
		for i := range stations {
			stations[i] = i
		}
	}

	prob := lp.NewProblem(lp.Maximize)
	byReq := opts.byReq
	if byReq == nil {
		byReq = make([][]int, len(reqs))
	}
	m := &lpModel{prob: prob, byReq: byReq}

	for k, j := range active {
		r := reqs[j]
		nameIdx := j
		if opts.positional {
			nameIdx = k
		}
		wait := 0
		if opts.waitSlots != nil {
			wait = opts.waitSlots(j)
		}
		for _, i := range stations {
			// Constraint (11): drop stations that cannot meet the
			// deadline even with the current waiting time.
			if !r.DelayFeasible(n, i, wait, opts.slotLengthMS) {
				continue
			}
			capI := capOf(i)
			L := int(capI / slotMHz)
			for l := 1; l <= L; l++ {
				// Eq. (8): reward mass of rates that fit above slot l.
				maxRate := (capI - float64(l)*slotMHz) / n.CUnit()
				er := r.Dist.RewardMassBelow(maxRate)
				if er <= 0 {
					continue
				}
				v := prob.AddVariable(opts.names.yName(nameIdx, i, l), er)
				idx := len(m.vars)
				m.vars = append(m.vars, slotVar{req: j, station: i, slot: l, er: er, v: v})
				m.byReq[j] = append(m.byReq[j], idx)
			}
		}
	}
	if prob.NumVars() == 0 {
		// No request can be feasibly served anywhere; the caller treats
		// this as an all-reject solution rather than an error.
		return m, nil
	}

	// Constraint (9): each request starts in at most one slot.
	for k, j := range active {
		if len(m.byReq[j]) == 0 {
			continue
		}
		nameIdx := j
		if opts.positional {
			nameIdx = k
		}
		terms := make([]lp.Term, 0, len(m.byReq[j]))
		for _, idx := range m.byReq[j] {
			terms = append(terms, lp.Term{Var: m.vars[idx].v, Coef: 1})
		}
		if _, err := prob.AddConstraint(opts.names.assignName(nameIdx), lp.LE, 1, terms...); err != nil {
			return nil, err
		}
	}

	// Constraint (10) per (station, slot): truncated expected occupancy of
	// all variables starting at or below slot l is at most 2*l*C_l/C_unit.
	for _, i := range stations {
		L := int(capOf(i) / slotMHz)
		for l := 1; l <= L; l++ {
			slotCap := float64(l) * slotMHz / n.CUnit() // l*C_l/C_unit in MB/s
			var terms []lp.Term
			for idx := range m.vars {
				sv := &m.vars[idx]
				if sv.station != i || sv.slot > l {
					continue
				}
				trunc := slotCap
				if opts.shareCapFor != nil {
					if sc := opts.shareCapFor(i); sc > 0 {
						trunc = math.Min(trunc, sc)
					}
				}
				coef := reqs[sv.req].Dist.ExpectedTruncatedRate(trunc)
				if coef <= 0 {
					continue
				}
				terms = append(terms, lp.Term{Var: sv.v, Coef: coef})
			}
			if len(terms) == 0 {
				continue
			}
			if _, err := prob.AddConstraint(opts.names.capName(i, l), lp.LE, 2*slotCap, terms...); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// solve runs the simplex and returns the fractional y values aligned with
// m.vars, plus the LP optimum.
func (m *lpModel) solve() ([]float64, float64, error) {
	y, opt, _, err := m.solveWarm(nil)
	return y, opt, err
}

// solveWarm is solve seeded from a previous optimal basis (nil = cold).
// It additionally returns this solve's optimal basis so the caller can
// seed the next structurally similar LP: the next rounding pass, the next
// time slot's LP-PT, or the next repetition of the same experiment cell.
func (m *lpModel) solveWarm(warm *lp.Basis) ([]float64, float64, *lp.Basis, error) {
	if m.prob.NumVars() == 0 {
		return nil, 0, nil, nil
	}
	sol, err := m.prob.SolveWithOptions(lp.SolveOptions{WarmStart: warm})
	if err != nil {
		return nil, 0, nil, err
	}
	if sol.Status != lp.StatusOptimal {
		return nil, 0, nil, fmt.Errorf("%w: %v", ErrLPFailed, sol.Status)
	}
	y := make([]float64, len(m.vars))
	for idx := range m.vars {
		y[idx] = sol.Value(m.vars[idx].v)
	}
	return y, sol.Objective, sol.Basis, nil
}
