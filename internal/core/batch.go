package core

import (
	"math/rand"

	"mecoffload/internal/mec"
)

// BatchOptions parameterizes one per-time-slot scheduling step of the
// dynamic reward maximization problem (Section V): algorithm Heu with the
// LP replaced by LP-PT, run over the pending requests R_t against the
// residual capacities left by currently-running requests.
type BatchOptions struct {
	// Active lists the request indices of R_t to schedule this slot.
	Active []int
	// Used is the realized MHz currently committed per station; admissions
	// update it in place so the caller's ledger stays authoritative.
	Used []float64
	// WaitSlots returns b_j - a_j for a request if it were scheduled this
	// slot; nil means zero waiting.
	WaitSlots func(req int) int
	// ShareCapMBs returns LP-PT's per-station truncation C(bs_i)/|R_t|
	// converted to MB/s (constraint (23)); nil disables the truncation,
	// degenerating LP-PT to the offline LP.
	ShareCapMBs func(station int) float64
	// SlotLengthMS converts waiting slots to milliseconds (default
	// mec.DefaultSlotLengthMS).
	SlotLengthMS float64
	// RoundingDenominator mirrors ApproOptions (default 4).
	RoundingDenominator float64
	// Passes mirrors ApproOptions; the per-slot default is 4 — the
	// bandit threshold already throttles R_t, so the batch tries to admit
	// most of it (the next time slot retries whatever remains pending).
	Passes int
	// Distribute enables Heu's task-distribution hooks; without it the
	// batch runs Appro's consolidated admission.
	Distribute bool
	// Warm, when non-nil, seeds each rounding pass's LP-PT from the
	// optimal basis of the corresponding pass of the previous slot's
	// batch (consecutive slots differ only by arrivals, departures, and
	// residual capacity, so the old basis is near-optimal) and stores
	// this slot's bases back. Bases are filed per (pass, component shard),
	// so each worker of the decomposed solve warm-starts independently.
	Warm *WarmCache
	// Workers bounds the goroutines solving independent components of the
	// block-diagonal LP-PT concurrently (0 or 1 = serial). Decisions are
	// bit-identical for every value.
	Workers int
	// Inc, when non-nil, enables the incremental re-solve: connected
	// components of the candidate graph whose exact LP input signature is
	// unchanged since the cached solve are clean and reuse the cached
	// canonical decision; only dirty components touch the LP. Decisions
	// are identical to a full re-solve of every component
	// (oracle.DiffIncrementalFull pins the contract).
	Inc *IncCache
	// LocalRatio enables the LP-free local-ratio fast path on dirty
	// components: when its certificate proves the component uncontended
	// (unique argmax per request, one-hot point feasible), the schedule is
	// emitted combinatorially; otherwise the warm-started LP-PT runs.
	// Decisions are identical either way (oracle.DiffLocalRatioLP).
	LocalRatio bool
	// StableLP forces the renaming-invariant solve mode (positional LP
	// variable names, exact-shard warm seeds) without reusing any cached
	// decision. Inc and LocalRatio imply it; on its own it is the
	// full-resolve-every-slot baseline the oracle differentials compare
	// the incremental and fast-path runs against. The default (all three
	// off) keeps the historical naming and nearest-shard warm fallback.
	StableLP bool
}

// ScheduleBatch admits requests from opts.Active into the network using
// the rounding machinery of algorithms Appro/Heu, writing placements into
// res.Decisions and the occupancy ledger opts.Used. Rewards are NOT
// settled here — the online engine evaluates slot by slot. It returns the
// number of newly admitted (possibly evicted-on-realization) requests.
func ScheduleBatch(n *mec.Network, reqs []*mec.Request, res *Result, rng *rand.Rand, opts BatchOptions) (int, error) {
	if n == nil {
		return 0, ErrNilNetwork
	}
	if len(reqs) == 0 {
		return 0, ErrNoRequests
	}
	if len(opts.Active) == 0 {
		return 0, nil
	}
	if opts.SlotLengthMS == 0 {
		opts.SlotLengthMS = mec.DefaultSlotLengthMS
	}
	if opts.RoundingDenominator == 0 {
		opts.RoundingDenominator = 4
	}
	maxPasses := opts.Passes
	if maxPasses <= 0 {
		maxPasses = 4
	}

	used := opts.Used
	sc := getSlotScratch()
	defer putSlotScratch(sc)
	var hooks admissionHooks
	if opts.Distribute {
		inBatch := growBoolsClear(&sc.inBatch, len(reqs))
		for _, j := range opts.Active {
			inBatch[j] = true
		}
		hooks = admissionHooks{
			migrate:  newTaskMigrator(n, reqs, res, used, opts.SlotLengthMS, func(j int) bool { return inBatch[j] }),
			overflow: newOverflowSplitter(n, reqs, res, used, opts.SlotLengthMS),
		}
	}

	sc.undecided = append(sc.undecided[:0], opts.Active...)
	undecided := sc.undecided
	totalAdmitted := 0
	slotMHz := n.SlotMHz()
	for pass := 0; pass < maxPasses && len(undecided) > 0; pass++ {
		if pass > 0 {
			if half := slotMHz / 2; half >= n.SlotMHz()/8 {
				slotMHz = half
			}
		}
		capOf := func(i int) float64 { return n.Capacity(i) - used[i] }
		err := solveDecomposed(n, reqs, lpOptions{
			active:       undecided,
			capOf:        capOf,
			slotMHz:      slotMHz,
			shareCapFor:  opts.ShareCapMBs,
			waitSlots:    opts.WaitSlots,
			slotLengthMS: opts.SlotLengthMS,
			names:        opts.Warm.nameTable(),
		}, solveCfg{
			warm:    opts.Warm,
			pass:    pass,
			workers: opts.Workers,
			inc:     opts.Inc,
			fast:    opts.LocalRatio,
			stable:  opts.StableLP,
		}, sc, &sc.merged)
		if err != nil {
			return totalAdmitted, err
		}
		if len(sc.merged.y) == 0 {
			break
		}
		sc.pre = roundAssignments(sc.merged.vars, sc.merged.byReq, sc.merged.y, reqs, rng, opts.RoundingDenominator, sc.pre[:0])
		admitted := admitSlotBySlot(n, reqs, sc.pre, rng, opts.SlotLengthMS, slotMHz, res, hooks, used, opts.WaitSlots, sc)
		totalAdmitted += admitted
		if admitted == 0 {
			break
		}
		next := undecided[:0]
		for _, j := range undecided {
			if !res.Decisions[j].Admitted {
				next = append(next, j)
			}
		}
		undecided = next
	}
	if opts.Distribute && len(undecided) > 0 {
		// Heu's final adjustment: distribute what consolidated rounding
		// could not place over the fragmented residual capacity.
		before := countAdmitted(res, undecided)
		distributionPass(n, reqs, undecided, res, used, rng, opts.SlotLengthMS, opts.WaitSlots)
		totalAdmitted += countAdmitted(res, undecided) - before
	}
	return totalAdmitted, nil
}

// countAdmitted counts admitted decisions among the given request indices.
func countAdmitted(res *Result, ids []int) int {
	c := 0
	for _, j := range ids {
		if res.Decisions[j].Admitted {
			c++
		}
	}
	return c
}
