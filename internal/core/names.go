package core

import (
	"fmt"
	"sync"
)

// nameCache interns the LP row and column names ("y[j,i,l]", "assign[j]",
// "cap[i,l]") that buildLP would otherwise fmt.Sprintf afresh every slot.
// Consecutive slots rebuild near-identical problems, so after the first
// few slots every name is a cache hit and the per-slot build allocates no
// name strings at all. The zero value is ready to use; a nil *nameCache
// falls back to formatting. Safe for concurrent use by the component
// worker pool (reads vastly outnumber writes).
type nameCache struct {
	mu sync.RWMutex
	y  map[[3]int32]string
	as map[int32]string
	cp map[[2]int32]string
}

// fits reports whether the indices can be packed into the cache's int32
// keys; out-of-range indices (never seen in practice) format directly.
func fits(vals ...int) bool {
	for _, v := range vals {
		if v < 0 || v > 1<<30 {
			return false
		}
	}
	return true
}

func (c *nameCache) yName(j, i, l int) string {
	if c == nil || !fits(j, i, l) {
		return fmt.Sprintf("y[%d,%d,%d]", j, i, l)
	}
	k := [3]int32{int32(j), int32(i), int32(l)}
	c.mu.RLock()
	s, ok := c.y[k]
	c.mu.RUnlock()
	if ok {
		return s
	}
	s = fmt.Sprintf("y[%d,%d,%d]", j, i, l)
	c.mu.Lock()
	if c.y == nil {
		c.y = make(map[[3]int32]string)
	}
	c.y[k] = s
	c.mu.Unlock()
	return s
}

func (c *nameCache) assignName(j int) string {
	if c == nil || !fits(j) {
		return fmt.Sprintf("assign[%d]", j)
	}
	k := int32(j)
	c.mu.RLock()
	s, ok := c.as[k]
	c.mu.RUnlock()
	if ok {
		return s
	}
	s = fmt.Sprintf("assign[%d]", j)
	c.mu.Lock()
	if c.as == nil {
		c.as = make(map[int32]string)
	}
	c.as[k] = s
	c.mu.Unlock()
	return s
}

func (c *nameCache) capName(i, l int) string {
	if c == nil || !fits(i, l) {
		return fmt.Sprintf("cap[%d,%d]", i, l)
	}
	k := [2]int32{int32(i), int32(l)}
	c.mu.RLock()
	s, ok := c.cp[k]
	c.mu.RUnlock()
	if ok {
		return s
	}
	s = fmt.Sprintf("cap[%d,%d]", i, l)
	c.mu.Lock()
	if c.cp == nil {
		c.cp = make(map[[2]int32]string)
	}
	c.cp[k] = s
	c.mu.Unlock()
	return s
}
