package core

import (
	"math"
	"sync/atomic"

	"mecoffload/internal/mec"
)

// IncStats counts what the incremental re-solve and the local-ratio fast
// path did since the cache was created. CleanHits + DirtySolves is the
// total number of component solves requested; FastPath + FastFallback is
// the number of dirty components the local-ratio certification examined.
type IncStats struct {
	// CleanHits is the number of components whose signature matched the
	// cached one, so the cached per-component decision was reused without
	// touching the LP.
	CleanHits uint64
	// DirtySolves is the number of components that had to be re-solved
	// (signature miss or first sighting).
	DirtySolves uint64
	// FastPath is the number of dirty components the local-ratio
	// certification admitted without building an LP.
	FastPath uint64
	// FastFallback is the number of dirty components where the
	// certification failed and the warm-started LP-PT ran instead.
	FastFallback uint64
}

// incEntry is one cached per-component decision: the exact LP input
// signature it is valid for, the solved variables in *position space*
// (slotVar.req is the request's position within the component's request
// list, not a global index), the canonical fractional solution, and its
// objective. Position space makes the entry independent of the global
// request ids of the slot that produced it: a later slot whose component
// has the same shape reuses it even though every request id changed.
type incEntry struct {
	sig  []uint64
	vars []slotVar
	y    []float64
	obj  float64
}

// IncCache is the dirty-component tracker of the incremental scheduler.
// It files one entry per (rounding pass, component shard) — the same keys
// the WarmCache uses — holding the component's full LP input signature
// and its canonical solution. A component is *clean* when its signature
// this slot is bit-identical to the cached one: every quantity the LP is
// built from (slot grid, residual capacities, share caps, candidate
// stations, demand distributions) is unchanged, so the LP itself is
// bit-identical and the cached solution IS the solution the full re-solve
// would compute. Everything else — an arrival, a departure, a realized
// rate that moved the residual capacity, a C^th change that reshaped the
// admissible set — flips some word of the signature and marks the
// component dirty.
//
// The entry map is only touched by the scheduling goroutine (the
// clean-check before the solver workers launch and the put after the
// deterministic merge), so it needs no lock; the counters are atomic
// because the local-ratio counters are bumped inside the worker pool.
type IncCache struct {
	cleanHits    atomic.Uint64
	dirtySolves  atomic.Uint64
	fastPath     atomic.Uint64
	fastFallback atomic.Uint64

	entries map[warmKey]*incEntry
}

// NewIncCache returns an empty dirty-component tracker.
func NewIncCache() *IncCache {
	return &IncCache{entries: make(map[warmKey]*incEntry)}
}

// NewIncCounters returns a counters-only tracker: the local-ratio
// fast-path statistics are recorded but no decision is ever cached or
// reused. A LocalRatio-only run uses it so FastPath/FastFallback stay
// observable (the oracle's all-certified assertion depends on them)
// without pulling in the incremental machinery.
func NewIncCounters() *IncCache {
	return &IncCache{}
}

// Stats returns the cache's clean/dirty/fast-path counters. Nil-safe.
func (c *IncCache) Stats() IncStats {
	if c == nil {
		return IncStats{}
	}
	return IncStats{
		CleanHits:    c.cleanHits.Load(),
		DirtySolves:  c.dirtySolves.Load(),
		FastPath:     c.fastPath.Load(),
		FastFallback: c.fastFallback.Load(),
	}
}

// addFastPath / addFastFallback bump the local-ratio counters from the
// solver workers. Nil-safe: a run with the fast path on but the
// incremental cache off simply goes uncounted.
func (c *IncCache) addFastPath() {
	if c != nil {
		c.fastPath.Add(1)
	}
}

func (c *IncCache) addFastFallback() {
	if c != nil {
		c.fastFallback.Add(1)
	}
}

// get returns the entry for a (pass, shard) pair, nil when absent.
func (c *IncCache) get(pass, shard int) *incEntry {
	return c.entries[warmKey{pass: pass, shard: shard}]
}

// put stores a freshly solved component: sig is copied, vars are
// converted from global request indices to positions within compReqs
// (which lists the component's requests in the order the LP was built
// over), and y/obj are the canonical solution — the one a warm re-solve
// from this solve's own optimal basis produces, i.e. exactly what a full
// re-solve of the unchanged component computes next slot.
func (c *IncCache) put(pass, shard int, sig []uint64, vars []slotVar, compReqs []int, y []float64, obj float64) {
	k := warmKey{pass: pass, shard: shard}
	e := c.entries[k]
	if e == nil {
		e = &incEntry{}
		c.entries[k] = e
	}
	e.sig = append(e.sig[:0], sig...)
	e.vars = e.vars[:0]
	pos := 0
	for _, sv := range vars {
		// vars are grouped by request in compReqs order, so the position
		// cursor only ever advances.
		for compReqs[pos] != sv.req {
			pos++
		}
		e.vars = append(e.vars, slotVar{req: pos, station: sv.station, slot: sv.slot, er: sv.er})
	}
	e.y = append(e.y[:0], y...)
	e.obj = obj
}

// appendCompSig appends one component's exact LP input vector to buf:
// the slot grid, then per station its index, residual capacity, and
// share-cap truncation, then per request its candidate station list and
// its full (rate, prob, reward) distribution, all as raw float bits.
// Two slots with equal signatures build bit-identical positional LPs:
// every coefficient of the objective (Eq. (8)'s ER via RewardMassBelow),
// of constraint (10) (ExpectedTruncatedRate of min(l*C_l/C_unit,
// shareCap)), and every row/column of the problem is a pure function of
// these words plus network constants (C_unit, topology) that cannot
// change within a cache's lifetime. Waiting times and deadlines enter
// the LP only through delay feasibility, which the candidate lists
// capture. No hashing: signatures are compared word for word, so a clean
// verdict can never be a collision.
func appendCompSig(buf []uint64, reqs []*mec.Request, opts lpOptions, comp component, sc *slotScratch) []uint64 {
	buf = append(buf,
		math.Float64bits(opts.slotMHz),
		math.Float64bits(opts.slotLengthMS),
		uint64(len(comp.stations)))
	for _, i := range comp.stations {
		shareBits := uint64(0)
		if opts.shareCapFor != nil {
			shareBits = math.Float64bits(opts.shareCapFor(i))
		}
		buf = append(buf, uint64(i), math.Float64bits(opts.capOf(i)), shareBits)
	}
	buf = append(buf, uint64(len(comp.reqs)))
	for _, j := range comp.reqs {
		k := sc.posOf[j]
		cands := sc.cands[sc.candOff[k]:sc.candOff[k+1]]
		buf = append(buf, uint64(len(cands)))
		for _, i := range cands {
			buf = append(buf, uint64(i))
		}
		d := reqs[j].Dist
		nOut := d.Len()
		buf = append(buf, uint64(nOut))
		for t := 0; t < nOut; t++ {
			o := d.OutcomeAt(t)
			buf = append(buf,
				math.Float64bits(o.Rate),
				math.Float64bits(o.Prob),
				math.Float64bits(o.Reward))
		}
	}
	return buf
}
