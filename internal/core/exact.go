package core

import (
	"fmt"
	"math/rand"
	"time"

	"mecoffload/internal/lp"
	"mecoffload/internal/mec"
)

// ExactOptions tunes the exact ILP solve.
type ExactOptions struct {
	// SlotLengthMS converts waiting slots into milliseconds for the delay
	// filter (default mec.DefaultSlotLengthMS).
	SlotLengthMS float64
	// MaxNodes caps branch-and-bound nodes (0 selects 50000). The exact
	// algorithm is intended for small instances only (Section I: "an
	// exact solution for the problem if the problem size is small").
	MaxNodes int
	// RelativeGap is the branch-and-bound optimality gap (0 selects
	// 1e-4): assignment ILPs with near-tied rewards otherwise spend
	// exponential time separating equivalent optima.
	RelativeGap float64
}

// Exact solves ILP-RM (Section IV-A) by branch and bound over the
// assignment variables x_ji:
//
//	max  sum_{j,i} x_ji * E[RD_j]
//	s.t. sum_i x_ji <= 1                      (3)
//	     sum_j x_ji * E(rho_j) * C_unit <= C(bs_i)   (4)
//	     D_j <= D̂_j  (variables filtered)    (5)
//	     x_ji in {0, 1}                       (6)
//
// After the plan is fixed, data rates realize (using rng) and rewards are
// collected for requests whose realized demand fits the remaining station
// capacity, making the Result directly comparable with Appro and Heu.
func Exact(n *mec.Network, reqs []*mec.Request, rng *rand.Rand, opts ExactOptions) (*Result, error) {
	if n == nil {
		return nil, ErrNilNetwork
	}
	if len(reqs) == 0 {
		return nil, ErrNoRequests
	}
	if opts.SlotLengthMS == 0 {
		opts.SlotLengthMS = mec.DefaultSlotLengthMS
	}
	start := time.Now()

	prob := lp.NewProblem(lp.Maximize)
	type xVar struct {
		req, station int
		v            lp.Var
	}
	var vars []xVar
	byReq := make([][]int, len(reqs))
	byStation := make([][]int, n.NumStations())
	for j, r := range reqs {
		for i := 0; i < n.NumStations(); i++ {
			if !r.DelayFeasible(n, i, 0, opts.SlotLengthMS) {
				continue
			}
			v := prob.AddIntegerVariable(fmt.Sprintf("x[%d,%d]", j, i), r.ExpectedReward())
			idx := len(vars)
			vars = append(vars, xVar{req: j, station: i, v: v})
			byReq[j] = append(byReq[j], idx)
			byStation[i] = append(byStation[i], idx)
		}
	}

	res := &Result{Algorithm: "Exact", Decisions: make([]Decision, len(reqs))}
	for j := range res.Decisions {
		res.Decisions[j] = Decision{RequestID: j, Station: -1}
	}
	if len(vars) == 0 {
		res.Runtime = time.Since(start)
		return res, nil
	}

	for j := range reqs {
		if len(byReq[j]) == 0 {
			continue
		}
		terms := make([]lp.Term, 0, len(byReq[j]))
		for _, idx := range byReq[j] {
			terms = append(terms, lp.Term{Var: vars[idx].v, Coef: 1})
		}
		if _, err := prob.AddConstraint(fmt.Sprintf("assign[%d]", j), lp.LE, 1, terms...); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n.NumStations(); i++ {
		if len(byStation[i]) == 0 {
			continue
		}
		terms := make([]lp.Term, 0, len(byStation[i]))
		for _, idx := range byStation[i] {
			r := reqs[vars[idx].req]
			terms = append(terms, lp.Term{Var: vars[idx].v, Coef: n.RateToMHz(r.ExpectedRate())})
		}
		if _, err := prob.AddConstraint(fmt.Sprintf("cap[%d]", i), lp.LE, n.Capacity(i), terms...); err != nil {
			return nil, err
		}
	}

	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 50000
	}
	gap := opts.RelativeGap
	if gap == 0 {
		gap = 1e-4
	}
	sol, err := prob.SolveIntegerWithOptions(lp.IntegerOptions{MaxNodes: maxNodes, RelativeGap: gap})
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.StatusOptimal && sol.Status != lp.StatusIterLimit {
		return nil, fmt.Errorf("%w: ILP status %v", ErrLPFailed, sol.Status)
	}
	if sol.Status == lp.StatusIterLimit && sol.X == nil {
		return nil, fmt.Errorf("%w: node budget exhausted without incumbent", ErrLPFailed)
	}
	res.ExpectedLPBound = sol.Objective

	// Realize the plan: rates reveal after scheduling; like Appro, the
	// exact algorithm monitors realized demand and evicts requests that
	// no longer fit before they can overload a station.
	used := make([]float64, n.NumStations())
	for _, xv := range vars {
		if sol.Value(xv.v) < 0.5 {
			continue
		}
		r := reqs[xv.req]
		d := &res.Decisions[xv.req]
		d.Admitted = true
		d.Station = xv.station
		d.Slot = 1
		d.TaskStations = consolidated(r, xv.station)
		d.LatencyMS = latencyOf(n, r, d.TaskStations, 0, opts.SlotLengthMS)
		out := r.Realize(rng)
		demand := n.RateToMHz(out.Rate)
		if fitsWithin(used[xv.station], demand, n.Capacity(xv.station)) {
			used[xv.station] += demand
		} else {
			d.Evicted = true
		}
	}
	Evaluate(n, reqs, res, rng)
	res.Runtime = time.Since(start)
	return res, nil
}
