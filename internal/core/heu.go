package core

import (
	"math/rand"
	"sort"

	"mecoffload/internal/mec"
)

// HeuOptions tunes Algorithm 2.
type HeuOptions struct {
	// SlotLengthMS converts waiting slots into milliseconds (default
	// mec.DefaultSlotLengthMS).
	SlotLengthMS float64
	// RoundingDenominator mirrors ApproOptions (default 4).
	RoundingDenominator float64
	// Passes mirrors ApproOptions: 1 = single literal pass, 0 = iterate
	// until no progress.
	Passes int
	// Warm mirrors ApproOptions.Warm: per-pass LP warm-start bases
	// carried across structurally similar runs.
	Warm *WarmCache
	// Workers mirrors ApproOptions.Workers: the bound on concurrent
	// component solves of the block-diagonal LP (0 or 1 = serial).
	Workers int
}

// Heu is Algorithm 2: the efficient heuristic for the reward maximization
// problem without the consolidation assumption. It pre-assigns requests
// exactly like Appro, but when the occupancy test at slot l of station
// bs_i fails, it migrates one task of the already-admitted request with
// the maximum realized data rate on bs_i to the closest base station that
// can host it without violating the request's latency requirement or the
// destination's capacity, then re-tests admission (Algorithm 2 steps
// 11-14).
func Heu(n *mec.Network, reqs []*mec.Request, rng *rand.Rand, opts HeuOptions) (*Result, error) {
	a := ApproOptions{
		SlotLengthMS:        opts.SlotLengthMS,
		RoundingDenominator: opts.RoundingDenominator,
		Passes:              opts.Passes,
		Warm:                opts.Warm,
		Workers:             opts.Workers,
	}
	a.fill()
	mk := func(res *Result, used []float64) admissionHooks {
		return admissionHooks{
			migrate:  newTaskMigrator(n, reqs, res, used, a.SlotLengthMS, nil),
			overflow: newOverflowSplitter(n, reqs, res, used, a.SlotLengthMS),
			finish: func() {
				distributionPass(n, reqs, nil, res, used, rng, a.SlotLengthMS, nil)
			},
		}
	}
	return runRounding(n, reqs, rng, a, "Heu", mk)
}

// distributionPass admits still-rejected requests by distributing their
// tasks over the fragmented residual capacity the consolidated rounding
// passes cannot reach (no single station fits a whole request any more,
// but several can share one). Requests are tried in decreasing expected
// reward; realized demands that overflow are evicted just like in the
// main sweep. active limits the candidates (nil means every request);
// waitOf supplies per-request waiting slots in the online setting.
func distributionPass(n *mec.Network, reqs []*mec.Request, active []int, res *Result, used []float64, rng *rand.Rand, slotLenMS float64, waitOf func(int) int) {
	if active == nil {
		active = make([]int, len(reqs))
		for j := range active {
			active[j] = j
		}
	}
	order := make([]int, 0, len(active))
	for _, j := range active {
		if !res.Decisions[j].Admitted {
			order = append(order, j)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := reqs[order[a]].ExpectedReward(), reqs[order[b]].ExpectedReward()
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})

	for _, j := range order {
		r := reqs[j]
		wait := 0
		if waitOf != nil {
			wait = waitOf(j)
		}
		k := len(r.Tasks)
		totalWork := 0.0
		for _, t := range r.Tasks {
			totalWork += t.WorkMS
		}
		eDemand := n.RateToMHz(r.ExpectedRate())
		planned := make([]int, k)
		delta := make(map[int]float64)
		feasible := true
		for ti := 0; ti < k; ti++ {
			share := 1.0 / float64(k)
			if totalWork > 0 {
				share = r.Tasks[ti].WorkMS / totalWork
			}
			need := eDemand * share
			// Nearest-first keeps backhaul hops (and thus latency) low.
			planned[ti] = -1
			for _, st := range append([]int{r.AccessStation}, n.NeighborsByDistance(r.AccessStation)...) {
				if !fitsWithin(used[st]+delta[st], need, n.Capacity(st)) {
					continue
				}
				planned[ti] = st
				delta[st] += need
				break
			}
			if planned[ti] == -1 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		if latencyOf(n, r, planned, wait, slotLenMS) > r.DeadlineMS {
			continue
		}

		d := &res.Decisions[j]
		d.Admitted = true
		d.Station = planned[0]
		d.Slot = 1
		d.WaitSlots = wait
		d.TaskStations = planned
		d.LatencyMS = latencyOf(n, r, planned, wait, slotLenMS)

		// Reveal the rate and commit realized shares, or evict.
		out := r.Realize(rng)
		realized := make(map[int]float64, len(delta))
		fits := true
		for ti, st := range planned {
			realized[st] += demandShare(n, r, ti, out.Rate)
		}
		for st, add := range realized {
			if !fitsWithin(used[st], add, n.Capacity(st)) {
				fits = false
				break
			}
		}
		if !fits {
			d.Evicted = true
			continue
		}
		for st, add := range realized {
			used[st] += add
		}
	}
}

// newOverflowSplitter returns the distribution hook that realizes the
// paper's removal of the consolidation assumption: when a request's
// realized demand does not fit its pre-assigned station, its tasks are
// distributed — largest first — to the nearest stations with spare
// capacity until the remainder fits, instead of evicting the request.
func newOverflowSplitter(n *mec.Network, reqs []*mec.Request, res *Result, used []float64, slotLenMS float64) overflowHandler {
	return func(req, station int) bool {
		r := reqs[req]
		d := &res.Decisions[req]
		out, ok := r.Realized()
		if !ok {
			return false
		}
		demand := n.RateToMHz(out.Rate)

		// Shares per task, and tasks in decreasing work order.
		shares := make([]float64, len(r.Tasks))
		totalWork := 0.0
		for _, t := range r.Tasks {
			totalWork += t.WorkMS
		}
		order := make([]int, len(r.Tasks))
		for k := range order {
			order[k] = k
			share := 1.0 / float64(len(r.Tasks))
			if totalWork > 0 {
				share = r.Tasks[k].WorkMS / totalWork
			}
			shares[k] = demand * share
		}
		for a := 0; a < len(order); a++ {
			for b := a + 1; b < len(order); b++ {
				if shares[order[b]] > shares[order[a]] {
					order[a], order[b] = order[b], order[a]
				}
			}
		}

		placement := append([]int(nil), d.TaskStations...)
		delta := make(map[int]float64) // tentative extra load per station
		remaining := demand
		neighbors := n.NeighborsByDistance(station)
		for _, k := range order {
			if fitsWithin(used[station], remaining, n.Capacity(station)) {
				break
			}
			for _, dest := range neighbors {
				if !fitsWithin(used[dest]+delta[dest], shares[k], n.Capacity(dest)) {
					continue
				}
				old := placement[k]
				placement[k] = dest
				if latencyOf(n, r, placement, d.WaitSlots, slotLenMS) > r.DeadlineMS {
					placement[k] = old
					continue
				}
				delta[dest] += shares[k]
				remaining -= shares[k]
				break
			}
		}
		if !fitsWithin(used[station], remaining, n.Capacity(station)) {
			return false // could not shed enough; caller evicts
		}
		// Commit.
		used[station] += remaining
		for dest, add := range delta {
			used[dest] += add
		}
		d.TaskStations = placement
		d.LatencyMS = latencyOf(n, r, placement, d.WaitSlots, slotLenMS)
		return true
	}
}

// newTaskMigrator returns Algorithm 2's adjustment step as a migrator
// closure over the running result and the global occupancy ledger. When
// eligible is non-nil, only requests it accepts may donate a task — the
// online per-slot batches use this to avoid disturbing streams admitted in
// earlier slots, whose resource holds are already committed.
func newTaskMigrator(n *mec.Network, reqs []*mec.Request, res *Result, used []float64, slotLenMS float64, eligible func(int) bool) migrator {
	return func(station, slot int, passUsed func(int) float64) bool {
		// Step 11: among requests already admitted and served on this
		// station, pick the one with the maximum realized data rate that
		// still executes at least one task here.
		donor := -1
		donorRate := -1.0
		for j := range res.Decisions {
			d := &res.Decisions[j]
			if !d.Admitted || d.Evicted {
				continue
			}
			if eligible != nil && !eligible(j) {
				continue
			}
			out, ok := reqs[j].Realized()
			if !ok {
				continue
			}
			onStation := false
			for _, st := range d.TaskStations {
				if st == station {
					onStation = true
					break
				}
			}
			if !onStation {
				continue
			}
			if out.Rate > donorRate {
				donor, donorRate = j, out.Rate
			}
		}
		if donor < 0 {
			return false
		}
		return migrateOneTask(n, reqs[donor], &res.Decisions[donor], station, used, slotLenMS)
	}
}

// migrateOneTask moves one task of the donor request off "station" to the
// closest feasible base station (Algorithm 2 step 13). Tasks are tried in
// decreasing demand share so one migration frees as much resource as
// possible; destinations are tried in increasing backhaul distance. It
// returns true when a migration happened.
func migrateOneTask(n *mec.Network, r *mec.Request, d *Decision, station int, used []float64, slotLenMS float64) bool {
	out, ok := r.Realized()
	if !ok {
		return false
	}
	demand := n.RateToMHz(out.Rate)
	totalWork := 0.0
	for _, t := range r.Tasks {
		totalWork += t.WorkMS
	}

	// This request's tasks on the congested station, in decreasing work
	// (== demand) share.
	var tasks []int
	for k, st := range d.TaskStations {
		if st == station {
			tasks = append(tasks, k)
		}
	}
	if len(tasks) == 0 {
		return false
	}
	for a := 0; a < len(tasks); a++ {
		for b := a + 1; b < len(tasks); b++ {
			if r.Tasks[tasks[b]].WorkMS > r.Tasks[tasks[a]].WorkMS {
				tasks[a], tasks[b] = tasks[b], tasks[a]
			}
		}
	}

	neighbors := n.NeighborsByDistance(station)
	for _, k := range tasks {
		share := 1.0 / float64(len(r.Tasks))
		if totalWork > 0 {
			share = r.Tasks[k].WorkMS / totalWork
		}
		moved := demand * share
		for _, dest := range neighbors {
			if !fitsWithin(used[dest], moved, n.Capacity(dest)) {
				continue
			}
			// Tentatively migrate and re-check the latency requirement.
			old := d.TaskStations[k]
			d.TaskStations[k] = dest
			lat := latencyOf(n, r, d.TaskStations, d.WaitSlots, slotLenMS)
			if lat > r.DeadlineMS {
				d.TaskStations[k] = old
				continue
			}
			d.LatencyMS = lat
			used[station] -= moved
			used[dest] += moved
			return true
		}
	}
	return false
}
