package core

import (
	"sync"
	"sync/atomic"

	"mecoffload/internal/lp"
	"mecoffload/internal/mec"
)

// component is one connected component of the request-station candidate
// bipartite graph: a variable y_{jil} can only couple a request to a
// station it is delay-feasible on with positive expected reward, so the
// slot LP is block-diagonal across components and each block solves
// independently. key is the smallest station index of the component — the
// stable shard label the warm cache files the component's basis under.
type component struct {
	key      int
	stations []int // ascending
	reqs     []int // active request indices, in the caller's active order
}

// hasCandidate reports whether at least one y_{j,i,l} variable would be
// created for (request j, station i): the pair is delay-feasible and slot
// l=1 has positive expected reward. ER_jil is non-increasing in l (the
// rate ceiling (cap_i - l*C_l)/C_unit shrinks as l grows), so testing
// l=1 is exact.
func hasCandidate(n *mec.Network, r *mec.Request, i, wait int, capI, slotMHz, slotLenMS float64) bool {
	if capI < slotMHz { // L = floor(capI/slotMHz) < 1: no slots at all
		return false
	}
	if !r.DelayFeasible(n, i, wait, slotLenMS) {
		return false
	}
	return r.Dist.RewardMassBelow((capI-slotMHz)/n.CUnit()) > 0
}

// splitComponents partitions the active requests and their candidate
// stations into connected components via union-find over stations.
// Requests with no feasible station appear in no component (the LP has no
// variable for them; they stay undecided). Components are returned in
// ascending order of their key, and their station and request lists
// preserve ascending-station and caller-active order respectively — the
// orderings the deterministic merge in solveDecomposed relies on.
func splitComponents(n *mec.Network, reqs []*mec.Request, opts lpOptions, sc *slotScratch) []component {
	nS := n.NumStations()
	parent := growInts(&sc.parent, nS)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]] // path halving
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra // attach to the smaller root: roots stay minimal
		}
	}

	stUsed := growBoolsClear(&sc.stUsed, nS)
	firstOf := growInts(&sc.firstOf, len(opts.active))
	capOf := opts.capOf
	if capOf == nil {
		capOf = n.Capacity
	}
	for k, j := range opts.active {
		r := reqs[j]
		wait := 0
		if opts.waitSlots != nil {
			wait = opts.waitSlots(j)
		}
		first := -1
		for i := 0; i < nS; i++ {
			if !hasCandidate(n, r, i, wait, capOf(i), opts.slotMHz, opts.slotLengthMS) {
				continue
			}
			stUsed[i] = true
			if first < 0 {
				first = i
			} else {
				union(first, i)
			}
		}
		firstOf[k] = first
	}

	// Components materialize in ascending-min-station order because the
	// station scan below runs ascending and creates each component at its
	// smallest member.
	rootComp := growInts(&sc.rootComp, nS)
	for i := range rootComp {
		rootComp[i] = -1
	}
	comps := sc.comps[:0]
	for i := 0; i < nS; i++ {
		if !stUsed[i] {
			continue
		}
		root := find(i)
		c := rootComp[root]
		if c < 0 {
			c = len(comps)
			rootComp[root] = c
			comps = append(comps, component{key: i})
		}
		comps[c].stations = append(comps[c].stations, i)
	}
	for k, j := range opts.active {
		if firstOf[k] < 0 {
			continue
		}
		c := rootComp[find(firstOf[k])]
		comps[c].reqs = append(comps[c].reqs, j)
	}
	sc.comps = comps // retain the component-struct backing for reuse
	return comps
}

// mergedModel is the deterministic concatenation of the per-component LP
// solutions, presented in the same shape the rounding step consumed from
// the monolithic lpModel: a global variable list, per-request variable
// indices, and the fractional y vector. obj is the sum of component
// objectives, which equals the monolithic LP optimum because the LP is
// block-diagonal across components.
type mergedModel struct {
	vars  []slotVar
	byReq [][]int // global request index -> indices into vars
	y     []float64
	obj   float64
}

// reset clears the merged model for a new pass, retaining capacity.
func (m *mergedModel) reset(numReqs int) {
	m.vars = m.vars[:0]
	m.y = m.y[:0]
	m.obj = 0
	for j := range m.byReq {
		m.byReq[j] = m.byReq[j][:0]
	}
	for len(m.byReq) < numReqs {
		m.byReq = append(m.byReq, nil)
	}
}

// compSolve is one component's build-and-solve outcome.
type compSolve struct {
	model *lpModel
	y     []float64
	obj   float64
	basis *lp.Basis
	err   error
}

// solveDecomposed builds and solves the slot LP component by component on
// a bounded worker pool, each component warm-started from its own shard's
// basis, and merges the results into m in ascending component-key order.
// The merged output is bit-identical for every workers value: components
// are solved independently (the LP is block-diagonal) and the merge order
// is fixed, so parallelism changes wall-clock time and nothing else.
func solveDecomposed(n *mec.Network, reqs []*mec.Request, opts lpOptions, warm *WarmCache, pass, workers int, sc *slotScratch, m *mergedModel) error {
	if opts.slotLengthMS == 0 {
		opts.slotLengthMS = mec.DefaultSlotLengthMS
	}
	if opts.slotMHz <= 0 {
		opts.slotMHz = n.SlotMHz()
	}
	if opts.active == nil {
		all := growInts(&sc.activeAll, len(reqs))
		for j := range all {
			all[j] = j
		}
		opts.active = all
	}
	m.reset(len(reqs))
	comps := splitComponents(n, reqs, opts, sc)
	if len(comps) == 0 {
		return nil
	}

	// Resolve every component's warm-start seed before the workers launch:
	// lookups allow a nearest-shard fallback, and resolving them against a
	// fixed pre-pass cache snapshot keeps the seeds — and therefore the
	// chosen optimal vertices — identical for every worker count.
	results := make([]compSolve, len(comps))
	seeds := make([]*lp.Basis, len(comps))
	for k := range comps {
		seeds[k] = warm.getNear(pass, comps[k].key)
	}
	solveOne := func(k int) {
		comp := comps[k]
		copts := opts
		copts.active = comp.reqs
		copts.stations = comp.stations
		copts.byReq = m.byReq // disjoint request sets: no write overlap
		model, err := buildLP(n, reqs, copts)
		if err != nil {
			results[k] = compSolve{err: err}
			return
		}
		y, obj, basis, err := model.solveWarm(seeds[k])
		if err != nil {
			results[k] = compSolve{model: model, err: err}
			return
		}
		warm.put(pass, comp.key, basis)
		results[k] = compSolve{model: model, y: y, obj: obj, basis: basis}
	}
	forEachParallel(len(comps), workers, solveOne)

	// Deterministic merge: components in key order, local variable indices
	// rebased onto the global concatenation.
	for k := range results {
		r := &results[k]
		if r.err != nil {
			return r.err
		}
		offset := len(m.vars)
		m.vars = append(m.vars, r.model.vars...)
		m.y = append(m.y, r.y...)
		m.obj += r.obj
		if offset == 0 {
			continue
		}
		for _, j := range comps[k].reqs {
			idxs := m.byReq[j]
			for t := range idxs {
				idxs[t] += offset
			}
		}
	}
	return nil
}

// forEachParallel runs f(0..n-1) on at most `workers` goroutines. workers
// <= 1 runs inline. The iteration set is fixed up front, so the result is
// independent of how indices are interleaved across workers.
func forEachParallel(n, workers int, f func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
