package core

import (
	"sync"
	"sync/atomic"

	"mecoffload/internal/mec"
)

// component is one connected component of the request-station candidate
// bipartite graph: a variable y_{jil} can only couple a request to a
// station it is delay-feasible on with positive expected reward, so the
// slot LP is block-diagonal across components and each block solves
// independently. key is the smallest station index of the component — the
// stable shard label the warm cache files the component's basis under.
type component struct {
	key      int
	stations []int // ascending
	reqs     []int // active request indices, in the caller's active order
}

// hasCandidate reports whether at least one y_{j,i,l} variable would be
// created for (request j, station i): the pair is delay-feasible and slot
// l=1 has positive expected reward. ER_jil is non-increasing in l (the
// rate ceiling (cap_i - l*C_l)/C_unit shrinks as l grows), so testing
// l=1 is exact.
func hasCandidate(n *mec.Network, r *mec.Request, i, wait int, capI, slotMHz, slotLenMS float64) bool {
	if capI < slotMHz { // L = floor(capI/slotMHz) < 1: no slots at all
		return false
	}
	if !r.DelayFeasible(n, i, wait, slotLenMS) {
		return false
	}
	return r.Dist.RewardMassBelow((capI-slotMHz)/n.CUnit()) > 0
}

// splitComponents partitions the active requests and their candidate
// stations into connected components via union-find over stations.
// Requests with no feasible station appear in no component (the LP has no
// variable for them; they stay undecided). Components are returned in
// ascending order of their key, and their station and request lists
// preserve ascending-station and caller-active order respectively — the
// orderings the deterministic merge in solveDecomposed relies on.
//
// When record is set, the scan additionally captures each active
// request's candidate station list (sc.cands/sc.candOff, indexed by
// active position via sc.posOf) — the incremental signatures and the
// local-ratio certification consume them, and recording during this scan
// means candidacy is never recomputed.
func splitComponents(n *mec.Network, reqs []*mec.Request, opts lpOptions, sc *slotScratch, record bool) []component {
	nS := n.NumStations()
	parent := growInts(&sc.parent, nS)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]] // path halving
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra // attach to the smaller root: roots stay minimal
		}
	}

	stUsed := growBoolsClear(&sc.stUsed, nS)
	firstOf := growInts(&sc.firstOf, len(opts.active))
	capOf := opts.capOf
	if capOf == nil {
		capOf = n.Capacity
	}
	var cands []int
	var candOff, posOf []int
	if record {
		cands = sc.cands[:0]
		candOff = growInts(&sc.candOff, len(opts.active)+1)
		posOf = growInts(&sc.posOf, len(reqs))
	}
	for k, j := range opts.active {
		r := reqs[j]
		wait := 0
		if opts.waitSlots != nil {
			wait = opts.waitSlots(j)
		}
		if record {
			candOff[k] = len(cands)
			posOf[j] = k
		}
		first := -1
		for i := 0; i < nS; i++ {
			if !hasCandidate(n, r, i, wait, capOf(i), opts.slotMHz, opts.slotLengthMS) {
				continue
			}
			if record {
				cands = append(cands, i)
			}
			stUsed[i] = true
			if first < 0 {
				first = i
			} else {
				union(first, i)
			}
		}
		firstOf[k] = first
	}
	if record {
		candOff[len(opts.active)] = len(cands)
		sc.cands = cands
	}

	// Components materialize in ascending-min-station order because the
	// station scan below runs ascending and creates each component at its
	// smallest member.
	rootComp := growInts(&sc.rootComp, nS)
	for i := range rootComp {
		rootComp[i] = -1
	}
	comps := sc.comps[:0]
	for i := 0; i < nS; i++ {
		if !stUsed[i] {
			continue
		}
		root := find(i)
		c := rootComp[root]
		if c < 0 {
			c = len(comps)
			rootComp[root] = c
			comps = append(comps, component{key: i})
		}
		comps[c].stations = append(comps[c].stations, i)
	}
	for k, j := range opts.active {
		if firstOf[k] < 0 {
			continue
		}
		c := rootComp[find(firstOf[k])]
		comps[c].reqs = append(comps[c].reqs, j)
	}
	sc.comps = comps // retain the component-struct backing for reuse
	return comps
}

// mergedModel is the deterministic concatenation of the per-component LP
// solutions, presented in the same shape the rounding step consumed from
// the monolithic lpModel: a global variable list, per-request variable
// indices, and the fractional y vector. obj is the sum of component
// objectives, which equals the monolithic LP optimum because the LP is
// block-diagonal across components.
type mergedModel struct {
	vars  []slotVar
	byReq [][]int // global request index -> indices into vars
	y     []float64
	obj   float64
}

// reset clears the merged model for a new pass, retaining capacity.
func (m *mergedModel) reset(numReqs int) {
	m.vars = m.vars[:0]
	m.y = m.y[:0]
	m.obj = 0
	for j := range m.byReq {
		m.byReq[j] = m.byReq[j][:0]
	}
	for len(m.byReq) < numReqs {
		m.byReq = append(m.byReq, nil)
	}
}

// compSolve is one component's build-and-solve outcome. Exactly one of
// three shapes: a clean-cache hit (cached != nil, nothing was solved), a
// fresh solve (vars/y/obj from the LP or the local-ratio fast path), or
// an error.
type compSolve struct {
	vars []slotVar // global request indices, component-local var indices
	y    []float64
	obj  float64
	// cached, when non-nil, is the incremental cache entry this clean
	// component reuses instead of solving anything.
	cached *incEntry
	// canonY/canonObj is the canonical solution stored back into the
	// incremental cache: for an LP solve, the result of re-solving from
	// this solve's own optimal basis — bit-for-bit what a full re-solve
	// of the unchanged component computes next slot, because next slot's
	// warm seed IS this basis; for the deterministic fast path, the
	// solution itself.
	canonY   []float64
	canonObj float64
	err      error
}

// solveCfg bundles the solver-side knobs of solveDecomposed (the LP-side
// knobs travel in lpOptions).
type solveCfg struct {
	warm    *WarmCache
	pass    int
	workers int
	// inc enables the incremental re-solve when non-nil and caching (a
	// counters-only IncCache tracks the fast path without reusing
	// decisions — see NewIncCounters).
	inc *IncCache
	// fast enables the local-ratio fast path on dirty components.
	fast bool
	// stable selects the renaming-invariant solve mode: positional
	// variable names and exact-shard warm seeds. In this mode a
	// component whose shape repeats across slots produces a bit-identical
	// LP regardless of global request ids — the property the incremental
	// clean check and the fast-path/LP parity proofs stand on. inc and
	// fast imply it; the oracle baselines set it alone so a
	// full-resolve-every-slot run stays decision-comparable to an
	// incremental run. Off (the default) preserves the historical global
	// naming and nearest-shard fallback bit for bit.
	stable bool
}

// solveDecomposed builds and solves the slot LP component by component on
// a bounded worker pool, each component warm-started from its own shard's
// basis, and merges the results into m in ascending component-key order.
// The merged output is bit-identical for every workers value: components
// are solved independently (the LP is block-diagonal) and the merge order
// is fixed, so parallelism changes wall-clock time and nothing else.
//
// In stable mode (see solveCfg), additionally:
//
//   - cfg.inc caching enables the incremental re-solve: components whose
//     exact input signature matches the cached one are *clean* and reuse
//     the cached canonical solution without building an LP; dirty
//     components are solved (LP result used for this slot, same as a full
//     run), then canonicalized and cached. A full-resolve run and an
//     incremental run therefore agree decision for decision — the oracle
//     differential DiffIncrementalFull pins that contract.
//   - cfg.fast enables the LP-free fast path on dirty components: when
//     tryLocalRatio's certificate holds, its schedule is provably the
//     unique LP optimum and is used (and cached) directly.
func solveDecomposed(n *mec.Network, reqs []*mec.Request, opts lpOptions, cfg solveCfg, sc *slotScratch, m *mergedModel) error {
	if opts.slotLengthMS == 0 {
		opts.slotLengthMS = mec.DefaultSlotLengthMS
	}
	if opts.slotMHz <= 0 {
		opts.slotMHz = n.SlotMHz()
	}
	if opts.capOf == nil {
		opts.capOf = n.Capacity
	}
	if opts.active == nil {
		all := growInts(&sc.activeAll, len(reqs))
		for j := range all {
			all[j] = j
		}
		opts.active = all
	}
	if cfg.inc != nil || cfg.fast {
		cfg.stable = true
	}
	inc := cfg.inc
	caching := inc != nil && inc.entries != nil
	warm, pass := cfg.warm, cfg.pass
	m.reset(len(reqs))
	record := caching || cfg.fast
	comps := splitComponents(n, reqs, opts, sc, record)
	if len(comps) == 0 {
		return nil
	}

	results := growCompSolves(&sc.results, len(comps))
	seeds := growSeeds(&sc.seeds, len(comps))

	// Clean check, sequential and before the workers: build each
	// component's exact signature and compare it word-for-word against
	// the cached entry under the same (pass, shard) key. A match means
	// the component's LP would be bit-identical to the one the cached
	// canonical solution solves, so the solve is skipped entirely.
	var sigOff []int
	if caching {
		sc.sigs = sc.sigs[:0]
		sigOff = growInts(&sc.sigOff, len(comps)+1)
		for k := range comps {
			sigOff[k] = len(sc.sigs)
			sc.sigs = appendCompSig(sc.sigs, reqs, opts, comps[k], sc)
		}
		sigOff[len(comps)] = len(sc.sigs)
		for k := range comps {
			sig := sc.sigs[sigOff[k]:sigOff[k+1]]
			if e := inc.get(pass, comps[k].key); e != nil && wordsEqual(e.sig, sig) {
				results[k] = compSolve{cached: e}
				inc.cleanHits.Add(1)
			} else {
				inc.dirtySolves.Add(1)
			}
		}
	}

	// Resolve every dirty component's warm-start seed before the workers
	// launch, against a fixed pre-pass cache snapshot: that keeps the
	// seeds — and therefore the chosen optimal vertices — identical for
	// every worker count. In stable mode lookups are exact-shard only: a
	// nearest-shard basis would resolve onto a different component's
	// positionally-named requests and churn the chosen vertex from slot
	// to slot, and the incremental parity argument leans on each
	// component re-seeding from its own previous basis.
	for k := range comps {
		if results[k].cached != nil {
			seeds[k] = nil
			continue
		}
		if cfg.stable {
			seeds[k] = warm.get(pass, comps[k].key)
		} else {
			seeds[k] = warm.getNear(pass, comps[k].key)
		}
	}
	solveOne := func(k int) {
		if results[k].cached != nil {
			return
		}
		comp := comps[k]
		copts := opts
		copts.active = comp.reqs
		copts.stations = comp.stations
		copts.byReq = m.byReq // disjoint request sets: no write overlap
		copts.positional = cfg.stable
		if cfg.fast {
			if vars, y, obj, ok := tryLocalRatio(n, reqs, comp, copts); ok {
				inc.addFastPath()
				results[k] = compSolve{vars: vars, y: y, obj: obj, canonY: y, canonObj: obj}
				return
			}
			inc.addFastFallback()
		}
		model, err := buildLP(n, reqs, copts)
		if err != nil {
			results[k] = compSolve{err: err}
			return
		}
		y, obj, basis, err := model.solveWarm(seeds[k])
		if err != nil {
			results[k] = compSolve{err: err}
			return
		}
		warm.put(pass, comp.key, basis)
		cs := compSolve{vars: model.vars, y: y, obj: obj}
		if caching {
			// Canonicalize: next slot, if this component is clean, the
			// full-resolve baseline computes solveWarm(basis) on the
			// bit-identical problem. Cache exactly that result so clean
			// reuse and full re-solve can never drift apart (re-seeding
			// an optimal basis pivots zero times, so the slot after next
			// re-captures this same basis, and so on).
			cy, cobj, _, cerr := model.solveWarm(basis)
			if cerr != nil {
				results[k] = compSolve{err: cerr}
				return
			}
			cs.canonY, cs.canonObj = cy, cobj
		}
		results[k] = cs
	}
	forEachParallel(len(comps), cfg.workers, solveOne)

	// Deterministic merge: components in key order, local variable indices
	// rebased onto the global concatenation. Clean components materialize
	// their position-space cached vars back into global request indices.
	for k := range results {
		r := &results[k]
		if r.err != nil {
			return r.err
		}
		offset := len(m.vars)
		if e := r.cached; e != nil {
			for t := range e.vars {
				cv := &e.vars[t]
				j := comps[k].reqs[cv.req]
				m.vars = append(m.vars, slotVar{req: j, station: cv.station, slot: cv.slot, er: cv.er})
				m.byReq[j] = append(m.byReq[j], offset+t)
			}
			m.y = append(m.y, e.y...)
			m.obj += e.obj
			continue
		}
		m.vars = append(m.vars, r.vars...)
		m.y = append(m.y, r.y...)
		m.obj += r.obj
		if offset > 0 {
			for _, j := range comps[k].reqs {
				idxs := m.byReq[j]
				for t := range idxs {
					idxs[t] += offset
				}
			}
		}
		if caching {
			inc.put(pass, comps[k].key, sc.sigs[sigOff[k]:sigOff[k+1]], r.vars, comps[k].reqs, r.canonY, r.canonObj)
		}
	}
	return nil
}

// wordsEqual reports whether two signature slices are identical.
func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// forEachParallel runs f(0..n-1) on at most `workers` goroutines. workers
// <= 1 runs inline. The iteration set is fixed up front, so the result is
// independent of how indices are interleaved across workers.
func forEachParallel(n, workers int, f func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
