package core

import (
	"math/rand"
	"sort"
	"time"

	"mecoffload/internal/mec"
)

// maxAutoPasses bounds the iterative-rounding loop when Passes is 0.
const maxAutoPasses = 16

// ApproOptions tunes Algorithm 1.
type ApproOptions struct {
	// SlotLengthMS converts waiting slots into milliseconds (default
	// mec.DefaultSlotLengthMS).
	SlotLengthMS float64
	// RoundingDenominator is the divisor in the rounding probability
	// y_jil / denominator. The paper uses 4 (Lemma 2 depends on it);
	// other values are exposed for the ablation study. Zero selects 4.
	RoundingDenominator float64
	// Passes controls iterative rounding. Passes == 1 runs the literal
	// Algorithm 1: one LP solve, one randomized rounding, one slot-by-slot
	// admission sweep — the variant Theorem 1's 1/8 ratio is proved for.
	// Passes == 0 (the default used in the experiments) repeats the
	// procedure on the residual instance (undecided requests, residual
	// capacities) until a pass admits nothing, which only adds reward:
	// each pass individually retains the per-pass guarantee, and the
	// union fills the capacity the single analyzed pass leaves idle by
	// design (it admits each request with probability <= y/4).
	Passes int
	// Warm, when non-nil, seeds each rounding pass's LP from the optimal
	// basis of the corresponding pass of a previous structurally similar
	// run (e.g. an earlier repetition of the same experiment cell) and
	// stores this run's bases back. Warm starting never changes the LP
	// optimum — only the simplex iteration count.
	Warm *WarmCache
	// Workers bounds the goroutines solving independent components of the
	// block-diagonal slot LP concurrently (0 or 1 solves them serially on
	// the calling goroutine). Results are bit-identical for every value:
	// the component decomposition is always on and the merge order is
	// fixed, so Workers trades wall-clock time only.
	Workers int
}

func (o *ApproOptions) fill() {
	if o.SlotLengthMS == 0 {
		o.SlotLengthMS = mec.DefaultSlotLengthMS
	}
	if o.RoundingDenominator == 0 {
		o.RoundingDenominator = 4
	}
}

// tentative is one rounded (request, station, slot) pre-assignment.
type tentative struct {
	req     int
	station int
	slot    int
}

// Appro is Algorithm 1: the randomized 1/8-approximation for the reward
// maximization problem with the tasks of each request consolidated into a
// single base station.
//
//  1. Solve the resource-slot-indexed LP relaxation.
//  2. Assign request r_j to slot l of station bs_i with probability
//     y_jil/4 (and leave it unassigned with the residual probability).
//  3. Admit slot-by-slot: at slot l of each station, candidates are
//     considered in increasing (expected) data-rate order and admitted
//     only while the realized occupancy of already-admitted requests is
//     at most l*C_l.
//
// Rates realize (and rewards are earned or forfeited) only after
// admission, exactly as in the paper's model of uncertain demands.
func Appro(n *mec.Network, reqs []*mec.Request, rng *rand.Rand, opts ApproOptions) (*Result, error) {
	opts.fill()
	return runRounding(n, reqs, rng, opts, "Appro", nil)
}

// runRounding is the shared engine of Appro and Heu: iterative LP-guided
// randomized rounding with slot-by-slot admission, optionally with Heu's
// task-migration hook.
func runRounding(n *mec.Network, reqs []*mec.Request, rng *rand.Rand, opts ApproOptions, name string, mkHooks func(*Result, []float64) admissionHooks) (*Result, error) {
	if n == nil {
		return nil, ErrNilNetwork
	}
	if len(reqs) == 0 {
		return nil, ErrNoRequests
	}
	start := time.Now()

	res := &Result{Algorithm: name, Decisions: make([]Decision, len(reqs))}
	for j := range res.Decisions {
		res.Decisions[j] = Decision{RequestID: j, Station: -1}
	}

	used := make([]float64, n.NumStations()) // realized MHz per station
	var hooks admissionHooks
	if mkHooks != nil {
		hooks = mkHooks(res, used)
	}

	sc := getSlotScratch()
	defer putSlotScratch(sc)
	undecided := growInts(&sc.undecided, len(reqs))
	for j := range undecided {
		undecided[j] = j
	}
	maxPasses := opts.Passes
	if maxPasses <= 0 {
		maxPasses = maxAutoPasses
	}

	slotMHz := n.SlotMHz()
	for pass := 0; pass < maxPasses && len(undecided) > 0; pass++ {
		if pass > 0 {
			// Refine the slot grid on the residual instance: leftovers
			// smaller than one default slot would otherwise be invisible
			// to the slot-indexed relaxation. Pass 0 always uses the
			// paper's grid.
			if half := slotMHz / 2; half >= n.SlotMHz()/8 {
				slotMHz = half
			}
		}
		capOf := func(i int) float64 { return n.Capacity(i) - used[i] }
		err := solveDecomposed(n, reqs, lpOptions{
			active:       undecided,
			capOf:        capOf,
			slotMHz:      slotMHz,
			slotLengthMS: opts.SlotLengthMS,
			names:        opts.Warm.nameTable(),
		}, solveCfg{warm: opts.Warm, pass: pass, workers: opts.Workers}, sc, &sc.merged)
		if err != nil {
			return nil, err
		}
		if pass == 0 {
			res.ExpectedLPBound = sc.merged.obj
		}
		if len(sc.merged.y) == 0 {
			break
		}

		sc.pre = roundAssignments(sc.merged.vars, sc.merged.byReq, sc.merged.y, reqs, rng, opts.RoundingDenominator, sc.pre[:0])
		admitted := admitSlotBySlot(n, reqs, sc.pre, rng, opts.SlotLengthMS, slotMHz, res, hooks, used, nil, sc)
		if admitted == 0 {
			break
		}
		next := undecided[:0]
		for _, j := range undecided {
			if !res.Decisions[j].Admitted {
				next = append(next, j)
			}
		}
		undecided = next
	}

	if hooks.finish != nil {
		hooks.finish()
	}
	Evaluate(n, reqs, res, rng)
	res.Runtime = time.Since(start)
	return res, nil
}

// roundAssignments performs Algorithm 1 step 2: each request lands on
// (i, l) with probability y_jil/denom, or nowhere. Requests draw in
// ascending global index order (one draw per request with variables), so
// the rng consumption is independent of how the LP was decomposed. pre is
// an optional reused buffer; the filled slice is returned.
func roundAssignments(vars []slotVar, byReq [][]int, y []float64, reqs []*mec.Request, rng *rand.Rand, denom float64, pre []tentative) []tentative {
	for j := range reqs {
		if len(byReq[j]) == 0 {
			continue
		}
		u := rng.Float64()
		acc := 0.0
		for _, idx := range byReq[j] {
			acc += y[idx] / denom
			if u < acc {
				sv := vars[idx]
				pre = append(pre, tentative{req: j, station: sv.station, slot: sv.slot})
				break
			}
		}
	}
	return pre
}

// migrator is Heu's congestion hook: given the station whose occupancy
// test failed, the slot index, and the per-station occupancy this pass, it
// may free resources by migrating a task of an already-admitted request.
// It reports whether it changed anything; the caller re-tests admission.
type migrator func(station int, slot int, passUsed func(int) float64) bool

// overflowHandler is Heu's distribution hook: called when request req's
// realized demand does not fit station, it may distribute some of the
// request's tasks to other stations so the remainder fits. It updates the
// occupancy ledger and the decision's TaskStations/LatencyMS itself and
// reports success; on failure the request is evicted.
type overflowHandler func(req, station int) bool

// admissionHooks bundles the extension points that turn Algorithm 1's
// admission sweep into Algorithm 2.
type admissionHooks struct {
	migrate  migrator
	overflow overflowHandler
	// finish runs once after the rounding passes converge and before the
	// final evaluation; Heu uses it to distribute still-rejected requests
	// over fragmented residual capacity.
	finish func()
}

// admitSlotBySlot performs Algorithm 1 steps 3-7 over the tentative
// assignments, filling res, and returns the number of newly admitted
// requests. used is the global realized-occupancy ledger (MHz per
// station); the per-slot occupancy test measures only this pass's growth
// on top of the snapshot taken at entry. When migrate is non-nil
// (Algorithm 2), a failed occupancy test triggers one migration attempt
// before the request is rejected.
func admitSlotBySlot(n *mec.Network, reqs []*mec.Request, pre []tentative, rng *rand.Rand, slotLenMS, slotMHz float64, res *Result, hooks admissionHooks, used []float64, waitOf func(int) int, sc *slotScratch) int {
	base := growFloatsClear(&sc.base, len(used))
	copy(base, used)
	passUsed := func(i int) float64 { return used[i] - base[i] }

	// Group tentative assignments by (station, slot).
	type key struct{ station, slot int }
	groups := make(map[key][]int)
	maxSlot := 0
	for _, t := range pre {
		k := key{t.station, t.slot}
		groups[k] = append(groups[k], t.req)
		if t.slot > maxSlot {
			maxSlot = t.slot
		}
	}

	admitted := 0
	for l := 1; l <= maxSlot; l++ {
		for i := 0; i < n.NumStations(); i++ {
			cand := groups[key{i, l}]
			if len(cand) == 0 {
				continue
			}
			// Candidates in increasing expected data rate: the realized
			// rate is still hidden at this point.
			sort.Slice(cand, func(a, b int) bool {
				ra, rb := reqs[cand[a]].ExpectedRate(), reqs[cand[b]].ExpectedRate()
				if ra != rb {
					return ra < rb
				}
				return cand[a] < cand[b]
			})
			limit := float64(l) * slotMHz
			for _, j := range cand {
				if passUsed(i) > limit {
					if hooks.migrate == nil || !hooks.migrate(i, l, passUsed) || passUsed(i) > limit {
						continue // reject r_j (Algorithm 1 step 6 fails)
					}
				}
				r := reqs[j]
				d := &res.Decisions[j]
				d.Admitted = true
				d.Station = i
				d.Slot = l
				if waitOf != nil {
					d.WaitSlots = waitOf(j)
				}
				d.TaskStations = consolidated(r, i)
				d.LatencyMS = latencyOf(n, r, d.TaskStations, d.WaitSlots, slotLenMS)
				admitted++
				// The rate instantiates and reveals on scheduling. The
				// algorithm watches realized demand: an overflowing
				// request is evicted before it can overload the station
				// (it earns nothing, per Eq. (8)).
				out := r.Realize(rng)
				demand := n.RateToMHz(out.Rate)
				switch {
				case fitsWithin(used[i], demand, n.Capacity(i)):
					used[i] += demand
				case hooks.overflow != nil && hooks.overflow(j, i):
					// Distributed across stations; ledgers updated by the
					// hook.
				default:
					d.Evicted = true
				}
			}
		}
	}
	return admitted
}
