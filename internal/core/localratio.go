package core

import (
	"math"

	"mecoffload/internal/mec"
)

// lrMargin is the relative safety margin of the local-ratio certification.
// Both tests below hold with exact arithmetic or not at all; the margin
// keeps a certificate that barely holds — where simplex tolerances could
// in principle pick a different vertex — out of the fast path. Anything
// within the margin falls back to the LP.
const lrMargin = 1e-6

// lrChoice is one certified placement: request j starts in slot 1 of
// station, collecting expected reward er.
type lrChoice struct {
	j       int
	station int
	er      float64
}

// tryLocalRatio is the LP-free combinatorial fast path, the uncontended
// special case of the local-ratio real-time offloading scheduler (Gao &
// Easwaran, arXiv:2503.16794). The local-ratio method peels the reward
// function into layers and keeps a placement exactly when no later layer
// competes for its resources; in the uncontended case that recursion
// collapses to one round, and the schedule it returns is each request's
// reward-maximal (station, slot) pair. This routine certifies that the
// collapse applies to a component and, when it does, returns that
// schedule directly — provably the LP-PT optimum — in microseconds.
//
// The certificate has two parts, checked with a safety margin (lrMargin):
//
//  1. Unique argmax: for every request in the component, one single
//     variable y_{j,i*,1} strictly dominates every other variable's
//     objective coefficient ER_jil. Since ER is non-increasing in l, the
//     dominant variable is always at l=1, and the test reduces to the
//     best station's ER at l=1 beating both every other station's l=1
//     value and every station's l=2 value.
//  2. Feasibility: the one-hot point that assigns every request its
//     dominant variable satisfies every capacity row (10) the LP would
//     build, with margin to spare.
//
// Soundness: constraint (9) caps each request's total mass at 1, so the
// LP optimum is at most sum_j max_{i,l} ER_jil. The certified one-hot
// point attains that bound and is feasible, so it is optimal; strictness
// of the argmax makes it the *unique* optimum (any mass on a dominated
// variable loses objective), so the simplex has no other vertex to
// return. When any part of the certificate fails — tied coefficients,
// a contended station, a request with no candidate sharing its component
// with one that has — the component falls back to the warm-started LP.
//
// The returned vars/y use component-local variable indices (like buildLP)
// and append into the shared byReq backing; the caller's merge rebases
// them exactly as it does LP results.
func tryLocalRatio(n *mec.Network, reqs []*mec.Request, comp component, opts lpOptions) ([]slotVar, []float64, float64, bool) {
	cu := n.CUnit()
	choices := make([]lrChoice, 0, len(comp.reqs))
	for _, j := range comp.reqs {
		r := reqs[j]
		wait := 0
		if opts.waitSlots != nil {
			wait = opts.waitSlots(j)
		}
		best, bestER, second := -1, 0.0, 0.0
		for _, i := range comp.stations {
			capI := opts.capOf(i)
			if capI < opts.slotMHz {
				continue
			}
			if !r.DelayFeasible(n, i, wait, opts.slotLengthMS) {
				continue
			}
			er1 := r.Dist.RewardMassBelow((capI - opts.slotMHz) / cu)
			if er1 <= 0 {
				continue
			}
			// ER at l >= 2 is bounded by the l=2 value (non-increasing
			// in l), so it is the only later slot the argmax test needs.
			if capI >= 2*opts.slotMHz {
				if er2 := r.Dist.RewardMassBelow((capI - 2*opts.slotMHz) / cu); er2 > second {
					second = er2
				}
			}
			switch {
			case er1 > bestER:
				if bestER > second {
					second = bestER
				}
				best, bestER = i, er1
			case er1 > second:
				second = er1
			}
		}
		if best < 0 {
			continue // no variable anywhere; the LP rejects it too
		}
		if bestER-second <= lrMargin*bestER {
			return nil, nil, 0, false
		}
		choices = append(choices, lrChoice{j: j, station: best, er: bestER})
	}

	// Part 2: the one-hot point must satisfy every capacity row (10) the
	// LP would build, with margin.
	for _, i := range comp.stations {
		capI := opts.capOf(i)
		L := int(capI / opts.slotMHz)
		shareCap := 0.0
		if opts.shareCapFor != nil {
			shareCap = opts.shareCapFor(i)
		}
		for l := 1; l <= L; l++ {
			slotCap := float64(l) * opts.slotMHz / cu
			trunc := slotCap
			if shareCap > 0 {
				trunc = math.Min(trunc, shareCap)
			}
			lhs := 0.0
			for _, c := range choices {
				if c.station != i {
					continue
				}
				lhs += reqs[c.j].Dist.ExpectedTruncatedRate(trunc)
			}
			if lhs > (1-lrMargin)*2*slotCap {
				return nil, nil, 0, false
			}
		}
	}

	vars := make([]slotVar, 0, len(choices))
	y := make([]float64, 0, len(choices))
	obj := 0.0
	for _, c := range choices {
		opts.byReq[c.j] = append(opts.byReq[c.j], len(vars))
		vars = append(vars, slotVar{req: c.j, station: c.station, slot: 1, er: c.er})
		y = append(y, 1)
		obj += c.er
	}
	return vars, y, obj, true
}
