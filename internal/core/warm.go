package core

import (
	"sync"

	"mecoffload/internal/lp"
)

// WarmCache carries optimal LP bases across structurally similar solves:
// consecutive time slots of the online LP-PT, repetitions of the same
// experiment grid cell, or successive rounding passes of Appro/Heu. One
// basis is kept per rounding-pass index, because pass k of one run is
// structurally closest to pass k of the next (same slot grid, similar
// residual shape). A nil *WarmCache is valid and disables warm starting;
// a non-nil cache is safe for concurrent use (the experiment sweep runs
// repetitions of one cell on several workers).
type WarmCache struct {
	mu     sync.Mutex
	byPass []*lp.Basis
	hits   uint64
	misses uint64
}

// NewWarmCache returns an empty cache.
func NewWarmCache() *WarmCache { return &WarmCache{} }

// Stats returns how many basis lookups found a seed basis (hits) versus
// fell back to a cold solve (misses). The serving daemon exports the
// ratio as its LP warm-start hit rate.
func (c *WarmCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// get returns the stored basis for a rounding pass (nil when absent).
func (c *WarmCache) get(pass int) *lp.Basis {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if pass < 0 || pass >= len(c.byPass) || c.byPass[pass] == nil {
		c.misses++
		return nil
	}
	c.hits++
	return c.byPass[pass]
}

// put stores the optimal basis of a rounding pass, replacing any previous
// one (latest wins: the most recent solve is structurally closest to the
// next).
func (c *WarmCache) put(pass int, b *lp.Basis) {
	if c == nil || b == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.byPass) <= pass {
		c.byPass = append(c.byPass, nil)
	}
	c.byPass[pass] = b
}
