package core

import (
	"sync"
	"sync/atomic"

	"mecoffload/internal/lp"
)

// warmKey addresses one stored basis: the rounding-pass index plus the
// shard the basis belongs to. A shard is one connected component of the
// request-station candidate graph, identified by its smallest station
// index — the only label that is stable while arrivals and departures
// reshape the component around it.
type warmKey struct {
	pass  int
	shard int
}

// WarmCache carries optimal LP bases across structurally similar solves:
// consecutive time slots of the online LP-PT, repetitions of the same
// experiment grid cell, or successive rounding passes of Appro/Heu. One
// basis is kept per (rounding pass, shard): pass k of one run is
// structurally closest to pass k of the next (same slot grid, similar
// residual shape), and the per-component decomposition solves each shard
// independently, so each worker warm-starts from its own shard's basis
// without contending for the others.
//
// A nil *WarmCache is valid and disables warm starting. A non-nil cache
// is safe for concurrent use by the solver worker pool: lookups take a
// read lock on the key map and load an atomic pointer, so concurrent
// get/put on different shards never serialize on one mutex (the write
// lock is only taken the first time a key appears).
type WarmCache struct {
	hits   atomic.Uint64
	misses atomic.Uint64

	mu    sync.RWMutex
	slots map[warmKey]*atomic.Pointer[lp.Basis]

	// names interns LP row/column names across slots so the per-slot
	// rebuild of structurally identical problems does not re-allocate
	// thousands of identical strings.
	names nameCache
}

// NewWarmCache returns an empty cache.
func NewWarmCache() *WarmCache {
	return &WarmCache{slots: make(map[warmKey]*atomic.Pointer[lp.Basis])}
}

// Stats returns how many basis lookups found a seed basis (hits) versus
// fell back to a cold solve (misses). The serving daemon exports the
// ratio as its LP warm-start hit rate.
func (c *WarmCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// get returns the stored basis for a (rounding pass, shard) pair (nil
// when absent). Safe for concurrent use.
func (c *WarmCache) get(pass, shard int) *lp.Basis {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	p := c.slots[warmKey{pass: pass, shard: shard}]
	c.mu.RUnlock()
	if p == nil {
		c.misses.Add(1)
		return nil
	}
	b := p.Load()
	if b == nil {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return b
}

// getNear returns the stored basis for (pass, shard), falling back to the
// same pass's entry with the nearest shard key when the exact key is
// absent. Components are labeled by their smallest station, so the label
// drifts when that station saturates out of the candidate graph; the
// nearest stored basis still covers mostly the same rows and columns, and
// the name-based resolution simply drops whatever no longer applies. The
// fallback choice is deterministic (smallest distance, then smallest
// shard). Safe for concurrent use, but determinism across worker counts
// additionally requires that no put for the same pass runs concurrently —
// solveDecomposed therefore resolves all seeds before its workers start.
func (c *WarmCache) getNear(pass, shard int) *lp.Basis {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	p := c.slots[warmKey{pass: pass, shard: shard}]
	if p == nil {
		bestDist, bestShard := -1, -1
		for k, cand := range c.slots {
			if k.pass != pass || cand.Load() == nil {
				continue
			}
			d := k.shard - shard
			if d < 0 {
				d = -d
			}
			if bestDist < 0 || d < bestDist || (d == bestDist && k.shard < bestShard) {
				p = cand
				bestDist, bestShard = d, k.shard
			}
		}
	}
	c.mu.RUnlock()
	if p == nil {
		c.misses.Add(1)
		return nil
	}
	b := p.Load()
	if b == nil {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return b
}

// put stores the optimal basis of a (rounding pass, shard) pair,
// replacing any previous one (latest wins: the most recent solve is
// structurally closest to the next). Safe for concurrent use.
func (c *WarmCache) put(pass, shard int, b *lp.Basis) {
	if c == nil || b == nil {
		return
	}
	k := warmKey{pass: pass, shard: shard}
	c.mu.RLock()
	p := c.slots[k]
	c.mu.RUnlock()
	if p == nil {
		c.mu.Lock()
		p = c.slots[k]
		if p == nil {
			p = &atomic.Pointer[lp.Basis]{}
			c.slots[k] = p
		}
		c.mu.Unlock()
	}
	p.Store(b)
}

// nameTable returns the cache's interned-name table (nil receiver safe:
// a nil cache means names are formatted on the fly).
func (c *WarmCache) nameTable() *nameCache {
	if c == nil {
		return nil
	}
	return &c.names
}
