package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"mecoffload/internal/lp"
	"mecoffload/internal/mec"
	"mecoffload/internal/workload"
)

// warmTightEq mirrors the warm-start contract tolerance: warm and cold
// solves of the same LP must agree on the objective to 1e-9.
func warmTightEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// TestLPPTWarmColdObjectiveProperty replays randomized per-slot LP-PT
// sequences — active-set churn, occupancy growth, waiting-time drift, the
// way sim.DynamicRR drives the model — and asserts that solving each slot
// warm (from the previous slot's optimal basis) reaches exactly the cold
// objective. This is the property that makes warm starting safe to leave
// on everywhere: it buys iterations, never a different optimum.
func TestLPPTWarmColdObjectiveProperty(t *testing.T) {
	seeds := []int64{11, 22, 33, 44}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		net, err := mec.RandomNetwork(8, 3000, 3600, rng)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := workload.Generate(workload.Config{
			NumRequests: 40, NumStations: 8, GeometricRates: true,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}

		used := make([]float64, net.NumStations())
		var warm *lp.Basis
		slots := 8
		if testing.Short() {
			slots = 4
		}
		for slot := 0; slot < slots; slot++ {
			// Random active subset, as arrivals/departures would produce.
			var active []int
			for j := range reqs {
				if rng.Float64() < 0.5 {
					active = append(active, j)
				}
			}
			if len(active) == 0 {
				active = []int{rng.Intn(len(reqs))}
			}
			rt := float64(len(active))
			model, err := buildLP(net, reqs, lpOptions{
				active:      active,
				capOf:       func(i int) float64 { return net.Capacity(i) - used[i] },
				shareCapFor: func(i int) float64 { return net.Capacity(i) / rt / net.CUnit() },
				waitSlots:   func(j int) int { return slot / 2 },
			})
			if err != nil {
				t.Fatal(err)
			}
			_, coldObj, _, err := model.solveWarm(nil)
			if err != nil {
				t.Fatalf("seed %d slot %d cold: %v", seed, slot, err)
			}
			_, warmObj, basis, err := model.solveWarm(warm)
			if err != nil {
				t.Fatalf("seed %d slot %d warm: %v", seed, slot, err)
			}
			if !warmTightEq(coldObj, warmObj) {
				t.Fatalf("seed %d slot %d: cold %v != warm %v", seed, slot, coldObj, warmObj)
			}
			warm = basis

			// Commit some random occupancy so the next slot's residual
			// capacities (and thus its LP) drift like a real timeline.
			for i := range used {
				free := net.Capacity(i) - used[i]
				used[i] += rng.Float64() * 0.2 * free
			}
		}
	}
}

// TestWarmCacheNilSafe exercises the nil-receiver contract that lets every
// caller skip "if warm != nil" guards.
func TestWarmCacheNilSafe(t *testing.T) {
	var w *WarmCache
	if got := w.get(0, 0); got != nil {
		t.Fatalf("nil cache get = %v", got)
	}
	w.put(0, 0, &lp.Basis{}) // must not panic
	c := NewWarmCache()
	if got := c.get(3, 0); got != nil {
		t.Fatalf("empty cache get = %v", got)
	}
	b := &lp.Basis{}
	c.put(3, 0, b)
	if got := c.get(3, 0); got != b {
		t.Fatalf("cache round-trip lost the basis")
	}
	c.put(3, 0, nil) // nil puts are dropped, keeping the last real basis
	if got := c.get(3, 0); got != b {
		t.Fatalf("nil put evicted the cached basis")
	}
}

// TestWarmCacheConcurrent hammers one cache from many goroutines the way
// the experiment sweep's repetitions do; the race detector is the judge.
func TestWarmCacheConcurrent(t *testing.T) {
	c := NewWarmCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pass := (g + i) % 4
				if b := c.get(pass, g%2); b != nil {
					_ = b.Size()
				}
				c.put(pass, g%2, &lp.Basis{})
			}
		}(g)
	}
	wg.Wait()
}

// TestApproWarmAcrossRepetitions runs Appro twice on re-realized workloads
// with a shared cache — the experiment-sweep pattern — and checks the
// second run still passes the feasibility audit.
func TestApproWarmAcrossRepetitions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, err := mec.RandomNetwork(6, 3000, 3600, rng)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(workload.Config{
		NumRequests: 30, NumStations: 6, GeometricRates: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewWarmCache()
	for rep := 0; rep < 3; rep++ {
		workload.Reset(reqs)
		res, err := Appro(net, reqs, rand.New(rand.NewSource(int64(rep)+100)), ApproOptions{Warm: cache})
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if err := Audit(net, reqs, res); err != nil {
			t.Fatalf("rep %d audit: %v", rep, err)
		}
	}
}
