package core

import (
	"fmt"
	"math/rand"

	"mecoffload/internal/lp"
	"mecoffload/internal/mec"
)

// HindsightBound computes an upper bound on the reward any consolidated
// offline policy could have earned had it known every realized data rate
// in advance: the LP relaxation of the full-information assignment
// problem
//
//	max  sum_{j,i} x_ji * RD_j(realized)
//	s.t. sum_i x_ji <= 1
//	     sum_j x_ji * demand_j(realized) <= C(bs_i)
//	     x_ji = 0 when station i misses r_j's deadline
//	     0 <= x_ji <= 1 (implied).
//
// It realizes any still-hidden rates with rng (call workload.Reset first
// if fresh draws are wanted) and is used by the experiment harness and
// tests to report competitive ratios: achieved reward / hindsight bound.
func HindsightBound(n *mec.Network, reqs []*mec.Request, rng *rand.Rand) (float64, error) {
	if n == nil {
		return 0, ErrNilNetwork
	}
	if len(reqs) == 0 {
		return 0, ErrNoRequests
	}
	prob := lp.NewProblem(lp.Maximize)
	byStation := make([][]lp.Term, n.NumStations())
	for j, r := range reqs {
		out := r.Realize(rng)
		var terms []lp.Term
		for i := 0; i < n.NumStations(); i++ {
			if !r.DelayFeasible(n, i, 0, mec.DefaultSlotLengthMS) {
				continue
			}
			v := prob.AddVariable(fmt.Sprintf("x[%d,%d]", j, i), out.Reward)
			terms = append(terms, lp.Term{Var: v, Coef: 1})
			byStation[i] = append(byStation[i], lp.Term{Var: v, Coef: n.RateToMHz(out.Rate)})
		}
		if len(terms) == 0 {
			continue
		}
		if _, err := prob.AddConstraint(fmt.Sprintf("assign[%d]", j), lp.LE, 1, terms...); err != nil {
			return 0, err
		}
	}
	if prob.NumVars() == 0 {
		return 0, nil
	}
	for i, terms := range byStation {
		if len(terms) == 0 {
			continue
		}
		if _, err := prob.AddConstraint(fmt.Sprintf("cap[%d]", i), lp.LE, n.Capacity(i), terms...); err != nil {
			return 0, err
		}
	}
	sol, err := prob.Solve()
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.StatusOptimal {
		return 0, fmt.Errorf("%w: hindsight LP %v", ErrLPFailed, sol.Status)
	}
	return sol.Objective, nil
}
