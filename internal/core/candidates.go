package core

import "mecoffload/internal/mec"

// CandidateStations returns the stations on which the per-slot LP would
// create at least one placement variable for r at the given wait: the
// station must fit a full service slot, the end-to-end delay must stay
// within r's deadline, and at least one demand outcome must fit in the
// station's spare slot capacity. This is exactly the feasibility rule
// the LP decomposition uses (hasCandidate), evaluated against unloaded
// stations, so the cluster router partitions requests along the same
// request↔station candidate graph the solver decomposes. Results are in
// ascending station order.
func CandidateStations(n *mec.Network, r *mec.Request, wait int, slotLenMS float64) []int {
	if n == nil || r == nil {
		return nil
	}
	if slotLenMS <= 0 {
		slotLenMS = mec.DefaultSlotLengthMS
	}
	slotMHz := n.SlotMHz()
	var out []int
	for i := 0; i < n.NumStations(); i++ {
		if hasCandidate(n, r, i, wait, n.Capacity(i), slotMHz, slotLenMS) {
			out = append(out, i)
		}
	}
	return out
}
