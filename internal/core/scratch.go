package core

import (
	"sync"

	"mecoffload/internal/lp"
)

// slotScratch bundles the reusable buffers of one scheduling call:
// the decomposition's union-find arrays, the merged LP view, and the
// rounding/admission work lists. ScheduleBatch and runRounding borrow one
// from slotScratchPool per call, so a long-running daemon's per-slot
// scheduling amortizes to (near) zero steady-state allocations outside
// the simplex itself.
type slotScratch struct {
	// decomposition
	parent    []int
	stUsed    []bool
	firstOf   []int
	rootComp  []int
	comps     []component
	activeAll []int

	// per-request candidate station lists recorded during the
	// splitComponents scan (flat list + offsets per active position,
	// posOf maps global request index -> active position); consumed by
	// the incremental signatures and the local-ratio certification.
	cands   []int
	candOff []int
	posOf   []int

	// incremental signatures of this slot's components (flat + offsets)
	sigs   []uint64
	sigOff []int

	// per-component solve results and warm-start seeds
	results []compSolve
	seeds   []*lp.Basis

	// merged LP view shared across rounding passes
	merged mergedModel

	// rounding/admission
	undecided []int
	inBatch   []bool
	pre       []tentative
	base      []float64
}

var slotScratchPool = sync.Pool{New: func() any { return new(slotScratch) }}

func getSlotScratch() *slotScratch   { return slotScratchPool.Get().(*slotScratch) }
func putSlotScratch(sc *slotScratch) { slotScratchPool.Put(sc) }

// growInts resizes *buf to n without clearing (callers overwrite).
func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growBoolsClear resizes *buf to n and clears it.
func growBoolsClear(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	b := *buf
	for i := range b {
		b[i] = false
	}
	return b
}

// growCompSolves resizes *buf to n and zeroes every entry (stale cached
// pointers or errors from a previous slot must not leak into this one).
func growCompSolves(buf *[]compSolve, n int) []compSolve {
	if cap(*buf) < n {
		*buf = make([]compSolve, n)
	}
	*buf = (*buf)[:n]
	b := *buf
	for i := range b {
		b[i] = compSolve{}
	}
	return b
}

// growSeeds resizes *buf to n and clears it.
func growSeeds(buf *[]*lp.Basis, n int) []*lp.Basis {
	if cap(*buf) < n {
		*buf = make([]*lp.Basis, n)
	}
	*buf = (*buf)[:n]
	b := *buf
	for i := range b {
		b[i] = nil
	}
	return b
}

// growFloatsClear resizes *buf to n and clears it.
func growFloatsClear(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	b := *buf
	for i := range b {
		b[i] = 0
	}
	return b
}
