package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mecoffload/internal/mec"
	"mecoffload/internal/workload"
)

// TestAuditHoldsOnRandomInstances is the repository's broadest invariant:
// on arbitrary random instances, every algorithm's output passes the
// physical feasibility audit (capacity by realized served demand, latency
// requirements, reward accounting, counter balance).
func TestAuditHoldsOnRandomInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("LP-heavy property test")
	}
	cfg := &quick.Config{MaxCount: 12}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stations := 3 + rng.Intn(6)
		requests := 10 + rng.Intn(60)
		net, err := mec.RandomNetwork(stations, 2000+rng.Float64()*1000, 3600, rng)
		if err != nil {
			return false
		}
		wcfg := workload.Config{
			NumRequests:    requests,
			NumStations:    stations,
			GeometricRates: rng.Intn(2) == 0,
			RateSupport:    1 + rng.Intn(7),
			MinTasks:       1 + rng.Intn(3),
			MaxTasks:       4,
		}
		reqs, err := workload.Generate(wcfg, rng)
		if err != nil {
			return false
		}
		type runner func() (*Result, error)
		algs := map[string]runner{
			"appro": func() (*Result, error) {
				return Appro(net, reqs, rand.New(rand.NewSource(seed+1)), ApproOptions{})
			},
			"appro-1pass": func() (*Result, error) {
				return Appro(net, reqs, rand.New(rand.NewSource(seed+2)), ApproOptions{Passes: 1})
			},
			"heu": func() (*Result, error) {
				return Heu(net, reqs, rand.New(rand.NewSource(seed+3)), HeuOptions{})
			},
		}
		for name, run := range algs {
			workload.Reset(reqs)
			res, err := run()
			if err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
			if err := Audit(net, reqs, res); err != nil {
				t.Logf("seed %d %s audit: %v", seed, name, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestHindsightDominatesAlgorithms: the full-information LP bound must be
// at least the realized reward of every algorithm on the same
// realizations.
func TestHindsightDominatesAlgorithms(t *testing.T) {
	net := testNetwork(t, 6, 31)
	reqs := testWorkload(t, 50, 6, 32)
	workload.Reset(reqs)
	rng := rand.New(rand.NewSource(33))
	res, err := Heu(net, reqs, rng, HeuOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Same realizations: HindsightBound realizes lazily, but Heu already
	// realized scheduled requests; unscheduled ones realize now.
	bound, err := HindsightBound(net, reqs, rng)
	if err != nil {
		t.Fatal(err)
	}
	if bound < res.TotalReward-1e-6 {
		t.Fatalf("hindsight bound %v below Heu reward %v", bound, res.TotalReward)
	}
	if bound <= 0 {
		t.Fatal("hindsight bound should be positive")
	}
}

func TestHindsightValidation(t *testing.T) {
	net := testNetwork(t, 3, 34)
	rng := rand.New(rand.NewSource(35))
	if _, err := HindsightBound(nil, testWorkload(t, 3, 3, 36), rng); err == nil {
		t.Error("want error for nil network")
	}
	if _, err := HindsightBound(net, nil, rng); err == nil {
		t.Error("want error for empty workload")
	}
}

// TestHindsightZeroWhenNothingFeasible: impossible deadlines leave no
// variables and a zero bound.
func TestHindsightZeroWhenNothingFeasible(t *testing.T) {
	net := testNetwork(t, 3, 37)
	reqs := testWorkload(t, 5, 3, 38)
	for _, r := range reqs {
		r.DeadlineMS = 0.001
	}
	bound, err := HindsightBound(net, reqs, rand.New(rand.NewSource(39)))
	if err != nil {
		t.Fatal(err)
	}
	if bound != 0 {
		t.Fatalf("bound %v, want 0", bound)
	}
}

// TestEvaluateIdempotent: evaluating twice must not change anything (the
// second pass sees the same realizations and placements).
func TestEvaluateIdempotent(t *testing.T) {
	net := testNetwork(t, 5, 40)
	reqs := testWorkload(t, 30, 5, 41)
	rng := rand.New(rand.NewSource(42))
	res, err := Appro(net, reqs, rng, ApproOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := *res
	beforeDecisions := append([]Decision(nil), res.Decisions...)
	Evaluate(net, reqs, res, rng)
	if res.TotalReward != before.TotalReward || res.Served != before.Served || res.Admitted != before.Admitted {
		t.Fatalf("Evaluate not idempotent: %+v vs %+v", res, &before)
	}
	for i := range res.Decisions {
		if res.Decisions[i].Served != beforeDecisions[i].Served ||
			res.Decisions[i].Reward != beforeDecisions[i].Reward ||
			res.Decisions[i].Evicted != beforeDecisions[i].Evicted {
			t.Fatalf("decision %d changed on re-evaluation", i)
		}
	}
}

// TestZeroCapacityStationRejected: network construction must refuse
// zero-capacity stations rather than let algorithms divide by zero.
func TestZeroCapacityStationRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	if _, err := mec.RandomNetwork(0, 3000, 3600, rng); err == nil {
		t.Error("want error for zero stations")
	}
}

// TestDisconnectedNetworkStillWorks: mec.RandomNetwork guarantees
// connectivity, but a hand-built network with an unreachable station must
// degrade gracefully — the unreachable station is simply delay-infeasible
// for remote users.
func TestDisconnectedNetworkNotUsed(t *testing.T) {
	// A 1-station "network" is trivially connected; instead verify that a
	// request whose access station cannot reach any feasible station gets
	// rejected rather than crashing.
	net := testNetwork(t, 4, 44)
	reqs := testWorkload(t, 8, 4, 45)
	for _, r := range reqs {
		r.DeadlineMS = 1 // nothing is feasible within 1 ms
	}
	res, err := Heu(net, reqs, rand.New(rand.NewSource(46)), HeuOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 0 {
		t.Fatalf("admitted %d requests with impossible deadlines", res.Admitted)
	}
	if err := Audit(net, reqs, res); err != nil {
		t.Fatal(err)
	}
}
