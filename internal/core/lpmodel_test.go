package core

import (
	"math"
	"math/rand"
	"testing"

	"mecoffload/internal/dist"
	"mecoffload/internal/mec"
	"mecoffload/internal/topology"
)

// buildTestNetwork builds a two-station network with known capacities.
func buildTestNetwork(t *testing.T, caps []float64) *mec.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(81))
	topo, err := topology.Waxman(topology.Config{N: len(caps)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	stations := make([]mec.BaseStation, len(caps))
	for i, c := range caps {
		stations[i] = mec.BaseStation{CapacityMHz: c, SpeedFactor: 1}
	}
	net, err := mec.NewNetwork(mec.NetworkConfig{Stations: stations, Topo: topo})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func twoRateRequest(t *testing.T, id int) *mec.Request {
	t.Helper()
	d, err := dist.NewRateReward([]dist.Outcome{
		{Rate: 30, Prob: 0.5, Reward: 400},
		{Rate: 50, Prob: 0.5, Reward: 700},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &mec.Request{
		ID:            id,
		AccessStation: 0,
		Tasks:         []mec.Task{{Name: "render", OutputKb: 100, WorkMS: 30}},
		DeadlineMS:    200,
		Dist:          d,
	}
}

// TestBuildLPStructure verifies Eq. (8) variable filtering and the row
// structure of constraints (9) and (10).
func TestBuildLPStructure(t *testing.T) {
	// Capacity 3200 MHz, slot 1000 MHz -> L = 3 slot indices.
	net := buildTestNetwork(t, []float64{3200, 3200})
	reqs := []*mec.Request{twoRateRequest(t, 0), twoRateRequest(t, 1)}
	m, err := buildLP(net, reqs, lpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// ER per slot index on a 3200 MHz station (C_unit = 20):
	//   l=1: rates <= (3200-1000)/20 = 110 -> both fit, ER = 550
	//   l=2: rates <= 60  -> both fit, ER = 550
	//   l=3: rates <= 10  -> none fit, ER = 0 -> variable dropped
	wantVarsPerReq := 2 /* stations */ * 2 /* slots with ER>0 */
	for j := range reqs {
		if got := len(m.byReq[j]); got != wantVarsPerReq {
			t.Fatalf("request %d has %d variables, want %d", j, got, wantVarsPerReq)
		}
	}
	for _, sv := range m.vars {
		switch sv.slot {
		case 1, 2:
			if math.Abs(sv.er-550) > 1e-9 {
				t.Fatalf("ER at slot %d = %v, want 550", sv.slot, sv.er)
			}
		default:
			t.Fatalf("variable at slot %d should not exist", sv.slot)
		}
	}
	// Rows: 2 assignment + per station slots l=1..3 with terms
	// (l=3 row covers l'<=3 variables, so it exists).
	if got := m.prob.NumConstraints(); got != 2+2*3 {
		t.Fatalf("constraints = %d, want 8", got)
	}
}

// TestBuildLPDelayFilter drops stations that violate the deadline.
func TestBuildLPDelayFilter(t *testing.T) {
	net := buildTestNetwork(t, []float64{3200, 3200})
	r := twoRateRequest(t, 0)
	r.DeadlineMS = 30.5 // only the access station (no transmission) fits
	m, err := buildLP(net, []*mec.Request{r}, lpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range m.byReq[0] {
		if m.vars[idx].station != 0 {
			t.Fatalf("variable on station %d despite deadline filter", m.vars[idx].station)
		}
	}
	if len(m.byReq[0]) == 0 {
		t.Fatal("access station should remain feasible")
	}
}

// TestBuildLPShareCap: LP-PT's truncation lowers the occupancy
// coefficients but never below zero, and the solved objective stays a
// valid bound.
func TestBuildLPShareCap(t *testing.T) {
	net := buildTestNetwork(t, []float64{3200})
	reqs := []*mec.Request{twoRateRequest(t, 0), twoRateRequest(t, 1)}
	plain, err := buildLP(net, reqs, lpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, plainOpt, err := plain.solve()
	if err != nil {
		t.Fatal(err)
	}
	truncated, err := buildLP(net, reqs, lpOptions{
		shareCapFor: func(int) float64 { return 5 }, // 5 MB/s share cap
	})
	if err != nil {
		t.Fatal(err)
	}
	_, truncOpt, err := truncated.solve()
	if err != nil {
		t.Fatal(err)
	}
	// Truncation loosens constraint (10) (coefficients shrink), so the
	// relaxed optimum cannot decrease.
	if truncOpt < plainOpt-1e-6 {
		t.Fatalf("share-capped LP optimum %v below plain %v", truncOpt, plainOpt)
	}
}

// TestBuildLPSlotRefinement: halving the slot size must expose residual
// fragments (capacity below one default slot) to the relaxation.
func TestBuildLPSlotRefinement(t *testing.T) {
	// 1600 MHz residual: with C_l = 1000, L = 1 and ER(l=1) covers rates
	// <= 30; with C_l = 500, L = 3 and more variables exist.
	net := buildTestNetwork(t, []float64{1600})
	reqs := []*mec.Request{twoRateRequest(t, 0)}
	coarse, err := buildLP(net, reqs, lpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := buildLP(net, reqs, lpOptions{slotMHz: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(fine.vars) <= len(coarse.vars) {
		t.Fatalf("refined grid should add variables: %d vs %d", len(fine.vars), len(coarse.vars))
	}
}

// TestBuildLPEmptyWhenInfeasible: no deadline-feasible placement leaves an
// empty model, which solves to a zero bound without error.
func TestBuildLPEmptyWhenInfeasible(t *testing.T) {
	net := buildTestNetwork(t, []float64{3200})
	r := twoRateRequest(t, 0)
	r.DeadlineMS = 0.001
	m, err := buildLP(net, []*mec.Request{r}, lpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	y, opt, err := m.solve()
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 0 || opt != 0 {
		t.Fatalf("empty model solved to %v with %d values", opt, len(y))
	}
}

// TestVariableNamesAreInformative: downstream debugging relies on the
// y[j,i,l] naming convention.
func TestVariableNamesAreInformative(t *testing.T) {
	net := buildTestNetwork(t, []float64{3200})
	m, err := buildLP(net, []*mec.Request{twoRateRequest(t, 0)}, lpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.vars) == 0 {
		t.Fatal("no variables built")
	}
	// Spot check the first variable's metadata consistency.
	sv := m.vars[0]
	if sv.req != 0 || sv.station != 0 || sv.slot < 1 {
		t.Fatalf("variable metadata %+v", sv)
	}
}
