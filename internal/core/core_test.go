package core

import (
	"math/rand"
	"testing"

	"mecoffload/internal/dist"
	"mecoffload/internal/mec"
	"mecoffload/internal/topology"
	"mecoffload/internal/workload"
)

// testNetwork builds a paper-default network with the given size.
func testNetwork(t *testing.T, stations int, seed int64) *mec.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n, err := mec.RandomNetwork(stations, 3000, 3600, rng)
	if err != nil {
		t.Fatalf("RandomNetwork: %v", err)
	}
	return n
}

func testWorkload(t *testing.T, n, stations int, seed int64) []*mec.Request {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	reqs, err := workload.Generate(workload.Config{NumRequests: n, NumStations: stations}, rng)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return reqs
}

func TestApproFeasible(t *testing.T) {
	net := testNetwork(t, 8, 1)
	reqs := testWorkload(t, 60, 8, 2)
	rng := rand.New(rand.NewSource(3))
	res, err := Appro(net, reqs, rng, ApproOptions{})
	if err != nil {
		t.Fatalf("Appro: %v", err)
	}
	if err := Audit(net, reqs, res); err != nil {
		t.Fatalf("audit: %v", err)
	}
	if res.Served == 0 {
		t.Fatal("Appro served no requests on an uncongested network")
	}
	if res.ExpectedLPBound <= 0 {
		t.Fatalf("LP bound = %v, want > 0", res.ExpectedLPBound)
	}
}

func TestHeuFeasible(t *testing.T) {
	net := testNetwork(t, 8, 4)
	reqs := testWorkload(t, 60, 8, 5)
	rng := rand.New(rand.NewSource(6))
	res, err := Heu(net, reqs, rng, HeuOptions{})
	if err != nil {
		t.Fatalf("Heu: %v", err)
	}
	if err := Audit(net, reqs, res); err != nil {
		t.Fatalf("audit: %v", err)
	}
	if res.Served == 0 {
		t.Fatal("Heu served no requests")
	}
}

func TestExactSmall(t *testing.T) {
	// Two stations, three requests with deterministic rates; capacity
	// admits exactly one request per station, so the optimum picks the
	// two highest-reward requests.
	rng := rand.New(rand.NewSource(7))
	topo, err := topology.Waxman(topology.Config{N: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := mec.NewNetwork(mec.NetworkConfig{
		Stations: []mec.BaseStation{
			{CapacityMHz: 1000, SpeedFactor: 1},
			{CapacityMHz: 1000, SpeedFactor: 1},
		},
		Topo: topo,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id int, reward float64) *mec.Request {
		d, err := dist.NewRateReward([]dist.Outcome{{Rate: 40, Prob: 1, Reward: reward}})
		if err != nil {
			t.Fatal(err)
		}
		return &mec.Request{
			ID:            id,
			AccessStation: 0,
			Tasks:         []mec.Task{{Name: "render", OutputKb: 100, WorkMS: 30}},
			DeadlineMS:    200,
			Dist:          d,
		}
	}
	// Rate 40 MB/s -> 800 MHz demand; only one fits per 1000 MHz station.
	reqs := []*mec.Request{mk(0, 100), mk(1, 300), mk(2, 200)}
	res, err := Exact(net, reqs, rng, ExactOptions{})
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	if err := Audit(net, reqs, res); err != nil {
		t.Fatalf("audit: %v", err)
	}
	if res.TotalReward != 500 {
		t.Fatalf("reward = %v, want 500 (requests 1 and 2)", res.TotalReward)
	}
	if res.Decisions[0].Admitted {
		t.Fatal("lowest-reward request should be rejected")
	}
}

func TestExactBoundDominatesRealized(t *testing.T) {
	// With deterministic (single-outcome) distributions the ILP expected
	// objective equals the realizable reward, so the bound is tight.
	rng := rand.New(rand.NewSource(8))
	net := testNetwork(t, 4, 9)
	reqs := testWorkload(t, 12, 4, 10)
	res, err := Exact(net, reqs, rng, ExactOptions{})
	if err != nil {
		t.Fatalf("Exact: %v", err)
	}
	if res.ExpectedLPBound <= 0 {
		t.Fatalf("expected positive ILP bound, got %v", res.ExpectedLPBound)
	}
}

// TestApproApproximationRatio validates Theorem 1 statistically: over many
// rounding runs, the mean realized reward must clear a generous fraction
// of the 1/8 * LPOpt guarantee.
func TestApproApproximationRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	net := testNetwork(t, 6, 11)
	reqs := testWorkload(t, 40, 6, 12)
	const runs = 40
	total := 0.0
	var bound float64
	for k := 0; k < runs; k++ {
		workload.Reset(reqs)
		rng := rand.New(rand.NewSource(int64(100 + k)))
		// Passes: 1 is the literal Algorithm 1 that Theorem 1 analyzes.
		res, err := Appro(net, reqs, rng, ApproOptions{Passes: 1})
		if err != nil {
			t.Fatalf("Appro: %v", err)
		}
		if err := Audit(net, reqs, res); err != nil {
			t.Fatalf("audit run %d: %v", k, err)
		}
		total += res.TotalReward
		bound = res.ExpectedLPBound
	}
	mean := total / runs
	if mean < bound/8*0.8 { // 20% statistical slack on the 1/8 guarantee
		t.Fatalf("mean reward %v below 1/8 guarantee of LP bound %v", mean, bound)
	}
}

// TestHeuBeatsApproOnAverage: migration can only add admissions, so Heu's
// mean reward must not fall meaningfully below Appro's under congestion.
func TestHeuBeatsApproOnAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	net := testNetwork(t, 5, 13)
	reqs := testWorkload(t, 80, 5, 14) // heavy load on few stations
	const runs = 25
	sumA, sumH := 0.0, 0.0
	for k := 0; k < runs; k++ {
		workload.Reset(reqs)
		rngA := rand.New(rand.NewSource(int64(200 + k)))
		ra, err := Appro(net, reqs, rngA, ApproOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sumA += ra.TotalReward

		workload.Reset(reqs)
		rngH := rand.New(rand.NewSource(int64(200 + k)))
		rh, err := Heu(net, reqs, rngH, HeuOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := Audit(net, reqs, rh); err != nil {
			t.Fatalf("heu audit run %d: %v", k, err)
		}
		sumH += rh.TotalReward
	}
	if sumH < sumA*0.95 {
		t.Fatalf("Heu mean reward %v below Appro %v", sumH/runs, sumA/runs)
	}
}

func TestApproRejectsInfeasibleDeadline(t *testing.T) {
	net := testNetwork(t, 4, 15)
	reqs := testWorkload(t, 10, 4, 16)
	// Make one request impossible to serve anywhere.
	reqs[3].DeadlineMS = 0.001
	rng := rand.New(rand.NewSource(17))
	res, err := Appro(net, reqs, rng, ApproOptions{})
	if err != nil {
		t.Fatalf("Appro: %v", err)
	}
	if res.Decisions[3].Admitted {
		t.Fatal("request with impossible deadline was admitted")
	}
	if err := Audit(net, reqs, res); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestApproEmptyInputs(t *testing.T) {
	net := testNetwork(t, 3, 18)
	rng := rand.New(rand.NewSource(19))
	if _, err := Appro(net, nil, rng, ApproOptions{}); err == nil {
		t.Fatal("want error for empty workload")
	}
	if _, err := Appro(nil, testWorkload(t, 3, 3, 20), rng, ApproOptions{}); err == nil {
		t.Fatal("want error for nil network")
	}
}

func TestAuditCatchesViolations(t *testing.T) {
	net := testNetwork(t, 3, 21)
	reqs := testWorkload(t, 5, 3, 22)
	rng := rand.New(rand.NewSource(23))
	res, err := Heu(net, reqs, rng, HeuOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the total and expect the audit to object.
	res.TotalReward += 1
	if err := Audit(net, reqs, res); err == nil {
		t.Fatal("audit accepted corrupted total reward")
	}
}
