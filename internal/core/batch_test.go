package core

import (
	"math/rand"
	"testing"

	"mecoffload/internal/mec"
	"mecoffload/internal/workload"
)

func newBatchResult(reqs []*mec.Request) *Result {
	res := &Result{Algorithm: "batch", Decisions: make([]Decision, len(reqs))}
	for j := range res.Decisions {
		res.Decisions[j] = Decision{RequestID: j, Station: -1}
	}
	return res
}

func TestScheduleBatchBasic(t *testing.T) {
	net := testNetwork(t, 6, 61)
	reqs := testWorkload(t, 30, 6, 62)
	res := newBatchResult(reqs)
	used := make([]float64, net.NumStations())
	admitted, err := ScheduleBatch(net, reqs, res, rand.New(rand.NewSource(63)), BatchOptions{
		Active:     []int{0, 1, 2, 3, 4, 5, 6, 7},
		Used:       used,
		Distribute: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if admitted == 0 {
		t.Fatal("batch admitted nothing on an empty network")
	}
	// Requests outside Active must stay untouched.
	for j := 8; j < len(reqs); j++ {
		if res.Decisions[j].Admitted {
			t.Fatalf("request %d outside the batch was admitted", j)
		}
	}
	// The ledger must equal the realized shares of admitted, non-evicted
	// requests.
	want := make([]float64, net.NumStations())
	for j := 0; j < 8; j++ {
		d := res.Decisions[j]
		if !d.Admitted || d.Evicted {
			continue
		}
		out, ok := reqs[j].Realized()
		if !ok {
			t.Fatalf("admitted request %d not realized", j)
		}
		for k, st := range d.TaskStations {
			want[st] += demandShare(net, reqs[j], k, out.Rate)
		}
	}
	for i := range want {
		if diff := want[i] - used[i]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("station %d ledger %v, want %v", i, used[i], want[i])
		}
	}
	for i, u := range used {
		if u > net.Capacity(i)+1e-6 {
			t.Fatalf("station %d over capacity: %v", i, u)
		}
	}
}

func TestScheduleBatchRespectsWaits(t *testing.T) {
	net := testNetwork(t, 5, 64)
	reqs := testWorkload(t, 10, 5, 65)
	res := newBatchResult(reqs)
	used := make([]float64, net.NumStations())
	// An enormous wait makes every placement deadline-infeasible.
	_, err := ScheduleBatch(net, reqs, res, rand.New(rand.NewSource(66)), BatchOptions{
		Active:    []int{0, 1, 2},
		Used:      used,
		WaitSlots: func(int) int { return 1000 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if res.Decisions[j].Admitted {
			t.Fatalf("request %d admitted despite impossible wait", j)
		}
	}
	// A realistic wait is reflected in the recorded decision.
	_, err = ScheduleBatch(net, reqs, res, rand.New(rand.NewSource(67)), BatchOptions{
		Active:    []int{3, 4, 5, 6},
		Used:      used,
		WaitSlots: func(int) int { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 3; j < 7; j++ {
		d := res.Decisions[j]
		if !d.Admitted {
			continue
		}
		if d.WaitSlots != 1 {
			t.Fatalf("request %d wait %d, want 1", j, d.WaitSlots)
		}
		if d.LatencyMS <= mec.DefaultSlotLengthMS {
			t.Fatalf("request %d latency %v must include the waiting slot", j, d.LatencyMS)
		}
	}
}

func TestScheduleBatchShareCapLimitsPerStationMass(t *testing.T) {
	net := testNetwork(t, 4, 68)
	reqs := testWorkload(t, 40, 4, 69)
	res := newBatchResult(reqs)
	used := make([]float64, net.NumStations())
	active := make([]int, 20)
	for i := range active {
		active[i] = i
	}
	// LP-PT share truncation: with |R_t| = 20 the per-station share is
	// C_i/20 (~170 MHz ~ 8.5 MB/s), well below every request's demand, so
	// constraint (23) throttles how much expected mass the LP packs.
	rt := float64(len(active))
	_, err := ScheduleBatch(net, reqs, res, rand.New(rand.NewSource(70)), BatchOptions{
		Active:      active,
		Used:        used,
		ShareCapMBs: func(i int) float64 { return net.Capacity(i) / rt / net.CUnit() },
		Passes:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range used {
		if u > net.Capacity(i)+1e-6 {
			t.Fatalf("station %d over capacity %v", i, u)
		}
	}
}

func TestScheduleBatchEmptyActive(t *testing.T) {
	net := testNetwork(t, 3, 71)
	reqs := testWorkload(t, 5, 3, 72)
	res := newBatchResult(reqs)
	admitted, err := ScheduleBatch(net, reqs, res, rand.New(rand.NewSource(73)), BatchOptions{
		Used: make([]float64, net.NumStations()),
	})
	if err != nil || admitted != 0 {
		t.Fatalf("empty batch: admitted=%d err=%v", admitted, err)
	}
	if _, err := ScheduleBatch(nil, reqs, res, rand.New(rand.NewSource(74)), BatchOptions{}); err == nil {
		t.Fatal("want error for nil network")
	}
}

// TestScheduleBatchSequentialFillsToCapacity: repeated batches against the
// same ledger (the per-slot pattern of DynamicRR) must keep honoring the
// shared capacity.
func TestScheduleBatchSequentialFillsToCapacity(t *testing.T) {
	net := testNetwork(t, 4, 75)
	reqs := testWorkload(t, 60, 4, 76)
	res := newBatchResult(reqs)
	used := make([]float64, net.NumStations())
	rng := rand.New(rand.NewSource(77))
	for start := 0; start < 60; start += 15 {
		active := make([]int, 15)
		for i := range active {
			active[i] = start + i
		}
		if _, err := ScheduleBatch(net, reqs, res, rng, BatchOptions{
			Active:     active,
			Used:       used,
			Distribute: true,
		}); err != nil {
			t.Fatal(err)
		}
		for i, u := range used {
			if u > net.Capacity(i)+1e-6 {
				t.Fatalf("after batch at %d: station %d over capacity (%v)", start, i, u)
			}
		}
	}
	workload.Reset(nil) // no-op guard: Reset must tolerate nil
}
