package core

import (
	"math"
	"math/rand"
	"testing"

	"mecoffload/internal/bandit"
	"mecoffload/internal/dist"
	"mecoffload/internal/lp"
	"mecoffload/internal/mec"
	"mecoffload/internal/topology"
	"mecoffload/internal/workload"
)

// metamorphicNet builds a network whose topology is reproducible from
// topoSeed and whose capacities and resource-slot size are scaled by s —
// the transformed twin of the s=1 network.
func metamorphicNet(t *testing.T, stations int, topoSeed int64, s float64) *mec.Network {
	t.Helper()
	topo, err := topology.Waxman(topology.Config{N: stations}, rand.New(rand.NewSource(topoSeed)))
	if err != nil {
		t.Fatal(err)
	}
	caps := rand.New(rand.NewSource(topoSeed + 1))
	bss := make([]mec.BaseStation, stations)
	for i := range bss {
		bss[i] = mec.BaseStation{
			CapacityMHz: (3000 + 600*caps.Float64()) * s,
			SpeedFactor: 0.8 + 0.4*caps.Float64(),
		}
	}
	n, err := mec.NewNetwork(mec.NetworkConfig{
		Stations: bss,
		Topo:     topo,
		SlotMHz:  mec.DefaultSlotMHz * s,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// scaleDists returns shallow clones of the requests with every outcome's
// rate multiplied by rateScale and reward by rewardScale.
func scaleDists(t *testing.T, reqs []*mec.Request, rateScale, rewardScale float64) []*mec.Request {
	t.Helper()
	out := make([]*mec.Request, len(reqs))
	for j, r := range reqs {
		c := r.CloneShallow()
		outs := r.Dist.Outcomes()
		for k := range outs {
			outs[k].Rate *= rateScale
			outs[k].Reward *= rewardScale
		}
		d, err := dist.NewRateReward(outs)
		if err != nil {
			t.Fatalf("request %d: %v", j, err)
		}
		c.Dist = d
		out[j] = c
	}
	return out
}

// lpObjective builds and solves the full relaxation LP (Section IV-A)
// and returns its optimal objective.
func lpObjective(t *testing.T, n *mec.Network, reqs []*mec.Request) float64 {
	t.Helper()
	m, err := buildLP(n, reqs, lpOptions{})
	if err != nil {
		t.Fatalf("buildLP: %v", err)
	}
	sol, err := m.prob.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status %v, want optimal", sol.Status)
	}
	return sol.Objective
}

func relClose(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestLPObjectivePermutationInvariant: the relaxation's optimum cannot
// depend on the order requests are presented in — the LP is a set
// optimization, so permuting the request slice (re-identifying requests
// by position) must leave the objective unchanged.
func TestLPObjectivePermutationInvariant(t *testing.T) {
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	for k := 0; k < rounds; k++ {
		seed := int64(7000 + k)
		net := metamorphicNet(t, 3+k%3, seed, 1)
		reqs, err := workload.Generate(workload.Config{
			NumRequests: 12 + k%8,
			NumStations: net.NumStations(),
			RateSupport: 1 + k%4,
		}, rand.New(rand.NewSource(seed+2)))
		if err != nil {
			t.Fatal(err)
		}
		base := lpObjective(t, net, reqs)

		perm := rand.New(rand.NewSource(seed + 3)).Perm(len(reqs))
		shuffled := make([]*mec.Request, len(reqs))
		for to, from := range perm {
			c := reqs[from].CloneShallow()
			c.ID = to
			shuffled[to] = c
		}
		got := lpObjective(t, net, shuffled)
		if !relClose(base, got, 1e-6) {
			t.Fatalf("round %d: objective changed under permutation: %.9g vs %.9g", k, base, got)
		}
	}
}

// TestLPObjectiveScaleInvariant: multiplying every capacity, the
// resource-slot size, and every outcome rate by the same factor is a pure
// change of units on the resource axis — rewards are untouched, so the
// relaxation's optimum must not move.
func TestLPObjectiveScaleInvariant(t *testing.T) {
	rounds := 12
	if testing.Short() {
		rounds = 4
	}
	scales := []float64{0.5, 2, 3.5}
	for k := 0; k < rounds; k++ {
		seed := int64(7100 + k)
		stations := 3 + k%3
		net := metamorphicNet(t, stations, seed, 1)
		reqs, err := workload.Generate(workload.Config{
			NumRequests: 10 + k%6,
			NumStations: stations,
			RateSupport: 2 + k%3,
		}, rand.New(rand.NewSource(seed+2)))
		if err != nil {
			t.Fatal(err)
		}
		base := lpObjective(t, net, reqs)
		s := scales[k%len(scales)]
		scaledNet := metamorphicNet(t, stations, seed, s)
		scaledReqs := scaleDists(t, reqs, s, 1)
		got := lpObjective(t, scaledNet, scaledReqs)
		if !relClose(base, got, 1e-6) {
			t.Fatalf("round %d: objective changed under x%.1f resource rescale: %.9g vs %.9g", k, s, base, got)
		}
	}
}

// TestLPObjectiveRewardLinear: scaling every outcome reward by s scales
// the (linear) objective by exactly s while leaving feasibility alone.
func TestLPObjectiveRewardLinear(t *testing.T) {
	rounds := 12
	if testing.Short() {
		rounds = 4
	}
	for k := 0; k < rounds; k++ {
		seed := int64(7200 + k)
		stations := 3 + k%3
		net := metamorphicNet(t, stations, seed, 1)
		reqs, err := workload.Generate(workload.Config{
			NumRequests: 10 + k%6,
			NumStations: stations,
		}, rand.New(rand.NewSource(seed+2)))
		if err != nil {
			t.Fatal(err)
		}
		base := lpObjective(t, net, reqs)
		s := 1.5 + float64(k%4)
		got := lpObjective(t, net, scaleDists(t, reqs, 1, s))
		if !relClose(base*s, got, 1e-6) {
			t.Fatalf("round %d: objective not linear in rewards: %.9g * %.1f vs %.9g", k, base, s, got)
		}
	}
}

// TestDominatedArmNeverSurvives: an arm whose reward is strictly
// dominated (0 against the best arm's 1, zero noise) must be eliminated
// by successive elimination, and the dominating arm must stay active and
// be reported best.
func TestDominatedArmNeverSurvives(t *testing.T) {
	const arms, best, dominated = 8, 3, 6
	se, err := bandit.NewSuccessiveElimination(arms)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 600; round++ {
		arm := se.Select()
		reward := 0.0
		if arm == best {
			reward = 1.0
		}
		se.Update(arm, reward)
	}
	if se.Active(dominated) {
		t.Fatalf("dominated arm %d still active after 600 rounds (%d arms active)", dominated, se.NumActive())
	}
	if !se.Active(best) {
		t.Fatalf("dominating arm %d was eliminated", best)
	}
	if se.BestArm() != best {
		t.Fatalf("BestArm() = %d, want %d", se.BestArm(), best)
	}
}
