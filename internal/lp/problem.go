// Package lp implements a self-contained linear-programming toolkit: a
// problem builder, a two-phase revised-simplex solver for problems in the
// form
//
//	max/min c'x   subject to   a_i'x {<=, >=, =} b_i,   x >= 0,
//
// and a branch-and-bound wrapper for mixed-integer problems. It exists
// because the paper's algorithms (ILP-RM, the resource-slot-indexed LP
// relaxation, and LP-PT) all require an LP/ILP solver and the Go ecosystem
// offers none in the standard library.
//
// Scale notes: the relaxations solved here have a few hundred rows and up
// to tens of thousands of columns. The solver stores the constraint matrix
// in compressed-sparse-column form and maintains the basis inverse in
// product form (a periodically refactorized reference inverse plus an
// eta file of pivot updates), prices with devex partial pricing, and can
// warm-start from a previous solution's basis (Solution.Basis and
// SolveOptions.WarmStart) — the right trade-offs at that shape (m << n)
// and for the sequences of slightly-perturbed LPs the per-slot online
// algorithms generate.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects the optimization direction of a problem.
type Sense int

// Optimization directions.
const (
	Minimize Sense = iota + 1
	Maximize
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota + 1 // <=
	GE               // >=
	EQ               // =
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Status describes the outcome of a solve.
type Status int

// Solve outcomes.
const (
	StatusOptimal Status = iota + 1
	StatusInfeasible
	StatusUnbounded
	StatusIterLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Errors returned by the builder and solver.
var (
	ErrBadVariable   = errors.New("lp: invalid variable")
	ErrBadCoef       = errors.New("lp: invalid coefficient")
	ErrNoVariables   = errors.New("lp: problem has no variables")
	ErrNotSolved     = errors.New("lp: problem not solved to optimality")
	ErrNonIntegrable = errors.New("lp: integer variable required")
)

// Var is an opaque handle to a problem variable.
type Var int

// Term is one coefficient in a linear constraint.
type Term struct {
	Var  Var
	Coef float64
}

// column holds the builder-side description of one variable. The name
// hash is precomputed at build time so warm-basis resolution never has to
// hash thousands of column names inside a solve.
type column struct {
	name    string
	hash    uint64
	obj     float64
	integer bool
	entries []entry // filled when constraints reference the column
}

// entry is one nonzero of the sparse column.
type entry struct {
	row  int
	coef float64
}

// row holds one constraint.
type row struct {
	name string
	hash uint64
	op   Op
	rhs  float64
}

// nameHash is FNV-1a, fixed here (rather than hash/fnv) to keep the hot
// path allocation free.
func nameHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Problem is a linear (or mixed-integer) program under construction. All
// variables are implicitly bounded below by zero. Create with NewProblem,
// then add variables and constraints, then call Solve or SolveInteger.
// A Problem is not safe for concurrent mutation.
type Problem struct {
	sense Sense
	cols  []column
	rows  []row
}

// NewProblem returns an empty problem with the given optimization sense.
func NewProblem(sense Sense) *Problem {
	if sense != Minimize && sense != Maximize {
		sense = Minimize
	}
	return &Problem{sense: sense}
}

// Sense returns the optimization direction.
func (p *Problem) Sense() Sense { return p.sense }

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.cols) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// AddVariable adds a continuous variable x >= 0 with the given objective
// coefficient and returns its handle.
func (p *Problem) AddVariable(name string, obj float64) Var {
	p.cols = append(p.cols, column{name: name, hash: nameHash(name), obj: obj})
	return Var(len(p.cols) - 1)
}

// AddIntegerVariable adds an integer variable x >= 0 (branched on by
// SolveInteger; treated as continuous by Solve).
func (p *Problem) AddIntegerVariable(name string, obj float64) Var {
	p.cols = append(p.cols, column{name: name, hash: nameHash(name), obj: obj, integer: true})
	return Var(len(p.cols) - 1)
}

// AddConstraint adds the constraint sum(terms) op rhs. Terms referencing
// the same variable are accumulated. Returns the constraint index.
func (p *Problem) AddConstraint(name string, op Op, rhs float64, terms ...Term) (int, error) {
	if op != LE && op != GE && op != EQ {
		return 0, fmt.Errorf("lp: invalid op %v", op)
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return 0, fmt.Errorf("%w: rhs %v", ErrBadCoef, rhs)
	}
	r := len(p.rows)
	p.rows = append(p.rows, row{name: name, hash: nameHash(name), op: op, rhs: rhs})
	// Accumulate duplicate variables within the same constraint.
	acc := make(map[Var]float64, len(terms))
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(p.cols) {
			p.rows = p.rows[:r]
			return 0, fmt.Errorf("%w: %d", ErrBadVariable, t.Var)
		}
		if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
			p.rows = p.rows[:r]
			return 0, fmt.Errorf("%w: %v on var %d", ErrBadCoef, t.Coef, t.Var)
		}
		acc[t.Var] += t.Coef
	}
	for v, c := range acc {
		if c == 0 {
			continue
		}
		p.cols[v].entries = append(p.cols[v].entries, entry{row: r, coef: c})
	}
	return r, nil
}

// Solution holds the result of a solve.
type Solution struct {
	// Status reports how the solve terminated. X and Objective are only
	// meaningful for StatusOptimal.
	Status Status
	// Objective is the optimal objective value in the problem's original
	// sense.
	Objective float64
	// X holds the value of each variable, indexed by Var.
	X []float64
	// Iterations counts simplex pivots across both phases (and, for
	// integer solves, across all branch-and-bound nodes).
	Iterations int
	// Nodes counts branch-and-bound nodes explored (1 for pure LPs).
	Nodes int
	// Dual holds the optimal dual value (shadow price) of each
	// constraint: Dual[i] = dObjective/d rhs_i. Only set for continuous
	// solves that reach StatusOptimal; nil for integer solves.
	Dual []float64
	// Basis is the optimal basis, usable as SolveOptions.WarmStart for a
	// subsequent structurally similar solve (the next time slot's LP-PT,
	// the next rounding pass, a branch-and-bound child). Only set for
	// continuous solves that reach StatusOptimal.
	Basis *Basis
}

// DualOf returns the shadow price of constraint row (0 when unavailable).
func (s *Solution) DualOf(row int) float64 {
	if s == nil || row < 0 || row >= len(s.Dual) {
		return 0
	}
	return s.Dual[row]
}

// Value returns the solved value of v.
func (s *Solution) Value(v Var) float64 {
	if s == nil || int(v) < 0 || int(v) >= len(s.X) {
		return 0
	}
	return s.X[v]
}
