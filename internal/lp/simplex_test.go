package lp

import (
	"math"
	"math/rand"
	"testing"
)

const tol = 1e-6

func almostEq(a, b float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestSolveSimpleMax(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x, y >= 0. Optimum at
	// (4, 0) with objective 12.
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 3)
	y := p.AddVariable("y", 2)
	mustConstraint(t, p, "c1", LE, 4, Term{x, 1}, Term{y, 1})
	mustConstraint(t, p, "c2", LE, 6, Term{x, 1}, Term{y, 3})
	sol := mustOptimal(t, p)
	if !almostEq(sol.Objective, 12) {
		t.Fatalf("objective = %v, want 12", sol.Objective)
	}
	if !almostEq(sol.Value(x), 4) || !almostEq(sol.Value(y), 0) {
		t.Fatalf("x=%v y=%v, want (4, 0)", sol.Value(x), sol.Value(y))
	}
}

func TestSolveSimpleMin(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x <= 6. Optimum x=6, y=4 -> 24.
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 2)
	y := p.AddVariable("y", 3)
	mustConstraint(t, p, "cover", GE, 10, Term{x, 1}, Term{y, 1})
	mustConstraint(t, p, "capx", LE, 6, Term{x, 1})
	sol := mustOptimal(t, p)
	if !almostEq(sol.Objective, 24) {
		t.Fatalf("objective = %v, want 24", sol.Objective)
	}
}

func TestSolveEquality(t *testing.T) {
	// max x + y s.t. x + 2y = 8, x <= 4. Optimum x=4, y=2 -> 6.
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 1)
	y := p.AddVariable("y", 1)
	mustConstraint(t, p, "eq", EQ, 8, Term{x, 1}, Term{y, 2})
	mustConstraint(t, p, "cap", LE, 4, Term{x, 1})
	sol := mustOptimal(t, p)
	if !almostEq(sol.Objective, 6) {
		t.Fatalf("objective = %v, want 6", sol.Objective)
	}
	if !almostEq(sol.Value(x), 4) || !almostEq(sol.Value(y), 2) {
		t.Fatalf("got x=%v y=%v, want (4, 2)", sol.Value(x), sol.Value(y))
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -5 (i.e. x >= 5).
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 1)
	mustConstraint(t, p, "neg", LE, -5, Term{x, -1})
	sol := mustOptimal(t, p)
	if !almostEq(sol.Objective, 5) {
		t.Fatalf("objective = %v, want 5", sol.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 1)
	mustConstraint(t, p, "lo", GE, 5, Term{x, 1})
	mustConstraint(t, p, "hi", LE, 3, Term{x, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 1)
	y := p.AddVariable("y", 0)
	mustConstraint(t, p, "c", LE, 4, Term{y, 1})
	_ = x
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// A classic degenerate LP; must not cycle.
	p := NewProblem(Maximize)
	x1 := p.AddVariable("x1", 10)
	x2 := p.AddVariable("x2", -57)
	x3 := p.AddVariable("x3", -9)
	x4 := p.AddVariable("x4", -24)
	mustConstraint(t, p, "c1", LE, 0, Term{x1, 0.5}, Term{x2, -5.5}, Term{x3, -2.5}, Term{x4, 9})
	mustConstraint(t, p, "c2", LE, 0, Term{x1, 0.5}, Term{x2, -1.5}, Term{x3, -0.5}, Term{x4, 1})
	mustConstraint(t, p, "c3", LE, 1, Term{x1, 1})
	sol := mustOptimal(t, p)
	if !almostEq(sol.Objective, 1) {
		t.Fatalf("objective = %v, want 1", sol.Objective)
	}
}

func TestSolveNoVariables(t *testing.T) {
	p := NewProblem(Maximize)
	if _, err := p.Solve(); err == nil {
		t.Fatal("want error for empty problem")
	}
}

func TestConstraintValidation(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 1)
	if _, err := p.AddConstraint("bad-var", LE, 1, Term{Var(99), 1}); err == nil {
		t.Error("want error for unknown variable")
	}
	if _, err := p.AddConstraint("bad-rhs", LE, math.NaN(), Term{x, 1}); err == nil {
		t.Error("want error for NaN rhs")
	}
	if _, err := p.AddConstraint("bad-coef", LE, 1, Term{x, math.Inf(1)}); err == nil {
		t.Error("want error for infinite coefficient")
	}
	if p.NumConstraints() != 0 {
		t.Errorf("failed constraints must not persist, have %d", p.NumConstraints())
	}
}

func TestDuplicateTermsAccumulate(t *testing.T) {
	// max x s.t. x + x <= 4 => x = 2.
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 1)
	mustConstraint(t, p, "dup", LE, 4, Term{x, 1}, Term{x, 1})
	sol := mustOptimal(t, p)
	if !almostEq(sol.Value(x), 2) {
		t.Fatalf("x = %v, want 2", sol.Value(x))
	}
}

// TestSolveAgainstBruteForce cross-checks the simplex optimum against
// brute-force enumeration of all basic solutions on random small LPs with
// inequality constraints: max c'x st Ax <= b, x >= 0 with b >= 0 (always
// feasible at x=0, bounded by construction).
func TestSolveAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(3) // variables
		m := 2 + rng.Intn(3) // constraints
		c := make([]float64, n)
		for j := range c {
			c[j] = math.Round(rng.Float64()*20-5) / 2
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				// Strictly positive coefficients keep the polytope bounded.
				a[i][j] = math.Round(rng.Float64()*9+1) / 2
			}
			b[i] = math.Round(rng.Float64()*20+1) / 2
		}

		p := NewProblem(Maximize)
		vars := make([]Var, n)
		for j := range vars {
			vars[j] = p.AddVariable("x", c[j])
		}
		for i := range a {
			terms := make([]Term, n)
			for j := range terms {
				terms[j] = Term{vars[j], a[i][j]}
			}
			mustConstraint(t, p, "c", LE, b[i], terms...)
		}
		sol := mustOptimal(t, p)

		want := bruteForceMax(c, a, b)
		if !almostEq(sol.Objective, want) {
			t.Fatalf("trial %d: simplex %v != brute force %v (c=%v a=%v b=%v)",
				trial, sol.Objective, want, c, a, b)
		}
	}
}

// hyperplane is one defining hyperplane row.x = rhs of the test polytope.
type hyperplane struct {
	row []float64
	rhs float64
}

// bruteForceMax enumerates all vertices of {Ax <= b, x >= 0} by solving
// every n-subset of the m+n defining hyperplanes and returns the best
// feasible objective. Assumes the region is bounded and x=0 feasible.
func bruteForceMax(c []float64, a [][]float64, b []float64) float64 {
	n := len(c)
	m := len(a)
	hps := make([]hyperplane, 0, m+n)
	for i := 0; i < m; i++ {
		hps = append(hps, hyperplane{row: a[i], rhs: b[i]})
	}
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		row[j] = 1
		hps = append(hps, hyperplane{row: row, rhs: 0})
	}
	best := 0.0 // x = 0 is feasible
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x, ok := solveSquare(hps, idx, n)
			if !ok {
				return
			}
			// Feasibility.
			for j := 0; j < n; j++ {
				if x[j] < -1e-7 {
					return
				}
			}
			for i := 0; i < m; i++ {
				lhs := 0.0
				for j := 0; j < n; j++ {
					lhs += a[i][j] * x[j]
				}
				if lhs > b[i]+1e-7 {
					return
				}
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				obj += c[j] * x[j]
			}
			if obj > best {
				best = obj
			}
			return
		}
		for i := start; i < len(hps); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best
}

// solveSquare solves the n x n system picked out by idx with Gaussian
// elimination; ok=false for singular systems.
func solveSquare(hps []hyperplane, idx []int, n int) ([]float64, bool) {
	mat := make([][]float64, n)
	for i := 0; i < n; i++ {
		mat[i] = make([]float64, n+1)
		copy(mat[i], hps[idx[i]].row)
		mat[i][n] = hps[idx[i]].rhs
	}
	for col := 0; col < n; col++ {
		piv := -1
		for r := col; r < n; r++ {
			if math.Abs(mat[r][col]) > 1e-9 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil, false
		}
		mat[col], mat[piv] = mat[piv], mat[col]
		inv := 1 / mat[col][col]
		for k := col; k <= n; k++ {
			mat[col][k] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col || mat[r][col] == 0 {
				continue
			}
			f := mat[r][col]
			for k := col; k <= n; k++ {
				mat[r][k] -= f * mat[col][k]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = mat[i][n]
	}
	return x, true
}

func mustConstraint(t *testing.T, p *Problem, name string, op Op, rhs float64, terms ...Term) {
	t.Helper()
	if _, err := p.AddConstraint(name, op, rhs, terms...); err != nil {
		t.Fatalf("AddConstraint(%s): %v", name, err)
	}
}

func mustOptimal(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestIterationLimit(t *testing.T) {
	// A modest LP with a 1-iteration budget must report the limit rather
	// than a wrong answer.
	p := NewProblem(Maximize)
	vars := make([]Var, 6)
	for i := range vars {
		vars[i] = p.AddVariable("x", float64(i+1))
		mustConstraint(t, p, "ub", LE, 1, Term{vars[i], 1})
	}
	terms := make([]Term, len(vars))
	for i := range terms {
		terms[i] = Term{vars[i], 1}
	}
	mustConstraint(t, p, "sum", LE, 3, terms...)
	sol, err := p.SolveWithOptions(SolveOptions{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusIterLimit && sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Linearly dependent equalities leave a zero-value artificial stuck in
	// the basis; purgeArtificials must cope and phase 2 must still find
	// the optimum. max x + y s.t. x + y = 2 (twice), x <= 1.5.
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 1)
	y := p.AddVariable("y", 1)
	mustConstraint(t, p, "eq1", EQ, 2, Term{x, 1}, Term{y, 1})
	mustConstraint(t, p, "eq2", EQ, 2, Term{x, 1}, Term{y, 1})
	mustConstraint(t, p, "ub", LE, 1.5, Term{x, 1})
	sol := mustOptimal(t, p)
	if !almostEq(sol.Objective, 2) {
		t.Fatalf("objective %v, want 2", sol.Objective)
	}
}

func TestContradictoryEqualities(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 1)
	mustConstraint(t, p, "eq1", EQ, 2, Term{x, 1})
	mustConstraint(t, p, "eq2", EQ, 3, Term{x, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestManyVariablesPartialPricing(t *testing.T) {
	// Thousands of columns exercise the partial-pricing path; the optimum
	// of this separable problem is known in closed form.
	p := NewProblem(Maximize)
	const n = 3000
	terms := make([]Term, n)
	for i := 0; i < n; i++ {
		v := p.AddVariable("x", 1+float64(i%7))
		terms[i] = Term{v, 1}
	}
	mustConstraint(t, p, "budget", LE, 10, terms...)
	sol := mustOptimal(t, p)
	// Best coefficient is 7 (i%7 == 6): put all 10 units there.
	if !almostEq(sol.Objective, 70) {
		t.Fatalf("objective %v, want 70", sol.Objective)
	}
}

func TestZeroCoefficientTermsDropped(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 1)
	y := p.AddVariable("y", 1)
	// y's coefficient cancels to zero; the row must constrain only x.
	mustConstraint(t, p, "c", LE, 2, Term{x, 1}, Term{y, 1}, Term{y, -1})
	mustConstraint(t, p, "uy", LE, 5, Term{y, 1})
	sol := mustOptimal(t, p)
	if !almostEq(sol.Value(x), 2) || !almostEq(sol.Value(y), 5) {
		t.Fatalf("x=%v y=%v, want (2, 5)", sol.Value(x), sol.Value(y))
	}
}
