package lp

import (
	"fmt"
	"math"
	"sort"
)

// intTol is the tolerance within which a value counts as integral.
const intTol = 1e-6

// bbNode is one branch-and-bound subproblem: a set of extra bound
// constraints (var <= floor or var >= ceil) layered on the root problem.
type bbNode struct {
	// bound is the parent LP objective, used for best-first ordering and
	// pruning (an upper bound for maximization).
	bound  float64
	floors map[Var]float64 // v <= value
	ceils  map[Var]float64 // v >= value
	depth  int
	// warm is the parent node's optimal basis: the child LP differs by a
	// single bound row, so seeding from it typically re-solves in a few
	// pivots (and falls back to a cold start when the new bound makes
	// the parent basis primal infeasible).
	warm *Basis
}

// IntegerOptions tunes SolveInteger.
type IntegerOptions struct {
	// MaxNodes caps explored branch-and-bound nodes; zero means 100000.
	MaxNodes int
	// RelativeGap prunes nodes whose LP bound improves on the incumbent
	// by less than this fraction, trading exactness for tractability on
	// tie-heavy instances (zero = prove optimality exactly).
	RelativeGap float64
	// LP carries per-node simplex options.
	LP SolveOptions
}

// SolveInteger optimizes the problem with all variables added via
// AddIntegerVariable restricted to integer values, using LP-based branch
// and bound with best-first node selection. At least one integer variable
// must exist.
func (p *Problem) SolveInteger() (*Solution, error) {
	return p.SolveIntegerWithOptions(IntegerOptions{})
}

// SolveIntegerWithOptions is SolveInteger with explicit tuning.
func (p *Problem) SolveIntegerWithOptions(opts IntegerOptions) (*Solution, error) {
	intVars := make([]Var, 0, len(p.cols))
	for j, c := range p.cols {
		if c.integer {
			intVars = append(intVars, Var(j))
		}
	}
	if len(intVars) == 0 {
		return nil, ErrNonIntegrable
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 100000
	}

	maximize := p.sense == Maximize
	better := func(a, b float64) bool {
		if maximize {
			return a > b
		}
		return a < b
	}

	var (
		incumbent    *Solution
		totalIters   int
		nodesVisited int
	)
	// pruneBound inflates the incumbent objective by the gap tolerance:
	// nodes not beating it are cut.
	pruneBound := func() float64 {
		b := incumbent.Objective
		slack := opts.RelativeGap * math.Abs(b)
		if maximize {
			return b + slack
		}
		return b - slack
	}
	root := &bbNode{depth: 0}
	if maximize {
		root.bound = math.Inf(1)
	} else {
		root.bound = math.Inf(-1)
	}
	open := []*bbNode{root}

	for len(open) > 0 && nodesVisited < maxNodes {
		// Best-first: pop the node with the most promising parent bound.
		best := 0
		for i := 1; i < len(open); i++ {
			if better(open[i].bound, open[best].bound) {
				best = i
			}
		}
		node := open[best]
		open[best] = open[len(open)-1]
		open = open[:len(open)-1]
		nodesVisited++

		// Prune against the incumbent (plus gap tolerance) before solving.
		if incumbent != nil && !better(node.bound, pruneBound()) {
			continue
		}

		sol, err := p.solveNode(node, opts.LP)
		if err != nil {
			return nil, err
		}
		totalIters += sol.Iterations
		if sol.Status == StatusUnbounded {
			// An unbounded relaxation at the root means the MIP is
			// unbounded (or infeasible); report it directly.
			sol.Nodes = nodesVisited
			sol.Iterations = totalIters
			return sol, nil
		}
		if sol.Status != StatusOptimal {
			continue
		}
		// Primal heuristic: flooring the node solution's integer variables
		// often yields a globally feasible integral point (always, for
		// pure packing constraints), giving an incumbent early so pruning
		// can bite. Feasibility is verified against the original rows.
		if cand := p.floorCandidate(sol, intVars); cand != nil {
			if incumbent == nil || better(cand.Objective, incumbent.Objective) {
				incumbent = cand
			}
		}
		if incumbent != nil && !better(sol.Objective, pruneBound()) {
			continue
		}

		// Most-fractional branching variable.
		branch := Var(-1)
		worst := intTol
		for _, v := range intVars {
			x := sol.X[v]
			frac := math.Abs(x - math.Round(x))
			if frac > worst {
				worst = frac
				branch = v
			}
		}
		if branch < 0 {
			// Integral: new incumbent. Duals of the node LP are not
			// meaningful for the integer program.
			snapshot := *sol
			snapshot.Dual = nil
			snapshot.X = append([]float64(nil), sol.X...)
			for _, v := range intVars {
				snapshot.X[v] = math.Round(snapshot.X[v])
			}
			incumbent = &snapshot
			continue
		}

		x := sol.X[branch]
		lo, hi := math.Floor(x), math.Ceil(x)
		down := &bbNode{
			bound:  sol.Objective,
			floors: cloneBounds(node.floors),
			ceils:  cloneBounds(node.ceils),
			depth:  node.depth + 1,
			warm:   sol.Basis,
		}
		if cur, ok := down.floors[branch]; !ok || lo < cur {
			down.floors[branch] = lo
		}
		up := &bbNode{
			bound:  sol.Objective,
			floors: cloneBounds(node.floors),
			ceils:  cloneBounds(node.ceils),
			depth:  node.depth + 1,
			warm:   sol.Basis,
		}
		if cur, ok := up.ceils[branch]; !ok || hi > cur {
			up.ceils[branch] = hi
		}
		open = append(open, down, up)
	}

	if incumbent == nil {
		// Distinguish a proven-infeasible program (open set exhausted)
		// from an exhausted node budget.
		status := StatusInfeasible
		if len(open) > 0 {
			status = StatusIterLimit
		}
		return &Solution{Status: status, Iterations: totalIters, Nodes: nodesVisited}, nil
	}
	incumbent.Iterations = totalIters
	incumbent.Nodes = nodesVisited
	return incumbent, nil
}

// floorCandidate rounds the integer variables of a node LP solution down
// (after snapping near-integral values) and returns it as a candidate
// incumbent when it satisfies every original constraint; nil otherwise.
func (p *Problem) floorCandidate(sol *Solution, intVars []Var) *Solution {
	x := append([]float64(nil), sol.X...)
	for _, v := range intVars {
		x[v] = math.Floor(x[v] + intTol)
		if x[v] < 0 {
			x[v] = 0
		}
	}
	// Verify feasibility row by row.
	lhs := make([]float64, len(p.rows))
	for j := range p.cols {
		if x[j] == 0 {
			continue
		}
		for _, e := range p.cols[j].entries {
			lhs[e.row] += e.coef * x[j]
		}
	}
	for i, r := range p.rows {
		switch r.op {
		case LE:
			if lhs[i] > r.rhs+feasTol {
				return nil
			}
		case GE:
			if lhs[i] < r.rhs-feasTol {
				return nil
			}
		case EQ:
			if math.Abs(lhs[i]-r.rhs) > feasTol {
				return nil
			}
		}
	}
	obj := 0.0
	for j := range p.cols {
		obj += p.cols[j].obj * x[j]
	}
	return &Solution{Status: StatusOptimal, Objective: obj, X: x}
}

// solveNode solves the LP relaxation of the root problem plus the node's
// branching bounds. The bounds are appended as temporary constraints and
// removed afterwards.
func (p *Problem) solveNode(node *bbNode, opts SolveOptions) (*Solution, error) {
	nRows := len(p.rows)
	defer func() {
		// Roll back the temporary rows and their column entries.
		p.rows = p.rows[:nRows]
		for j := range p.cols {
			es := p.cols[j].entries
			k := len(es)
			for k > 0 && es[k-1].row >= nRows {
				k--
			}
			p.cols[j].entries = es[:k]
		}
	}()

	// Deterministic iteration order keeps solves reproducible.
	for _, v := range sortedVars(node.floors) {
		if _, err := p.AddConstraint(fmt.Sprintf("bb-le-%d", v), LE, node.floors[v], Term{Var: v, Coef: 1}); err != nil {
			return nil, err
		}
	}
	for _, v := range sortedVars(node.ceils) {
		if _, err := p.AddConstraint(fmt.Sprintf("bb-ge-%d", v), GE, node.ceils[v], Term{Var: v, Coef: 1}); err != nil {
			return nil, err
		}
	}
	// Seed the child LP from the parent's optimal basis; the solver
	// discards it automatically if the new branching bound cuts it off.
	// The root node keeps any caller-provided warm start.
	if node.warm != nil {
		opts.WarmStart = node.warm
	}
	return p.SolveWithOptions(opts)
}

func cloneBounds(m map[Var]float64) map[Var]float64 {
	out := make(map[Var]float64, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sortedVars(m map[Var]float64) []Var {
	vs := make([]Var, 0, len(m))
	for v := range m {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}
