package lp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrParse reports malformed LP text input.
var ErrParse = errors.New("lp: parse error")

// ParsedProblem couples a parsed Problem with its variable names.
type ParsedProblem struct {
	// Problem is ready to Solve (or SolveInteger when integer variables
	// were declared).
	Problem *Problem
	// Names maps Var indices to source names.
	Names []string
	// RowNames maps constraint indices to source labels.
	RowNames []string
	// HasInteger reports whether any "int" declaration appeared.
	HasInteger bool
}

// VarByName returns the handle of a named variable.
func (pp *ParsedProblem) VarByName(name string) (Var, bool) {
	for i, n := range pp.Names {
		if n == name {
			return Var(i), true
		}
	}
	return 0, false
}

// Parse reads a linear program in a small text format:
//
//	# comment
//	max: 3 x + 2 y
//	c1: x + y <= 4
//	c2: x + 3 y <= 6
//	int x
//
// The first directive line must be "max:" or "min:" followed by a linear
// expression. Each constraint line is "label: expr OP rhs" with OP one of
// <=, >=, =. An optional "int" line lists integer variables. Variables are
// implicitly >= 0, coefficients may use "*" (e.g. "3*x"), and unnamed
// coefficients default to 1.
func Parse(r io.Reader) (*ParsedProblem, error) {
	scanner := bufio.NewScanner(r)
	var prob *Problem
	pp := &ParsedProblem{}
	varIdx := map[string]Var{}
	// Integer declarations can precede variable use, so collect names and
	// apply at the end via rebuild. Simpler: collect objective/constraint
	// lines first, int names separately, then build.
	type rawRow struct {
		label string
		expr  string
		op    Op
		rhs   float64
	}
	var (
		objExpr  string
		sense    Sense
		rows     []rawRow
		intNames = map[string]bool{}
		lineNo   int
		sawObj   bool
	)

	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		lower := strings.ToLower(line)
		switch {
		case strings.HasPrefix(lower, "max:"), strings.HasPrefix(lower, "min:"):
			if sawObj {
				return nil, fmt.Errorf("%w: line %d: duplicate objective", ErrParse, lineNo)
			}
			sawObj = true
			if strings.HasPrefix(lower, "max:") {
				sense = Maximize
			} else {
				sense = Minimize
			}
			objExpr = strings.TrimSpace(line[4:])
		case strings.HasPrefix(lower, "int "), lower == "int":
			for _, name := range strings.Fields(line)[1:] {
				intNames[name] = true
			}
		default:
			colon := strings.Index(line, ":")
			if colon < 0 {
				return nil, fmt.Errorf("%w: line %d: expected 'label: expr op rhs'", ErrParse, lineNo)
			}
			label := strings.TrimSpace(line[:colon])
			body := strings.TrimSpace(line[colon+1:])
			op, lhs, rhsStr, err := splitConstraint(body)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrParse, lineNo, err)
			}
			rhs, err := strconv.ParseFloat(strings.TrimSpace(rhsStr), 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad rhs %q", ErrParse, lineNo, rhsStr)
			}
			rows = append(rows, rawRow{label: label, expr: lhs, op: op, rhs: rhs})
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if !sawObj {
		return nil, fmt.Errorf("%w: missing objective (max:/min:)", ErrParse)
	}

	prob = NewProblem(sense)
	getVar := func(name string, obj float64) Var {
		if v, ok := varIdx[name]; ok {
			return v
		}
		var v Var
		if intNames[name] {
			v = prob.AddIntegerVariable(name, 0)
		} else {
			v = prob.AddVariable(name, 0)
		}
		varIdx[name] = v
		pp.Names = append(pp.Names, name)
		_ = obj
		return v
	}

	objTerms, err := parseExpr(objExpr, getVar)
	if err != nil {
		return nil, fmt.Errorf("%w: objective: %v", ErrParse, err)
	}
	// Objective coefficients must be set on the columns; rebuild via a
	// dedicated pass (AddVariable fixed obj=0 above).
	for _, t := range objTerms {
		prob.cols[t.Var].obj += t.Coef
	}

	for _, rr := range rows {
		terms, err := parseExpr(rr.expr, getVar)
		if err != nil {
			return nil, fmt.Errorf("%w: constraint %q: %v", ErrParse, rr.label, err)
		}
		if _, err := prob.AddConstraint(rr.label, rr.op, rr.rhs, terms...); err != nil {
			return nil, err
		}
		pp.RowNames = append(pp.RowNames, rr.label)
	}
	// Integer names that never appeared still become variables so the
	// declaration is not silently dropped.
	for name := range intNames {
		getVar(name, 0)
	}
	pp.Problem = prob
	pp.HasInteger = len(intNames) > 0
	return pp, nil
}

// splitConstraint separates "expr OP rhs".
func splitConstraint(body string) (Op, string, string, error) {
	for _, cand := range []struct {
		tok string
		op  Op
	}{{"<=", LE}, {">=", GE}, {"=", EQ}} {
		if i := strings.Index(body, cand.tok); i >= 0 {
			return cand.op, strings.TrimSpace(body[:i]), body[i+len(cand.tok):], nil
		}
	}
	return 0, "", "", errors.New("no comparison operator")
}

// parseExpr parses "3 x + 2*y - z" into terms.
func parseExpr(expr string, getVar func(string, float64) Var) ([]Term, error) {
	expr = strings.ReplaceAll(expr, "*", " ")
	expr = strings.ReplaceAll(expr, "+", " + ")
	expr = strings.ReplaceAll(expr, "-", " - ")
	fields := strings.Fields(expr)
	if len(fields) == 0 {
		return nil, errors.New("empty expression")
	}
	var terms []Term
	sign := 1.0
	coef := 1.0
	haveCoef := false
	flush := func(name string) {
		terms = append(terms, Term{Var: getVar(name, 0), Coef: sign * coef})
		sign, coef, haveCoef = 1, 1, false
	}
	for _, f := range fields {
		switch f {
		case "+":
			// sign already consumed into the next term
		case "-":
			sign = -sign
		default:
			if v, err := strconv.ParseFloat(f, 64); err == nil {
				if haveCoef {
					return nil, fmt.Errorf("two consecutive numbers near %q", f)
				}
				coef = v
				haveCoef = true
				continue
			}
			if !isIdent(f) {
				return nil, fmt.Errorf("bad token %q", f)
			}
			flush(f)
		}
	}
	if haveCoef {
		return nil, errors.New("dangling coefficient")
	}
	return terms, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
