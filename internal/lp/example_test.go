package lp_test

import (
	"fmt"
	"strings"

	"mecoffload/internal/lp"
)

// Example solves a small production-planning LP and reads the optimum and
// shadow prices.
func Example() {
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVariable("x", 3)
	y := p.AddVariable("y", 2)
	if _, err := p.AddConstraint("machine", lp.LE, 4, lp.Term{Var: x, Coef: 1}, lp.Term{Var: y, Coef: 1}); err != nil {
		panic(err)
	}
	if _, err := p.AddConstraint("labor", lp.LE, 6, lp.Term{Var: x, Coef: 1}, lp.Term{Var: y, Coef: 3}); err != nil {
		panic(err)
	}
	sol, err := p.Solve()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s obj=%g x=%g y=%g machine-price=%g\n",
		sol.Status, sol.Objective, sol.Value(x), sol.Value(y), sol.DualOf(0))
	// Output: optimal obj=12 x=4 y=0 machine-price=3
}

// ExampleProblem_SolveInteger solves a 0/1 knapsack exactly.
func ExampleProblem_SolveInteger() {
	p := lp.NewProblem(lp.Maximize)
	items := []struct{ value, weight float64 }{{60, 10}, {100, 20}, {120, 30}}
	terms := make([]lp.Term, len(items))
	for i, it := range items {
		v := p.AddIntegerVariable(fmt.Sprintf("x%d", i), it.value)
		terms[i] = lp.Term{Var: v, Coef: it.weight}
		if _, err := p.AddConstraint("ub", lp.LE, 1, lp.Term{Var: v, Coef: 1}); err != nil {
			panic(err)
		}
	}
	if _, err := p.AddConstraint("capacity", lp.LE, 50, terms...); err != nil {
		panic(err)
	}
	sol, err := p.SolveInteger()
	if err != nil {
		panic(err)
	}
	fmt.Printf("best value %g\n", sol.Objective)
	// Output: best value 220
}

// ExampleParse reads the LP text format.
func ExampleParse() {
	src := `
max: 5 a + 4 b
c1: 6 a + 4 b <= 24
c2: a + 2 b <= 6
`
	pp, err := lp.Parse(strings.NewReader(src))
	if err != nil {
		panic(err)
	}
	sol, err := pp.Problem.Solve()
	if err != nil {
		panic(err)
	}
	fmt.Printf("obj=%g\n", sol.Objective)
	// Output: obj=21
}
