package lp

import (
	"strings"
	"testing"
)

// FuzzParse hardens the LP text parser: arbitrary input must either parse
// into a well-formed problem or return an error — never panic — and
// parsed problems must solve without crashing.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"max: 3 x + 2 y\nc1: x + y <= 4\nc2: x + 3 y <= 6\n",
		"min: x\nlo: x >= 5\n",
		"max: x\neq: x = 2\nint x\n",
		"# comment\nmax: 2*a - b\nr: a - b <= 1\n",
		"max: x\n",
		"max: 3 4 x\n",
		"nonsense",
		"max: x\nc: x <= 1e9\n",
		"min: -x\nc: -x >= -3\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		pp, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if pp.Problem == nil || pp.Problem.NumVars() == 0 {
			return
		}
		// Cap solver effort: fuzz inputs can encode unbounded or huge
		// problems; we only assert absence of panics and status sanity.
		sol, err := pp.Problem.SolveWithOptions(SolveOptions{MaxIterations: 2000})
		if err != nil {
			t.Fatalf("Solve returned error for parsed problem: %v", err)
		}
		switch sol.Status {
		case StatusOptimal, StatusInfeasible, StatusUnbounded, StatusIterLimit:
		default:
			t.Fatalf("unknown status %v", sol.Status)
		}
	})
}
