package lp

// Presolve: detect variables fixed to zero by singleton rows and solve a
// reduced problem without them. Branch and bound generates exactly this
// row shape in bulk (the down-branch "x <= 0" bound rows of 0/1
// programs), so eliminating the columns up front shrinks every node LP.

// detectFixedZero scans for singleton rows that pin a variable to zero:
//
//	a*x <= 0 with a > 0,   a*x >= 0 with a < 0,   a*x = 0 with a != 0,
//
// (x >= 0 supplies the other side). It returns the fixed mask and count.
func (p *Problem) detectFixedZero() ([]bool, int) {
	// Only zero-rhs rows can pin; without any, skip the nonzero scan (the
	// common case for the per-slot relaxations, which solve in sequence and
	// should not pay a full matrix pass each for a B&B-only shape).
	any := false
	for i := range p.rows {
		if r := p.rows[i].rhs; r <= feasTol && r >= -feasTol {
			any = true
			break
		}
	}
	if !any {
		return nil, 0
	}
	type rowAgg struct {
		nnz  int
		col  int
		coef float64
	}
	rows := make([]rowAgg, len(p.rows))
	for j := range p.cols {
		for _, e := range p.cols[j].entries {
			r := &rows[e.row]
			r.nnz++
			r.col = j
			r.coef = e.coef
		}
	}
	fixed := make([]bool, len(p.cols))
	n := 0
	for i, agg := range rows {
		if agg.nnz != 1 || fixed[agg.col] {
			continue
		}
		rhs, op := p.rows[i].rhs, p.rows[i].op
		pin := false
		switch op {
		case LE:
			pin = agg.coef > 0 && rhs <= feasTol && rhs >= -feasTol
		case GE:
			pin = agg.coef < 0 && rhs <= feasTol && rhs >= -feasTol
		case EQ:
			pin = agg.coef != 0 && rhs <= feasTol && rhs >= -feasTol
		}
		if pin {
			fixed[agg.col] = true
			n++
		}
	}
	return fixed, n
}

// solveReduced rebuilds the problem without the fixed columns, solves it,
// and expands the solution back to the original variable space. Row
// indices are preserved so dual values map one to one.
func (p *Problem) solveReduced(fixed []bool, opts SolveOptions) (*Solution, error) {
	q := NewProblem(p.sense)
	remap := make([]Var, len(p.cols)) // old -> new (valid where !fixed)
	for j := range p.cols {
		if fixed[j] {
			continue
		}
		remap[j] = q.AddVariable(p.cols[j].name, p.cols[j].obj)
	}
	// Rows are recreated in order; entries of fixed columns vanish
	// (their value is zero).
	type term struct {
		v Var
		c float64
	}
	rowTerms := make([][]term, len(p.rows))
	for j := range p.cols {
		if fixed[j] {
			continue
		}
		for _, e := range p.cols[j].entries {
			rowTerms[e.row] = append(rowTerms[e.row], term{v: remap[j], c: e.coef})
		}
	}
	for i, r := range p.rows {
		terms := make([]Term, len(rowTerms[i]))
		for k, t := range rowTerms[i] {
			terms[k] = Term{Var: t.v, Coef: t.c}
		}
		if _, err := q.AddConstraint(r.name, r.op, r.rhs, terms...); err != nil {
			return nil, err
		}
	}
	if q.NumVars() == 0 {
		// Everything fixed at zero: feasibility reduces to checking the
		// constant rows, which the empty-variable solve cannot express;
		// check directly.
		for _, r := range p.rows {
			ok := true
			switch r.op {
			case LE:
				ok = r.rhs >= -feasTol
			case GE:
				ok = r.rhs <= feasTol
			case EQ:
				ok = r.rhs <= feasTol && r.rhs >= -feasTol
			}
			if !ok {
				return &Solution{Status: StatusInfeasible, Nodes: 1}, nil
			}
		}
		return &Solution{
			Status: StatusOptimal,
			X:      make([]float64, len(p.cols)),
			Dual:   make([]float64, len(p.rows)),
			Nodes:  1,
		}, nil
	}

	sol, err := q.solveDirect(opts)
	if err != nil {
		return nil, err
	}
	if sol.Status != StatusOptimal {
		return sol, nil
	}
	// Expand.
	x := make([]float64, len(p.cols))
	for j := range p.cols {
		if !fixed[j] {
			x[j] = sol.X[remap[j]]
		}
	}
	sol.X = x
	return sol, nil
}
