package lp

import (
	"math"
	"math/rand"
	"testing"
)

// tightEq is the warm-vs-cold agreement tolerance: warm starting must not
// change the optimum, only the pivot count.
func tightEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

// randomLEProblem builds a random bounded maximization LP with named
// variables and LE rows (the shape of the paper's relaxations). Names are
// deterministic in the indices so perturbed re-builds map onto each other.
func randomLEProblem(rng *rand.Rand, nVars, nCons int, jitter float64) *Problem {
	p := NewProblem(Maximize)
	vars := make([]Var, nVars)
	for j := range vars {
		c := 1 + rng.Float64()*9
		vars[j] = p.AddVariable(varName("v", j), c*(1+jitter*(rng.Float64()-0.5)))
	}
	for i := 0; i < nCons; i++ {
		var terms []Term
		for j := range vars {
			if rng.Float64() < 0.6 {
				a := 0.5 + rng.Float64()*2
				terms = append(terms, Term{vars[j], a * (1 + jitter*(rng.Float64()-0.5))})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{vars[rng.Intn(nVars)], 1})
		}
		rhs := (2 + rng.Float64()*8) * (1 + jitter*(rng.Float64()-0.5))
		if _, err := p.AddConstraint(varName("r", i), LE, rhs, terms...); err != nil {
			panic(err)
		}
	}
	// A box row keeps the problem bounded even when the random sparsity
	// pattern leaves some variable out of every other constraint.
	box := make([]Term, nVars)
	for j := range vars {
		box[j] = Term{vars[j], 1}
	}
	if _, err := p.AddConstraint("box", LE, 50*(1+jitter*(rng.Float64()-0.5)), box...); err != nil {
		panic(err)
	}
	return p
}

func varName(prefix string, i int) string {
	return prefix + "[" + string(rune('0'+i/10)) + string(rune('0'+i%10)) + "]"
}

// TestWarmStartMatchesColdOnPerturbedProblems is the core warm-start
// contract: across randomly perturbed re-solves of the same LP family, the
// warm-started objective equals the cold objective to 1e-9, and warm
// starting an unchanged problem does not pivot more than solving it cold.
func TestWarmStartMatchesColdOnPerturbedProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		nVars := 4 + rng.Intn(12)
		nCons := 3 + rng.Intn(10)
		seed := rng.Int63()

		base := randomLEProblem(rand.New(rand.NewSource(seed)), nVars, nCons, 0)
		sol := mustOptimal(t, base)
		if sol.Basis == nil || sol.Basis.Size() == 0 {
			t.Fatalf("trial %d: optimal solve returned no basis", trial)
		}

		// Re-solve a perturbed sibling cold and warm.
		r2 := rand.New(rand.NewSource(seed))
		cold := randomLEProblem(r2, nVars, nCons, 0.2)
		coldSol := mustOptimal(t, cold)

		r3 := rand.New(rand.NewSource(seed))
		warm := randomLEProblem(r3, nVars, nCons, 0.2)
		warmSol, err := warm.SolveWithOptions(SolveOptions{WarmStart: sol.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm solve: %v", trial, err)
		}
		if warmSol.Status != StatusOptimal {
			t.Fatalf("trial %d: warm status %v", trial, warmSol.Status)
		}
		if !tightEq(coldSol.Objective, warmSol.Objective) {
			t.Fatalf("trial %d: cold %v != warm %v", trial, coldSol.Objective, warmSol.Objective)
		}

		// Identical re-solve from the optimal basis must not pivot more
		// than the cold solve did.
		again := randomLEProblem(rand.New(rand.NewSource(seed)), nVars, nCons, 0)
		againSol, err := again.SolveWithOptions(SolveOptions{WarmStart: sol.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm re-solve: %v", trial, err)
		}
		if !tightEq(againSol.Objective, sol.Objective) {
			t.Fatalf("trial %d: warm re-solve objective %v != %v", trial, againSol.Objective, sol.Objective)
		}
		if againSol.Iterations > sol.Iterations {
			t.Fatalf("trial %d: warm re-solve used %d iterations, cold used %d",
				trial, againSol.Iterations, sol.Iterations)
		}
	}
}

// degenerateProblem is the highly degenerate LP of TestSolveDegenerate:
// every basic feasible solution at the origin ties, which historically
// cycles naive pricing rules.
func degenerateProblem() (*Problem, []Var) {
	p := NewProblem(Maximize)
	x1 := p.AddVariable("x1", 10)
	x2 := p.AddVariable("x2", -57)
	x3 := p.AddVariable("x3", -9)
	x4 := p.AddVariable("x4", -24)
	mustAdd(p, "c1", LE, 0, Term{x1, 0.5}, Term{x2, -5.5}, Term{x3, -2.5}, Term{x4, 9})
	mustAdd(p, "c2", LE, 0, Term{x1, 0.5}, Term{x2, -1.5}, Term{x3, -0.5}, Term{x4, 1})
	mustAdd(p, "c3", LE, 1, Term{x1, 1})
	return p, []Var{x1, x2, x3, x4}
}

func mustAdd(p *Problem, name string, op Op, rhs float64, terms ...Term) {
	if _, err := p.AddConstraint(name, op, rhs, terms...); err != nil {
		panic(err)
	}
}

// TestWarmStartDegenerateBasis is the degenerate-basis regression case:
// warm starting from the optimal basis of a highly degenerate LP must
// reproduce the optimum (objective 1 at x = (1, 0, 1, 0)) instead of
// stalling on the zero-valued basic variables.
func TestWarmStartDegenerateBasis(t *testing.T) {
	p1, _ := degenerateProblem()
	sol1 := mustOptimal(t, p1)
	if !almostEq(sol1.Objective, 1) {
		t.Fatalf("degenerate optimum = %v, want 1", sol1.Objective)
	}
	if sol1.Basis == nil {
		t.Fatal("no basis captured on degenerate optimum")
	}

	p2, _ := degenerateProblem()
	sol2, err := p2.SolveWithOptions(SolveOptions{WarmStart: sol1.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != StatusOptimal || !tightEq(sol2.Objective, sol1.Objective) {
		t.Fatalf("warm degenerate re-solve: status %v objective %v", sol2.Status, sol2.Objective)
	}
	if sol2.Iterations > sol1.Iterations {
		t.Fatalf("warm re-solve pivoted %d > cold %d on degenerate basis",
			sol2.Iterations, sol1.Iterations)
	}

	// Perturb the one non-trivial rhs: the warm basis stays optimal in
	// structure, only the vertex moves.
	p3 := NewProblem(Maximize)
	x1 := p3.AddVariable("x1", 10)
	x2 := p3.AddVariable("x2", -57)
	x3 := p3.AddVariable("x3", -9)
	x4 := p3.AddVariable("x4", -24)
	mustAdd(p3, "c1", LE, 0, Term{x1, 0.5}, Term{x2, -5.5}, Term{x3, -2.5}, Term{x4, 9})
	mustAdd(p3, "c2", LE, 0, Term{x1, 0.5}, Term{x2, -1.5}, Term{x3, -0.5}, Term{x4, 1})
	mustAdd(p3, "c3", LE, 2, Term{x1, 1})
	sol3, err := p3.SolveWithOptions(SolveOptions{WarmStart: sol1.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if sol3.Status != StatusOptimal || !tightEq(sol3.Objective, 2) {
		t.Fatalf("perturbed warm solve: status %v objective %v, want 2", sol3.Status, sol3.Objective)
	}
}

// TestWarmStartInfeasibleBasisFallsBack feeds a warm basis whose vertex is
// primal infeasible in the new problem (a new cutting row excludes it);
// the solver must fall back to a cold start and still reach the optimum.
func TestWarmStartInfeasibleBasisFallsBack(t *testing.T) {
	p1 := NewProblem(Maximize)
	x := p1.AddVariable("x", 1)
	y := p1.AddVariable("y", 1)
	mustAdd(p1, "cx", LE, 4, Term{x, 1})
	mustAdd(p1, "cy", LE, 4, Term{y, 1})
	sol1 := mustOptimal(t, p1)
	if !almostEq(sol1.Objective, 8) {
		t.Fatalf("objective = %v, want 8", sol1.Objective)
	}

	p2 := NewProblem(Maximize)
	x2 := p2.AddVariable("x", 1)
	y2 := p2.AddVariable("y", 1)
	mustAdd(p2, "cx", LE, 4, Term{x2, 1})
	mustAdd(p2, "cy", LE, 4, Term{y2, 1})
	mustAdd(p2, "cut", LE, 2, Term{x2, 1}, Term{y2, 1})
	sol2, err := p2.SolveWithOptions(SolveOptions{WarmStart: sol1.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != StatusOptimal || !tightEq(sol2.Objective, 2) {
		t.Fatalf("cut warm solve: status %v objective %v, want 2", sol2.Status, sol2.Objective)
	}
}

// TestWarmStartStaleBasisHarmless feeds a basis captured from an entirely
// unrelated problem: none of its names resolve, so the solve degrades to a
// cold start and must still find the optimum.
func TestWarmStartStaleBasisHarmless(t *testing.T) {
	other := NewProblem(Maximize)
	a := other.AddVariable("alien[0]", 5)
	mustAdd(other, "zrow", LE, 3, Term{a, 1})
	alien := mustOptimal(t, other).Basis

	p := NewProblem(Maximize)
	x := p.AddVariable("x", 3)
	y := p.AddVariable("y", 2)
	mustAdd(p, "c1", LE, 4, Term{x, 1}, Term{y, 1})
	mustAdd(p, "c2", LE, 6, Term{x, 1}, Term{y, 3})
	sol, err := p.SolveWithOptions(SolveOptions{WarmStart: alien})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || !almostEq(sol.Objective, 12) {
		t.Fatalf("stale warm solve: status %v objective %v, want 12", sol.Status, sol.Objective)
	}
}

// TestWarmStartAcrossPhase1 warm-starts a problem whose cold solve needs
// artificials (GE and EQ rows): the captured optimal basis must let the
// re-solve skip phase 1 entirely.
func TestWarmStartAcrossPhase1(t *testing.T) {
	build := func() *Problem {
		p := NewProblem(Minimize)
		x := p.AddVariable("x", 2)
		y := p.AddVariable("y", 3)
		mustAdd(p, "cover", GE, 10, Term{x, 1}, Term{y, 1})
		mustAdd(p, "balance", EQ, 2, Term{x, 1}, Term{y, -1})
		return p
	}
	sol1 := mustOptimal(t, build())
	sol2, err := build().SolveWithOptions(SolveOptions{WarmStart: sol1.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != StatusOptimal || !tightEq(sol2.Objective, sol1.Objective) {
		t.Fatalf("warm solve: status %v objective %v, want %v", sol2.Status, sol2.Objective, sol1.Objective)
	}
	if sol2.Iterations > sol1.Iterations {
		t.Fatalf("warm solve pivoted %d > cold %d across phase 1", sol2.Iterations, sol1.Iterations)
	}
}
