package lp

// Dense is a dense snapshot of a problem: the full constraint matrix with
// one row per constraint and one column per variable. The production
// solver never materializes this form (it works on the sparse columns);
// it exists for reference solvers and debugging — internal/oracle's
// textbook tableau simplex consumes it to cross-check the sparse
// revised-simplex path on the exact same problem.
type Dense struct {
	Sense Sense
	// Obj[v] is the objective coefficient of variable v.
	Obj []float64
	// A[r][v] is the coefficient of variable v in constraint r.
	A [][]float64
	// Ops[r] and RHS[r] are constraint r's comparison and right-hand side.
	Ops []Op
	RHS []float64
	// Integer[v] reports whether variable v was added as integer.
	Integer []bool
	// Names and RowNames carry the builder-side identifiers, for error
	// messages that point at model rows rather than matrix indices.
	Names    []string
	RowNames []string
}

// Dense materializes the problem's full constraint matrix. The snapshot is
// independent of the receiver: mutating one does not affect the other.
func (p *Problem) Dense() *Dense {
	d := &Dense{
		Sense:    p.sense,
		Obj:      make([]float64, len(p.cols)),
		A:        make([][]float64, len(p.rows)),
		Ops:      make([]Op, len(p.rows)),
		RHS:      make([]float64, len(p.rows)),
		Integer:  make([]bool, len(p.cols)),
		Names:    make([]string, len(p.cols)),
		RowNames: make([]string, len(p.rows)),
	}
	for r := range p.rows {
		d.A[r] = make([]float64, len(p.cols))
		d.Ops[r] = p.rows[r].op
		d.RHS[r] = p.rows[r].rhs
		d.RowNames[r] = p.rows[r].name
	}
	for v := range p.cols {
		c := &p.cols[v]
		d.Obj[v] = c.obj
		d.Integer[v] = c.integer
		d.Names[v] = c.name
		for _, e := range c.entries {
			d.A[e.row][v] += e.coef
		}
	}
	return d
}
