package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveIntegerKnapsack(t *testing.T) {
	// 0/1 knapsack: values {60, 100, 120}, weights {10, 20, 30}, cap 50.
	// Optimum picks items 2 and 3 for value 220.
	p := NewProblem(Maximize)
	x1 := p.AddIntegerVariable("x1", 60)
	x2 := p.AddIntegerVariable("x2", 100)
	x3 := p.AddIntegerVariable("x3", 120)
	mustConstraint(t, p, "cap", LE, 50, Term{x1, 10}, Term{x2, 20}, Term{x3, 30})
	for _, v := range []Var{x1, x2, x3} {
		mustConstraint(t, p, "ub", LE, 1, Term{v, 1})
	}
	sol, err := p.SolveInteger()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !almostEq(sol.Objective, 220) {
		t.Fatalf("objective = %v, want 220", sol.Objective)
	}
	if !almostEq(sol.Value(x1), 0) || !almostEq(sol.Value(x2), 1) || !almostEq(sol.Value(x3), 1) {
		t.Fatalf("solution = %v, want [0 1 1]", sol.X)
	}
}

func TestSolveIntegerInfeasible(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddIntegerVariable("x", 1)
	mustConstraint(t, p, "lo", GE, 3, Term{x, 2}) // x >= 1.5
	mustConstraint(t, p, "hi", LE, 3.8, Term{x, 2})
	sol, err := p.SolveInteger()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible (x must be in [1.5, 1.9])", sol.Status)
	}
}

func TestSolveIntegerRequiresIntegerVars(t *testing.T) {
	p := NewProblem(Maximize)
	p.AddVariable("x", 1)
	if _, err := p.SolveInteger(); err == nil {
		t.Fatal("want error when no integer variables exist")
	}
}

func TestSolveIntegerMixed(t *testing.T) {
	// max 2x + y with x integer, x + y <= 3.5, x <= 2.2, y <= 1.3.
	// x = 2 (int), y = 1.3 -> 5.3.
	p := NewProblem(Maximize)
	x := p.AddIntegerVariable("x", 2)
	y := p.AddVariable("y", 1)
	mustConstraint(t, p, "c", LE, 3.5, Term{x, 1}, Term{y, 1})
	mustConstraint(t, p, "ubx", LE, 2.2, Term{x, 1})
	mustConstraint(t, p, "uby", LE, 1.3, Term{y, 1})
	sol, err := p.SolveInteger()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !almostEq(sol.Objective, 5.3) {
		t.Fatalf("objective = %v, want 5.3", sol.Objective)
	}
	if !almostEq(sol.Value(x), 2) {
		t.Fatalf("x = %v, want 2", sol.Value(x))
	}
}

func TestSolveIntegerRollbackLeavesProblemIntact(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddIntegerVariable("x", 1)
	mustConstraint(t, p, "ub", LE, 2.5, Term{x, 1})
	before := p.NumConstraints()
	if _, err := p.SolveInteger(); err != nil {
		t.Fatal(err)
	}
	if p.NumConstraints() != before {
		t.Fatalf("constraints leaked: %d -> %d", before, p.NumConstraints())
	}
	// The same problem must solve identically a second time.
	sol, err := p.SolveInteger()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sol.Objective, 2) {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
}

// TestSolveIntegerAgainstEnumeration cross-checks branch and bound against
// exhaustive enumeration on random 0/1 knapsack-like programs.
func TestSolveIntegerAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		val := make([]float64, n)
		wt := make([]float64, n)
		for j := range val {
			val[j] = float64(1 + rng.Intn(30))
			wt[j] = float64(1 + rng.Intn(15))
		}
		cap := float64(5 + rng.Intn(30))

		p := NewProblem(Maximize)
		vars := make([]Var, n)
		for j := range vars {
			vars[j] = p.AddIntegerVariable("x", val[j])
			mustConstraint(t, p, "ub", LE, 1, Term{vars[j], 1})
		}
		terms := make([]Term, n)
		for j := range terms {
			terms[j] = Term{vars[j], wt[j]}
		}
		mustConstraint(t, p, "cap", LE, cap, terms...)

		sol, err := p.SolveInteger()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}

		// Exhaustive 2^n enumeration.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					w += wt[j]
					v += val[j]
				}
			}
			if w <= cap && v > best {
				best = v
			}
		}
		if math.Abs(sol.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: bb %v != enum %v (val=%v wt=%v cap=%v)",
				trial, sol.Objective, best, val, wt, cap)
		}
	}
}
