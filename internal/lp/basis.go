package lp

// Basis is an opaque warm-start handle: the set of basic columns at the
// end of a successful solve, identified both by index (fast path when the
// same problem is re-solved) and by variable/row name (so the basis can be
// re-applied to a structurally similar problem whose indices shifted —
// the per-slot LP-PT instances of consecutive time slots, the per-pass
// residual LPs of iterative rounding, or a branch-and-bound child node).
// Entries that no longer resolve in the target problem are silently
// dropped; missing rows are covered by their slack or artificial. A Basis
// is immutable and safe for concurrent use by multiple solves.
type Basis struct {
	entries []basisEntry
}

// basisEntry names one basic column: a structural variable, or the
// slack/surplus column of a named row. The name hash is copied from the
// problem at capture time so resolution against a shifted problem needs
// no string hashing.
type basisEntry struct {
	isRow bool
	name  string
	hash  uint64
	idx   int // variable index (structural) or row index (slack) at capture
}

// Size returns the number of recorded basic columns.
func (b *Basis) Size() int {
	if b == nil {
		return 0
	}
	return len(b.entries)
}

// captureBasis records the current basis of a solved standard form.
// Artificial columns are skipped: they carry no information worth
// re-applying (a warm application covers their rows automatically).
func captureBasis(p *Problem, sf *standardForm, basis []int) *Basis {
	wb := &Basis{entries: make([]basisEntry, 0, len(basis))}
	for _, j := range basis {
		switch {
		case j < sf.n:
			wb.entries = append(wb.entries, basisEntry{name: p.cols[j].name, hash: p.cols[j].hash, idx: j})
		case j < sf.artStart:
			r := sf.colRow[j]
			wb.entries = append(wb.entries, basisEntry{isRow: true, name: p.rows[r].name, hash: p.rows[r].hash, idx: r})
		}
	}
	return wb
}

// resolveBasis maps a warm basis onto this standard form, returning the
// distinct standard-form column indices that should seed the basis. Each
// entry first tries its captured index (valid when the target problem has
// the same variable/row there under the same name); otherwise it falls
// back to a name lookup built in one pass over the problem. Unresolvable
// entries are dropped.
func (sf *standardForm) resolveBasis(p *Problem, wb *Basis) []int {
	if wb == nil || len(wb.entries) == 0 {
		return nil
	}
	cols := sf.colsBuf[:0]
	sf.claimedBuf = growBools(sf.claimedBuf, sf.nTotal)
	claimed := sf.claimedBuf
	for i := range claimed {
		claimed[i] = false
	}
	misses := sf.missBuf[:0]
	for _, e := range wb.entries {
		j := -1
		if e.isRow {
			if e.idx >= 0 && e.idx < len(p.rows) && p.rows[e.idx].name == e.name {
				j = sf.slackCol[e.idx]
			}
		} else if e.idx >= 0 && e.idx < len(p.cols) && p.cols[e.idx].name == e.name {
			j = e.idx
		}
		if j < 0 {
			misses = append(misses, e)
			continue
		}
		if !claimed[j] {
			claimed[j] = true
			cols = append(cols, j)
		}
	}
	if len(misses) > 0 {
		// The misses (a basis holds at most a few hundred entries) are
		// indexed by their precomputed name hashes, then a single scan over
		// the problem's columns and rows probes that small table — the
		// reverse of indexing the problem, which would hash thousands of
		// column names on every warm solve. A 4096-bit bloom mask in front
		// of the map keeps the scan to a couple of instructions per
		// non-matching column. Hash hits verify the actual name; an entry
		// lost to a hash collision is merely dropped, which warm-start
		// semantics already allow.
		var mask [64]uint64
		varMiss := make(map[uint64]int, len(misses))
		rowMiss := make(map[uint64]int, len(misses))
		for i := range misses {
			h := misses[i].hash
			mask[(h>>6)&63] |= 1 << (h & 63)
			if misses[i].isRow {
				if _, ok := rowMiss[h]; !ok {
					rowMiss[h] = i
				}
			} else if _, ok := varMiss[h]; !ok {
				varMiss[h] = i
			}
		}
		sf.resolvedBuf = growInts(sf.resolvedBuf, len(misses))
		resolved := sf.resolvedBuf
		for i := range resolved {
			resolved[i] = -1
		}
		if len(varMiss) > 0 {
			for j := range p.cols {
				h := p.cols[j].hash
				if mask[(h>>6)&63]&(1<<(h&63)) == 0 {
					continue
				}
				if i, ok := varMiss[h]; ok && resolved[i] < 0 && p.cols[j].name == misses[i].name {
					resolved[i] = j
				}
			}
		}
		if len(rowMiss) > 0 {
			for r := range p.rows {
				h := p.rows[r].hash
				if mask[(h>>6)&63]&(1<<(h&63)) == 0 {
					continue
				}
				if i, ok := rowMiss[h]; ok && resolved[i] < 0 && p.rows[r].name == misses[i].name {
					resolved[i] = sf.slackCol[r]
				}
			}
		}
		for i := range misses {
			if j := resolved[i]; j >= 0 && !claimed[j] {
				claimed[j] = true
				cols = append(cols, j)
			}
		}
	}
	sf.missBuf = misses
	sf.colsBuf = cols
	return cols
}
