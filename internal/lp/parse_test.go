package lp

import (
	"strings"
	"testing"
)

func parseString(t *testing.T, src string) *ParsedProblem {
	t.Helper()
	pp, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return pp
}

func TestParseAndSolve(t *testing.T) {
	pp := parseString(t, `
# the running example
max: 3 x + 2 y
c1: x + y <= 4
c2: x + 3 y <= 6
`)
	if pp.HasInteger {
		t.Fatal("no int declaration expected")
	}
	sol, err := pp.Problem.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || !almostEq(sol.Objective, 12) {
		t.Fatalf("objective %v (%v), want 12", sol.Objective, sol.Status)
	}
	x, ok := pp.VarByName("x")
	if !ok {
		t.Fatal("variable x missing")
	}
	if !almostEq(sol.Value(x), 4) {
		t.Fatalf("x = %v, want 4", sol.Value(x))
	}
	if _, ok := pp.VarByName("zebra"); ok {
		t.Fatal("unknown variable resolved")
	}
}

func TestParseIntegerKnapsack(t *testing.T) {
	pp := parseString(t, `
min: -60 a - 100 b - 120 c
cap: 10 a + 20 b + 30 c <= 50
ua: a <= 1
ub: b <= 1
uc: c <= 1
int a b c
`)
	if !pp.HasInteger {
		t.Fatal("int declaration lost")
	}
	sol, err := pp.Problem.SolveInteger()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sol.Objective, -220) {
		t.Fatalf("objective %v, want -220", sol.Objective)
	}
}

func TestParseSyntaxVariants(t *testing.T) {
	pp := parseString(t, `
min: 2*x + y - 0.5 z
mix: -x + 3*y >= 2
eq: z = 1
`)
	sol, err := pp.Problem.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	z, _ := pp.VarByName("z")
	if !almostEq(sol.Value(z), 1) {
		t.Fatalf("z = %v, want 1 (equality row)", sol.Value(z))
	}
	if len(pp.RowNames) != 2 || pp.RowNames[0] != "mix" {
		t.Fatalf("row names %v", pp.RowNames)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no objective", "c: x <= 1\n"},
		{"duplicate objective", "max: x\nmin: x\nc: x <= 1\n"},
		{"no operator", "max: x\nc: x 4\n"},
		{"bad rhs", "max: x\nc: x <= banana\n"},
		{"bad token", "max: x\nc: x + $ <= 1\n"},
		{"dangling coefficient", "max: x\nc: x + 3 <= 1\n"},
		{"missing colon", "max: x\nx <= 1\n"},
		{"double number", "max: 3 4 x\nc: x <= 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tc.src)); err == nil {
				t.Fatalf("want error for %q", tc.src)
			}
		})
	}
}

func TestParseRepeatedVariableAccumulates(t *testing.T) {
	pp := parseString(t, `
max: x + x
c: x <= 3
`)
	sol, err := pp.Problem.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sol.Objective, 6) {
		t.Fatalf("objective %v, want 6 (2x at x=3)", sol.Objective)
	}
}

func TestParseIntOnlyVariable(t *testing.T) {
	// An int declaration for a variable never used elsewhere must still
	// register the variable.
	pp := parseString(t, `
max: x
c: x <= 2
int ghost
`)
	if _, ok := pp.VarByName("ghost"); !ok {
		t.Fatal("declared-but-unused integer variable dropped")
	}
}
