package lp

import "math"

// factorPivotTol is the minimum pivot magnitude the factorization accepts
// when refactorizing or replaying a warm basis.
const factorPivotTol = 1e-9

// eta is one product-form update E_k of the basis inverse: the identity
// with column r replaced. Its off-diagonal nonzeros live in the factor's
// shared arena at [start, end), so appending a pivot allocates nothing
// once the arena has warmed up and applying the whole file walks
// contiguous memory.
type eta struct {
	r          int
	diag       float64 // E[r][r] = 1/pivot
	start, end int     // arena span: E[eri[k]][r] = evx[k], k in [start, end)
}

// factor maintains B^{-1} in product form: an optional dense inverse of a
// reference basis (nil means the reference basis is the identity, as at a
// cold start from the all-slack basis) composed with a file of eta
// updates, one per pivot since the last refactorization.
type factor struct {
	m     int
	b0inv [][]float64 // reference inverse; nil == identity
	etas  []eta
	// eta arena shared by all etas in the file.
	eri []int
	evx []float64
	// scratch buffers reused across calls.
	tmp []float64
}

// init (re)sizes the factorization for an m-row basis and drops any
// previous state, reusing recycled storage where large enough.
func (f *factor) init(m int) {
	f.m = m
	f.tmp = growFloats(f.tmp, m)
	f.reset()
}

// reset drops all state back to the identity reference basis.
func (f *factor) reset() {
	f.b0inv = nil
	f.etas = f.etas[:0]
	f.eri = f.eri[:0]
	f.evx = f.evx[:0]
}

// size reports the eta-file length (pivots since last refactorization).
func (f *factor) size() int { return len(f.etas) }

// applyEtas computes u <- E_k ... E_1 u.
func (f *factor) applyEtas(u []float64) {
	for k := range f.etas {
		e := &f.etas[k]
		ur := u[e.r]
		if ur == 0 {
			continue
		}
		u[e.r] = e.diag * ur
		for idx := e.start; idx < e.end; idx++ {
			u[f.eri[idx]] += f.evx[idx] * ur
		}
	}
}

// ftranCol computes u = B^{-1} A_j for a sparse column of A.
func (f *factor) ftranCol(a *csc, j int, u []float64) {
	rows, vals := a.col(j)
	if f.b0inv == nil {
		for i := range u {
			u[i] = 0
		}
		for k, r := range rows {
			u[r] = vals[k]
		}
	} else {
		for i := range u {
			u[i] = 0
		}
		for k, r := range rows {
			v := vals[k]
			if v == 0 {
				continue
			}
			for i := 0; i < f.m; i++ {
				u[i] += f.b0inv[i][r] * v
			}
		}
	}
	f.applyEtas(u)
}

// ftranVec computes u = B^{-1} b for a dense b.
func (f *factor) ftranVec(b []float64, u []float64) {
	if f.b0inv == nil {
		copy(u, b)
	} else {
		for i := 0; i < f.m; i++ {
			s := 0.0
			row := f.b0inv[i]
			for k := 0; k < f.m; k++ {
				s += row[k] * b[k]
			}
			u[i] = s
		}
	}
	f.applyEtas(u)
}

// btran computes v <- v^T B^{-1} in place: the eta file is applied
// transposed in reverse order, then the dense reference inverse (if any).
func (f *factor) btran(v []float64) {
	for k := len(f.etas) - 1; k >= 0; k-- {
		e := &f.etas[k]
		s := e.diag * v[e.r]
		for idx := e.start; idx < e.end; idx++ {
			s += f.evx[idx] * v[f.eri[idx]]
		}
		v[e.r] = s
	}
	if f.b0inv != nil {
		tmp := f.tmp
		for c := 0; c < f.m; c++ {
			tmp[c] = 0
		}
		for i := 0; i < f.m; i++ {
			vi := v[i]
			if vi == 0 {
				continue
			}
			row := f.b0inv[i]
			for c := 0; c < f.m; c++ {
				tmp[c] += vi * row[c]
			}
		}
		copy(v, tmp)
	}
}

// update appends the eta matrix of a pivot on basis position r with
// direction u = B^{-1} A_enter (pre-pivot values). u[r] must be nonzero.
func (f *factor) update(u []float64, r int) {
	piv := u[r]
	inv := 1 / piv
	start := len(f.eri)
	for i, ui := range u {
		if i == r || ui == 0 {
			continue
		}
		f.eri = append(f.eri, i)
		f.evx = append(f.evx, -ui*inv)
	}
	f.etas = append(f.etas, eta{r: r, diag: inv, start: start, end: len(f.eri)})
}

// refactorize recomputes the dense reference inverse from the basis
// columns by Gauss-Jordan elimination with partial pivoting and clears the
// eta file. It reports false (leaving the current representation intact)
// if the basis matrix is numerically singular.
func (f *factor) refactorize(a *csc, basis []int) bool {
	m := f.m
	work := make([][]float64, m) // [B | I] augmented rows
	for i := 0; i < m; i++ {
		work[i] = make([]float64, 2*m)
		work[i][m+i] = 1
	}
	for k, j := range basis {
		rows, vals := a.col(j)
		for idx, r := range rows {
			work[r][k] = vals[idx]
		}
	}
	for col := 0; col < m; col++ {
		piv := col
		best := math.Abs(work[col][col])
		for r := col + 1; r < m; r++ {
			if v := math.Abs(work[r][col]); v > best {
				best = v
				piv = r
			}
		}
		if best < factorPivotTol {
			return false
		}
		work[col], work[piv] = work[piv], work[col]
		inv := 1 / work[col][col]
		rowC := work[col]
		for k := col; k < 2*m; k++ {
			rowC[k] *= inv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			fac := work[r][col]
			if fac == 0 {
				continue
			}
			rowR := work[r]
			for k := col; k < 2*m; k++ {
				rowR[k] -= fac * rowC[k]
			}
		}
	}
	inv := make([][]float64, m)
	for i := 0; i < m; i++ {
		inv[i] = work[i][m:]
	}
	f.b0inv = inv
	f.etas = f.etas[:0]
	f.eri = f.eri[:0]
	f.evx = f.evx[:0]
	return true
}
