package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDualSimple(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6. Optimum (4, 0): the first
	// constraint binds with shadow price 3, the second is slack (price 0).
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 3)
	y := p.AddVariable("y", 2)
	mustConstraint(t, p, "c1", LE, 4, Term{x, 1}, Term{y, 1})
	mustConstraint(t, p, "c2", LE, 6, Term{x, 1}, Term{y, 3})
	sol := mustOptimal(t, p)
	if !almostEq(sol.DualOf(0), 3) {
		t.Fatalf("dual of binding row = %v, want 3", sol.DualOf(0))
	}
	if !almostEq(sol.DualOf(1), 0) {
		t.Fatalf("dual of slack row = %v, want 0", sol.DualOf(1))
	}
	if sol.DualOf(99) != 0 || sol.DualOf(-1) != 0 {
		t.Fatal("out-of-range duals must be 0")
	}
}

func TestDualMinimization(t *testing.T) {
	// min 2x s.t. x >= 5. Shadow price of the >= row is 2 (objective
	// rises by 2 per unit of rhs).
	p := NewProblem(Minimize)
	x := p.AddVariable("x", 2)
	mustConstraint(t, p, "lo", GE, 5, Term{x, 1})
	sol := mustOptimal(t, p)
	if !almostEq(sol.DualOf(0), 2) {
		t.Fatalf("dual = %v, want 2", sol.DualOf(0))
	}
}

// TestStrongDuality: on random bounded feasible max LPs, the primal
// optimum must equal b'y with y the reported duals, and complementary
// slackness must hold (positive dual => binding row; slack row => zero
// dual). This is a strong end-to-end correctness oracle for the simplex
// and the dual extraction.
func TestStrongDuality(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(4)
		p := NewProblem(Maximize)
		vars := make([]Var, n)
		c := make([]float64, n)
		for j := range vars {
			c[j] = math.Round(rng.Float64()*20) / 2
			vars[j] = p.AddVariable("x", c[j])
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			terms := make([]Term, n)
			for j := range a[i] {
				a[i][j] = math.Round(rng.Float64()*9+1) / 2
				terms[j] = Term{vars[j], a[i][j]}
			}
			b[i] = math.Round(rng.Float64()*20+1) / 2
			if _, err := p.AddConstraint("c", LE, b[i], terms...); err != nil {
				return false
			}
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != StatusOptimal {
			return false
		}
		// Strong duality: objective == b'y.
		dualObj := 0.0
		for i := range b {
			dualObj += b[i] * sol.Dual[i]
		}
		if !almostEq(dualObj, sol.Objective) {
			return false
		}
		// Dual feasibility for a max problem with <= rows: y >= 0 and
		// A'y >= c (up to tolerance).
		for i := range b {
			if sol.Dual[i] < -1e-7 {
				return false
			}
		}
		for j := 0; j < n; j++ {
			lhs := 0.0
			for i := 0; i < m; i++ {
				lhs += a[i][j] * sol.Dual[i]
			}
			if lhs < c[j]-1e-6 {
				return false
			}
			// Complementary slackness on variables: x_j > 0 => A'y == c_j.
			if sol.X[j] > 1e-6 && math.Abs(lhs-c[j]) > 1e-6 {
				return false
			}
		}
		// Complementary slackness on rows: y_i > 0 => row binds.
		for i := 0; i < m; i++ {
			lhs := 0.0
			for j := 0; j < n; j++ {
				lhs += a[i][j] * sol.X[j]
			}
			if sol.Dual[i] > 1e-6 && math.Abs(lhs-b[i]) > 1e-6 {
				return false
			}
			if lhs > b[i]+1e-6 {
				return false // primal feasibility, while we are here
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIntegerSolutionHasNoDuals(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddIntegerVariable("x", 1)
	mustConstraint(t, p, "ub", LE, 2.5, Term{x, 1})
	sol, err := p.SolveInteger()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Dual != nil {
		t.Fatal("integer solutions must not carry LP duals")
	}
}

func TestPresolveFixedZero(t *testing.T) {
	// x pinned to zero by a singleton row; optimum must route through y.
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 10)
	y := p.AddVariable("y", 1)
	mustConstraint(t, p, "pin", LE, 0, Term{x, 2})
	mustConstraint(t, p, "cap", LE, 5, Term{x, 1}, Term{y, 1})
	sol := mustOptimal(t, p)
	if !almostEq(sol.Value(x), 0) || !almostEq(sol.Value(y), 5) || !almostEq(sol.Objective, 5) {
		t.Fatalf("x=%v y=%v obj=%v, want (0, 5, 5)", sol.Value(x), sol.Value(y), sol.Objective)
	}
	if len(sol.Dual) != 2 {
		t.Fatalf("duals lost by presolve: %v", sol.Dual)
	}
	if !almostEq(sol.DualOf(1), 1) {
		t.Fatalf("cap shadow price %v, want 1", sol.DualOf(1))
	}
}

func TestPresolveAllFixed(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 3)
	mustConstraint(t, p, "pin", EQ, 0, Term{x, 1})
	sol := mustOptimal(t, p)
	if sol.Objective != 0 || sol.Value(x) != 0 {
		t.Fatalf("all-fixed solve: obj=%v x=%v", sol.Objective, sol.Value(x))
	}
}

func TestPresolveAllFixedInfeasible(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 3)
	mustConstraint(t, p, "pin", LE, 0, Term{x, 1})
	mustConstraint(t, p, "force", GE, 2, Term{x, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible (x pinned to 0 but forced >= 2)", sol.Status)
	}
}

func TestPresolveGEPin(t *testing.T) {
	// -3x >= 0 pins x to 0 as well.
	p := NewProblem(Maximize)
	x := p.AddVariable("x", 1)
	y := p.AddVariable("y", 1)
	mustConstraint(t, p, "pin", GE, 0, Term{x, -3})
	mustConstraint(t, p, "cap", LE, 2, Term{y, 1})
	sol := mustOptimal(t, p)
	if !almostEq(sol.Value(x), 0) || !almostEq(sol.Objective, 2) {
		t.Fatalf("x=%v obj=%v", sol.Value(x), sol.Objective)
	}
}
