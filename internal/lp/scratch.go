package lp

import "sync"

// The per-slot online algorithms solve thousands of structurally similar
// LPs back to back, and before recycling each solve allocated a few
// hundred kilobytes of matrix backing and state vectors that immediately
// became garbage — enough for the collector to show up next to the
// pricing loop in profiles. A solveScratch bundles every large per-solve
// buffer; solveDirect checks one out of the pool and returns it when the
// solve finishes. Nothing reachable from a Solution may alias the scratch
// (X, Dual, and Basis are freshly allocated), which is what makes the
// recycling safe.
type solveScratch struct {
	sf  standardForm
	st  simplexState
	fac factor
}

var scratchPool = sync.Pool{New: func() any { return new(solveScratch) }}

// growFloats returns a length-n slice, reusing s's storage when it is
// large enough. Contents are unspecified; callers must overwrite.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growInts is growFloats for []int.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growBools is growFloats for []bool.
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
