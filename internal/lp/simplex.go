package lp

import (
	"math"
)

// Numerical tolerances of the simplex method.
const (
	// reducedCostTol: a column prices as improving only if its reduced
	// cost is below -reducedCostTol.
	reducedCostTol = 1e-9
	// pivotTol: minimum magnitude accepted for a pivot element.
	pivotTol = 1e-9
	// feasTol: slack allowed when checking feasibility/integrality.
	feasTol = 1e-7
	// degenerateLimit: consecutive degenerate pivots before switching
	// from Dantzig pricing to Bland's anti-cycling rule.
	degenerateLimit = 64
	// pricingWindow: once an improving column has been found, partial
	// pricing stops scanning after this many further candidates. The
	// cursor rotates so all columns are eventually priced, preserving
	// optimality detection (a full silent sweep proves optimality).
	pricingWindow = 512
)

// standardForm is the internal "min c'x, Ax = b, x >= 0" representation.
// Columns 0..n-1 are the original variables, then one slack/surplus per
// inequality row, then one artificial per row that needs one.
type standardForm struct {
	m, n     int       // rows, original columns
	cols     [][]entry // sparse columns, length nTotal
	c        []float64 // phase-2 costs, length nTotal
	b        []float64 // rhs, all >= 0
	nTotal   int
	artStart int // first artificial column index (== nTotal if none)
	basis0   []int
	// flipped marks original rows whose sign was negated to make b >= 0;
	// needed to map internal duals back to the caller's rows.
	flipped []bool
}

// toStandard converts the builder problem. Maximization is handled by
// negating the objective.
func (p *Problem) toStandard() *standardForm {
	m, n := len(p.rows), len(p.cols)
	sf := &standardForm{m: m, n: n}
	sf.b = make([]float64, m)
	flip := make([]bool, m)
	ops := make([]Op, m)
	for i, r := range p.rows {
		rhs, op := r.rhs, r.op
		if rhs < 0 {
			rhs = -rhs
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
			flip[i] = true
		}
		sf.b[i] = rhs
		ops[i] = op
	}
	sf.flipped = flip

	sf.cols = make([][]entry, 0, n+2*m)
	sf.c = make([]float64, 0, n+2*m)
	sign := 1.0
	if p.sense == Maximize {
		sign = -1
	}
	for _, col := range p.cols {
		es := make([]entry, 0, len(col.entries))
		for _, e := range col.entries {
			coef := e.coef
			if flip[e.row] {
				coef = -coef
			}
			es = append(es, entry{row: e.row, coef: coef})
		}
		sf.cols = append(sf.cols, es)
		sf.c = append(sf.c, sign*col.obj)
	}

	// Slack/surplus columns. A slack on a <= row (rhs >= 0) can start in
	// the basis; a surplus on a >= row cannot (it would be negative).
	slackBasis := make([]int, m)
	for i := range slackBasis {
		slackBasis[i] = -1
	}
	for i, op := range ops {
		switch op {
		case LE:
			sf.cols = append(sf.cols, []entry{{row: i, coef: 1}})
			sf.c = append(sf.c, 0)
			slackBasis[i] = len(sf.cols) - 1
		case GE:
			sf.cols = append(sf.cols, []entry{{row: i, coef: -1}})
			sf.c = append(sf.c, 0)
		case EQ:
			// no slack
		}
	}

	// Artificials for rows without a basic slack.
	sf.artStart = len(sf.cols)
	sf.basis0 = make([]int, m)
	for i := range sf.basis0 {
		if slackBasis[i] >= 0 {
			sf.basis0[i] = slackBasis[i]
			continue
		}
		sf.cols = append(sf.cols, []entry{{row: i, coef: 1}})
		sf.c = append(sf.c, 0)
		sf.basis0[i] = len(sf.cols) - 1
	}
	sf.nTotal = len(sf.cols)
	return sf
}

// simplexState is the mutable state of a revised-simplex run.
type simplexState struct {
	sf     *standardForm
	binv   [][]float64 // dense basis inverse, m x m
	basis  []int       // basis[i] = column occupying basis position i
	inBas  []bool      // inBas[j] = column j currently basic
	xB     []float64   // current basic variable values
	iters  int
	cursor int // rotating partial-pricing start column
}

func newSimplexState(sf *standardForm) *simplexState {
	m := sf.m
	st := &simplexState{
		sf:    sf,
		binv:  make([][]float64, m),
		basis: make([]int, m),
		inBas: make([]bool, sf.nTotal),
		xB:    make([]float64, m),
	}
	for i := 0; i < m; i++ {
		st.binv[i] = make([]float64, m)
		st.binv[i][i] = 1
		st.basis[i] = sf.basis0[i]
		st.inBas[sf.basis0[i]] = true
		st.xB[i] = sf.b[i]
	}
	// Initial basis columns are identity columns except LE slacks, which
	// are +1 unit columns too, so binv = I and xB = b is exact.
	return st
}

// colDot computes pi . A_j for sparse column j.
func (st *simplexState) colDot(pi []float64, j int) float64 {
	d := 0.0
	for _, e := range st.sf.cols[j] {
		d += pi[e.row] * e.coef
	}
	return d
}

// ftran computes u = B^{-1} A_j.
func (st *simplexState) ftran(j int, u []float64) {
	for i := range u {
		u[i] = 0
	}
	for _, e := range st.sf.cols[j] {
		if e.coef == 0 {
			continue
		}
		col := e.row
		for i := 0; i < st.sf.m; i++ {
			u[i] += st.binv[i][col] * e.coef
		}
	}
}

// run performs simplex iterations on the cost vector c until optimality,
// unboundedness, or the iteration budget is exhausted. allowArt controls
// whether artificial columns may (re-)enter the basis — true only in
// phase 1.
func (st *simplexState) run(c []float64, maxIters int, allowArt bool) Status {
	m := st.sf.m
	pi := make([]float64, m)
	u := make([]float64, m)
	degenerate := 0

	for ; st.iters < maxIters; st.iters++ {
		// pi = c_B^T B^{-1}
		for col := 0; col < m; col++ {
			s := 0.0
			for i := 0; i < m; i++ {
				if cb := c[st.basis[i]]; cb != 0 {
					s += cb * st.binv[i][col]
				}
			}
			pi[col] = s
		}

		// Pricing. Bland's rule scans in index order (anti-cycling);
		// otherwise partial pricing: rotate through the columns from a
		// moving cursor and, once an improving candidate exists, stop
		// after pricingWindow further columns. A full sweep with no
		// improving column proves optimality either way.
		enter := -1
		useBland := degenerate >= degenerateLimit
		bestRC := -reducedCostTol
		limit := st.sf.nTotal
		if !allowArt {
			limit = st.sf.artStart
		}
		if useBland {
			for j := 0; j < limit; j++ {
				if st.inBas[j] {
					continue
				}
				if c[j]-st.colDot(pi, j) < -reducedCostTol {
					enter = j
					break
				}
			}
		} else {
			sinceFound := 0
			for scanned := 0; scanned < limit; scanned++ {
				j := st.cursor + scanned
				if j >= limit {
					j -= limit
				}
				if st.inBas[j] {
					continue
				}
				rc := c[j] - st.colDot(pi, j)
				if rc < bestRC {
					bestRC = rc
					enter = j
				}
				if enter >= 0 {
					sinceFound++
					if sinceFound >= pricingWindow {
						st.cursor = j + 1
						if st.cursor >= limit {
							st.cursor = 0
						}
						break
					}
				}
			}
		}
		if enter < 0 {
			return StatusOptimal
		}

		// Direction and ratio test.
		st.ftran(enter, u)
		leave := -1
		var theta float64
		for i := 0; i < m; i++ {
			if u[i] <= pivotTol {
				continue
			}
			ratio := st.xB[i] / u[i]
			if ratio < -feasTol {
				ratio = 0
			}
			if leave == -1 || ratio < theta-pivotTol ||
				(ratio < theta+pivotTol && st.basis[i] < st.basis[leave]) {
				leave = i
				theta = ratio
			}
		}
		if leave == -1 {
			return StatusUnbounded
		}
		if theta < feasTol {
			degenerate++
		} else {
			degenerate = 0
		}

		// Pivot: update xB, binv, basis bookkeeping.
		piv := u[leave]
		for i := 0; i < m; i++ {
			if i == leave {
				continue
			}
			st.xB[i] -= theta * u[i]
			if st.xB[i] < 0 && st.xB[i] > -feasTol {
				st.xB[i] = 0
			}
		}
		st.xB[leave] = theta

		rowL := st.binv[leave]
		inv := 1 / piv
		for col := 0; col < m; col++ {
			rowL[col] *= inv
		}
		for i := 0; i < m; i++ {
			if i == leave {
				continue
			}
			f := u[i]
			if f == 0 {
				continue
			}
			ri := st.binv[i]
			for col := 0; col < m; col++ {
				ri[col] -= f * rowL[col]
			}
		}
		st.inBas[st.basis[leave]] = false
		st.inBas[enter] = true
		st.basis[leave] = enter
	}
	return StatusIterLimit
}

// SolveOptions tunes the solver.
type SolveOptions struct {
	// MaxIterations caps total simplex pivots. Zero selects an automatic
	// budget of 200*(m+50) per phase.
	MaxIterations int
}

// Solve optimizes the problem as a continuous LP (integrality markers are
// ignored). It never returns an error for well-formed problems; infeasible
// and unbounded outcomes are reported in Solution.Status.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveWithOptions(SolveOptions{})
}

// SolveWithOptions is Solve with explicit tuning parameters.
func (p *Problem) SolveWithOptions(opts SolveOptions) (*Solution, error) {
	if len(p.cols) == 0 {
		return nil, ErrNoVariables
	}
	if fixed, n := p.detectFixedZero(); n > 0 {
		return p.solveReduced(fixed, opts)
	}
	return p.solveDirect(opts)
}

// solveDirect runs the two-phase simplex without the presolve step.
func (p *Problem) solveDirect(opts SolveOptions) (*Solution, error) {
	sf := p.toStandard()
	st := newSimplexState(sf)
	maxIters := opts.MaxIterations
	if maxIters == 0 {
		maxIters = 200 * (sf.m + 50)
	}

	// Phase 1: only when artificials exist with nonzero value.
	if sf.artStart < sf.nTotal {
		c1 := make([]float64, sf.nTotal)
		for j := sf.artStart; j < sf.nTotal; j++ {
			c1[j] = 1
		}
		status := st.run(c1, maxIters, true)
		if status == StatusIterLimit {
			return &Solution{Status: StatusIterLimit, Iterations: st.iters, Nodes: 1}, nil
		}
		// Infeasible if any artificial remains positive.
		artSum := 0.0
		for i, bj := range st.basis {
			if bj >= sf.artStart {
				artSum += st.xB[i]
			}
		}
		if artSum > 1e-6 {
			return &Solution{Status: StatusInfeasible, Iterations: st.iters, Nodes: 1}, nil
		}
		// Pivot out any artificial stuck in the basis at value zero.
		if err := st.purgeArtificials(); err != nil {
			return &Solution{Status: StatusInfeasible, Iterations: st.iters, Nodes: 1}, nil
		}
	}

	// Phase 2.
	maxIters += st.iters
	status := st.run(sf.c, maxIters, false)
	sol := &Solution{Status: status, Iterations: st.iters, Nodes: 1}
	if status != StatusOptimal {
		return sol, nil
	}

	sol.X = make([]float64, sf.n)
	obj := 0.0
	for i, bj := range st.basis {
		if bj < sf.n {
			v := st.xB[i]
			if v < 0 && v > -feasTol {
				v = 0
			}
			sol.X[bj] = v
		}
		obj += sf.c[bj] * st.xB[i]
	}
	if p.sense == Maximize {
		obj = -obj
	}
	sol.Objective = obj

	// Dual values: pi = c_B B^{-1} prices the internal rows; undo the
	// sense negation and any row sign flips so Dual[i] = dObjective/db_i
	// for the caller's row i.
	pi := st.dualVector(sf.c)
	sol.Dual = make([]float64, sf.m)
	for i := range sol.Dual {
		d := pi[i]
		if p.sense == Maximize {
			d = -d
		}
		if sf.flipped[i] {
			d = -d
		}
		sol.Dual[i] = d
	}
	return sol, nil
}

// dualVector computes pi = c_B B^{-1} for the current basis.
func (st *simplexState) dualVector(c []float64) []float64 {
	m := st.sf.m
	pi := make([]float64, m)
	for col := 0; col < m; col++ {
		s := 0.0
		for i := 0; i < m; i++ {
			if cb := c[st.basis[i]]; cb != 0 {
				s += cb * st.binv[i][col]
			}
		}
		pi[col] = s
	}
	return pi
}

// purgeArtificials removes zero-valued artificial variables from the basis
// by pivoting in any non-artificial column with a nonzero entry in that
// basis row; if none exists the row is redundant and the artificial stays
// at zero harmlessly (it is cost-zero in phase 2 and barred from pricing).
func (st *simplexState) purgeArtificials() error {
	m := st.sf.m
	u := make([]float64, m)
	for i := 0; i < m; i++ {
		if st.basis[i] < st.sf.artStart {
			continue
		}
		// Find a replacement column with |(B^{-1}A_j)_i| above tolerance.
		for j := 0; j < st.sf.artStart; j++ {
			if st.inBas[j] {
				continue
			}
			st.ftran(j, u)
			if math.Abs(u[i]) <= pivotTol {
				continue
			}
			// Pivot j in at row i (degenerate pivot: xB[i] == 0).
			piv := u[i]
			rowI := st.binv[i]
			inv := 1 / piv
			for col := 0; col < m; col++ {
				rowI[col] *= inv
			}
			for k := 0; k < m; k++ {
				if k == i {
					continue
				}
				f := u[k]
				if f == 0 {
					continue
				}
				rk := st.binv[k]
				for col := 0; col < m; col++ {
					rk[col] -= f * rowI[col]
				}
			}
			st.inBas[st.basis[i]] = false
			st.inBas[j] = true
			st.basis[i] = j
			break
		}
	}
	return nil
}
