package lp

import (
	"math"
)

// Numerical tolerances of the simplex method.
const (
	// reducedCostTol: a column prices as improving only if its reduced
	// cost is below -reducedCostTol.
	reducedCostTol = 1e-9
	// pivotTol: minimum magnitude accepted for a pivot element.
	pivotTol = 1e-9
	// feasTol: slack allowed when checking feasibility/integrality.
	feasTol = 1e-7
	// degenerateLimit: consecutive degenerate pivots before switching
	// from devex pricing to Bland's anti-cycling rule.
	degenerateLimit = 64
	// pricingWindow: once an improving column has been found, partial
	// pricing stops scanning after this many further candidates. The
	// cursor rotates so all columns are eventually priced, preserving
	// optimality detection (a full silent sweep proves optimality).
	pricingWindow = 512
	// devexResetRatio: when the reference weight carried into a pivot
	// exceeds this, the devex reference framework is reset to unit
	// weights (the standard guard against unbounded weight growth).
	devexResetRatio = 1e10
	// artValueTol: an artificial variable above this value marks the
	// basis as primal infeasible for the original rows (phase 1 needed).
	artValueTol = 1e-6
)

// refactorLimit returns the eta-file length that triggers a periodic
// refactorization: long enough to amortize the O(m^3) rebuild, short
// enough to bound both eta-application cost and accumulated roundoff.
func refactorLimit(m int) int {
	if m < 128 {
		return 128
	}
	return m
}

// standardForm is the internal "min c'x, Ax = b, x >= 0" representation.
// Columns 0..n-1 are the original variables, then one slack/surplus per
// inequality row, then one artificial per row that needs one.
type standardForm struct {
	m, n     int
	a        *csc      // all columns (structural, slack/surplus, artificial)
	c        []float64 // phase-2 costs, length nTotal
	b        []float64 // rhs, all >= 0
	nTotal   int
	artStart int   // first artificial column index (== nTotal if none)
	basis0   []int // default initial basis (slack or artificial per row)
	// slackCol[i] is the slack/surplus column of row i (-1 for EQ rows);
	// colRow[j] is the row of slack/artificial column j (-1 for
	// structural columns). Both are needed to capture and re-apply bases.
	slackCol []int
	colRow   []int
	// flipped marks original rows whose sign was negated to make b >= 0;
	// needed to map internal duals back to the caller's rows.
	flipped []bool
	// resolve scratch, reused across solves (see resolveBasis).
	colsBuf     []int
	claimedBuf  []bool
	missBuf     []basisEntry
	resolvedBuf []int
}

// toStandard converts the builder problem into sf, reusing whatever
// storage sf already carries (it may be a recycled scratch or a zero
// value). Maximization is handled by negating the objective.
func (p *Problem) toStandard(sf *standardForm) *standardForm {
	m, n := len(p.rows), len(p.cols)
	sf.m, sf.n = m, n
	sf.b = growFloats(sf.b, m)
	sf.flipped = growBools(sf.flipped, m)
	flip := sf.flipped
	ops := make([]Op, m)
	for i := range p.rows {
		r := &p.rows[i]
		rhs, op := r.rhs, r.op
		neg := rhs < 0
		if neg {
			rhs = -rhs
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		flip[i] = neg
		sf.b[i] = rhs
		ops[i] = op
	}

	if sf.a == nil {
		sf.a = &csc{}
	}
	sf.a.ptr = append(sf.a.ptr[:0], 0)
	sf.a.ri = sf.a.ri[:0]
	sf.a.vx = sf.a.vx[:0]
	sf.c = sf.c[:0]
	sf.colRow = sf.colRow[:0]
	sign := 1.0
	if p.sense == Maximize {
		sign = -1
	}
	for j := range p.cols {
		col := &p.cols[j]
		for _, e := range col.entries {
			coef := e.coef
			if flip[e.row] {
				coef = -coef
			}
			sf.a.push(e.row, coef)
		}
		sf.a.endCol()
		sf.c = append(sf.c, sign*col.obj)
		sf.colRow = append(sf.colRow, -1)
	}

	// Slack/surplus columns. A slack on a <= row (rhs >= 0) can start in
	// the basis; a surplus on a >= row cannot (it would be negative).
	slackBasis := make([]int, m)
	sf.slackCol = growInts(sf.slackCol, m)
	for i := range slackBasis {
		slackBasis[i] = -1
		sf.slackCol[i] = -1
	}
	for i, op := range ops {
		switch op {
		case LE:
			sf.a.appendUnit(i, 1)
			sf.c = append(sf.c, 0)
			sf.colRow = append(sf.colRow, i)
			sf.slackCol[i] = sf.a.numCols() - 1
			slackBasis[i] = sf.slackCol[i]
		case GE:
			sf.a.appendUnit(i, -1)
			sf.c = append(sf.c, 0)
			sf.colRow = append(sf.colRow, i)
			sf.slackCol[i] = sf.a.numCols() - 1
		case EQ:
			// no slack
		}
	}

	// Artificials for rows without a basic slack.
	sf.artStart = sf.a.numCols()
	sf.basis0 = growInts(sf.basis0, m)
	for i := range sf.basis0 {
		if slackBasis[i] >= 0 {
			sf.basis0[i] = slackBasis[i]
			continue
		}
		sf.a.appendUnit(i, 1)
		sf.c = append(sf.c, 0)
		sf.colRow = append(sf.colRow, i)
		sf.basis0[i] = sf.a.numCols() - 1
	}
	sf.nTotal = sf.a.numCols()
	return sf
}

// simplexState is the mutable state of a revised-simplex run.
type simplexState struct {
	sf     *standardForm
	fac    *factor   // B^{-1} in product form (reference inverse + etas)
	basis  []int     // basis[i] = column occupying basis position i
	inBas  []bool    // inBas[j] = column j currently basic
	xB     []float64 // current basic variable values
	iters  int
	cursor int // rotating partial-pricing start column
	// devex reference weights, one per column (reset to 1 with each new
	// reference framework).
	weights []float64
	// refactorBackoff postpones the next refactorization attempt after a
	// numerically singular rebuild, so a bad basis cannot trigger an
	// O(m^3) retry on every pivot.
	refactorBackoff int
	// scratch buffers.
	pi, u, rho []float64
	candBuf    []int
	// warm-start scratch, reused across solves (see warmStart).
	wantedBuf []bool
	rowCntBuf []int
}

// init (re)binds the state to a standard form and factorization, reusing
// the state's own storage from a previous solve where possible. Every
// field is reset: recycled buffers carry stale contents.
func (st *simplexState) init(sf *standardForm, fac *factor) {
	m := sf.m
	st.sf = sf
	fac.init(m)
	st.fac = fac
	st.basis = growInts(st.basis, m)
	st.inBas = growBools(st.inBas, sf.nTotal)
	st.xB = growFloats(st.xB, m)
	st.weights = growFloats(st.weights, sf.nTotal)
	st.pi = growFloats(st.pi, m)
	st.u = growFloats(st.u, m)
	st.rho = growFloats(st.rho, m)
	st.iters = 0
	st.cursor = 0
	st.refactorBackoff = 0
	st.candBuf = st.candBuf[:0]
	st.resetToBasis0()
}

// resetToBasis0 restores the default slack/artificial basis: the basis
// matrix is the identity (up to unit columns), so B^{-1} = I and xB = b.
func (st *simplexState) resetToBasis0() {
	sf := st.sf
	st.fac.reset()
	for j := range st.inBas {
		st.inBas[j] = false
	}
	for i := 0; i < sf.m; i++ {
		st.basis[i] = sf.basis0[i]
		st.inBas[sf.basis0[i]] = true
		st.xB[i] = sf.b[i]
	}
	st.resetWeights()
}

func (st *simplexState) resetWeights() {
	for j := range st.weights {
		st.weights[j] = 1
	}
}

// ftran computes u = B^{-1} A_j.
func (st *simplexState) ftran(j int, u []float64) {
	st.fac.ftranCol(st.sf.a, j, u)
}

// warmStart replays a resolved warm basis onto the default basis: each
// wanted column is pivoted in against a replaceable position (one still
// holding a default filler that the warm basis does not want), choosing
// the largest available pivot — Gaussian elimination with restricted
// partial pivoting, one eta per accepted column. Columns that turn out
// linearly dependent are skipped; rows left uncovered keep their
// slack/artificial filler. It reports whether the resulting basis is
// primal feasible (xB >= 0); on false the caller must reset the state.
func (st *simplexState) warmStart(cols []int) bool {
	sf := st.sf
	m := sf.m
	st.wantedBuf = growBools(st.wantedBuf, sf.nTotal)
	wanted := st.wantedBuf
	for j := range wanted {
		wanted[j] = false
	}
	for _, j := range cols {
		wanted[j] = true
	}
	// rowCount[i] = wanted columns with a nonzero in row i. A row counted
	// once is private to its column; pivoting there produces an eta whose
	// fill is just the column's other nonzeros. Preferring private rows
	// keeps the replayed eta file near-diagonal — in the LP-PT bases most
	// basic columns are y variables whose assignment row is theirs alone,
	// so without the preference the magnitude rule tends to pivot them on
	// shared capacity rows and the eta file densifies, taxing every ftran
	// and btran of the solve that follows.
	st.rowCntBuf = growInts(st.rowCntBuf, m)
	rowCount := st.rowCntBuf
	for i := range rowCount {
		rowCount[i] = 0
	}
	for _, j := range cols {
		rows, _ := sf.a.col(j)
		for _, r := range rows {
			rowCount[r]++
		}
	}
	u := st.u
	for _, j := range cols {
		if st.inBas[j] {
			continue
		}
		st.ftran(j, u)
		leave := -1
		best := factorPivotTol
		leavePriv := -1
		bestPriv := 1e-3 // private rows still need a well-conditioned pivot
		for i := 0; i < m; i++ {
			if wanted[st.basis[i]] {
				continue
			}
			v := math.Abs(u[i])
			if v > best {
				best = v
				leave = i
			}
			if rowCount[i] == 1 && v > bestPriv {
				bestPriv = v
				leavePriv = i
			}
		}
		if leavePriv >= 0 {
			leave = leavePriv
		}
		if leave < 0 {
			continue // dependent on the columns already installed
		}
		st.fac.update(u, leave)
		st.inBas[st.basis[leave]] = false
		st.inBas[j] = true
		st.basis[leave] = j
	}
	st.fac.ftranVec(sf.b, st.xB)
	for i := range st.xB {
		if st.xB[i] < -feasTol {
			return false
		}
		if st.xB[i] < 0 {
			st.xB[i] = 0
		}
	}
	return true
}

// slackRestore is the cheap first stage of warm-basis repair: dual pivots
// whose entering column is restricted to nonbasic slack/surplus columns.
// A slack is a unit column, so its pivot-row coefficient is just
// +/-rho[row] and its reduced cost reads off pi — each pivot costs one
// btran plus O(m), with no sweep over the structural columns. This is
// exactly the repair the per-slot LP-PT sequence needs: residual
// capacities shrank, so the violated rows are capacity rows whose slack
// re-enters while the displaced assignment mass leaves. Restricting the
// ratio test to slacks can break dual feasibility of the shifted costs,
// which costs extra phase-2 pivots but never correctness (phase 2
// reoptimizes with the true costs from whatever feasible basis results).
// It reports whether it reached primal feasibility within its budget.
func (st *simplexState) slackRestore() bool {
	sf := st.sf
	m := sf.m
	// pi prices the current basis under the true costs; maintained
	// incrementally across pivots (pi' = pi + step*rho).
	pi := st.pi
	for i := 0; i < m; i++ {
		pi[i] = sf.c[st.basis[i]]
	}
	st.fac.btran(pi)
	u := st.u
	rho := st.rho
	budget := m
	for iter := 0; iter < budget; iter++ {
		leave := -1
		worst := -feasTol
		for i := 0; i < m; i++ {
			if st.xB[i] < worst {
				worst = st.xB[i]
				leave = i
			}
		}
		if leave < 0 {
			for i := range st.xB {
				if st.xB[i] < 0 {
					st.xB[i] = 0
				}
			}
			return true
		}

		for i := range rho {
			rho[i] = 0
		}
		rho[leave] = 1
		st.fac.btran(rho)

		// Entering slack: min ratio rc/-alpha over nonbasic slacks with
		// alpha < 0, both read in O(1) per row (slack of row k is a unit
		// column with entry sgn at k, so alpha = sgn*rho[k] and
		// rc = -sgn*pi[k]; negative rc means the shifted-cost dual
		// feasibility is already gone and counts as 0).
		enter := -1
		var best, enterAlpha, enterRC float64
		for k := 0; k < m; k++ {
			j := sf.slackCol[k]
			if j < 0 || st.inBas[j] {
				continue
			}
			_, vals := sf.a.col(j)
			sgn := vals[0]
			alpha := sgn * rho[k]
			if alpha >= -pivotTol {
				continue
			}
			rc := -sgn * pi[k]
			if rc < 0 {
				rc = 0
			}
			if ratio := rc / -alpha; enter == -1 || ratio < best {
				best, enter, enterAlpha, enterRC = ratio, j, alpha, rc
			}
		}
		if enter < 0 {
			return false // no slack qualifies; caller escalates
		}

		st.ftran(enter, u)
		if math.Abs(u[leave]) <= pivotTol {
			return false
		}
		theta := st.xB[leave] / u[leave]
		for i := 0; i < m; i++ {
			if i == leave {
				continue
			}
			st.xB[i] -= theta * u[i]
			if st.xB[i] < 0 && st.xB[i] > -feasTol {
				st.xB[i] = 0
			}
		}
		st.xB[leave] = theta
		st.iters++

		step := enterRC / enterAlpha
		for i := 0; i < m; i++ {
			pi[i] += step * rho[i]
		}

		st.fac.update(u, leave)
		st.inBas[st.basis[leave]] = false
		st.inBas[enter] = true
		st.basis[leave] = enter
		if st.fac.size() >= refactorLimit(m) {
			st.refactorize()
			// Refactorization clears roundoff; pi stays valid because the
			// basis itself did not change.
		}
	}
	return false
}

// dualRestore repairs a primal-infeasible warm basis with dual simplex
// pivots instead of discarding it. This is the payoff case for warm
// starting the per-slot LP-PT sequence: residual capacities only shrink
// from slot to slot, so the previous slot's optimal vertex is almost
// always (slightly) primal infeasible in the next slot's LP, yet only a
// handful of dual pivots away from feasibility. slackRestore runs first;
// if some violated row cannot be repaired by re-entering a slack, the
// full dual simplex below takes over from wherever it stopped. The true
// costs need not price the warm basis dual feasible (objective
// coefficients drift too), so nonbasic reduced costs are first shifted up
// to zero — the basis is then dual feasible by construction, dual pivots
// restore xB >= 0, and phase 2 reoptimizes with the true costs from the
// repaired basis. It reports success; on false the caller must reset to a
// cold start.
func (st *simplexState) dualRestore() bool {
	sf := st.sf
	m := sf.m
	if st.anyArtificialBasic() {
		return false
	}
	if st.slackRestore() {
		return true
	}
	// Reduced costs of every non-artificial column, shifted up to zero
	// where negative so the warm basis starts dual feasible. The vector is
	// then maintained incrementally across pivots (the alpha row needed
	// for the update is computed by the ratio test anyway), so each dual
	// iteration costs one btran plus one sweep of column dots.
	pi := st.pi
	for i := 0; i < m; i++ {
		pi[i] = sf.c[st.basis[i]]
	}
	st.fac.btran(pi)
	rc := make([]float64, sf.artStart)
	for j := range rc {
		if st.inBas[j] {
			continue
		}
		if v := sf.c[j] - sf.a.dot(pi, j); v > 0 {
			rc[j] = v
		}
	}

	u := st.u
	rho := st.rho
	alpha := make([]float64, sf.artStart)
	budget := 2*m + 50
	for iter := 0; iter < budget; iter++ {
		// Leaving row: the most negative basic value.
		leave := -1
		worst := -feasTol
		for i := 0; i < m; i++ {
			if st.xB[i] < worst {
				worst = st.xB[i]
				leave = i
			}
		}
		if leave < 0 {
			for i := range st.xB {
				if st.xB[i] < 0 {
					st.xB[i] = 0
				}
			}
			return true
		}

		for i := range rho {
			rho[i] = 0
		}
		rho[leave] = 1
		st.fac.btran(rho)

		// Dual ratio test: entering column minimizes rc_j / -alpha_j over
		// nonbasic non-artificial columns with alpha_j < 0, keeping every
		// reduced cost nonnegative after the pivot.
		enter := -1
		var best float64
		for j := 0; j < sf.artStart; j++ {
			if st.inBas[j] {
				continue
			}
			a := sf.a.dot(rho, j)
			alpha[j] = a
			if a >= -pivotTol {
				continue
			}
			if ratio := rc[j] / -a; enter == -1 || ratio < best {
				best = ratio
				enter = j
			}
		}
		if enter < 0 {
			// No eligible pivot: the row certifies primal infeasibility
			// for this basis path; let the cold start decide.
			return false
		}

		st.ftran(enter, u)
		if math.Abs(u[leave]) <= pivotTol {
			return false
		}
		theta := st.xB[leave] / u[leave]
		for i := 0; i < m; i++ {
			if i == leave {
				continue
			}
			st.xB[i] -= theta * u[i]
			if st.xB[i] < 0 && st.xB[i] > -feasTol {
				st.xB[i] = 0
			}
		}
		st.xB[leave] = theta
		st.iters++

		// rc'_j = rc_j - (rc_q/alpha_q) alpha_j; the leaving variable goes
		// nonbasic at -rc_q/alpha_q >= 0, the entering one to zero.
		stepD := rc[enter] / alpha[enter]
		for j := 0; j < sf.artStart; j++ {
			if st.inBas[j] || j == enter {
				continue
			}
			if v := rc[j] - stepD*alpha[j]; v > 0 {
				rc[j] = v
			} else {
				rc[j] = 0
			}
		}
		if out := st.basis[leave]; out < sf.artStart {
			if v := -stepD; v > 0 {
				rc[out] = v
			} else {
				rc[out] = 0
			}
		}
		rc[enter] = 0

		st.fac.update(u, leave)
		st.inBas[st.basis[leave]] = false
		st.inBas[enter] = true
		st.basis[leave] = enter
		if st.fac.size() >= refactorLimit(m) {
			st.refactorize()
		}
	}
	return false
}

// refactorize periodically rebuilds the reference inverse from the basis
// columns and recomputes xB from scratch, clearing accumulated eta
// roundoff. A numerically singular rebuild (which a valid basis should
// never produce) leaves the product form in place.
func (st *simplexState) refactorize() {
	if st.refactorBackoff > 0 {
		st.refactorBackoff--
		return
	}
	if !st.fac.refactorize(st.sf.a, st.basis) {
		st.refactorBackoff = refactorLimit(st.sf.m)
		return
	}
	st.fac.ftranVec(st.sf.b, st.xB)
	for i := range st.xB {
		if st.xB[i] < 0 && st.xB[i] > -feasTol {
			st.xB[i] = 0
		}
	}
}

// priceDevex scans columns from the rotating cursor and returns the
// improving column with the best devex score rc^2/weight (-1 if none,
// proving optimality). Scanned improving candidates are appended to
// st.candBuf for the devex weight update of this iteration.
func (st *simplexState) priceDevex(c []float64, limit int) int {
	enter := -1
	bestScore := 0.0
	st.candBuf = st.candBuf[:0]
	sinceFound := 0
	for scanned := 0; scanned < limit; scanned++ {
		j := st.cursor + scanned
		if j >= limit {
			j -= limit
		}
		if st.inBas[j] {
			continue
		}
		rc := c[j] - st.sf.a.dot(st.pi, j)
		if rc < -reducedCostTol {
			if len(st.candBuf) < 2*pricingWindow {
				st.candBuf = append(st.candBuf, j)
			}
			score := rc * rc / st.weights[j]
			if score > bestScore {
				bestScore = score
				enter = j
			}
		}
		if enter >= 0 {
			sinceFound++
			if sinceFound >= pricingWindow {
				st.cursor = j + 1
				if st.cursor >= limit {
					st.cursor = 0
				}
				break
			}
		}
	}
	return enter
}

// updateDevex refreshes the reference weights after choosing pivot
// (enter, leave) with direction u: the classic devex recurrence applied
// to this iteration's scanned candidates (partial pricing keeps the
// remaining weights as-is; staleness only affects pivot choice, never
// correctness). It returns true if the reference framework was reset.
func (st *simplexState) updateDevex(enter, leave int, u []float64) bool {
	alphaQ := u[leave]
	wq := st.weights[enter]
	ratio := wq / (alphaQ * alphaQ)
	if ratio > devexResetRatio {
		st.resetWeights()
		return true
	}
	// rho = e_leave^T B^{-1}: one btran gives the pivot-row alphas.
	rho := st.rho
	for i := range rho {
		rho[i] = 0
	}
	rho[leave] = 1
	st.fac.btran(rho)
	for _, j := range st.candBuf {
		if j == enter || st.inBas[j] {
			continue
		}
		alpha := st.sf.a.dot(rho, j)
		if w := alpha * alpha * ratio; w > st.weights[j] {
			st.weights[j] = w
		}
	}
	wLeave := ratio
	if wLeave < 1 {
		wLeave = 1
	}
	st.weights[st.basis[leave]] = wLeave
	return false
}

// run performs simplex iterations on the cost vector c until optimality,
// unboundedness, or the iteration budget is exhausted. allowArt controls
// whether artificial columns may (re-)enter the basis — true only in
// phase 1.
func (st *simplexState) run(c []float64, maxIters int, allowArt bool) Status {
	m := st.sf.m
	pi := st.pi
	u := st.u
	degenerate := 0

	for ; st.iters < maxIters; st.iters++ {
		// pi = c_B^T B^{-1} via one btran of the basic costs.
		for i := 0; i < m; i++ {
			pi[i] = c[st.basis[i]]
		}
		st.fac.btran(pi)

		// Pricing. Bland's rule scans in index order (anti-cycling);
		// otherwise devex partial pricing from the rotating cursor. A
		// full sweep with no improving column proves optimality either
		// way.
		enter := -1
		useBland := degenerate >= degenerateLimit
		limit := st.sf.nTotal
		if !allowArt {
			limit = st.sf.artStart
		}
		if useBland {
			for j := 0; j < limit; j++ {
				if st.inBas[j] {
					continue
				}
				if c[j]-st.sf.a.dot(pi, j) < -reducedCostTol {
					enter = j
					break
				}
			}
		} else {
			enter = st.priceDevex(c, limit)
		}
		if enter < 0 {
			return StatusOptimal
		}

		// Direction and ratio test.
		st.ftran(enter, u)
		leave := -1
		var theta float64
		for i := 0; i < m; i++ {
			if u[i] <= pivotTol {
				continue
			}
			ratio := st.xB[i] / u[i]
			if ratio < -feasTol {
				ratio = 0
			}
			if leave == -1 || ratio < theta-pivotTol ||
				(ratio < theta+pivotTol && st.basis[i] < st.basis[leave]) {
				leave = i
				theta = ratio
			}
		}
		if leave == -1 {
			return StatusUnbounded
		}
		if theta < feasTol {
			degenerate++
		} else {
			degenerate = 0
		}

		if !useBland {
			st.updateDevex(enter, leave, u)
		}

		// Pivot: update xB, append the eta factor, adjust bookkeeping.
		for i := 0; i < m; i++ {
			if i == leave {
				continue
			}
			st.xB[i] -= theta * u[i]
			if st.xB[i] < 0 && st.xB[i] > -feasTol {
				st.xB[i] = 0
			}
		}
		st.xB[leave] = theta

		st.fac.update(u, leave)
		st.inBas[st.basis[leave]] = false
		st.inBas[enter] = true
		st.basis[leave] = enter

		if st.fac.size() >= refactorLimit(m) {
			st.refactorize()
		}
	}
	return StatusIterLimit
}

// SolveOptions tunes the solver.
type SolveOptions struct {
	// MaxIterations caps total simplex pivots. Zero selects an automatic
	// budget of 200*(m+50) per phase.
	MaxIterations int
	// WarmStart seeds the solve from the basis of a previous solution
	// (Solution.Basis), typically of a structurally similar problem: the
	// previous time slot's LP-PT, the previous rounding pass, the same
	// grid cell's previous repetition, or a branch-and-bound parent node.
	// Basis columns are matched by index and name; entries that no longer
	// resolve are dropped. A seeded basis that is primal infeasible for
	// this problem is repaired with dual simplex pivots; if the repair
	// fails the solver falls back to a cold start. Warm starting never
	// changes the result — only the iteration count.
	WarmStart *Basis
}

// Solve optimizes the problem as a continuous LP (integrality markers are
// ignored). It never returns an error for well-formed problems; infeasible
// and unbounded outcomes are reported in Solution.Status.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveWithOptions(SolveOptions{})
}

// SolveWithOptions is Solve with explicit tuning parameters.
func (p *Problem) SolveWithOptions(opts SolveOptions) (*Solution, error) {
	if len(p.cols) == 0 {
		return nil, ErrNoVariables
	}
	if fixed, n := p.detectFixedZero(); n > 0 {
		return p.solveReduced(fixed, opts)
	}
	return p.solveDirect(opts)
}

// solveDirect runs the two-phase simplex without the presolve step.
func (p *Problem) solveDirect(opts SolveOptions) (*Solution, error) {
	sc := scratchPool.Get().(*solveScratch)
	defer scratchPool.Put(sc)
	sf := p.toStandard(&sc.sf)
	st := &sc.st
	st.init(sf, &sc.fac)
	maxIters := opts.MaxIterations
	if maxIters == 0 {
		maxIters = 200 * (sf.m + 50)
	}

	if opts.WarmStart != nil {
		if cols := sf.resolveBasis(p, opts.WarmStart); len(cols) > 0 {
			if !st.warmStart(cols) && !st.dualRestore() {
				// The seed could not be repaired: discard and start cold.
				st.resetToBasis0()
			}
		}
	}

	// Phase 1: needed only while some artificial is basic at a nonzero
	// value (a warm start, or an all-slack start of a pure <= problem,
	// skips it entirely).
	if st.needsPhase1() {
		c1 := make([]float64, sf.nTotal)
		for j := sf.artStart; j < sf.nTotal; j++ {
			c1[j] = 1
		}
		status := st.run(c1, maxIters, true)
		if status == StatusIterLimit {
			return &Solution{Status: StatusIterLimit, Iterations: st.iters, Nodes: 1}, nil
		}
		// Infeasible if any artificial remains positive.
		artSum := 0.0
		for i, bj := range st.basis {
			if bj >= sf.artStart {
				artSum += st.xB[i]
			}
		}
		if artSum > artValueTol {
			return &Solution{Status: StatusInfeasible, Iterations: st.iters, Nodes: 1}, nil
		}
	}
	// Pivot out any artificial stuck in the basis at value zero so that
	// phase 2 cannot drift it away from zero.
	if st.anyArtificialBasic() {
		if err := st.purgeArtificials(); err != nil {
			return &Solution{Status: StatusInfeasible, Iterations: st.iters, Nodes: 1}, nil
		}
	}

	// Phase 2.
	maxIters += st.iters
	st.resetWeights()
	status := st.run(sf.c, maxIters, false)
	sol := &Solution{Status: status, Iterations: st.iters, Nodes: 1}
	if status != StatusOptimal {
		return sol, nil
	}

	sol.X = make([]float64, sf.n)
	obj := 0.0
	for i, bj := range st.basis {
		if bj < sf.n {
			v := st.xB[i]
			if v < 0 && v > -feasTol {
				v = 0
			}
			sol.X[bj] = v
		}
		obj += sf.c[bj] * st.xB[i]
	}
	if p.sense == Maximize {
		obj = -obj
	}
	sol.Objective = obj

	// Dual values: pi = c_B B^{-1} prices the internal rows; undo the
	// sense negation and any row sign flips so Dual[i] = dObjective/db_i
	// for the caller's row i.
	pi := st.dualVector(sf.c)
	sol.Dual = make([]float64, sf.m)
	for i := range sol.Dual {
		d := pi[i]
		if p.sense == Maximize {
			d = -d
		}
		if sf.flipped[i] {
			d = -d
		}
		sol.Dual[i] = d
	}
	sol.Basis = captureBasis(p, sf, st.basis)
	return sol, nil
}

// needsPhase1 reports whether some artificial variable is basic above the
// feasibility tolerance.
func (st *simplexState) needsPhase1() bool {
	for i, bj := range st.basis {
		if bj >= st.sf.artStart && st.xB[i] > artValueTol {
			return true
		}
	}
	return false
}

// anyArtificialBasic reports whether an artificial occupies any basis
// position (at whatever value).
func (st *simplexState) anyArtificialBasic() bool {
	for _, bj := range st.basis {
		if bj >= st.sf.artStart {
			return true
		}
	}
	return false
}

// dualVector computes pi = c_B B^{-1} for the current basis.
func (st *simplexState) dualVector(c []float64) []float64 {
	m := st.sf.m
	pi := make([]float64, m)
	for i := 0; i < m; i++ {
		pi[i] = c[st.basis[i]]
	}
	st.fac.btran(pi)
	return pi
}

// purgeArtificials removes zero-valued artificial variables from the basis
// by pivoting in any non-artificial column with a nonzero entry in that
// basis row; if none exists the row is redundant and the artificial stays
// at zero harmlessly (it is cost-zero in phase 2 and barred from pricing).
func (st *simplexState) purgeArtificials() error {
	m := st.sf.m
	u := st.u
	for i := 0; i < m; i++ {
		if st.basis[i] < st.sf.artStart {
			continue
		}
		// Find a replacement column with |(B^{-1}A_j)_i| above tolerance.
		for j := 0; j < st.sf.artStart; j++ {
			if st.inBas[j] {
				continue
			}
			st.ftran(j, u)
			if math.Abs(u[i]) <= pivotTol {
				continue
			}
			// Pivot j in at row i (degenerate pivot: xB[i] == 0).
			st.fac.update(u, i)
			st.inBas[st.basis[i]] = false
			st.inBas[j] = true
			st.basis[i] = j
			if st.fac.size() >= refactorLimit(m) {
				st.refactorize()
			}
			break
		}
	}
	return nil
}
