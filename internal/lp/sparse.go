package lp

// csc is a compressed-sparse-column matrix: the nonzeros of column j are
// ri[ptr[j]:ptr[j+1]] / vx[ptr[j]:ptr[j+1]]. All columns share two backing
// arrays, so column scans (the pricing loop) walk contiguous memory
// instead of chasing one slice header per column.
type csc struct {
	ptr []int
	ri  []int
	vx  []float64
}

// numCols returns the number of columns appended so far.
func (a *csc) numCols() int { return len(a.ptr) - 1 }

// push appends one nonzero to the column currently being assembled;
// endCol seals it. Together they let a builder stream entries straight
// into the shared backing arrays without a per-column staging buffer.
func (a *csc) push(row int, val float64) {
	a.ri = append(a.ri, row)
	a.vx = append(a.vx, val)
}

// endCol seals the column assembled by preceding push calls.
func (a *csc) endCol() {
	a.ptr = append(a.ptr, len(a.ri))
}

// appendUnit adds a column with a single nonzero.
func (a *csc) appendUnit(row int, val float64) {
	a.ri = append(a.ri, row)
	a.vx = append(a.vx, val)
	a.ptr = append(a.ptr, len(a.ri))
}

// col returns views of column j's row indices and values.
func (a *csc) col(j int) ([]int, []float64) {
	s, e := a.ptr[j], a.ptr[j+1]
	return a.ri[s:e], a.vx[s:e]
}

// dot computes v . A_j for a dense vector v. The reslicing lets the
// compiler drop the per-element bounds checks in the pricing loop, which
// calls this hundreds of times per pivot.
func (a *csc) dot(v []float64, j int) float64 {
	s, e := a.ptr[j], a.ptr[j+1]
	ri := a.ri[s:e]
	vx := a.vx[s:e]
	vx = vx[:len(ri)]
	d := 0.0
	for k := range ri {
		d += v[ri[k]] * vx[k]
	}
	return d
}
