package scenario

import (
	"bytes"
	"strings"
	"testing"

	"mecoffload/internal/sim"
)

// TestBuiltinsMaterialize: every packaged scenario validates, materializes
// a non-trivial workload, and survives a JSON round-trip bit-for-bit.
func TestBuiltinsMaterialize(t *testing.T) {
	for _, name := range BuiltinNames() {
		t.Run(name, func(t *testing.T) {
			doc, err := Builtin(name)
			if err != nil {
				t.Fatal(err)
			}
			net, reqs, drift, err := Materialize(doc)
			if err != nil {
				t.Fatal(err)
			}
			if net.NumStations() != doc.Stations {
				t.Fatalf("network has %d stations, want %d", net.NumStations(), doc.Stations)
			}
			if len(reqs) < doc.Horizon/10 {
				t.Fatalf("only %d requests over %d slots — arrival sampling broken", len(reqs), doc.Horizon)
			}
			for i, r := range reqs {
				if r.ID != i {
					t.Fatalf("request %d has ID %d", i, r.ID)
				}
				if i > 0 && r.ArrivalSlot < reqs[i-1].ArrivalSlot {
					t.Fatalf("arrivals not sorted at %d", i)
				}
			}
			if err := drift.Validate(doc.Stations); err != nil {
				t.Fatal(err)
			}

			var buf bytes.Buffer
			if err := WriteDrift(&buf, doc); err != nil {
				t.Fatal(err)
			}
			back, err := ReadDrift(&buf)
			if err != nil {
				t.Fatal(err)
			}
			_, reqs2, _, err := Materialize(back)
			if err != nil {
				t.Fatal(err)
			}
			if len(reqs2) != len(reqs) {
				t.Fatalf("round-tripped scenario generated %d requests, original %d", len(reqs2), len(reqs))
			}
			for i := range reqs {
				if reqs[i].ArrivalSlot != reqs2[i].ArrivalSlot ||
					reqs[i].AccessStation != reqs2[i].AccessStation ||
					reqs[i].ExpectedReward() != reqs2[i].ExpectedReward() {
					t.Fatalf("request %d differs after document round-trip", i)
				}
			}
		})
	}
	if _, err := Builtin("no-such-scenario"); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}

// TestMaterializeDeterministic: same document, same outputs — the doc is
// the artifact.
func TestMaterializeDeterministic(t *testing.T) {
	doc, err := Builtin("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	_, a, _, err := Materialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	_, b, _, err := Materialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ArrivalSlot != b[i].ArrivalSlot || a[i].AccessStation != b[i].AccessStation ||
			a[i].DurationSlots != b[i].DurationSlots || a[i].ExpectedReward() != b[i].ExpectedReward() {
			t.Fatalf("request %d differs between identical materializations", i)
		}
	}
}

// TestRateCurveShapesArrivals: arrivals must track the curve — the
// flash-crowd burst window holds a large multiple of the surrounding
// baseline's arrivals.
func TestRateCurveShapesArrivals(t *testing.T) {
	doc, err := Builtin("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	_, reqs, _, err := Materialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	b := doc.Bursts[0]
	inBurst, before := 0, 0
	for _, r := range reqs {
		switch {
		case r.ArrivalSlot >= b.Start && r.ArrivalSlot < b.End:
			inBurst++
		case r.ArrivalSlot >= b.Start-(b.End-b.Start) && r.ArrivalSlot < b.Start:
			before++
		}
	}
	if inBurst < 3*before {
		t.Fatalf("burst window has %d arrivals vs %d in the equal window before — 5x burst not visible", inBurst, before)
	}
}

// TestHandoverRepointsLaterArrivals: requests generated at or after a
// handover slot never attach to the vacated station.
func TestHandoverRepointsLaterArrivals(t *testing.T) {
	doc, err := Builtin("mobility-handover")
	if err != nil {
		t.Fatal(err)
	}
	_, reqs, _, err := Materialize(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		for _, h := range doc.Handovers {
			if r.ArrivalSlot >= h.Slot && r.AccessStation == h.From {
				t.Fatalf("request %d arrives at slot %d on vacated station %d", r.ID, r.ArrivalSlot, h.From)
			}
		}
	}
}

// TestTimeShiftMetamorphic: shifting a scenario by delta slots must
// materialize the identical request sequence delayed by delta, with every
// drift event delayed by delta — time-translation invariance of the
// generator.
func TestTimeShiftMetamorphic(t *testing.T) {
	const delta = 37
	for _, name := range BuiltinNames() {
		t.Run(name, func(t *testing.T) {
			doc, err := Builtin(name)
			if err != nil {
				t.Fatal(err)
			}
			shifted, err := TimeShift(doc, delta)
			if err != nil {
				t.Fatal(err)
			}
			if err := shifted.Validate(); err != nil {
				t.Fatalf("shifted document invalid: %v", err)
			}
			_, a, da, err := Materialize(doc)
			if err != nil {
				t.Fatal(err)
			}
			_, b, db, err := Materialize(shifted)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("shifted run generated %d requests, original %d", len(b), len(a))
			}
			for i := range a {
				if b[i].ArrivalSlot != a[i].ArrivalSlot+delta {
					t.Fatalf("request %d arrival %d, want %d", i, b[i].ArrivalSlot, a[i].ArrivalSlot+delta)
				}
				if b[i].AccessStation != a[i].AccessStation || b[i].DurationSlots != a[i].DurationSlots ||
					b[i].ExpectedReward() != a[i].ExpectedReward() {
					t.Fatalf("request %d attributes differ under time shift", i)
				}
			}
			for i, h := range da.Handovers {
				if db.Handovers[i].Slot != h.Slot+delta {
					t.Fatalf("handover %d not shifted", i)
				}
			}
			for i, o := range da.Outages {
				if db.Outages[i].Start != o.Start+delta || db.Outages[i].End != o.End+delta {
					t.Fatalf("outage %d not shifted", i)
				}
			}
		})
	}
	doc, _ := Builtin("iid")
	if _, err := TimeShift(doc, -1); err == nil {
		t.Fatal("negative shift accepted")
	}
}

// TestDriftDocValidationRejects: table of malformed documents the decoder
// must reject.
func TestDriftDocValidationRejects(t *testing.T) {
	valid := func() *DriftDoc {
		d, err := Builtin("iid")
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	cases := map[string]func(*DriftDoc){
		"bad version":            func(d *DriftDoc) { d.Version = 99 },
		"empty name":             func(d *DriftDoc) { d.Name = "" },
		"zero horizon":           func(d *DriftDoc) { d.Horizon = 0 },
		"huge horizon":           func(d *DriftDoc) { d.Horizon = 1 << 21 },
		"zero stations":          func(d *DriftDoc) { d.Stations = 0 },
		"zero rate":              func(d *DriftDoc) { d.RatePerSlot = 0 },
		"nan rate":               func(d *DriftDoc) { d.RatePerSlot = nan() },
		"curve slot past end":    func(d *DriftDoc) { d.RateCurve = []CurvePoint{{Slot: d.Horizon, Factor: 1}} },
		"curve not increasing":   func(d *DriftDoc) { d.RateCurve = []CurvePoint{{Slot: 5, Factor: 1}, {Slot: 5, Factor: 2}} },
		"negative curve factor":  func(d *DriftDoc) { d.RateCurve = []CurvePoint{{Slot: 0, Factor: -1}} },
		"zero reward factor":     func(d *DriftDoc) { d.RewardCurve = []CurvePoint{{Slot: 0, Factor: 0}} },
		"inverted burst":         func(d *DriftDoc) { d.Bursts = []Burst{{Start: 10, End: 5, Factor: 2}} },
		"burst past horizon":     func(d *DriftDoc) { d.Bursts = []Burst{{Start: d.Horizon, End: d.Horizon + 5, Factor: 2}} },
		"handover out of range":  func(d *DriftDoc) { d.Handovers = []sim.Handover{{Slot: 1, From: 0, To: 99}} },
		"self handover":          func(d *DriftDoc) { d.Handovers = []sim.Handover{{Slot: 1, From: 2, To: 2}} },
		"outage scale too big":   func(d *DriftDoc) { d.Outages = []sim.Outage{{Station: 0, Start: 1, End: 5, Scale: 1.5}} },
		"outage window inverted": func(d *DriftDoc) { d.Outages = []sim.Outage{{Station: 0, Start: 5, End: 5, Scale: 0}} },
		"overlapping outages": func(d *DriftDoc) {
			d.Outages = []sim.Outage{
				{Station: 0, Start: 10, End: 30, Scale: 0},
				{Station: 0, Start: 20, End: 40, Scale: 0.5},
			}
		},
	}
	for name, corrupt := range cases {
		d := valid()
		corrupt(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: validation accepted the document", name)
		}
	}
	// Distinct stations may overlap in time — that is the correlated
	// outage scenario itself.
	d := valid()
	d.Outages = []sim.Outage{
		{Station: 0, Start: 10, End: 30, Scale: 0},
		{Station: 1, Start: 10, End: 30, Scale: 0},
	}
	if err := d.Validate(); err != nil {
		t.Errorf("cross-station overlapping outages rejected: %v", err)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// TestReadDriftRejectsGarbage: the decode path must error, not panic, on
// malformed input.
func TestReadDriftRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"", "{", "null", `{"version":1}`, `{"version":1,"name":"x"}`, "[1,2,3]",
	} {
		if _, err := ReadDrift(strings.NewReader(s)); err == nil {
			t.Errorf("ReadDrift(%q) accepted garbage", s)
		}
	}
}
