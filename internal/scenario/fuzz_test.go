package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzScenarioDecode drives the drift-scenario decoder with arbitrary
// bytes. The decoder must be total (no panics), and any document it
// accepts must re-encode and re-decode to an equally valid document — the
// decode/encode pair is a retraction onto valid scenarios.
func FuzzScenarioDecode(f *testing.F) {
	for _, name := range BuiltinNames() {
		doc, err := Builtin(name)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteDrift(&buf, doc); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"version":1,"name":"x","horizon":10,"stations":2,"ratePerSlot":0.5}`))
	f.Add([]byte(`{"version":1,"name":"x","horizon":10,"stations":2,"ratePerSlot":0.5,` +
		`"outages":[{"station":0,"start":1,"end":3,"scale":0},{"station":0,"start":2,"end":4,"scale":0}]}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"rateCurve":[{"slot":-1}]}`))
	f.Add([]byte("null"))
	f.Add([]byte("{"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := ReadDrift(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted documents must satisfy the validator's contract...
		if doc.Horizon <= 0 || doc.Stations <= 0 || !(doc.RatePerSlot > 0) {
			t.Fatalf("decoder accepted out-of-contract document %+v", doc)
		}
		// ...and survive an encode/decode round trip unchanged.
		var buf bytes.Buffer
		if err := WriteDrift(&buf, doc); err != nil {
			t.Fatalf("accepted document failed to encode: %v", err)
		}
		back, err := ReadDrift(&buf)
		if err != nil {
			t.Fatalf("re-encoded document failed to decode: %v", err)
		}
		a, _ := json.Marshal(doc)
		b, _ := json.Marshal(back)
		if !bytes.Equal(a, b) {
			t.Fatalf("round trip changed the document:\n%s\n%s", a, b)
		}
	})
}

// FuzzScenarioV1Decode covers the request-list scenario reader with the
// same totality contract.
func FuzzScenarioV1Decode(f *testing.F) {
	f.Add([]byte(`{"version":1,"network":{"slotMHz":1000,"cUnit":20,"stations":[{"capacityMHz":3000,"speedFactor":1}]},"requests":[]}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte("[]"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		net, reqs, err := Read(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		if net == nil || net.NumStations() == 0 {
			t.Fatal("accepted scenario has no stations")
		}
		for i, r := range reqs {
			if r.AccessStation < 0 || r.AccessStation >= net.NumStations() {
				t.Fatalf("request %d access station out of range", i)
			}
		}
	})
}
