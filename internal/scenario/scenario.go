// Package scenario serializes evaluation scenarios — an MEC network plus
// an AR request workload — as JSON, so experiment inputs are reproducible
// artifacts that can be shared, diffed, and replayed across machines
// independent of the random generators that produced them.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"mecoffload/internal/dist"
	"mecoffload/internal/graph"
	"mecoffload/internal/mec"
	"mecoffload/internal/topology"
)

// ErrDecode reports malformed or inconsistent scenario JSON.
var ErrDecode = errors.New("scenario: invalid scenario document")

// Format version written into every document.
const formatVersion = 1

// Document is the on-disk scenario representation.
type Document struct {
	Version  int           `json:"version"`
	Network  networkJSON   `json:"network"`
	Requests []requestJSON `json:"requests"`
}

type networkJSON struct {
	SlotMHz  float64       `json:"slotMHz"`
	CUnit    float64       `json:"cUnit"`
	Stations []stationJSON `json:"stations"`
	Edges    []edgeJSON    `json:"edges"`
}

type stationJSON struct {
	CapacityMHz float64 `json:"capacityMHz"`
	SpeedFactor float64 `json:"speedFactor"`
	X           float64 `json:"x"`
	Y           float64 `json:"y"`
}

type edgeJSON struct {
	U       int     `json:"u"`
	V       int     `json:"v"`
	DelayMS float64 `json:"delayMS"`
}

type requestJSON struct {
	ID            int           `json:"id"`
	ArrivalSlot   int           `json:"arrivalSlot"`
	AccessStation int           `json:"accessStation"`
	DeadlineMS    float64       `json:"deadlineMS"`
	DurationSlots int           `json:"durationSlots,omitempty"`
	Tasks         []taskJSON    `json:"tasks"`
	Outcomes      []outcomeJSON `json:"outcomes"`
}

type taskJSON struct {
	Name     string  `json:"name"`
	OutputKb float64 `json:"outputKb"`
	WorkMS   float64 `json:"workMS"`
}

type outcomeJSON struct {
	Rate   float64 `json:"rateMBs"`
	Prob   float64 `json:"prob"`
	Reward float64 `json:"reward"`
}

// Encode converts a network and workload into a document.
func Encode(n *mec.Network, reqs []*mec.Request) (*Document, error) {
	if n == nil {
		return nil, fmt.Errorf("%w: nil network", ErrDecode)
	}
	doc := &Document{Version: formatVersion}
	doc.Network.SlotMHz = n.SlotMHz()
	doc.Network.CUnit = n.CUnit()
	positions := n.NodePositions()
	for i, st := range n.Stations() {
		sj := stationJSON{CapacityMHz: st.CapacityMHz, SpeedFactor: st.SpeedFactor}
		if i < len(positions) {
			sj.X, sj.Y = positions[i].X, positions[i].Y
		}
		doc.Network.Stations = append(doc.Network.Stations, sj)
	}
	for _, e := range n.Edges() {
		doc.Network.Edges = append(doc.Network.Edges, edgeJSON{U: e.U, V: e.V, DelayMS: e.Weight})
	}
	for _, r := range reqs {
		rj := requestJSON{
			ID:            r.ID,
			ArrivalSlot:   r.ArrivalSlot,
			AccessStation: r.AccessStation,
			DeadlineMS:    r.DeadlineMS,
			DurationSlots: r.DurationSlots,
		}
		for _, t := range r.Tasks {
			rj.Tasks = append(rj.Tasks, taskJSON{Name: t.Name, OutputKb: t.OutputKb, WorkMS: t.WorkMS})
		}
		for _, o := range r.Dist.Outcomes() {
			rj.Outcomes = append(rj.Outcomes, outcomeJSON{Rate: o.Rate, Prob: o.Prob, Reward: o.Reward})
		}
		doc.Requests = append(doc.Requests, rj)
	}
	return doc, nil
}

// Decode rebuilds the network and workload from a document.
func Decode(doc *Document) (*mec.Network, []*mec.Request, error) {
	if doc == nil || doc.Version != formatVersion {
		return nil, nil, fmt.Errorf("%w: version %d", ErrDecode, versionOf(doc))
	}
	nStations := len(doc.Network.Stations)
	if nStations == 0 {
		return nil, nil, fmt.Errorf("%w: no stations", ErrDecode)
	}
	g := graph.New(nStations)
	nodes := make([]topology.Node, nStations)
	stations := make([]mec.BaseStation, nStations)
	for i, sj := range doc.Network.Stations {
		stations[i] = mec.BaseStation{CapacityMHz: sj.CapacityMHz, SpeedFactor: sj.SpeedFactor}
		nodes[i] = topology.Node{X: sj.X, Y: sj.Y}
	}
	for _, ej := range doc.Network.Edges {
		if _, err := g.AddEdge(ej.U, ej.V, ej.DelayMS); err != nil {
			return nil, nil, fmt.Errorf("%w: edge (%d, %d): %v", ErrDecode, ej.U, ej.V, err)
		}
	}
	net, err := mec.NewNetwork(mec.NetworkConfig{
		Stations: stations,
		Topo:     &topology.Topology{Graph: g, Nodes: nodes},
		SlotMHz:  doc.Network.SlotMHz,
		CUnit:    doc.Network.CUnit,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}

	reqs := make([]*mec.Request, 0, len(doc.Requests))
	for _, rj := range doc.Requests {
		outcomes := make([]dist.Outcome, len(rj.Outcomes))
		for i, oj := range rj.Outcomes {
			outcomes[i] = dist.Outcome{Rate: oj.Rate, Prob: oj.Prob, Reward: oj.Reward}
		}
		d, err := dist.NewRateReward(outcomes)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: request %d distribution: %v", ErrDecode, rj.ID, err)
		}
		tasks := make([]mec.Task, len(rj.Tasks))
		for i, tj := range rj.Tasks {
			tasks[i] = mec.Task{Name: tj.Name, OutputKb: tj.OutputKb, WorkMS: tj.WorkMS}
		}
		r := &mec.Request{
			ID:            rj.ID,
			ArrivalSlot:   rj.ArrivalSlot,
			AccessStation: rj.AccessStation,
			Tasks:         tasks,
			DeadlineMS:    rj.DeadlineMS,
			DurationSlots: rj.DurationSlots,
			Dist:          d,
		}
		if rj.AccessStation < 0 || rj.AccessStation >= nStations {
			return nil, nil, fmt.Errorf("%w: request %d access station %d", ErrDecode, rj.ID, rj.AccessStation)
		}
		if err := r.Validate(); err != nil {
			return nil, nil, fmt.Errorf("%w: request %d: %v", ErrDecode, rj.ID, err)
		}
		reqs = append(reqs, r)
	}
	return net, reqs, nil
}

func versionOf(doc *Document) int {
	if doc == nil {
		return -1
	}
	return doc.Version
}

// Write encodes a scenario as indented JSON.
func Write(w io.Writer, n *mec.Network, reqs []*mec.Request) error {
	doc, err := Encode(n, reqs)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("scenario: encoding: %w", err)
	}
	return nil
}

// Read decodes a scenario from JSON.
func Read(r io.Reader) (*mec.Network, []*mec.Request, error) {
	var doc Document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	return Decode(&doc)
}
