package scenario

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mecoffload/internal/core"
	"mecoffload/internal/mec"
	"mecoffload/internal/workload"
)

func fixture(t *testing.T, seed int64) (*mec.Network, []*mec.Request) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := mec.RandomNetwork(8, 3000, 3600, rng)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(workload.Config{
		NumRequests: 40, NumStations: 8, GeometricRates: true, ArrivalHorizon: 20,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return net, reqs
}

func TestRoundTripPreservesBehavior(t *testing.T) {
	net, reqs := fixture(t, 1)

	var buf bytes.Buffer
	if err := Write(&buf, net, reqs); err != nil {
		t.Fatal(err)
	}
	net2, reqs2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if net2.NumStations() != net.NumStations() || len(reqs2) != len(reqs) {
		t.Fatalf("sizes changed: %d/%d stations, %d/%d requests",
			net2.NumStations(), net.NumStations(), len(reqs2), len(reqs))
	}

	// The decoded scenario must behave identically: same Heu run under the
	// same seed.
	workload.Reset(reqs)
	a, err := core.Heu(net, reqs, rand.New(rand.NewSource(9)), core.HeuOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Heu(net2, reqs2, rand.New(rand.NewSource(9)), core.HeuOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalReward != b.TotalReward || a.Served != b.Served {
		t.Fatalf("behavior diverged after round trip: %v/%d vs %v/%d",
			a.TotalReward, a.Served, b.TotalReward, b.Served)
	}
}

func TestRoundTripFields(t *testing.T) {
	net, reqs := fixture(t, 2)
	doc, err := Encode(net, reqs)
	if err != nil {
		t.Fatal(err)
	}
	net2, reqs2, err := Decode(doc)
	if err != nil {
		t.Fatal(err)
	}
	if net2.SlotMHz() != net.SlotMHz() || net2.CUnit() != net.CUnit() {
		t.Fatal("network parameters changed")
	}
	for i := range reqs {
		if reqs[i].ArrivalSlot != reqs2[i].ArrivalSlot ||
			reqs[i].AccessStation != reqs2[i].AccessStation ||
			reqs[i].DeadlineMS != reqs2[i].DeadlineMS ||
			reqs[i].DurationSlots != reqs2[i].DurationSlots ||
			len(reqs[i].Tasks) != len(reqs2[i].Tasks) ||
			reqs[i].Dist.Len() != reqs2[i].Dist.Len() {
			t.Fatalf("request %d fields changed", i)
		}
		if reqs[i].ExpectedReward() != reqs2[i].ExpectedReward() {
			t.Fatalf("request %d distribution changed", i)
		}
	}
	// Backhaul delays preserved.
	for u := 0; u < net.NumStations(); u++ {
		for v := 0; v < net.NumStations(); v++ {
			if net.OneWayDelayMS(u, v) != net2.OneWayDelayMS(u, v) {
				t.Fatalf("delay (%d, %d) changed", u, v)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	net, reqs := fixture(t, 3)
	cases := []struct {
		name   string
		mutate func(*Document)
	}{
		{"nil", nil},
		{"bad version", func(d *Document) { d.Version = 99 }},
		{"no stations", func(d *Document) { d.Network.Stations = nil }},
		{"bad edge", func(d *Document) { d.Network.Edges[0].U = 99 }},
		{"bad access", func(d *Document) { d.Requests[0].AccessStation = 99 }},
		{"bad distribution", func(d *Document) { d.Requests[0].Outcomes[0].Prob = 5 }},
		{"no tasks", func(d *Document) { d.Requests[0].Tasks = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.mutate == nil {
				if _, _, err := Decode(nil); err == nil {
					t.Fatal("want error for nil document")
				}
				return
			}
			clone, err := Encode(net, reqs) // fresh copy
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(clone)
			if _, _, err := Decode(clone); err == nil {
				t.Fatal("want decode error")
			}
		})
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, _, err := Read(strings.NewReader("{broken")); err == nil {
		t.Fatal("want error for malformed JSON")
	}
}
