// Non-stationary scenario DSL: a versioned JSON document describing how
// an experiment's environment drifts over the horizon — piecewise arrival
// and reward curves (diurnal load), flash-crowd bursts, mobility
// handovers, and correlated station outages — plus the generator that
// materializes it into a concrete network, workload, and drift script.
// Unlike the v1 request-list documents, a drift scenario is generative:
// it stores the recipe (seed included), not the sampled requests, so a
// few hundred bytes of JSON reproduce an entire non-stationary run.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"mecoffload/internal/mec"
	"mecoffload/internal/rnd"
	"mecoffload/internal/sim"
	"mecoffload/internal/workload"
)

// DriftFormatVersion is written into every drift scenario document.
const DriftFormatVersion = 1

// CurvePoint sets a multiplier from Slot onward (piecewise-constant,
// until the next point). Slots before the first point use factor 1.
type CurvePoint struct {
	Slot   int     `json:"slot"`
	Factor float64 `json:"factor"`
}

// Burst multiplies the arrival rate by Factor during [Start, End) — a
// flash crowd on top of whatever the base curve says.
type Burst struct {
	Start  int     `json:"start"`
	End    int     `json:"end"`
	Factor float64 `json:"factor"`
}

// DriftDoc is the on-disk drift scenario: fully deterministic given its
// seed, so the document is the experiment artifact.
type DriftDoc struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	Seed    int64  `json:"seed"`
	// Horizon is the number of scheduling slots.
	Horizon int `json:"horizon"`
	// Stations is the network size; topology and capacities are generated
	// from the seed with the repo's defaults.
	Stations int `json:"stations"`
	// RatePerSlot is the baseline expected arrivals per slot before
	// curve and burst multipliers.
	RatePerSlot float64 `json:"ratePerSlot"`
	// RateCurve scales the arrival rate over time (diurnal load shape).
	RateCurve []CurvePoint `json:"rateCurve,omitempty"`
	// RewardCurve scales per-request unit rewards over time, drifting the
	// reward distribution the learners estimate.
	RewardCurve []CurvePoint `json:"rewardCurve,omitempty"`
	// Bursts are flash-crowd arrival multipliers.
	Bursts []Burst `json:"bursts,omitempty"`
	// Handovers and Outages are the network-side drift script, applied by
	// the simulation engine (see sim.Drift). The materializer additionally
	// re-points generated arrivals after a handover slot so new users of a
	// moved cluster attach to the destination station.
	Handovers []sim.Handover `json:"handovers,omitempty"`
	Outages   []sim.Outage   `json:"outages,omitempty"`
}

// Validate checks the document's internal consistency.
func (d *DriftDoc) Validate() error {
	if d == nil {
		return fmt.Errorf("%w: nil drift document", ErrDecode)
	}
	if d.Version != DriftFormatVersion {
		return fmt.Errorf("%w: drift version %d, want %d", ErrDecode, d.Version, DriftFormatVersion)
	}
	if d.Name == "" {
		return fmt.Errorf("%w: drift scenario needs a name", ErrDecode)
	}
	if d.Horizon <= 0 || d.Horizon > 1<<20 {
		return fmt.Errorf("%w: horizon %d out of (0, 2^20]", ErrDecode, d.Horizon)
	}
	if d.Stations <= 0 || d.Stations > 1<<12 {
		return fmt.Errorf("%w: stations %d out of (0, 4096]", ErrDecode, d.Stations)
	}
	if !(d.RatePerSlot > 0) || d.RatePerSlot > 1e3 {
		return fmt.Errorf("%w: ratePerSlot %v out of (0, 1000]", ErrDecode, d.RatePerSlot)
	}
	if err := validCurve("rateCurve", d.RateCurve, d.Horizon, 0); err != nil {
		return err
	}
	// A zero reward factor would generate requests worth nothing, which
	// mec.Request validation rejects; keep the curve strictly positive.
	if err := validCurve("rewardCurve", d.RewardCurve, d.Horizon, 1e-6); err != nil {
		return err
	}
	for _, b := range d.Bursts {
		if b.Start < 0 || b.End <= b.Start || b.Start >= d.Horizon {
			return fmt.Errorf("%w: burst window [%d, %d) invalid for horizon %d", ErrDecode, b.Start, b.End, d.Horizon)
		}
		if !(b.Factor >= 0) || b.Factor > 1e3 {
			return fmt.Errorf("%w: burst factor %v out of [0, 1000]", ErrDecode, b.Factor)
		}
	}
	drift := &sim.Drift{Handovers: d.Handovers, Outages: d.Outages}
	if err := drift.Validate(d.Stations); err != nil {
		return fmt.Errorf("%w: %v", ErrDecode, err)
	}
	return nil
}

func validCurve(name string, pts []CurvePoint, horizon int, minFactor float64) error {
	prev := -1
	for _, p := range pts {
		if p.Slot < 0 || p.Slot >= horizon {
			return fmt.Errorf("%w: %s slot %d out of [0, %d)", ErrDecode, name, p.Slot, horizon)
		}
		if p.Slot <= prev {
			return fmt.Errorf("%w: %s slots not strictly increasing at %d", ErrDecode, name, p.Slot)
		}
		prev = p.Slot
		if !(p.Factor >= minFactor) || p.Factor > 1e3 || math.IsNaN(p.Factor) {
			return fmt.Errorf("%w: %s factor %v at slot %d out of range", ErrDecode, name, p.Factor, p.Slot)
		}
	}
	return nil
}

// curveAt returns the piecewise-constant factor at slot t (1 before the
// first point). Points are validated strictly increasing.
func curveAt(pts []CurvePoint, t int) float64 {
	f := 1.0
	for _, p := range pts {
		if p.Slot > t {
			break
		}
		f = p.Factor
	}
	return f
}

func (d *DriftDoc) burstAt(t int) float64 {
	f := 1.0
	for _, b := range d.Bursts {
		if t >= b.Start && t < b.End {
			f *= b.Factor
		}
	}
	return f
}

// ArrivalRate returns the expected arrivals at slot t: baseline times
// rate-curve times burst factors.
func (d *DriftDoc) ArrivalRate(t int) float64 {
	return d.RatePerSlot * curveAt(d.RateCurve, t) * d.burstAt(t)
}

// RewardFactor returns the reward multiplier in force at slot t.
func (d *DriftDoc) RewardFactor(t int) float64 {
	return curveAt(d.RewardCurve, t)
}

// Materialize generates the concrete experiment inputs: a seeded random
// network, the arrival stream sampled from the drift curves (a
// fractional accumulator, so counts are exactly determined by the curve
// integral and only the per-request attributes consume randomness), and
// the engine-side drift script. Requests arriving at or after a handover
// slot with the source access station are re-pointed to the destination,
// modeling the moved user cluster's new attachments.
func Materialize(d *DriftDoc) (*mec.Network, []*mec.Request, *sim.Drift, error) {
	if err := d.Validate(); err != nil {
		return nil, nil, nil, err
	}
	net, err := mec.RandomNetwork(d.Stations, 3000, 3600, rnd.New(d.Seed, "drift-topology:"+d.Name))
	if err != nil {
		return nil, nil, nil, err
	}
	rng := rnd.New(d.Seed, "drift-workload:"+d.Name)

	var reqs []*mec.Request
	acc := 0.0
	for t := 0; t < d.Horizon; t++ {
		acc += d.ArrivalRate(t)
		n := int(acc)
		acc -= float64(n)
		rf := d.RewardFactor(t)
		for i := 0; i < n; i++ {
			batch, err := workload.Generate(workload.Config{
				NumRequests:   1,
				NumStations:   d.Stations,
				MinUnitReward: workload.DefaultMinUnitReward * rf,
				MaxUnitReward: workload.DefaultMaxUnitReward * rf,
			}, rng)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("scenario: drift %q slot %d: %w", d.Name, t, err)
			}
			r := batch[0]
			r.ID = len(reqs)
			r.ArrivalSlot = t
			for _, h := range d.Handovers {
				if t >= h.Slot && r.AccessStation == h.From {
					r.AccessStation = h.To
				}
			}
			reqs = append(reqs, r)
		}
	}
	drift := &sim.Drift{
		Handovers: append([]sim.Handover(nil), d.Handovers...),
		Outages:   append([]sim.Outage(nil), d.Outages...),
	}
	return net, reqs, drift, nil
}

// TimeShift returns a copy of the scenario delayed by delta slots: the
// horizon grows by delta, every curve point, burst, handover, and outage
// moves forward, and the arrival rate is pinned to zero over the new
// quiet prefix. Because the generator's accumulator and rng are untouched
// by empty slots, the shifted scenario materializes the exact same
// request sequence with arrival slots offset by delta — the invariance
// the metamorphic suite pins.
func TimeShift(d *DriftDoc, delta int) (*DriftDoc, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if delta < 0 {
		return nil, fmt.Errorf("%w: negative time shift %d", ErrDecode, delta)
	}
	out := *d
	if delta == 0 {
		return &out, nil
	}
	out.Horizon += delta
	out.RateCurve = shiftCurve(d.RateCurve, delta)
	out.RewardCurve = shiftCurve(d.RewardCurve, delta)
	// Silence the prefix: rate 0 on [0, delta), then restore whatever the
	// original curve said at its slot 0.
	restored := 1.0
	if len(d.RateCurve) > 0 && d.RateCurve[0].Slot == 0 {
		restored = d.RateCurve[0].Factor
	}
	out.RateCurve = append([]CurvePoint{{Slot: 0, Factor: 0}, {Slot: delta, Factor: restored}},
		trimLeadingCurve(out.RateCurve, delta)...)
	out.Bursts = make([]Burst, len(d.Bursts))
	for i, b := range d.Bursts {
		out.Bursts[i] = Burst{Start: b.Start + delta, End: b.End + delta, Factor: b.Factor}
	}
	out.Handovers = make([]sim.Handover, len(d.Handovers))
	for i, h := range d.Handovers {
		out.Handovers[i] = sim.Handover{Slot: h.Slot + delta, From: h.From, To: h.To}
	}
	out.Outages = make([]sim.Outage, len(d.Outages))
	for i, o := range d.Outages {
		out.Outages[i] = sim.Outage{Station: o.Station, Start: o.Start + delta, End: o.End + delta, Scale: o.Scale}
	}
	return &out, nil
}

func shiftCurve(pts []CurvePoint, delta int) []CurvePoint {
	out := make([]CurvePoint, len(pts))
	for i, p := range pts {
		out[i] = CurvePoint{Slot: p.Slot + delta, Factor: p.Factor}
	}
	return out
}

// trimLeadingCurve drops points at or before slot — they are covered by
// the injected prefix points.
func trimLeadingCurve(pts []CurvePoint, slot int) []CurvePoint {
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Slot > slot })
	return pts[i:]
}

// BuiltinNames lists the packaged drift scenarios in canonical order.
func BuiltinNames() []string {
	return []string{"iid", "diurnal", "flash-crowd", "mobility-handover", "correlated-outage"}
}

// Builtin returns a packaged drift scenario by name. These are the
// scenario pack the drift experiment and the regression suites run: one
// stationary control and four distinct non-stationarities.
func Builtin(name string) (*DriftDoc, error) {
	// The baseline rate saturates the 6-station network (steady state
	// ~1.2 * 40-slot holds * ~800 MHz demand > total capacity), so the
	// admission threshold binds and policy choice is visible in reward.
	base := DriftDoc{
		Version:     DriftFormatVersion,
		Name:        name,
		Seed:        1,
		Horizon:     600,
		Stations:    6,
		RatePerSlot: 1.2,
	}
	switch name {
	case "iid":
		// Stationary control: no curves, no events.
	case "diurnal":
		// A day compressed into the horizon: load swells to 1.6x at peak,
		// falls to 0.3x overnight, rewards rise off-peak (scarcity pricing).
		base.RateCurve = []CurvePoint{
			{Slot: 0, Factor: 0.5}, {Slot: 100, Factor: 1.0}, {Slot: 200, Factor: 1.6},
			{Slot: 320, Factor: 1.0}, {Slot: 430, Factor: 0.3}, {Slot: 520, Factor: 0.8},
		}
		base.RewardCurve = []CurvePoint{
			{Slot: 0, Factor: 1.0}, {Slot: 200, Factor: 0.8}, {Slot: 430, Factor: 1.3},
		}
	case "flash-crowd":
		// Recurring arrival spikes with depressed per-request rewards
		// mid-burst (congestion-time admissions are worth less): flash
		// crowds come in waves, not once.
		base.Bursts = []Burst{
			{Start: 100, End: 160, Factor: 4},
			{Start: 240, End: 320, Factor: 5},
			{Start: 420, End: 470, Factor: 3.5},
		}
		base.RewardCurve = []CurvePoint{
			{Slot: 0, Factor: 1.0}, {Slot: 100, Factor: 0.8}, {Slot: 160, Factor: 1.0},
			{Slot: 240, Factor: 0.7}, {Slot: 320, Factor: 1.0},
			{Slot: 420, Factor: 0.8}, {Slot: 470, Factor: 1.0},
		}
	case "mobility-handover":
		// A user cluster marches across the network, handing its arrivals
		// from station to station every ~120 slots.
		base.Handovers = []sim.Handover{
			{Slot: 100, From: 0, To: 3},
			{Slot: 220, From: 3, To: 5},
			{Slot: 340, From: 5, To: 2},
			{Slot: 460, From: 2, To: 4},
		}
	case "correlated-outage":
		// Stations sharing a power domain fail together and relapse: one
		// fully dark, its neighbor degraded, recovering at different
		// times, with a second correlated failure later in the run.
		base.Outages = []sim.Outage{
			{Station: 1, Start: 150, End: 260, Scale: 0},
			{Station: 2, Start: 150, End: 230, Scale: 0.25},
			{Station: 1, Start: 380, End: 470, Scale: 0},
			{Station: 4, Start: 400, End: 490, Scale: 0.3},
		}
		base.RewardCurve = []CurvePoint{
			{Slot: 0, Factor: 1.0}, {Slot: 150, Factor: 1.2}, {Slot: 260, Factor: 1.0},
			{Slot: 380, Factor: 1.25}, {Slot: 490, Factor: 1.0},
		}
	default:
		return nil, fmt.Errorf("scenario: unknown builtin drift scenario %q (have %v)", name, BuiltinNames())
	}
	return &base, nil
}

// WriteDrift encodes a drift scenario as indented JSON.
func WriteDrift(w io.Writer, d *DriftDoc) error {
	if err := d.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("scenario: encoding drift: %w", err)
	}
	return nil
}

// ReadDrift decodes and validates a drift scenario from JSON.
func ReadDrift(r io.Reader) (*DriftDoc, error) {
	var d DriftDoc
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}
