// Package prof wires the standard runtime/pprof CPU and allocation
// profiles behind the -cpuprofile/-memprofile flags the cmd binaries
// share, so a slow sweep or a leaking slot path can be profiled without
// recompiling.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// EnableContentionProfiles turns on the runtime's blocking and mutex
// profiles, which stay empty until sampled: blockRate is the
// nanoseconds-blocked threshold fed to runtime.SetBlockProfileRate (1
// records every event; 0 leaves blocking profiling off) and
// mutexFraction the sampling rate fed to
// runtime.SetMutexProfileFraction (1 records every contended lock; 0
// leaves mutex profiling off). The profiles are then readable from the
// net/http/pprof endpoint (/debug/pprof/block, /debug/pprof/mutex),
// which is how a stalled cluster clock — shard workers blocked on the
// epoch barrier, or the checkpoint writer contending the clock lock —
// is diagnosed in place.
func EnableContentionProfiles(blockRate, mutexFraction int) {
	if blockRate > 0 {
		runtime.SetBlockProfileRate(blockRate)
	}
	if mutexFraction > 0 {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
}

// Start begins CPU profiling when cpuPath is non-empty and returns a
// stop function that must be called exactly once, after the profiled
// work finishes: it stops the CPU profile and, when memPath is
// non-empty, writes an allocation profile (after a GC, so the live-heap
// numbers are settled). Either path may be empty; Start(nil-equivalent)
// returns a no-op stop.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: closing CPU profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			runtime.GC()
			werr := pprof.Lookup("allocs").WriteTo(f, 0)
			cerr := f.Close()
			if werr != nil {
				return fmt.Errorf("prof: writing allocation profile: %w", werr)
			}
			if cerr != nil {
				return fmt.Errorf("prof: closing allocation profile: %w", cerr)
			}
		}
		return nil
	}, nil
}
