// Package prof wires the standard runtime/pprof CPU and allocation
// profiles behind the -cpuprofile/-memprofile flags the cmd binaries
// share, so a slow sweep or a leaking slot path can be profiled without
// recompiling.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a
// stop function that must be called exactly once, after the profiled
// work finishes: it stops the CPU profile and, when memPath is
// non-empty, writes an allocation profile (after a GC, so the live-heap
// numbers are settled). Either path may be empty; Start(nil-equivalent)
// returns a no-op stop.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: closing CPU profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			runtime.GC()
			werr := pprof.Lookup("allocs").WriteTo(f, 0)
			cerr := f.Close()
			if werr != nil {
				return fmt.Errorf("prof: writing allocation profile: %w", werr)
			}
			if cerr != nil {
				return fmt.Errorf("prof: closing allocation profile: %w", cerr)
			}
		}
		return nil
	}, nil
}
