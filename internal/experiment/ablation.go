package experiment

import (
	"math/rand"

	"mecoffload/internal/bandit"
	"mecoffload/internal/core"
	"mecoffload/internal/mec"
	"mecoffload/internal/sim"
	"mecoffload/internal/topology"
	"mecoffload/internal/workload"
)

// AblationRounding (A1) sweeps the rounding denominator of Appro: the
// paper's analysis fixes 1/4 (Lemma 2's occupancy bound); this quantifies
// the reward cost of more conservative rounding and the feasibility risk
// of more aggressive rounding.
func AblationRounding(opts Options) (*Table, error) {
	opts.fill()
	tbl := &Table{
		ID:         "ablation-rounding",
		Title:      "Ablation A1: Appro rounding denominator",
		XLabel:     "denominator",
		Algorithms: []string{AlgoAppro},
	}
	xs := []float64{2, 4, 8}
	err := sweep(opts, tbl, xs,
		func(x float64, rep int) (*instance, error) {
			xi := indexOf(xs, x)
			return genInstance(opts.Stations, offlineWorkload(opts.Requests), instSeed(opts.Seed, 21, xi, rep))
		},
		func(inst *instance, algo string, x float64, rep int, warm *core.WarmCache) (*core.Result, error) {
			xi := indexOf(xs, x)
			workload.Reset(inst.reqs)
			rng := rand.New(rand.NewSource(runSeed(opts.Seed, 21, xi, rep, 0)))
			res, err := core.Appro(inst.net, inst.reqs, rng, core.ApproOptions{RoundingDenominator: x, Warm: warm})
			if err != nil {
				return nil, err
			}
			if !opts.SkipAudit {
				if err := core.Audit(inst.net, inst.reqs, res); err != nil {
					return nil, err
				}
			}
			return res, nil
		})
	return tbl, err
}

// AblationKappa (A2) sweeps the discretization granularity kappa of
// DynamicRR's threshold interval: too few arms leave discretization error
// (the T*eta*eps term), too many slow down elimination (the sqrt(kappa T)
// term) — Theorem 3's trade-off made measurable.
func AblationKappa(opts Options) (*Table, error) {
	opts.fill()
	tbl := &Table{
		ID:         "ablation-kappa",
		Title:      "Ablation A2: DynamicRR threshold arms (kappa)",
		XLabel:     "kappa",
		Algorithms: []string{AlgoDynamicRR},
	}
	xs := []float64{2, 4, 8, 16, 32}
	err := sweep(opts, tbl, xs,
		func(x float64, rep int) (*instance, error) {
			xi := indexOf(xs, x)
			return genInstance(opts.Stations, onlineWorkload(regretRequests, opts.Horizon),
				instSeed(opts.Seed, 22, xi, rep))
		},
		func(inst *instance, algo string, x float64, rep int, _ *core.WarmCache) (*core.Result, error) {
			xi := indexOf(xs, x)
			return runDynamicVariant(inst, sim.DynamicRROptions{Kappa: int(x)},
				runSeed(opts.Seed, 22, xi, rep, 0), opts)
		})
	return tbl, err
}

// Arm policies compared by AblationPolicy.
const (
	policySE     = "SuccessiveElim"
	policyUCB1   = "UCB1"
	policyEps    = "EpsilonGreedy"
	policyExp3   = "Exp3"
	policyFixed  = "FixedMid"
	policyKappaA = 8
)

// AblationPolicy (A3) swaps DynamicRR's arm-selection policy: the paper's
// successive elimination against UCB1, epsilon-greedy, and a fixed
// mid-range threshold (no learning).
func AblationPolicy(opts Options) (*Table, error) {
	opts.fill()
	tbl := &Table{
		ID:         "ablation-policy",
		Title:      "Ablation A3: DynamicRR bandit policy",
		XLabel:     "requests",
		Algorithms: []string{policySE, policyUCB1, policyEps, policyExp3, policyFixed},
	}
	xs := []float64{float64(regretRequests)}
	err := sweep(opts, tbl, xs,
		func(x float64, rep int) (*instance, error) {
			return genInstance(opts.Stations, onlineWorkload(int(x), opts.Horizon),
				instSeed(opts.Seed, 23, 0, rep))
		},
		func(inst *instance, algo string, x float64, rep int, _ *core.WarmCache) (*core.Result, error) {
			seed := runSeed(opts.Seed, 23, 0, rep, algoIndex(tbl, algo))
			pol, err := newPolicy(algo, seed, opts)
			if err != nil {
				return nil, err
			}
			return runDynamicVariant(inst, sim.DynamicRROptions{Kappa: policyKappaA, Policy: pol}, seed, opts)
		})
	return tbl, err
}

func newPolicy(name string, seed int64, opts Options) (bandit.Policy, error) {
	switch name {
	case policySE:
		return bandit.NewSuccessiveElimination(policyKappaA)
	case policyUCB1:
		return bandit.NewUCB1(policyKappaA)
	case policyEps:
		return bandit.NewEpsilonGreedy(policyKappaA, 0.1, rand.New(rand.NewSource(seed*17+3)))
	case policyExp3:
		gamma := opts.Exp3Gamma
		if gamma == 0 {
			gamma = bandit.DefaultExp3Gamma
		}
		alpha := opts.Exp3Alpha
		if alpha == 0 {
			alpha = bandit.DefaultExp3Alpha
		}
		return bandit.NewExp3S(policyKappaA, gamma, alpha, rand.New(rand.NewSource(seed*19+5)))
	case policyFixed:
		return bandit.NewFixed(policyKappaA, policyKappaA/2)
	default:
		return nil, ErrUnknownAlgorithm
	}
}

// runDynamicVariant runs a DynamicRR configuration over one instance.
func runDynamicVariant(inst *instance, dopts sim.DynamicRROptions, seed int64, opts Options) (*core.Result, error) {
	workload.Reset(inst.reqs)
	sched, err := sim.NewDynamicRR(dopts)
	if err != nil {
		return nil, err
	}
	eng, err := sim.NewEngine(inst.net, inst.reqs, rand.New(rand.NewSource(seed)), sim.Config{Horizon: opts.Horizon + 20})
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(sched)
	if err != nil {
		return nil, err
	}
	if !opts.SkipAudit {
		if err := sim.AuditTimeline(inst.net, inst.reqs, res, opts.Horizon+20); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Reward models compared by AblationRewardModel.
const (
	rewardProportional = "UnitPrice"
	rewardIndependent  = "Independent"
)

// AblationRewardModel (A6) contrasts Section VI-A's unit-price rewards
// (reward = unit * rate, correlated with demand) with the paper's stated
// model of demand-independent rewards (Section I, challenge 2). With
// independent rewards, per-MHz value varies widely across requests, so
// the reward-aware LP selection of Appro/Heu matters more and the gap
// over the reward-blind baselines widens.
func AblationRewardModel(opts Options) (*Table, error) {
	opts.fill()
	tbl := &Table{
		ID:         "ablation-rewardmodel",
		Title:      "Ablation A6: unit-price vs demand-independent rewards (Heu vs OCORP)",
		XLabel:     "model", // 0 = unit price, 1 = independent
		Algorithms: []string{AlgoHeu, AlgoOCORP, AlgoGreedy},
	}
	xs := []float64{0, 1}
	err := sweep(opts, tbl, xs,
		func(x float64, rep int) (*instance, error) {
			xi := indexOf(xs, x)
			cfg := offlineWorkload(opts.Requests)
			cfg.IndependentRewards = x == 1
			return genInstance(opts.Stations, cfg, instSeed(opts.Seed, 26, xi, rep))
		},
		func(inst *instance, algo string, x float64, rep int, warm *core.WarmCache) (*core.Result, error) {
			xi := indexOf(xs, x)
			return runOffline(inst, algo, runSeed(opts.Seed, 26, xi, rep, algoIndex(tbl, algo)), !opts.SkipAudit, warm)
		})
	return tbl, err
}

// Discretization variants compared by AblationDiscretization.
const (
	discFixed8  = "Fixed-k8"
	discFixed32 = "Fixed-k32"
	discZooming = "Zooming"
)

// AblationDiscretization (A5) compares the paper's fixed epsilon-grid
// discretization of the threshold interval against the zooming algorithm's
// adaptive discretization (Slivkins [25]): the fixed grid pays the
// T*eta*epsilon term of Theorem 3, zooming refines itself around the
// optimum instead.
func AblationDiscretization(opts Options) (*Table, error) {
	opts.fill()
	tbl := &Table{
		ID:         "ablation-discretization",
		Title:      "Ablation A5: fixed vs adaptive (zooming) threshold discretization",
		XLabel:     "requests",
		Algorithms: []string{discFixed8, discFixed32, discZooming},
	}
	xs := []float64{float64(regretRequests)}
	err := sweep(opts, tbl, xs,
		func(x float64, rep int) (*instance, error) {
			return genInstance(opts.Stations, onlineWorkload(int(x), opts.Horizon),
				instSeed(opts.Seed, 25, 0, rep))
		},
		func(inst *instance, algo string, x float64, rep int, _ *core.WarmCache) (*core.Result, error) {
			seed := runSeed(opts.Seed, 25, 0, rep, algoIndex(tbl, algo))
			var dopts sim.DynamicRROptions
			switch algo {
			case discFixed8:
				dopts = sim.DynamicRROptions{Kappa: 8}
			case discFixed32:
				dopts = sim.DynamicRROptions{Kappa: 32}
			case discZooming:
				z, err := bandit.NewZooming(200, 1200, 0)
				if err != nil {
					return nil, err
				}
				dopts = sim.DynamicRROptions{Learner: z}
			default:
				return nil, ErrUnknownAlgorithm
			}
			return runDynamicVariant(inst, dopts, seed, opts)
		})
	return tbl, err
}

// AblationSlotSize (A4) sweeps the resource-slot capacity C_l: the grid on
// which the LP relaxation indexes resources. Finer slots approximate
// capacity better but enlarge the LP; coarser slots strand residual
// capacity.
func AblationSlotSize(opts Options) (*Table, error) {
	opts.fill()
	tbl := &Table{
		ID:         "ablation-slotsize",
		Title:      "Ablation A4: resource-slot size C_l",
		XLabel:     "slotMHz",
		Algorithms: []string{AlgoAppro, AlgoHeu},
	}
	xs := []float64{250, 500, 1000, 1800}
	err := sweep(opts, tbl, xs,
		func(x float64, rep int) (*instance, error) {
			xi := indexOf(xs, x)
			seed := instSeed(opts.Seed, 24, xi, rep)
			rng := rand.New(rand.NewSource(seed))
			topo, err := topology.Waxman(topology.Config{N: opts.Stations}, rng)
			if err != nil {
				return nil, err
			}
			stations := make([]mec.BaseStation, opts.Stations)
			for i := range stations {
				stations[i] = mec.BaseStation{
					CapacityMHz: DefaultMinCapMHz + rng.Float64()*(DefaultMaxCapMHz-DefaultMinCapMHz),
					SpeedFactor: 0.8 + rng.Float64()*0.4,
				}
			}
			net, err := mec.NewNetwork(mec.NetworkConfig{Stations: stations, Topo: topo, SlotMHz: x})
			if err != nil {
				return nil, err
			}
			cfg := offlineWorkload(opts.Requests)
			cfg.NumStations = opts.Stations
			reqs, err := workload.Generate(cfg, rng)
			if err != nil {
				return nil, err
			}
			return &instance{net: net, reqs: reqs}, nil
		},
		func(inst *instance, algo string, x float64, rep int, warm *core.WarmCache) (*core.Result, error) {
			xi := indexOf(xs, x)
			return runOffline(inst, algo, runSeed(opts.Seed, 24, xi, rep, algoIndex(tbl, algo)), !opts.SkipAudit, warm)
		})
	return tbl, err
}
