package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"mecoffload/internal/bandit"
	"mecoffload/internal/sim"
	"mecoffload/internal/stats"
	"mecoffload/internal/workload"
)

// Regret experiment defaults. The system is driven into saturation so the
// admission threshold actually binds and the arms separate.
const (
	regretKappa    = 8
	regretRequests = 900
	regretHorizon  = 300
)

// RegretResult holds the Theorem 3 validation: measured cumulative regret
// of DynamicRR's successive-elimination learner against the best fixed
// threshold in hindsight, alongside the theoretical bound shape.
type RegretResult struct {
	// Checkpoints are the horizons T at which regret is sampled.
	Checkpoints []int
	// Regret[i] aggregates measured regret at Checkpoints[i] over
	// repetitions.
	Regret []stats.Summary
	// Bound[i] is sqrt(kappa*T*log T) + T*eta*eps scaled to the observed
	// per-slot reward range — the shape DynamicRR must stay under (up to
	// constants).
	Bound []float64
	// Kappa and Epsilon document the discretization used.
	Kappa   int
	Epsilon float64
}

// Regret runs the Theorem 3 validation (experiment E10 in DESIGN.md). For
// each repetition it simulates DynamicRR and every fixed-threshold policy
// on the same saturated workload, then reports
//
//	regret(T) = max_arm cumReward_arm(T) - cumReward_DynamicRR(T)
//
// at geometric checkpoints. Sub-linear growth (flattening against the
// bound curve) is the reproduced claim.
func Regret(opts Options) (*RegretResult, error) {
	opts.fill()
	checkpoints := []int{25, 50, 100, 150, 200, 250, regretHorizon}
	out := &RegretResult{
		Checkpoints: checkpoints,
		Regret:      make([]stats.Summary, len(checkpoints)),
		Kappa:       regretKappa,
	}

	maxSlotReward := 0.0
	for rep := 0; rep < opts.Repetitions; rep++ {
		seed := instSeed(opts.Seed, 10, 0, rep)
		cfg := onlineWorkload(regretRequests, regretHorizon)
		inst, err := genInstance(opts.Stations, cfg, seed)
		if err != nil {
			return nil, err
		}

		// DynamicRR with successive elimination.
		seCum, lip, err := regretRun(inst, seed, nil)
		if err != nil {
			return nil, err
		}
		out.Epsilon = lip.Epsilon()

		// Every fixed arm on the same workload.
		best := make([]float64, regretHorizon)
		for arm := 0; arm < regretKappa; arm++ {
			fixed, err := bandit.NewFixed(regretKappa, arm)
			if err != nil {
				return nil, err
			}
			cum, _, err := regretRun(inst, seed, fixed)
			if err != nil {
				return nil, err
			}
			for t := range best {
				if cum[t] > best[t] {
					best[t] = cum[t]
				}
			}
		}

		for i, T := range checkpoints {
			r := best[T-1] - seCum[T-1]
			if r < 0 {
				r = 0
			}
			out.Regret[i].Add(r)
		}
		if m := maxSlot(seCum); m > maxSlotReward {
			maxSlotReward = m
		}
	}

	// Bound curve scaled to per-slot reward units (Theorem 3 assumes
	// rewards normalized to [0, 1]).
	eta := maxSlotReward / (1200 - 200) // Lipschitz constant estimate over Z
	out.Bound = make([]float64, len(checkpoints))
	for i, T := range checkpoints {
		t := float64(T)
		out.Bound[i] = maxSlotReward*math.Sqrt(float64(regretKappa)*t*math.Log(t+1)) +
			t*eta*out.Epsilon
	}
	return out, nil
}

// regretRun simulates one policy (nil = successive elimination) and
// returns the cumulative per-slot reward series.
func regretRun(inst *instance, seed int64, policy bandit.Policy) ([]float64, *bandit.Lipschitz, error) {
	workload.Reset(inst.reqs)
	sched, err := sim.NewDynamicRR(sim.DynamicRROptions{Kappa: regretKappa, Policy: policy})
	if err != nil {
		return nil, nil, err
	}
	eng, err := sim.NewEngine(inst.net, inst.reqs, rand.New(rand.NewSource(seed*13+1)), sim.Config{Horizon: regretHorizon})
	if err != nil {
		return nil, nil, err
	}
	if _, err := eng.Run(sched); err != nil {
		return nil, nil, err
	}
	slot := eng.SlotRewards()
	if len(slot) != regretHorizon {
		return nil, nil, fmt.Errorf("experiment: regret run produced %d slots, want %d", len(slot), regretHorizon)
	}
	cum := make([]float64, len(slot))
	acc := 0.0
	for t, r := range slot {
		acc += r
		cum[t] = acc
	}
	return cum, sched.Bandit(), nil
}

// maxSlot returns the largest single-slot increment of a cumulative series.
func maxSlot(cum []float64) float64 {
	best, prev := 0.0, 0.0
	for _, c := range cum {
		if d := c - prev; d > best {
			best = d
		}
		prev = c
	}
	return best
}
