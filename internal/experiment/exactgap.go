package experiment

import (
	"math/rand"
	"time"

	"mecoffload/internal/core"
	"mecoffload/internal/workload"
)

// AlgoHindsight labels the full-information upper bound column.
const AlgoHindsight = "Hindsight"

// ExactGap (E11) quantifies the optimality gaps on instances small enough
// for branch and bound: the exact ILP optimum, Appro, and Heu, against
// the hindsight LP bound (reward of an omniscient scheduler that knows
// every realized rate). Theorem 1 promises E[Appro] >= Opt/8; in practice
// the measured gap is far smaller — this experiment shows by how much.
func ExactGap(opts Options) (*Table, error) {
	opts.fill()
	tbl := &Table{
		ID:         "exactgap",
		Title:      "Exact vs approximation on small instances (E11)",
		XLabel:     "requests",
		Algorithms: []string{AlgoExact, AlgoAppro, AlgoHeu, AlgoHindsight},
	}
	const stations = 4
	xs := []float64{8, 12, 16, 24}
	err := sweep(opts, tbl, xs,
		func(x float64, rep int) (*instance, error) {
			xi := indexOf(xs, x)
			return genInstance(stations, offlineWorkload(int(x)), instSeed(opts.Seed, 11, xi, rep))
		},
		func(inst *instance, algo string, x float64, rep int, warm *core.WarmCache) (*core.Result, error) {
			xi := indexOf(xs, x)
			seed := runSeed(opts.Seed, 11, xi, rep, algoIndex(tbl, algo))
			if algo == AlgoHindsight {
				return hindsightResult(inst, seed)
			}
			return runOffline(inst, algo, seed, !opts.SkipAudit, warm)
		})
	return tbl, err
}

// hindsightResult wraps the hindsight bound as a pseudo-result so it fits
// the table machinery.
func hindsightResult(inst *instance, seed int64) (*core.Result, error) {
	workload.Reset(inst.reqs)
	start := time.Now()
	bound, err := core.HindsightBound(inst.net, inst.reqs, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	res := &core.Result{
		Algorithm:       AlgoHindsight,
		Decisions:       make([]core.Decision, len(inst.reqs)),
		TotalReward:     bound,
		ExpectedLPBound: bound,
		Runtime:         time.Since(start),
	}
	for j := range res.Decisions {
		res.Decisions[j] = core.Decision{RequestID: j, Station: -1}
	}
	return res, nil
}
